// Build-health smoke test: run the full flow (optimizer → pipelining →
// scheduling/binding → RTL → synthesis estimates) on every workload in
// workloads::suite() at II ∈ {0, 1, 2}. Guards the toolchain against stage
// regressions: every run must complete — either succeeding with a
// structurally valid schedule or failing cleanly with a reason (some
// kernels carry arithmetic recurrences that make a small II infeasible,
// e.g. EWF at II=1; that is a documented clean failure, not a crash).
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

struct SmokeCase {
  int workload = 0;
  int ii = 0;  ///< 0 = sequential
};

// Built once; test-name generation and the 30 test bodies all read from it.
const std::vector<workloads::Workload>& cached_suite() {
  static const std::vector<workloads::Workload> all = workloads::suite();
  return all;
}

class FlowSmoke : public ::testing::TestWithParam<SmokeCase> {
 public:
  static std::string case_name(
      const ::testing::TestParamInfo<SmokeCase>& info) {
    return cached_suite()[static_cast<std::size_t>(info.param.workload)].name +
           "_ii" + std::to_string(info.param.ii);
  }
};

// The schedule must place every region op on a step inside the schedule
// and report consistent pipelining metadata.
void expect_valid_schedule(const FlowResult& r, const SmokeCase& c) {
  const auto& s = r.sched.schedule;
  ASSERT_GT(s.num_steps, 0);
  EXPECT_EQ(s.pipeline.enabled, c.ii > 0);
  if (c.ii > 0) {
    EXPECT_EQ(s.pipeline.ii, c.ii);
    EXPECT_EQ(r.machine.loop.initiation_interval(), c.ii);
  }
  int placed = 0;
  for (const auto& pl : s.placement) {
    if (!pl.scheduled) continue;
    ++placed;
    EXPECT_GE(pl.step, 0);
    EXPECT_LT(pl.step, s.num_steps);
  }
  EXPECT_GT(placed, 0);
  EXPECT_GT(r.area.total(), 0.0);
  EXPECT_GT(r.power.total_mw(), 0.0);
  EXPECT_GT(r.delay_ns, 0.0);
}

TEST_P(FlowSmoke, CompletesAtEveryII) {
  const SmokeCase c = GetParam();
  auto w = cached_suite()[static_cast<std::size_t>(c.workload)];
  FlowOptions o;
  o.pipeline_ii = c.ii;
  o.emit_verilog = false;  // keep the smoke sweep fast
  auto r = run_flow(std::move(w), o);
  if (r.success) {
    expect_valid_schedule(r, c);
  } else {
    // Infeasible II (carried recurrence wider than II states) must be
    // reported cleanly, never crash or return an empty reason.
    EXPECT_GT(c.ii, 0);
    EXPECT_FALSE(r.failure_reason.empty());
  }
}

std::vector<SmokeCase> all_cases() {
  std::vector<SmokeCase> cases;
  const int n = static_cast<int>(cached_suite().size());
  for (int w = 0; w < n; ++w)
    for (int ii : {0, 1, 2}) cases.push_back({w, ii});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, FlowSmoke, ::testing::ValuesIn(all_cases()),
                         FlowSmoke::case_name);

}  // namespace
}  // namespace hls::core
