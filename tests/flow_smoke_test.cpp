// Build-health smoke test: run the full flow (optimizer → pipelining →
// scheduling/binding → RTL → synthesis estimates) on every workload in
// workloads::suite() at II ∈ {0, 1, 2}. Guards the toolchain against stage
// regressions: every run must complete — either succeeding with a
// structurally valid schedule or failing cleanly with a reason (some
// kernels carry arithmetic recurrences that make a small II infeasible,
// e.g. EWF at II=1; that is a documented clean failure, not a crash).
//
// Uses the staged FlowSession API: each workload is compiled once and the
// three II configurations run against the immutable compiled module.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

struct SmokeCase {
  int workload = 0;
  int ii = 0;  ///< 0 = sequential
};

// Only the workload names are needed at static registration time (gtest
// builds the case names before main()); compiling the sessions is
// deferred to the first test body so a front-end failure is reported as
// a test failure, not a crash during registration.
const std::vector<std::string>& suite_names() {
  static const std::vector<std::string>* names = [] {
    auto* all = new std::vector<std::string>;
    for (const auto& w : workloads::suite()) all->push_back(w.name);
    return all;
  }();
  return *names;
}

// Compiled once, on first use; the 30 test bodies share the sessions so
// the front end runs once per workload, not once per II.
const FlowSession& cached_session(int workload) {
  static const std::vector<FlowSession>* sessions = [] {
    auto* all = new std::vector<FlowSession>;
    for (auto& w : workloads::suite()) all->emplace_back(std::move(w));
    return all;
  }();
  return (*sessions)[static_cast<std::size_t>(workload)];
}

class FlowSmoke : public ::testing::TestWithParam<SmokeCase> {
 public:
  static std::string case_name(
      const ::testing::TestParamInfo<SmokeCase>& info) {
    return suite_names()[static_cast<std::size_t>(info.param.workload)] +
           "_ii" + std::to_string(info.param.ii);
  }
};

// The schedule must place every region op on a step inside the schedule
// and report consistent pipelining metadata.
void expect_valid_schedule(const FlowResult& r, const SmokeCase& c) {
  const auto& s = r.sched.schedule;
  ASSERT_GT(s.num_steps, 0);
  EXPECT_EQ(s.pipeline.enabled, c.ii > 0);
  if (c.ii > 0) {
    EXPECT_EQ(s.pipeline.ii, c.ii);
    EXPECT_EQ(r.machine.loop.initiation_interval(), c.ii);
  }
  int placed = 0;
  for (const auto& pl : s.placement) {
    if (!pl.scheduled) continue;
    ++placed;
    EXPECT_GE(pl.step, 0);
    EXPECT_LT(pl.step, s.num_steps);
  }
  EXPECT_GT(placed, 0);
  EXPECT_GT(r.area.total(), 0.0);
  EXPECT_GT(r.power.total_mw(), 0.0);
  EXPECT_GT(r.delay_ns, 0.0);
}

TEST_P(FlowSmoke, CompletesAtEveryII) {
  const SmokeCase c = GetParam();
  const FlowSession& session = cached_session(c.workload);
  ASSERT_TRUE(session.ok()) << render_diagnostics(session.diagnostics());
  FlowOptions o;
  o.pipeline_ii = c.ii;
  o.emit_verilog = false;  // keep the smoke sweep fast
  auto r = session.run(o);
  if (r.success) {
    expect_valid_schedule(r, c);
  } else {
    // Infeasible II (carried recurrence wider than II states) must be
    // reported cleanly, never crash or return an empty reason.
    EXPECT_GT(c.ii, 0);
    EXPECT_FALSE(r.failure_reason.empty());
    EXPECT_FALSE(r.diagnostics.empty());
    EXPECT_EQ(r.diagnostics.back().stage, "schedule");
  }
}

std::vector<SmokeCase> all_cases() {
  std::vector<SmokeCase> cases;
  const int n = static_cast<int>(suite_names().size());
  for (int w = 0; w < n; ++w)
    for (int ii : {0, 1, 2}) cases.push_back({w, ii});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, FlowSmoke, ::testing::ValuesIn(all_cases()),
                         FlowSmoke::case_name);

}  // namespace
}  // namespace hls::core
