// Tests for the staged FlowSession API and the parallel exploration
// engine:
//  * run_flow and FlowSession::run produce byte-identical schedules and
//    reports for every suite workload;
//  * the staged FlowRun stage chain matches run() and enforces ordering;
//  * FlowOptions validation fails fast with structured diagnostics;
//  * explore() with 1 thread and N threads produces identical point
//    vectors, in config order, with profiling fields populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "core/explore.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "ir/print.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

// ---- run_flow ≡ FlowSession::run -------------------------------------------

// Everything the schedule and estimates determine, rendered to text; the
// wall-clock fields (sched_seconds, timings) are deliberately excluded.
std::string fingerprint(const FlowResult& r) {
  if (!r.success) return "FAILED: " + r.failure_reason;
  return r.sched.schedule.to_table(r.module->thread.dfg) + render_report(r) +
         render_trace(r.sched) + r.verilog;
}

TEST(FlowSession, MatchesRunFlowOnEverySuiteWorkload) {
  for (auto& w : workloads::suite()) {
    for (int ii : {0, 2}) {
      FlowOptions o;
      o.pipeline_ii = ii;
      auto via_facade = run_flow(w, o);  // copies the workload
      const FlowSession session(w);
      auto via_session = session.run(o);
      EXPECT_EQ(fingerprint(via_facade), fingerprint(via_session))
          << w.name << " at II=" << ii;
    }
  }
}

TEST(FlowSession, RepeatedRunsAreIdenticalAndLeaveTheModuleUntouched) {
  const FlowSession session(workloads::make_ewf());
  const std::string before = ir::print_module(session.module());
  FlowOptions o;
  auto r1 = session.run(o);
  auto r2 = session.run(o);
  ASSERT_TRUE(r1.success) << r1.failure_reason;
  EXPECT_EQ(fingerprint(r1), fingerprint(r2));
  EXPECT_EQ(ir::print_module(session.module()), before);
}

TEST(FlowSession, CompileHappensOnceAndIsReportedPerRun) {
  const FlowSession session(workloads::make_fir(8));
  ASSERT_TRUE(session.ok());
  EXPECT_GT(session.compile_seconds(), 0.0);
  auto r = session.run(FlowOptions{});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.timings.compile_seconds, session.compile_seconds());
  EXPECT_GT(r.timings.sched_seconds, 0.0);
  EXPECT_EQ(r.timings.sched_seconds, r.sched_seconds);
}

// ---- Staged FlowRun --------------------------------------------------------

TEST(FlowRun, StagesRunInOrderAndMatchRunAll) {
  const FlowSession session(workloads::make_fir(8));
  FlowOptions o;
  o.pipeline_ii = 2;

  FlowRun staged = session.begin(o);
  EXPECT_FALSE(staged.schedule());  // out of order: no-op
  EXPECT_TRUE(staged.select_microarch());
  EXPECT_FALSE(staged.select_microarch());  // already done: no-op
  EXPECT_TRUE(staged.schedule());
  EXPECT_FALSE(staged.result().success);  // not estimated yet
  EXPECT_TRUE(staged.generate_rtl());
  EXPECT_TRUE(staged.estimate());
  auto r_staged = staged.take();

  auto r_all = session.run(o);
  ASSERT_TRUE(r_staged.success) << r_staged.failure_reason;
  EXPECT_EQ(fingerprint(r_staged), fingerprint(r_all));
}

TEST(FlowRun, FailedScheduleShortCircuitsLaterStages) {
  const FlowSession session(workloads::make_ewf());
  FlowOptions o;
  o.pipeline_ii = 1;  // EWF's recurrence cannot fit II=1
  o.allow_accept_slack = false;
  FlowRun run = session.begin(o);
  EXPECT_TRUE(run.select_microarch());
  EXPECT_FALSE(run.schedule());
  EXPECT_FALSE(run.generate_rtl());
  EXPECT_FALSE(run.estimate());
  auto r = run.take();
  EXPECT_FALSE(r.success);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.back().stage, "schedule");
  EXPECT_EQ(r.diagnostics.back().code, "infeasible");
}

// ---- Option validation -----------------------------------------------------

TEST(FlowOptionsValidation, RejectsMalformedOptions) {
  FlowOptions bad;
  bad.tclk_ps = -1600;
  bad.pipeline_ii = -2;
  bad.latency_min = 8;
  bad.latency_max = 4;
  const auto diags = validate_flow_options(bad);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].code, "non-positive-tclk");
  EXPECT_EQ(diags[1].code, "negative-ii");
  EXPECT_EQ(diags[2].code, "inverted-latency-bound");
  for (const auto& d : diags) EXPECT_EQ(d.stage, "options");

  EXPECT_TRUE(validate_flow_options(FlowOptions{}).empty());
}

TEST(FlowOptionsValidation, RunFailsCleanlyOnMalformedOptions) {
  const FlowSession session(workloads::make_fir(4));
  FlowOptions bad;
  bad.latency_min = -3;
  auto r = session.run(bad);
  EXPECT_FALSE(r.success);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.front().stage, "options");
  EXPECT_EQ(r.diagnostics.front().code, "negative-latency");
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(FlowOptionsValidation, LatencyMinAboveDesignerMaxFailsStructured) {
  // latency_max = 0 keeps the designer's bound (64 for FIR); a min
  // override beyond it leaves an empty effective bound, which must fail
  // as a diagnostic rather than reach the scheduler.
  const FlowSession session(workloads::make_fir(4));
  FlowOptions o;
  o.latency_min = 100;
  auto r = session.run(o);
  EXPECT_FALSE(r.success);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.back().stage, "microarch");
  EXPECT_EQ(r.diagnostics.back().code, "inverted-latency-bound");
}

TEST(FlowSession, InvalidIrIsACompileDiagnosticNotACrash) {
  workloads::Workload w = workloads::make_fir(4);
  // A loop-carried mux whose carried operand is never set — and which no
  // region statement references — is structurally invalid; compilation
  // must record the problem instead of letting a pass crash on it.
  w.module.thread.dfg.loop_mux(0, w.module.thread.dfg.op(0).type);
  const FlowSession session(std::move(w));
  EXPECT_FALSE(session.ok());
  auto r = session.run(FlowOptions{});
  EXPECT_FALSE(r.success);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.front().stage, "compile");
  EXPECT_EQ(r.diagnostics.front().code, "invalid-ir");
}

TEST(FlowSession, MissingLoopIsACompileDiagnostic) {
  workloads::Workload w = workloads::make_fir(4);
  w.loop = ir::kNoStmt;
  const FlowSession session(std::move(w));
  EXPECT_FALSE(session.ok());
  auto r = session.run(FlowOptions{});
  EXPECT_FALSE(r.success);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.front().stage, "compile");
  EXPECT_EQ(r.diagnostics.front().code, "no-loop");
}

// ---- Backend plumbing ------------------------------------------------------

TEST(FlowBackend, OptionReachesResultReportAndJson) {
  const FlowSession session(workloads::make_idct8());
  FlowOptions o;
  o.backend = sched::BackendKind::kSdc;
  auto r = session.run(o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.sched.backend, sched::BackendKind::kSdc);
  EXPECT_NE(render_report(r).find("backend: sdc"), std::string::npos);
  EXPECT_NE(render_json(r).find("\"backend\":\"sdc\""), std::string::npos);

  auto rl = session.run(FlowOptions{});  // default stays the list backend
  ASSERT_TRUE(rl.success);
  EXPECT_EQ(rl.sched.backend, sched::BackendKind::kList);
  EXPECT_NE(render_json(rl).find("\"backend\":\"list\""), std::string::npos);
  // Same constraints, same headline outcome (schedules may differ).
  EXPECT_EQ(r.sched.schedule.num_steps, rl.sched.schedule.num_steps);
}

TEST(FlowBackend, ExploreSweepsBackendsInOneGrid) {
  const FlowSession session(workloads::make_fir(8));
  std::vector<ExploreConfig> grid = {
      {"list", 1600, 0, 0}, {"sdc", 1600, 0, 0}, {"sdc-pipe", 1600, 0, 2},
  };
  grid[1].backend = sched::BackendKind::kSdc;
  grid[2].backend = sched::BackendKind::kSdc;
  const auto pts = explore(session, grid, ExploreOptions{});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].backend, "list");
  EXPECT_EQ(pts[1].backend, "sdc");
  EXPECT_EQ(pts[2].backend, "sdc");
  EXPECT_EQ(pts[0].feasible, pts[1].feasible);
  EXPECT_EQ(pts[0].latency, pts[1].latency);
}

TEST(FlowBackend, AutoReportsResolvedBackendInReportAndJson) {
  const FlowSession session(workloads::make_idct8());
  FlowOptions o;
  o.backend = sched::BackendKind::kAuto;
  auto r = session.run(o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  // IDCT is feed-forward: kAuto resolves to the list backend, and every
  // report carries the resolved kind, never "auto".
  EXPECT_EQ(r.sched.backend, sched::BackendKind::kList);
  EXPECT_NE(render_report(r).find("backend: list"), std::string::npos);
  EXPECT_EQ(render_json(r).find("\"backend\":\"auto\""), std::string::npos);
}

// ---- Warm-start plumbing ----------------------------------------------------

// FlowOptions::warm_start reaches the scheduler, and warm/cold runs stay
// byte-identical at the flow level for both backends (the bit-level A/B
// lives in sched_golden_test; this pins the core-layer plumbing).
TEST(FlowBackend, WarmStartToggleKeepsResultsIdentical) {
  const FlowSession session(workloads::make_idct8());
  for (const auto backend :
       {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
    FlowOptions warm;
    warm.backend = backend;
    warm.pipeline_ii = 8;
    FlowOptions cold = warm;
    cold.warm_start = false;
    auto rw = session.run(warm);
    auto rc = session.run(cold);
    ASSERT_EQ(rw.success, rc.success) << sched::backend_name(backend);
    EXPECT_EQ(fingerprint(rw), fingerprint(rc))
        << sched::backend_name(backend);
    EXPECT_EQ(rw.sched.passes, rc.sched.passes)
        << sched::backend_name(backend);
  }
}

// ---- Shared timing tables --------------------------------------------------

TEST(FlowSession, SharedTimingTablesDoNotChangeResults) {
  SessionOptions cold;
  cold.share_timing_tables = false;
  const FlowSession shared_session(workloads::make_idct8());
  const FlowSession cold_session(workloads::make_idct8(), cold);
  EXPECT_NE(shared_session.delay_tables(), nullptr);
  EXPECT_EQ(cold_session.delay_tables(), nullptr);
  for (int ii : {0, 8}) {
    FlowOptions o;
    o.pipeline_ii = ii;
    auto rs = shared_session.run(o);
    auto rc = cold_session.run(o);
    EXPECT_EQ(fingerprint(rs), fingerprint(rc)) << "II=" << ii;
  }
}

// ---- Parallel exploration --------------------------------------------------

// Identical up to wall-clock noise: every deterministic field must match.
void expect_points_equal(const std::vector<ExplorePoint>& a,
                         const std::vector<ExplorePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].curve, b[i].curve) << i;
    EXPECT_EQ(a[i].tclk_ps, b[i].tclk_ps) << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << i;
    EXPECT_EQ(a[i].pipelined, b[i].pipelined) << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns) << i;
    EXPECT_EQ(a[i].area, b[i].area) << i;
    EXPECT_EQ(a[i].power_mw, b[i].power_mw) << i;
    EXPECT_EQ(a[i].passes, b[i].passes) << i;
    EXPECT_EQ(a[i].relaxations, b[i].relaxations) << i;
    EXPECT_EQ(a[i].backend, b[i].backend) << i;
    EXPECT_EQ(a[i].failure, b[i].failure) << i;
  }
}

TEST(Explore, ThreadedRunMatchesSerialRun) {
  const FlowSession session(workloads::make_idct8());
  const std::vector<ExploreConfig> grid = {
      {"seq8", 1600, 8, 0},    {"seq16", 1600, 16, 0},
      {"seq16", 2200, 16, 0},  {"pipe16", 1600, 16, 8},
      {"pipe32", 1600, 32, 16}, {"pipe32", 2200, 32, 16},
      {"too-fast", 700, 16, 0},
  };
  ExploreOptions serial;
  serial.threads = 1;
  const auto pts1 = explore(session, grid, serial);

  ExploreOptions threaded;
  threaded.threads = 4;
  const auto ptsN = explore(session, grid, threaded);

  expect_points_equal(pts1, ptsN);

  ExploreOptions negative;  // clamped to serial, not all-cores
  negative.threads = -3;
  expect_points_equal(pts1, explore(session, grid, negative));
  // Spot-check content: feasible points carry profiling fields.
  ASSERT_EQ(pts1.size(), grid.size());
  EXPECT_TRUE(pts1[0].feasible);
  EXPECT_GT(pts1[0].passes, 0);
  EXPECT_GT(pts1[0].sched_seconds, 0.0);
  EXPECT_FALSE(pts1[6].feasible);
  EXPECT_FALSE(pts1[6].failure.empty());
}

TEST(Explore, ProgressCallbackSeesEveryConfiguration) {
  const FlowSession session(workloads::make_fir(4));
  const std::vector<ExploreConfig> grid = {
      {"a", 1600, 0, 0}, {"b", 1800, 0, 0}, {"c", 2000, 0, 2},
      {"bad", -5, 0, 0},
  };
  std::atomic<int> calls{0};
  std::size_t max_completed = 0;
  ExploreOptions opts;
  opts.threads = 2;
  opts.progress = [&](const ExplorePoint& p, std::size_t completed,
                      std::size_t total) {
    ++calls;
    EXPECT_EQ(total, grid.size());
    EXPECT_GE(completed, 1u);
    EXPECT_LE(completed, total);
    EXPECT_FALSE(p.curve.empty());
    max_completed = std::max(max_completed, completed);
  };
  const auto pts = explore(session, grid, opts);
  EXPECT_EQ(calls.load(), static_cast<int>(grid.size()));
  EXPECT_EQ(max_completed, grid.size());
  // The malformed configuration surfaced as a structured infeasibility.
  EXPECT_FALSE(pts[3].feasible);
  EXPECT_FALSE(pts[3].failure.empty());
}

TEST(Explore, LegacyFactoryOverloadStillWorks) {
  const std::vector<ExploreConfig> grid = {{"seq", 1600, 0, 0}};
  const auto pts = explore([] { return workloads::make_fir(4); }, grid);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].feasible);
}

}  // namespace
}  // namespace hls::core
