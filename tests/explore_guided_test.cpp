// Tests for model-guided best-first exploration (docs/EXPLORE.md):
//  * guided + prune is result-identical to the exhaustive engine for
//    every point it runs, at every thread count and config order;
//  * dominance pruning only ever skips points a looser clock on the same
//    chain PROVED infeasible — budget/cancellation codes never prune, so
//    feasible points behind a budget failure are never lost;
//  * in-chain warm-start seed sharing is reported per point (seed_use)
//    and never changes schedules or pass counts;
//  * the guided order and the per-config cost predictions are pure and
//    deterministic, chains loosest-clock-first;
//  * resolve_backend's fitted-model rule vs the legacy fixed-cap rule;
//  * the serve layer's guided/prune path stays byte-deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/explore.hpp"
#include "core/session.hpp"
#include "sched/backend.hpp"
#include "serve/server.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

// Everything except the wall-clock field. `ignore_seed_use` drops the
// one field the guided engine is allowed to change vs exhaustive (it
// reports in-chain sharing; exhaustive always says "none").
void expect_point_eq(const ExplorePoint& a, const ExplorePoint& b,
                     bool ignore_seed_use, const std::string& what) {
  EXPECT_EQ(a.curve, b.curve) << what;
  EXPECT_EQ(a.tclk_ps, b.tclk_ps) << what;
  EXPECT_EQ(a.latency, b.latency) << what;
  EXPECT_EQ(a.pipelined, b.pipelined) << what;
  EXPECT_EQ(a.min_ii, b.min_ii) << what;
  EXPECT_EQ(a.delay_ns, b.delay_ns) << what;
  EXPECT_EQ(a.area, b.area) << what;
  EXPECT_EQ(a.power_mw, b.power_mw) << what;
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.failure, b.failure) << what;
  EXPECT_EQ(a.cancelled, b.cancelled) << what;
  EXPECT_EQ(a.passes, b.passes) << what;
  EXPECT_EQ(a.relaxations, b.relaxations) << what;
  EXPECT_EQ(a.backend, b.backend) << what;
  if (!ignore_seed_use) {
    EXPECT_EQ(a.seed_use, b.seed_use) << what;
  }
  EXPECT_EQ(a.constraint_edges, b.constraint_edges) << what;
  EXPECT_EQ(a.propagation_relaxations, b.propagation_relaxations) << what;
  EXPECT_EQ(a.memory_restraints, b.memory_restraints) << what;
  EXPECT_EQ(a.mem_banks, b.mem_banks) << what;
  EXPECT_EQ(a.mem_ports, b.mem_ports) << what;
}

bool dominated(const ExplorePoint& p) {
  return p.failure.rfind(kDominatedPrefix, 0) == 0;
}

void ladder(std::vector<ExploreConfig>* grid, const char* curve, int latency,
            int ii, std::initializer_list<double> tclks) {
  for (double t : tclks) {
    ExploreConfig c;
    c.curve = curve;
    c.tclk_ps = t;
    c.latency = ii > 0 ? 0 : latency;
    c.pipeline_ii = ii;
    grid->push_back(c);
  }
}

// fir16: a tight-latency ladder that exhausts the relaxation ladder
// (provable, pass-bearing — the prunable regime) plus a feasible ladder
// (the in-chain seeding regime).
std::vector<ExploreConfig> mixed_grid() {
  std::vector<ExploreConfig> grid;
  ladder(&grid, "exhaust", 2, 0, {1300, 1600, 1850, 2200});
  ladder(&grid, "feasible", 16, 0, {1450, 1600, 1850, 2200});
  return grid;
}

TEST(GuidedExplore, MatchesExhaustiveAtEveryThreadCount) {
  const FlowSession session(workloads::make_fir(16));
  const auto grid = mixed_grid();
  const auto exhaustive = explore(session, grid, {});
  ASSERT_EQ(exhaustive.size(), grid.size());
  for (int threads : {1, 2, 4, 0}) {
    ExploreOptions o;
    o.threads = threads;
    o.guided = true;
    o.prune = true;
    const auto guided = explore(session, grid, o);
    ASSERT_EQ(guided.size(), grid.size());
    std::size_t pruned = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const std::string what =
          grid[i].curve + " tclk=" + std::to_string(grid[i].tclk_ps) +
          " threads=" + std::to_string(threads);
      if (dominated(guided[i])) {
        ++pruned;
        // A skipped point must be one the exhaustive engine also found
        // infeasible — pruning may never lose a feasible point.
        EXPECT_FALSE(exhaustive[i].feasible) << what;
        EXPECT_FALSE(guided[i].feasible) << what;
        EXPECT_FALSE(guided[i].cancelled) << what;
        EXPECT_EQ(guided[i].passes, 0) << what;
        continue;
      }
      expect_point_eq(guided[i], exhaustive[i], /*ignore_seed_use=*/true,
                      what);
    }
    EXPECT_GT(pruned, 0u) << "the exhaustion ladder must actually prune";
  }
}

TEST(GuidedExplore, ThreadCountsProduceIdenticalVectors) {
  const FlowSession session(workloads::make_fir(16));
  const auto grid = mixed_grid();
  ExploreOptions serial;
  serial.guided = true;
  serial.prune = true;
  const auto base = explore(session, grid, serial);
  for (int threads : {2, 4, 0}) {
    ExploreOptions o = serial;
    o.threads = threads;
    const auto pts = explore(session, grid, o);
    ASSERT_EQ(pts.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      // Including seed_use: in-chain sharing is deterministic too.
      expect_point_eq(pts[i], base[i], /*ignore_seed_use=*/false,
                      "threads=" + std::to_string(threads) + " point " +
                          std::to_string(i));
    }
  }
}

TEST(GuidedExplore, ShuffledConfigOrderYieldsSamePerConfigResults) {
  const FlowSession session(workloads::make_fir(16));
  const auto grid = mixed_grid();
  ExploreOptions o;
  o.guided = true;
  o.prune = true;
  const auto base = explore(session, grid, o);

  std::vector<std::size_t> perm(grid.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937 rng(7);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<ExploreConfig> shuffled;
    for (std::size_t i : perm) shuffled.push_back(grid[i]);
    const auto pts = explore(session, shuffled, o);
    ASSERT_EQ(pts.size(), perm.size());
    for (std::size_t at = 0; at < perm.size(); ++at) {
      expect_point_eq(pts[at], base[perm[at]], /*ignore_seed_use=*/false,
                      "round " + std::to_string(round) + " config " +
                          std::to_string(perm[at]));
    }
  }
}

// crc32 at II=2: the 1600 ps point exhausts its pass budget while the
// STRICTLY TIGHTER 1450 ps point is feasible — feasibility along the
// chain is only monotone for provable failures. If budget codes counted
// as proofs, pruning would skip the feasible 1450 point; they must not.
TEST(GuidedExplore, BudgetFailuresNeverPruneFeasibleTighterPoints) {
  const FlowSession session(workloads::make_crc32());
  std::vector<ExploreConfig> grid;
  ladder(&grid, "ii2", 0, 2, {1300, 1450, 1600, 1850, 2200});
  const auto exhaustive = explore(session, grid, {});
  ExploreOptions o;
  o.guided = true;
  o.prune = true;
  const auto guided = explore(session, grid, o);
  ASSERT_EQ(guided.size(), grid.size());
  bool saw_budget_failure = false, saw_feasible_below_it = false;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(guided[i].feasible, exhaustive[i].feasible)
        << "tclk=" << grid[i].tclk_ps;
    if (!exhaustive[i].feasible &&
        exhaustive[i].failure.find("budget") != std::string::npos) {
      saw_budget_failure = true;
      EXPECT_FALSE(dominated(guided[i])) << "budget failures are not proofs";
      for (std::size_t j = 0; j < grid.size(); ++j) {
        if (grid[j].tclk_ps < grid[i].tclk_ps && exhaustive[j].feasible) {
          saw_feasible_below_it = true;
          EXPECT_TRUE(guided[j].feasible) << "tclk=" << grid[j].tclk_ps;
          EXPECT_FALSE(dominated(guided[j]));
        }
      }
    }
  }
  // The grid is chosen to exercise exactly this shape; if the scheduler
  // evolves past it, pick a new non-monotone ladder rather than letting
  // the guard rot.
  EXPECT_TRUE(saw_budget_failure) << "grid no longer has a budget failure";
  EXPECT_TRUE(saw_feasible_below_it)
      << "grid no longer has a feasible point tighter than the budget one";
}

TEST(GuidedExplore, DominatedPointsSitStrictlyBelowAProvableWitness) {
  const FlowSession session(workloads::make_fir(16));
  std::vector<ExploreConfig> grid;
  ladder(&grid, "exhaust", 2, 0, {1300, 1450, 1600, 1850, 2200});
  ExploreOptions o;
  o.guided = true;
  o.prune = true;
  const auto pts = explore(session, grid, o);
  // The loosest clock runs and proves infeasibility; everything tighter
  // is dominated by it.
  double witness = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!dominated(pts[i])) {
      EXPECT_TRUE(proves_infeasibility(pts[i])) << "tclk=" << grid[i].tclk_ps;
      witness = std::max(witness, grid[i].tclk_ps);
    }
  }
  ASSERT_GT(witness, 0.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (dominated(pts[i])) {
      EXPECT_LT(grid[i].tclk_ps, witness);
      EXPECT_NE(pts[i].failure.find("tclk_ps="), std::string::npos)
          << "dominated points must name their witness clock";
    }
  }
}

TEST(GuidedExplore, InChainSeedSharingIsReportedPerPoint) {
  const FlowSession session(workloads::make_dct8());
  std::vector<ExploreConfig> grid;
  ladder(&grid, "feasible", 16, 0, {1450, 1700, 1950, 2200});
  const auto exhaustive = explore(session, grid, {});
  for (const auto& p : exhaustive) EXPECT_EQ(p.seed_use, "none");
  ExploreOptions o;
  o.guided = true;
  const auto guided = explore(session, grid, o);
  // The chain runs loosest-first, so 2200 solves cold and the tighter
  // points get its recipe offered; at least one must track it fully.
  EXPECT_EQ(guided.back().seed_use, "none");
  EXPECT_NE(std::count_if(
                guided.begin(), guided.end(),
                [](const ExplorePoint& p) { return p.seed_use == "seeded"; }),
            0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_point_eq(guided[i], exhaustive[i], /*ignore_seed_use=*/true,
                    "tclk=" + std::to_string(grid[i].tclk_ps));
  }
}

TEST(GuidedExplore, DuplicateConfigsCollapseToExactReplay) {
  const FlowSession session(workloads::make_fir(16));
  std::vector<ExploreConfig> grid;
  ladder(&grid, "feasible", 16, 0, {1600, 1600});
  ExploreOptions o;
  o.guided = true;
  const auto pts = explore(session, grid, o);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].seed_use, "none");
  EXPECT_EQ(pts[1].seed_use, "replay");
  EXPECT_EQ(pts[1].passes, 1);
  // The replay is bit-exact, so everything non-volatile matches.
  EXPECT_TRUE(pts[1].feasible);
  EXPECT_EQ(pts[0].delay_ns, pts[1].delay_ns);
  EXPECT_EQ(pts[0].area, pts[1].area);
}

TEST(GuidedExplore, GuidedOrderIsDeterministicAndLoosestClockFirst) {
  const FlowSession session(workloads::make_fir(16));
  const auto grid = mixed_grid();
  const auto order = guided_order(session, grid);
  EXPECT_EQ(order, guided_order(session, grid));
  ASSERT_EQ(order.size(), grid.size());
  std::vector<bool> seen(grid.size(), false);
  for (std::size_t i : order) {
    ASSERT_LT(i, grid.size());
    EXPECT_FALSE(seen[i]) << "guided_order must be a permutation";
    seen[i] = true;
  }
  // Within a chain, clocks descend (ties broken by config index).
  std::size_t prev = grid.size();
  for (std::size_t i : order) {
    if (prev != grid.size() &&
        explore_chain_key(grid[prev]) == explore_chain_key(grid[i])) {
      EXPECT_GE(grid[prev].tclk_ps, grid[i].tclk_ps);
    }
    prev = i;
  }
}

TEST(GuidedExplore, PredictedCostIsPositiveAndScalesWithBackend) {
  const FlowSession session(workloads::make_fir(16));
  ExploreConfig seq;
  seq.tclk_ps = 1600;
  seq.latency = 16;
  EXPECT_GT(predicted_config_cost_ns(session, seq), 0.0);
  EXPECT_EQ(predicted_config_cost_ns(session, seq),
            predicted_config_cost_ns(session, seq));
  ExploreConfig sdc = seq;
  sdc.backend = sched::BackendKind::kSdc;
  EXPECT_GT(predicted_config_cost_ns(session, sdc),
            predicted_config_cost_ns(session, seq))
      << "SDC predicts dearer than list on a feed-forward problem";
}

TEST(GuidedExplore, ProvesInfeasibilityAcceptsOnlyProvableCodes) {
  ExplorePoint p;
  p.feasible = false;
  p.failure = "[schedule/infeasible] scheduling failed: no applicable relaxation";
  EXPECT_TRUE(proves_infeasibility(p));
  p.failure = "[schedule/no_feasible_ii] no II in [1, 8] schedules";
  EXPECT_TRUE(proves_infeasibility(p));
  p.failure = "[schedule/pass_budget_exhausted] gave up after 128 passes";
  EXPECT_FALSE(proves_infeasibility(p));
  p.failure = "[schedule/budget_exhausted] commit budget exhausted";
  EXPECT_FALSE(proves_infeasibility(p));
  p.failure = "[schedule/deadline_exceeded] advisory deadline hit";
  EXPECT_FALSE(proves_infeasibility(p));
  p.failure = "[options/invalid] latency must be positive";
  EXPECT_FALSE(proves_infeasibility(p));
  p.failure = "[schedule/infeasible] ...";
  p.cancelled = true;
  EXPECT_FALSE(proves_infeasibility(p)) << "cancelled runs prove nothing";
  p.cancelled = false;
  p.feasible = true;
  p.failure.clear();
  EXPECT_FALSE(proves_infeasibility(p));
}

TEST(GuidedExplore, ConstraintTotalsSurfacePerPoint) {
  const FlowSession session(workloads::make_crc32());
  ExploreConfig cfg;
  cfg.curve = "ii2";
  cfg.tclk_ps = 1450;
  cfg.pipeline_ii = 2;
  cfg.backend = sched::BackendKind::kSdc;
  auto sdc = explore(session, {cfg}, {});
  ASSERT_TRUE(sdc[0].feasible) << sdc[0].failure;
  EXPECT_GT(sdc[0].constraint_edges, 0u);
  EXPECT_GT(sdc[0].propagation_relaxations, 0u);
  cfg.backend = sched::BackendKind::kList;
  auto list = explore(session, {cfg}, {});
  ASSERT_TRUE(list[0].feasible) << list[0].failure;
  EXPECT_EQ(list[0].constraint_edges, 0u);
  EXPECT_EQ(list[0].propagation_relaxations, 0u);
  // Same shared ladder: pass counts match across backends.
  EXPECT_EQ(sdc[0].passes, list[0].passes);
}

}  // namespace
}  // namespace hls::core

// ---- resolve_backend: fitted model vs legacy fixed cap ---------------------

namespace hls::sched {
namespace {

Problem shaped_problem(std::size_t ops, bool pipelined, std::size_t sccs) {
  Problem p;
  p.ops.resize(ops);
  p.pipeline.enabled = pipelined;
  p.sccs.resize(sccs);
  return p;
}

TEST(ResolveBackend, ExplicitChoicePassesThroughBothRules) {
  for (bool legacy : {false, true}) {
    SchedulerOptions o;
    o.legacy_auto_rule = legacy;
    o.backend = BackendKind::kSdc;
    EXPECT_EQ(resolve_backend(shaped_problem(64, false, 0), o),
              BackendKind::kSdc);
    o.backend = BackendKind::kList;
    EXPECT_EQ(resolve_backend(shaped_problem(64, true, 2), o),
              BackendKind::kList);
  }
}

TEST(ResolveBackend, BothRulesKeepListForSequentialAndFeedForward) {
  for (bool legacy : {false, true}) {
    SchedulerOptions o;
    o.backend = BackendKind::kAuto;
    o.legacy_auto_rule = legacy;
    // Sequential, and pipelined-but-recurrence-free: SDC buys nothing.
    EXPECT_EQ(resolve_backend(shaped_problem(500, false, 0), o),
              BackendKind::kList)
        << "legacy=" << legacy;
    EXPECT_EQ(resolve_backend(shaped_problem(500, true, 0), o),
              BackendKind::kList)
        << "legacy=" << legacy;
  }
}

TEST(ResolveBackend, ModelPrefersSdcOnWarmPipelinedRecurrences) {
  SchedulerOptions o;
  o.backend = BackendKind::kAuto;
  ASSERT_FALSE(o.legacy_auto_rule);
  ASSERT_TRUE(o.warm_start);
  // Small and mid-size recurrence problems sit well inside the fitted
  // affordability bound. Deliberately far from the model's crossover —
  // the exact crossover is a fit artifact that moves on re-fit, so it
  // is documentation (docs/SCHEDULER.md), not a test invariant.
  EXPECT_EQ(resolve_backend(shaped_problem(64, true, 1), o),
            BackendKind::kSdc);
  EXPECT_EQ(resolve_backend(shaped_problem(400, true, 3), o),
            BackendKind::kSdc);
}

TEST(ResolveBackend, LegacyRuleKeepsItsFixedCap) {
  SchedulerOptions o;
  o.backend = BackendKind::kAuto;
  o.legacy_auto_rule = true;
  EXPECT_EQ(resolve_backend(shaped_problem(4096, true, 2), o),
            BackendKind::kSdc);
  EXPECT_EQ(resolve_backend(shaped_problem(4097, true, 2), o),
            BackendKind::kList);
}

TEST(CostModel, FeatureSemantics) {
  core::CostFeatures f;
  f.ops = 400;
  EXPECT_FALSE(core::model_prefers_sdc(f)) << "sequential never SDC";
  f.pipelined = true;
  EXPECT_FALSE(core::model_prefers_sdc(f)) << "no recurrences, no SDC";
  EXPECT_GT(core::predicted_cost_ns(f, /*sdc=*/false), 0.0);
  EXPECT_GT(core::predicted_cost_ns(f, /*sdc=*/true),
            core::predicted_cost_ns(f, /*sdc=*/false));
  core::CostFeatures big = f;
  big.ops = 6400;
  EXPECT_GT(core::predicted_cost_ns(big, false),
            core::predicted_cost_ns(f, false))
      << "cost grows with op count";
}

}  // namespace
}  // namespace hls::sched

// ---- Serve-layer guided/prune path -----------------------------------------

namespace hls::serve {
namespace {

JobRequest prune_job(std::int64_t id) {
  JobRequest j;
  j.id = id;
  j.workload = "fir16";
  j.guided = true;
  j.prune = true;
  core::ExploreConfig cfg;
  for (double t : {1300, 1450, 1600, 1850, 2200}) {
    cfg.curve = "exhaust";
    cfg.tclk_ps = t;
    cfg.latency = 2;
    j.points.push_back(cfg);
  }
  for (double t : {1600, 1850, 2200}) {
    cfg.curve = "feasible";
    cfg.tclk_ps = t;
    cfg.latency = 16;
    j.points.push_back(cfg);
  }
  return j;
}

std::string drain_to_string(int threads) {
  ServerOptions options;
  options.threads = threads;
  options.micro_batch = 2;  // pruning must work across round boundaries
  options.emit_stats = true;
  Server server(options);
  std::string error;
  EXPECT_TRUE(server.submit(prune_job(0), &error)) << error;
  std::string out;
  server.drain([&](const std::string& line) {
    out += line;
    out += '\n';
  });
  EXPECT_GT(server.stats().points_pruned, 0u);
  return out;
}

TEST(ServeGuided, PruneIsByteDeterministicAcrossThreadCounts) {
  const std::string serial = drain_to_string(1);
  EXPECT_NE(serial.find(core::kDominatedPrefix), std::string::npos)
      << "the exhaustion ladder must emit dominated lines";
  EXPECT_NE(serial.find("\"pruned\":"), std::string::npos)
      << "the done summary must report the pruned count";
  EXPECT_NE(serial.find("\"points_pruned\":"), std::string::npos);
  EXPECT_EQ(serial, drain_to_string(4));
  EXPECT_EQ(serial, drain_to_string(0));
}

TEST(ServeGuided, GuidedAndPruneParseFromJson) {
  std::vector<JobRequest> jobs;
  std::vector<std::string> errors;
  ASSERT_TRUE(parse_jobs(
      R"({"id": 3, "workload": "ewf", "guided": true, "prune": true,
          "points": [{"tclk_ps": 1800, "latency": 14}]})",
      &jobs, &errors));
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].guided);
  EXPECT_TRUE(jobs[0].prune);
  jobs.clear();
  parse_jobs(R"({"id": 4, "workload": "ewf", "prune": "yes",
                 "points": [{"tclk_ps": 1800, "latency": 14}]})",
             &jobs, &errors);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.back().find("boolean"), std::string::npos);
}

}  // namespace
}  // namespace hls::serve
