// Tests for src/tech/: the artisan-90nm-style characterization (Table 1
// delays/areas), op-to-resource-class mapping, and monotonicity of
// delay/area models in width.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "frontend/builder.hpp"
#include "tech/library.hpp"

namespace hls::tech {
namespace {

// ---- Table 1 calibration -----------------------------------------------------
// The paper's Table 1 (artisan_90nm_typical, 32-bit units, Tclk=1600):
//   mul 930, add 350, gt 220, neq 60, ff 40, mux2 110, mux3 115.

TEST(Artisan90, Table1DelaysAt32Bit) {
  const Library& lib = artisan90();
  EXPECT_DOUBLE_EQ(lib.fu_delay_ps(FuClass::kMultiplier, 32), 930);
  EXPECT_DOUBLE_EQ(lib.fu_delay_ps(FuClass::kAdder, 32), 350);
  EXPECT_DOUBLE_EQ(lib.fu_delay_ps(FuClass::kCompareOrd, 32), 220);
  EXPECT_DOUBLE_EQ(lib.fu_delay_ps(FuClass::kCompareEq, 32), 60);
  EXPECT_DOUBLE_EQ(lib.reg_clk_to_q_ps(), 40);
  EXPECT_DOUBLE_EQ(lib.reg_setup_ps(), 40);
  EXPECT_DOUBLE_EQ(lib.mux_delay_ps(2), 110);
  EXPECT_DOUBLE_EQ(lib.mux_delay_ps(3), 115);
  EXPECT_DOUBLE_EQ(lib.mux_delay_ps(4), 115);
}

class DelayMonotonicity
    : public ::testing::TestWithParam<FuClass> {};

TEST_P(DelayMonotonicity, DelayAndAreaGrowWithWidth) {
  const Library& lib = artisan90();
  const FuClass c = GetParam();
  double prev_delay = 0;
  double prev_area = 0;
  for (int w : {4, 8, 16, 32, 64}) {
    const double d = lib.fu_delay_ps(c, w);
    const double a = lib.fu_area(c, w);
    EXPECT_GE(d, prev_delay) << fu_class_name(c) << " w=" << w;
    EXPECT_GT(a, prev_area) << fu_class_name(c) << " w=" << w;
    EXPECT_GT(d, 0);
    prev_delay = d;
    prev_area = a;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, DelayMonotonicity,
                         ::testing::Values(FuClass::kAdder,
                                           FuClass::kMultiplier,
                                           FuClass::kCompareOrd,
                                           FuClass::kCompareEq,
                                           FuClass::kShifter),
                         [](const auto& param_info) {
                           return fu_class_name(param_info.param);
                         });

TEST(Artisan90, MuxDelayGrowsWithInputs) {
  const Library& lib = artisan90();
  EXPECT_LE(lib.mux_delay_ps(2), lib.mux_delay_ps(3));
  EXPECT_LE(lib.mux_delay_ps(4), lib.mux_delay_ps(8));
  EXPECT_THROW(lib.mux_delay_ps(1), InternalError);
}

TEST(Artisan90, MultiplierDominatesAdderArea) {
  const Library& lib = artisan90();
  EXPECT_GT(lib.fu_area(FuClass::kMultiplier, 32),
            5 * lib.fu_area(FuClass::kAdder, 32));
}

TEST(Artisan90, DividerIsMultiCycle) {
  const Library& lib = artisan90();
  EXPECT_GT(lib.fu_latency_cycles(FuClass::kDivider), 0);
  EXPECT_EQ(lib.fu_latency_cycles(FuClass::kMultiplier), 0);
  EXPECT_GT(lib.fu_delay_into_cycle_ps(FuClass::kDivider), 0);
}

TEST(Artisan90, EnergyScalesWithArea) {
  const Library& lib = artisan90();
  EXPECT_GT(lib.fu_energy_pj(FuClass::kMultiplier, 32),
            lib.fu_energy_pj(FuClass::kAdder, 32));
  EXPECT_GT(lib.reg_energy_pj(32), lib.reg_energy_pj(8));
  EXPECT_GT(lib.leakage_nw(1000), lib.leakage_nw(100));
}

// ---- Op -> resource mapping -----------------------------------------------------

TEST(ResourceMapping, OpKindsMapToClasses) {
  using ir::OpKind;
  EXPECT_EQ(fu_class_for(OpKind::kAdd, false), FuClass::kAdder);
  EXPECT_EQ(fu_class_for(OpKind::kSub, false), FuClass::kAdder);
  EXPECT_EQ(fu_class_for(OpKind::kMul, false), FuClass::kMultiplier);
  EXPECT_EQ(fu_class_for(OpKind::kGt, false), FuClass::kCompareOrd);
  EXPECT_EQ(fu_class_for(OpKind::kNe, false), FuClass::kCompareEq);
  EXPECT_EQ(fu_class_for(OpKind::kMux, false), FuClass::kMux);
  EXPECT_EQ(fu_class_for(OpKind::kDiv, false), FuClass::kDivider);
  EXPECT_EQ(fu_class_for(OpKind::kAnd, false), FuClass::kLogic);
}

TEST(ResourceMapping, FreeKindsNeedNoUnit) {
  using ir::OpKind;
  EXPECT_EQ(fu_class_for(OpKind::kConst, false), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kRead, false), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kWrite, false), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kLoopMux, false), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kZExt, false), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kBitRange, false), FuClass::kNone);
}

TEST(ResourceMapping, ConstantShiftIsFreeVariableShiftIsNot) {
  using ir::OpKind;
  EXPECT_EQ(fu_class_for(OpKind::kShl, true), FuClass::kNone);
  EXPECT_EQ(fu_class_for(OpKind::kShl, false), FuClass::kShifter);

  frontend::Builder b("sh");
  auto in = b.in("x", ir::int_ty(32));
  auto amt = b.in("n", ir::uint_ty(5));
  auto out = b.out("y", ir::int_ty(32));
  auto x = b.read(in);
  auto cshift = b.shl(x, b.c(3, ir::uint_ty(5)));
  auto vshift = b.shl(x, b.read(amt));
  b.write(out, b.add(cshift, vshift));
  auto m = b.finish();
  EXPECT_EQ(fu_class_for(m.thread.dfg, cshift.id), FuClass::kNone);
  EXPECT_EQ(fu_class_for(m.thread.dfg, vshift.id), FuClass::kShifter);
}

TEST(ResourceMapping, ResourceWidthIsMaxOfResultAndOperands) {
  frontend::Builder b("w");
  auto in8 = b.in("a", ir::int_ty(8));
  auto in32 = b.in("c", ir::int_ty(32));
  auto out = b.out("y", ir::int_ty(32));
  auto a = b.read(in8);
  auto c = b.read(in32);
  auto s = b.add(a, c);  // 8 + 32 -> 32
  b.write(out, s);
  auto m = b.finish();
  EXPECT_EQ(resource_width_for(m.thread.dfg, s.id), 32);
}

TEST(ResourceMapping, MuxSelectDoesNotSizeTheResource) {
  frontend::Builder b("mx");
  auto in = b.in("x", ir::int_ty(16));
  auto out = b.out("y", ir::int_ty(16));
  auto x = b.read(in);
  auto sel = b.gt(x, b.c(0, ir::int_ty(16)));
  auto mx = b.mux(sel, x, b.c(1, ir::int_ty(16)));
  b.write(out, mx);
  auto m = b.finish();
  EXPECT_EQ(resource_width_for(m.thread.dfg, mx.id), 16);
}

}  // namespace
}  // namespace hls::tech
