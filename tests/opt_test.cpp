// Tests for src/opt/: every optimizer pass (constant folding, CSE, DCE,
// strength reduction, width reduction, latency balancing, predication)
// preserves interpreter semantics and shrinks or normalizes the DFG.
#include <gtest/gtest.h>

#include "frontend/builder.hpp"
#include "ir/interp.hpp"
#include "ir/validate.hpp"
#include "opt/pass.hpp"
#include "support/rng.hpp"
#include "workloads/example1.hpp"

namespace hls::opt {
namespace {

using frontend::Builder;
using ir::Dfg;
using ir::int_ty;
using ir::interpret;
using ir::Module;
using ir::OpId;
using ir::OpKind;
using ir::Stimulus;
using ir::uint_ty;

std::size_t count_kind(const Module& m, OpKind k) {
  std::size_t n = 0;
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).kind == k) ++n;
  }
  return n;
}

/// Asserts a pass (or pipeline) preserves I/O behaviour on this module for
/// randomized per-iteration stimulus on all input ports.
void expect_equivalent(const Module& before, const Module& after,
                       std::uint64_t seed, int samples = 16, int depth = 24) {
  Rng rng(seed);
  for (int t = 0; t < samples; ++t) {
    Stimulus s;
    for (const auto& p : before.ports) {
      if (p.dir != ir::PortDir::kIn) continue;
      std::vector<std::int64_t> vals;
      for (int i = 0; i < depth; ++i) {
        vals.push_back(rng.chance(0.2) ? 0 : rng.uniform(-4096, 4096));
      }
      s.set(p.name, std::move(vals));
    }
    const auto ra = interpret(before, s);
    const auto rb = interpret(after, s);
    ASSERT_EQ(ir::writes_by_port(before, ra.writes),
              ir::writes_by_port(after, rb.writes))
        << "pass changed behaviour (trial " << t << ")";
  }
}

TEST(ConstantFold, FoldsConstantExpressions) {
  Builder b("cf");
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto v = b.add(b.mul(b.c(6), b.c(7)), b.c(0));
  b.write(out, v);
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_constant_fold();
  EXPECT_TRUE(p->run(m));
  ir::validate_or_throw(m);
  // Only the write and a constant remain.
  EXPECT_EQ(count_kind(m, OpKind::kMul), 0u);
  EXPECT_EQ(count_kind(m, OpKind::kAdd), 0u);
  const auto r = interpret(m, Stimulus{});
  EXPECT_EQ(ir::writes_by_port(m, r.writes).at("y"),
            (std::vector<std::int64_t>{42, 42}));
}

TEST(ConstantFold, AlgebraicIdentities) {
  Builder b("alg");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  auto v = b.add(x, b.c(0));    // x + 0 -> x
  auto w = b.mul(v, b.c(1));    // x * 1 -> x
  auto z = b.bor(w, b.c(0));    // x | 0 -> x
  b.write(out, z);
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;  // deep copy

  auto p = make_constant_fold();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_EQ(count_kind(after, OpKind::kAdd), 0u);
  EXPECT_EQ(count_kind(after, OpKind::kMul), 0u);
  EXPECT_EQ(count_kind(after, OpKind::kOr), 0u);
  expect_equivalent(before, after, 11);
}

TEST(ConstantFold, MuxWithConstantSelect) {
  Builder b("muxc");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  auto v = b.mux(b.c(1, ir::bool_ty()), x, b.c(999));
  b.write(out, v);
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_constant_fold();
  EXPECT_TRUE(p->run(m));
  EXPECT_EQ(count_kind(m, OpKind::kMux), 0u);
}

TEST(Dce, RemovesUnusedComputation) {
  Builder b("dead");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  b.mul(x, x, "dead_mul");  // unused
  b.write(out, x);
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_dce();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_EQ(count_kind(after, OpKind::kMul), 0u);
  expect_equivalent(before, after, 12);
  EXPECT_FALSE(p->run(after));  // idempotent
}

TEST(Dce, KeepsLoopConditionChain) {
  auto ex = workloads::make_example1();
  auto p = make_dce();
  p->run(ex.module);
  ir::validate_or_throw(ex.module);
  // neq (the do-while condition) and its whole fan-in must survive.
  EXPECT_EQ(count_kind(ex.module, OpKind::kNe), 1u);
  EXPECT_EQ(count_kind(ex.module, OpKind::kMul), 3u);
}

TEST(Cse, UnifiesSameBlockExpressions) {
  Builder b("cse");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  auto a = b.add(x, b.c(3));
  auto c = b.add(x, b.c(3));  // duplicate
  b.write(out, b.mul(a, c));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_cse();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_EQ(count_kind(after, OpKind::kAdd), 1u);
  expect_equivalent(before, after, 13);
}

TEST(Cse, UnifiesCommutedOperands) {
  Builder b("csec");
  auto in = b.in("x", int_ty(32));
  auto in2 = b.in("z", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  auto z = b.read(in2);
  auto a = b.add(x, z);
  auto c = b.add(z, x);  // commuted duplicate
  b.write(out, b.sub(a, c));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_cse();
  EXPECT_TRUE(p->run(m));
  EXPECT_EQ(count_kind(m, OpKind::kAdd), 1u);
}

TEST(Cse, UnifiesDuplicatePortReads) {
  Builder b("cser");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto r1 = b.read(in);
  auto r2 = b.read(in);
  b.write(out, b.add(r1, r2));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_cse();
  EXPECT_TRUE(p->run(after));
  EXPECT_EQ(count_kind(after, OpKind::kRead), 1u);
  expect_equivalent(before, after, 14);
}

TEST(Cse, DoesNotUnifyAcrossBlocks) {
  // The same expression inside and outside an if must not unify (the branch
  // may not execute, leaving a stale value).
  Builder b("cseb");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  auto v = b.var("v", int_ty(32));
  b.set(v, b.c(0));
  b.begin_if(b.gt(x, b.c(0)));
  b.set(v, b.add(x, b.c(5)));
  b.end_if();
  auto outer = b.add(x, b.c(5));
  b.write(out, b.sub(b.get(v), outer));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_cse();
  p->run(after);
  ir::validate_or_throw(after);
  expect_equivalent(before, after, 15);
}

TEST(StrengthReduce, MulByPowerOfTwoBecomesShift) {
  Builder b("sr");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  b.write(out, b.mul(x, b.c(8)));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_strength_reduce();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_EQ(count_kind(after, OpKind::kMul), 0u);
  EXPECT_EQ(count_kind(after, OpKind::kShl), 1u);
  expect_equivalent(before, after, 16);
}

TEST(StrengthReduce, MulByTwoTermConstant) {
  Builder b("sr2");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  b.write(out, b.mul(x, b.c(10)));  // 10 = 8 + 2
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_strength_reduce();
  EXPECT_TRUE(p->run(after));
  EXPECT_EQ(count_kind(after, OpKind::kMul), 0u);
  EXPECT_EQ(count_kind(after, OpKind::kShl), 2u);
  EXPECT_EQ(count_kind(after, OpKind::kAdd), 1u);
  expect_equivalent(before, after, 17);
}

TEST(StrengthReduce, UnsignedDivModByPowerOfTwo) {
  Builder b("sr3");
  auto in = b.in("x", uint_ty(16));
  auto outq = b.out("q", uint_ty(16));
  auto outr = b.out("r", uint_ty(16));
  b.begin_counted(2);
  auto x = b.read(in);
  b.write(outq, b.div(x, b.c(16, uint_ty(16))));
  b.write(outr, b.mod(x, b.c(16, uint_ty(16))));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_strength_reduce();
  EXPECT_TRUE(p->run(after));
  EXPECT_EQ(count_kind(after, OpKind::kDiv), 0u);
  EXPECT_EQ(count_kind(after, OpKind::kMod), 0u);
  expect_equivalent(before, after, 18);
}

TEST(StrengthReduce, SignedDivisionIsNotRewritten) {
  Builder b("sr4");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  b.write(out, b.div(x, b.c(4)));  // signed: shift would round differently
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_strength_reduce();
  EXPECT_FALSE(p->run(m));
  EXPECT_EQ(count_kind(m, OpKind::kDiv), 1u);
}

TEST(WidthReduce, NarrowsOpsFeedingTruncation) {
  Builder b("wr");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(8));
  b.begin_counted(2);
  auto x = b.read(in);
  auto s = b.add(x, x);           // 32-bit add...
  auto t = b.trunc(s, 8);         // ...only 8 bits observed
  b.write(out, t);
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_width_reduce();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  bool found_narrow_add = false;
  for (OpId id = 0; id < after.thread.dfg.size(); ++id) {
    const auto& o = after.thread.dfg.op(id);
    if (o.kind == OpKind::kAdd) {
      EXPECT_EQ(o.type.width, 8);
      found_narrow_add = true;
    }
  }
  EXPECT_TRUE(found_narrow_add);
  expect_equivalent(before, after, 19);
}

TEST(WidthReduce, ComparisonInputsKeepFullWidth) {
  Builder b("wr2");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", ir::bool_ty());
  b.begin_counted(2);
  auto x = b.read(in);
  auto s = b.add(x, x);
  b.write(out, b.gt(s, b.c(100)));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_width_reduce();
  p->run(m);
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    const auto& o = m.thread.dfg.op(id);
    if (o.kind == OpKind::kAdd) { EXPECT_EQ(o.type.width, 32); }
  }
}

TEST(Predication, FlattensExample1AndPreservesBehaviour) {
  auto before = workloads::make_example1();
  auto after = before;
  auto p = make_predicate_conversion();
  EXPECT_TRUE(p->run(after.module));
  ir::validate_or_throw(after.module);
  EXPECT_FALSE(
      after.module.thread.tree.has_branches(after.module.thread.tree.root()));
  // mul2 (in the if branch) must now carry a predicate.
  bool found = false;
  for (OpId id = 0; id < after.module.thread.dfg.size(); ++id) {
    const auto& o = after.module.thread.dfg.op(id);
    if (o.name == "mul2_op") {
      EXPECT_TRUE(o.has_pred());
      found = true;
    }
  }
  EXPECT_TRUE(found);
  expect_equivalent(before.module, after.module, 20);
}

TEST(Predication, PredicatedWriteOnlyFiresWhenTaken) {
  Builder b("pw");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(4);
  auto x = b.read(in);
  b.begin_if(b.gt(x, b.c(0)));
  b.write(out, x);
  b.end_if();
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_predicate_conversion();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_FALSE(after.thread.tree.has_branches(after.thread.tree.root()));
  expect_equivalent(before, after, 21);
}

TEST(Predication, NestedIfsCombinePredicatesWithAnd) {
  Builder b("nest");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(6);
  auto x = b.read(in);
  auto v = b.var("v", int_ty(32));
  b.set(v, b.c(0));
  b.begin_if(b.gt(x, b.c(0)));
  b.begin_if(b.lt(x, b.c(10)));
  b.set(v, b.add(x, b.c(1)));
  b.begin_else();
  b.set(v, b.mul(x, b.c(3)));
  b.end_if();
  b.begin_else();
  b.set(v, b.sub(x, b.c(5)));
  b.end_if();
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_predicate_conversion();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  EXPECT_GT(count_kind(after, OpKind::kAnd), 0u);
  expect_equivalent(before, after, 22);
}

TEST(Predication, BranchesWithWaitsMergeStepwise) {
  // then: 2 states, else: 1 state -> merged region has 2 states.
  Builder b("bw");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(4);
  auto x = b.read(in);
  auto v = b.var("v", int_ty(32));
  b.begin_if(b.gt(x, b.c(0)));
  auto a = b.add(x, b.c(1));
  b.wait();  // state boundary inside the branch
  b.set(v, b.mul(a, a));
  b.begin_else();
  b.set(v, b.c(7));
  b.end_if();
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  auto before = b.finish();
  auto after = before;

  auto p = make_predicate_conversion();
  EXPECT_TRUE(p->run(after));
  ir::validate_or_throw(after);
  expect_equivalent(before, after, 23);
}

TEST(BalanceBranches, PadsShorterBranch) {
  Builder b("bal");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto v = b.var("v", int_ty(32));
  b.begin_counted(2);
  auto x = b.read(in);
  b.begin_if(b.gt(x, b.c(0)));
  b.wait();
  b.wait();
  b.set(v, x);
  b.begin_else();
  b.set(v, b.c(0));
  b.end_if();
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  auto p = make_balance_branches();
  EXPECT_TRUE(p->run(m));
  // Both branches now span 2 waits.
  const auto& tree = m.thread.tree;
  for (ir::StmtId sid = 0; sid < tree.size(); ++sid) {
    if (tree.stmt(sid).kind == ir::StmtKind::kIf) {
      EXPECT_EQ(tree.wait_count(tree.stmt(sid).then_body),
                tree.wait_count(tree.stmt(sid).else_body));
    }
  }
  EXPECT_FALSE(p->run(m));  // already balanced
}

TEST(Pipeline, StandardPipelineOnExample1IsSemanticsPreserving) {
  auto before = workloads::make_example1();
  auto after = before;
  auto pm = PassManager::standard_pipeline();
  pm.run_to_fixpoint(after.module);
  ir::validate_or_throw(after.module);
  expect_equivalent(before.module, after.module, 24);
  // The pass-through loop mux for `aver` (outer loop) folds away; the
  // real carried mux must survive.
  EXPECT_EQ(count_kind(after.module, OpKind::kLoopMux), 1u);
}

TEST(ReplaceUses, RewritesOperandsPredsAndConditions) {
  auto ex = workloads::make_example1();
  auto& dfg = ex.module.thread.dfg;
  // Find neq (the do-while condition) and replace it with a constant true.
  OpId neq = ir::kNoOp;
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (dfg.op(id).name == "neq_op") neq = id;
  }
  ASSERT_NE(neq, ir::kNoOp);
  const OpId t = dfg.constant(1, ir::bool_ty());
  replace_uses(ex.module, neq, t);
  EXPECT_EQ(ex.module.thread.tree.stmt(ex.loop).cond, t);
}

}  // namespace
}  // namespace hls::opt
