// Tests for src/synth/: area and power estimation and slack recovery,
// including the paper's Table 3 micro-architecture comparison numbers.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "core/flow.hpp"
#include "synth/power.hpp"
#include "synth/recovery.hpp"
#include "workloads/example1.hpp"

namespace hls::synth {
namespace {

core::FlowResult run_example1(int pipeline_ii) {
  workloads::Workload w;
  auto ex = workloads::make_example1();
  w.name = "example1";
  w.module = std::move(ex.module);
  w.loop = ex.loop;
  core::FlowOptions o;
  o.pipeline_ii = pipeline_ii;
  auto r = core::run_flow(std::move(w), o);
  EXPECT_TRUE(r.success) << r.failure_reason;
  return r;
}

// ---- Table 3: comparing micro-architectures for Example 1 -------------------------
// Paper: S=16094, P2(II=2)=24010, P1(II=1)=30491; cycles/iter 3/2/1.

TEST(Table3, SequentialAreaNearPaper) {
  auto r = run_example1(0);
  EXPECT_EQ(r.machine.loop.initiation_interval(), 3);
  EXPECT_NEAR(r.area.total(), 16094, 0.10 * 16094);
}

TEST(Table3, PipelinedII2AreaNearPaper) {
  auto r = run_example1(2);
  EXPECT_EQ(r.machine.loop.initiation_interval(), 2);
  EXPECT_NEAR(r.area.total(), 24010, 0.10 * 24010);
}

TEST(Table3, PipelinedII1AreaNearPaper) {
  auto r = run_example1(1);
  EXPECT_EQ(r.machine.loop.initiation_interval(), 1);
  EXPECT_NEAR(r.area.total(), 30491, 0.10 * 30491);
}

TEST(Table3, HigherThroughputCostsArea) {
  const double s = run_example1(0).area.total();
  const double p2 = run_example1(2).area.total();
  const double p1 = run_example1(1).area.total();
  EXPECT_LT(s, p2);
  EXPECT_LT(p2, p1);
}

// ---- Area model properties ---------------------------------------------------------

TEST(Area, BreakdownComponentsArePositive) {
  auto r = run_example1(0);
  EXPECT_GT(r.area.functional_units, 0);
  EXPECT_GT(r.area.sharing_muxes, 0);  // the shared multiplier has muxes
  EXPECT_GT(r.area.registers, 0);
  EXPECT_GT(r.area.control, 0);
}

TEST(Area, UnsharedDesignHasNoSharingMuxes) {
  auto r = run_example1(1);  // II=1: one op per instance
  EXPECT_EQ(r.area.sharing_muxes, 0);
}

TEST(Area, PipeliningAddsPipelineRegisters) {
  const double seq_regs = run_example1(0).area.registers;
  const double pipe_regs = run_example1(2).area.registers;
  EXPECT_GT(pipe_regs, seq_regs);
}

// ---- Timing recovery (Table 4 mechanism) ----------------------------------------------

TEST(Recovery, ZeroForNonNegativeSlack) {
  EXPECT_EQ(recovery_area(10000, 0, 1600), 0);
  EXPECT_EQ(recovery_area(10000, 250, 1600), 0);
}

TEST(Recovery, GrowsConvexlyWithViolation) {
  const double a1 = recovery_area(10000, -80, 1600);    // 5% violation
  const double a2 = recovery_area(10000, -160, 1600);   // 10%
  const double a3 = recovery_area(10000, -480, 1600);   // 30%
  EXPECT_GT(a1, 0);
  EXPECT_GT(a2, a1);
  EXPECT_GT(a3, a2);
  // Convexity: doubling the violation more than doubles the cost.
  EXPECT_GT(a2, 2 * a1 * 0.99);
  EXPECT_LT(a3, 10000);  // bounded by the area itself
  // Penalties land in the paper's Table 4 range (2.7%..33%).
  EXPECT_GT(a2 / 10000, 0.02);
  EXPECT_LT(a3 / 10000, 0.75);
}

TEST(Recovery, DownsizingSavesWithGenerousSlack) {
  EXPECT_EQ(downsizing_savings(10000, -5, 1600), 0);
  EXPECT_EQ(downsizing_savings(10000, 0, 1600), 0);
  const double d1 = downsizing_savings(10000, 200, 1600);
  const double d2 = downsizing_savings(10000, 800, 1600);
  EXPECT_LT(d1, 0);
  EXPECT_LT(d2, d1);            // more headroom, more savings
  EXPECT_GT(d2, -0.31 * 10000);  // saturates near 30%
}

TEST(Recovery, AppliedReportUsesWorstSlack) {
  AreaReport base;
  base.functional_units = 8000;
  base.sharing_muxes = 1000;
  auto with_violation = apply_recovery(base, -160, 1600);
  EXPECT_GT(with_violation.timing_recovery, 0);
  auto with_headroom = apply_recovery(base, 400, 1600);
  EXPECT_LT(with_headroom.timing_recovery, 0);
  EXPECT_LT(with_headroom.total(), base.total());
}

// ---- Power model -------------------------------------------------------------------

TEST(Power, ComponentsPositiveAndScaleWithClock) {
  auto r = run_example1(0);
  EXPECT_GT(r.power.dynamic_mw, 0);
  EXPECT_GT(r.power.leakage_mw, 0);

  // Re-estimate at a slower clock: dynamic power must drop.
  const auto& lib = tech::artisan90();
  auto slow = estimate_power(r.machine, lib, 3200, r.area);
  EXPECT_LT(slow.dynamic_mw, r.power.dynamic_mw);
  EXPECT_DOUBLE_EQ(slow.leakage_mw, r.power.leakage_mw);
}

TEST(Power, HigherThroughputCostsPower) {
  // Same clock: II=1 initiates 3x more often than sequential (II=3) and
  // runs 3 multipliers; its power must be higher.
  const auto seq = run_example1(0);
  const auto p1 = run_example1(1);
  EXPECT_GT(p1.power.total_mw(), seq.power.total_mw());
}

TEST(Power, ActivityScalesDynamic) {
  auto r = run_example1(0);
  const auto& lib = tech::artisan90();
  auto half = estimate_power(r.machine, lib, 1600, r.area, 0.5);
  EXPECT_LT(half.dynamic_mw, r.power.dynamic_mw);
  EXPECT_GT(half.dynamic_mw, 0.3 * r.power.dynamic_mw);
}

}  // namespace
}  // namespace hls::synth
