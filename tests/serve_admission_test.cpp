// Tests for the serve layer's capacity machinery (serve/admission.hpp,
// serve/cache.hpp):
//  * CapacityScheduler admits deterministically, in id order, under
//    varying in-flight caps, with per-module exclusion and non-blocking
//    skip of busy modules;
//  * set_capacity evicts the highest-id in-flight jobs and requeues them;
//  * micro_batches covers the boundary sizes (0, 1, cap, cap+1, no cap);
//  * LruEvictionPolicy evicts the least-recently-used unpinned key and
//    never an in-flight (pinned) one;
//  * SessionCache deduplicates by spec key and by module hash, never
//    caches failed compiles, never evicts pinned sessions;
//  * TraceCache prefers the exact tclk bucket, breaks neighbor ties
//    toward the smaller period, and evicts FIFO.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "workloads/workloads.hpp"

namespace hls::serve {
namespace {

// ---- micro_batches ---------------------------------------------------------

std::vector<std::size_t> sizes(const std::vector<MicroBatch>& batches) {
  std::vector<std::size_t> out;
  for (const MicroBatch& b : batches) out.push_back(b.size());
  return out;
}

TEST(MicroBatches, BoundarySizes) {
  EXPECT_TRUE(micro_batches(0, 4).empty());
  EXPECT_EQ(sizes(micro_batches(1, 4)), (std::vector<std::size_t>{1}));
  EXPECT_EQ(sizes(micro_batches(4, 4)), (std::vector<std::size_t>{4}));
  EXPECT_EQ(sizes(micro_batches(5, 4)), (std::vector<std::size_t>{4, 1}));
  EXPECT_EQ(sizes(micro_batches(9, 3)),
            (std::vector<std::size_t>{3, 3, 3}));
}

TEST(MicroBatches, ContiguousAndOrdered) {
  const auto batches = micro_batches(10, 3);
  ASSERT_EQ(batches.size(), 4u);
  std::size_t expect_begin = 0;
  for (const MicroBatch& b : batches) {
    EXPECT_EQ(b.begin, expect_begin);
    EXPECT_LT(b.begin, b.end);
    expect_begin = b.end;
  }
  EXPECT_EQ(batches.back().end, 10u);
}

TEST(MicroBatches, NoCapMeansOneBatch) {
  EXPECT_EQ(sizes(micro_batches(7, 0)), (std::vector<std::size_t>{7}));
  EXPECT_EQ(sizes(micro_batches(7, -1)), (std::vector<std::size_t>{7}));
}

// ---- CapacityScheduler -----------------------------------------------------

TEST(CapacityScheduler, AdmitsInIdOrderUnderCap) {
  CapacityScheduler sched(2);
  // Enqueue out of id order; admission must not care.
  sched.enqueue(3, 0xc);
  sched.enqueue(1, 0xa);
  sched.enqueue(2, 0xb);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_TRUE(sched.admit().empty());  // at capacity
  sched.finish(1);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{3}));
  sched.finish(2);
  sched.finish(3);
  EXPECT_TRUE(sched.idle());
}

TEST(CapacityScheduler, CapacityOneIsStrictlySerial) {
  CapacityScheduler sched(1);
  for (std::int64_t id : {5, 4, 6}) sched.enqueue(id, 0x1000 + id);
  std::vector<std::int64_t> order;
  while (!sched.idle()) {
    const auto admitted = sched.admit();
    ASSERT_EQ(admitted.size(), 1u);
    order.push_back(admitted[0]);
    sched.finish(admitted[0]);
  }
  EXPECT_EQ(order, (std::vector<std::int64_t>{4, 5, 6}));
}

TEST(CapacityScheduler, NonPositiveCapBehavesAsOne) {
  CapacityScheduler sched(0);
  sched.enqueue(1, 0xa);
  sched.enqueue(2, 0xb);
  EXPECT_EQ(sched.capacity(), 1);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{1}));
}

TEST(CapacityScheduler, BusyModuleSkipsWithoutBlocking) {
  CapacityScheduler sched(3);
  sched.enqueue(1, 0xa);
  sched.enqueue(2, 0xa);  // same module as 1: must wait for it
  sched.enqueue(3, 0xb);  // different module: must NOT wait behind 2
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.finish(1);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{2}));
}

TEST(CapacityScheduler, RaisingCapacityAdmitsMore) {
  CapacityScheduler sched(1);
  for (std::int64_t id : {1, 2, 3}) sched.enqueue(id, 0x100 + id);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{1}));
  EXPECT_TRUE(sched.set_capacity(3).empty());  // raising evicts nothing
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{2, 3}));
}

TEST(CapacityScheduler, LoweringCapacityEvictsHighestIdsAndRequeues) {
  CapacityScheduler sched(4);
  for (std::int64_t id : {1, 2, 3, 4}) sched.enqueue(id, 0x100 + id);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{1, 2, 3, 4}));
  // Shrink to 2: jobs 3 and 4 (highest ids) lose their slots and become
  // pending again; 1 and 2 keep running.
  EXPECT_EQ(sched.set_capacity(2), (std::vector<std::int64_t>{3, 4}));
  EXPECT_EQ(sched.inflight(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(sched.pending_count(), 2u);
  EXPECT_TRUE(sched.admit().empty());  // still full
  sched.finish(1);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{3}));
  sched.finish(2);
  sched.finish(3);
  EXPECT_EQ(sched.admit(), (std::vector<std::int64_t>{4}));
}

TEST(CapacityScheduler, DeterministicAcrossCapSweep) {
  // The admitted sequence is a pure function of (job set, cap): running
  // the same job set twice at each cap yields the same admission trace.
  for (int cap : {1, 2, 3, 5}) {
    std::vector<std::vector<std::int64_t>> traces;
    for (int run = 0; run < 2; ++run) {
      CapacityScheduler sched(cap);
      for (std::int64_t id : {7, 2, 9, 4, 1}) {
        sched.enqueue(id, 0xa0 + id % 3);  // some module sharing
      }
      std::vector<std::int64_t> trace;
      while (!sched.idle()) {
        for (std::int64_t id : sched.admit()) trace.push_back(id);
        const auto inflight = sched.inflight();
        ASSERT_FALSE(inflight.empty()) << "admission stalled at cap " << cap;
        sched.finish(inflight.front());  // retire lowest first
      }
      traces.push_back(std::move(trace));
    }
    EXPECT_EQ(traces[0], traces[1]) << "cap " << cap;
  }
}

// ---- LruEvictionPolicy -----------------------------------------------------

TEST(LruEvictionPolicy, EvictsLeastRecentlyUsed) {
  LruEvictionPolicy lru;
  lru.touch(10, 1);
  lru.touch(20, 2);
  lru.touch(30, 3);
  lru.touch(10, 4);  // refresh: 20 is now eldest
  std::uint64_t victim = 0;
  ASSERT_TRUE(lru.victim(&victim));
  EXPECT_EQ(victim, 20u);
}

TEST(LruEvictionPolicy, NeverEvictsPinned) {
  LruEvictionPolicy lru;
  lru.touch(10, 1);
  lru.touch(20, 2);
  lru.pin(10);  // eldest, but in flight
  std::uint64_t victim = 0;
  ASSERT_TRUE(lru.victim(&victim));
  EXPECT_EQ(victim, 20u);
  lru.pin(20);
  EXPECT_FALSE(lru.victim(&victim));  // everything pinned
  lru.unpin(10);
  ASSERT_TRUE(lru.victim(&victim));
  EXPECT_EQ(victim, 10u);
}

TEST(LruEvictionPolicy, PinCountsNest) {
  LruEvictionPolicy lru;
  lru.touch(10, 1);
  lru.pin(10);
  lru.pin(10);
  lru.unpin(10);
  EXPECT_TRUE(lru.pinned(10));  // one pin still outstanding
  lru.unpin(10);
  EXPECT_FALSE(lru.pinned(10));
}

TEST(LruEvictionPolicy, EqualTicksBreakTowardSmallestKey) {
  LruEvictionPolicy lru;
  lru.touch(30, 7);
  lru.touch(10, 7);
  lru.touch(20, 7);
  std::uint64_t victim = 0;
  ASSERT_TRUE(lru.victim(&victim));
  EXPECT_EQ(victim, 10u);
}

// ---- SessionCache ----------------------------------------------------------

TEST(SessionCache, SpecMemoSkipsRecompile) {
  SessionCache cache(4);
  int compiles = 0;
  auto make = [&] {
    ++compiles;
    return workloads::make_ewf();
  };
  const auto first = cache.acquire("workload:ewf", make, 1);
  EXPECT_FALSE(first.cache_hit);
  const auto second = cache.acquire("workload:ewf", make, 2);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(first.session.get(), second.session.get());
  EXPECT_EQ(first.module_hash, second.module_hash);
}

TEST(SessionCache, ModuleHashCollisionSharesSession) {
  // Two spec keys, same design: the second compile is discarded in favor
  // of the cached session, and the new key is memoized.
  SessionCache cache(4);
  auto make = [] { return workloads::make_ewf(); };
  const auto a = cache.acquire("key-a", make, 1);
  const auto b = cache.acquire("key-b", make, 2);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.session.get(), b.session.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // key-b still compiled once to hash
  // ...but a THIRD acquire of key-b is a pure memo hit: no compile.
  int compiles = 0;
  const auto c = cache.acquire(
      "key-b",
      [&] {
        ++compiles;
        return workloads::make_ewf();
      },
      3);
  EXPECT_TRUE(c.cache_hit);
  EXPECT_EQ(compiles, 0);
}

TEST(SessionCache, FailedCompileIsNeverCached) {
  SessionCache cache(4);
  // An empty workload fails front-end validation.
  auto make = [] { return workloads::Workload{}; };
  const auto a = cache.acquire("bad", make, 1);
  ASSERT_NE(a.session, nullptr);
  EXPECT_FALSE(a.session->ok());
  EXPECT_FALSE(a.cache_hit);
  EXPECT_EQ(cache.size(), 0u);
  // Resubmission compiles again (and fails again) rather than hitting.
  const auto b = cache.acquire("bad", make, 2);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SessionCache, EvictsLruNeverPinned) {
  SessionCache cache(2);
  const auto ewf = cache.acquire(
      "ewf", [] { return workloads::make_ewf(); }, 1);
  cache.pin(ewf.module_hash);
  const auto arf = cache.acquire(
      "arf", [] { return workloads::make_arf(); }, 2);
  // Capacity 2, both resident; inserting a third must evict arf (the LRU
  // unpinned session), not the older-but-pinned ewf.
  cache.acquire("crc", [] { return workloads::make_crc32(); }, 3);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains(ewf.module_hash));
  EXPECT_FALSE(cache.contains(arf.module_hash));
  // The evicted session's spec memo went with it: re-acquiring arf
  // compiles again instead of dangling.
  int compiles = 0;
  cache.unpin(ewf.module_hash);
  const auto again = cache.acquire(
      "arf",
      [&] {
        ++compiles;
        return workloads::make_arf();
      },
      4);
  EXPECT_EQ(compiles, 1);
  EXPECT_FALSE(again.cache_hit);
}

// ---- TraceCache ------------------------------------------------------------

sched::ScheduleSeed seed_at(double tclk) {
  sched::ScheduleSeed s;
  s.tclk_ps = tclk;
  s.num_steps = 10;
  return s;
}

TEST(TraceCache, ExactBucketBeatsNeighbor) {
  TraceCache cache(8);
  const TraceKey key{1, 0, 14, sched::BackendKind::kList};
  cache.insert(key, seed_at(1400));
  cache.insert(key, seed_at(1600));
  const auto hit = cache.lookup(key, 1600);
  ASSERT_NE(hit.seed, nullptr);
  EXPECT_TRUE(hit.exact);
  EXPECT_EQ(hit.seed->tclk_ps, 1600);
}

TEST(TraceCache, NearestNeighborTieBreaksTowardSmallerTclk) {
  TraceCache cache(8);
  const TraceKey key{1, 0, 14, sched::BackendKind::kList};
  cache.insert(key, seed_at(1400));
  cache.insert(key, seed_at(1600));
  const auto near_low = cache.lookup(key, 1450);
  ASSERT_NE(near_low.seed, nullptr);
  EXPECT_FALSE(near_low.exact);
  EXPECT_EQ(near_low.seed->tclk_ps, 1400);
  // Equidistant: 1500 is 100 from both donors — the smaller period wins.
  const auto tie = cache.lookup(key, 1500);
  ASSERT_NE(tie.seed, nullptr);
  EXPECT_EQ(tie.seed->tclk_ps, 1400);
}

TEST(TraceCache, KeyFieldsMustMatchExactly) {
  TraceCache cache(8);
  const TraceKey key{1, 4, 14, sched::BackendKind::kList};
  cache.insert(key, seed_at(1400));
  EXPECT_EQ(cache.lookup({2, 4, 14, sched::BackendKind::kList}, 1400).seed,
            nullptr);
  EXPECT_EQ(cache.lookup({1, 5, 14, sched::BackendKind::kList}, 1400).seed,
            nullptr);
  EXPECT_EQ(cache.lookup({1, 4, 15, sched::BackendKind::kList}, 1400).seed,
            nullptr);
  EXPECT_EQ(cache.lookup({1, 4, 14, sched::BackendKind::kSdc}, 1400).seed,
            nullptr);
  EXPECT_NE(cache.lookup(key, 1400).seed, nullptr);
}

TEST(TraceCache, FifoEvictionDropsEldestInsertion) {
  TraceCache cache(2);
  const TraceKey a{1, 0, 14, sched::BackendKind::kList};
  const TraceKey b{2, 0, 14, sched::BackendKind::kList};
  cache.insert(a, seed_at(1400));
  cache.insert(b, seed_at(1500));
  cache.insert(b, seed_at(1700));  // evicts the eldest: a@1400
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(a, 1400).seed, nullptr);
  EXPECT_NE(cache.lookup(b, 1500).seed, nullptr);
  EXPECT_NE(cache.lookup(b, 1700).seed, nullptr);
}

TEST(TraceCache, ReinsertSameBucketReplacesWithoutGrowth) {
  TraceCache cache(4);
  const TraceKey key{1, 0, 14, sched::BackendKind::kList};
  cache.insert(key, seed_at(1400));
  sched::ScheduleSeed updated = seed_at(1400);
  updated.num_steps = 99;
  cache.insert(key, std::move(updated));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(key, 1400);
  ASSERT_NE(hit.seed, nullptr);
  EXPECT_EQ(hit.seed->num_steps, 99);
}

TEST(TraceCache, InvalidateModuleDropsAllItsSeeds) {
  TraceCache cache(8);
  const TraceKey a{1, 0, 14, sched::BackendKind::kList};
  const TraceKey a2{1, 4, 14, sched::BackendKind::kList};
  const TraceKey b{2, 0, 14, sched::BackendKind::kList};
  cache.insert(a, seed_at(1400));
  cache.insert(a2, seed_at(1500));
  cache.insert(b, seed_at(1400));
  cache.invalidate_module(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(a, 1400).seed, nullptr);
  EXPECT_EQ(cache.lookup(a2, 1500).seed, nullptr);
  EXPECT_NE(cache.lookup(b, 1400).seed, nullptr);
}

// ---- Forced eviction (fault-injection levers) ------------------------------

TEST(SessionCache, ForcedEvictionSkipsPinnedSessions) {
  SessionCache cache(4);
  const auto ewf = cache.acquire("ewf", [] { return workloads::make_ewf(); },
                                 1);
  const auto crc = cache.acquire("crc", [] { return workloads::make_crc32(); },
                                 2);
  cache.pin(ewf.module_hash);
  cache.pin(crc.module_hash);
  // Everything pinned: injected pressure must not touch in-flight jobs.
  EXPECT_FALSE(cache.evict_one(nullptr));
  cache.unpin(ewf.module_hash);
  std::uint64_t victim = 0;
  ASSERT_TRUE(cache.evict_one(&victim));
  EXPECT_EQ(victim, ewf.module_hash);  // LRU unpinned, not the pinned one
  EXPECT_FALSE(cache.contains(ewf.module_hash));
  EXPECT_TRUE(cache.contains(crc.module_hash));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(TraceCache, ForcedEvictionDropsEldestAndStopsWhenEmpty) {
  TraceCache cache(8);
  EXPECT_FALSE(cache.evict_one());  // empty: nothing to do
  const TraceKey a{1, 0, 14, sched::BackendKind::kList};
  const TraceKey b{2, 0, 14, sched::BackendKind::kList};
  cache.insert(a, seed_at(1400));
  cache.insert(b, seed_at(1500));
  ASSERT_TRUE(cache.evict_one());
  EXPECT_EQ(cache.lookup(a, 1400).seed, nullptr);  // eldest insertion went
  EXPECT_NE(cache.lookup(b, 1500).seed, nullptr);
  ASSERT_TRUE(cache.evict_one());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.evict_one());
}

// ---- Robustness counters in the stats line ---------------------------------

TEST(ServeStatsCounters, ShedRetryAndCancelReachTheStatsLine) {
  // The counters hls_serve --stats exposes (docs/FAULTS.md): shed at
  // submit, bounded compile retries, cooperative cancellation, and the
  // injected-fault tally — all present in the emitted stats object.
  support::FaultInjector faults;
  faults.arm("session/compile", /*count=*/1);
  ServerOptions options;
  options.threads = 2;
  options.max_queue_depth = 2;
  options.emit_stats = true;
  options.faults = &faults;
  Server server(options);
  auto job = [](std::int64_t id, const char* workload) {
    JobRequest j;
    j.id = id;
    j.workload = workload;
    core::ExploreConfig cfg;
    cfg.curve = "seq";
    cfg.tclk_ps = 1800;
    cfg.latency = 12;
    j.points.push_back(cfg);
    return j;
  };
  std::string error;
  EXPECT_TRUE(server.submit(job(0, "crc32"), &error));   // retried (fault)
  EXPECT_TRUE(server.submit(job(1, "ewf"), &error));     // cancelled below
  EXPECT_FALSE(server.submit(job(2, "arf"), &error));    // shed: depth 2
  EXPECT_NE(error.find("[job/shed]"), std::string::npos);
  server.cancel(1);
  std::string stats_line;
  server.drain([&](const std::string& line) {
    if (line.find("\"stats\"") != std::string::npos) stats_line = line;
  });
  ASSERT_FALSE(stats_line.empty());
  EXPECT_NE(stats_line.find("\"jobs_shed\":1"), std::string::npos);
  EXPECT_NE(stats_line.find("\"jobs_cancelled\":1"), std::string::npos);
  EXPECT_NE(stats_line.find("\"points_cancelled\":1"), std::string::npos);
  EXPECT_NE(stats_line.find("\"compile_retries\":1"), std::string::npos);
  EXPECT_NE(stats_line.find("\"faults_injected\":1"), std::string::npos);
}

// ---- Job parsing: the "min" II form ----------------------------------------

TEST(JobParsing, PointIiMinRequestsMinimumIiSolve) {
  std::vector<JobRequest> jobs;
  std::vector<std::string> errors;
  ASSERT_TRUE(parse_jobs(
      R"({"id": 7, "workload": "ewf",
          "points": [{"tclk_ps": 1800, "latency": 16, "ii": "min"},
                     {"tclk_ps": 1800, "latency": 16, "ii": 4}]})",
      &jobs, &errors));
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].points.size(), 2u);
  EXPECT_TRUE(jobs[0].points[0].solve_min_ii);
  EXPECT_EQ(jobs[0].points[0].pipeline_ii, 0);
  EXPECT_EQ(jobs[0].points[0].curve, "pipelined-16-iimin");
  EXPECT_FALSE(jobs[0].points[1].solve_min_ii);
  EXPECT_EQ(jobs[0].points[1].pipeline_ii, 4);
}

TEST(JobParsing, GridIiAxisMixesNumbersAndMin) {
  std::vector<JobRequest> jobs;
  std::vector<std::string> errors;
  ASSERT_TRUE(parse_jobs(
      R"({"id": 3, "workload": "ewf",
          "grid": {"tclk_ps": [1600, 1800], "latency": [16],
                   "ii": [0, "min"]}})",
      &jobs, &errors));
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(jobs.size(), 1u);
  // latency-major, then II, then tclk: both fixed-II points first.
  ASSERT_EQ(jobs[0].points.size(), 4u);
  EXPECT_FALSE(jobs[0].points[0].solve_min_ii);
  EXPECT_FALSE(jobs[0].points[1].solve_min_ii);
  EXPECT_TRUE(jobs[0].points[2].solve_min_ii);
  EXPECT_TRUE(jobs[0].points[3].solve_min_ii);
  EXPECT_EQ(jobs[0].points[2].pipeline_ii, 0);
  EXPECT_EQ(jobs[0].points[2].curve, "pipelined-16-iimin");
  EXPECT_DOUBLE_EQ(jobs[0].points[2].tclk_ps, 1600);
  EXPECT_DOUBLE_EQ(jobs[0].points[3].tclk_ps, 1800);
}

TEST(JobParsing, MalformedIiIsRejectedWithTheStructuredMessage) {
  std::vector<JobRequest> jobs;
  std::vector<std::string> errors;
  ASSERT_TRUE(parse_jobs(
      R"([{"id": 1, "workload": "ewf",
           "points": [{"tclk_ps": 1800, "latency": 16, "ii": "max"}]},
          {"id": 2, "workload": "ewf",
           "grid": {"tclk_ps": [1800], "latency": [16], "ii": [-2]}}])",
      &jobs, &errors));
  EXPECT_TRUE(jobs.empty());
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("\"ii\" must be a non-negative number or \"min\""),
            std::string::npos)
      << errors[0];
  EXPECT_NE(
      errors[1].find("\"grid.ii\" must hold non-negative numbers or \"min\""),
      std::string::npos)
      << errors[1];
}

}  // namespace
}  // namespace hls::serve
