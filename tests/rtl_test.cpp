// Tests for src/rtl/ and src/pipeline/: straightening/equivalence/SCC/
// folding transforms, FSM+datapath construction, cycle-accurate
// simulation against the interpreter (including randomized pipelined
// designs), and structural Verilog emission.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "frontend/builder.hpp"
#include "ir/interp.hpp"
#include "opt/pass.hpp"
#include "pipeline/equivalence.hpp"
#include "pipeline/scc.hpp"
#include "pipeline/straighten.hpp"
#include "rtl/sim.hpp"
#include "rtl/verilog.hpp"
#include "sched/driver.hpp"
#include "support/rng.hpp"
#include "workloads/example1.hpp"

namespace hls::rtl {
namespace {

using frontend::Builder;
using ir::int_ty;
using ir::OpId;
using ir::Stimulus;

struct Built {
  ir::Module module;
  ir::StmtId loop;
  sched::SchedulerResult result;
  ModuleMachine machine;
};

Built build_example1(sched::SchedulerOptions opts) {
  auto ex = workloads::make_example1();
  pipeline::straighten(ex.module);
  auto region = ir::linearize(ex.module.thread.tree, ex.loop);
  auto lat = ex.module.thread.tree.stmt(ex.loop).latency;
  Built b;
  b.result = sched::schedule_region(ex.module.thread.dfg, region, lat,
                                    ex.module.ports.size(), opts);
  EXPECT_TRUE(b.result.success) << b.result.failure_reason;
  b.loop = ex.loop;
  b.module = std::move(ex.module);
  b.machine = build_machine(b.module, b.loop, b.result.schedule);
  return b;
}

Stimulus example1_stimulus(int n, Rng& rng, bool end_with_zero) {
  std::vector<std::int64_t> mask, chrome, scale, th;
  for (int i = 0; i < n; ++i) {
    const bool zero = end_with_zero && i == n - 1;
    mask.push_back(zero ? 0 : rng.uniform(1, 1000));
    chrome.push_back(rng.uniform(1, 1000));
    scale.push_back(rng.uniform(-8, 8));
    th.push_back(rng.uniform(-500, 500));
  }
  Stimulus s;
  s.set("mask", mask);
  s.set("chrome", chrome);
  s.set("scale", scale);
  s.set("th", th);
  return s;
}

void expect_same_behaviour(const ir::Module& m, const ModuleMachine& mm,
                           const Stimulus& s) {
  const auto ref = ir::interpret(m, s);
  const auto rtl = simulate(mm, s);
  EXPECT_EQ(ir::writes_by_port(m, ref.writes),
            ir::writes_by_port(m, rtl.writes));
}

// ---- Folding --------------------------------------------------------------------

TEST(Fold, Example1II2KernelStructure) {
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 2};
  Built b = build_example1(opts);
  const auto& k = b.machine.loop.folded;
  EXPECT_EQ(k.ii, 2);
  EXPECT_EQ(k.li, 3);
  EXPECT_EQ(k.stages, 2);
  ASSERT_EQ(k.slots.size(), 2u);
  // Kernel edge 0 folds states s1 and s3 (stage 0 and stage 1).
  bool has_stage0 = false;
  bool has_stage1 = false;
  for (const auto& so : k.slots[0]) {
    if (so.stage == 0) has_stage0 = true;
    if (so.stage == 1) has_stage1 = true;
  }
  EXPECT_TRUE(has_stage0);
  EXPECT_TRUE(has_stage1);
  // mask_read (s1) feeds mul3 (s3): it must cross a stage boundary.
  bool mask_crosses = false;
  for (const auto& pr : k.pipe_regs) {
    if (b.module.thread.dfg.op(pr.value).name == "mask_read") {
      mask_crosses = true;
      EXPECT_EQ(pr.chain_length(), 1);
    }
  }
  EXPECT_TRUE(mask_crosses);
  // The aver loop mux is a carried register.
  EXPECT_FALSE(k.carried_regs.empty());
  EXPECT_GT(k.pipe_register_bits(), 0);
}

TEST(Fold, SequentialHasOneStageNoPipeRegs) {
  sched::SchedulerOptions opts;
  Built b = build_example1(opts);
  const auto& k = b.machine.loop.folded;
  EXPECT_EQ(k.stages, 1);
  EXPECT_TRUE(k.pipe_regs.empty());
  EXPECT_EQ(k.prologue_cycles(), 0);
}

TEST(Equivalence, ClassesPartitionSteps) {
  const auto classes = pipeline::equivalence_classes(5, 2);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(classes[1], (std::vector<int>{1, 3}));
}

TEST(Equivalence, ScheduleRespectsEquivalentEdges) {
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 2};
  Built b = build_example1(opts);
  EXPECT_TRUE(pipeline::respects_equivalent_edges(
      b.module.thread.dfg, b.result.schedule, b.machine.loop.region_ops));
}

TEST(Scc, NoWindowViolationInPipelinedSchedules) {
  for (int ii : {1, 2}) {
    sched::SchedulerOptions opts;
    opts.pipeline = {true, ii};
    Built b = build_example1(opts);
    EXPECT_EQ(pipeline::first_scc_window_violation(
                  b.module.thread.dfg, b.machine.loop.region_ops,
                  b.result.schedule),
              -1);
  }
}

// ---- Simulation vs reference interpreter ------------------------------------------

TEST(Sim, SequentialExample1MatchesInterpreter) {
  sched::SchedulerOptions opts;
  Built b = build_example1(opts);
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    expect_same_behaviour(b.module, b.machine,
                          example1_stimulus(20, rng, trial % 2 == 0));
  }
}

TEST(Sim, PipelinedII2Example1MatchesInterpreter) {
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 2};
  Built b = build_example1(opts);
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    expect_same_behaviour(b.module, b.machine,
                          example1_stimulus(24, rng, trial % 2 == 0));
  }
}

TEST(Sim, PipelinedII1Example1MatchesInterpreter) {
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 1};
  Built b = build_example1(opts);
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    expect_same_behaviour(b.module, b.machine,
                          example1_stimulus(24, rng, trial % 2 == 0));
  }
}

TEST(Sim, MeasuredInitiationIntervalMatchesII) {
  for (int ii : {1, 2}) {
    sched::SchedulerOptions opts;
    opts.pipeline = {true, ii};
    Built b = build_example1(opts);
    Rng rng(45);
    // Long run without exits: steady-state initiation each II cycles.
    const auto s = example1_stimulus(64, rng, /*end_with_zero=*/false);
    const auto r = simulate(b.machine, s);
    EXPECT_TRUE(r.stream_exhausted);
    EXPECT_GT(r.iterations_committed, 32);
    EXPECT_NEAR(r.measured_ii(), ii, 0.2) << "II=" << ii;
  }
}

TEST(Sim, SequentialTakesLiCyclesPerIteration) {
  sched::SchedulerOptions opts;
  Built b = build_example1(opts);
  Rng rng(46);
  const auto s = example1_stimulus(32, rng, false);
  const auto r = simulate(b.machine, s);
  EXPECT_NEAR(r.measured_ii(), b.result.schedule.num_steps, 0.2);
}

TEST(Sim, ThroughputAdvantageOfPipelining) {
  // The paper's Table 3 cycles/iteration row: sequential 3, II=2, II=1.
  std::map<int, double> ii_measured;
  for (int mode = 0; mode < 3; ++mode) {
    sched::SchedulerOptions opts;
    if (mode > 0) opts.pipeline = {true, mode};  // II=1, II=2
    Built b = build_example1(opts);
    Rng rng(47);
    const auto s = example1_stimulus(64, rng, false);
    const auto r = simulate(b.machine, s);
    ii_measured[mode == 0 ? 3 : mode] = r.measured_ii();
  }
  EXPECT_NEAR(ii_measured[3], 3.0, 0.2);
  EXPECT_NEAR(ii_measured[2], 2.0, 0.2);
  EXPECT_NEAR(ii_measured[1], 1.0, 0.2);
}

TEST(Sim, CountedPipelinedAccumulator) {
  // acc += x*x over 32 iterations, pipelined II=1; has a carried SCC.
  Builder b("sumsq");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("sum", int_ty(32));
  auto acc = b.var("acc", int_ty(32));
  b.set(acc, b.c(0));
  auto loop = b.begin_counted(32);
  auto x = b.read(in);
  b.set(acc, b.add(b.get(acc), b.mul(x, x)));
  b.wait();
  b.end_loop();
  b.write(out, b.get(acc));
  b.set_latency(loop, 1, 8);
  auto m = b.finish();

  auto region = ir::linearize(m.thread.tree, loop);
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 1};
  auto r = sched::schedule_region(m.thread.dfg, region, {1, 8},
                                  m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  auto mm = build_machine(m, loop, r.schedule);

  Stimulus s;
  std::vector<std::int64_t> xs;
  std::int64_t expected = 0;
  Rng rng(48);
  for (int i = 0; i < 32; ++i) {
    xs.push_back(rng.uniform(-100, 100));
    expected += xs.back() * xs.back();
  }
  s.set("x", xs);
  const auto ref = ir::interpret(m, s);
  const auto sim = simulate(mm, s);
  EXPECT_EQ(ir::writes_by_port(m, ref.writes), ir::writes_by_port(m, sim.writes));
  ASSERT_EQ(ir::writes_by_port(m, sim.writes).at("sum").size(), 1u);
  EXPECT_EQ(ir::writes_by_port(m, sim.writes).at("sum")[0], expected);
  // Cycle count: 32 initiations at II=1 plus the pipeline drain.
  EXPECT_LE(sim.cycles, 32 + r.schedule.num_steps + 2);
  EXPECT_EQ(sim.iterations_committed, 32);
}

TEST(Sim, DoWhileSquashesSpeculativeIterations) {
  // Exit as soon as x == 0; the pipeline speculatively starts younger
  // iterations which must not write.
  Builder b("untilzero");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto fo = b.begin_forever();
  (void)fo;
  auto loop = b.begin_do_while();
  auto x = b.read(in);
  b.write(out, b.mul(x, x));
  b.wait();
  b.end_do_while(b.ne(x, b.c(0)));
  b.end_loop();
  b.set_latency(loop, 1, 6);
  auto m = b.finish();

  auto region = ir::linearize(m.thread.tree, loop);
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 1};
  auto r = sched::schedule_region(m.thread.dfg, region, {1, 6},
                                  m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  auto mm = build_machine(m, loop, r.schedule);

  Stimulus s;
  s.set("x", {3, 5, 0, 7, 9, 11, 13, 15, 17, 19});
  const auto ref = ir::interpret(m, s);
  const auto sim = simulate(mm, s);
  EXPECT_EQ(ir::writes_by_port(m, ref.writes),
            ir::writes_by_port(m, sim.writes));
}

class RandomPipelinedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelinedEquivalence, RtlMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 99);
  Builder b("randeq");
  auto in_a = b.in("a", int_ty(32));
  auto in_b = b.in("bb", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto acc = b.var("acc", int_ty(32));
  b.set(acc, b.c(1));
  auto loop = b.begin_counted(24);
  std::vector<frontend::Val> vals{b.read(in_a), b.read(in_b)};
  const int n = static_cast<int>(rng.uniform(3, 14));
  for (int i = 0; i < n; ++i) {
    auto x = vals[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(vals.size()) - 1))];
    auto y = vals[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(vals.size()) - 1))];
    switch (rng.uniform(0, 3)) {
      case 0: vals.push_back(b.add(x, y)); break;
      case 1: vals.push_back(b.sub(x, y)); break;
      case 2: vals.push_back(b.mul(x, y)); break;
      default: vals.push_back(b.mux(b.gt(x, y), x, y)); break;
    }
  }
  b.set(acc, b.bxor(b.get(acc), vals.back()));
  b.write(out, b.get(acc));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 24);
  auto m = b.finish();

  auto region = ir::linearize(m.thread.tree, loop);
  sched::SchedulerOptions opts;
  opts.pipeline = {true, static_cast<int>(rng.uniform(1, 3))};
  auto r = sched::schedule_region(m.thread.dfg, region, {1, 24},
                                  m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  auto mm = build_machine(m, loop, r.schedule);

  Stimulus s;
  std::vector<std::int64_t> av, bv;
  for (int i = 0; i < 24; ++i) {
    av.push_back(rng.uniform(-5000, 5000));
    bv.push_back(rng.uniform(-5000, 5000));
  }
  s.set("a", av);
  s.set("bb", bv);
  const auto ref = ir::interpret(m, s);
  const auto sim = simulate(mm, s);
  EXPECT_EQ(ir::writes_by_port(m, ref.writes),
            ir::writes_by_port(m, sim.writes));
  EXPECT_EQ(sim.iterations_committed, 24);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelinedEquivalence,
                         ::testing::Range(0, 16));

// ---- Verilog emission ---------------------------------------------------------------

TEST(Verilog, EmitsWellFormedModule) {
  sched::SchedulerOptions opts;
  opts.pipeline = {true, 2};
  Built b = build_example1(opts);
  const std::string v = emit_verilog(b.machine);
  EXPECT_NE(v.find("module example1"), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("output reg"), std::string::npos);
  EXPECT_NE(v.find("stage_valid"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Pipeline register chain for mask_read crossing a stage.
  EXPECT_NE(v.find("r_mask_read_p1"), std::string::npos);
  // begin/end balance.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = v.find("begin", pos)) != std::string::npos;
       ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0; (pos = v.find("end", pos)) != std::string::npos;
       ++pos) {
    ++ends;  // counts "end", "endmodule", and the "end" inside "endmodule"
  }
  EXPECT_GE(ends, begins);
}

TEST(Verilog, SequentialEmissionMentionsSharing) {
  sched::SchedulerOptions opts;
  Built b = build_example1(opts);
  const std::string v = emit_verilog(b.machine);
  // The single multiplier hosts three ops.
  EXPECT_NE(v.find("mul32[0]: 3 op(s)"), std::string::npos);
  EXPECT_NE(v.find("kstate"), std::string::npos);
}

}  // namespace
}  // namespace hls::rtl
