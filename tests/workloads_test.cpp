// Tests for src/workloads/: every bundled kernel validates and interprets,
// numeric correctness against independent references (FIR convolution,
// EWF/ARF/CRC32/IDCT/Sobel), random CDFG determinism, and the profiling
// suite's paper size range.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/diagnostics.hpp"

#include "ir/interp.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {
namespace {

using ir::interpret;
using ir::Stimulus;

// ---- Validity of every bundled workload ----------------------------------------------

class AllWorkloads : public ::testing::TestWithParam<int> {
 public:
  static std::vector<Workload> make_all() { return suite(); }
};

TEST_P(AllWorkloads, ValidatesAndInterprets) {
  auto all = make_all();
  auto& w = all[static_cast<std::size_t>(GetParam())];
  DiagEngine diags;
  ASSERT_TRUE(ir::validate(w.module, diags)) << w.name << "\n"
                                             << diags.to_string();
  EXPECT_GT(w.op_count(), 0);
  // Drive every input with a short random stream; the module must produce
  // at least one output without tripping any internal checks.
  Rng rng(99);
  Stimulus s;
  for (const auto& p : w.module.ports) {
    if (p.dir != ir::PortDir::kIn) continue;
    std::vector<std::int64_t> v;
    for (int i = 0; i < 8; ++i) v.push_back(rng.uniform(-100, 100));
    s.set(p.name, std::move(v));
  }
  const auto r = interpret(w.module, s);
  EXPECT_FALSE(r.writes.empty()) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::Range(0, static_cast<int>(suite().size())),
                         [](const auto& param_info) {
                           return AllWorkloads::make_all()
                               [static_cast<std::size_t>(param_info.param)]
                                   .name;
                         });

// ---- Numeric correctness against independent references ---------------------------------

TEST(Fir, MatchesDirectConvolution) {
  const int taps = 8;
  auto w = make_fir(taps);
  Rng rng(5);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 32; ++i) xs.push_back(rng.uniform(-1000, 1000));
  Stimulus s;
  s.set("x", xs);
  const auto r = interpret(w.module, s);
  const auto ys = ir::writes_by_port(w.module, r.writes).at("y");
  ASSERT_EQ(ys.size(), 32u);
  // Reference: same coefficient rule as the generator.
  std::vector<std::int64_t> coef;
  for (int i = 0; i < taps; ++i) coef.push_back(2 * ((i * 37) % 31) + 3);
  for (int n = 0; n < 32; ++n) {
    std::int64_t acc = 0;
    for (int i = 0; i < taps; ++i) {
      const std::int64_t x = n - i >= 0 ? xs[static_cast<std::size_t>(n - i)] : 0;
      acc += coef[static_cast<std::size_t>(i)] * x;
    }
    EXPECT_EQ(ys[static_cast<std::size_t>(n)], acc) << "sample " << n;
  }
}

TEST(Crc32, MatchesBitwiseReference) {
  auto w = make_crc32();
  std::vector<std::int64_t> data = {0x31, 0x32, 0x33, 0x34, 0x35};  // "12345"
  Stimulus s;
  s.set("data", data);
  const auto r = interpret(w.module, s);
  const auto crcs = ir::writes_by_port(w.module, r.writes).at("crc");
  ASSERT_EQ(crcs.size(), data.size());
  // Reference CRC-32 (reflected, poly 0xEDB88320), running value per byte.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < data.size(); ++i) {
    crc ^= static_cast<std::uint32_t>(data[i]);
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    EXPECT_EQ(static_cast<std::uint32_t>(crcs[i]), crc ^ 0xFFFFFFFFu)
        << "byte " << i;
  }
}

TEST(Idct8, CloseToDoublePrecisionReference) {
  auto w = make_idct8();
  Rng rng(11);
  Stimulus s;
  std::vector<std::vector<std::int64_t>> cols(8);
  for (int i = 0; i < 8; ++i) {
    for (int c = 0; c < 4; ++c) {
      cols[static_cast<std::size_t>(i)].push_back(rng.uniform(-256, 256));
    }
    s.set("x" + std::to_string(i), cols[static_cast<std::size_t>(i)]);
  }
  const auto r = interpret(w.module, s);
  const auto by_port = ir::writes_by_port(w.module, r.writes);
  const double pi = 3.14159265358979323846;
  for (int col = 0; col < 4; ++col) {
    for (int k = 0; k < 8; ++k) {
      // Reference mirrors the generator's coefficient definition.
      double acc = 0;
      for (int n = 0; n < 8; ++n) {
        const double c = (n == 0 ? std::sqrt(0.5) : 1.0) *
                         std::cos((2 * k + 1) * n * pi / 16.0) * 0.5;
        acc += c * static_cast<double>(
                       cols[static_cast<std::size_t>(n)]
                           [static_cast<std::size_t>(col)]);
      }
      const auto got =
          by_port.at("y" + std::to_string(k))[static_cast<std::size_t>(col)];
      EXPECT_NEAR(static_cast<double>(got), acc, 2.5)
          << "col " << col << " k " << k;
    }
  }
}

TEST(Ewf, OpMixMatchesTheClassicBenchmark) {
  auto w = make_ewf();
  int muls = 0;
  int adds = 0;
  const auto& dfg = w.module.thread.dfg;
  for (ir::OpId id = 0; id < dfg.size(); ++id) {
    if (dfg.op(id).kind == ir::OpKind::kMul) ++muls;
    if (dfg.op(id).kind == ir::OpKind::kAdd) ++adds;
  }
  EXPECT_EQ(muls, 8);
  EXPECT_EQ(adds, 26);
}

TEST(Arf, OpMixMatchesTheClassicBenchmark) {
  auto w = make_arf();
  int muls = 0;
  const auto& dfg = w.module.thread.dfg;
  for (ir::OpId id = 0; id < dfg.size(); ++id) {
    if (dfg.op(id).kind == ir::OpKind::kMul) ++muls;
  }
  EXPECT_EQ(muls, 16);
}

TEST(Sobel, ComputesGradientMagnitude) {
  auto w = make_sobel();
  Stimulus s;
  // Vertical edge: left column 0, right column 100.
  const std::int64_t px[9] = {0, 50, 100, 0, 50, 100, 0, 50, 100};
  for (int i = 0; i < 9; ++i) {
    s.set("p" + std::to_string(i), {px[i]});
  }
  const auto r = interpret(w.module, s);
  const auto mags = ir::writes_by_port(w.module, r.writes).at("mag");
  ASSERT_EQ(mags.size(), 1u);
  // gx = (p2 + 3 p5 + p8) - (p0 + 3 p3 + p6) = 500; gy = 0.
  EXPECT_EQ(mags[0], 500);
}

// ---- Random CDFG generator and suite ---------------------------------------------------

TEST(RandomCdfg, DeterministicForSeed) {
  RandomCdfgOptions opts;
  opts.target_ops = 300;
  auto a = make_random_cdfg(123, opts);
  auto b = make_random_cdfg(123, opts);
  // Same seed: structurally identical. Different seed: different DAG
  // (sizes may coincide because generation targets an op count).
  EXPECT_EQ(ir::print_module(a.module), ir::print_module(b.module));
  auto c = make_random_cdfg(124, opts);
  EXPECT_NE(ir::print_module(a.module), ir::print_module(c.module));
}

TEST(RandomCdfg, HitsTargetSize) {
  for (int target : {100, 500, 2000}) {
    RandomCdfgOptions opts;
    opts.target_ops = target;
    auto w = make_random_cdfg(55, opts);
    EXPECT_GE(w.op_count(), target);
    EXPECT_LE(w.op_count(), target + target / 2 + 40);
  }
}

TEST(Suite, CoversThePaperSizeRange) {
  const auto suite = make_profile_suite();
  EXPECT_GE(suite.size(), 35u);
  int min_ops = 1 << 30;
  int max_ops = 0;
  double total = 0;
  std::set<std::string> names;
  for (const auto& w : suite) {
    DiagEngine diags;
    EXPECT_TRUE(ir::validate(w.module, diags)) << w.name;
    names.insert(w.name);
    const int n = w.op_count();
    min_ops = std::min(min_ops, n);
    max_ops = std::max(max_ops, n);
    total += n;
  }
  EXPECT_EQ(names.size(), suite.size());  // unique names
  // Paper: 100 to over 6000 ops, average 1400.
  EXPECT_LT(min_ops, 120);
  EXPECT_GT(max_ops, 5000);
  const double avg = total / static_cast<double>(suite.size());
  EXPECT_GT(avg, 700);
  EXPECT_LT(avg, 2200);
}

}  // namespace
}  // namespace hls::workloads
