// Cross-config warm-start equivalence golden suite: a run seeded from a
// neighboring configuration's recorded ScheduleSeed must produce EXACTLY
// the result a cold solve produces — same placements, same latency, same
// II, same first-pass restraint trace — for every workloads::suite()
// kernel, across a small tclk × latency × II grid, on both backends.
//
// This is the contract that lets the serve layer's trace cache change
// pass counts without ever changing results (docs/SCHEDULER.md, "Seeding
// rules"). The ladder-following protocol makes the first seeded pass a
// cold pass by construction; this suite pins the rest empirically: the
// one-jump shortcut either lands on the cold ladder's own destination or
// rolls back onto it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

// Everything the scheduler decided, rendered to text. Pass counts and
// seed bookkeeping are deliberately excluded — they are exactly what a
// seed is ALLOWED to change.
std::string result_fingerprint(const FlowResult& r) {
  if (!r.success) return "FAILED: " + r.failure_reason;
  std::string out = r.sched.schedule.to_table(r.module->thread.dfg);
  out += "num_steps=" + std::to_string(r.sched.schedule.num_steps);
  return out;
}

// The first pass of a seeded neighbor run must BE a cold pass: same
// restraints, same success bit. (Exact-tclk replays are exempt — their
// "first pass" is the donor's final pass by design.)
void expect_first_pass_cold(const FlowResult& cold, const FlowResult& seeded,
                            const std::string& label) {
  ASSERT_FALSE(cold.sched.history.empty()) << label;
  ASSERT_FALSE(seeded.sched.history.empty()) << label;
  const auto& cold_first = cold.sched.history.front();
  const auto& seed_first = seeded.sched.history.front();
  EXPECT_EQ(cold_first.success, seed_first.success) << label;
  EXPECT_EQ(cold_first.num_steps, seed_first.num_steps) << label;
  EXPECT_EQ(cold_first.restraints, seed_first.restraints) << label;
}

TEST(SeedGolden, NeighborSeededEqualsColdAcrossSuiteGridBothBackends) {
  const std::vector<double> tclks = {1600, 1900, 2200};
  struct Shape {
    int latency;
    int ii;
  };
  const std::vector<Shape> shapes = {{12, 0}, {16, 0}, {16, 8}};

  for (const auto& w : workloads::suite()) {
    const FlowSession session(w);
    ASSERT_TRUE(session.ok()) << w.name;
    for (auto backend : {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
      for (const Shape& shape : shapes) {
        // Cold ladder: solve every tclk unseeded, recording seeds.
        std::vector<FlowResult> cold;
        for (double tclk : tclks) {
          FlowOptions o;
          o.tclk_ps = tclk;
          o.backend = backend;
          o.pipeline_ii = shape.ii;
          o.latency_min = shape.latency;
          o.latency_max = shape.latency;
          o.emit_verilog = false;
          o.record_seed = true;
          cold.push_back(session.run(o));
        }
        // Seed every grid point from each adjacent neighbor (both the
        // smaller- and larger-tclk donor, mirroring the trace cache's
        // nearest-neighbor rule) and demand an identical result.
        for (std::size_t i = 0; i < tclks.size(); ++i) {
          for (const std::size_t donor : {i - 1, i + 1}) {
            if (donor >= tclks.size()) continue;
            if (!cold[donor].success) continue;  // no seed was recorded
            FlowOptions o;
            o.tclk_ps = tclks[i];
            o.backend = backend;
            o.pipeline_ii = shape.ii;
            o.latency_min = shape.latency;
            o.latency_max = shape.latency;
            o.emit_verilog = false;
            o.seed = &cold[donor].sched.seed_out;
            const FlowResult seeded = session.run(o);
            const std::string label =
                w.name + " backend=" +
                std::string(backend == sched::BackendKind::kList ? "list"
                                                                 : "sdc") +
                " latency=" + std::to_string(shape.latency) +
                " ii=" + std::to_string(shape.ii) +
                " tclk=" + std::to_string(tclks[i]) +
                " donor=" + std::to_string(tclks[donor]);
            EXPECT_EQ(result_fingerprint(cold[i]), result_fingerprint(seeded))
                << label;
            expect_first_pass_cold(cold[i], seeded, label);
            EXPECT_NE(seeded.sched.seed_use, sched::SeedUse::kNone) << label;
            EXPECT_NE(seeded.sched.seed_use, sched::SeedUse::kReplay) << label;
          }
        }
      }
    }
  }
}

TEST(SeedGolden, ExactConfigReplayIsByteIdenticalAndOnePass) {
  for (const auto& w : workloads::suite()) {
    const FlowSession session(w);
    ASSERT_TRUE(session.ok()) << w.name;
    FlowOptions o;
    o.tclk_ps = 1900;
    o.latency_min = 16;
    o.latency_max = 16;
    o.emit_verilog = false;
    o.record_seed = true;
    const FlowResult cold = session.run(o);
    if (!cold.success) continue;
    FlowOptions replay = o;
    replay.record_seed = false;
    replay.seed = &cold.sched.seed_out;
    const FlowResult seeded = session.run(replay);
    EXPECT_EQ(result_fingerprint(cold), result_fingerprint(seeded)) << w.name;
    EXPECT_EQ(seeded.sched.seed_use, sched::SeedUse::kReplay) << w.name;
    EXPECT_EQ(seeded.sched.passes, 1) << w.name;
  }
}

TEST(SeedGolden, IncompatibleSeedIsIgnoredNotApplied) {
  const auto w = workloads::make_ewf();
  const FlowSession session(w);
  ASSERT_TRUE(session.ok());
  FlowOptions o;
  o.tclk_ps = 1900;
  o.latency_min = 14;
  o.latency_max = 14;
  o.emit_verilog = false;
  o.record_seed = true;
  const FlowResult cold = session.run(o);
  ASSERT_TRUE(cold.success);

  // Wrong backend, wrong pipelining shape: the driver must treat both as
  // a miss and still reproduce the cold result.
  for (auto mutate : {+[](sched::ScheduleSeed& s) {
                        s.backend = sched::BackendKind::kSdc;
                      },
                      +[](sched::ScheduleSeed& s) {
                        s.pipelined = true;
                        s.ii = 4;
                      }}) {
    sched::ScheduleSeed bad = cold.sched.seed_out;
    mutate(bad);
    FlowOptions seeded_opts = o;
    seeded_opts.record_seed = false;
    seeded_opts.seed = &bad;
    const FlowResult seeded = session.run(seeded_opts);
    EXPECT_EQ(result_fingerprint(cold), result_fingerprint(seeded));
    EXPECT_EQ(seeded.sched.seed_use, sched::SeedUse::kMiss);
  }
}

}  // namespace
}  // namespace hls::core
