// Golden-schedule determinism suite for the scheduler hot-path refactor:
//  * every workloads::suite() kernel at II ∈ {0, 1, 2} must hash to the
//    exact schedule (placements, arrivals, restraint trace) produced by
//    the pre-refactor scheduler — the embedded constants below were
//    captured from the full-rescan implementation;
//  * serial and threaded explore() stay point-identical over the new
//    scheduler;
//  * warm-started relaxation passes produce bit-identical results to
//    cold (from-scratch) passes.
//
// Regenerating the table (after an INTENDED schedule change): run this
// binary with HLS_GOLDEN_REGEN=1 and paste the printed table.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "alloc/estimate.hpp"
#include "core/explore.hpp"
#include "core/session.hpp"
#include "ir/analysis.hpp"
#include "pipeline/straighten.hpp"
#include "sched/driver.hpp"
#include "support/strings.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

// ---- Schedule serialization -------------------------------------------------

// FNV-1a 64-bit over the serialized schedule text.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// The full schedule as text: every placement (step, pool, instance,
// arrival), the worst slack, and the complete restraint/relaxation trace.
// Arrivals are fixed to 1e-4 ps so the text is stable across math-library
// ulp differences while still catching any real timing change.
std::string serialize(const FlowResult& r) {
  std::string s = r.success ? "ok" : "FAILED: " + r.failure_reason;
  s += strf("\npasses=", r.sched.passes,
            " relaxations=", r.sched.relaxations(), "\n");
  if (r.success) {
    const sched::Schedule& sch = r.sched.schedule;
    s += strf("steps=", sch.num_steps, " pipelined=", sch.pipeline.enabled,
              " ii=", sch.pipeline.ii,
              " worst_slack=", fmt_fixed(sch.worst_slack_ps, 4), "\n");
    for (std::size_t id = 0; id < sch.placement.size(); ++id) {
      const sched::OpPlacement& pl = sch.placement[id];
      if (!pl.scheduled) continue;
      s += strf("%", id, " s", pl.step, " p", pl.pool, " i", pl.instance,
                " a", fmt_fixed(pl.arrival_ps, 4), "\n");
    }
  }
  for (const sched::PassRecord& rec : r.sched.history) {
    s += strf("pass ", rec.pass_number, " steps=", rec.num_steps,
              " ok=", rec.success, " relaxed=", rec.relaxed, "\n");
    for (const std::string& restraint : rec.restraints) {
      s += "  " + restraint + "\n";
    }
    if (!rec.action.empty()) s += "  -> " + rec.action + "\n";
  }
  return s;
}

std::uint64_t schedule_hash(const workloads::Workload& w, int ii) {
  FlowOptions o;
  o.pipeline_ii = ii;
  o.emit_verilog = false;
  const FlowSession session(w);
  return fnv1a(serialize(session.run(o)));
}

// ---- Golden table -----------------------------------------------------------

struct Golden {
  const char* name;
  int ii;
  std::uint64_t hash;
};

// Captured from the pre-refactor (full-rescan) scheduler; the refactored
// scheduler must reproduce every schedule byte for byte.
const Golden kGolden[] = {
    // clang-format off
    {"fir16", 0, 10003561045123619741ull},
    {"fir16", 1, 5514206739154305385ull},
    {"fir16", 2, 12521723699291214752ull},
    {"ewf", 0, 5689328697306417690ull},
    {"ewf", 1, 4765043267926891136ull},
    {"ewf", 2, 17360199563463667465ull},
    {"arf", 0, 7779683114790634946ull},
    {"arf", 1, 12124853150240440288ull},
    {"arf", 2, 15260454016208241953ull},
    {"crc32", 0, 9824933647608091324ull},
    {"crc32", 1, 17118390979211171908ull},
    {"crc32", 2, 16095283284320541840ull},
    {"fft8", 0, 17771874567909579898ull},
    {"fft8", 1, 8815319753705740358ull},
    {"fft8", 2, 11435463741990301139ull},
    {"dct8", 0, 17527478051141109785ull},
    {"dct8", 1, 13204981808679302120ull},
    {"dct8", 2, 9519487193487437296ull},
    {"idct8", 0, 2189562551344306224ull},
    {"idct8", 1, 9557127093202655845ull},
    {"idct8", 2, 9108361458502411381ull},
    {"conv3x3", 0, 14888560063404535796ull},
    {"conv3x3", 1, 14410770143452636077ull},
    {"conv3x3", 2, 15353637563294299071ull},
    {"sobel", 0, 13819336629871952092ull},
    {"sobel", 1, 5306670583295784066ull},
    {"sobel", 2, 8901203364055785428ull},
    {"banked_fir", 0, 9929501310269792292ull},
    {"banked_fir", 1, 9117976113646896403ull},
    {"banked_fir", 2, 5103256508794859553ull},
    {"transpose4", 0, 1350249617972492515ull},
    {"transpose4", 1, 90739056208431979ull},
    {"transpose4", 2, 7975797190507510261ull},
    {"stencil_row", 0, 1347082563062673650ull},
    {"stencil_row", 1, 4265507960537316217ull},
    {"stencil_row", 2, 18254965948077725994ull},
    {"rand7", 0, 8131484479129798431ull},
    {"rand7", 1, 5519097902058265206ull},
    {"rand7", 2, 5645597170538429115ull},
    // clang-format on
};

TEST(SchedGolden, SuiteSchedulesAreByteIdenticalToPreRefactor) {
  const auto suite = workloads::suite();
  if (std::getenv("HLS_GOLDEN_REGEN") != nullptr) {
    for (const auto& w : suite) {
      for (int ii : {0, 1, 2}) {
        std::printf("    {\"%s\", %d, %lluull},\n", w.name.c_str(), ii,
                    static_cast<unsigned long long>(schedule_hash(w, ii)));
      }
    }
    GTEST_SKIP() << "regeneration mode: table printed, nothing asserted";
  }
  std::size_t checked = 0;
  for (const auto& w : suite) {
    for (int ii : {0, 1, 2}) {
      const std::uint64_t h = schedule_hash(w, ii);
      bool found = false;
      for (const Golden& g : kGolden) {
        if (w.name == g.name && ii == g.ii) {
          EXPECT_EQ(h, g.hash) << w.name << " at II=" << ii
                               << ": schedule diverged from pre-refactor";
          found = true;
          ++checked;
          break;
        }
      }
      EXPECT_TRUE(found) << "no golden entry for " << w.name
                         << " at II=" << ii
                         << " (regenerate with HLS_GOLDEN_REGEN=1)";
    }
  }
  EXPECT_EQ(checked, suite.size() * 3);
}

// ---- Warm-started ≡ cold relaxation passes ----------------------------------

// Everything a SchedulerResult determines, with arrivals at full bit
// precision: warm and cold passes run in the same binary, so they must
// match exactly, not just to printed precision.
std::string scheduler_fingerprint(const sched::SchedulerResult& r) {
  std::string s =
      strf("success=", r.success, " passes=", r.passes, " failure=\"",
           r.failure_reason, "\"\n");
  if (r.success) {
    const sched::Schedule& sch = r.schedule;
    s += strf("steps=", sch.num_steps, "\n");
    for (std::size_t id = 0; id < sch.placement.size(); ++id) {
      const sched::OpPlacement& pl = sch.placement[id];
      if (!pl.scheduled) continue;
      const auto bits = std::bit_cast<std::uint64_t>(pl.arrival_ps);
      s += strf("%", id, " s", pl.step, " p", pl.pool, " i", pl.instance,
                " a", bits, "\n");
    }
    s += strf("worst=", std::bit_cast<std::uint64_t>(sch.worst_slack_ps),
              "\n");
  }
  for (const sched::PassRecord& rec : r.history) {
    s += strf("pass ", rec.pass_number, " steps=", rec.num_steps,
              " ok=", rec.success, " relaxed=", rec.relaxed, "\n");
    for (const std::string& restraint : rec.restraints) {
      s += "  " + restraint + "\n";
    }
    if (!rec.action.empty()) s += "  -> " + rec.action + "\n";
  }
  return s;
}

TEST(SchedGolden, WarmStartedPassesMatchColdPassesBitExactly) {
  auto designs = workloads::suite();
  // The suite kernels are small; warm starts earn their keep (and hit the
  // AddResource/ForbidBinding frontier rules) on relaxation-heavy sized
  // designs, so pin one of the bench's random CDFGs too.
  workloads::RandomCdfgOptions sized;
  sized.target_ops = 400;
  designs.push_back(workloads::make_random_cdfg(400, sized));
  for (auto& w : designs) {
    for (int ii : {0, 2}) {
      workloads::Workload wl = w;  // straighten mutates the module
      pipeline::straighten(wl.module);
      const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
      const auto latency = wl.module.thread.tree.stmt(wl.loop).latency;

      sched::SchedulerOptions cold;
      cold.warm_start = false;
      cold.memory = &wl.memory;  // empty specs are ignored by build_problem
      if (ii > 0) {
        cold.pipeline.enabled = true;
        cold.pipeline.ii = ii;
      }
      sched::SchedulerOptions warm = cold;
      warm.warm_start = true;

      const auto r_cold = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          cold);
      const auto r_warm = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          warm);
      EXPECT_EQ(scheduler_fingerprint(r_cold), scheduler_fingerprint(r_warm))
          << w.name << " at II=" << ii;
    }
  }
}

// SDC passes warm-start through the same driver path as list passes
// (trace replay up to the invalidation frontier, plus re-derived
// constraint bounds for the prefix); the A/B mirrors the list suite but
// covers II ∈ {0, 1, 2} and pins a relaxation-heavy sized design so the
// AddResource/ForbidBinding frontier rules fire for the SDC replay too.
TEST(SchedGolden, SdcWarmStartedPassesMatchColdPassesBitExactly) {
  auto designs = workloads::suite();
  workloads::RandomCdfgOptions sized;
  sized.target_ops = 400;
  designs.push_back(workloads::make_random_cdfg(400, sized));
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const auto& w = designs[i];
    // The appended 400-op design is expensive through the SDC core; its
    // relaxation-heavy sequential run alone covers the frontier rules.
    const bool sized_design = i + 1 == designs.size();
    for (int ii : {0, 1, 2}) {
      if (sized_design && ii > 0) continue;
      workloads::Workload wl = w;  // straighten mutates the module
      pipeline::straighten(wl.module);
      const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
      const auto latency = wl.module.thread.tree.stmt(wl.loop).latency;

      sched::SchedulerOptions cold;
      cold.backend = sched::BackendKind::kSdc;
      cold.warm_start = false;
      cold.memory = &wl.memory;
      if (ii > 0) {
        cold.pipeline.enabled = true;
        cold.pipeline.ii = ii;
      }
      sched::SchedulerOptions warm = cold;
      warm.warm_start = true;

      const auto r_cold = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          cold);
      const auto r_warm = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          warm);
      EXPECT_EQ(scheduler_fingerprint(r_cold), scheduler_fingerprint(r_warm))
          << w.name << " at II=" << ii << " [sdc]";
    }
  }
}

// ---- Backend equivalence: SDC vs list ---------------------------------------

// Structural validity of a schedule, checked from first principles (not
// through the driver's internal check): dependences, occupancy including
// pipeline-equivalent slots and multi-cycle spans, SCC windows, port
// write order, and timing unless the expert accepted negative slack.
void expect_structurally_valid(const workloads::Workload& w,
                               const ir::LinearRegion& region,
                               const sched::SchedulerResult& r,
                               const std::string& label) {
  const ir::Dfg& dfg = w.module.thread.dfg;
  const sched::Schedule& s = r.schedule;
  const auto ops = region.all_ops();
  std::vector<bool> in_region(dfg.size(), false);
  for (ir::OpId id : ops) in_region[id] = true;

  for (ir::OpId id : ops) {
    const sched::OpPlacement& pl = s.placement[id];
    ASSERT_TRUE(pl.scheduled) << label << ": op %" << id << " unscheduled";
    EXPECT_GE(pl.step, 0) << label;
    EXPECT_LT(pl.step, s.num_steps) << label;
    const int pool = s.resources.pool_of(id);
    EXPECT_EQ(pl.pool, pool) << label << ": op %" << id;
    if (pool >= 0) {
      EXPECT_GE(pl.instance, 0) << label;
      EXPECT_LT(pl.instance,
                s.resources.pools[static_cast<std::size_t>(pool)].count)
          << label;
    }
  }
  // Dependences (carried loop-mux edges excluded).
  for (ir::OpId id : ops) {
    const ir::Op& o = dfg.op(id);
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == ir::OpKind::kLoopMux && i == 1) continue;
      const ir::OpId d = o.operands[i];
      if (d == ir::kNoOp || dfg.is_const(d) || !in_region[d]) continue;
      EXPECT_LE(s.placement[d].step, s.placement[id].step)
          << label << ": op %" << id << " before operand %" << d;
    }
  }
  // Occupancy: colocated ops must be mutually exclusive.
  std::map<std::tuple<int, int, int>, std::vector<ir::OpId>> occ;
  for (ir::OpId id : ops) {
    const sched::OpPlacement& pl = s.placement[id];
    if (pl.pool < 0) continue;
    const int lat =
        s.resources.pools[static_cast<std::size_t>(pl.pool)].latency_cycles;
    for (int t = pl.step - lat; t < pl.step - lat + std::max(1, lat); ++t) {
      occ[{pl.pool, pl.instance, s.kernel_step(t)}].push_back(id);
    }
  }
  for (const auto& [key, colocated] : occ) {
    for (std::size_t i = 0; i < colocated.size(); ++i) {
      for (std::size_t j = i + 1; j < colocated.size(); ++j) {
        EXPECT_TRUE(alloc::mutually_exclusive(dfg, colocated[i],
                                              colocated[j]))
            << label << ": ops %" << colocated[i] << " and %" << colocated[j]
            << " share an instance slot";
      }
    }
  }
  // SCC windows (re-derived from the DFG, not taken from the scheduler).
  if (s.pipeline.enabled) {
    for (const auto& scc : ir::nontrivial_sccs(dfg)) {
      if (!std::all_of(scc.begin(), scc.end(),
                       [&](ir::OpId id) { return in_region[id]; })) {
        continue;
      }
      int lo = s.num_steps;
      int hi = -1;
      for (ir::OpId id : scc) {
        lo = std::min(lo, s.placement[id].step);
        hi = std::max(hi, s.placement[id].step);
      }
      EXPECT_LE(hi - lo, s.pipeline.ii - 1) << label << ": SCC window";
    }
  }
  // Port write order.
  std::map<int, std::vector<ir::OpId>> port_writes;
  for (ir::OpId id : ops) {
    const ir::Op& o = dfg.op(id);
    if (o.kind == ir::OpKind::kWrite) {
      port_writes[static_cast<int>(o.port)].push_back(id);
    }
  }
  for (const auto& [port, writes] : port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      EXPECT_LE(s.placement[writes[i - 1]].step, s.placement[writes[i]].step)
          << label << ": port " << port << " writes out of order";
    }
  }
  // Timing, unless the expert explicitly accepted negative slack.
  const bool accepted_slack = std::any_of(
      r.history.begin(), r.history.end(), [](const sched::PassRecord& rec) {
        return rec.action.find("accept-negative-slack") != std::string::npos;
      });
  if (!accepted_slack) {
    EXPECT_GE(s.worst_slack_ps, -1e-9) << label;
  }
}

// The SDC backend must agree with the list backend on feasibility,
// latency (LI) and II over every suite kernel — the schedules themselves
// may differ, so constraint satisfaction is checked structurally instead
// of by hash.
TEST(SchedBackends, SdcMatchesListOnFeasibilityLatencyAndIi) {
  for (const auto& w0 : workloads::suite()) {
    for (int ii : {0, 1, 2}) {
      workloads::Workload w = w0;  // straighten mutates the module
      pipeline::straighten(w.module);
      const auto region = ir::linearize(w.module.thread.tree, w.loop);
      const auto latency = w.module.thread.tree.stmt(w.loop).latency;
      const std::string label = w.name + " at II=" + std::to_string(ii);

      sched::SchedulerOptions list_opts;
      list_opts.memory = &w.memory;
      if (ii > 0) {
        list_opts.pipeline.enabled = true;
        list_opts.pipeline.ii = ii;
      }
      sched::SchedulerOptions sdc_opts = list_opts;
      sdc_opts.backend = sched::BackendKind::kSdc;

      const auto rl = sched::schedule_region(w.module.thread.dfg, region,
                                             latency, w.module.ports.size(),
                                             list_opts);
      const auto rs = sched::schedule_region(w.module.thread.dfg, region,
                                             latency, w.module.ports.size(),
                                             sdc_opts);
      EXPECT_EQ(rl.backend, sched::BackendKind::kList);
      EXPECT_EQ(rs.backend, sched::BackendKind::kSdc);
      EXPECT_EQ(rl.success, rs.success) << label;
      if (!rl.success || !rs.success) continue;
      EXPECT_EQ(rl.schedule.num_steps, rs.schedule.num_steps) << label;
      EXPECT_EQ(rl.schedule.pipeline.enabled, rs.schedule.pipeline.enabled)
          << label;
      EXPECT_EQ(rl.schedule.pipeline.ii, rs.schedule.pipeline.ii) << label;
      expect_structurally_valid(w, region, rs, label + " [sdc]");
      expect_structurally_valid(w, region, rl, label + " [list]");
    }
  }
}

// ---- Backend auto-selection -------------------------------------------------

// kAuto must (a) resolve deterministically — the same configuration
// always runs the same backend — and (b) report the *resolved* backend in
// SchedulerResult::backend, never kAuto itself.
TEST(SchedBackends, AutoResolvesDeterministicallyAndReportsResolvedKind) {
  for (const auto& w0 : workloads::suite()) {
    for (int ii : {0, 2}) {
      workloads::Workload w = w0;
      pipeline::straighten(w.module);
      const auto region = ir::linearize(w.module.thread.tree, w.loop);
      const auto latency = w.module.thread.tree.stmt(w.loop).latency;

      sched::SchedulerOptions opts;
      opts.backend = sched::BackendKind::kAuto;
      if (ii > 0) {
        opts.pipeline.enabled = true;
        opts.pipeline.ii = ii;
      }
      const auto r1 = sched::schedule_region(w.module.thread.dfg, region,
                                             latency, w.module.ports.size(),
                                             opts);
      const auto r2 = sched::schedule_region(w.module.thread.dfg, region,
                                             latency, w.module.ports.size(),
                                             opts);
      const std::string label = w.name + " at II=" + std::to_string(ii);
      EXPECT_NE(r1.backend, sched::BackendKind::kAuto) << label;
      EXPECT_EQ(r1.backend, r2.backend) << label << ": resolution must be"
                                        << " deterministic";
      EXPECT_EQ(r1.success, r2.success) << label;
      // Sequential regions (no recurrences) resolve to the list backend.
      if (ii == 0) {
        EXPECT_EQ(r1.backend, sched::BackendKind::kList) << label;
      }
    }
  }
}

// kAuto routes recurrence-bearing pipelined kernels to the SDC backend
// (the constraint system moves SCC bodies as one) and everything
// feed-forward to the list backend.
TEST(SchedBackends, AutoPicksSdcForPipelinedRecurrences) {
  // crc32 carries a loop recurrence; at II=2 its SCCs survive into the
  // pipelined problem.
  for (const auto& w0 : workloads::suite()) {
    if (w0.name != "crc32") continue;
    workloads::Workload w = w0;
    pipeline::straighten(w.module);
    const auto region = ir::linearize(w.module.thread.tree, w.loop);
    const auto latency = w.module.thread.tree.stmt(w.loop).latency;
    sched::SchedulerOptions opts;
    opts.backend = sched::BackendKind::kAuto;
    opts.pipeline.enabled = true;
    opts.pipeline.ii = 2;
    const auto r = sched::schedule_region(w.module.thread.dfg, region,
                                          latency, w.module.ports.size(),
                                          opts);
    EXPECT_EQ(r.backend, sched::BackendKind::kSdc);
  }
}

// An explore grid with kAuto configs reports the resolved backend per
// point ("list"/"sdc"), not "auto".
TEST(SchedBackends, ExplorePointsReportResolvedBackendForAuto) {
  const FlowSession session(workloads::make_idct8());
  std::vector<ExploreConfig> grid;
  ExploreConfig cfg;
  cfg.curve = "auto";
  cfg.tclk_ps = 1600;
  cfg.latency = 16;
  cfg.pipeline_ii = 0;
  cfg.backend = sched::BackendKind::kAuto;
  grid.push_back(cfg);
  cfg.pipeline_ii = 8;
  cfg.latency = 16;
  grid.push_back(cfg);
  const auto pts = explore(session, grid, {});
  ASSERT_EQ(pts.size(), 2u);
  for (const auto& pt : pts) {
    EXPECT_TRUE(pt.backend == "list" || pt.backend == "sdc")
        << "curve=" << pt.curve << " reported backend=" << pt.backend;
  }
}

// ---- Restraint-volume cap ---------------------------------------------------

// The 1600-op bench point: a hopeless early pass used to itemize ~1500
// per-op restraints before the expert chose "add many states" anyway.
// With the cap the driver emits one aggregate fast-forward instead — the
// pass count must drop and no pass may itemize a restraint volume at or
// above the cap.
TEST(SchedVolumeCap, AggregateFastForwardDropsPassesOn1600OpBenchPoint) {
  workloads::RandomCdfgOptions gen;
  gen.target_ops = 1600;
  gen.inputs = 4 + 1600 / 800;
  auto w = workloads::make_random_cdfg(1600, gen);
  pipeline::straighten(w.module);
  const auto region = ir::linearize(w.module.thread.tree, w.loop);
  const auto latency = w.module.thread.tree.stmt(w.loop).latency;

  sched::SchedulerOptions capped;  // the default cap
  sched::SchedulerOptions uncapped = capped;
  uncapped.restraint_volume_cap = 0;

  const auto rc = sched::schedule_region(w.module.thread.dfg, region, latency,
                                         w.module.ports.size(), capped);
  const auto ru = sched::schedule_region(w.module.thread.dfg, region, latency,
                                         w.module.ports.size(), uncapped);
  ASSERT_TRUE(rc.success);
  ASSERT_TRUE(ru.success);
  EXPECT_EQ(rc.schedule.num_steps, ru.schedule.num_steps);
  EXPECT_LT(rc.passes, ru.passes);

  std::size_t capped_max = 0;
  bool saw_aggregate = false;
  for (const auto& rec : rc.history) {
    capped_max = std::max(capped_max, rec.restraints.size());
    saw_aggregate = saw_aggregate ||
                    rec.action.find("over resource capacity") !=
                        std::string::npos;
  }
  std::size_t uncapped_max = 0;
  for (const auto& rec : ru.history) {
    uncapped_max = std::max(uncapped_max, rec.restraints.size());
  }
  EXPECT_TRUE(saw_aggregate);
  EXPECT_LT(capped_max,
            static_cast<std::size_t>(capped.restraint_volume_cap));
  EXPECT_GE(uncapped_max,
            static_cast<std::size_t>(capped.restraint_volume_cap));
}

// ---- Star-encoded ≡ pairwise II windows -------------------------------------

// The per-SCC anchor star (sdc_scheduler.hpp) must reproduce the legacy
// pairwise window encoding's least fixpoint exactly — same schedules,
// same restraints, same pass ladder, bit for bit — on every suite kernel
// at every II. II=0 (sequential) is included as the degenerate case where
// neither encoding emits window edges at all.
TEST(SchedGolden, StarEncodedIiWindowsMatchPairwiseBitExactly) {
  for (const auto& w : workloads::suite()) {
    for (int ii : {0, 1, 2}) {
      workloads::Workload wl = w;  // straighten mutates the module
      pipeline::straighten(wl.module);
      const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
      const auto latency = wl.module.thread.tree.stmt(wl.loop).latency;

      sched::SchedulerOptions star;
      star.backend = sched::BackendKind::kSdc;
      star.memory = &wl.memory;
      if (ii > 0) {
        star.pipeline.enabled = true;
        star.pipeline.ii = ii;
      }
      sched::SchedulerOptions pairwise = star;
      pairwise.sdc_pairwise_ii = true;

      const auto r_star = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          star);
      const auto r_pair = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          pairwise);
      EXPECT_EQ(scheduler_fingerprint(r_star), scheduler_fingerprint(r_pair))
          << w.name << " at II=" << ii << ": star diverged from pairwise";
    }
  }
}

// ---- Minimum-II solving -----------------------------------------------------

// The solved minimum II must equal the answer of the oracle nobody would
// ship: a full fixed-II solve at every candidate from 1 upward, taking
// the first success. Exercised on BOTH backends — min-II solving sits in
// the driver above the backend seam.
TEST(SchedMinIi, SolvedIiMatchesExhaustiveSweepOnBothBackends) {
  for (const auto& w : workloads::suite()) {
    for (const auto backend :
         {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
      workloads::Workload wl = w;
      pipeline::straighten(wl.module);
      const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
      const auto latency = wl.module.thread.tree.stmt(wl.loop).latency;
      const auto run = [&](const sched::SchedulerOptions& o) {
        return sched::schedule_region(wl.module.thread.dfg, region, latency,
                                      wl.module.ports.size(), o);
      };
      sched::SchedulerOptions base;
      base.backend = backend;
      base.memory = &wl.memory;

      // Oracle: exhaustive sweep over the same candidate range the
      // solver searches ([1, latency.max]).
      int sweep_ii = -1;
      sched::SchedulerResult sweep_result;
      for (int ii = 1; ii <= std::max(1, latency.max); ++ii) {
        sched::SchedulerOptions o = base;
        o.pipeline = {true, ii};
        auto r = run(o);
        if (r.success) {
          sweep_ii = ii;
          sweep_result = std::move(r);
          break;
        }
      }

      sched::SchedulerOptions solve = base;
      solve.pipeline = {true, 1};
      solve.solve_min_ii = true;
      auto r_min = run(solve);

      const std::string label =
          strf(w.name, " [", sched::backend_name(backend), "]");
      if (sweep_ii < 0) {
        EXPECT_FALSE(r_min.success) << label;
        EXPECT_EQ(r_min.failure_code, "no_feasible_ii") << label;
        continue;
      }
      ASSERT_TRUE(r_min.success) << label << ": " << r_min.failure_reason;
      EXPECT_EQ(r_min.min_ii, sweep_ii) << label;
      EXPECT_EQ(r_min.schedule.pipeline.ii, sweep_ii) << label;
      // Modulo the min-II narration record, the winning attempt IS the
      // fixed-II solve at the solved II — schedule, arrivals, passes.
      sched::SchedulerResult a = std::move(r_min);
      sched::SchedulerResult b = std::move(sweep_result);
      a.history.clear();
      a.min_ii = 0;
      b.history.clear();
      EXPECT_EQ(scheduler_fingerprint(a), scheduler_fingerprint(b)) << label;
    }
  }
}

// A region whose recurrence cannot fit any II within the latency bound
// fails with the structured code, on both backends, without running a
// single scheduling pass (the probe rejects every candidate up front).
TEST(SchedMinIi, InfeasibleAtEveryIiFailsWithStructuredCode) {
  for (const auto backend :
       {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
    workloads::Workload wl = workloads::make_ewf();
    pipeline::straighten(wl.module);
    const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
    // EWF's carried filter recurrence needs far more than 2 states; with
    // the candidate range clamped to [1, 2] no II can be feasible.
    ir::LatencyBound latency = wl.module.thread.tree.stmt(wl.loop).latency;
    latency.min = 1;
    latency.max = 2;

    sched::SchedulerOptions o;
    o.backend = backend;
    o.memory = &wl.memory;
    o.pipeline = {true, 1};
    o.solve_min_ii = true;
    const auto r = sched::schedule_region(wl.module.thread.dfg, region,
                                          latency, wl.module.ports.size(), o);
    EXPECT_FALSE(r.success) << sched::backend_name(backend);
    EXPECT_EQ(r.failure_code, "no_feasible_ii")
        << sched::backend_name(backend);
    EXPECT_NE(r.failure_reason.find("no feasible initiation interval"),
              std::string::npos)
        << r.failure_reason;
    EXPECT_EQ(r.passes, 0) << sched::backend_name(backend);
  }
}

// ---- Serial ≡ threaded explore over the new scheduler -----------------------

TEST(SchedGolden, SerialAndThreadedExploreStayIdentical) {
  const FlowSession session(workloads::make_idct8());
  const auto grid = idct_paper_grid();

  ExploreOptions serial;
  serial.threads = 1;
  const auto a = explore(session, grid, serial);

  ExploreOptions threaded;
  threaded.threads = 4;
  const auto b = explore(session, grid, threaded);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns) << i;
    EXPECT_EQ(a[i].area, b[i].area) << i;
    EXPECT_EQ(a[i].power_mw, b[i].power_mw) << i;
    EXPECT_EQ(a[i].passes, b[i].passes) << i;
    EXPECT_EQ(a[i].relaxations, b[i].relaxations) << i;
    EXPECT_EQ(a[i].failure, b[i].failure) << i;
  }
}

}  // namespace
}  // namespace hls::core
