// Golden-schedule determinism suite for the scheduler hot-path refactor:
//  * every workloads::suite() kernel at II ∈ {0, 1, 2} must hash to the
//    exact schedule (placements, arrivals, restraint trace) produced by
//    the pre-refactor scheduler — the embedded constants below were
//    captured from the full-rescan implementation;
//  * serial and threaded explore() stay point-identical over the new
//    scheduler;
//  * warm-started relaxation passes produce bit-identical results to
//    cold (from-scratch) passes.
//
// Regenerating the table (after an INTENDED schedule change): run this
// binary with HLS_GOLDEN_REGEN=1 and paste the printed table.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/explore.hpp"
#include "core/session.hpp"
#include "ir/analysis.hpp"
#include "pipeline/straighten.hpp"
#include "sched/driver.hpp"
#include "support/strings.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {
namespace {

// ---- Schedule serialization -------------------------------------------------

// FNV-1a 64-bit over the serialized schedule text.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// The full schedule as text: every placement (step, pool, instance,
// arrival), the worst slack, and the complete restraint/relaxation trace.
// Arrivals are fixed to 1e-4 ps so the text is stable across math-library
// ulp differences while still catching any real timing change.
std::string serialize(const FlowResult& r) {
  std::string s = r.success ? "ok" : "FAILED: " + r.failure_reason;
  s += strf("\npasses=", r.sched.passes,
            " relaxations=", r.sched.relaxations(), "\n");
  if (r.success) {
    const sched::Schedule& sch = r.sched.schedule;
    s += strf("steps=", sch.num_steps, " pipelined=", sch.pipeline.enabled,
              " ii=", sch.pipeline.ii,
              " worst_slack=", fmt_fixed(sch.worst_slack_ps, 4), "\n");
    for (std::size_t id = 0; id < sch.placement.size(); ++id) {
      const sched::OpPlacement& pl = sch.placement[id];
      if (!pl.scheduled) continue;
      s += strf("%", id, " s", pl.step, " p", pl.pool, " i", pl.instance,
                " a", fmt_fixed(pl.arrival_ps, 4), "\n");
    }
  }
  for (const sched::PassRecord& rec : r.sched.history) {
    s += strf("pass ", rec.pass_number, " steps=", rec.num_steps,
              " ok=", rec.success, " relaxed=", rec.relaxed, "\n");
    for (const std::string& restraint : rec.restraints) {
      s += "  " + restraint + "\n";
    }
    if (!rec.action.empty()) s += "  -> " + rec.action + "\n";
  }
  return s;
}

std::uint64_t schedule_hash(const workloads::Workload& w, int ii) {
  FlowOptions o;
  o.pipeline_ii = ii;
  o.emit_verilog = false;
  const FlowSession session(w);
  return fnv1a(serialize(session.run(o)));
}

// ---- Golden table -----------------------------------------------------------

struct Golden {
  const char* name;
  int ii;
  std::uint64_t hash;
};

// Captured from the pre-refactor (full-rescan) scheduler; the refactored
// scheduler must reproduce every schedule byte for byte.
const Golden kGolden[] = {
    // clang-format off
    {"fir16", 0, 10003561045123619741ull},
    {"fir16", 1, 5514206739154305385ull},
    {"fir16", 2, 12521723699291214752ull},
    {"ewf", 0, 5689328697306417690ull},
    {"ewf", 1, 4765043267926891136ull},
    {"ewf", 2, 17360199563463667465ull},
    {"arf", 0, 7779683114790634946ull},
    {"arf", 1, 12124853150240440288ull},
    {"arf", 2, 15260454016208241953ull},
    {"crc32", 0, 9824933647608091324ull},
    {"crc32", 1, 17118390979211171908ull},
    {"crc32", 2, 16095283284320541840ull},
    {"fft8", 0, 17771874567909579898ull},
    {"fft8", 1, 8815319753705740358ull},
    {"fft8", 2, 11435463741990301139ull},
    {"dct8", 0, 17527478051141109785ull},
    {"dct8", 1, 13204981808679302120ull},
    {"dct8", 2, 9519487193487437296ull},
    {"idct8", 0, 2189562551344306224ull},
    {"idct8", 1, 9557127093202655845ull},
    {"idct8", 2, 9108361458502411381ull},
    {"conv3x3", 0, 14888560063404535796ull},
    {"conv3x3", 1, 14410770143452636077ull},
    {"conv3x3", 2, 15353637563294299071ull},
    {"sobel", 0, 13819336629871952092ull},
    {"sobel", 1, 5306670583295784066ull},
    {"sobel", 2, 8901203364055785428ull},
    {"rand7", 0, 8131484479129798431ull},
    {"rand7", 1, 5519097902058265206ull},
    {"rand7", 2, 5645597170538429115ull},
    // clang-format on
};

TEST(SchedGolden, SuiteSchedulesAreByteIdenticalToPreRefactor) {
  const auto suite = workloads::suite();
  if (std::getenv("HLS_GOLDEN_REGEN") != nullptr) {
    for (const auto& w : suite) {
      for (int ii : {0, 1, 2}) {
        std::printf("    {\"%s\", %d, %lluull},\n", w.name.c_str(), ii,
                    static_cast<unsigned long long>(schedule_hash(w, ii)));
      }
    }
    GTEST_SKIP() << "regeneration mode: table printed, nothing asserted";
  }
  std::size_t checked = 0;
  for (const auto& w : suite) {
    for (int ii : {0, 1, 2}) {
      const std::uint64_t h = schedule_hash(w, ii);
      bool found = false;
      for (const Golden& g : kGolden) {
        if (w.name == g.name && ii == g.ii) {
          EXPECT_EQ(h, g.hash) << w.name << " at II=" << ii
                               << ": schedule diverged from pre-refactor";
          found = true;
          ++checked;
          break;
        }
      }
      EXPECT_TRUE(found) << "no golden entry for " << w.name
                         << " at II=" << ii
                         << " (regenerate with HLS_GOLDEN_REGEN=1)";
    }
  }
  EXPECT_EQ(checked, suite.size() * 3);
}

// ---- Warm-started ≡ cold relaxation passes ----------------------------------

// Everything a SchedulerResult determines, with arrivals at full bit
// precision: warm and cold passes run in the same binary, so they must
// match exactly, not just to printed precision.
std::string scheduler_fingerprint(const sched::SchedulerResult& r) {
  std::string s =
      strf("success=", r.success, " passes=", r.passes, " failure=\"",
           r.failure_reason, "\"\n");
  if (r.success) {
    const sched::Schedule& sch = r.schedule;
    s += strf("steps=", sch.num_steps, "\n");
    for (std::size_t id = 0; id < sch.placement.size(); ++id) {
      const sched::OpPlacement& pl = sch.placement[id];
      if (!pl.scheduled) continue;
      const auto bits = std::bit_cast<std::uint64_t>(pl.arrival_ps);
      s += strf("%", id, " s", pl.step, " p", pl.pool, " i", pl.instance,
                " a", bits, "\n");
    }
    s += strf("worst=", std::bit_cast<std::uint64_t>(sch.worst_slack_ps),
              "\n");
  }
  for (const sched::PassRecord& rec : r.history) {
    s += strf("pass ", rec.pass_number, " steps=", rec.num_steps,
              " ok=", rec.success, " relaxed=", rec.relaxed, "\n");
    for (const std::string& restraint : rec.restraints) {
      s += "  " + restraint + "\n";
    }
    if (!rec.action.empty()) s += "  -> " + rec.action + "\n";
  }
  return s;
}

TEST(SchedGolden, WarmStartedPassesMatchColdPassesBitExactly) {
  auto designs = workloads::suite();
  // The suite kernels are small; warm starts earn their keep (and hit the
  // AddResource/ForbidBinding frontier rules) on relaxation-heavy sized
  // designs, so pin one of the bench's random CDFGs too.
  workloads::RandomCdfgOptions sized;
  sized.target_ops = 400;
  designs.push_back(workloads::make_random_cdfg(400, sized));
  for (auto& w : designs) {
    for (int ii : {0, 2}) {
      workloads::Workload wl = w;  // straighten mutates the module
      pipeline::straighten(wl.module);
      const auto region = ir::linearize(wl.module.thread.tree, wl.loop);
      const auto latency = wl.module.thread.tree.stmt(wl.loop).latency;

      sched::SchedulerOptions cold;
      cold.warm_start = false;
      if (ii > 0) {
        cold.pipeline.enabled = true;
        cold.pipeline.ii = ii;
      }
      sched::SchedulerOptions warm = cold;
      warm.warm_start = true;

      const auto r_cold = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          cold);
      const auto r_warm = sched::schedule_region(
          wl.module.thread.dfg, region, latency, wl.module.ports.size(),
          warm);
      EXPECT_EQ(scheduler_fingerprint(r_cold), scheduler_fingerprint(r_warm))
          << w.name << " at II=" << ii;
    }
  }
}

// ---- Serial ≡ threaded explore over the new scheduler -----------------------

TEST(SchedGolden, SerialAndThreadedExploreStayIdentical) {
  const FlowSession session(workloads::make_idct8());
  const auto grid = idct_paper_grid();

  ExploreOptions serial;
  serial.threads = 1;
  const auto a = explore(session, grid, serial);

  ExploreOptions threaded;
  threaded.threads = 4;
  const auto b = explore(session, grid, threaded);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns) << i;
    EXPECT_EQ(a[i].area, b[i].area) << i;
    EXPECT_EQ(a[i].power_mw, b[i].power_mw) << i;
    EXPECT_EQ(a[i].passes, b[i].passes) << i;
    EXPECT_EQ(a[i].relaxations, b[i].relaxations) << i;
    EXPECT_EQ(a[i].failure, b[i].failure) << i;
  }
}

}  // namespace
}  // namespace hls::core
