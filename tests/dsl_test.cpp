// Tests for src/frontend/ lexer and parser: the `.hls` behavioral text
// format elaborates to the same CDFG the Builder API produces.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/interp.hpp"
#include "ir/validate.hpp"
#include "sched/driver.hpp"
#include "opt/pass.hpp"
#include "support/rng.hpp"
#include "workloads/example1.hpp"

namespace hls::frontend {
namespace {

// The paper's Figure 1 example in the .hls text format.
constexpr const char* kExample1 = R"(
// SystemC-like behavioral input (paper Figure 1)
module example1 {
  in mask: i32;
  in chrome: i32;
  in scale: i32;
  in th: i32;
  out pixel: i32;

  thread {
    forever {
      var aver: i32 = 0;
      wait;
      do {
        var filt: i32 = mask;
        var delta: i32 = mask * chrome;
        aver = aver + delta;
        if (aver > th) { aver = aver * scale; }
        wait;
        pixel = aver * filt;
      } while (delta != 0) latency(1, 3);
    }
  }
}
)";

TEST(Lexer, TokenizesOperatorsAndNumbers) {
  DiagEngine diags;
  const auto toks = lex("x1 = 0x1F + 42 << 2; // comment\n y", diags);
  EXPECT_FALSE(diags.has_errors());
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].text, "x1");
  EXPECT_TRUE(toks[1].is("="));
  EXPECT_EQ(toks[2].number, 31);
  EXPECT_TRUE(toks[3].is("+"));
  EXPECT_EQ(toks[4].number, 42);
  EXPECT_TRUE(toks[5].is("<<"));
  EXPECT_EQ(toks[8].text, "y");
  EXPECT_EQ(toks[8].line, 2);
}

TEST(Lexer, ReportsBadCharacters) {
  DiagEngine diags;
  lex("a @ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, ParsesExample1) {
  DiagEngine diags;
  auto r = parse_module(kExample1, diags);
  ASSERT_TRUE(r.ok) << diags.to_string();
  EXPECT_EQ(r.module.name, "example1");
  EXPECT_EQ(r.module.ports.size(), 5u);
  ASSERT_EQ(r.loops.size(), 2u);  // forever + do-while
  ir::validate_or_throw(r.module);
  const auto& dw = r.module.thread.tree.stmt(r.loops[1]);
  EXPECT_EQ(dw.loop_kind, ir::LoopKind::kDoWhile);
  EXPECT_EQ(dw.latency.min, 1);
  EXPECT_EQ(dw.latency.max, 3);
}

TEST(Parser, DslMatchesBuilderBehaviour) {
  // The text version of Figure 1 must behave exactly like the builder
  // version used everywhere else.
  auto text = parse_module_or_throw(kExample1);
  auto built = workloads::make_example1();
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    ir::Stimulus s;
    for (const char* port : {"mask", "chrome", "scale", "th"}) {
      std::vector<std::int64_t> v;
      for (int i = 0; i < 20; ++i) {
        v.push_back(rng.chance(0.2) ? 0 : rng.uniform(-500, 500));
      }
      s.set(port, std::move(v));
    }
    const auto a = ir::interpret(text.module, s);
    const auto b = ir::interpret(built.module, s);
    EXPECT_EQ(ir::writes_by_port(text.module, a.writes),
              ir::writes_by_port(built.module, b.writes));
  }
}

TEST(Parser, DslModuleSchedulesLikeTheBuilderOne) {
  auto r = parse_module_or_throw(kExample1);
  auto pred = opt::make_predicate_conversion();
  pred->run(r.module);
  const auto region = ir::linearize(r.module.thread.tree, r.loops[1]);
  sched::SchedulerOptions opts;
  const auto sr = sched::schedule_region(r.module.thread.dfg, region,
                                         {1, 3}, r.module.ports.size(), opts);
  ASSERT_TRUE(sr.success) << sr.failure_reason;
  EXPECT_EQ(sr.schedule.num_steps, 3);
}

TEST(Parser, RepeatAndPipelineAttributes) {
  DiagEngine diags;
  auto r = parse_module(R"(
module acc {
  in x: i32;
  out sum: i32;
  thread {
    var total: i32 = 0;
    repeat (16) {
      total = total + x * x;
      wait;
    } latency(1, 8) pipeline(1)
    sum = total;
  }
}
)", diags);
  ASSERT_TRUE(r.ok) << diags.to_string();
  ASSERT_EQ(r.loops.size(), 1u);
  const auto& loop = r.module.thread.tree.stmt(r.loops[0]);
  EXPECT_EQ(loop.loop_kind, ir::LoopKind::kCounted);
  EXPECT_EQ(loop.trip_count, 16);
  EXPECT_TRUE(loop.pipeline.enabled);
  EXPECT_EQ(loop.pipeline.ii, 1);

  ir::Stimulus s;
  std::vector<std::int64_t> xs;
  std::int64_t expected = 0;
  for (int i = 1; i <= 16; ++i) {
    xs.push_back(i);
    expected += static_cast<std::int64_t>(i) * i;
  }
  s.set("x", xs);
  const auto res = ir::interpret(r.module, s);
  EXPECT_EQ(ir::writes_by_port(r.module, res.writes).at("sum"),
            (std::vector<std::int64_t>{expected}));
}

TEST(Parser, ExpressionPrecedence) {
  auto r = parse_module_or_throw(R"(
module ex {
  in a: i32;
  in b: i32;
  out y: i32;
  thread {
    repeat (4) {
      y = a + b * 2 - (a & 3) + (b >> 1);
      wait;
    }
  }
}
)");
  ir::Stimulus s;
  s.set("a", {10, -3, 100, 7});
  s.set("b", {5, 9, -20, 0});
  const auto res = ir::interpret(r.module, s);
  const auto ys = ir::writes_by_port(r.module, res.writes).at("y");
  for (int i = 0; i < 4; ++i) {
    const std::int64_t a = s.streams["a"][static_cast<std::size_t>(i)];
    const std::int64_t b = s.streams["b"][static_cast<std::size_t>(i)];
    EXPECT_EQ(ys[static_cast<std::size_t>(i)],
              a + b * 2 - (a & 3) + (b >> 1));
  }
}

TEST(Parser, ReportsUsefulErrors) {
  struct Case {
    const char* src;
    const char* expect;
  };
  const Case cases[] = {
      {"module m { thread { q = 1; } }", "unknown name 'q'"},
      {"module m { in x: i32; thread { x = 1; } }", "cannot assign input"},
      {"module m { out y: i32; thread { var v: i32 = y; } }",
       "cannot read output"},
      {"module m { in x: i99; thread { } }", "unsupported width"},
      {"module m { thread { wait } }", "expected ';'"},
  };
  for (const Case& c : cases) {
    DiagEngine diags;
    auto r = parse_module(c.src, diags);
    EXPECT_FALSE(r.ok) << c.src;
    EXPECT_NE(diags.to_string().find(c.expect), std::string::npos)
        << "wanted '" << c.expect << "' in:\n" << diags.to_string();
  }
}

}  // namespace
}  // namespace hls::frontend
