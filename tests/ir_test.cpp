// Tests for src/ir/: bit-accurate types, DFG construction and use lists,
// region tree invariants, module/design containers, printing, structural
// validation, and the Tarjan SCC / dependence analyses.
#include <gtest/gtest.h>

#include <algorithm>

#include "frontend/builder.hpp"
#include "ir/analysis.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "workloads/example1.hpp"

namespace hls::ir {
namespace {

// ---- Types -----------------------------------------------------------------

TEST(Type, CanonicalizeSigned) {
  EXPECT_EQ(canonicalize(255, int_ty(8)), -1);
  EXPECT_EQ(canonicalize(127, int_ty(8)), 127);
  EXPECT_EQ(canonicalize(128, int_ty(8)), -128);
  EXPECT_EQ(canonicalize(-1, int_ty(8)), -1);
  EXPECT_EQ(canonicalize(INT64_MIN, int_ty(64)), INT64_MIN);
}

TEST(Type, CanonicalizeUnsigned) {
  EXPECT_EQ(canonicalize(-1, uint_ty(8)), 255);
  EXPECT_EQ(canonicalize(256, uint_ty(8)), 0);
  EXPECT_EQ(canonicalize(5, uint_ty(3)), 5);
  EXPECT_EQ(canonicalize(8, uint_ty(3)), 0);
}

TEST(Type, MinMax) {
  EXPECT_EQ(type_min(int_ty(8)), -128);
  EXPECT_EQ(type_max(int_ty(8)), 127);
  EXPECT_EQ(type_min(uint_ty(8)), 0);
  EXPECT_EQ(type_max(uint_ty(8)), 255);
  EXPECT_EQ(type_max(bool_ty()), 1);
}

TEST(Type, MinWidthFor) {
  EXPECT_EQ(min_width_for(0, true), 1);
  EXPECT_EQ(min_width_for(-1, true), 1);
  EXPECT_EQ(min_width_for(1, true), 2);
  EXPECT_EQ(min_width_for(127, true), 8);
  EXPECT_EQ(min_width_for(128, true), 9);
  EXPECT_EQ(min_width_for(255, false), 8);
  EXPECT_EQ(min_width_for(-5, false), 64);
}

class CanonicalizeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalizeRoundTrip, IdempotentAtEveryWidth) {
  const auto w = static_cast<std::uint8_t>(GetParam());
  for (std::int64_t v : {std::int64_t{-1000}, std::int64_t{-1},
                         std::int64_t{0}, std::int64_t{1},
                         std::int64_t{12345}, INT64_MAX, INT64_MIN}) {
    for (bool s : {false, true}) {
      const Type t{w, s};
      const auto once = canonicalize(v, t);
      EXPECT_EQ(canonicalize(once, t), once) << "w=" << int(w) << " s=" << s;
      EXPECT_GE(once, type_min(t));
      EXPECT_LE(once, type_max(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CanonicalizeRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 31, 32, 33,
                                           48, 63));

// ---- DFG --------------------------------------------------------------------

TEST(Dfg, ConstructionAndEvaluate) {
  Dfg d;
  const OpId a = d.constant(6, int_ty(32));
  const OpId b = d.constant(7, int_ty(32));
  const OpId m = d.binary(OpKind::kMul, a, b, int_ty(32));
  const std::int64_t args[] = {6, 7};
  EXPECT_EQ(Dfg::evaluate(d.op(m), args, 2), 42);
  EXPECT_EQ(d.size(), 3u);
}

TEST(Dfg, EvaluateWrapsToWidth) {
  Dfg d;
  const OpId a = d.constant(100, int_ty(8));
  const OpId b = d.constant(100, int_ty(8));
  const OpId s = d.binary(OpKind::kAdd, a, b, int_ty(8));
  const std::int64_t args[] = {100, 100};
  EXPECT_EQ(Dfg::evaluate(d.op(s), args, 2), canonicalize(200, int_ty(8)));
  EXPECT_EQ(Dfg::evaluate(d.op(s), args, 2), -56);
}

TEST(Dfg, EvaluateDivisionByZeroIsZero) {
  Dfg d;
  const OpId a = d.constant(5, int_ty(32));
  const OpId b = d.constant(0, int_ty(32));
  const OpId q = d.binary(OpKind::kDiv, a, b, int_ty(32));
  const OpId r = d.binary(OpKind::kMod, a, b, int_ty(32));
  const std::int64_t args[] = {5, 0};
  EXPECT_EQ(Dfg::evaluate(d.op(q), args, 2), 0);
  EXPECT_EQ(Dfg::evaluate(d.op(r), args, 2), 0);
}

TEST(Dfg, EvaluateShiftsAndBits) {
  Dfg d;
  const OpId a = d.constant(-8, int_ty(8));
  const OpId sh = d.constant(1, uint_ty(3));
  const OpId shr = d.binary(OpKind::kShr, a, sh, int_ty(8));
  const std::int64_t args[] = {-8, 1};
  EXPECT_EQ(Dfg::evaluate(d.op(shr), args, 2), -4);  // arithmetic shift

  const OpId u = d.constant(0xF0, uint_ty(8));
  const OpId br = d.bit_range(u, 7, 4);
  const std::int64_t args2[] = {0xF0};
  EXPECT_EQ(Dfg::evaluate(d.op(br), args2, 1), 0xF);
}

TEST(Dfg, ConcatPacksOperands) {
  Dfg d;
  const OpId hi = d.constant(0xA, uint_ty(4));
  const OpId lo = d.constant(0x5, uint_ty(4));
  const OpId cc = d.concat(hi, lo);
  EXPECT_EQ(d.op(cc).type.width, 8);
  const std::int64_t args[] = {0xA, 0x5};
  EXPECT_EQ(Dfg::evaluate(d.op(cc), args, 2), 0xA5);
}

TEST(Dfg, TopoOrderRespectsDependences) {
  Dfg d;
  const OpId a = d.constant(1, int_ty(32));
  const OpId b = d.constant(2, int_ty(32));
  const OpId s = d.binary(OpKind::kAdd, a, b, int_ty(32));
  const OpId t = d.binary(OpKind::kMul, s, b, int_ty(32));
  const auto order = d.topo_order();
  auto pos = [&](OpId x) {
    return std::find(order.begin(), order.end(), x) - order.begin();
  };
  EXPECT_LT(pos(a), pos(s));
  EXPECT_LT(pos(b), pos(s));
  EXPECT_LT(pos(s), pos(t));
}

TEST(Dfg, TopoOrderIgnoresCarriedEdge) {
  Dfg d;
  const OpId init = d.constant(0, int_ty(32));
  const OpId lm = d.loop_mux(init, int_ty(32));
  const OpId one = d.constant(1, int_ty(32));
  const OpId inc = d.binary(OpKind::kAdd, lm, one, int_ty(32));
  d.set_carried(lm, inc);  // cycle through the carried edge only
  EXPECT_NO_THROW(d.topo_order());
}

TEST(Dfg, UseListsIncludeCarriedAndPred) {
  Dfg d;
  const OpId init = d.constant(0, int_ty(32));
  const OpId lm = d.loop_mux(init, int_ty(32));
  const OpId one = d.constant(1, int_ty(32));
  const OpId inc = d.binary(OpKind::kAdd, lm, one, int_ty(32));
  d.set_carried(lm, inc);
  const auto uses = d.use_lists();
  EXPECT_EQ(uses[inc].size(), 1u);  // carried use by lm
  EXPECT_EQ(uses[inc][0], lm);
}

// ---- Analysis ---------------------------------------------------------------

TEST(Analysis, Example1HasTheAverScc) {
  auto ex = workloads::make_example1();
  const auto sccs = nontrivial_sccs(ex.module.thread.dfg);
  ASSERT_EQ(sccs.size(), 1u);
  // The SCC computes `aver`: loopMux, add, gt, mul2, MUX. (The paper lists
  // {loopMux, add, mul2, MUX}; we also include gt because the mux select is
  // a causal dependence — see DESIGN.md.)
  const Dfg& dfg = ex.module.thread.dfg;
  std::vector<std::string> names;
  for (OpId id : sccs[0]) names.push_back(dfg.op(id).name);
  std::sort(names.begin(), names.end());
  const std::vector<std::string> expected = {"add_op", "aver_lmux", "aver_mux",
                                             "gt_op", "mul2_op"};
  EXPECT_EQ(names, expected);
}

TEST(Analysis, AcyclicDfgHasNoNontrivialScc) {
  Dfg d;
  const OpId a = d.constant(1, int_ty(32));
  const OpId b = d.binary(OpKind::kAdd, a, a, int_ty(32));
  d.binary(OpKind::kMul, b, a, int_ty(32));
  EXPECT_TRUE(nontrivial_sccs(d).empty());
}

TEST(Analysis, FanoutConeCounts) {
  Dfg d;
  const OpId a = d.constant(1, int_ty(32));
  const OpId b = d.binary(OpKind::kAdd, a, a, int_ty(32));
  const OpId c1 = d.binary(OpKind::kMul, b, a, int_ty(32));
  const OpId c2 = d.binary(OpKind::kMul, b, b, int_ty(32));
  const auto cones = fanout_cone_sizes(d);
  EXPECT_EQ(cones[c1], 0);
  EXPECT_EQ(cones[c2], 0);
  EXPECT_EQ(cones[b], 2);
  EXPECT_EQ(cones[a], 3);
}

// ---- Region tree / linearize --------------------------------------------------

TEST(Region, LinearizeSplitsOnWaits) {
  frontend::Builder b("lin");
  auto p = b.in("p", int_ty(32));
  auto q = b.out("q", int_ty(32));
  auto x = b.read(p);
  b.wait();
  auto y = b.add(x, x);
  b.wait();
  b.write(q, y);
  auto m = b.finish();
  const auto lr = linearize(m.thread.tree, m.thread.tree.root());
  ASSERT_EQ(lr.num_steps(), 3);
  EXPECT_EQ(lr.steps[0].size(), 1u);
  EXPECT_EQ(lr.steps[1].size(), 1u);
  EXPECT_EQ(lr.steps[2].size(), 1u);
}

TEST(Region, LinearizeRejectsBranches) {
  frontend::Builder b("br");
  auto p = b.in("p", int_ty(32));
  auto q = b.out("q", int_ty(32));
  auto x = b.read(p);
  auto c = b.gt(x, b.c(0));
  b.begin_if(c);
  b.end_if();
  b.write(q, x);
  auto m = b.finish();
  EXPECT_TRUE(m.thread.tree.has_branches(m.thread.tree.root()));
  EXPECT_THROW(linearize(m.thread.tree, m.thread.tree.root()), InternalError);
}

TEST(Region, OpsInSkipsNestedLoopsWhenAsked) {
  auto ex = workloads::make_example1();
  const auto& tree = ex.module.thread.tree;
  const auto all = tree.ops_in(tree.root(), true);
  const auto outer_only = tree.ops_in(tree.root(), false);
  EXPECT_GT(all.size(), outer_only.size());
  EXPECT_TRUE(outer_only.empty());  // everything is inside the outer loop
}

TEST(Region, WaitCount) {
  auto ex = workloads::make_example1();
  const auto& tree = ex.module.thread.tree;
  // do-while body: one wait (s1).
  EXPECT_EQ(tree.wait_count(tree.stmt(ex.loop).body), 1);
}

// ---- Validation ----------------------------------------------------------------

TEST(Validate, Example1IsValid) {
  auto ex = workloads::make_example1();
  DiagEngine diags;
  EXPECT_TRUE(validate(ex.module, diags)) << diags.to_string();
}

TEST(Validate, CatchesUnsetCarried) {
  Module m;
  m.name = "bad";
  auto& dfg = m.thread.dfg;
  const OpId init = dfg.constant(0, int_ty(32));
  const OpId lm = dfg.loop_mux(init, int_ty(32));
  m.thread.tree.append(m.thread.tree.root(), m.thread.tree.make_op(lm));
  DiagEngine diags;
  EXPECT_FALSE(validate(m, diags));
  EXPECT_NE(diags.to_string().find("carried"), std::string::npos);
}

TEST(Validate, CatchesUseBeforeDef) {
  Module m;
  m.name = "bad";
  auto& dfg = m.thread.dfg;
  auto& tree = m.thread.tree;
  m.ports.push_back({"p", int_ty(32), PortDir::kIn});
  const OpId r = dfg.read(0, int_ty(32));
  const OpId s = dfg.binary(OpKind::kAdd, r, r, int_ty(32));
  // Emit the add BEFORE the read.
  tree.append(tree.root(), tree.make_op(s));
  tree.append(tree.root(), tree.make_op(r));
  DiagEngine diags;
  EXPECT_FALSE(validate(m, diags));
  EXPECT_NE(diags.to_string().find("before it is defined"), std::string::npos);
}

TEST(Validate, CatchesDanglingOp) {
  Module m;
  m.name = "bad";
  m.ports.push_back({"p", int_ty(32), PortDir::kIn});
  m.thread.dfg.read(0, int_ty(32));  // never placed in the tree
  DiagEngine diags;
  EXPECT_FALSE(validate(m, diags));
  EXPECT_NE(diags.to_string().find("not referenced"), std::string::npos);
}

TEST(Validate, CatchesPortDirectionMismatch) {
  Module m;
  m.name = "bad";
  m.ports.push_back({"o", int_ty(32), PortDir::kOut});
  auto& tree = m.thread.tree;
  const OpId r = m.thread.dfg.read(0, int_ty(32));  // read of an OUT port
  tree.append(tree.root(), tree.make_op(r));
  DiagEngine diags;
  EXPECT_FALSE(validate(m, diags));
  EXPECT_NE(diags.to_string().find("direction"), std::string::npos);
}

// ---- Printing --------------------------------------------------------------------

TEST(Print, ModuleDumpMentionsStructure) {
  auto ex = workloads::make_example1();
  const std::string s = print_module(ex.module);
  EXPECT_NE(s.find("module example1"), std::string::npos);
  EXPECT_NE(s.find("do_while"), std::string::npos);
  EXPECT_NE(s.find("mul1_op"), std::string::npos);
  EXPECT_NE(s.find("latency[1,3]"), std::string::npos);
}

TEST(Print, DfgDotHasNodesAndCarriedEdge) {
  auto ex = workloads::make_example1();
  const std::string s = dfg_to_dot(ex.module);
  EXPECT_NE(s.find("digraph"), std::string::npos);
  EXPECT_NE(s.find("mul1_op"), std::string::npos);
  EXPECT_NE(s.find("style=dashed"), std::string::npos);  // carried edge
}

TEST(Print, CfgDotHasForkJoinAndLoop) {
  auto ex = workloads::make_example1();
  const std::string s = cfg_to_dot(ex.module);
  EXPECT_NE(s.find("If_top"), std::string::npos);
  EXPECT_NE(s.find("Loop_top"), std::string::npos);
  EXPECT_NE(s.find("Loop_bottom"), std::string::npos);
}

// ---- Module / Design ---------------------------------------------------------------

TEST(Module, PortLookup) {
  auto ex = workloads::make_example1();
  EXPECT_EQ(ex.module.port_index("mask"), 0u);
  EXPECT_EQ(ex.module.port_index("pixel"), 4u);
  EXPECT_THROW(ex.module.port_index("nope"), UserError);
}

TEST(Design, ModuleLookup) {
  Design d;
  d.name = "top";
  d.add_module("a");
  d.add_module("b");
  EXPECT_EQ(d.module("b").name, "b");
  EXPECT_THROW(d.module("c"), UserError);
}

}  // namespace
}  // namespace hls::ir
