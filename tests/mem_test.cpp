// Tests for the memory constraint family (mem/memory.hpp +
// docs/MEMORY.md): spec validation and placement maps, window folding
// into the scheduling spans, end-to-end expert convergence through each
// of the three memory relaxations (add-mem-port / re-bank /
// widen-window), the memory_aware flow gate, and the reporting surface
// (render_report / render_json / ExplorePoint).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/explore.hpp"
#include "core/report.hpp"
#include "ir/analysis.hpp"
#include "mem/memory.hpp"
#include "pipeline/straighten.hpp"
#include "sched/driver.hpp"
#include "support/diagnostics.hpp"
#include "workloads/workloads.hpp"

namespace hls::mem {
namespace {

// ---- Spec validation and placement maps -------------------------------------

TEST(MemorySpec, BankPlacementInterleavedAndBlocked) {
  ArraySpec a;
  a.num_elems = 8;
  a.banks = 2;
  a.interleaved = true;
  EXPECT_EQ(a.bank_of(0), 0);
  EXPECT_EQ(a.bank_of(1), 1);
  EXPECT_EQ(a.bank_of(6), 0);
  a.interleaved = false;  // blocked: ceil(8/2) = 4 elements per bank
  EXPECT_EQ(a.bank_of(0), 0);
  EXPECT_EQ(a.bank_of(3), 0);
  EXPECT_EQ(a.bank_of(4), 1);
  EXPECT_EQ(a.bank_of(7), 1);
}

TEST(MemorySpec, PortOffsetsFollowBankMajorLayout) {
  ArraySpec a;
  a.bank_read_ports = 1;
  a.bank_write_ports = 1;
  a.bank_rw_ports = 1;
  EXPECT_EQ(a.ports_per_bank(), 3);
  EXPECT_TRUE(a.offset_reads(0));    // read-only
  EXPECT_FALSE(a.offset_writes(0));
  EXPECT_FALSE(a.offset_reads(1));   // write-only
  EXPECT_TRUE(a.offset_writes(1));
  EXPECT_TRUE(a.offset_reads(2));    // read/write
  EXPECT_TRUE(a.offset_writes(2));
}

TEST(MemorySpec, ValidateRejectsIllFormedSpecs) {
  const auto reject = [](const MemorySpec& s) {
    EXPECT_THROW(s.validate(), InternalError);
  };
  {
    MemorySpec s;  // overlapping arrays
    ArraySpec a;
    a.name = "a";
    a.num_elems = 4;
    a.bank_rw_ports = 1;
    s.arrays.push_back(a);
    a.name = "b";
    a.first_port = 2;
    s.arrays.push_back(a);
    reject(s);
  }
  {
    MemorySpec s;  // banks above the relaxation ceiling
    ArraySpec a;
    a.num_elems = 4;
    a.banks = 4;
    a.max_banks = 2;
    s.arrays.push_back(a);
    reject(s);
  }
  {
    MemorySpec s;  // inverted window
    WindowSpec w;
    w.min_step = 3;
    w.max_step = 1;
    s.windows.push_back(w);
    reject(s);
  }
  {
    MemorySpec s;  // widening limit below the starting max
    WindowSpec w;
    w.max_step = 4;
    w.max_step_limit = 2;
    s.windows.push_back(w);
    reject(s);
  }
}

TEST(MemorySpec, CanonicalDumpIsEmptyOnlyForEmptySpecs) {
  MemorySpec s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.canonical_dump(), "");
  ArraySpec a;
  a.name = "x";
  a.num_elems = 2;
  s.arrays.push_back(a);
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.canonical_dump(), "");
  // Deterministic: equal specs dump equal.
  MemorySpec t;
  t.arrays.push_back(a);
  EXPECT_EQ(s.canonical_dump(), t.canonical_dump());
  // And the dump reflects the constraint content.
  WindowSpec w;
  w.port = 1;
  w.max_step = 3;
  t.windows.push_back(w);
  EXPECT_NE(s.canonical_dump(), t.canonical_dump());
}

TEST(MemorySpec, ArrayForPortCoversExactRanges) {
  MemorySpec s;
  ArraySpec a;
  a.name = "a";
  a.first_port = 2;
  a.num_elems = 3;
  s.arrays.push_back(a);
  EXPECT_EQ(s.array_for_port(1), -1);
  EXPECT_EQ(s.array_for_port(2), 0);
  EXPECT_EQ(s.array_for_port(4), 0);
  EXPECT_EQ(s.array_for_port(5), -1);
}

// ---- Windows fold into the scheduling spans ---------------------------------

// The stencil kernel's output window must clamp the write's deadline (and
// transitively its producers' ALAPs) in the built problem.
TEST(MemoryWindows, WindowClampsDeadlinesThroughTheSpans) {
  workloads::Workload w = workloads::make_stencil_row();
  pipeline::straighten(w.module);
  const auto region = ir::linearize(w.module.thread.tree, w.loop);
  sched::Problem p = sched::build_problem(
      w.module.thread.dfg, region, {4, 4}, tech::artisan90(), 1600,
      sched::PipelineConfig{}, w.module.ports.size(), false, true, &w.memory);

  ir::OpId write_id = ir::kNoOp;
  for (ir::OpId id : p.ops) {
    if (w.module.thread.dfg.op(id).kind == ir::OpKind::kWrite) write_id = id;
  }
  ASSERT_NE(write_id, ir::kNoOp);
  EXPECT_EQ(p.window_max_of(write_id), 1);
  // 4 states, window max 1: the write may not land in steps 2..3.
  EXPECT_EQ(p.deadline(write_id), 1);
  // Producers inherit the cut: every op feeding the write must close
  // early enough too.
  const ir::Op& wr = w.module.thread.dfg.op(write_id);
  for (ir::OpId d : wr.operands) {
    if (d == ir::kNoOp || w.module.thread.dfg.is_const(d)) continue;
    EXPECT_LE(p.spans.spans[d].alap, 1) << "operand %" << d;
  }
}

// ---- End-to-end convergence through each memory relaxation ------------------

struct History {
  bool restraint(const core::FlowResult& r, const char* needle) const {
    for (const auto& pass : r.sched.history) {
      for (const auto& s : pass.restraints) {
        if (s.find(needle) != std::string::npos) return true;
      }
    }
    return false;
  }
  bool action(const core::FlowResult& r, const char* needle) const {
    for (const auto& pass : r.sched.history) {
      if (pass.action.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

const alloc::ResourcePool* memory_pool(const core::FlowResult& r) {
  for (const auto& p : r.sched.schedule.resources.pools) {
    if (p.is_memory) return &p;
  }
  return nullptr;
}

// banked_fir starts port-starved (2 banks x 1 RW port for 8 reads under a
// 4-state bound) and must converge by adding ports, never by re-banking
// (max_banks caps it at the starting 2).
TEST(MemoryConvergence, PortPressureConvergesViaAddMemPort) {
  for (const auto backend :
       {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
    core::FlowOptions o;
    o.backend = backend;
    o.emit_verilog = false;
    const auto r = core::run_flow(workloads::make_banked_fir(), o);
    const char* label = sched::backend_name(backend);
    ASSERT_TRUE(r.success) << label << ": " << r.failure_reason;
    History h;
    EXPECT_TRUE(h.restraint(r, "port-pressure")) << label;
    EXPECT_TRUE(h.action(r, "add-mem-port")) << label;
    EXPECT_FALSE(h.action(r, "re-bank")) << label;
    EXPECT_GT(r.sched.memory_restraints, 0) << label;
    const auto* pool = memory_pool(r);
    ASSERT_NE(pool, nullptr) << label;
    EXPECT_EQ(pool->banks, 2) << label;
    EXPECT_GT(pool->ports_per_bank(), 1) << label;
  }
}

// transpose4's column reads all land in one bank of four (interleaved
// row-major placement); the expert must re-bank to 8, splitting each
// column, while add-mem-port stays unavailable (max_ports_per_bank = 1).
TEST(MemoryConvergence, BankConflictConvergesViaRebank) {
  for (const auto backend :
       {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
    core::FlowOptions o;
    o.backend = backend;
    o.emit_verilog = false;
    const auto r = core::run_flow(workloads::make_transpose4(), o);
    const char* label = sched::backend_name(backend);
    ASSERT_TRUE(r.success) << label << ": " << r.failure_reason;
    History h;
    EXPECT_TRUE(h.restraint(r, "bank-conflict")) << label;
    EXPECT_TRUE(h.action(r, "re-bank")) << label;
    EXPECT_FALSE(h.action(r, "add-mem-port")) << label;
    const auto* pool = memory_pool(r);
    ASSERT_NE(pool, nullptr) << label;
    EXPECT_EQ(pool->banks, 8) << label;
    EXPECT_EQ(pool->ports_per_bank(), 1) << label;
  }
}

// stencil_row's output contract closes before the multiply chain can
// deliver; the only fix is widening the window, which the spec's
// max_step_limit permits.
TEST(MemoryConvergence, WindowMissConvergesViaWidenWindow) {
  for (const auto backend :
       {sched::BackendKind::kList, sched::BackendKind::kSdc}) {
    core::FlowOptions o;
    o.backend = backend;
    o.emit_verilog = false;
    const auto r = core::run_flow(workloads::make_stencil_row(), o);
    const char* label = sched::backend_name(backend);
    ASSERT_TRUE(r.success) << label << ": " << r.failure_reason;
    History h;
    EXPECT_TRUE(h.restraint(r, "window-miss")) << label;
    EXPECT_TRUE(h.action(r, "widen-window")) << label;
  }
}

// A hard window (max_step_limit = -1) must NOT be widened: the run fails
// cleanly with a schedule-stage diagnostic instead.
TEST(MemoryConvergence, HardWindowFailsCleanlyInsteadOfWidening) {
  workloads::Workload w = workloads::make_stencil_row();
  ASSERT_EQ(w.memory.windows.size(), 1u);
  w.memory.windows[0].max_step_limit = -1;  // contract, not a preference
  core::FlowOptions o;
  o.emit_verilog = false;
  const auto r = core::run_flow(std::move(w), o);
  EXPECT_FALSE(r.success);
  History h;
  EXPECT_FALSE(h.action(r, "widen-window"));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.back().stage, "schedule");
}

// ---- The memory_aware gate and the reporting surface ------------------------

TEST(MemoryFlow, MemoryAwareOffSchedulesMemoryBlind) {
  const core::FlowSession session(workloads::make_banked_fir());
  core::ExploreConfig cfg;
  cfg.curve = "a/b";
  cfg.tclk_ps = 1600;
  cfg.latency = 0;  // keep the designer's [1, 4] bound
  const core::ExplorePoint aware = core::run_point(session, cfg);
  cfg.memory_aware = false;
  const core::ExplorePoint blind = core::run_point(session, cfg);

  ASSERT_TRUE(aware.feasible) << aware.failure;
  ASSERT_TRUE(blind.feasible) << blind.failure;
  EXPECT_GT(aware.memory_restraints, 0);
  EXPECT_GT(aware.mem_banks, 0);
  EXPECT_GT(aware.mem_ports, 0);
  // Blind runs never see the spec: no memory pools, no memory restraints.
  EXPECT_EQ(blind.memory_restraints, 0);
  EXPECT_EQ(blind.mem_banks, 0);
  EXPECT_EQ(blind.mem_ports, 0);
}

TEST(MemoryFlow, SpecKeysTheModuleHashOnlyWhenPresent) {
  workloads::Workload with = workloads::make_banked_fir();
  workloads::Workload without = workloads::make_banked_fir();
  without.memory = MemorySpec{};
  workloads::Workload rebanked = workloads::make_banked_fir();
  rebanked.memory.arrays[0].bank_rw_ports = 2;
  const core::FlowSession s_with(std::move(with));
  const core::FlowSession s_without(std::move(without));
  const core::FlowSession s_rebanked(std::move(rebanked));
  // Same IR: only the memory constraints distinguish these sessions.
  EXPECT_NE(s_with.module_hash(), s_without.module_hash());
  EXPECT_NE(s_with.module_hash(), s_rebanked.module_hash());
}

TEST(MemoryFlow, ReportsRenderBanksPortsAndRestraints) {
  core::FlowOptions o;
  o.emit_verilog = false;
  const auto r = core::run_flow(workloads::make_transpose4(), o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const std::string rep = core::render_report(r);
  EXPECT_NE(rep.find("Memory ("), std::string::npos);
  EXPECT_NE(rep.find("mem:a"), std::string::npos);
  const std::string json = core::render_json(r);
  EXPECT_NE(json.find("\"memory\":{\"restraints\":"), std::string::npos);
  EXPECT_NE(json.find("\"banks\":8"), std::string::npos);
}

// Satellite: an infeasible point's failure string leads with the failing
// diagnostic's structured stage/code coordinates.
TEST(MemoryFlow, ExplorePointFailurePrefixesDiagnosticStageAndCode) {
  const core::FlowSession session(workloads::make_banked_fir());
  core::ExploreConfig bad;
  bad.curve = "bad";
  bad.tclk_ps = -1;  // rejected by validate_flow_options
  bad.latency = 4;
  const core::ExplorePoint pt = core::run_point(session, bad);
  ASSERT_FALSE(pt.feasible);
  EXPECT_EQ(pt.failure.rfind("[options/non-positive-tclk] ", 0), 0u)
      << pt.failure;
}

}  // namespace
}  // namespace hls::mem
