// Tests for src/ir/interp: the untimed reference interpreter (golden
// model) — port streaming, loop-carried state, predicated execution.
#include <gtest/gtest.h>

#include "frontend/builder.hpp"
#include "ir/interp.hpp"
#include "support/rng.hpp"
#include "workloads/example1.hpp"

namespace hls::ir {
namespace {

using frontend::Builder;

// Independent C++ model of the paper's Figure 1 thread. Returns the pixel
// values written for `iters` committed do-while iterations.
std::vector<std::int64_t> example1_reference(
    const std::vector<std::int64_t>& mask,
    const std::vector<std::int64_t>& chrome,
    const std::vector<std::int64_t>& scale,
    const std::vector<std::int64_t>& th) {
  std::vector<std::int64_t> pixels;
  std::int64_t aver = 0;
  std::size_t i = 0;
  auto w32 = [](std::int64_t v) { return canonicalize(v, int_ty(32)); };
  bool restart = true;
  while (i < mask.size()) {
    if (restart) {
      aver = 0;
      restart = false;
    }
    const std::int64_t filt = w32(mask[i]);
    const std::int64_t delta = w32(filt * w32(chrome[i]));
    aver = w32(aver + delta);
    if (aver > w32(th[i])) aver = w32(aver * w32(scale[i]));
    pixels.push_back(w32(aver * filt));
    const bool continue_loop = delta != 0;
    ++i;
    if (!continue_loop) restart = true;  // outer while(true) restarts
  }
  return pixels;
}

Stimulus example1_stimulus(const std::vector<std::int64_t>& mask,
                           const std::vector<std::int64_t>& chrome,
                           const std::vector<std::int64_t>& scale,
                           const std::vector<std::int64_t>& th) {
  Stimulus s;
  s.set("mask", mask);
  s.set("chrome", chrome);
  s.set("scale", scale);
  s.set("th", th);
  return s;
}

TEST(Interp, Example1MatchesHandReference) {
  auto ex = workloads::make_example1();
  const std::vector<std::int64_t> mask = {2, 3, 5, 0, 4, 1};
  const std::vector<std::int64_t> chrome = {10, -4, 2, 9, 0, 7};
  const std::vector<std::int64_t> scale = {3, 3, 2, 2, 5, 1};
  const std::vector<std::int64_t> th = {5, 100, 0, 50, -2, 3};
  const auto r = interpret(ex.module, example1_stimulus(mask, chrome, scale, th));
  EXPECT_TRUE(r.stream_exhausted);
  const auto by_port = writes_by_port(ex.module, r.writes);
  EXPECT_EQ(by_port.at("pixel"),
            example1_reference(mask, chrome, scale, th));
}

TEST(Interp, Example1RandomizedAgainstReference) {
  auto ex = workloads::make_example1();
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform(1, 40));
    std::vector<std::int64_t> mask, chrome, scale, th;
    for (int i = 0; i < n; ++i) {
      // ~20% zero deltas so the do-while exits occasionally.
      mask.push_back(rng.chance(0.2) ? 0 : rng.uniform(-1000, 1000));
      chrome.push_back(rng.chance(0.2) ? 0 : rng.uniform(-1000, 1000));
      scale.push_back(rng.uniform(-8, 8));
      th.push_back(rng.uniform(-500, 500));
    }
    const auto r =
        interpret(ex.module, example1_stimulus(mask, chrome, scale, th));
    const auto by_port = writes_by_port(ex.module, r.writes);
    const auto expected = example1_reference(mask, chrome, scale, th);
    ASSERT_EQ(by_port.count("pixel"), expected.empty() ? 0u : 1u);
    if (!expected.empty()) {
      EXPECT_EQ(by_port.at("pixel"), expected) << "trial " << trial;
    }
  }
}

TEST(Interp, CountedLoopRunsExactTripCount) {
  Builder b("acc");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("sum", int_ty(32));
  auto acc = b.var("acc", int_ty(32));
  b.set(acc, b.c(0));
  auto loop = b.begin_counted(5);
  b.set(acc, b.add(b.get(acc), b.read(in)));
  b.wait();
  b.end_loop();
  b.write(out, b.get(acc));
  auto m = b.finish();
  (void)loop;

  Stimulus s;
  s.set("x", {1, 2, 3, 4, 5, 99, 99});
  const auto r = interpret(m, s);
  EXPECT_FALSE(r.stream_exhausted);
  const auto by_port = writes_by_port(m, r.writes);
  ASSERT_EQ(by_port.at("sum").size(), 1u);
  EXPECT_EQ(by_port.at("sum")[0], 15);
}

TEST(Interp, NestedCountedLoopsUseInnerIterationIndex) {
  // Outer 2 iterations, inner 3: the inner read consumes 6 values because
  // the inner loop's iteration counter is global (not reset per entry).
  Builder b("nest");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto acc = b.var("acc", int_ty(32));
  b.set(acc, b.c(0));
  b.begin_counted(2);
  b.begin_counted(3);
  b.set(acc, b.add(b.get(acc), b.read(in)));
  b.wait();
  b.end_loop();
  b.end_loop();
  b.write(out, b.get(acc));
  auto m = b.finish();

  Stimulus s;
  s.set("x", {1, 2, 3, 10, 20, 30});
  const auto r = interpret(m, s);
  const auto by_port = writes_by_port(m, r.writes);
  ASSERT_EQ(by_port.at("y").size(), 1u);
  EXPECT_EQ(by_port.at("y")[0], 66);
}

TEST(Interp, TwoReadsOfSamePortSeeSameValue) {
  Builder b("dup");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(3);
  auto r1 = b.read(in);
  auto r2 = b.read(in);  // same port, same iteration -> same value
  b.write(out, b.sub(r1, r2));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  Stimulus s;
  s.set("x", {7, 8, 9});
  const auto res = interpret(m, s);
  const auto by_port = writes_by_port(m, res.writes);
  EXPECT_EQ(by_port.at("y"), (std::vector<std::int64_t>{0, 0, 0}));
}

TEST(Interp, IfWithoutElseKeepsOldValue) {
  Builder b("cond");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto v = b.var("v", int_ty(32));
  b.begin_counted(4);
  b.set(v, b.c(100));
  auto x = b.read(in);
  b.begin_if(b.gt(x, b.c(0)));
  b.set(v, x);
  b.end_if();
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  Stimulus s;
  s.set("x", {5, -3, 9, -1});
  const auto res = interpret(m, s);
  const auto by_port = writes_by_port(m, res.writes);
  EXPECT_EQ(by_port.at("y"), (std::vector<std::int64_t>{5, 100, 9, 100}));
}

TEST(Interp, IfElseBothBranches) {
  Builder b("condelse");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto v = b.var("v", int_ty(32));
  b.begin_counted(4);
  auto x = b.read(in);
  b.begin_if(b.ge(x, b.c(0)));
  b.set(v, x);
  b.begin_else();
  b.set(v, b.neg(x));
  b.end_if();
  b.write(out, b.get(v));  // abs(x)
  b.wait();
  b.end_loop();
  auto m = b.finish();

  Stimulus s;
  s.set("x", {5, -3, 0, -17});
  const auto res = interpret(m, s);
  const auto by_port = writes_by_port(m, res.writes);
  EXPECT_EQ(by_port.at("y"), (std::vector<std::int64_t>{5, 3, 0, 17}));
}

TEST(Interp, WritesInUntakenBranchAreSkipped) {
  Builder b("wbr");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.begin_counted(4);
  auto x = b.read(in);
  b.begin_if(b.gt(x, b.c(0)));
  b.write(out, x);
  b.end_if();
  b.wait();
  b.end_loop();
  auto m = b.finish();

  Stimulus s;
  s.set("x", {5, -3, 9, -1});
  const auto res = interpret(m, s);
  const auto by_port = writes_by_port(m, res.writes);
  EXPECT_EQ(by_port.at("y"), (std::vector<std::int64_t>{5, 9}));
}

TEST(Interp, LoopCarriedAcrossIterations) {
  // Fibonacci via two carried variables.
  Builder b("fib");
  auto out = b.out("f", int_ty(32));
  auto a = b.var("a", int_ty(32));
  auto c = b.var("c", int_ty(32));
  b.set(a, b.c(0));
  b.set(c, b.c(1));
  b.begin_counted(8);
  auto next = b.add(b.get(a), b.get(c));
  b.write(out, b.get(c));
  b.set(a, b.get(c));
  b.set(c, next);
  b.wait();
  b.end_loop();
  auto m = b.finish();

  const auto res = interpret(m, Stimulus{});
  const auto by_port = writes_by_port(m, res.writes);
  EXPECT_EQ(by_port.at("f"),
            (std::vector<std::int64_t>{1, 1, 2, 3, 5, 8, 13, 21}));
}

TEST(Interp, BudgetStopsRunawayForeverLoop) {
  Builder b("spin");
  auto out = b.out("y", int_ty(32));
  auto v = b.var("v", int_ty(32));
  b.set(v, b.c(0));
  b.begin_forever();
  b.set(v, b.add(b.get(v), b.c(1)));
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  auto m = b.finish();

  RunLimits limits;
  limits.max_op_executions = 1000;
  const auto res = interpret(m, Stimulus{}, limits);
  EXPECT_FALSE(res.stream_exhausted);
  EXPECT_LE(res.ops_executed, 1001);
  EXPECT_GT(res.writes.size(), 10u);
}

TEST(Interp, LoopIterationCountsReported) {
  auto ex = workloads::make_example1();
  // delta == 0 on the 3rd iteration ends the do-while; outer loop restarts
  // and the next read exhausts the stream.
  Stimulus s = example1_stimulus({1, 1, 0}, {1, 1, 1}, {1, 1, 1}, {9, 9, 9});
  const auto r = interpret(ex.module, s);
  EXPECT_TRUE(r.stream_exhausted);
  EXPECT_EQ(r.loop_iterations.at(ex.loop), 3);
}

}  // namespace
}  // namespace hls::ir
