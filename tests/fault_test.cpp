// Robustness suite (docs/FAULTS.md): deterministic work-unit budgets,
// cooperative cancellation, and the fault-injection sites across the
// scheduler and the serve layer. The recurring assertion shape is
// twofold: every forced fault surfaces a STRUCTURED diagnostic and a
// BOUNDED recovery (the stream stays ordered and parseable, the rest of
// the work completes), and every failure point is byte-identical at every
// thread count.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <functional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "serve/io.hpp"
#include "serve/server.hpp"
#include "support/budget.hpp"
#include "support/fault.hpp"
#include "workloads/workloads.hpp"

namespace hls {
namespace {

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, CountedArmFiresExactOccurrences) {
  support::FaultInjector fi;
  fi.arm("site", /*count=*/2, /*skip=*/1);
  EXPECT_FALSE(fi.should_fail("site"));  // occurrence 1: skipped
  EXPECT_TRUE(fi.should_fail("site"));   // 2
  EXPECT_TRUE(fi.should_fail("site"));   // 3
  EXPECT_FALSE(fi.should_fail("site"));  // 4: budget spent
  EXPECT_EQ(fi.calls("site"), 4u);
  EXPECT_EQ(fi.fired("site"), 2u);
  // Unarmed sites never fire but still count.
  EXPECT_FALSE(fi.should_fail("other"));
  EXPECT_EQ(fi.calls("other"), 1u);
  EXPECT_EQ(fi.total_fired(), 2u);
  fi.disarm("site");
  EXPECT_FALSE(fi.should_fail("site"));
  fi.reset();
  EXPECT_EQ(fi.calls("site"), 0u);
  EXPECT_EQ(fi.total_fired(), 0u);
}

TEST(FaultInjector, SeededRandomIsReproducible) {
  auto pattern = [](std::uint64_t seed) {
    support::FaultInjector fi;
    fi.arm_random("site", 0.5, seed);
    std::string bits;
    for (int i = 0; i < 64; ++i) bits += fi.should_fail("site") ? '1' : '0';
    return bits;
  };
  const std::string a = pattern(42);
  EXPECT_EQ(a, pattern(42));              // same seed → same fault sequence
  EXPECT_NE(a, pattern(43));              // different seed → different draw
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 over 64 trials fires
  EXPECT_NE(a.find('0'), std::string::npos);
}

// ---- Budget ----------------------------------------------------------------

TEST(Budget, VerdictPrecedenceAndCodes) {
  using support::BudgetVerdict;
  support::BudgetLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.max_commits = 5;
  limits.max_relax_steps = 5;
  EXPECT_FALSE(limits.unlimited());
  support::StopSource stop;
  support::Budget b(limits, &stop);
  EXPECT_EQ(b.check(), BudgetVerdict::kOk);
  b.charge_relax_steps(5);
  EXPECT_EQ(b.check(), BudgetVerdict::kRelaxExhausted);
  // Commits outrank relaxation steps; cancellation outranks both.
  b.charge_commits(5);
  EXPECT_EQ(b.check(), BudgetVerdict::kCommitsExhausted);
  stop.request_stop();
  EXPECT_EQ(b.check(), BudgetVerdict::kCancelled);

  EXPECT_STREQ(support::budget_verdict_code(BudgetVerdict::kOk), "");
  EXPECT_STREQ(support::budget_verdict_code(BudgetVerdict::kCancelled),
               "cancelled");
  EXPECT_STREQ(support::budget_verdict_code(BudgetVerdict::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(support::budget_verdict_code(BudgetVerdict::kCommitsExhausted),
               "budget_exhausted");
  EXPECT_STREQ(support::budget_verdict_code(BudgetVerdict::kRelaxExhausted),
               "budget_exhausted");
  // Work-unit messages are deterministic: unit, spend, limit — no clock.
  const std::string msg = b.describe(BudgetVerdict::kCommitsExhausted);
  EXPECT_NE(msg.find("5 engine commits >= limit 5"), std::string::npos);
}

// ewf at 1600 ps / latency 16 needs ~29 relaxation passes cold — plenty of
// pass boundaries for budgets and cancellation to land on.
core::FlowOptions tight_flow_options() {
  core::FlowOptions opts;
  opts.tclk_ps = 1600;
  opts.latency_min = 16;
  opts.latency_max = 16;
  return opts;
}

TEST(SchedBudget, CommitBudgetExhaustsWithStructuredCode) {
  core::FlowOptions opts = tight_flow_options();
  opts.budget.max_commits = 50;
  const core::FlowResult first = core::run_flow(workloads::make_ewf(), opts);
  ASSERT_FALSE(first.success);
  EXPECT_NE(first.failure_reason.find("work-unit budget exhausted"),
            std::string::npos);
  EXPECT_NE(core::render_report(first).find("[schedule/budget_exhausted]"),
            std::string::npos);
  EXPECT_NE(core::render_json(first).find(
                "\"reason_code\":\"schedule/budget_exhausted\""),
            std::string::npos);
  // Work units are a pure function of the problem: re-running produces the
  // byte-identical failure, spend included.
  const core::FlowResult second = core::run_flow(workloads::make_ewf(), opts);
  EXPECT_EQ(first.failure_reason, second.failure_reason);
}

TEST(SchedBudget, PassBudgetExhaustionHasDedicatedCode) {
  core::FlowOptions opts = tight_flow_options();
  opts.budget.max_passes = 1;
  const core::FlowResult r = core::run_flow(workloads::make_ewf(), opts);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("pass budget (1) exhausted"),
            std::string::npos);
  EXPECT_NE(
      core::render_report(r).find("[schedule/pass_budget_exhausted]"),
      std::string::npos);
  EXPECT_NE(core::render_json(r).find(
                "\"reason_code\":\"schedule/pass_budget_exhausted\""),
            std::string::npos);
}

TEST(SchedBudget, NegativeBudgetIsRejectedAtValidation) {
  core::FlowOptions opts = tight_flow_options();
  opts.budget.max_commits = -1;
  const core::FlowResult r = core::run_flow(workloads::make_ewf(), opts);
  ASSERT_FALSE(r.success);
  EXPECT_NE(core::render_report(r).find("[options/negative-budget]"),
            std::string::npos);
}

TEST(SchedBudget, StopSourceCancelsAtPassBoundary) {
  core::FlowSession session(workloads::make_ewf());
  ASSERT_TRUE(session.ok());
  core::ExploreConfig cfg;
  cfg.curve = "seq";
  cfg.tclk_ps = 1600;
  cfg.latency = 16;
  support::StopSource stop;
  stop.request_stop();  // already stopped: the first pass boundary trips
  core::RunPointExtras extras;
  extras.stop = &stop;
  const core::ExplorePoint pt = core::run_point(session, cfg, &extras);
  EXPECT_FALSE(pt.feasible);
  EXPECT_TRUE(pt.cancelled);
  EXPECT_EQ(pt.failure.rfind("[schedule/cancelled]", 0), 0u) << pt.failure;
  // Without the stop request the identical config solves.
  const core::ExplorePoint clean = core::run_point(session, cfg);
  EXPECT_TRUE(clean.feasible);
  EXPECT_FALSE(clean.cancelled);
}

// ---- Serve-layer robustness -----------------------------------------------

std::vector<serve::JobRequest> small_job_set() {
  std::vector<serve::JobRequest> jobs;
  auto job = [&](std::int64_t id, const std::string& workload,
                 std::initializer_list<double> tclks, int latency) {
    serve::JobRequest j;
    j.id = id;
    j.workload = workload;
    for (double tclk : tclks) {
      core::ExploreConfig cfg;
      cfg.curve = "seq-" + std::to_string(latency);
      cfg.tclk_ps = tclk;
      cfg.latency = latency;
      j.points.push_back(cfg);
    }
    jobs.push_back(std::move(j));
  };
  job(0, "arf", {1700, 1900, 2100}, 10);
  job(1, "crc32", {1500, 1800}, 12);
  job(2, "arf", {1700, 2100}, 10);  // same module as job 0
  return jobs;
}

std::string drain_stream(
    const serve::ServerOptions& options,
    const std::vector<serve::JobRequest>& jobs,
    const std::function<void(serve::Server&)>& before_drain = {},
    serve::ServeStats* stats_out = nullptr) {
  serve::Server server(options);
  for (const serve::JobRequest& job : jobs) {
    EXPECT_TRUE(server.submit(job)) << "job " << job.id;
  }
  if (before_drain) before_drain(server);
  std::string out;
  server.drain([&](const std::string& line) {
    out += line;
    out += '\n';
  });
  if (stats_out != nullptr) *stats_out = server.stats();
  return out;
}

// Every line of a serve stream must be a complete JSON object even when
// the drain is cut short — "ordered and parseable to the last byte".
void expect_parseable(const std::string& stream) {
  std::size_t start = 0;
  while (start < stream.size()) {
    std::size_t end = stream.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated line";
    const std::string line = stream.substr(start, end - start);
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    start = end + 1;
  }
}

TEST(ServeFault, TightBudgetPointIsIdenticalAtEveryThreadCount) {
  std::vector<serve::JobRequest> jobs = small_job_set();
  serve::JobRequest budgeted;
  budgeted.id = 3;
  budgeted.workload = "ewf";
  core::ExploreConfig cfg;
  cfg.curve = "seq-16";
  cfg.tclk_ps = 1600;
  cfg.latency = 16;
  cfg.budget.max_commits = 50;  // trips after the first pass
  budgeted.points.push_back(cfg);
  jobs.push_back(budgeted);

  serve::ServerOptions serial;
  serial.threads = 1;
  const std::string reference = drain_stream(serial, jobs);
  EXPECT_NE(reference.find("[schedule/budget_exhausted]"), std::string::npos);
  for (int threads : {2, 4}) {
    serve::ServerOptions concurrent = serial;
    concurrent.threads = threads;
    EXPECT_EQ(reference, drain_stream(concurrent, jobs))
        << "threads=" << threads;
  }
}

TEST(ServeFault, TransientCompileFaultRetriesAndMatchesCleanRun) {
  serve::ServerOptions options;
  options.threads = 2;
  // Single job: one bounded retry later the stream is byte-identical to a
  // run where the fault never happened.
  const std::vector<serve::JobRequest> one = {small_job_set().front()};
  const std::string clean = drain_stream(options, one);
  support::FaultInjector faults;
  faults.arm("session/compile", /*count=*/1);
  serve::ServerOptions faulty = options;
  faulty.faults = &faults;
  serve::ServeStats stats;
  const std::string recovered = drain_stream(faulty, one, {}, &stats);
  EXPECT_EQ(clean, recovered);
  EXPECT_EQ(stats.compile_retries, 1u);
  EXPECT_EQ(stats.faults_injected, 1u);

  // Multi-job set: the retried job legitimately lands a round later, so
  // jobs may interleave differently — but the CONTENT (every point and
  // done line) is unchanged, line for line.
  auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  const std::vector<serve::JobRequest> jobs = small_job_set();
  const std::string clean_set = drain_stream(options, jobs);
  support::FaultInjector set_faults;
  set_faults.arm("session/compile", /*count=*/1);
  serve::ServerOptions faulty_set = options;
  faulty_set.faults = &set_faults;
  EXPECT_EQ(sorted_lines(clean_set),
            sorted_lines(drain_stream(faulty_set, jobs)));
}

TEST(ServeFault, CompileRetriesExhaustedSurfacesStructuredError) {
  const std::vector<serve::JobRequest> jobs = small_job_set();
  support::FaultInjector faults;
  faults.arm("session/compile", /*count=*/1000);  // never stops failing
  serve::ServerOptions options;
  options.threads = 2;
  options.max_compile_retries = 2;
  options.faults = &faults;
  serve::ServeStats stats;
  const std::string out = drain_stream(options, jobs, {}, &stats);
  expect_parseable(out);
  // Every admission hits the fault: each job retries its bounded budget,
  // then fails loudly — and the drain terminates (no infinite requeue).
  for (const serve::JobRequest& job : jobs) {
    EXPECT_NE(
        out.find("{\"job\":" + std::to_string(job.id) +
                 ",\"error\":\"[serve/retries_exhausted] transient compile "
                 "fault persisted after 3 attempts\"}"),
        std::string::npos)
        << out;
  }
  EXPECT_EQ(out.find("\"feasible\""), std::string::npos);
  EXPECT_EQ(stats.compile_retries, 2u * jobs.size());
}

TEST(ServeFault, TraceInsertFaultNeverCorruptsSeedReplay) {
  // Strip the fields a seed legitimately changes; everything else must
  // survive every dropped insert.
  auto strip = [](std::string text) {
    std::string out;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(start, end - start);
      start = end + 1;
      for (const char* field :
           {"\"passes\":", "\"relaxations\":", "\"seed_replays\":",
            "\"seed_seeded\":", "\"seed_misses\":"}) {
        const std::size_t at = line.find(field);
        if (at == std::string::npos) continue;
        std::size_t stop = line.find(',', at);
        if (stop == std::string::npos) stop = line.find('}', at);
        line.erase(at, stop - at + 1);
      }
      const std::size_t seed_at = line.find(",\"seed_use\":");
      if (seed_at != std::string::npos) {
        const std::size_t stop = line.find('}', seed_at);
        line.erase(seed_at, stop - seed_at);
      }
      out += line;
      out += '\n';
    }
    return out;
  };
  auto two_drains = [&](support::FaultInjector* faults) {
    serve::ServerOptions options;
    options.threads = 2;
    options.faults = faults;
    serve::Server server(options);
    std::string out;
    for (int d = 0; d < 2; ++d) {
      for (const serve::JobRequest& job : small_job_set()) {
        EXPECT_TRUE(server.submit(job));
      }
      server.drain([&](const std::string& line) {
        out += line;
        out += '\n';
      });
    }
    return out;
  };
  const std::string clean = two_drains(nullptr);
  support::FaultInjector faults;
  faults.arm("trace/insert", /*count=*/1000);  // drop every seed commit
  const std::string faulty = two_drains(&faults);
  // With every insert dropped the warm drain solves cold — no replays —
  // but the RESULTS are identical: a missing seed can cost passes, never
  // correctness.
  EXPECT_EQ(strip(clean), strip(faulty));
  EXPECT_EQ(faulty.find("\"seed_use\":\"replay\""), std::string::npos);
  EXPECT_NE(clean.find("\"seed_use\":\"replay\""), std::string::npos);
}

TEST(ServeFault, SessionEvictionRacingCompileFaultStaysDeterministic) {
  // A forced eviction between rounds plus a transient compile fault on the
  // next admission: the nastiest interleaving the caches support. The
  // stream must still be byte-identical at every thread count, and every
  // job must account for itself (done or error line).
  auto run = [](int threads) {
    support::FaultInjector faults;
    faults.arm("session/evict", /*count=*/2);
    faults.arm("session/compile", /*count=*/1, /*skip=*/1);
    serve::ServerOptions options;
    options.threads = threads;
    options.micro_batch = 1;  // several rounds → evictions land mid-job
    options.faults = &faults;
    return drain_stream(options, small_job_set());
  };
  const std::string reference = run(1);
  expect_parseable(reference);
  for (const serve::JobRequest& job : small_job_set()) {
    const std::string id = std::to_string(job.id);
    const bool accounted =
        reference.find("{\"job\":" + id + ",\"done\":true") !=
            std::string::npos ||
        reference.find("{\"job\":" + id + ",\"error\":") != std::string::npos;
    EXPECT_TRUE(accounted) << "job " << id << "\n" << reference;
  }
  EXPECT_EQ(reference, run(4));
}

TEST(ServeFault, WorkerDispatchFaultFailsExactlyThatPoint) {
  auto run = [](int threads, serve::ServeStats* stats) {
    support::FaultInjector faults;
    faults.arm("worker/dispatch", /*count=*/1, /*skip=*/2);  // third point
    serve::ServerOptions options;
    options.threads = threads;
    options.faults = &faults;
    return drain_stream(options, small_job_set(), {}, stats);
  };
  serve::ServeStats stats;
  const std::string reference = run(1, &stats);
  EXPECT_EQ(stats.faults_injected, 1u);
  // Exactly one synthesized failure; every other point ran normally.
  std::size_t failures = 0;
  for (std::size_t at = reference.find("[serve/fault_injected]");
       at != std::string::npos;
       at = reference.find("[serve/fault_injected]", at + 1)) {
    ++failures;
  }
  EXPECT_EQ(failures, 1u);
  EXPECT_NE(reference.find("\"feasible\":true"), std::string::npos);
  serve::ServeStats threaded_stats;
  EXPECT_EQ(reference, run(4, &threaded_stats));
}

TEST(ServeFault, CancelEmitsOrderedPlaceholdersAndSummary) {
  auto run = [](int threads, serve::ServeStats* stats) {
    serve::ServerOptions options;
    options.threads = threads;
    return drain_stream(options, small_job_set(),
                        [](serve::Server& server) { server.cancel(0); },
                        stats);
  };
  serve::ServeStats stats;
  const std::string reference = run(1, &stats);
  expect_parseable(reference);
  // Job 0's three points appear as ordered cancelled placeholders...
  for (int point = 0; point < 3; ++point) {
    EXPECT_NE(reference.find("{\"job\":0,\"point\":" + std::to_string(point)),
              std::string::npos);
  }
  EXPECT_NE(reference.find("[serve/cancelled]"), std::string::npos);
  EXPECT_NE(reference.find("\"cancelled\":true"), std::string::npos);
  // ...its done summary tallies them, and the other jobs ran untouched.
  EXPECT_NE(reference.find("{\"job\":0,\"done\":true,\"points\":3,"
                           "\"failures\":0,\"cancelled\":3"),
            std::string::npos)
      << reference;
  EXPECT_NE(reference.find("{\"job\":1,\"done\":true"), std::string::npos);
  EXPECT_EQ(stats.jobs_cancelled, 1u);
  EXPECT_EQ(stats.points_cancelled, 3u);
  serve::ServeStats threaded_stats;
  EXPECT_EQ(reference, run(4, &threaded_stats));
}

TEST(ServeFault, InjectedStopDrainsGracefullyMidRun) {
  auto run = [](int threads) {
    support::FaultInjector faults;
    faults.arm("drain/stop", /*count=*/1, /*skip=*/1);  // stop at round 2
    serve::ServerOptions options;
    options.threads = threads;
    options.micro_batch = 1;
    options.max_inflight = 1;  // job 1+ still queued when the stop lands
    options.faults = &faults;
    return drain_stream(options, small_job_set());
  };
  const std::string reference = run(1);
  expect_parseable(reference);
  // Round 1 really ran (a point solved), then the stop cancelled the rest
  // IN ORDER: the in-flight job finishes with placeholders + summary, the
  // never-started jobs get structured error lines.
  EXPECT_NE(reference.find("\"feasible\":true"), std::string::npos);
  EXPECT_NE(reference.find("[serve/cancelled] drain stopped"),
            std::string::npos);
  EXPECT_NE(reference.find("{\"job\":0,\"done\":true"), std::string::npos);
  EXPECT_NE(
      reference.find("\"error\":\"[job/cancelled] drain stopped before job "
                     "started\""),
      std::string::npos);
  EXPECT_EQ(reference, run(4));
}

TEST(ServeFault, StopSourceDrainsGracefullyBeforeAnyRound) {
  support::StopSource stop;
  stop.request_stop();
  serve::ServerOptions options;
  options.threads = 2;
  options.stop = &stop;
  serve::ServeStats stats;
  const std::string out = drain_stream(options, small_job_set(), {}, &stats);
  expect_parseable(out);
  // Nothing ran; every job got its cancellation line, so a SIGTERM'd
  // server still leaves a complete, attributable stream.
  EXPECT_EQ(out.find("\"feasible\":true"), std::string::npos);
  EXPECT_EQ(stats.jobs_cancelled, small_job_set().size());
}

TEST(ServeFault, ShedsBeyondQueueDepthWithStructuredError) {
  serve::ServerOptions options;
  options.max_queue_depth = 2;
  serve::Server server(options);
  std::string error;
  const std::vector<serve::JobRequest> jobs = small_job_set();
  EXPECT_TRUE(server.submit(jobs[0], &error));
  EXPECT_TRUE(server.submit(jobs[1], &error));
  EXPECT_FALSE(server.submit(jobs[2], &error));
  EXPECT_EQ(error,
            "[job/shed] queue depth 2 exceeded; job 2 rejected");
  EXPECT_EQ(server.stats().jobs_shed, 1u);
  // The counter reaches the --stats line hls_serve emits.
  EXPECT_NE(server.stats().to_json().find("\"jobs_shed\":1"),
            std::string::npos);
}

TEST(ServeFault, MidDrainSocketErrorLeavesDeliveredOutputOrdered) {
  // The serving front end keeps draining when the client hangs up; what
  // the client DID receive must be an exact ordered prefix of the full
  // stream. Model the sink the way hls_serve builds it: write_all over a
  // socketpair with an injected EPIPE partway through.
  std::signal(SIGPIPE, SIG_IGN);
  const std::vector<serve::JobRequest> jobs = small_job_set();
  serve::ServerOptions options;
  options.threads = 2;
  const std::string full = drain_stream(options, jobs);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  support::FaultInjector faults;
  faults.arm("socket/epipe", /*count=*/1, /*skip=*/3);  // die on line 4
  serve::IoOptions io;
  io.faults = &faults;
  serve::Server server(options);
  for (const serve::JobRequest& job : jobs) ASSERT_TRUE(server.submit(job));
  bool peer_gone = false;
  server.drain([&](const std::string& line) {
    if (peer_gone) return;
    int err = 0;
    if (!serve::write_all(fds[0], line + "\n", io, &err)) {
      peer_gone = true;
      EXPECT_EQ(err, EPIPE);
    }
  });
  ::close(fds[0]);
  std::string received;
  char buf[4096];
  for (ssize_t n = ::read(fds[1], buf, sizeof buf); n > 0;
       n = ::read(fds[1], buf, sizeof buf)) {
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[1]);
  EXPECT_TRUE(peer_gone);
  ASSERT_FALSE(received.empty());
  EXPECT_LT(received.size(), full.size());
  EXPECT_EQ(received, full.substr(0, received.size()));  // ordered prefix
  expect_parseable(received);
}

// ---- Socket I/O helpers ----------------------------------------------------

TEST(ServeIo, ReadRequestRetriesEintrAndCapsRequestSize) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"id\":0}";
  ASSERT_EQ(::write(fds[0], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::shutdown(fds[0], SHUT_WR);
  support::FaultInjector faults;
  faults.arm("socket/read", /*count=*/3);  // three simulated EINTRs first
  serve::IoOptions io;
  io.faults = &faults;
  std::string text;
  EXPECT_EQ(serve::read_request(fds[1], &text, io), serve::ReadStatus::kOk);
  EXPECT_EQ(text, payload);
  EXPECT_EQ(faults.fired("socket/read"), 3u);

  // Oversized: the cap rejects without reading the stream to completion.
  int big[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, big), 0);
  const std::string chunk(1024, 'x');
  ASSERT_EQ(::write(big[0], chunk.data(), chunk.size()),
            static_cast<ssize_t>(chunk.size()));
  serve::IoOptions capped;
  capped.max_request_bytes = 16;
  EXPECT_EQ(serve::read_request(big[1], &text, capped),
            serve::ReadStatus::kOversized);
  ::close(big[0]);
  ::close(big[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeIo, WriteAllLoopsPartialWritesAndSurfacesEpipe) {
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  support::FaultInjector faults;
  faults.arm("socket/write", /*count=*/4);  // first 4 writes: 1 byte each
  serve::IoOptions io;
  io.faults = &faults;
  const std::string payload = "twelve bytes";
  EXPECT_TRUE(serve::write_all(fds[0], payload, io));
  EXPECT_EQ(faults.fired("socket/write"), 4u);
  char buf[64] = {};
  ASSERT_EQ(::read(fds[1], buf, sizeof buf),
            static_cast<ssize_t>(payload.size()));
  EXPECT_EQ(std::string(buf, payload.size()), payload);

  // Injected EPIPE.
  int err = 0;
  support::FaultInjector epipe;
  epipe.arm("socket/epipe");
  serve::IoOptions io_epipe;
  io_epipe.faults = &epipe;
  EXPECT_FALSE(serve::write_all(fds[0], payload, io_epipe, &err));
  EXPECT_EQ(err, EPIPE);

  // Real EPIPE: peer closed. SIGPIPE is ignored, so this is an errno, not
  // process death — exactly how hls_serve survives a vanished client.
  ::close(fds[1]);
  err = 0;
  bool ok = true;
  // The first write after close may succeed into the dead socket's buffer;
  // keep writing until the error surfaces.
  for (int i = 0; i < 64 && ok; ++i) {
    ok = serve::write_all(fds[0], payload, {}, &err);
  }
  EXPECT_FALSE(ok);
  EXPECT_EQ(err, EPIPE);
  ::close(fds[0]);
}

}  // namespace
}  // namespace hls
