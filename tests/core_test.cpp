// Tests for src/core/: the end-to-end run_flow facade on Example 1 and
// the bundled kernels (sequential and pipelined), co-simulation against
// the interpreter, clean failure reporting, feature-switch ablations,
// design-space exploration sweeps, and report/JSON rendering.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "core/explore.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "support/rng.hpp"
#include "workloads/example1.hpp"

namespace hls::core {
namespace {

workloads::Workload example1_workload() {
  workloads::Workload w;
  auto ex = workloads::make_example1();
  w.name = "example1";
  w.module = std::move(ex.module);
  w.loop = ex.loop;
  return w;
}

// ---- End-to-end flow -------------------------------------------------------------

TEST(Flow, Example1SequentialEndToEnd) {
  FlowOptions o;
  auto r = run_flow(example1_workload(), o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.sched.schedule.num_steps, 3);
  EXPECT_GE(r.sched.schedule.worst_slack_ps, 0);
  EXPECT_FALSE(r.verilog.empty());
  EXPECT_GT(r.area.total(), 0);
  EXPECT_GT(r.power.total_mw(), 0);
  EXPECT_DOUBLE_EQ(r.delay_ns, 3 * 1.6);

  // The machine still simulates correctly after the full flow (including
  // the optimizer's rewrites).
  Rng rng(1);
  ir::Stimulus s;
  std::vector<std::int64_t> mask;
  std::vector<std::int64_t> chrome;
  std::vector<std::int64_t> scale;
  std::vector<std::int64_t> th;
  for (int i = 0; i < 16; ++i) {
    mask.push_back(rng.uniform(1, 100));
    chrome.push_back(rng.uniform(1, 100));
    scale.push_back(rng.uniform(-4, 4));
    th.push_back(rng.uniform(-100, 100));
  }
  s.set("mask", mask);
  s.set("chrome", chrome);
  s.set("scale", scale);
  s.set("th", th);
  const auto ref = ir::interpret(*r.module, s);
  const auto sim = rtl::simulate(r.machine, s);
  EXPECT_EQ(ir::writes_by_port(*r.module, ref.writes),
            ir::writes_by_port(*r.module, sim.writes));
}

TEST(Flow, WorkloadsScheduleSequentially) {
  for (auto make : {workloads::make_ewf, workloads::make_arf,
                    workloads::make_conv3x3, workloads::make_crc32}) {
    FlowOptions o;
    auto r = run_flow(make(), o);
    EXPECT_TRUE(r.success) << r.failure_reason;
    EXPECT_GE(r.sched.schedule.worst_slack_ps, 0);
  }
}

TEST(Flow, WorkloadsPipeline) {
  // FIR has a pure feed-forward delay line (no arithmetic recurrence), so
  // even II=1 is feasible.
  for (int ii : {1, 2}) {
    FlowOptions o;
    o.pipeline_ii = ii;
    auto r = run_flow(workloads::make_fir(8), o);
    EXPECT_TRUE(r.success) << "ii=" << ii << ": " << r.failure_reason;
    EXPECT_EQ(r.machine.loop.initiation_interval(), ii);
  }
}

TEST(Flow, RecurrenceBoundsTheFeasibleII) {
  // EWF's carried filter state forms a long arithmetic recurrence; II=1
  // cannot be met at this clock, and the flow reports a clean failure.
  FlowOptions o;
  o.pipeline_ii = 1;
  o.allow_accept_slack = false;
  auto r = run_flow(workloads::make_ewf(), o);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure_reason.empty());
  // A generous II covering the recurrence schedules fine.
  FlowOptions o8;
  o8.pipeline_ii = 12;
  auto r8 = run_flow(workloads::make_ewf(), o8);
  EXPECT_TRUE(r8.success) << r8.failure_reason;
}

TEST(Flow, MinIiSolveFindsTheRecurrenceBound) {
  // solve_min_ii walks the flow to the smallest feasible II instead of
  // demanding one up front. On EWF that lands within the recurrence
  // bound the fixed-II test above brackets (1 infeasible, 12 feasible).
  FlowOptions o;
  o.solve_min_ii = true;
  o.backend = sched::BackendKind::kSdc;  // constraint stats come from SDC
  auto r = run_flow(workloads::make_ewf(), o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.sched.min_ii, 1);
  EXPECT_LE(r.sched.min_ii, 12);
  EXPECT_EQ(r.sched.schedule.pipeline.ii, r.sched.min_ii);
  // The solved II reaches the report surfaces.
  const std::string rep = render_report(r);
  EXPECT_NE(rep.find("minimum II solve"), std::string::npos);
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"min_ii\":" + std::to_string(r.sched.min_ii)),
            std::string::npos);
  EXPECT_NE(json.find("\"constraint_stats\""), std::string::npos);
}

TEST(Flow, Idct8BothMicroarchitectures) {
  FlowOptions seq;
  seq.latency_min = 8;
  seq.latency_max = 8;
  auto rs = run_flow(workloads::make_idct8(), seq);
  ASSERT_TRUE(rs.success) << rs.failure_reason;
  EXPECT_EQ(rs.sched.schedule.num_steps, 8);

  FlowOptions pipe;
  pipe.pipeline_ii = 8;
  pipe.latency_min = 16;
  pipe.latency_max = 16;
  auto rp = run_flow(workloads::make_idct8(), pipe);
  ASSERT_TRUE(rp.success) << rp.failure_reason;
  // Equal throughput (II=8 both ways); the pipelined one spreads work over
  // 16 states.
  EXPECT_EQ(rp.machine.loop.initiation_interval(), 8);
  EXPECT_EQ(rp.sched.schedule.num_steps, 16);
}

TEST(Flow, OptimizerShrinksTheDfg) {
  FlowOptions with;
  FlowOptions without;
  without.run_optimizer = false;
  auto r1 = run_flow(workloads::make_idct8(), with);
  auto r2 = run_flow(workloads::make_idct8(), without);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_LT(r1.module->thread.dfg.size(), r2.module->thread.dfg.size());
}

TEST(Flow, FailureIsReportedCleanly) {
  FlowOptions o;
  o.latency_min = 1;
  o.latency_max = 1;  // Example 1 cannot schedule in one state
  o.allow_accept_slack = false;
  auto r = run_flow(example1_workload(), o);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Flow, AcceptSlackRescuesOverconstrainedLatency) {
  // With the last-resort relaxation allowed, the one-state schedule binds
  // with negative slack and synthesis pays recovery area.
  FlowOptions o;
  o.latency_min = 1;
  o.latency_max = 1;
  auto r = run_flow(example1_workload(), o);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_LT(r.sched.schedule.worst_slack_ps, 0);
  EXPECT_GT(r.area.timing_recovery, 0);
}

// ---- Reports -----------------------------------------------------------------------

TEST(Report, ContainsScheduleAndAreas) {
  FlowOptions o;
  auto r = run_flow(example1_workload(), o);
  ASSERT_TRUE(r.success);
  const std::string rep = render_report(r);
  EXPECT_NE(rep.find("Schedule (Table 2 format)"), std::string::npos);
  EXPECT_NE(rep.find("mul32"), std::string::npos);
  EXPECT_NE(rep.find("Area:"), std::string::npos);
  EXPECT_NE(rep.find("Power:"), std::string::npos);
  const std::string trace = render_trace(r.sched);
  EXPECT_NE(trace.find("pass 1"), std::string::npos);
  EXPECT_NE(trace.find("add-state"), std::string::npos);
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"success\":true"), std::string::npos);
  EXPECT_NE(json.find("\"li\":3"), std::string::npos);
}

// ---- Exploration (Figures 10-11 machinery) ----------------------------------------------

TEST(Explore, PaperGridHas25Configs) {
  const auto grid = idct_paper_grid();
  EXPECT_EQ(grid.size(), 25u);
}

TEST(Explore, CurvesTradeAreaForDelay) {
  // A small grid to keep the test fast: one sequential and one pipelined
  // micro-architecture at two clocks.
  std::vector<ExploreConfig> grid = {
      {"seq16", 1600, 16, 0},
      {"seq16", 2200, 16, 0},
      {"pipe32", 1600, 32, 16},
      {"pipe32", 2200, 32, 16},
  };
  const auto pts = explore([] { return workloads::make_idct8(); }, grid);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_TRUE(p.feasible) << p.curve << " @ " << p.tclk_ps;
    EXPECT_GT(p.area, 0);
    EXPECT_GT(p.power_mw, 0);
  }
  // Same II: delay equals II x Tclk for both architectures.
  EXPECT_DOUBLE_EQ(pts[0].delay_ns, 16 * 1.6);
  EXPECT_DOUBLE_EQ(pts[2].delay_ns, 16 * 1.6);
  // Slower clock costs delay but not area (same architecture).
  EXPECT_GT(pts[1].delay_ns, pts[0].delay_ns);
}

TEST(Explore, InfeasibleClockReportedNotThrown) {
  std::vector<ExploreConfig> grid = {{"too-fast", 700, 16, 0}};
  const auto pts = explore([] { return workloads::make_idct8(); }, grid);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_FALSE(pts[0].feasible);
}

// ---- Table 4 style ablation through the flow ---------------------------------------------

TEST(Ablation, DisablingMoveSccCostsRecoveryArea) {
  // A tight pipelined configuration where the SCC must move to meet
  // timing; with the action disabled the flow accepts negative slack and
  // pays recovery area (the paper's Table 4 mechanism).
  FlowOptions good;
  good.pipeline_ii = 1;
  auto r_good = run_flow(example1_workload(), good);
  ASSERT_TRUE(r_good.success) << r_good.failure_reason;
  EXPECT_GE(r_good.sched.schedule.worst_slack_ps, 0);

  FlowOptions bad = good;
  bad.enable_move_scc = false;
  auto r_bad = run_flow(example1_workload(), bad);
  ASSERT_TRUE(r_bad.success) << r_bad.failure_reason;
  EXPECT_LT(r_bad.sched.schedule.worst_slack_ps, 0);
  EXPECT_GT(r_bad.area.timing_recovery, 0);
  EXPECT_GT(r_bad.area.total(), r_good.area.total() * 0.95);
}

}  // namespace
}  // namespace hls::core
