// Unit tests for the shared sched::BindingEngine (binder.hpp): the
// refusal → restraint emission paths are exercised directly against a
// recording Host — a forbidden-table hit, a write-port conflict, a
// chaining overflow over the clock period — plus the commit/release
// callback contract and the volume-cap fast-forward arithmetic
// (provable_resource_overflow / states_for_resources). Both scheduler
// backends reach these paths only through the engine, so pinning them
// here pins the restraint vocabulary for both at once.
#include <gtest/gtest.h>

#include "frontend/builder.hpp"
#include "pipeline/straighten.hpp"
#include "sched/binder.hpp"
#include "sched/driver.hpp"
#include "tech/library.hpp"
#include "timing/engine.hpp"
#include "workloads/workloads.hpp"

namespace hls::sched {
namespace {

using frontend::Builder;
using ir::int_ty;
using ir::OpId;
using tech::FuClass;

OpId find_op(const ir::Module& m, std::string_view name) {
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).name == name) return id;
  }
  ADD_FAILURE() << "op not found: " << name;
  return ir::kNoOp;
}

/// Captures every engine callback so tests can assert the commit/release
/// contract without a solver loop in the way.
struct RecordingHost final : public BindingEngine::Host {
  struct Commit {
    OpId id;
    int pool;
    int instance;
    int step;
    int lat;
    double arrival;
  };
  std::vector<Commit> commits;
  std::vector<std::pair<OpId, int>> released;  ///< (user, avail_step)

  void on_commit(OpId id, int pool, int inst, int e, int lat,
                 double arrival) override {
    commits.push_back({id, pool, inst, e, lat, arrival});
  }
  void on_dep_satisfied(OpId user, int avail_step) override {
    released.emplace_back(user, avail_step);
  }
};

struct Fixture {
  ir::Module module;
  Problem problem;
};

/// x = read(a); m1 = x * 3 ("mul_a"); m2 = m1 * 5 ("mul_b"); write(m2).
Fixture make_mul_chain() {
  Builder b("mulchain");
  auto in = b.in("a", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  auto m1 = b.mul(x, b.c(3), "mul_a");
  auto m2 = b.mul(m1, b.c(5), "mul_b");
  b.write(out, m2);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  Fixture f;
  f.module = b.finish();
  const auto region = ir::linearize(f.module.thread.tree, loop);
  f.problem = build_problem(f.module.thread.dfg, region, {1, 8},
                            tech::artisan90(), 1600, PipelineConfig{},
                            f.module.ports.size(), false, true);
  return f;
}

int pool_of_class(const Problem& p, FuClass cls) {
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    if (p.resources.pools[i].cls == cls) return static_cast<int>(i);
  }
  return -1;
}

// ---- Forbidden hit → kNoResource --------------------------------------------

TEST(BindingEngine, ForbiddenHitRefusesAndAggregatesToNoResource) {
  Fixture f = make_mul_chain();
  const OpId mul_a = find_op(f.module, "mul_a");
  const int mul_pool = pool_of_class(f.problem, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  ASSERT_EQ(f.problem.resources.pools[static_cast<std::size_t>(mul_pool)]
                .count,
            1);
  f.problem.forbidden.insert({mul_a, mul_pool, 0});

  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  for (OpId id : f.problem.ops) {
    if (f.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
      ASSERT_TRUE(binder.try_bind(id, 0));
    }
  }
  EXPECT_FALSE(binder.try_bind(mul_a, 0));
  EXPECT_FALSE(binder.scheduled(mul_a));

  binder.fatal(mul_a, 0);
  EXPECT_TRUE(binder.op_failed(mul_a));
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kNoResource);
  EXPECT_EQ(r.op, mul_a);
  EXPECT_EQ(r.step, 0);
  EXPECT_EQ(r.pool, mul_pool);
  EXPECT_EQ(r.weight, 1.0);  // one forbidden instance counted as busy
}

// ---- Write-port conflict → kNoResource with no pool -------------------------

TEST(BindingEngine, WritePortConflictRefusesSecondWriteInSameStep) {
  Builder b("portconflict");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  b.write(out, x);
  b.write(out, b.add(x, b.c(1), "the_add"));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  Problem p = build_problem(m.thread.dfg, region, {1, 8}, tech::artisan90(),
                            1600, PipelineConfig{}, m.ports.size(), false,
                            true);
  const DependenceGraph dg = build_dependence_graph(p);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(p, dg, eng, host);

  std::vector<OpId> writes;
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).kind == ir::OpKind::kWrite) writes.push_back(id);
  }
  ASSERT_EQ(writes.size(), 2u);

  // Producers first (the engine asserts operands are placed).
  for (OpId id : p.ops) {
    if (m.thread.dfg.op(id).kind == ir::OpKind::kRead ||
        id == find_op(m, "the_add")) {
      ASSERT_TRUE(binder.try_bind(id, 0)) << "op %" << id;
    }
  }
  ASSERT_TRUE(binder.try_bind(writes[0], 0));
  // Same port, same step, not mutually exclusive: refused.
  EXPECT_FALSE(binder.try_bind(writes[1], 0));

  binder.fatal(writes[1], 0);
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kNoResource);
  EXPECT_EQ(r.op, writes[1]);
  EXPECT_EQ(r.pool, -1);  // no function unit involved: the port is the
                          // contended resource
}

// ---- Chaining overflow → kNegativeSlack -------------------------------------

TEST(BindingEngine, ChainedMultiplierOverflowEmitsNegativeSlack) {
  Fixture f = make_mul_chain();
  const int mul_pool = pool_of_class(f.problem, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  // Unshare the pool (what an expert AddResource would do) so the second
  // multiply reaches the timing verdict instead of the busy refusal.
  f.problem.resources.pools[static_cast<std::size_t>(mul_pool)].count = 2;

  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  const OpId mul_a = find_op(f.module, "mul_a");
  const OpId mul_b = find_op(f.module, "mul_b");
  for (OpId id : f.problem.ops) {
    if (f.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
      ASSERT_TRUE(binder.try_bind(id, 0));
    }
  }
  ASSERT_TRUE(binder.try_bind(mul_a, 0));
  // Two chained 32-bit multiplies cannot fit one 1600 ps cycle: instance
  // 0 refuses busy (mul_a holds it), instance 1 fails the slack verdict.
  EXPECT_FALSE(binder.try_bind(mul_b, 0));

  binder.fatal(mul_b, 0);
  // Mixed-cause aggregation: one kNoResource for the busy instance, one
  // kNegativeSlack carrying the least-negative slack seen.
  ASSERT_EQ(binder.num_restraints(), 2u);
  const Restraint& busy = binder.restraints()[0];
  EXPECT_EQ(busy.kind, RestraintKind::kNoResource);
  EXPECT_EQ(busy.op, mul_b);
  EXPECT_EQ(busy.weight, 1.0);
  const Restraint& slack = binder.restraints()[1];
  EXPECT_EQ(slack.kind, RestraintKind::kNegativeSlack);
  EXPECT_EQ(slack.op, mul_b);
  EXPECT_EQ(slack.pool, mul_pool);
  EXPECT_LT(slack.slack_ps, 0);
}

// ---- Commit/release callback contract ---------------------------------------

TEST(BindingEngine, CommitReleasesConsumersAtChainingAwareStep) {
  Fixture chained = make_mul_chain();
  const OpId mul_a = find_op(chained.module, "mul_a");
  const OpId mul_b = find_op(chained.module, "mul_b");
  {
    const DependenceGraph dg = build_dependence_graph(chained.problem);
    timing::TimingEngine eng(tech::artisan90(), 1600);
    RecordingHost host;
    BindingEngine binder(chained.problem, dg, eng, host);
    for (OpId id : chained.problem.ops) {
      if (chained.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
        ASSERT_TRUE(binder.try_bind(id, 0));
      }
    }
    host.released.clear();
    host.commits.clear();
    ASSERT_TRUE(binder.try_bind(mul_a, 0));
    ASSERT_EQ(host.commits.size(), 1u);
    EXPECT_EQ(host.commits[0].id, mul_a);
    EXPECT_EQ(host.commits[0].step, 0);
    // Chaining enabled: the consumer may start in the commit step itself.
    ASSERT_EQ(host.released.size(), 1u);
    EXPECT_EQ(host.released[0], (std::pair<OpId, int>{mul_b, 0}));
  }
  // Chaining disabled and the multiplier's arrival is not register-like:
  // the consumer is released one step later.
  Fixture registered = make_mul_chain();
  registered.problem.enable_chaining = false;
  {
    const DependenceGraph dg = build_dependence_graph(registered.problem);
    timing::TimingEngine eng(tech::artisan90(), 1600);
    RecordingHost host;
    BindingEngine binder(registered.problem, dg, eng, host);
    const OpId a2 = find_op(registered.module, "mul_a");
    const OpId b2 = find_op(registered.module, "mul_b");
    for (OpId id : registered.problem.ops) {
      if (registered.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
        ASSERT_TRUE(binder.try_bind(id, 0));
      }
    }
    host.released.clear();
    ASSERT_TRUE(binder.try_bind(a2, 0));
    ASSERT_EQ(host.released.size(), 1u);
    EXPECT_EQ(host.released[0], (std::pair<OpId, int>{b2, 1}));
  }
}

// ---- Volume-cap fast-forward arithmetic -------------------------------------

TEST(BindingEngine, VolumeCapOverflowAndStateTargetArithmetic) {
  Builder b("volume");
  auto in = b.in("a", int_ty(32));
  auto in2 = b.in("bb", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  auto y = b.read(in2);
  // Six independent multiplies: far more members than one instance can
  // host in the single starting state.
  frontend::Val acc = b.mul(x, y);
  for (int i = 0; i < 5; ++i) acc = b.bxor(acc, b.mul(x, y));
  b.write(out, acc);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 12);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  Problem p = build_problem(m.thread.dfg, region, {1, 12}, tech::artisan90(),
                            1600, PipelineConfig{}, m.ports.size(), false,
                            true);
  const int mul_pool = pool_of_class(p, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  const auto& pool = p.resources.pools[static_cast<std::size_t>(mul_pool)];
  ASSERT_EQ(p.pool_member_counts[static_cast<std::size_t>(mul_pool)], 6);

  // At num_steps starting states, each instance hosts one op per state.
  const int mul_overflow = 6 - pool.count * p.num_steps;
  ASSERT_GT(mul_overflow, 0) << "fixture no longer overflows";
  // Other pools (xor) may or may not overflow; the total is at least the
  // multiplier shortfall and exactly the per-pool sum.
  int expected = 0;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    expected += std::max(
        0, p.pool_member_counts[i] - p.resources.pools[i].count * p.num_steps);
  }
  EXPECT_EQ(provable_resource_overflow(p), expected);
  EXPECT_GE(provable_resource_overflow(p), mul_overflow);

  // The fast-forward target gives every pool enough states for its
  // members: at least ceil(6 / count) for the multipliers.
  const int target = states_for_resources(p);
  EXPECT_GE(target, (6 + pool.count - 1) / pool.count);
  // And it is exactly the max over pools of that expression.
  int expected_target = p.num_steps;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    const int count = p.resources.pools[i].count;
    if (count <= 0 || p.pool_member_counts[i] == 0) continue;
    expected_target = std::max(
        expected_target, (p.pool_member_counts[i] + count - 1) / count);
  }
  EXPECT_EQ(target, expected_target);

  // After the states the detector asks for, the overflow is gone — the
  // driver's aggregate fast-forward converges instead of looping.
  p.num_steps = target;
  EXPECT_EQ(provable_resource_overflow(p), 0);
}

// ---- Memory pools: bank conflicts and port pressure -------------------------

/// Four reads over a banked array (interleaved: elements {0,2} in bank 0,
/// {1,3} in bank 1) feeding one summed output.
struct MemFixture {
  ir::Module module;
  Problem problem;
  mem::MemorySpec spec;
};

MemFixture make_banked_reads(int banks, int rw_ports) {
  Builder b("banked");
  std::vector<frontend::PortHandle> ins;
  for (int i = 0; i < 4; ++i) {
    ins.push_back(b.in("a" + std::to_string(i), int_ty(32)));
  }
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  frontend::Val acc = b.read(ins[0]);
  for (int i = 1; i < 4; ++i) acc = b.add(acc, b.read(ins[1ull * i]));
  b.write(out, acc);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  MemFixture f;
  f.module = b.finish();
  mem::ArraySpec a;
  a.name = "a";
  a.first_port = 0;
  a.num_elems = 4;
  a.banks = banks;
  a.bank_rw_ports = rw_ports;
  a.max_banks = 4;
  a.max_ports_per_bank = 4;
  f.spec.arrays.push_back(a);
  const auto region = ir::linearize(f.module.thread.tree, loop);
  f.problem = build_problem(f.module.thread.dfg, region, {1, 8},
                            tech::artisan90(), 1600, PipelineConfig{},
                            f.module.ports.size(), false, true, &f.spec);
  return f;
}

// Two reads of the SAME bank in one step while the other bank's port sits
// idle: the busy refusal must classify as kBankConflict (re-placement is
// the lever), not generic port pressure.
TEST(BindingEngine, SameBankCollisionWithIdleBankAggregatesToBankConflict) {
  MemFixture f = make_banked_reads(/*banks=*/2, /*rw_ports=*/1);
  const int mem_pool = pool_of_class(f.problem, FuClass::kMemPort);
  ASSERT_GE(mem_pool, 0);
  const auto& pool =
      f.problem.resources.pools[static_cast<std::size_t>(mem_pool)];
  EXPECT_TRUE(pool.is_memory);
  EXPECT_EQ(pool.count, 2);  // 2 banks x 1 RW port, bank-major

  const OpId read0 = find_op(f.module, "a0_read");
  const OpId read2 = find_op(f.module, "a2_read");
  ASSERT_EQ(f.problem.mem_bank(read0), 0);
  ASSERT_EQ(f.problem.mem_bank(read2), 0);  // interleaved: elem 2 -> bank 0

  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  ASSERT_TRUE(binder.try_bind(read0, 0));
  EXPECT_EQ(host.commits.back().instance, 0);  // bank 0's only port
  // Same bank, port held by read0; bank 1's instance must NOT be used.
  EXPECT_FALSE(binder.try_bind(read2, 0));
  EXPECT_FALSE(binder.scheduled(read2));

  binder.fatal(read2, 0);
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kBankConflict);
  EXPECT_EQ(r.op, read2);
  EXPECT_EQ(r.pool, mem_pool);
  EXPECT_EQ(r.weight, 1.0);  // one busy compatible port in my bank
}

// Single bank, single port: a collision has no idle bank to point at, so
// it must classify as kPortPressure (more ports is the only lever).
TEST(BindingEngine, SingleBankCollisionAggregatesToPortPressure) {
  MemFixture f = make_banked_reads(/*banks=*/1, /*rw_ports=*/1);
  const int mem_pool = pool_of_class(f.problem, FuClass::kMemPort);
  ASSERT_GE(mem_pool, 0);

  const OpId read0 = find_op(f.module, "a0_read");
  const OpId read1 = find_op(f.module, "a1_read");
  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  ASSERT_TRUE(binder.try_bind(read0, 0));
  EXPECT_FALSE(binder.try_bind(read1, 0));

  binder.fatal(read1, 0);
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kPortPressure);
  EXPECT_EQ(r.op, read1);
  EXPECT_EQ(r.pool, mem_pool);
}

// ---- Memory-free designs stay bit-exact with the machinery in place ---------

// A null spec and an empty spec must produce byte-identical scheduler
// results (placements, arrivals, restraint traces) on BOTH backends: the
// memory machinery may not perturb memory-free designs at all.
TEST(BindingEngine, EmptyMemorySpecIsByteIdenticalToNullOnBothBackends) {
  auto fingerprint = [](const SchedulerResult& r) {
    std::string s = r.success ? "ok" : "fail:" + r.failure_reason;
    if (r.success) {
      for (std::size_t id = 0; id < r.schedule.placement.size(); ++id) {
        const OpPlacement& pl = r.schedule.placement[id];
        if (!pl.scheduled) continue;
        s += " %" + std::to_string(id) + "@" + std::to_string(pl.step) + ":" +
             std::to_string(pl.pool) + "." + std::to_string(pl.instance);
      }
    }
    for (const PassRecord& rec : r.history) {
      for (const std::string& restraint : rec.restraints) s += "|" + restraint;
      s += ">" + rec.action;
    }
    return s;
  };
  const mem::MemorySpec empty_spec;
  for (const char* name : {"ewf", "crc32"}) {
    for (const auto backend : {BackendKind::kList, BackendKind::kSdc}) {
      workloads::Workload w = name == std::string("ewf")
                                  ? workloads::make_ewf()
                                  : workloads::make_crc32();
      pipeline::straighten(w.module);
      const auto region = ir::linearize(w.module.thread.tree, w.loop);
      const auto latency = w.module.thread.tree.stmt(w.loop).latency;
      SchedulerOptions null_opts;
      null_opts.backend = backend;
      SchedulerOptions empty_opts = null_opts;
      empty_opts.memory = &empty_spec;
      const auto r_null = schedule_region(w.module.thread.dfg, region, latency,
                                          w.module.ports.size(), null_opts);
      const auto r_empty = schedule_region(w.module.thread.dfg, region,
                                           latency, w.module.ports.size(),
                                           empty_opts);
      EXPECT_EQ(fingerprint(r_null), fingerprint(r_empty))
          << name << " backend=" << backend_name(backend);
      EXPECT_EQ(r_empty.memory_restraints, 0) << name;
    }
  }
}

}  // namespace
}  // namespace hls::sched
