// Unit tests for the shared sched::BindingEngine (binder.hpp): the
// refusal → restraint emission paths are exercised directly against a
// recording Host — a forbidden-table hit, a write-port conflict, a
// chaining overflow over the clock period — plus the commit/release
// callback contract and the volume-cap fast-forward arithmetic
// (provable_resource_overflow / states_for_resources). Both scheduler
// backends reach these paths only through the engine, so pinning them
// here pins the restraint vocabulary for both at once.
#include <gtest/gtest.h>

#include "frontend/builder.hpp"
#include "sched/binder.hpp"
#include "tech/library.hpp"
#include "timing/engine.hpp"

namespace hls::sched {
namespace {

using frontend::Builder;
using ir::int_ty;
using ir::OpId;
using tech::FuClass;

OpId find_op(const ir::Module& m, std::string_view name) {
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).name == name) return id;
  }
  ADD_FAILURE() << "op not found: " << name;
  return ir::kNoOp;
}

/// Captures every engine callback so tests can assert the commit/release
/// contract without a solver loop in the way.
struct RecordingHost final : public BindingEngine::Host {
  struct Commit {
    OpId id;
    int pool;
    int instance;
    int step;
    int lat;
    double arrival;
  };
  std::vector<Commit> commits;
  std::vector<std::pair<OpId, int>> released;  ///< (user, avail_step)

  void on_commit(OpId id, int pool, int inst, int e, int lat,
                 double arrival) override {
    commits.push_back({id, pool, inst, e, lat, arrival});
  }
  void on_dep_satisfied(OpId user, int avail_step) override {
    released.emplace_back(user, avail_step);
  }
};

struct Fixture {
  ir::Module module;
  Problem problem;
};

/// x = read(a); m1 = x * 3 ("mul_a"); m2 = m1 * 5 ("mul_b"); write(m2).
Fixture make_mul_chain() {
  Builder b("mulchain");
  auto in = b.in("a", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  auto m1 = b.mul(x, b.c(3), "mul_a");
  auto m2 = b.mul(m1, b.c(5), "mul_b");
  b.write(out, m2);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  Fixture f;
  f.module = b.finish();
  const auto region = ir::linearize(f.module.thread.tree, loop);
  f.problem = build_problem(f.module.thread.dfg, region, {1, 8},
                            tech::artisan90(), 1600, PipelineConfig{},
                            f.module.ports.size(), false, true);
  return f;
}

int pool_of_class(const Problem& p, FuClass cls) {
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    if (p.resources.pools[i].cls == cls) return static_cast<int>(i);
  }
  return -1;
}

// ---- Forbidden hit → kNoResource --------------------------------------------

TEST(BindingEngine, ForbiddenHitRefusesAndAggregatesToNoResource) {
  Fixture f = make_mul_chain();
  const OpId mul_a = find_op(f.module, "mul_a");
  const int mul_pool = pool_of_class(f.problem, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  ASSERT_EQ(f.problem.resources.pools[static_cast<std::size_t>(mul_pool)]
                .count,
            1);
  f.problem.forbidden.insert({mul_a, mul_pool, 0});

  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  for (OpId id : f.problem.ops) {
    if (f.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
      ASSERT_TRUE(binder.try_bind(id, 0));
    }
  }
  EXPECT_FALSE(binder.try_bind(mul_a, 0));
  EXPECT_FALSE(binder.scheduled(mul_a));

  binder.fatal(mul_a, 0);
  EXPECT_TRUE(binder.op_failed(mul_a));
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kNoResource);
  EXPECT_EQ(r.op, mul_a);
  EXPECT_EQ(r.step, 0);
  EXPECT_EQ(r.pool, mul_pool);
  EXPECT_EQ(r.weight, 1.0);  // one forbidden instance counted as busy
}

// ---- Write-port conflict → kNoResource with no pool -------------------------

TEST(BindingEngine, WritePortConflictRefusesSecondWriteInSameStep) {
  Builder b("portconflict");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  b.write(out, x);
  b.write(out, b.add(x, b.c(1), "the_add"));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  Problem p = build_problem(m.thread.dfg, region, {1, 8}, tech::artisan90(),
                            1600, PipelineConfig{}, m.ports.size(), false,
                            true);
  const DependenceGraph dg = build_dependence_graph(p);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(p, dg, eng, host);

  std::vector<OpId> writes;
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).kind == ir::OpKind::kWrite) writes.push_back(id);
  }
  ASSERT_EQ(writes.size(), 2u);

  // Producers first (the engine asserts operands are placed).
  for (OpId id : p.ops) {
    if (m.thread.dfg.op(id).kind == ir::OpKind::kRead ||
        id == find_op(m, "the_add")) {
      ASSERT_TRUE(binder.try_bind(id, 0)) << "op %" << id;
    }
  }
  ASSERT_TRUE(binder.try_bind(writes[0], 0));
  // Same port, same step, not mutually exclusive: refused.
  EXPECT_FALSE(binder.try_bind(writes[1], 0));

  binder.fatal(writes[1], 0);
  ASSERT_EQ(binder.num_restraints(), 1u);
  const Restraint& r = binder.restraints().front();
  EXPECT_EQ(r.kind, RestraintKind::kNoResource);
  EXPECT_EQ(r.op, writes[1]);
  EXPECT_EQ(r.pool, -1);  // no function unit involved: the port is the
                          // contended resource
}

// ---- Chaining overflow → kNegativeSlack -------------------------------------

TEST(BindingEngine, ChainedMultiplierOverflowEmitsNegativeSlack) {
  Fixture f = make_mul_chain();
  const int mul_pool = pool_of_class(f.problem, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  // Unshare the pool (what an expert AddResource would do) so the second
  // multiply reaches the timing verdict instead of the busy refusal.
  f.problem.resources.pools[static_cast<std::size_t>(mul_pool)].count = 2;

  const DependenceGraph dg = build_dependence_graph(f.problem);
  timing::TimingEngine eng(tech::artisan90(), 1600);
  RecordingHost host;
  BindingEngine binder(f.problem, dg, eng, host);

  const OpId mul_a = find_op(f.module, "mul_a");
  const OpId mul_b = find_op(f.module, "mul_b");
  for (OpId id : f.problem.ops) {
    if (f.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
      ASSERT_TRUE(binder.try_bind(id, 0));
    }
  }
  ASSERT_TRUE(binder.try_bind(mul_a, 0));
  // Two chained 32-bit multiplies cannot fit one 1600 ps cycle: instance
  // 0 refuses busy (mul_a holds it), instance 1 fails the slack verdict.
  EXPECT_FALSE(binder.try_bind(mul_b, 0));

  binder.fatal(mul_b, 0);
  // Mixed-cause aggregation: one kNoResource for the busy instance, one
  // kNegativeSlack carrying the least-negative slack seen.
  ASSERT_EQ(binder.num_restraints(), 2u);
  const Restraint& busy = binder.restraints()[0];
  EXPECT_EQ(busy.kind, RestraintKind::kNoResource);
  EXPECT_EQ(busy.op, mul_b);
  EXPECT_EQ(busy.weight, 1.0);
  const Restraint& slack = binder.restraints()[1];
  EXPECT_EQ(slack.kind, RestraintKind::kNegativeSlack);
  EXPECT_EQ(slack.op, mul_b);
  EXPECT_EQ(slack.pool, mul_pool);
  EXPECT_LT(slack.slack_ps, 0);
}

// ---- Commit/release callback contract ---------------------------------------

TEST(BindingEngine, CommitReleasesConsumersAtChainingAwareStep) {
  Fixture chained = make_mul_chain();
  const OpId mul_a = find_op(chained.module, "mul_a");
  const OpId mul_b = find_op(chained.module, "mul_b");
  {
    const DependenceGraph dg = build_dependence_graph(chained.problem);
    timing::TimingEngine eng(tech::artisan90(), 1600);
    RecordingHost host;
    BindingEngine binder(chained.problem, dg, eng, host);
    for (OpId id : chained.problem.ops) {
      if (chained.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
        ASSERT_TRUE(binder.try_bind(id, 0));
      }
    }
    host.released.clear();
    host.commits.clear();
    ASSERT_TRUE(binder.try_bind(mul_a, 0));
    ASSERT_EQ(host.commits.size(), 1u);
    EXPECT_EQ(host.commits[0].id, mul_a);
    EXPECT_EQ(host.commits[0].step, 0);
    // Chaining enabled: the consumer may start in the commit step itself.
    ASSERT_EQ(host.released.size(), 1u);
    EXPECT_EQ(host.released[0], (std::pair<OpId, int>{mul_b, 0}));
  }
  // Chaining disabled and the multiplier's arrival is not register-like:
  // the consumer is released one step later.
  Fixture registered = make_mul_chain();
  registered.problem.enable_chaining = false;
  {
    const DependenceGraph dg = build_dependence_graph(registered.problem);
    timing::TimingEngine eng(tech::artisan90(), 1600);
    RecordingHost host;
    BindingEngine binder(registered.problem, dg, eng, host);
    const OpId a2 = find_op(registered.module, "mul_a");
    const OpId b2 = find_op(registered.module, "mul_b");
    for (OpId id : registered.problem.ops) {
      if (registered.module.thread.dfg.op(id).kind == ir::OpKind::kRead) {
        ASSERT_TRUE(binder.try_bind(id, 0));
      }
    }
    host.released.clear();
    ASSERT_TRUE(binder.try_bind(a2, 0));
    ASSERT_EQ(host.released.size(), 1u);
    EXPECT_EQ(host.released[0], (std::pair<OpId, int>{b2, 1}));
  }
}

// ---- Volume-cap fast-forward arithmetic -------------------------------------

TEST(BindingEngine, VolumeCapOverflowAndStateTargetArithmetic) {
  Builder b("volume");
  auto in = b.in("a", int_ty(32));
  auto in2 = b.in("bb", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  auto y = b.read(in2);
  // Six independent multiplies: far more members than one instance can
  // host in the single starting state.
  frontend::Val acc = b.mul(x, y);
  for (int i = 0; i < 5; ++i) acc = b.bxor(acc, b.mul(x, y));
  b.write(out, acc);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 12);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  Problem p = build_problem(m.thread.dfg, region, {1, 12}, tech::artisan90(),
                            1600, PipelineConfig{}, m.ports.size(), false,
                            true);
  const int mul_pool = pool_of_class(p, FuClass::kMultiplier);
  ASSERT_GE(mul_pool, 0);
  const auto& pool = p.resources.pools[static_cast<std::size_t>(mul_pool)];
  ASSERT_EQ(p.pool_member_counts[static_cast<std::size_t>(mul_pool)], 6);

  // At num_steps starting states, each instance hosts one op per state.
  const int mul_overflow = 6 - pool.count * p.num_steps;
  ASSERT_GT(mul_overflow, 0) << "fixture no longer overflows";
  // Other pools (xor) may or may not overflow; the total is at least the
  // multiplier shortfall and exactly the per-pool sum.
  int expected = 0;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    expected += std::max(
        0, p.pool_member_counts[i] - p.resources.pools[i].count * p.num_steps);
  }
  EXPECT_EQ(provable_resource_overflow(p), expected);
  EXPECT_GE(provable_resource_overflow(p), mul_overflow);

  // The fast-forward target gives every pool enough states for its
  // members: at least ceil(6 / count) for the multipliers.
  const int target = states_for_resources(p);
  EXPECT_GE(target, (6 + pool.count - 1) / pool.count);
  // And it is exactly the max over pools of that expression.
  int expected_target = p.num_steps;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    const int count = p.resources.pools[i].count;
    if (count <= 0 || p.pool_member_counts[i] == 0) continue;
    expected_target = std::max(
        expected_target, (p.pool_member_counts[i] + count - 1) / count);
  }
  EXPECT_EQ(target, expected_target);

  // After the states the detector asks for, the overflow is gone — the
  // driver's aggregate fast-forward converges instead of looping.
  p.num_steps = target;
  EXPECT_EQ(provable_resource_overflow(p), 0);
}

}  // namespace
}  // namespace hls::sched
