// Tests for src/alloc/: width-aware resource clustering, timing-aware
// ASAP/ALAP life spans, and initial instance estimation (paper
// Section IV.A), including the Example 1 / Example 3 pipelined counts.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "alloc/estimate.hpp"
#include "alloc/lifespan.hpp"
#include "frontend/builder.hpp"
#include "opt/pass.hpp"
#include "tech/library.hpp"
#include "workloads/example1.hpp"

namespace hls::alloc {
namespace {

using frontend::Builder;
using ir::int_ty;
using ir::OpId;
using tech::artisan90;
using tech::FuClass;

struct Example1Fixture {
  ir::Module module;
  ir::StmtId loop;
  ir::LinearRegion region;

  explicit Example1Fixture(bool predicate = true) {
    auto ex = workloads::make_example1();
    module = std::move(ex.module);
    loop = ex.loop;
    if (predicate) {
      auto p = opt::make_predicate_conversion();
      p->run(module);
    }
    region = ir::linearize(module.thread.tree, loop);
  }
};

OpId find_op(const ir::Module& m, std::string_view name) {
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).name == name) return id;
  }
  ADD_FAILURE() << "op not found: " << name;
  return ir::kNoOp;
}

// ---- Lifespans -----------------------------------------------------------------

TEST(Lifespan, Example1At3StatesMatchesHandAnalysis) {
  Example1Fixture f;
  const auto ls = compute_lifespans(f.module.thread.dfg, f.region, 3,
                                    artisan90(), 1600, /*anchor_io=*/false);
  ASSERT_TRUE(ls.feasible);
  const auto& dfg = f.module.thread.dfg;
  const auto span = [&](std::string_view name) {
    return ls.spans[find_op(f.module, name)];
  };
  (void)dfg;
  // mul1 must go first (mul2 and mul3 each need their own later cycle).
  EXPECT_EQ(span("mul1_op").asap, 0);
  EXPECT_EQ(span("mul1_op").alap, 0);
  // mul2 depends on add (chained after mul1): exactly step 1.
  EXPECT_EQ(span("mul2_op").asap, 1);
  EXPECT_EQ(span("mul2_op").alap, 1);
  // mul3 consumes the MUX: step 2 only.
  EXPECT_EQ(span("mul3_op").asap, 2);
  EXPECT_EQ(span("mul3_op").alap, 2);
  // neq is fully mobile.
  EXPECT_EQ(span("neq_op").asap, 0);
  EXPECT_EQ(span("neq_op").alap, 2);
  // add chains after mul1 in step 0, but must leave a cycle for mul2.
  EXPECT_EQ(span("add_op").asap, 0);
  EXPECT_EQ(span("add_op").alap, 1);
}

TEST(Lifespan, InfeasibleWhenTooFewStates) {
  Example1Fixture f;
  const auto ls = compute_lifespans(f.module.thread.dfg, f.region, 1,
                                    artisan90(), 1600, false);
  EXPECT_FALSE(ls.feasible);
  EXPECT_NE(ls.first_infeasible, ir::kNoOp);
}

TEST(Lifespan, MoreStatesIncreaseMobility) {
  Example1Fixture f;
  const auto l3 = compute_lifespans(f.module.thread.dfg, f.region, 3,
                                    artisan90(), 1600, false);
  const auto l5 = compute_lifespans(f.module.thread.dfg, f.region, 5,
                                    artisan90(), 1600, false);
  const OpId neq = find_op(f.module, "neq_op");
  EXPECT_GT(l5.spans[neq].mobility(), l3.spans[neq].mobility());
}

TEST(Lifespan, FasterClockForcesMoreSteps) {
  // At Tclk=1100 the chain mul1->add no longer fits one cycle.
  Example1Fixture f;
  const auto ls = compute_lifespans(f.module.thread.dfg, f.region, 6,
                                    artisan90(), 1100, false);
  ASSERT_TRUE(ls.feasible);
  EXPECT_GE(ls.spans[find_op(f.module, "add_op")].asap, 1);
}

TEST(Lifespan, ClockTooSlowForMultiplierThrows) {
  Example1Fixture f;
  EXPECT_THROW(compute_lifespans(f.module.thread.dfg, f.region, 8,
                                 artisan90(), 900, false),
               InternalError);
}

TEST(Lifespan, AnchoredIoPinsReadsToHomeStep) {
  Builder b("anchored");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  b.read(in, "r0");
  b.wait();
  auto x = b.read(in, "r1");
  b.write(out, x);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, m.thread.tree.root());
  const auto ls = compute_lifespans(m.thread.dfg, region, 2, artisan90(),
                                    1600, /*anchor_io=*/true);
  const OpId r1 = find_op(m, "r1");
  EXPECT_EQ(ls.spans[r1].asap, 1);
  EXPECT_EQ(ls.spans[r1].alap, 1);
}

// ---- Clustering -----------------------------------------------------------------

TEST(Cluster, Example1PoolsMatchTable1) {
  Example1Fixture f;
  const auto ops = f.region.all_ops();
  const auto set = cluster_resources(f.module.thread.dfg, ops, artisan90());
  // mul(x3), add, gt, neq, mux -> one pool each (all 32-bit); the pred_not
  // from predication adds a 1-bit logic pool.
  int muls = 0;
  for (const auto& p : set.pools) {
    if (p.cls == FuClass::kMultiplier) {
      ++muls;
      EXPECT_EQ(p.width, 32);
    }
  }
  EXPECT_EQ(muls, 1);
  const auto members = set.members();
  for (std::size_t i = 0; i < set.pools.size(); ++i) {
    if (set.pools[i].cls == FuClass::kMultiplier) {
      EXPECT_EQ(members[i].size(), 3u);
    }
  }
}

TEST(Cluster, SimilarWidthsMergeVeryDifferentDoNot) {
  // 8x6 and 6x7 adders share one unit (paper's example); a 32-bit adder
  // does not join them.
  Builder b("widths");
  auto a1 = b.in("a1", int_ty(8));
  auto b1 = b.in("b1", int_ty(5));
  auto a2 = b.in("a2", int_ty(6));
  auto b2 = b.in("b2", int_ty(7));
  auto big = b.in("big", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto s1 = b.add(b.read(a1), b.read(b1));
  auto s2 = b.add(b.read(a2), b.read(b2));
  auto s3 = b.add(b.read(big), b.read(big));
  b.write(out, b.add(b.sext(s1, 32), b.add(b.sext(s2, 32), s3)));
  auto m = b.finish();
  (void)s1; (void)s2; (void)s3;
  const auto region = ir::linearize(m.thread.tree, m.thread.tree.root());
  const auto set = cluster_resources(m.thread.dfg, region.all_ops(),
                                     artisan90());
  int adder_pools = 0;
  for (const auto& p : set.pools) {
    if (p.cls == FuClass::kAdder) ++adder_pools;
  }
  // Small adders (widths 8 and 7) cluster; 32-bit ones form another pool.
  EXPECT_EQ(adder_pools, 2);
}

// ---- Initial resource estimation ---------------------------------------------------

TEST(Estimate, Example1SequentialNeedsOneMultiplier) {
  // Paper: "3 multiplies are to be scheduled in at most 3 states, which
  // suggests that a single multiplier suffices."
  Example1Fixture f;
  const auto& dfg = f.module.thread.dfg;
  const auto ls = compute_lifespans(dfg, f.region, 3, artisan90(), 1600,
                                    false);
  auto set = cluster_resources(dfg, f.region.all_ops(), artisan90());
  set = estimate_initial_counts(dfg, std::move(set), ls, 3);
  for (const auto& p : set.pools) {
    if (p.cls == FuClass::kMultiplier) { EXPECT_EQ(p.count, 1); }
    if (p.cls == FuClass::kAdder) { EXPECT_EQ(p.count, 1); }
    if (p.cls == FuClass::kCompareOrd) { EXPECT_EQ(p.count, 1); }
  }
}

TEST(Estimate, Example1PipelinedII2NeedsTwoMultipliers) {
  // Paper Example 2: "Due to edge equivalence, resources should not be
  // shared in states s1 and s3, hence two mul resources must be created."
  Example1Fixture f;
  const auto& dfg = f.module.thread.dfg;
  const auto ls = compute_lifespans(dfg, f.region, 3, artisan90(), 1600,
                                    false);
  auto set = cluster_resources(dfg, f.region.all_ops(), artisan90());
  EstimateOptions opts;
  opts.pipeline_ii = 2;
  set = estimate_initial_counts(dfg, std::move(set), ls, 3, opts);
  for (const auto& p : set.pools) {
    if (p.cls == FuClass::kMultiplier) { EXPECT_EQ(p.count, 2); }
  }
}

TEST(Estimate, Example1PipelinedII1NeedsThreeMultipliers) {
  // Paper Example 3: II=1 makes all edges equivalent; 3 multipliers.
  Example1Fixture f;
  const auto& dfg = f.module.thread.dfg;
  const auto ls = compute_lifespans(dfg, f.region, 3, artisan90(), 1600,
                                    false);
  auto set = cluster_resources(dfg, f.region.all_ops(), artisan90());
  EstimateOptions opts;
  opts.pipeline_ii = 1;
  set = estimate_initial_counts(dfg, std::move(set), ls, 3, opts);
  for (const auto& p : set.pools) {
    if (p.cls == FuClass::kMultiplier) { EXPECT_EQ(p.count, 3); }
  }
}

TEST(Estimate, MutualExclusivityReducesDemand) {
  // Two multiplications in opposite branches of an if can share one unit
  // even in a single state.
  Builder b("mx");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto x = b.read(in);
  auto v = b.var("v", int_ty(32));
  b.begin_if(b.gt(x, b.c(0)));
  b.set(v, b.mul(x, b.c(3)));
  b.begin_else();
  b.set(v, b.mul(x, b.c(5)));
  b.end_if();
  b.write(out, b.get(v));
  auto m = b.finish();
  auto pred = opt::make_predicate_conversion();
  pred->run(m);
  const auto region = ir::linearize(m.thread.tree, m.thread.tree.root());
  // One state: both branch multiplications compete for the same step.
  const auto ls = compute_lifespans(m.thread.dfg, region, 1, artisan90(),
                                    1600, false);
  ASSERT_TRUE(ls.feasible);
  auto set = cluster_resources(m.thread.dfg, region.all_ops(), artisan90());

  auto with = estimate_initial_counts(m.thread.dfg, set, ls, 1);
  EstimateOptions no_excl;
  no_excl.use_mutual_exclusivity = false;
  auto without = estimate_initial_counts(m.thread.dfg, set, ls, 1, no_excl);
  int mul_with = 0;
  int mul_without = 0;
  for (const auto& p : with.pools) {
    if (p.cls == FuClass::kMultiplier) mul_with = p.count;
  }
  for (const auto& p : without.pools) {
    if (p.cls == FuClass::kMultiplier) mul_without = p.count;
  }
  EXPECT_EQ(mul_with, 1);
  EXPECT_EQ(mul_without, 2);
}

TEST(Estimate, MutuallyExclusivePredicate) {
  Example1Fixture f;  // predicated
  const auto& dfg = f.module.thread.dfg;
  // After predication, mul2 carries the gt predicate. Build a fake op with
  // the opposite polarity and check the exclusivity test.
  const OpId mul2 = find_op(f.module, "mul2_op");
  ASSERT_TRUE(dfg.op(mul2).has_pred());
  ir::Op other = dfg.op(mul2);
  other.pred_value = !other.pred_value;
  auto& mut = const_cast<ir::Dfg&>(dfg);
  const OpId o2 = mut.add(other);
  EXPECT_TRUE(mutually_exclusive(dfg, mul2, o2));
  EXPECT_FALSE(mutually_exclusive(dfg, mul2, mul2));
}

}  // namespace
}  // namespace hls::alloc
