// Serve determinism stress suite: the serve output stream must be a pure
// function of the submitted job SET and the server options — independent
// of submission order, worker thread count, and thread timing — with the
// caches cold, warm, and under mid-run eviction pressure.
//
// "Byte-identical" here is literal: the full concatenated line stream,
// including pass counts and seed_use fields, is compared as one string.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace hls::serve {
namespace {

// A mixed job set: repeated designs (session-cache and per-module
// exclusion pressure), tclk ladders (trace-cache neighbor seeding), a
// pipelined grid, and one job that fails to compile.
std::vector<JobRequest> job_set() {
  std::vector<JobRequest> jobs;
  auto grid = [](std::initializer_list<double> tclks, int latency, int ii) {
    std::vector<core::ExploreConfig> points;
    for (double tclk : tclks) {
      core::ExploreConfig cfg;
      cfg.curve = (ii > 0 ? "ii" + std::to_string(ii)
                          : "sequential-" + std::to_string(latency));
      cfg.tclk_ps = tclk;
      cfg.latency = latency;
      cfg.pipeline_ii = ii;
      points.push_back(cfg);
    }
    return points;
  };
  auto job = [&](std::int64_t id, const std::string& workload,
                 std::vector<core::ExploreConfig> points) {
    JobRequest j;
    j.id = id;
    j.workload = workload;
    j.points = std::move(points);
    jobs.push_back(std::move(j));
  };
  job(0, "arf", grid({1700, 1900, 2100}, 10, 0));
  job(1, "crc32", grid({1500, 1800}, 12, 0));
  job(2, "arf", grid({1700, 2100}, 10, 0));     // same module as job 0
  job(3, "conv3x3", grid({1600, 1900}, 9, 0));
  job(4, "arf", grid({1800, 2000}, 10, 4));     // pipelined grid
  job(5, "does-not-exist", grid({1600}, 10, 0));  // compile error path
  job(6, "fft8_stage", grid({1700, 1900}, 10, 0));
  // A work-unit budget that trips after the first pass: the exhaustion
  // point is itself part of the determinism contract (docs/FAULTS.md) —
  // the same [schedule/budget_exhausted] line at every thread count.
  {
    std::vector<core::ExploreConfig> points = grid({1600}, 16, 0);
    points.front().budget.max_commits = 50;
    job(7, "ewf", std::move(points));
  }
  return jobs;
}

std::string run_stream(const ServerOptions& options, unsigned shuffle_seed,
                       int drains = 1) {
  std::vector<JobRequest> jobs = job_set();
  if (shuffle_seed != 0) {
    std::mt19937 rng(shuffle_seed);
    std::shuffle(jobs.begin(), jobs.end(), rng);
  }
  Server server(options);
  std::string out;
  for (int d = 0; d < drains; ++d) {
    for (const JobRequest& job : jobs) {
      EXPECT_TRUE(server.submit(job)) << "job " << job.id;
    }
    server.drain([&](const std::string& line) {
      out += line;
      out += '\n';
    });
  }
  return out;
}

TEST(ServeDeterminism, ThreadCountDoesNotChangeTheStream) {
  ServerOptions serial;
  serial.threads = 1;
  serial.emit_stats = true;
  const std::string reference = run_stream(serial, 0);
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 4, 0 /* hardware_concurrency */}) {
    ServerOptions concurrent = serial;
    concurrent.threads = threads;
    EXPECT_EQ(reference, run_stream(concurrent, 0)) << "threads=" << threads;
  }
}

TEST(ServeDeterminism, ArrivalOrderDoesNotChangeTheStream) {
  ServerOptions options;
  options.threads = 4;
  options.emit_stats = true;
  const std::string reference = run_stream(options, 0);
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_EQ(reference, run_stream(options, seed)) << "shuffle seed " << seed;
  }
}

TEST(ServeDeterminism, HoldsAcrossBatchAndInflightSettings) {
  // Batch size and in-flight cap legitimately change the stream (they
  // change interleaving and cache timing) — but for EACH setting, serial
  // and concurrent must still agree.
  for (int batch : {1, 3, 0 /* whole job */}) {
    for (int inflight : {1, 2, 8}) {
      ServerOptions serial;
      serial.threads = 1;
      serial.micro_batch = batch;
      serial.max_inflight = inflight;
      ServerOptions concurrent = serial;
      concurrent.threads = 4;
      EXPECT_EQ(run_stream(serial, 0), run_stream(concurrent, 3))
          << "batch=" << batch << " inflight=" << inflight;
    }
  }
}

TEST(ServeDeterminism, HoldsUnderCacheEvictionPressure) {
  // Tiny caches force session eviction and trace-cache FIFO eviction
  // mid-run; determinism must survive both.
  ServerOptions serial;
  serial.threads = 1;
  serial.max_sessions = 1;
  serial.max_trace_entries = 2;
  serial.emit_stats = true;
  const std::string reference = run_stream(serial, 0);
  ServerOptions concurrent = serial;
  concurrent.threads = 4;
  EXPECT_EQ(reference, run_stream(concurrent, 2));
}

TEST(ServeDeterminism, WarmCachesStayDeterministic) {
  // Drain the same job set twice on one server: the second drain runs
  // against warm caches (exact-config replays). Serial and concurrent
  // servers must produce identical two-drain streams.
  ServerOptions serial;
  serial.threads = 1;
  serial.emit_stats = true;
  const std::string reference = run_stream(serial, 0, /*drains=*/2);
  ServerOptions concurrent = serial;
  concurrent.threads = 4;
  EXPECT_EQ(reference, run_stream(concurrent, 4, /*drains=*/2));
  // And the warm half genuinely replayed: the second drain's points all
  // carry seed_use "replay" except failures, and the per-job done lines
  // tally them.
  EXPECT_NE(reference.find("\"seed_use\":\"replay\""), std::string::npos);
  EXPECT_NE(reference.find("\"seed_replays\":"), std::string::npos);
  bool replay_tallied = false;
  for (std::size_t at = reference.find("\"seed_replays\":");
       at != std::string::npos;
       at = reference.find("\"seed_replays\":", at + 1)) {
    if (reference[at + std::string("\"seed_replays\":").size()] != '0') {
      replay_tallied = true;
    }
  }
  EXPECT_TRUE(replay_tallied);
}

TEST(ServeDeterminism, TraceCacheChangesPassCountsNotResults) {
  // Strip the fields a seed is allowed to change (passes, relaxations,
  // seed_use, and the per-job seed tallies on the done line) and the
  // stats line; what remains must be identical with the trace cache on
  // and off.
  auto strip = [](std::string text) {
    std::string out;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.find("\"stats\"") != std::string::npos) continue;
      for (const char* field :
           {"\"passes\":", "\"relaxations\":", "\"seed_replays\":",
            "\"seed_seeded\":", "\"seed_misses\":"}) {
        const std::size_t at = line.find(field);
        if (at == std::string::npos) continue;
        std::size_t stop = line.find(',', at);
        if (stop == std::string::npos) stop = line.find('}', at);
        line.erase(at, stop - at + 1);
      }
      const std::size_t seed_at = line.find(",\"seed_use\":");
      if (seed_at != std::string::npos) {
        const std::size_t stop = line.find('}', seed_at);
        line.erase(seed_at, stop - seed_at);
      }
      out += line;
      out += '\n';
    }
    return out;
  };
  ServerOptions on;
  on.threads = 2;
  on.micro_batch = 1;  // maximize neighbor-seeding opportunities
  ServerOptions off = on;
  off.trace_cache = false;
  EXPECT_EQ(strip(run_stream(on, 0)), strip(run_stream(off, 0)));
}

TEST(ServeDeterminism, RejectsDuplicateAndMalformedJobs) {
  Server server;
  JobRequest ok;
  ok.id = 1;
  ok.workload = "arf";
  core::ExploreConfig cfg;
  cfg.tclk_ps = 1800;
  cfg.latency = 10;
  ok.points.push_back(cfg);
  std::string error;
  EXPECT_TRUE(server.submit(ok, &error));
  EXPECT_FALSE(server.submit(ok, &error));  // duplicate id
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  JobRequest negative = ok;
  negative.id = -1;
  EXPECT_FALSE(server.submit(negative, &error));
  JobRequest no_points = ok;
  no_points.id = 2;
  no_points.points.clear();
  EXPECT_FALSE(server.submit(no_points, &error));
  JobRequest no_workload = ok;
  no_workload.id = 3;
  no_workload.workload.clear();
  EXPECT_FALSE(server.submit(no_workload, &error));
}

}  // namespace
}  // namespace hls::serve
