// Tests for src/timing/: the incremental datapath timing engine, netlist
// arrival queries, combinational-cycle detection, and the paper's
// Section IV worked example (1230/1580/1800 ps paths).
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "tech/library.hpp"
#include "timing/comb_cycle.hpp"
#include "timing/engine.hpp"
#include "timing/netlist.hpp"

namespace hls::timing {
namespace {

using tech::artisan90;
using tech::FuClass;

// ---- The paper's worked example (Section IV, Figure 8) -----------------------
// Tclk = 1600 ps, artisan 90nm.

TEST(WorkedExample, SharedMultiplierPathIs1230ps) {
  // Figure 8(a): FF(40) + mux(110) + mul(930) + mux(110); registering the
  // result adds setup(40): total 1230.
  const auto& lib = artisan90();
  PathQuery q;
  q.operand_arrivals_ps = {lib.reg_clk_to_q_ps(), lib.reg_clk_to_q_ps()};
  q.cls = FuClass::kMultiplier;
  q.width = 32;
  q.in_mux_inputs = 2;
  q.out_mux_inputs = 2;
  const double arr = output_arrival_ps(q, lib);
  EXPECT_DOUBLE_EQ(arr, 40 + 110 + 930 + 110);
  EXPECT_DOUBLE_EQ(arr + lib.reg_setup_ps(), 1230);
  EXPECT_DOUBLE_EQ(register_slack_ps(arr, 1600, lib), 1600 - 1230);
}

TEST(WorkedExample, ChainedAdderPathIs1580ps) {
  // Figure 8(b): the adder is unshared (single addition in the DFG), so it
  // has no muxes; it chains after the multiplier's post-mux output.
  const auto& lib = artisan90();
  PathQuery mul_q;
  mul_q.operand_arrivals_ps = {40, 40};
  mul_q.cls = FuClass::kMultiplier;
  mul_q.width = 32;
  mul_q.in_mux_inputs = 2;
  mul_q.out_mux_inputs = 2;
  const double mul_out = output_arrival_ps(mul_q, lib);  // 1190

  PathQuery add_q;
  add_q.operand_arrivals_ps = {mul_out, lib.reg_clk_to_q_ps()};
  add_q.cls = FuClass::kAdder;
  add_q.width = 32;
  const double add_out = output_arrival_ps(add_q, lib);
  EXPECT_DOUBLE_EQ(add_out + lib.reg_setup_ps(), 1580);
  EXPECT_GE(register_slack_ps(add_out, 1600, lib), 0);
}

TEST(WorkedExample, ChainedComparatorPathIs1800psNegativeSlack) {
  // Figure 8(c): gt chains after the adder: 1540 + 220 + 40 = 1800, i.e.
  // -200 ps slack at Tclk = 1600 -> the binding is rejected.
  const auto& lib = artisan90();
  PathQuery gt_q;
  gt_q.operand_arrivals_ps = {1540, lib.reg_clk_to_q_ps()};
  gt_q.cls = FuClass::kCompareOrd;
  gt_q.width = 32;
  const double gt_out = output_arrival_ps(gt_q, lib);
  EXPECT_DOUBLE_EQ(gt_out + lib.reg_setup_ps(), 1800);
  EXPECT_DOUBLE_EQ(register_slack_ps(gt_out, 1600, lib), -200);
}

TEST(WorkedExample, ChainedNeqFitsComfortably) {
  // neq on delta (post-mux multiplier output at 1190): 1190+60+40 = 1290.
  const auto& lib = artisan90();
  PathQuery q;
  q.operand_arrivals_ps = {1190, 0};
  q.cls = FuClass::kCompareEq;
  q.width = 32;
  EXPECT_DOUBLE_EQ(output_arrival_ps(q, lib) + lib.reg_setup_ps(), 1290);
}

TEST(Netlist, FreeOpsArePureWiring) {
  const auto& lib = artisan90();
  PathQuery q;
  q.operand_arrivals_ps = {123, 77};
  q.cls = FuClass::kNone;
  EXPECT_DOUBLE_EQ(output_arrival_ps(q, lib), 123);
}

TEST(Netlist, UnsharedUnitHasNoMuxPenalty) {
  const auto& lib = artisan90();
  PathQuery q;
  q.operand_arrivals_ps = {40, 40};
  q.cls = FuClass::kMultiplier;
  q.width = 32;
  EXPECT_DOUBLE_EQ(output_arrival_ps(q, lib), 970);
}

// ---- Timing engine -------------------------------------------------------------

TEST(Engine, CachesUnitDelays) {
  TimingEngine eng(artisan90(), 1600);
  const double d1 = eng.fu_delay_ps(FuClass::kMultiplier, 32);
  const auto hits0 = eng.cache_hits();
  const double d2 = eng.fu_delay_ps(FuClass::kMultiplier, 32);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(eng.cache_hits(), hits0 + 1);
}

TEST(Engine, CountsQueries) {
  TimingEngine eng(artisan90(), 1600);
  PathQuery q;
  q.operand_arrivals_ps = {40};
  q.cls = FuClass::kAdder;
  q.width = 32;
  eng.output_arrival_ps(q);
  eng.output_arrival_ps(q);
  EXPECT_EQ(eng.queries(), 2u);
}

TEST(Engine, MatchesPureFunctions) {
  TimingEngine eng(artisan90(), 1600);
  PathQuery q;
  q.operand_arrivals_ps = {40, 40};
  q.cls = FuClass::kMultiplier;
  q.width = 32;
  q.in_mux_inputs = 2;
  q.out_mux_inputs = 2;
  EXPECT_DOUBLE_EQ(eng.output_arrival_ps(q),
                   output_arrival_ps(q, artisan90()));
  EXPECT_DOUBLE_EQ(eng.register_slack_ps(1190),
                   register_slack_ps(1190, 1600, artisan90()));
}

// ---- Shared delay tables ----------------------------------------------------

TEST(DelayTables, PrewarmMatchesLibraryValues) {
  const auto& lib = artisan90();
  const DelayTables tables = DelayTables::prewarm(lib);
  const auto mul = static_cast<std::size_t>(FuClass::kMultiplier);
  ASSERT_GT(tables.fu_delay_ps.size(), mul);
  EXPECT_DOUBLE_EQ(tables.fu_delay_ps[mul][32],
                   lib.fu_delay_ps(FuClass::kMultiplier, 32));
  EXPECT_DOUBLE_EQ(tables.mux_delay_ps[2], lib.mux_delay_ps(2));
}

TEST(DelayTables, SharedEngineMatchesLocalEngine) {
  const auto& lib = artisan90();
  const DelayTables tables = DelayTables::prewarm(lib);
  TimingEngine local(lib, 1600);
  TimingEngine shared(lib, 1600, &tables);
  PathQuery q;
  q.operand_arrivals_ps = {40, 40};
  q.cls = FuClass::kMultiplier;
  q.width = 32;
  q.in_mux_inputs = 2;
  q.out_mux_inputs = 2;
  EXPECT_DOUBLE_EQ(shared.output_arrival_ps(q), local.output_arrival_ps(q));
  // A shared-table lookup counts as a cache hit from the very first query
  // (that is the point: no cold misses in explore workers).
  TimingEngine fresh(lib, 1600, &tables);
  const auto hits0 = fresh.cache_hits();
  fresh.fu_delay_ps(FuClass::kMultiplier, 32);
  EXPECT_GT(fresh.cache_hits(), hits0);
}

TEST(DelayTables, WidthBeyondTablesFallsBackToLocalMemo) {
  const auto& lib = artisan90();
  const DelayTables tables = DelayTables::prewarm(lib, /*max_width=*/8,
                                                  /*max_mux=*/4);
  TimingEngine shared(lib, 1600, &tables);
  // 32 bits is beyond the 8-bit prewarmed range: first lookup is a cold
  // library call, the second hits the engine-local memo.
  const double d1 = shared.fu_delay_ps(FuClass::kMultiplier, 32);
  const auto hits0 = shared.cache_hits();
  const double d2 = shared.fu_delay_ps(FuClass::kMultiplier, 32);
  EXPECT_DOUBLE_EQ(d1, lib.fu_delay_ps(FuClass::kMultiplier, 32));
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(shared.cache_hits(), hits0 + 1);
  EXPECT_DOUBLE_EQ(shared.mux_delay_ps(16), lib.mux_delay_ps(16));
}

// ---- Combinational cycle graph (Figure 6) ----------------------------------------

TEST(CombCycle, DetectsTwoResourceCycle) {
  CombCycleGraph g;
  g.add_edge(0, 1);  // add16 chains into add32 in state s1
  EXPECT_FALSE(g.would_create_cycle(0, 1));
  EXPECT_TRUE(g.would_create_cycle(1, 0));  // s2 would close the loop
}

TEST(CombCycle, DetectsLongerCycle) {
  CombCycleGraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.would_create_cycle(3, 0));
  EXPECT_FALSE(g.would_create_cycle(0, 3));
}

TEST(CombCycle, SelfEdgeIsACycle) {
  CombCycleGraph g;
  EXPECT_TRUE(g.would_create_cycle(5, 5));
}

TEST(CombCycle, EdgesAreCounted) {
  CombCycleGraph g;
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // second op pair on the same resource pair
  EXPECT_TRUE(g.has_edge(0, 1));
  g.remove_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));  // still one instance left
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.would_create_cycle(1, 0));
}

TEST(CombCycle, RemoveMissingEdgeAsserts) {
  CombCycleGraph g;
  EXPECT_THROW(g.remove_edge(3, 4), InternalError);
}

}  // namespace
}  // namespace hls::timing
