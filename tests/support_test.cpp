// Tests for src/support/: strings, table rendering, JSON, Graphviz dot,
// deterministic RNG, and the diagnostics engine.
#include <gtest/gtest.h>

#include <set>

#include "support/diagnostics.hpp"
#include "support/dot.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace hls {
namespace {

TEST(Strings, StrfConcatenatesMixedTypes) {
  EXPECT_EQ(strf("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(strf(), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto v = split("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
}

TEST(Strings, FmtFixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(Diagnostics, AssertThrowsInternalError) {
  EXPECT_THROW(HLS_ASSERT(false, "boom ", 42), InternalError);
  EXPECT_NO_THROW(HLS_ASSERT(true, "fine"));
}

TEST(Diagnostics, EngineCollectsAndFormats) {
  DiagEngine d;
  EXPECT_FALSE(d.has_errors());
  d.warning("w");
  EXPECT_FALSE(d.has_errors());
  d.error("bad thing", 3, 7);
  EXPECT_TRUE(d.has_errors());
  const std::string s = d.to_string();
  EXPECT_NE(s.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(s.find("warning: w"), std::string::npos);
}

TEST(Json, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("a\"b\n");
  w.key("n");
  w.value(42);
  w.key("xs");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"a\"b\n","n":42,"xs":[1.5,true,null]})");
}

TEST(Json, KeyOutsideObjectAsserts) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.key("k"), InternalError);
}

TEST(Dot, ProducesWellFormedGraph) {
  DotWriter w("g");
  w.node("a", "A label", "shape=box");
  w.node("b", "B");
  w.edge("a", "b", "lbl");
  const std::string s = w.finish();
  EXPECT_NE(s.find("digraph \"g\" {"), std::string::npos);
  EXPECT_NE(s.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
  EXPECT_NE(s.find("}\n"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "v"});
  t.row({"a", "10"});
  t.row({"long-name", "7"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name       v"), std::string::npos);
  EXPECT_NE(s.find("long-name  7"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), InternalError);
}

}  // namespace
}  // namespace hls
