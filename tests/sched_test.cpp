// Tests for src/sched/: the iterative scheduling driver on the paper's
// worked examples (Example 1 sequential / II=2 / II=1 with the expected
// Table 2 schedules), chaining under the clock constraint, multi-cycle
// units, predicate exclusivity, write ordering, and randomized DAGs.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

#include "frontend/builder.hpp"
#include "opt/pass.hpp"
#include "sched/driver.hpp"
#include "support/rng.hpp"
#include "tech/library.hpp"
#include "workloads/example1.hpp"

namespace hls::sched {
namespace {

using frontend::Builder;
using ir::int_ty;
using ir::OpId;
using tech::FuClass;

struct Prepared {
  ir::Module module;
  ir::LinearRegion region;
  ir::LatencyBound latency;
};

Prepared prepare_example1() {
  auto ex = workloads::make_example1();
  auto pred = opt::make_predicate_conversion();
  pred->run(ex.module);
  Prepared p;
  p.latency = ex.module.thread.tree.stmt(ex.loop).latency;
  p.region = ir::linearize(ex.module.thread.tree, ex.loop);
  p.module = std::move(ex.module);
  return p;
}

OpId find_op(const ir::Module& m, std::string_view name) {
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).name == name) return id;
  }
  ADD_FAILURE() << "op not found: " << name;
  return ir::kNoOp;
}

int pool_count(const Schedule& s, FuClass cls) {
  for (const auto& p : s.resources.pools) {
    if (p.cls == cls) return p.count;
  }
  return 0;
}

// ---- The paper's Example 1 (sequential) ------------------------------------------

TEST(Example1Sequential, ReproducesTable2) {
  Prepared p = prepare_example1();
  SchedulerOptions opts;  // Tclk=1600, artisan90
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.schedule.num_steps, 3);
  EXPECT_EQ(pool_count(r.schedule, FuClass::kMultiplier), 1);

  auto step_of = [&](std::string_view name) {
    return r.schedule.placement[find_op(p.module, name)].step;
  };
  // Table 2: s1 = mul1, add, neq; s2 = mul2, gt, mux; s3 = mul3.
  EXPECT_EQ(step_of("mul1_op"), 0);
  EXPECT_EQ(step_of("add_op"), 0);
  EXPECT_EQ(step_of("neq_op"), 0);
  EXPECT_EQ(step_of("mul2_op"), 1);
  EXPECT_EQ(step_of("gt_op"), 1);
  EXPECT_EQ(step_of("aver_mux"), 1);
  EXPECT_EQ(step_of("mul3_op"), 2);
  EXPECT_EQ(step_of("pixel_write"), 2);
  // All three multiplications share the single multiplier.
  const auto& pl1 = r.schedule.placement[find_op(p.module, "mul1_op")];
  const auto& pl2 = r.schedule.placement[find_op(p.module, "mul2_op")];
  const auto& pl3 = r.schedule.placement[find_op(p.module, "mul3_op")];
  EXPECT_EQ(pl1.instance, pl2.instance);
  EXPECT_EQ(pl2.instance, pl3.instance);
  EXPECT_GE(r.schedule.worst_slack_ps, 0);
}

TEST(Example1Sequential, RelaxationTraceMatchesThePaper) {
  // Latency 1 fails (mul2 has no resource, gt has -200ps slack); the expert
  // adds a state. Latency 2 fails (mul busy for mul3); adding a multiplier
  // would not help, so another state is added. Latency 3 succeeds.
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.passes, 3);
  EXPECT_EQ(r.history[0].num_steps, 1);
  EXPECT_FALSE(r.history[0].success);
  EXPECT_NE(r.history[0].action.find("add-state"), std::string::npos);
  // Pass 1 restraints: negative slack (gt, -200ps) and no-resource (mul2).
  bool found_slack = false;
  bool found_nores = false;
  for (const auto& s : r.history[0].restraints) {
    if (s.find("negative-slack") != std::string::npos &&
        s.find("gt_op") != std::string::npos &&
        s.find("-200") != std::string::npos) {
      found_slack = true;
    }
    if (s.find("no-resource") != std::string::npos &&
        s.find("mul2_op") != std::string::npos) {
      found_nores = true;
    }
  }
  EXPECT_TRUE(found_slack) << "missing gt -200ps restraint";
  EXPECT_TRUE(found_nores) << "missing mul2 no-resource restraint";

  EXPECT_EQ(r.history[1].num_steps, 2);
  EXPECT_FALSE(r.history[1].success);
  EXPECT_NE(r.history[1].action.find("add-state"), std::string::npos);
  bool mul3_busy = false;
  for (const auto& s : r.history[1].restraints) {
    if (s.find("no-resource") != std::string::npos &&
        s.find("mul3_op") != std::string::npos) {
      mul3_busy = true;
    }
  }
  EXPECT_TRUE(mul3_busy) << "missing mul3 busy restraint in pass 2";

  EXPECT_TRUE(r.history[2].success);
  EXPECT_EQ(r.history[2].num_steps, 3);
}

TEST(Example1Sequential, TableRenderingListsResources) {
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success);
  const std::string table = r.schedule.to_table(p.module.thread.dfg);
  EXPECT_NE(table.find("mul32"), std::string::npos);
  EXPECT_NE(table.find("s1"), std::string::npos);
  EXPECT_NE(table.find("mul3_op"), std::string::npos);
}

// ---- Example 2: pipelined II=2 ------------------------------------------------------

TEST(Example1PipelinedII2, TwoMultipliersTable2Schedule) {
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  opts.pipeline = {true, 2};
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.schedule.num_steps, 3);  // LI = 3 (starts at II+1)
  EXPECT_EQ(pool_count(r.schedule, FuClass::kMultiplier), 2);
  auto step_of = [&](std::string_view name) {
    return r.schedule.placement[find_op(p.module, name)].step;
  };
  // Same steps as Table 2 (the paper: "the schedule ... is applicable to
  // the pipelined case as well, changing only bindings").
  EXPECT_EQ(step_of("mul1_op"), 0);
  EXPECT_EQ(step_of("mul2_op"), 1);
  EXPECT_EQ(step_of("mul3_op"), 2);
  // mul1 and mul3 sit on equivalent edges (s1 ~ s3 mod II=2): they must
  // use different instances; mul1/mul2 share.
  const auto& pl1 = r.schedule.placement[find_op(p.module, "mul1_op")];
  const auto& pl2 = r.schedule.placement[find_op(p.module, "mul2_op")];
  const auto& pl3 = r.schedule.placement[find_op(p.module, "mul3_op")];
  EXPECT_EQ(pl1.instance, pl2.instance);
  EXPECT_NE(pl1.instance, pl3.instance);
}

// ---- Example 3: pipelined II=1 -------------------------------------------------------

TEST(Example1PipelinedII1, ThreeMultipliersSccMovedToS2) {
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  opts.pipeline = {true, 1};
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.schedule.num_steps, 3);
  EXPECT_EQ(pool_count(r.schedule, FuClass::kMultiplier), 3);
  // The novel relaxation must have fired.
  bool moved = false;
  for (const auto& h : r.history) {
    if (h.action.find("move-scc") != std::string::npos) moved = true;
  }
  EXPECT_TRUE(moved) << "expected the move-scc relaxation in the trace";
  // The whole aver SCC sits in one state (II=1) - state s2.
  auto step_of = [&](std::string_view name) {
    return r.schedule.placement[find_op(p.module, name)].step;
  };
  EXPECT_EQ(step_of("add_op"), 1);
  EXPECT_EQ(step_of("mul2_op"), 1);
  EXPECT_EQ(step_of("aver_mux"), 1);
  EXPECT_EQ(step_of("gt_op"), 1);
  EXPECT_EQ(step_of("aver_lmux"), 1);
  EXPECT_EQ(step_of("mul1_op"), 0);
  EXPECT_EQ(step_of("mul3_op"), 2);
  EXPECT_GE(r.schedule.worst_slack_ps, 0);
}

TEST(Example1PipelinedII1, DisablingMoveSccAcceptsNegativeSlack) {
  // The Table 4 ablation: without the SCC move the schedule can only
  // complete by accepting negative slack, which logic synthesis must then
  // recover with area.
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  opts.pipeline = {true, 1};
  opts.enable_move_scc = false;
  const auto r = schedule_region(p.module.thread.dfg, p.region, p.latency,
                                 p.module.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_LT(r.schedule.worst_slack_ps, 0);
  bool accepted = false;
  for (const auto& h : r.history) {
    if (h.action.find("accept-negative-slack") != std::string::npos) {
      accepted = true;
    }
  }
  EXPECT_TRUE(accepted);
}

// ---- Feature behaviour ------------------------------------------------------------

TEST(Chaining, DisablingChainingNeedsMoreStates) {
  Prepared p = prepare_example1();
  SchedulerOptions with;
  SchedulerOptions without;
  without.enable_chaining = false;
  without.max_passes = 64;
  auto pl = p.latency;
  pl.max = 16;  // allow the unchained schedule to stretch
  const auto r1 = schedule_region(p.module.thread.dfg, p.region, pl,
                                  p.module.ports.size(), with);
  const auto r2 = schedule_region(p.module.thread.dfg, p.region, pl,
                                  p.module.ports.size(), without);
  ASSERT_TRUE(r1.success) << r1.failure_reason;
  ASSERT_TRUE(r2.success) << r2.failure_reason;
  EXPECT_LT(r1.schedule.num_steps, r2.schedule.num_steps);
}

TEST(Clock, FasterClockNeedsMoreStates) {
  Prepared p = prepare_example1();
  auto lat = p.latency;
  lat.max = 12;
  SchedulerOptions slow;  // 1600
  SchedulerOptions fast;
  fast.tclk_ps = 1100;
  const auto r1 = schedule_region(p.module.thread.dfg, p.region, lat,
                                  p.module.ports.size(), slow);
  const auto r2 = schedule_region(p.module.thread.dfg, p.region, lat,
                                  p.module.ports.size(), fast);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success) << r2.failure_reason;
  EXPECT_GT(r2.schedule.num_steps, r1.schedule.num_steps);
}

TEST(Clock, InfeasibleClockReportsFailure) {
  Prepared p = prepare_example1();
  SchedulerOptions opts;
  opts.tclk_ps = 900;  // a 32-bit multiply alone cannot fit
  EXPECT_THROW(schedule_region(p.module.thread.dfg, p.region, p.latency,
                               p.module.ports.size(), opts),
               InternalError);
}

TEST(WriteOrder, SamePortWritesKeepProgramOrder) {
  Builder b("worder");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  b.write(out, x);
  b.write(out, b.add(x, b.c(1)));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 8);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  SchedulerOptions opts;
  const auto r = schedule_region(m.thread.dfg, region, {1, 8},
                                 m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  // Two writes to one port cannot land in the same state.
  const auto ws = m.thread.dfg;
  std::vector<int> steps;
  for (OpId id = 0; id < ws.size(); ++id) {
    if (ws.op(id).kind == ir::OpKind::kWrite) {
      steps.push_back(r.schedule.placement[id].step);
    }
  }
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_LT(steps[0], steps[1]);
}

TEST(MultiCycle, DividerOccupiesConsecutiveStates) {
  Builder b("divider");
  auto in = b.in("x", int_ty(32));
  auto in2 = b.in("d", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  auto q = b.div(b.read(in), b.read(in2), "the_div");
  b.write(out, q);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 12);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  SchedulerOptions opts;
  const auto r = schedule_region(m.thread.dfg, region, {1, 12},
                                 m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const OpId div = find_op(m, "the_div");
  const int lat = tech::artisan90().fu_latency_cycles(FuClass::kDivider);
  // Result lands `lat` cycles after issue; the write follows it.
  EXPECT_GE(r.schedule.placement[div].step, lat);
  for (OpId id = 0; id < m.thread.dfg.size(); ++id) {
    if (m.thread.dfg.op(id).kind == ir::OpKind::kWrite) {
      EXPECT_GE(r.schedule.placement[id].step,
                r.schedule.placement[div].step);
    }
  }
}

TEST(Exclusivity, OppositeBranchesShareOneMultiplier) {
  Builder b("excl");
  auto in = b.in("x", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto v = b.var("v", int_ty(32));
  auto loop = b.begin_counted(4);
  auto x = b.read(in);
  b.begin_if(b.gt(x, b.c(0)));
  b.set(v, b.mul(x, b.c(3), "mul_then"));
  b.begin_else();
  b.set(v, b.mul(x, b.c(5), "mul_else"));
  b.end_if();
  b.write(out, b.get(v));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 4);
  auto m = b.finish();
  auto pred = opt::make_predicate_conversion();
  pred->run(m);
  const auto region = ir::linearize(m.thread.tree, loop);
  SchedulerOptions opts;
  const auto r = schedule_region(m.thread.dfg, region, {1, 4},
                                 m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(pool_count(r.schedule, FuClass::kMultiplier), 1);
  const auto& p1 = r.schedule.placement[find_op(m, "mul_then")];
  const auto& p2 = r.schedule.placement[find_op(m, "mul_else")];
  EXPECT_EQ(p1.step, p2.step);
  EXPECT_EQ(p1.instance, p2.instance);
}

// ---- Property sweep: random expression DAGs schedule and validate -------------------

class RandomDagSchedule : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagSchedule, SchedulesAndPassesInvariantChecks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Builder b("rand");
  auto in_a = b.in("a", int_ty(32));
  auto in_b = b.in("bb", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto loop = b.begin_counted(4);
  std::vector<frontend::Val> values{b.read(in_a), b.read(in_b)};
  const int n_ops = static_cast<int>(rng.uniform(4, 24));
  for (int i = 0; i < n_ops; ++i) {
    const auto x =
        values[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    const auto y =
        values[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    switch (rng.uniform(0, 3)) {
      case 0: values.push_back(b.add(x, y)); break;
      case 1: values.push_back(b.sub(x, y)); break;
      case 2: values.push_back(b.mul(x, y)); break;
      default: values.push_back(b.bxor(x, y)); break;
    }
  }
  b.write(out, values.back());
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  SchedulerOptions opts;
  const auto r = schedule_region(m.thread.dfg, region, {1, 32},
                                 m.ports.size(), opts);
  // schedule_region runs check_schedule internally on success.
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.schedule.worst_slack_ps, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSchedule, ::testing::Range(0, 12));

class RandomDagPipelined : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagPipelined, PipelinedSchedulesRespectEquivalentEdges) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  Builder b("randp");
  auto in_a = b.in("a", int_ty(32));
  auto out = b.out("y", int_ty(32));
  auto acc = b.var("acc", int_ty(32));
  b.set(acc, b.c(0));
  auto loop = b.begin_counted(16);
  std::vector<frontend::Val> values{b.read(in_a)};
  const int n_ops = static_cast<int>(rng.uniform(3, 10));
  for (int i = 0; i < n_ops; ++i) {
    const auto x =
        values[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    values.push_back(rng.chance(0.4) ? b.mul(x, x) : b.add(x, b.c(7)));
  }
  b.set(acc, b.add(b.get(acc), values.back()));
  b.write(out, b.get(acc));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 24);
  auto m = b.finish();
  const auto region = ir::linearize(m.thread.tree, loop);
  SchedulerOptions opts;
  opts.pipeline = {true, static_cast<int>(rng.uniform(1, 3))};
  const auto r = schedule_region(m.thread.dfg, region, {1, 24},
                                 m.ports.size(), opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.schedule.worst_slack_ps, 0);
  EXPECT_GE(r.schedule.num_steps, opts.pipeline.ii + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagPipelined, ::testing::Range(0, 12));

}  // namespace
}  // namespace hls::sched
