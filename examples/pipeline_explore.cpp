// Pipelining exploration on the paper's Example 1 (Sections IV-V):
// sequential, pipelined II=2, and pipelined II=1 micro-architectures,
// including the SCC window relaxation of Example 3 and the Table 3
// area/throughput trade-off — then co-simulates each machine against the
// untimed reference to demonstrate behavioural equivalence and measured
// initiation intervals.
//
//   $ ./examples/pipeline_explore
#include <cstdio>

#include "core/report.hpp"
#include "core/session.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workloads/example1.hpp"

namespace {

hls::workloads::Workload make() {
  auto ex = hls::workloads::make_example1();
  hls::workloads::Workload w;
  w.name = "example1";
  w.module = std::move(ex.module);
  w.loop = ex.loop;
  return w;
}

}  // namespace

int main() {
  using namespace hls;

  TextTable table({"microarchitecture", "cycles/iter", "LI", "muls", "area",
                   "measured II", "outputs match"});

  // One session, three micro-architectures: the front end (optimize +
  // predicate) runs once, each mode reuses the compiled module.
  const core::FlowSession session(make());
  for (int mode = 0; mode < 3; ++mode) {
    core::FlowOptions opts;
    const char* name = "Sequential (S)";
    if (mode == 1) {
      opts.pipeline_ii = 2;
      name = "Pipe, II=2 (P2)";
    } else if (mode == 2) {
      opts.pipeline_ii = 1;
      name = "Pipe, II=1 (P1)";
    }
    auto r = session.run(opts);
    if (!r.success) {
      std::printf("%s failed: %s\n", name, r.failure_reason.c_str());
      continue;
    }
    std::printf("=== %s ===\n%s\n", name,
                core::render_trace(r.sched).c_str());

    // Co-simulate against the untimed reference.
    Rng rng(2026);
    ir::Stimulus s;
    std::vector<std::int64_t> mask, chrome, scale, th;
    for (int i = 0; i < 48; ++i) {
      mask.push_back(rng.uniform(1, 500));
      chrome.push_back(rng.uniform(1, 500));
      scale.push_back(rng.uniform(-8, 8));
      th.push_back(rng.uniform(-400, 400));
    }
    s.set("mask", mask);
    s.set("chrome", chrome);
    s.set("scale", scale);
    s.set("th", th);
    const auto ref = ir::interpret(*r.module, s);
    const auto sim = rtl::simulate(r.machine, s);
    const bool match = ir::writes_by_port(*r.module, ref.writes) ==
                       ir::writes_by_port(*r.module, sim.writes);

    int muls = 0;
    for (const auto& p : r.sched.schedule.resources.pools) {
      if (p.cls == tech::FuClass::kMultiplier) muls = p.count;
    }
    table.row({name, strf(r.machine.loop.initiation_interval()),
               strf(r.sched.schedule.num_steps), strf(muls),
               fmt_fixed(r.area.total(), 0), fmt_fixed(sim.measured_ii(), 2),
               match ? "yes" : "NO"});
  }

  std::printf(
      "Comparing microarchitectures for Example 1 (paper Table 3: areas "
      "16094 / 24010 / 30491):\n%s\n",
      table.to_string().c_str());
  return 0;
}
