// Text front-end demo: parse the paper's Figure 1 design from the `.hls`
// behavioral format, run the full flow pipelined at II=2, co-simulate
// against the untimed reference, and print the schedule.
//
//   $ ./examples/dsl_demo
#include <cstdio>

#include "core/report.hpp"
#include "core/session.hpp"
#include "frontend/parser.hpp"
#include "support/rng.hpp"

namespace {

constexpr const char* kSource = R"(
// The paper's Figure 1 thread, in the .hls text format.
module example1 {
  in mask: i32;
  in chrome: i32;
  in scale: i32;
  in th: i32;
  out pixel: i32;

  thread {
    forever {
      var aver: i32 = 0;
      wait;
      do {
        var filt: i32 = mask;
        var delta: i32 = mask * chrome;
        aver = aver + delta;
        if (aver > th) { aver = aver * scale; }
        wait;
        pixel = aver * filt;
      } while (delta != 0) latency(1, 3);
    }
  }
}
)";

}  // namespace

int main() {
  using namespace hls;

  std::printf("Parsing .hls source:\n%s\n", kSource);
  auto parsed = frontend::parse_module_or_throw(kSource);

  workloads::Workload w;
  w.name = parsed.module.name;
  w.module = std::move(parsed.module);
  w.loop = parsed.loops.back();  // the do-while

  // parse -> build -> validate -> optimize happen once, at compile time.
  core::FlowSession session(std::move(w));
  core::FlowOptions opts;
  opts.pipeline_ii = 2;
  auto r = session.run(opts);
  if (!r.success) {
    std::printf("flow failed: %s\n", r.failure_reason.c_str());
    return 1;
  }
  std::printf("%s\n", core::render_report(r).c_str());

  Rng rng(12);
  ir::Stimulus s;
  std::vector<std::int64_t> mask, chrome, scale, th;
  for (int i = 0; i < 32; ++i) {
    mask.push_back(rng.uniform(1, 300));
    chrome.push_back(rng.uniform(1, 300));
    scale.push_back(rng.uniform(-4, 4));
    th.push_back(rng.uniform(-200, 200));
  }
  s.set("mask", mask);
  s.set("chrome", chrome);
  s.set("scale", scale);
  s.set("th", th);
  const auto ref = ir::interpret(*r.module, s);
  const auto sim = rtl::simulate(r.machine, s);
  const bool match = ir::writes_by_port(*r.module, ref.writes) ==
                     ir::writes_by_port(*r.module, sim.writes);
  std::printf("co-simulation vs reference: %s (measured II %.2f)\n",
              match ? "outputs match" : "MISMATCH", sim.measured_ii());
  return match ? 0 : 1;
}
