// End-to-end output generation demo: schedule a pipelined FIR filter,
// emit its Verilog, and co-simulate the cycle-accurate machine against
// the untimed reference, reporting the achieved initiation interval and
// pipeline structure (folded kernel, pipeline register chains).
//
//   $ ./examples/cosim_verilog
#include <cstdio>

#include "core/report.hpp"
#include "core/session.hpp"
#include "support/rng.hpp"

int main() {
  using namespace hls;

  core::FlowOptions opts;
  opts.pipeline_ii = 1;  // one sample per cycle

  // Drive the flow stage by stage (the staged FlowRun API): each stage can
  // be inspected before the next one runs.
  core::FlowSession session(workloads::make_fir(8));
  core::FlowRun run = session.begin(opts);
  if (run.select_microarch() && run.schedule()) {
    std::printf("scheduled in %d passes (%.4f s); generating RTL...\n\n",
                run.result().sched.passes, run.result().sched_seconds);
    run.generate_rtl();
    run.estimate();
  }
  auto r = run.take();
  if (!r.success) {
    std::printf("flow failed: %s\n", r.failure_reason.c_str());
    return 1;
  }
  std::printf("%s\n", core::render_report(r).c_str());

  const auto& k = r.machine.loop.folded;
  std::printf("Folded kernel: LI=%d II=%d stages=%d, %d pipeline register "
              "bits across %zu chains\n\n",
              k.li, k.ii, k.stages, k.pipe_register_bits(),
              k.pipe_regs.size());

  // Co-simulation.
  Rng rng(7);
  ir::Stimulus s;
  std::vector<std::int64_t> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(rng.uniform(-1000, 1000));
  s.set("x", xs);
  const auto ref = ir::interpret(*r.module, s);
  const auto sim = rtl::simulate(r.machine, s);
  const bool match = ir::writes_by_port(*r.module, ref.writes) ==
                     ir::writes_by_port(*r.module, sim.writes);
  std::printf("co-simulation: %lld iterations in %lld cycles "
              "(measured II %.2f), outputs %s\n\n",
              static_cast<long long>(sim.iterations_committed),
              static_cast<long long>(sim.cycles), sim.measured_ii(),
              match ? "match the reference" : "MISMATCH");

  std::printf("Generated Verilog:\n%s\n", r.verilog.c_str());
  return match ? 0 : 1;
}
