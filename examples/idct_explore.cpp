// The paper's Section VI design-space exploration: the IDCT used in video
// decoding, swept over pipelined and non-pipelined micro-architectures and
// clock periods (Figures 10 and 11). Prints the (delay, area, power)
// points per curve and marks the Pareto frontier.
//
//   $ ./examples/idct_explore
#include <algorithm>
#include <cstdio>
#include <thread>

#include "core/explore.hpp"
#include "support/table.hpp"

int main() {
  using namespace hls;

  const auto grid = core::idct_paper_grid();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Running %zu HLS + synthesis-estimate configurations on %u "
              "worker thread(s)...\n",
              grid.size(), cores);

  // Compile the IDCT once; the engine fans the 25 configurations out over
  // a worker pool. Results are ordered and deterministic regardless of the
  // thread count.
  const core::FlowSession session(workloads::make_idct8());
  core::ExploreOptions eopts;
  eopts.threads = static_cast<int>(cores);
  eopts.progress = [](const core::ExplorePoint& p, std::size_t done,
                      std::size_t total) {
    std::printf("  [%2zu/%zu] %-16s @ %4.0fps: %s\n", done, total,
                p.curve.c_str(), p.tclk_ps,
                p.feasible ? "ok" : "infeasible");
  };
  auto points = core::explore(session, grid, eopts);
  std::printf("\n");

  TextTable table({"curve", "Tclk(ps)", "delay(ns)", "area", "power(mW)",
                   "pareto"});
  // Pareto: no other feasible point has both lower delay and lower area.
  auto is_pareto = [&](const core::ExplorePoint& p) {
    if (!p.feasible) return false;
    return std::none_of(points.begin(), points.end(),
                        [&](const core::ExplorePoint& q) {
                          return q.feasible && q.delay_ns <= p.delay_ns &&
                                 q.area < p.area &&
                                 (q.delay_ns < p.delay_ns || q.area < p.area);
                        });
  };
  for (const auto& p : points) {
    if (!p.feasible) {
      table.row({p.curve, strf(p.tclk_ps), "infeasible", "-", "-", ""});
      continue;
    }
    table.row({p.curve, strf(p.tclk_ps), fmt_fixed(p.delay_ns, 1),
               fmt_fixed(p.area, 0), fmt_fixed(p.power_mw, 2),
               is_pareto(p) ? "*" : ""});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's headline: the best area x delay corner is reached only by
  // pipelining.
  const core::ExplorePoint* best = nullptr;
  for (const auto& p : points) {
    if (!p.feasible) continue;
    if (best == nullptr ||
        p.delay_ns * p.area < best->delay_ns * best->area) {
      best = &p;
    }
  }
  if (best != nullptr) {
    std::printf("Best area x delay point: %s @ Tclk=%.0fps (delay %.1f ns, "
                "area %.0f)%s\n",
                best->curve.c_str(), best->tclk_ps, best->delay_ns,
                best->area,
                best->pipelined ? "  <- pipelined, as in the paper" : "");
  }
  return 0;
}
