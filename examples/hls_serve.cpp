// hls_serve — serve design+grid jobs over a worker pool with shared
// compiled sessions and a cross-config warm-start trace cache.
//
//   hls_serve --jobs jobs.json [--threads 4] [--stats]
//   hls_serve --listen /tmp/hls.sock [--once]
//   echo '{"id":0,"workload":"ewf","grid":{...}}' | hls_serve --jobs -
//
// Job format and determinism guarantees: docs/SERVE.md; robustness
// behavior (deadlines, budgets, shedding, graceful drain): docs/FAULTS.md.
// Results stream to stdout (or the socket) as JSON lines, ordered by
// (job id, point index) regardless of thread count.
//
// SIGTERM/SIGINT request a graceful drain: in-flight points finish, every
// remaining point is emitted as an ordered cancelled placeholder, and the
// process exits 0 — nonzero exits mean a real failure, never a shutdown.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/io.hpp"
#include "serve/server.hpp"

namespace {

// Flipped from the signal handler; observed by the serve engine at round
// boundaries and by the accept loop via EINTR (the handlers are installed
// WITHOUT SA_RESTART precisely so a blocked accept() wakes up).
hls::support::StopSource g_stop;

extern "C" void on_stop_signal(int) { g_stop.request_stop(); }

int usage(int code) {
  std::cerr <<
      "usage: hls_serve --jobs FILE [options]\n"
      "       hls_serve --listen SOCKET_PATH [--once] [options]\n"
      "\n"
      "modes:\n"
      "  --jobs FILE        run the job document in FILE ('-' = stdin)\n"
      "  --listen PATH      accept job documents on an AF_UNIX socket;\n"
      "                     each connection sends one document and\n"
      "                     receives its result lines\n"
      "  --once             exit after the first connection (with --listen)\n"
      "\n"
      "options:\n"
      "  --threads N        worker threads per round (0 = all cores; 1)\n"
      "  --inflight N       in-flight job cap (4)\n"
      "  --batch N          points per job per round (8; 0 = whole job)\n"
      "  --sessions N       compiled-session cache size (8)\n"
      "  --trace-entries N  trace cache size (1024)\n"
      "  --no-trace-cache   disable cross-config warm-start seeding\n"
      "  --queue-depth N    shed jobs beyond N queued (0 = unbounded)\n"
      "  --retries N        transient-fault compile retries (2)\n"
      "  --max-request-bytes N\n"
      "                     reject request documents larger than N\n"
      "                     bytes (4194304; 0 = unlimited)\n"
      "  --stats            append a {\"stats\": ...} line\n";
  return code;
}

bool read_file(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *out = ss.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int serve_document(hls::serve::Server& server, const std::string& text,
                   const std::function<void(const std::string&)>& sink) {
  std::vector<std::string> errors;
  server.submit_text(text, &errors);
  for (const std::string& e : errors) {
    hls::JsonWriter w;
    w.begin_object();
    w.key("error");
    w.value(e);
    w.end_object();
    sink(w.str());
  }
  server.drain(sink);
  return errors.empty() ? 0 : 2;
}

int listen_mode(hls::serve::Server& server, const std::string& path,
                bool once, const hls::serve::IoOptions& io) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long\n";
    ::close(fd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 4) < 0) {
    std::perror("bind/listen");
    ::close(fd);
    return 1;
  }
  std::cerr << "hls_serve: listening on " << path << "\n";
  int rc = 0;
  while (!g_stop.stop_requested()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      // A stop signal interrupts the blocking accept with EINTR — that is
      // a clean shutdown, not an error. Spurious EINTRs just retry.
      if (errno == EINTR) continue;
      std::perror("accept");
      rc = 1;
      break;
    }
    // One request document per connection: read until EOF (the client
    // shuts down its write side), serve, stream lines back, close.
    std::string text;
    const hls::serve::ReadStatus rs =
        hls::serve::read_request(conn, &text, io);
    if (rs != hls::serve::ReadStatus::kOk) {
      hls::JsonWriter w;
      w.begin_object();
      w.key("error");
      w.value(rs == hls::serve::ReadStatus::kOversized
                  ? hls::strf("[job/oversized] request exceeds ",
                              io.max_request_bytes, " bytes; rejected")
                  : std::string("[io/read_failed] could not read request"));
      w.end_object();
      std::string line = w.str();
      line += '\n';
      hls::serve::write_all(conn, line, io);
      ::close(conn);
      continue;
    }
    // A client that hangs up mid-stream (EPIPE) stops receiving but must
    // not abort the drain: caches and stats stay consistent for the next
    // connection, and the round loop's invariants never depend on the
    // sink succeeding.
    bool peer_gone = false;
    auto sink = [&](const std::string& line) {
      if (peer_gone) return;
      std::string out = line;
      out += '\n';
      int err = 0;
      if (!hls::serve::write_all(conn, out, io, &err)) peer_gone = true;
    };
    serve_document(server, text, sink);
    ::close(conn);
    if (once) break;
  }
  ::close(fd);
  ::unlink(path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Stop signals must interrupt a blocked accept(), so: no SA_RESTART.
  // SIGPIPE is ignored — a hung-up client surfaces as an EPIPE write
  // error (handled in the sink), never as process death.
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  std::string jobs_path;
  std::string listen_path;
  bool once = false;
  hls::serve::ServerOptions options;
  hls::serve::IoOptions io;
  io.max_request_bytes = 4u << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      jobs_path = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      listen_path = v;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.threads = std::atoi(v);
    } else if (arg == "--inflight") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.max_inflight = std::atoi(v);
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.micro_batch = std::atoi(v);
    } else if (arg == "--sessions") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.max_sessions = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--trace-entries") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.max_trace_entries = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--no-trace-cache") {
      options.trace_cache = false;
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.max_queue_depth = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      options.max_compile_retries = std::atoi(v);
    } else if (arg == "--max-request-bytes") {
      const char* v = next();
      if (v == nullptr) return usage(2);
      io.max_request_bytes = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--stats") {
      options.emit_stats = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (jobs_path.empty() == listen_path.empty()) {
    std::cerr << "exactly one of --jobs / --listen is required\n";
    return usage(2);
  }
  options.stop = &g_stop;

  hls::serve::Server server(options);
  if (!listen_path.empty()) {
    return listen_mode(server, listen_path, once, io);
  }

  std::string text;
  if (!read_file(jobs_path, &text)) {
    std::cerr << "cannot read " << jobs_path << "\n";
    return 1;
  }
  return serve_document(server, text,
                        [](const std::string& line) {
                          std::cout << line << "\n";
                        });
}
