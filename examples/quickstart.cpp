// Quickstart: build the paper's Figure 1 design with the Builder API, run
// the full HLS flow (optimize -> predicate -> schedule+bind -> RTL), and
// print the schedule, the expert-system trace, and the synthesis report.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "ir/print.hpp"
#include "workloads/example1.hpp"

int main() {
  using namespace hls;

  // The paper's Figure 1 SystemC thread, elaborated via the builder API.
  auto ex = workloads::make_example1();
  std::printf("Input module (elaborated CDFG):\n%s\n",
              ir::print_module(ex.module).c_str());

  workloads::Workload w;
  w.name = "example1";
  w.module = std::move(ex.module);
  w.loop = ex.loop;

  core::FlowOptions opts;  // Tclk = 1600ps, artisan90, sequential
  auto result = core::run_flow(std::move(w), opts);
  if (!result.success) {
    std::printf("flow failed: %s\n", result.failure_reason.c_str());
    return 1;
  }

  std::printf("Scheduler relaxation trace (paper Section IV):\n%s\n",
              core::render_trace(result.sched).c_str());
  std::printf("%s\n", core::render_report(result).c_str());

  std::printf("Generated Verilog (excerpt):\n");
  const std::string& v = result.verilog;
  std::printf("%.*s...\n", 800, v.c_str());
  return 0;
}
