// Quickstart: build the paper's Figure 1 design with the Builder API,
// compile it once into a FlowSession, run the staged flow (micro-arch ->
// schedule+bind -> RTL -> synthesis estimates), and print the schedule,
// the expert-system trace, and the synthesis report.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/report.hpp"
#include "core/session.hpp"
#include "ir/print.hpp"
#include "workloads/example1.hpp"

int main() {
  using namespace hls;

  // The paper's Figure 1 SystemC thread, elaborated via the builder API.
  auto ex = workloads::make_example1();
  std::printf("Input module (elaborated CDFG):\n%s\n",
              ir::print_module(ex.module).c_str());

  workloads::Workload w;
  w.name = "example1";
  w.module = std::move(ex.module);
  w.loop = ex.loop;

  // Compile once: optimize + predicate + validate. The session can then
  // run any number of micro-architecture configurations.
  core::FlowSession session(std::move(w));
  std::printf("compiled '%s' in %.3f s (%zu DFG ops)\n\n",
              session.name().c_str(), session.compile_seconds(),
              session.module().thread.dfg.size());

  core::FlowOptions opts;  // Tclk = 1600ps, artisan90, sequential
  auto result = session.run(opts);
  if (!result.success) {
    std::printf("flow failed: %s\n", result.failure_reason.c_str());
    return 1;
  }

  std::printf("Scheduler relaxation trace (paper Section IV):\n%s\n",
              core::render_trace(result.sched).c_str());
  std::printf("%s\n", core::render_report(result).c_str());
  std::printf(
      "Stage timings: microarch %.4fs, schedule %.4fs, rtl %.4fs, "
      "synth %.4fs\n\n",
      result.timings.microarch_seconds, result.timings.sched_seconds,
      result.timings.rtl_seconds, result.timings.synth_seconds);

  std::printf("Generated Verilog (excerpt):\n");
  const std::string& v = result.verilog;
  std::printf("%.*s...\n", 800, v.c_str());
  return 0;
}
