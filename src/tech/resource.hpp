// Function-unit classes and the mapping from DFG operations to the
// resource kinds of the paper's Table 1 (mul, add, gt, neq, ff, mux2/3).
#pragma once

#include <cstdint>
#include <string>

#include "ir/dfg.hpp"

namespace hls::tech {

enum class FuClass : std::uint8_t {
  kNone,        ///< free wiring / IO / register-based (no function unit)
  kAdder,       ///< add, sub, neg
  kMultiplier,  ///< mul
  kDivider,     ///< div, mod (multi-cycle)
  kCompareOrd,  ///< lt, le, gt, ge ("gt" in Table 1)
  kCompareEq,   ///< eq, ne ("neq" in Table 1)
  kLogic,       ///< and, or, xor, not (bitwise, width-parallel)
  kShifter,     ///< shifts by a non-constant amount
  kMux,         ///< data select (the DFG mux operation)
  kMemPort,     ///< memory bank port (banked-array load/store access)
};

const char* fu_class_name(FuClass c);

/// The function-unit class an operation needs. Shifts by constants and all
/// free kinds map to kNone. `shift_by_const` tells whether operand 1 of a
/// shift is a compile-time constant.
FuClass fu_class_for(ir::OpKind k, bool shift_by_const);

/// Convenience overload that inspects the DFG for constant shift amounts.
FuClass fu_class_for(const ir::Dfg& dfg, ir::OpId op);

/// The width that sizes a resource hosting `op`: the maximum of the result
/// width and all operand widths (select inputs excluded for muxes).
int resource_width_for(const ir::Dfg& dfg, ir::OpId op);

}  // namespace hls::tech
