// The built-in 90nm-class library. Coefficients are calibrated so that the
// 32-bit delays reproduce the paper's Table 1 exactly:
//
//   resource   mul  add  gt   neq  ff     mux2  mux3
//   delay(ps)  930  350  220  60   40/70  110   115
//
//   mul: 290 + 20*w          -> 930 @ w=32
//   add: 110 + 48*log2(w)    -> 350 @ w=32
//   gt:   70 + 30*log2(w)    -> 220 @ w=32
//   neq:  20 +  8*log2(w)    ->  60 @ w=32
//   mux(n): 105 + 5*ceil(log2(n)) -> 110 @ n=2, 115 @ n=3..4
//   ff: clk-to-q 40, setup 40 (the Table's 40/70 lists clk-to-q and the
//       full write path; the worked example in Section IV uses 40 + 40).
//
// Area coefficients are calibrated against the paper's Table 3
// micro-architecture comparison (S=16094, P2=24010, P1=30491).
#include "tech/library.hpp"

namespace hls::tech {

const Library& artisan90() {
  static const Library lib = [] {
    std::map<FuClass, ClassModel> m;
    // delay(w) = base + l2*log2(w) + lin*w ; area(w) = base + aw*w + aw2*w^2
    m[FuClass::kAdder] = {110, 48, 0, 40, 22, 0, 0, 0};
    m[FuClass::kMultiplier] = {290, 0, 20, 30, 0, 6.6, 0, 0};
    m[FuClass::kDivider] = {0, 0, 0, 120, 0, 19, /*latency=*/4,
                            /*into_cycle=*/400};
    m[FuClass::kCompareOrd] = {70, 30, 0, 12, 9, 0, 0, 0};
    m[FuClass::kCompareEq] = {20, 8, 0, 10, 7, 0, 0, 0};
    m[FuClass::kLogic] = {45, 0, 0, 4, 5, 0, 0, 0};
    m[FuClass::kShifter] = {90, 25, 0, 25, 0, 0.45, 0, 0};
    // Data-select unit: a 2-input mux is 110ps at any width (bit-sliced).
    m[FuClass::kMux] = {110, 0, 0, 0, 7, 0, 0, 0};
    // Memory bank port: SRAM access path (address decode + bitline sense
    // for reads, data setup for writes). Modeled like an on-chip SRAM
    // macro port: flat-ish delay with a small log2(w) word-mux term, area
    // dominated by the per-port periphery rather than the cell array.
    m[FuClass::kMemPort] = {180, 10, 0, 60, 4, 0, 0, 0};
    return Library(
        "artisan_90nm_typical", std::move(m),
        /*reg_clk_to_q_ps=*/40, /*reg_setup_ps=*/40,
        /*reg_area_per_bit=*/27,  // per-value registers (no reg sharing);
        //   calibrated so Table 3's micro-architecture areas reproduce
        /*mux_delay_base_ps=*/105, /*mux_delay_per_log2_inputs_ps=*/5,
        /*mux_area_per_input_bit=*/7,
        /*fsm_area_per_state=*/120,
        /*energy_per_area_pj=*/0.0021,
        /*leakage_nw_per_area=*/1.6);
  }();
  return lib;
}

}  // namespace hls::tech
