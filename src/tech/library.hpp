// Technology library: delay / area / energy models per function-unit
// class with bit-width scaling, plus register and sharing-mux parameters.
//
// This is the library's substitute for the paper's link to commercial
// logic synthesis: the scheduler only ever asks "what is the delay/area of
// this unit at this width", and the built-in artisan90() answers are
// calibrated so the 32-bit values reproduce the paper's Table 1 exactly
// (mul 930ps, add 350, gt 220, neq 60, ff 40, mux2 110, mux3 115).
#pragma once

#include <map>
#include <string>

#include "tech/resource.hpp"

namespace hls::tech {

/// Per-class model coefficients.
///   delay_ps(w) = delay_base + delay_log2w * log2(w) + delay_linw * w
///   area(w)     = area_base + area_w * w + area_w2 * w^2
struct ClassModel {
  double delay_base = 0;
  double delay_log2w = 0;
  double delay_linw = 0;
  double area_base = 0;
  double area_w = 0;
  double area_w2 = 0;
  /// >0: the unit is a multi-cycle resource occupying this many cycles;
  /// its operands and result are registered.
  int latency_cycles = 0;
  /// Multi-cycle only: combinational delay inside its final cycle.
  double delay_into_cycle = 0;
};

class Library {
 public:
  Library(std::string name, std::map<FuClass, ClassModel> models,
          double reg_clk_to_q_ps, double reg_setup_ps,
          double reg_area_per_bit, double mux_delay_base_ps,
          double mux_delay_per_log2_inputs_ps, double mux_area_per_input_bit,
          double fsm_area_per_state, double energy_per_area_pj,
          double leakage_nw_per_area);

  const std::string& name() const { return name_; }

  // ---- Function units -------------------------------------------------------
  double fu_delay_ps(FuClass c, int width) const;
  double fu_area(FuClass c, int width) const;
  /// Dynamic energy per operation execution (pJ).
  double fu_energy_pj(FuClass c, int width) const;
  int fu_latency_cycles(FuClass c) const;
  double fu_delay_into_cycle_ps(FuClass c) const;

  // ---- Registers -------------------------------------------------------------
  double reg_clk_to_q_ps() const { return reg_clk_to_q_; }
  double reg_setup_ps() const { return reg_setup_; }
  double reg_area_per_bit() const { return reg_area_per_bit_; }
  double reg_energy_pj(int width) const;

  // ---- Sharing muxes -----------------------------------------------------------
  /// Delay of an n-input sharing mux (n >= 2); width-independent
  /// (bit-sliced). artisan90: mux2 = 110ps, mux3 = mux4 = 115ps.
  double mux_delay_ps(int inputs) const;
  double mux_area(int inputs, int width) const;

  // ---- Control / power -----------------------------------------------------------
  double fsm_area(int states) const;
  double leakage_nw(double area) const { return leakage_nw_per_area_ * area; }
  double energy_per_area_pj() const { return energy_per_area_; }

 private:
  const ClassModel& model(FuClass c) const;

  std::string name_;
  std::map<FuClass, ClassModel> models_;
  double reg_clk_to_q_;
  double reg_setup_;
  double reg_area_per_bit_;
  double mux_delay_base_;
  double mux_delay_per_log2_inputs_;
  double mux_area_per_input_bit_;
  double fsm_area_per_state_;
  double energy_per_area_;
  double leakage_nw_per_area_;
};

/// The built-in 90nm-class library calibrated to the paper's Table 1.
const Library& artisan90();

}  // namespace hls::tech
