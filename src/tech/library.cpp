#include "tech/library.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace hls::tech {

Library::Library(std::string name, std::map<FuClass, ClassModel> models,
                 double reg_clk_to_q_ps, double reg_setup_ps,
                 double reg_area_per_bit, double mux_delay_base_ps,
                 double mux_delay_per_log2_inputs_ps,
                 double mux_area_per_input_bit, double fsm_area_per_state,
                 double energy_per_area_pj, double leakage_nw_per_area)
    : name_(std::move(name)),
      models_(std::move(models)),
      reg_clk_to_q_(reg_clk_to_q_ps),
      reg_setup_(reg_setup_ps),
      reg_area_per_bit_(reg_area_per_bit),
      mux_delay_base_(mux_delay_base_ps),
      mux_delay_per_log2_inputs_(mux_delay_per_log2_inputs_ps),
      mux_area_per_input_bit_(mux_area_per_input_bit),
      fsm_area_per_state_(fsm_area_per_state),
      energy_per_area_(energy_per_area_pj),
      leakage_nw_per_area_(leakage_nw_per_area) {}

const ClassModel& Library::model(FuClass c) const {
  auto it = models_.find(c);
  HLS_ASSERT(it != models_.end(), "library '", name_, "' has no model for ",
             fu_class_name(c));
  return it->second;
}

double Library::fu_delay_ps(FuClass c, int width) const {
  HLS_ASSERT(c != FuClass::kNone, "kNone has no delay");
  HLS_ASSERT(width >= 1 && width <= 64, "bad width ", width);
  const ClassModel& m = model(c);
  return m.delay_base + m.delay_log2w * std::log2(static_cast<double>(width)) +
         m.delay_linw * width;
}

double Library::fu_area(FuClass c, int width) const {
  HLS_ASSERT(c != FuClass::kNone, "kNone has no area");
  const ClassModel& m = model(c);
  return m.area_base + m.area_w * width +
         m.area_w2 * static_cast<double>(width) * width;
}

double Library::fu_energy_pj(FuClass c, int width) const {
  return fu_area(c, width) * energy_per_area_;
}

int Library::fu_latency_cycles(FuClass c) const {
  return model(c).latency_cycles;
}

double Library::fu_delay_into_cycle_ps(FuClass c) const {
  return model(c).delay_into_cycle;
}

double Library::reg_energy_pj(int width) const {
  return reg_area_per_bit_ * width * energy_per_area_;
}

double Library::mux_delay_ps(int inputs) const {
  HLS_ASSERT(inputs >= 2, "mux needs >= 2 inputs");
  return mux_delay_base_ +
         mux_delay_per_log2_inputs_ *
             std::ceil(std::log2(static_cast<double>(inputs)));
}

double Library::mux_area(int inputs, int width) const {
  HLS_ASSERT(inputs >= 2, "mux needs >= 2 inputs");
  return mux_area_per_input_bit_ * (inputs - 1) * width;
}

double Library::fsm_area(int states) const {
  return fsm_area_per_state_ * states;
}

}  // namespace hls::tech
