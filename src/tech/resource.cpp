#include "tech/resource.hpp"

#include <algorithm>

#include "ir/dfg.hpp"

namespace hls::tech {

const char* fu_class_name(FuClass c) {
  switch (c) {
    case FuClass::kNone: return "none";
    case FuClass::kAdder: return "add";
    case FuClass::kMultiplier: return "mul";
    case FuClass::kDivider: return "div";
    case FuClass::kCompareOrd: return "gt";
    case FuClass::kCompareEq: return "neq";
    case FuClass::kLogic: return "logic";
    case FuClass::kShifter: return "shift";
    case FuClass::kMux: return "mux";
    case FuClass::kMemPort: return "mem";
  }
  return "?";
}

FuClass fu_class_for(ir::OpKind k, bool shift_by_const) {
  using ir::OpKind;
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kNeg:
      return FuClass::kAdder;
    case OpKind::kMul:
      return FuClass::kMultiplier;
    case OpKind::kDiv:
    case OpKind::kMod:
      return FuClass::kDivider;
    case OpKind::kLt:
    case OpKind::kLe:
    case OpKind::kGt:
    case OpKind::kGe:
      return FuClass::kCompareOrd;
    case OpKind::kEq:
    case OpKind::kNe:
      return FuClass::kCompareEq;
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kNot:
      return FuClass::kLogic;
    case OpKind::kShl:
    case OpKind::kShr:
      return shift_by_const ? FuClass::kNone : FuClass::kShifter;
    case OpKind::kMux:
      return FuClass::kMux;
    default:
      return FuClass::kNone;
  }
}

FuClass fu_class_for(const ir::Dfg& dfg, ir::OpId op) {
  const ir::Op& o = dfg.op(op);
  bool shift_by_const = false;
  if ((o.kind == ir::OpKind::kShl || o.kind == ir::OpKind::kShr) &&
      o.operands.size() == 2 && o.operands[1] != ir::kNoOp) {
    shift_by_const = dfg.is_const(o.operands[1]);
  }
  return fu_class_for(o.kind, shift_by_const);
}

int resource_width_for(const ir::Dfg& dfg, ir::OpId op) {
  const ir::Op& o = dfg.op(op);
  int w = o.type.width;
  const std::size_t first =
      o.kind == ir::OpKind::kMux ? 1u : 0u;  // skip 1-bit select
  for (std::size_t i = first; i < o.operands.size(); ++i) {
    if (o.operands[i] == ir::kNoOp) continue;
    w = std::max(w, static_cast<int>(dfg.op(o.operands[i]).type.width));
  }
  return w;
}

}  // namespace hls::tech
