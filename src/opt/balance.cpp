// Fork/join latency balancing (paper Section V, step I.1): pads the
// shorter branch of each conditional with waits so both branches span the
// same number of states. Predication also balances implicitly; this
// standalone pass makes the balanced CFG inspectable and testable.
#include "opt/pass.hpp"

#include "support/diagnostics.hpp"

namespace hls::opt {

namespace {

using ir::kNoStmt;
using ir::RegionTree;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

class BalanceBranches : public Pass {
 public:
  std::string_view name() const override { return "balance-branches"; }

  bool run(ir::Module& m) override {
    return balance(m.thread.tree, m.thread.tree.root());
  }

 private:
  bool balance(RegionTree& tree, StmtId sid) {
    const Stmt snapshot = tree.stmt(sid);
    bool changed = false;
    switch (snapshot.kind) {
      case StmtKind::kSeq:
        for (StmtId c : snapshot.items) changed |= balance(tree, c);
        break;
      case StmtKind::kLoop:
        changed |= balance(tree, snapshot.body);
        break;
      case StmtKind::kIf: {
        changed |= balance(tree, snapshot.then_body);
        if (snapshot.else_body != kNoStmt) {
          changed |= balance(tree, snapshot.else_body);
        }
        const int then_waits = tree.wait_count(snapshot.then_body);
        const int else_waits = snapshot.else_body == kNoStmt
                                   ? 0
                                   : tree.wait_count(snapshot.else_body);
        if (then_waits == else_waits) break;
        const StmtId shorter = then_waits < else_waits
                                   ? snapshot.then_body
                                   : (snapshot.else_body != kNoStmt
                                          ? snapshot.else_body
                                          : kNoStmt);
        HLS_ASSERT(shorter != kNoStmt,
                   "if without else cannot be longer than zero states");
        for (int i = 0; i < std::abs(then_waits - else_waits); ++i) {
          tree.append(shorter, tree.make_wait());
        }
        changed = true;
        break;
      }
      default:
        break;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_balance_branches() {
  return std::make_unique<BalanceBranches>();
}

}  // namespace hls::opt
