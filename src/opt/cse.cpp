// Common subexpression elimination.
//
// Scope rule: two ops may be unified only when their defining statements
// live in the same sequence (same straight-line block) — the earlier one is
// then guaranteed to execute whenever the later would. After predication
// flattens the control structure this degenerates to full-block CSE.
// Port reads are CSE-able within the same block because the library's read
// semantics are per-iteration (two reads of one port in one iteration see
// the same value, like SystemC signal reads).
#include "opt/pass.hpp"

#include <map>
#include <tuple>

namespace hls::opt {

namespace {

using ir::Dfg;
using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using ir::StmtId;
using ir::StmtKind;

using Key = std::tuple<int,            // kind
                       std::uint32_t,  // operand 0
                       std::uint32_t,  // operand 1
                       std::uint32_t,  // operand 2
                       std::int64_t,   // imm
                       int, int, int,  // hi, lo, aux
                       std::uint32_t,  // port
                       std::uint32_t,  // pred
                       bool,           // pred_value
                       int, bool>;     // type width, signedness

Key make_key(const Op& o) {
  OpId a = o.operands.size() > 0 ? o.operands[0] : kNoOp;
  OpId b = o.operands.size() > 1 ? o.operands[1] : kNoOp;
  const OpId c = o.operands.size() > 2 ? o.operands[2] : kNoOp;
  if (is_commutative(o.kind) && b < a) std::swap(a, b);
  return {static_cast<int>(o.kind), a,    b,
          c,                        o.imm, o.hi,
          o.lo,                     o.aux, o.port,
          o.pred,                   o.pred_value,
          o.type.width,             o.type.is_signed};
}

bool cse_able(const Op& o) {
  switch (o.kind) {
    case OpKind::kWrite:
      return false;  // side effect
    case OpKind::kLoopMux:
      return false;  // carried state; identity matters
    case OpKind::kConst:
      return true;
    case OpKind::kRead:
      return true;  // per-iteration semantics; see header comment
    default:
      return true;
  }
}

class Cse : public Pass {
 public:
  std::string_view name() const override { return "cse"; }

  bool run(ir::Module& m) override {
    const ir::RegionTree& tree = m.thread.tree;
    bool changed = false;
    // For every sequence, unify equal ops defined directly under it.
    // Iterate a few times so chains (a+b then (a+b)+c twice) collapse.
    for (int round = 0; round < 4; ++round) {
      bool round_changed = false;
      for (StmtId sid = 0; sid < tree.size(); ++sid) {
        if (tree.stmt(sid).kind != StmtKind::kSeq) continue;
        round_changed |= run_on_seq(m, sid);
      }
      // Constants live outside the tree; unify them globally.
      round_changed |= unify_constants(m);
      if (!round_changed) break;
      changed = true;
    }
    if (changed) compact(m);
    return changed;
  }

 private:
  bool run_on_seq(ir::Module& m, StmtId seq) {
    const ir::RegionTree& tree = m.thread.tree;
    const Dfg& dfg = m.thread.dfg;
    std::map<Key, OpId> seen;
    bool changed = false;
    for (StmtId child : tree.stmt(seq).items) {
      const ir::Stmt& s = tree.stmt(child);
      if (s.kind != StmtKind::kOp) continue;
      const Op& o = dfg.op(s.op);
      if (!cse_able(o)) continue;
      const Key k = make_key(o);
      auto [it, inserted] = seen.emplace(k, s.op);
      if (!inserted && it->second != s.op) {
        replace_uses(m, s.op, it->second);
        changed = true;
      }
    }
    return changed;
  }

  bool unify_constants(ir::Module& m) {
    const Dfg& dfg = m.thread.dfg;
    std::map<Key, OpId> seen;
    bool changed = false;
    for (OpId id = 0; id < dfg.size(); ++id) {
      const Op& o = dfg.op(id);
      if (o.kind != OpKind::kConst) continue;
      const Key k = make_key(o);
      auto [it, inserted] = seen.emplace(k, id);
      if (!inserted && it->second != id) {
        replace_uses(m, id, it->second);
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_cse() { return std::make_unique<Cse>(); }

}  // namespace hls::opt
