// Constant folding / propagation plus algebraic identities, including the
// loop-mux pass-through simplification (loop_mux whose carried value equals
// its initial value is the value itself).
#include "opt/pass.hpp"

#include "support/diagnostics.hpp"

namespace hls::opt {

namespace {

using ir::Dfg;
using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;

class ConstantFold : public Pass {
 public:
  std::string_view name() const override { return "constant-fold"; }

  bool run(ir::Module& m) override {
    bool changed = false;
    Dfg& dfg = m.thread.dfg;
    // Iterate in topological order so folded operands are seen folded.
    for (OpId id : dfg.topo_order()) {
      const Op& o = dfg.op(id);
      const OpId repl = simplify(dfg, id, o);
      if (repl != kNoOp && repl != id) {
        replace_uses(m, id, repl);
        changed = true;
      }
    }
    if (changed) compact(m);
    return changed;
  }

 private:
  static bool all_const(const Dfg& dfg, const Op& o) {
    if (o.operands.empty()) return false;
    for (OpId x : o.operands) {
      if (x == kNoOp || !dfg.is_const(x)) return false;
    }
    return true;
  }

  /// Returns a replacement op id, or kNoOp when nothing applies.
  OpId simplify(Dfg& dfg, OpId id, const Op& o) {
    switch (o.kind) {
      case OpKind::kConst:
      case OpKind::kRead:
      case OpKind::kWrite:
        return kNoOp;
      case OpKind::kLoopMux:
        // Pass-through loop mux: carried value equals initial value.
        if (o.operands[1] == o.operands[0]) return o.operands[0];
        if (o.operands[1] == id) return o.operands[0];  // self carry
        return kNoOp;
      case OpKind::kMux: {
        if (dfg.is_const(o.operands[0])) {
          return dfg.op(o.operands[0]).imm != 0 ? o.operands[1]
                                                : o.operands[2];
        }
        if (o.operands[1] == o.operands[2]) return o.operands[1];
        return kNoOp;
      }
      default:
        break;
    }
    if (all_const(dfg, o)) {
      std::int64_t args[3];
      for (std::size_t i = 0; i < o.operands.size(); ++i) {
        args[i] = dfg.op(o.operands[i]).imm;
      }
      const std::int64_t v = Dfg::evaluate(o, args, o.operands.size());
      return dfg.constant(v, o.type, o.name);
    }
    return algebraic(dfg, o);
  }

  /// x+0, x-0, x*1, x*0, x&0, x|0, x^0, x<<0, x>>0, x==x and friends.
  OpId algebraic(Dfg& dfg, const Op& o) {
    auto const_val = [&](OpId x, std::int64_t* out) {
      if (x != kNoOp && dfg.is_const(x)) {
        *out = dfg.op(x).imm;
        return true;
      }
      return false;
    };
    if (o.operands.size() != 2) return kNoOp;
    const OpId a = o.operands[0];
    const OpId b = o.operands[1];
    std::int64_t ca = 0;
    std::int64_t cb = 0;
    const bool a_const = const_val(a, &ca);
    const bool b_const = const_val(b, &cb);
    // Only rewrites that keep the result type are performed here; width
    // adjustment belongs to the width-reduction pass.
    auto same_type = [&](OpId x) { return dfg.op(x).type == o.type; };
    switch (o.kind) {
      case OpKind::kAdd:
        if (b_const && cb == 0 && same_type(a)) return a;
        if (a_const && ca == 0 && same_type(b)) return b;
        break;
      case OpKind::kSub:
        if (b_const && cb == 0 && same_type(a)) return a;
        break;
      case OpKind::kMul:
        if (b_const && cb == 1 && same_type(a)) return a;
        if (a_const && ca == 1 && same_type(b)) return b;
        if ((a_const && ca == 0) || (b_const && cb == 0)) {
          return dfg.constant(0, o.type);
        }
        break;
      case OpKind::kAnd:
        if ((a_const && ca == 0) || (b_const && cb == 0)) {
          return dfg.constant(0, o.type);
        }
        break;
      case OpKind::kOr:
      case OpKind::kXor:
        if (b_const && cb == 0 && same_type(a)) return a;
        if (a_const && ca == 0 && same_type(b)) return b;
        break;
      case OpKind::kShl:
      case OpKind::kShr:
        if (b_const && cb == 0 && same_type(a)) return a;
        break;
      default:
        break;
    }
    return kNoOp;
  }
};

}  // namespace

std::unique_ptr<Pass> make_constant_fold() {
  return std::make_unique<ConstantFold>();
}

}  // namespace hls::opt
