// Operand width reduction (paper Section II).
//
// A backward demanded-bits analysis: each consumer demands a number of low
// bits from its operands; an op whose demanded width is smaller than its
// declared width is narrowed. Comparisons, divisions and right shifts
// demand full operand width (their result depends on high bits);
// truncations and bit-range extractions cut demand.
#include "opt/pass.hpp"

#include <algorithm>

#include "ir/analysis.hpp"

namespace hls::opt {

namespace {

using ir::Dfg;
using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;

class WidthReduce : public Pass {
 public:
  std::string_view name() const override { return "width-reduce"; }

  bool run(ir::Module& m) override {
    Dfg& dfg = m.thread.dfg;
    const std::size_t n = dfg.size();
    // demand[i] = how many low bits of op i's value consumers need.
    std::vector<int> demand(n, 0);

    auto demand_all = [&](OpId x) {
      if (x != kNoOp) demand[x] = dfg.op(x).type.width;
    };

    // Seed and propagate in reverse topological order.
    const auto order = dfg.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const OpId id = *it;
      const Op& o = dfg.op(id);
      int d = demand[id];
      switch (o.kind) {
        case OpKind::kWrite:
          // Port width is what the environment observes.
          demand[o.operands[0]] =
              std::max(demand[o.operands[0]],
                       static_cast<int>(dfg.op(o.operands[0]).type.width));
          continue;
        case OpKind::kTrunc:
          demand[o.operands[0]] =
              std::max(demand[o.operands[0]],
                       std::min<int>(d, o.type.width));
          continue;
        case OpKind::kBitRange:
          demand[o.operands[0]] =
              std::max(demand[o.operands[0]], o.hi + 1);
          continue;
        default:
          break;
      }
      if (d == 0) continue;  // dead or write-rooted only
      switch (o.kind) {
        // Bit i of the result depends only on bits 0..i of the inputs.
        case OpKind::kAdd:
        case OpKind::kSub:
        case OpKind::kMul:
        case OpKind::kAnd:
        case OpKind::kOr:
        case OpKind::kXor:
        case OpKind::kNot:
        case OpKind::kNeg:
          for (OpId x : o.operands) {
            if (x != kNoOp) demand[x] = std::max(demand[x], d);
          }
          break;
        case OpKind::kMux:
          demand[o.operands[0]] = std::max(demand[o.operands[0]], 1);
          demand[o.operands[1]] = std::max(demand[o.operands[1]], d);
          demand[o.operands[2]] = std::max(demand[o.operands[2]], d);
          break;
        case OpKind::kLoopMux:
          demand[o.operands[0]] = std::max(demand[o.operands[0]], d);
          // The carried operand is visited in a later (cyclic) iteration;
          // be conservative and demand the full carried width.
          demand_all(o.operands[1]);
          break;
        case OpKind::kZExt:
        case OpKind::kSExt:
          // Extension consumers may demand more than the operand has.
          demand[o.operands[0]] = std::max(
              demand[o.operands[0]],
              std::min<int>(d, dfg.op(o.operands[0]).type.width));
          break;
        case OpKind::kShl: {
          // Result bit i depends on operand bits <= i; shift amount known
          // only dynamically, demand full width minus nothing: conservative.
          demand_all(o.operands[0]);
          demand_all(o.operands[1]);
          break;
        }
        default:
          // Comparisons, divisions, shifts right, concat, reads: demand
          // everything from every operand.
          for (OpId x : o.operands) demand_all(x);
          if (o.pred != kNoOp) demand[o.pred] = 1;
          break;
      }
      if (o.pred != kNoOp) demand[o.pred] = std::max(demand[o.pred], 1);
    }

    // Narrow ops whose declared width exceeds demand. Only pure wrapping
    // kinds are narrowed; the op keeps its id, so uses need no rewriting —
    // consumers already only look at the low bits we keep.
    bool changed = false;
    for (OpId id = 0; id < n; ++id) {
      Op& o = dfg.op_mut(id);
      const int d = demand[id];
      if (d == 0 || d >= o.type.width) continue;
      switch (o.kind) {
        case OpKind::kAdd:
        case OpKind::kSub:
        case OpKind::kMul:
        case OpKind::kAnd:
        case OpKind::kOr:
        case OpKind::kXor:
        case OpKind::kNot:
        case OpKind::kNeg:
        case OpKind::kMux:
          o.type.width = static_cast<std::uint8_t>(d);
          changed = true;
          break;
        default:
          break;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_width_reduce() {
  return std::make_unique<WidthReduce>();
}

}  // namespace hls::opt
