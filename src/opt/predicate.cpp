// Branch predication (paper Figure 4): replaces fork-join structures in
// the CFG by a straight-line segment with predicates enabling operations.
//
// The data merges (muxes) already exist in the DFG — the elaborator placed
// them at the if-join (paper Figure 3 shows the MUX in the DFG while the
// CFG still has If_top/If_bottom). This pass removes the control structure:
//  * branch steps are interleaved (step k of then with step k of else),
//    implicitly balancing latency to max(then, else) states;
//  * every branch op is annotated with the branch predicate; nested
//    predicates are combined with 1-bit AND/NOT logic;
//  * side-effecting ops (writes) keep `no_speculate`, so they only execute
//    when their predicate holds; pure ops may be speculated freely, and
//    their predicate doubles as the mutual-exclusivity hint the allocator
//    uses (paper Section IV.A).
#include "opt/pass.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"

namespace hls::opt {

namespace {

using ir::Dfg;
using ir::kNoOp;
using ir::kNoStmt;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using ir::RegionTree;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

class PredicateConversion : public Pass {
 public:
  std::string_view name() const override { return "predicate-conversion"; }

  bool run(ir::Module& m) override {
    bool changed = false;
    // Process post-order so inner ifs flatten before their parents.
    changed |= process_children(m, m.thread.tree.root());
    return changed;
  }

 private:
  bool process_children(ir::Module& m, StmtId sid) {
    RegionTree& tree = m.thread.tree;
    bool changed = false;
    // Copy the shape before mutation; child lists may be rewritten.
    const Stmt snapshot = tree.stmt(sid);
    switch (snapshot.kind) {
      case StmtKind::kSeq:
        for (StmtId c : snapshot.items) changed |= process_children(m, c);
        break;
      case StmtKind::kLoop:
        changed |= process_children(m, snapshot.body);
        break;
      case StmtKind::kIf:
        changed |= process_children(m, snapshot.then_body);
        if (snapshot.else_body != kNoStmt) {
          changed |= process_children(m, snapshot.else_body);
        }
        convert_if(m, sid);
        changed = true;
        break;
      default:
        break;
    }
    return changed;
  }

  /// One control step of a flattened branch: op statements in order.
  using Segment = std::vector<StmtId>;

  /// Splits an already if-free subtree into wait-separated segments of
  /// op-statement ids.
  void collect_segments(const RegionTree& tree, StmtId sid,
                        std::vector<Segment>& segs) {
    const Stmt& s = tree.stmt(sid);
    switch (s.kind) {
      case StmtKind::kSeq:
        for (StmtId c : s.items) collect_segments(tree, c, segs);
        break;
      case StmtKind::kOp:
        segs.back().push_back(sid);
        break;
      case StmtKind::kWait:
        segs.emplace_back();
        break;
      case StmtKind::kIf:
        throw InternalError("predication: nested if not yet flattened");
      case StmtKind::kLoop:
        throw UserError(
            "predication: loops inside conditional branches are not "
            "supported; unroll or restructure the loop");
    }
  }

  void convert_if(ir::Module& m, StmtId if_id) {
    RegionTree& tree = m.thread.tree;
    Dfg& dfg = m.thread.dfg;
    const Stmt snapshot = tree.stmt(if_id);
    const OpId cond = snapshot.cond;

    std::vector<Segment> then_segs{Segment{}};
    std::vector<Segment> else_segs{Segment{}};
    collect_segments(tree, snapshot.then_body, then_segs);
    if (snapshot.else_body != kNoStmt) {
      collect_segments(tree, snapshot.else_body, else_segs);
    }

    // Interleave step-wise; the shorter branch is implicitly padded, which
    // balances the fork/join latency (paper Section V step I.1).
    const std::size_t steps = std::max(then_segs.size(), else_segs.size());
    std::vector<StmtId> merged;
    pred_cache_.clear();
    for (std::size_t k = 0; k < steps; ++k) {
      if (k < then_segs.size()) {
        for (StmtId os : then_segs[k]) {
          apply_pred(m, os, cond, /*value=*/true, merged);
          merged.push_back(os);
        }
      }
      if (k < else_segs.size()) {
        for (StmtId os : else_segs[k]) {
          apply_pred(m, os, cond, /*value=*/false, merged);
          merged.push_back(os);
        }
      }
      if (k + 1 < steps) merged.push_back(tree.make_wait());
    }

    // The if statement becomes the merged straight-line sequence (stable
    // statement id); the old branch sequences are emptied recursively so no
    // statement outside the merged list still references the moved ops.
    clear_subtree(tree, snapshot.then_body);
    if (snapshot.else_body != kNoStmt) clear_subtree(tree, snapshot.else_body);
    Stmt& s = tree.stmt_mut(if_id);
    s.kind = StmtKind::kSeq;
    s.items = std::move(merged);
    s.cond = kNoOp;
    s.then_body = kNoStmt;
    s.else_body = kNoStmt;
    (void)dfg;
  }

  /// Recursively empties every sequence in the subtree, detaching its op
  /// statements (which now live in the merged list).
  void clear_subtree(RegionTree& tree, StmtId sid) {
    Stmt& s = tree.stmt_mut(sid);
    if (s.kind == StmtKind::kSeq) {
      const std::vector<StmtId> items = std::move(s.items);
      s.items.clear();
      for (StmtId c : items) clear_subtree(tree, c);
    }
  }

  /// Sets or strengthens the predicate of the op behind `op_stmt`:
  /// new predicate = old predicate AND (cond == value). Materialized 1-bit
  /// NOT/AND ops are appended to `merged` right before their first use.
  void apply_pred(ir::Module& m, StmtId op_stmt, OpId cond, bool value,
                  std::vector<StmtId>& merged) {
    RegionTree& tree = m.thread.tree;
    Dfg& dfg = m.thread.dfg;
    const OpId op = tree.stmt(op_stmt).op;
    if (!dfg.op(op).has_pred()) {
      Op& o = dfg.op_mut(op);
      o.pred = cond;
      o.pred_value = value;
      return;
    }
    // Note: materialize() grows the DFG, so Op references must be re-fetched
    // after each call.
    const OpId pm =
        materialize(m, dfg.op(op).pred, dfg.op(op).pred_value, merged);
    const OpId cm = materialize(m, cond, value, merged);
    const std::pair<OpId, OpId> key =
        pm < cm ? std::pair{pm, cm} : std::pair{cm, pm};
    OpId and_op;
    if (auto it = and_cache_.find(key); it != and_cache_.end()) {
      and_op = it->second;
    } else {
      and_op = dfg.binary(OpKind::kAnd, key.first, key.second, ir::bool_ty(),
                          "pred_and");
      merged.push_back(tree.make_op(and_op));
      and_cache_.emplace(key, and_op);
    }
    Op& o = dfg.op_mut(op);  // re-fetch: the DFG may have reallocated
    o.pred = and_op;
    o.pred_value = true;
  }

  /// Returns an op equal to (p == value); inserts a NOT when value==false.
  OpId materialize(ir::Module& m, OpId p, bool value,
                   std::vector<StmtId>& merged) {
    if (value) return p;
    if (auto it = pred_cache_.find(p); it != pred_cache_.end()) {
      return it->second;
    }
    Dfg& dfg = m.thread.dfg;
    const OpId n =
        dfg.unary(OpKind::kNot, p, ir::bool_ty(), "pred_not");
    merged.push_back(m.thread.tree.make_op(n));
    pred_cache_.emplace(p, n);
    return n;
  }

  std::map<OpId, OpId> pred_cache_;
  std::map<std::pair<OpId, OpId>, OpId> and_cache_;
};

}  // namespace

std::unique_ptr<Pass> make_predicate_conversion() {
  return std::make_unique<PredicateConversion>();
}

}  // namespace hls::opt
