#include "opt/pass.hpp"

#include <algorithm>

#include "ir/validate.hpp"
#include "support/diagnostics.hpp"

namespace hls::opt {

using ir::Dfg;
using ir::kNoOp;
using ir::kNoStmt;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using ir::RegionTree;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

bool PassManager::run(ir::Module& m) {
  bool changed = false;
  for (auto& p : passes_) {
    PassStats st;
    st.pass = std::string(p->name());
    st.ops_before = m.thread.dfg.size();
    st.changed = p->run(m);
    st.ops_after = m.thread.dfg.size();
    changed |= st.changed;
    stats_.push_back(std::move(st));
  }
  return changed;
}

bool PassManager::run_to_fixpoint(ir::Module& m, int max_rounds) {
  bool ever = false;
  for (int round = 0; round < max_rounds; ++round) {
    if (!run(m)) break;
    ever = true;
  }
  return ever;
}

PassManager PassManager::standard_pipeline() {
  PassManager pm;
  pm.add(make_constant_fold());
  pm.add(make_strength_reduce());
  pm.add(make_cse());
  pm.add(make_width_reduce());
  pm.add(make_dce());
  return pm;
}

void replace_uses(ir::Module& m, OpId from, OpId to) {
  HLS_ASSERT(from != to, "replace_uses: from == to");
  Dfg& dfg = m.thread.dfg;
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (id == to) continue;  // avoid creating trivial self references
    Op& o = dfg.op_mut(id);
    for (OpId& x : o.operands) {
      if (x == from) x = to;
    }
    if (o.pred == from) o.pred = to;
  }
  RegionTree& tree = m.thread.tree;
  for (StmtId sid = 0; sid < tree.size(); ++sid) {
    Stmt& s = tree.stmt_mut(sid);
    if ((s.kind == StmtKind::kIf || s.kind == StmtKind::kLoop) &&
        s.cond == from) {
      s.cond = to;
    }
  }
}

namespace {

/// Live ops: transitively required by writes, conditions, and predicates.
std::vector<bool> live_ops(const ir::Module& m) {
  const Dfg& dfg = m.thread.dfg;
  const RegionTree& tree = m.thread.tree;
  std::vector<bool> live(dfg.size(), false);
  std::vector<OpId> work;
  auto mark = [&](OpId id) {
    if (id != kNoOp && id < dfg.size() && !live[id]) {
      live[id] = true;
      work.push_back(id);
    }
  };
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (dfg.op(id).kind == OpKind::kWrite) mark(id);
  }
  for (StmtId sid = 0; sid < tree.size(); ++sid) {
    const Stmt& s = tree.stmt(sid);
    if (s.kind == StmtKind::kIf || s.kind == StmtKind::kLoop) mark(s.cond);
  }
  while (!work.empty()) {
    const OpId id = work.back();
    work.pop_back();
    const Op& o = dfg.op(id);
    for (OpId x : o.operands) mark(x);
    mark(o.pred);
  }
  return live;
}

}  // namespace

std::size_t compact(ir::Module& m) {
  Dfg& dfg = m.thread.dfg;
  RegionTree& tree = m.thread.tree;
  const auto live = live_ops(m);

  // Two-phase renumbering: rewriting can leave earlier ops referencing
  // later-created constants, so the remap must exist before ops are copied.
  std::size_t removed = 0;
  std::vector<OpId> remap(dfg.size(), kNoOp);
  OpId next = 0;
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (live[id]) {
      remap[id] = next++;
    } else {
      ++removed;
    }
  }
  if (removed == 0) return 0;
  std::vector<Op> kept;
  kept.reserve(next);
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (!live[id]) continue;
    Op copy = dfg.op(id);
    for (OpId& x : copy.operands) {
      if (x != kNoOp) {
        HLS_ASSERT(live[x], "live op depends on dead op");
        x = remap[x];
      }
    }
    if (copy.pred != kNoOp) copy.pred = remap[copy.pred];
    kept.push_back(std::move(copy));
  }
  Dfg fresh = Dfg::from_ops(std::move(kept));

  // Rewrite the tree in place: statement ids stay stable, op references are
  // remapped, statements whose op died become empty sequences (tombstones),
  // and dead entries are dropped from sequence item lists.
  std::vector<StmtId> dead_stmts;
  for (StmtId sid = 0; sid < tree.size(); ++sid) {
    Stmt& s = tree.stmt_mut(sid);
    switch (s.kind) {
      case StmtKind::kOp:
        if (s.op != kNoOp && live[s.op]) {
          s.op = remap[s.op];
        } else {
          s.kind = StmtKind::kSeq;
          s.op = kNoOp;
          s.items.clear();
          dead_stmts.push_back(sid);
        }
        break;
      case StmtKind::kIf:
      case StmtKind::kLoop:
        if (s.cond != kNoOp) {
          HLS_ASSERT(live[s.cond], "condition op was removed");
          s.cond = remap[s.cond];
        }
        break;
      default:
        break;
    }
  }
  // Drop tombstones from their parents' item lists to keep dumps tidy.
  if (!dead_stmts.empty()) {
    std::vector<bool> is_dead(tree.size(), false);
    for (StmtId d : dead_stmts) is_dead[d] = true;
    for (StmtId sid = 0; sid < tree.size(); ++sid) {
      Stmt& s = tree.stmt_mut(sid);
      if (s.kind != StmtKind::kSeq) continue;
      if (is_dead[sid]) continue;
      auto& items = s.items;
      items.erase(std::remove_if(items.begin(), items.end(),
                                 [&](StmtId c) { return is_dead[c]; }),
                  items.end());
    }
  }
  dfg = std::move(fresh);
  return removed;
}

}  // namespace hls::opt
