// Operation strength reduction (paper Section II): multiplications by
// power-of-two (or two-term) constants become shifts (free wiring / adds),
// unsigned division and modulo by powers of two become shifts and masks.
//
// All rewrites are exact in the library's wrapping 2's-complement
// semantics: x * 2^k == x << k modulo 2^w for signed and unsigned alike.
#include "opt/pass.hpp"

#include <bit>

#include "support/diagnostics.hpp"

namespace hls::opt {

namespace {

using ir::Dfg;
using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;

bool positive_pow2(std::int64_t v) {
  return v > 0 && std::has_single_bit(static_cast<std::uint64_t>(v));
}

int log2_of(std::int64_t v) {
  return std::countr_zero(static_cast<std::uint64_t>(v));
}

class StrengthReduce : public Pass {
 public:
  std::string_view name() const override { return "strength-reduce"; }

  bool run(ir::Module& m) override {
    Dfg& dfg = m.thread.dfg;
    bool changed = false;
    const std::size_t n = dfg.size();  // do not revisit ops added below
    for (OpId id = 0; id < n; ++id) {
      const Op o = dfg.op(id);  // copy: dfg grows during rewriting
      OpId repl = kNoOp;
      switch (o.kind) {
        case OpKind::kMul: repl = reduce_mul(dfg, o); break;
        case OpKind::kDiv: repl = reduce_div(dfg, o); break;
        case OpKind::kMod: repl = reduce_mod(dfg, o); break;
        default: break;
      }
      if (repl != kNoOp) {
        attach_after(m, id, repl);
        replace_uses(m, id, repl);
        changed = true;
      }
    }
    if (changed) compact(m);
    return changed;
  }

 private:
  /// New ops must appear in the region tree; insert them right where the
  /// original op's statement lives so program order stays valid.
  void attach_after(ir::Module& m, OpId original, OpId last_new) {
    ir::RegionTree& tree = m.thread.tree;
    // Create the new statements first: make_op may reallocate statement
    // storage, so no Stmt reference may be held across these calls.
    std::vector<ir::StmtId> inserted;
    for (OpId nid = pending_first_; nid <= last_new; ++nid) {
      inserted.push_back(tree.make_op(nid));
    }
    for (ir::StmtId sid = 0; sid < tree.size(); ++sid) {
      if (tree.stmt(sid).kind != ir::StmtKind::kSeq) continue;
      const auto& items = tree.stmt(sid).items;
      for (std::size_t i = 0; i < items.size(); ++i) {
        const ir::Stmt& c = tree.stmt(items[i]);
        if (c.kind == ir::StmtKind::kOp && c.op == original) {
          auto& mut_items = tree.stmt_mut(sid).items;
          mut_items.insert(
              mut_items.begin() + static_cast<std::ptrdiff_t>(i) + 1,
              inserted.begin(), inserted.end());
          return;
        }
      }
    }
    throw UserError("strength-reduce: original op not found in tree");
  }

  OpId reduce_mul(Dfg& dfg, const Op& o) {
    OpId x = o.operands[0];
    OpId c = o.operands[1];
    if (dfg.is_const(x)) std::swap(x, c);
    if (!dfg.is_const(c) || dfg.is_const(x)) return kNoOp;
    const std::int64_t v = dfg.op(c).imm;
    pending_first_ = static_cast<OpId>(dfg.size());
    if (positive_pow2(v)) {
      const OpId sh = dfg.constant(log2_of(v), ir::uint_ty(7));
      return dfg.binary(OpKind::kShl, x, sh, o.type, o.name);
    }
    // Two-term decomposition: v = 2^a + 2^b  ->  (x<<a) + (x<<b).
    const std::uint64_t uv = static_cast<std::uint64_t>(v);
    if (v > 0 && std::popcount(uv) == 2) {
      const int a = std::countr_zero(uv);
      const int b = 63 - std::countl_zero(uv);
      const OpId sa = dfg.constant(a, ir::uint_ty(7));
      const OpId sb = dfg.constant(b, ir::uint_ty(7));
      const OpId xa = dfg.binary(OpKind::kShl, x, sa, o.type);
      const OpId xb = dfg.binary(OpKind::kShl, x, sb, o.type);
      return dfg.binary(OpKind::kAdd, xa, xb, o.type, o.name);
    }
    return kNoOp;
  }

  OpId reduce_div(Dfg& dfg, const Op& o) {
    const OpId x = o.operands[0];
    const OpId c = o.operands[1];
    if (!dfg.is_const(c)) return kNoOp;
    const std::int64_t v = dfg.op(c).imm;
    // Signed division by 2^k rounds toward zero, a shift rounds toward
    // -inf; only the unsigned rewrite is exact.
    if (o.type.is_signed || dfg.op(x).type.is_signed) return kNoOp;
    if (!positive_pow2(v)) return kNoOp;
    pending_first_ = static_cast<OpId>(dfg.size());
    const OpId sh = dfg.constant(log2_of(v), ir::uint_ty(7));
    return dfg.binary(OpKind::kShr, x, sh, o.type, o.name);
  }

  OpId reduce_mod(Dfg& dfg, const Op& o) {
    const OpId x = o.operands[0];
    const OpId c = o.operands[1];
    if (!dfg.is_const(c)) return kNoOp;
    const std::int64_t v = dfg.op(c).imm;
    if (o.type.is_signed || dfg.op(x).type.is_signed) return kNoOp;
    if (!positive_pow2(v)) return kNoOp;
    pending_first_ = static_cast<OpId>(dfg.size());
    const OpId mask = dfg.constant(v - 1, o.type);
    return dfg.binary(OpKind::kAnd, x, mask, o.type, o.name);
  }

  OpId pending_first_ = 0;
};

}  // namespace

std::unique_ptr<Pass> make_strength_reduce() {
  return std::make_unique<StrengthReduce>();
}

}  // namespace hls::opt
