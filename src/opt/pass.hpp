// Optimizer pass infrastructure plus the CDFG rewrite utilities shared by
// all passes (use replacement, dead-op compaction with stable statement
// ids). Mirrors the paper's "optimizer" box: constant propagation, operand
// width reduction, strength reduction, CSE, and branch predication.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace hls::opt {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  /// Returns true if the module was changed.
  virtual bool run(ir::Module& m) = 0;
};

struct PassStats {
  std::string pass;
  bool changed = false;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass);

  /// Runs all passes once, in order. Returns true if anything changed.
  bool run(ir::Module& m);

  /// Repeats `run` until a fixpoint (or `max_rounds`).
  bool run_to_fixpoint(ir::Module& m, int max_rounds = 8);

  const std::vector<PassStats>& stats() const { return stats_; }

  /// The standard optimization pipeline described in the paper's Section II
  /// (without predication, which the flow applies separately).
  static PassManager standard_pipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassStats> stats_;
};

std::unique_ptr<Pass> make_constant_fold();
std::unique_ptr<Pass> make_dce();
std::unique_ptr<Pass> make_cse();
std::unique_ptr<Pass> make_strength_reduce();
std::unique_ptr<Pass> make_width_reduce();
std::unique_ptr<Pass> make_predicate_conversion();
std::unique_ptr<Pass> make_balance_branches();

// ---- Rewrite utilities -------------------------------------------------

/// Replaces every use of `from` (operands, predicates, statement
/// conditions) with `to`. Does not touch `from`'s own operands.
void replace_uses(ir::Module& m, ir::OpId from, ir::OpId to);

/// Removes operations that are dead (not transitively required by writes,
/// branch/loop conditions, or predicates of live ops), renumbering op ids.
/// Statement ids remain stable: emptied op statements become empty
/// sequences. Returns the number of removed ops.
std::size_t compact(ir::Module& m);

}  // namespace hls::opt
