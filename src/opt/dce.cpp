// Dead code elimination: drops operations not transitively required by
// port writes, branch/loop conditions, or predicates of live operations.
#include "opt/pass.hpp"

namespace hls::opt {

namespace {

class Dce : public Pass {
 public:
  std::string_view name() const override { return "dce"; }
  bool run(ir::Module& m) override { return compact(m) > 0; }
};

}  // namespace

std::unique_ptr<Pass> make_dce() { return std::make_unique<Dce>(); }

}  // namespace hls::opt
