// Graph analyses on the DFG used by scheduling and pipelining:
//  * Tarjan strongly connected components over the full dependence graph
//    (including loop-carried edges) — the paper's Section V(a): every SCC
//    must be scheduled within II states to preserve inter-iteration
//    causality;
//  * transitive fanout cone sizes (a term of the list-scheduling priority);
//  * dependence closure helpers.
#pragma once

#include <vector>

#include "ir/dfg.hpp"

namespace hls::ir {

/// Strongly connected components over distance-0 *and* loop-carried edges.
/// Only components with >= 2 ops (or a self-edge) are returned: those are
/// exactly the inter-iteration dependency cycles of the paper.
/// Each component is sorted by OpId; components are sorted by smallest id.
std::vector<std::vector<OpId>> nontrivial_sccs(const Dfg& dfg);

/// For every op, the number of ops in its transitive fanout (distance-0
/// edges only, excluding the op itself).
std::vector<int> fanout_cone_sizes(const Dfg& dfg);

/// For every op, the set of direct distance-0 dependences (operands and
/// predicate), deduplicated.
std::vector<std::vector<OpId>> direct_deps(const Dfg& dfg);

/// For every op, its direct consumers over distance-0 edges.
std::vector<std::vector<OpId>> direct_users(const Dfg& dfg);

}  // namespace hls::ir
