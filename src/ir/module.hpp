// Design containers: a Design holds Modules; a Module holds ports and one
// synthesizable thread (region tree + DFG), mirroring the paper's SystemC
// input of "modules containing one or more threads".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "ir/region.hpp"

namespace hls::ir {

enum class PortDir : std::uint8_t { kIn, kOut };

struct Port {
  std::string name;
  Type type;
  PortDir dir = PortDir::kIn;
};

/// One synthesizable SystemC-like thread.
struct Thread {
  Dfg dfg;
  RegionTree tree;
};

struct Module {
  std::string name;
  std::vector<Port> ports;
  Thread thread;

  /// Returns the index of the port called `name`; throws UserError if absent.
  std::uint32_t port_index(std::string_view name) const;
  const Port& port(std::uint32_t index) const;
};

struct Design {
  std::string name;
  std::vector<Module> modules;

  Module& add_module(std::string name);
  const Module& module(std::string_view name) const;
};

}  // namespace hls::ir
