#include "ir/dfg.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hls::ir {

OpId Dfg::add(Op op) {
  for (OpId o : op.operands) {
    HLS_ASSERT(o == kNoOp || o < ops_.size(), "operand id out of range");
  }
  ops_.push_back(std::move(op));
  return static_cast<OpId>(ops_.size() - 1);
}

Dfg Dfg::from_ops(std::vector<Op> ops) {
  Dfg d;
  d.ops_ = std::move(ops);
  for (const Op& o : d.ops_) {
    for (OpId x : o.operands) {
      HLS_ASSERT(x == kNoOp || x < d.ops_.size(),
                 "from_ops: operand id out of range");
    }
    HLS_ASSERT(o.pred == kNoOp || o.pred < d.ops_.size(),
               "from_ops: pred id out of range");
  }
  return d;
}

const Op& Dfg::op(OpId id) const {
  HLS_ASSERT(id < ops_.size(), "op id ", id, " out of range");
  return ops_[id];
}

Op& Dfg::op_mut(OpId id) {
  HLS_ASSERT(id < ops_.size(), "op id ", id, " out of range");
  return ops_[id];
}

OpId Dfg::constant(std::int64_t value, Type t, std::string name) {
  Op o;
  o.kind = OpKind::kConst;
  o.type = t;
  o.imm = canonicalize(value, t);
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::read(std::uint32_t port, Type t, std::string name) {
  Op o;
  o.kind = OpKind::kRead;
  o.type = t;
  o.port = port;
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::write(std::uint32_t port, OpId value, std::string name) {
  Op o;
  o.kind = OpKind::kWrite;
  o.type = op(value).type;
  o.operands = {value};
  o.port = port;
  o.no_speculate = true;  // writes are side effects; never speculate
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::binary(OpKind k, OpId a, OpId b, Type result, std::string name) {
  HLS_ASSERT(is_binary_arith(k), "binary() requires an arithmetic kind");
  Op o;
  o.kind = k;
  o.type = result;
  o.operands = {a, b};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::compare(OpKind k, OpId a, OpId b, std::string name) {
  HLS_ASSERT(is_compare(k), "compare() requires a comparison kind");
  Op o;
  o.kind = k;
  o.type = bool_ty();
  o.operands = {a, b};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::unary(OpKind k, OpId a, Type result, std::string name) {
  HLS_ASSERT(k == OpKind::kNeg || k == OpKind::kNot, "unary(): bad kind");
  Op o;
  o.kind = k;
  o.type = result;
  o.operands = {a};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::mux(OpId sel, OpId if_true, OpId if_false, std::string name) {
  HLS_ASSERT(op(sel).type.width == 1, "mux select must be 1 bit");
  Op o;
  o.kind = OpKind::kMux;
  o.type = op(if_true).type;
  o.operands = {sel, if_true, if_false};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::loop_mux(OpId init, Type t, std::string name) {
  Op o;
  o.kind = OpKind::kLoopMux;
  o.type = t;
  o.operands = {init, kNoOp};
  o.name = std::move(name);
  return add(std::move(o));
}

void Dfg::set_carried(OpId loop_mux_id, OpId carried) {
  Op& o = op_mut(loop_mux_id);
  HLS_ASSERT(o.kind == OpKind::kLoopMux, "set_carried on non-loop_mux");
  HLS_ASSERT(carried < ops_.size(), "carried id out of range");
  o.operands[1] = carried;
}

OpId Dfg::bit_range(OpId a, std::uint8_t hi, std::uint8_t lo,
                    std::string name) {
  HLS_ASSERT(hi >= lo && hi < op(a).type.width, "bad bit range");
  Op o;
  o.kind = OpKind::kBitRange;
  o.type = uint_ty(static_cast<std::uint8_t>(hi - lo + 1));
  o.operands = {a};
  o.hi = hi;
  o.lo = lo;
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::concat(OpId high, OpId low, std::string name) {
  const int w = op(high).type.width + op(low).type.width;
  HLS_ASSERT(w <= 64, "concat result exceeds 64 bits");
  Op o;
  o.kind = OpKind::kConcat;
  o.type = uint_ty(static_cast<std::uint8_t>(w));
  o.operands = {high, low};
  o.aux = op(low).type.width;
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::zext(OpId a, std::uint8_t width, std::string name) {
  Op o;
  o.kind = OpKind::kZExt;
  o.type = uint_ty(width);
  o.operands = {a};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::sext(OpId a, std::uint8_t width, std::string name) {
  Op o;
  o.kind = OpKind::kSExt;
  o.type = int_ty(width);
  o.operands = {a};
  o.name = std::move(name);
  return add(std::move(o));
}

OpId Dfg::trunc(OpId a, std::uint8_t width, std::string name) {
  Op o;
  o.kind = OpKind::kTrunc;
  o.type = Type{width, op(a).type.is_signed};
  o.operands = {a};
  o.name = std::move(name);
  return add(std::move(o));
}

void Dfg::set_pred(OpId id, OpId pred, bool pred_value) {
  HLS_ASSERT(op(pred).type.width == 1, "predicate must be 1 bit");
  Op& o = op_mut(id);
  o.pred = pred;
  o.pred_value = pred_value;
}

std::vector<std::vector<OpId>> Dfg::use_lists() const {
  std::vector<std::vector<OpId>> uses(ops_.size());
  for (OpId id = 0; id < ops_.size(); ++id) {
    const Op& o = ops_[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      // The carried operand is a use with distance 1; it is still a use.
      if (o.operands[i] != kNoOp) uses[o.operands[i]].push_back(id);
    }
    if (o.pred != kNoOp) uses[o.pred].push_back(id);
  }
  return uses;
}

std::vector<OpId> Dfg::topo_order() const {
  // Kahn's algorithm over distance-0 edges. The adjacency holds one entry
  // per edge *instance* so duplicate operands (e.g. x+x) are counted right.
  std::vector<int> indegree(ops_.size(), 0);
  std::vector<std::vector<OpId>> adj(ops_.size());
  for (OpId id = 0; id < ops_.size(); ++id) {
    const Op& o = ops_[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;  // carried edge
      if (o.operands[i] == kNoOp) continue;
      adj[o.operands[i]].push_back(id);
      ++indegree[id];
    }
    if (o.pred != kNoOp) {
      adj[o.pred].push_back(id);
      ++indegree[id];
    }
  }
  std::vector<OpId> ready;
  for (OpId id = 0; id < ops_.size(); ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<OpId> order;
  order.reserve(ops_.size());
  std::size_t head = 0;
  while (head < ready.size()) {
    // Pick the smallest id among remaining ready ops for deterministic order.
    auto it = std::min_element(ready.begin() + static_cast<std::ptrdiff_t>(head),
                               ready.end());
    std::swap(*it, ready[head]);
    const OpId id = ready[head++];
    order.push_back(id);
    for (OpId u : adj[id]) {
      HLS_ASSERT(indegree[u] > 0, "topo indegree underflow");
      if (--indegree[u] == 0) ready.push_back(u);
    }
  }
  HLS_ASSERT(order.size() == ops_.size(),
             "combinational cycle in DFG (distance-0 edges)");
  return order;
}

std::int64_t Dfg::evaluate(const Op& op, const std::int64_t* args,
                           std::size_t nargs) {
  auto arg = [&](std::size_t i) -> std::int64_t {
    HLS_ASSERT(i < nargs, "evaluate: missing operand ", i, " for ",
               op_kind_name(op.kind));
    return args[i];
  };
  const Type t = op.type;
  switch (op.kind) {
    case OpKind::kConst: return op.imm;
    case OpKind::kAdd:
      return canonicalize(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(arg(0)) +
                              static_cast<std::uint64_t>(arg(1))),
                          t);
    case OpKind::kSub:
      return canonicalize(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(arg(0)) -
                              static_cast<std::uint64_t>(arg(1))),
                          t);
    case OpKind::kMul:
      return canonicalize(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(arg(0)) *
                              static_cast<std::uint64_t>(arg(1))),
                          t);
    case OpKind::kDiv: {
      const std::int64_t d = arg(1);
      if (d == 0) return 0;  // hardware convention: x/0 == 0 in this library
      if (arg(0) == INT64_MIN && d == -1) return canonicalize(INT64_MIN, t);
      return canonicalize(arg(0) / d, t);
    }
    case OpKind::kMod: {
      const std::int64_t d = arg(1);
      if (d == 0) return 0;
      if (arg(0) == INT64_MIN && d == -1) return 0;
      return canonicalize(arg(0) % d, t);
    }
    case OpKind::kNeg:
      return canonicalize(
          static_cast<std::int64_t>(-static_cast<std::uint64_t>(arg(0))), t);
    case OpKind::kAnd: return canonicalize(arg(0) & arg(1), t);
    case OpKind::kOr: return canonicalize(arg(0) | arg(1), t);
    case OpKind::kXor: return canonicalize(arg(0) ^ arg(1), t);
    case OpKind::kNot: return canonicalize(~arg(0), t);
    case OpKind::kShl: {
      const std::uint64_t sh = static_cast<std::uint64_t>(arg(1)) & 63u;
      return canonicalize(
          static_cast<std::int64_t>(static_cast<std::uint64_t>(arg(0)) << sh),
          t);
    }
    case OpKind::kShr: {
      const std::uint64_t sh = static_cast<std::uint64_t>(arg(1)) & 63u;
      // Arithmetic shift for signed inputs, logical for unsigned.
      if (t.is_signed) return canonicalize(arg(0) >> sh, t);
      return canonicalize(
          static_cast<std::int64_t>(static_cast<std::uint64_t>(arg(0)) >> sh),
          t);
    }
    case OpKind::kEq: return arg(0) == arg(1) ? 1 : 0;
    case OpKind::kNe: return arg(0) != arg(1) ? 1 : 0;
    case OpKind::kLt: return arg(0) < arg(1) ? 1 : 0;
    case OpKind::kLe: return arg(0) <= arg(1) ? 1 : 0;
    case OpKind::kGt: return arg(0) > arg(1) ? 1 : 0;
    case OpKind::kGe: return arg(0) >= arg(1) ? 1 : 0;
    case OpKind::kMux: return arg(0) != 0 ? arg(1) : arg(2);
    case OpKind::kZExt: {
      // Zero-extension reinterprets the operand bits unsigned.
      return canonicalize(arg(0), t);
    }
    case OpKind::kSExt: return canonicalize(arg(0), t);
    case OpKind::kTrunc: return canonicalize(arg(0), t);
    case OpKind::kBitRange: {
      const std::uint64_t v = static_cast<std::uint64_t>(arg(0));
      const std::uint64_t field = (op.hi - op.lo + 1 >= 64)
                                      ? v
                                      : ((v >> op.lo) &
                                         ((std::uint64_t{1}
                                           << (op.hi - op.lo + 1)) -
                                          1));
      return canonicalize(static_cast<std::int64_t>(field), t);
    }
    case OpKind::kConcat: {
      const std::uint64_t low_mask =
          op.aux >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << op.aux) - 1;
      const std::uint64_t v =
          (static_cast<std::uint64_t>(arg(0)) << op.aux) |
          (static_cast<std::uint64_t>(arg(1)) & low_mask);
      return canonicalize(static_cast<std::int64_t>(v), t);
    }
    case OpKind::kLoopMux:
    case OpKind::kRead:
    case OpKind::kWrite:
      throw InternalError(strf("evaluate() cannot execute ",
                               op_kind_name(op.kind),
                               "; handled by the interpreter"));
  }
  throw InternalError("unhandled op kind in evaluate()");
}

std::size_t Dfg::num_real_ops() const {
  std::size_t n = 0;
  for (const Op& o : ops_) {
    if (o.kind != OpKind::kConst) ++n;
  }
  return n;
}

}  // namespace hls::ir
