// The data-flow graph: a flat, id-indexed operation store with typed
// construction helpers, use lists, and evaluation of single operations
// (shared by the constant folder, the interpreter and the RTL simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/op.hpp"

namespace hls::ir {

class Dfg {
 public:
  // ---- Construction -------------------------------------------------------

  /// Adds a fully formed operation; returns its id.
  OpId add(Op op);

  /// Rebuilds a DFG from a complete op vector. Unlike repeated add() calls,
  /// forward operand references are allowed (they arise transiently during
  /// rewriting); all ids are range-checked against the final size.
  static Dfg from_ops(std::vector<Op> ops);

  OpId constant(std::int64_t value, Type t, std::string name = {});
  OpId read(std::uint32_t port, Type t, std::string name = {});
  OpId write(std::uint32_t port, OpId value, std::string name = {});
  OpId binary(OpKind k, OpId a, OpId b, Type result, std::string name = {});
  OpId compare(OpKind k, OpId a, OpId b, std::string name = {});
  OpId unary(OpKind k, OpId a, Type result, std::string name = {});
  OpId mux(OpId sel, OpId if_true, OpId if_false, std::string name = {});
  /// Creates a loop-carried mux whose carried operand is initially unset;
  /// call set_carried once the end-of-iteration value exists.
  OpId loop_mux(OpId init, Type t, std::string name = {});
  void set_carried(OpId loop_mux_id, OpId carried);
  OpId bit_range(OpId a, std::uint8_t hi, std::uint8_t lo,
                 std::string name = {});
  /// Concatenation {high, low}; result width is the sum of operand widths.
  OpId concat(OpId high, OpId low, std::string name = {});
  OpId zext(OpId a, std::uint8_t width, std::string name = {});
  OpId sext(OpId a, std::uint8_t width, std::string name = {});
  OpId trunc(OpId a, std::uint8_t width, std::string name = {});

  /// Attaches a predicate: `op` executes iff value(pred) == pred_value.
  void set_pred(OpId op, OpId pred, bool pred_value = true);

  // ---- Access --------------------------------------------------------------

  std::size_t size() const { return ops_.size(); }
  const Op& op(OpId id) const;
  Op& op_mut(OpId id);

  bool is_const(OpId id) const { return op(id).kind == OpKind::kConst; }

  /// All consumers of each op's value. Computed on demand; O(E).
  std::vector<std::vector<OpId>> use_lists() const;

  /// Topological order over distance-0 edges (loop-carried operands of
  /// kLoopMux are excluded). Throws InternalError on a combinational cycle.
  std::vector<OpId> topo_order() const;

  /// Evaluates a single operation given canonical operand values.
  /// kConst needs no inputs; kRead/kWrite must not be passed here.
  static std::int64_t evaluate(const Op& op, const std::int64_t* args,
                               std::size_t nargs);

  /// Number of operations that occupy a scheduler slot (excludes nothing;
  /// provided for statistics: counts non-const ops).
  std::size_t num_real_ops() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace hls::ir
