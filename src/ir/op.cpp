#include "ir/op.hpp"

namespace hls::ir {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kConst: return "const";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kMod: return "mod";
    case OpKind::kNeg: return "neg";
    case OpKind::kAnd: return "and";
    case OpKind::kOr: return "or";
    case OpKind::kXor: return "xor";
    case OpKind::kNot: return "not";
    case OpKind::kShl: return "shl";
    case OpKind::kShr: return "shr";
    case OpKind::kEq: return "eq";
    case OpKind::kNe: return "ne";
    case OpKind::kLt: return "lt";
    case OpKind::kLe: return "le";
    case OpKind::kGt: return "gt";
    case OpKind::kGe: return "ge";
    case OpKind::kMux: return "mux";
    case OpKind::kLoopMux: return "loop_mux";
    case OpKind::kZExt: return "zext";
    case OpKind::kSExt: return "sext";
    case OpKind::kTrunc: return "trunc";
    case OpKind::kBitRange: return "bitrange";
    case OpKind::kConcat: return "concat";
  }
  return "?";
}

bool is_binary_arith(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kMod:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kShl:
    case OpKind::kShr:
      return true;
    default:
      return false;
  }
}

bool is_compare(OpKind k) {
  switch (k) {
    case OpKind::kEq:
    case OpKind::kNe:
    case OpKind::kLt:
    case OpKind::kLe:
    case OpKind::kGt:
    case OpKind::kGe:
      return true;
    default:
      return false;
  }
}

bool is_io(OpKind k) { return k == OpKind::kRead || k == OpKind::kWrite; }

bool is_free_kind(OpKind k) {
  switch (k) {
    case OpKind::kConst:
    case OpKind::kLoopMux:
    case OpKind::kZExt:
    case OpKind::kSExt:
    case OpKind::kTrunc:
    case OpKind::kBitRange:
    case OpKind::kConcat:
      return true;
    default:
      return false;
  }
}

bool is_commutative(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kEq:
    case OpKind::kNe:
      return true;
    default:
      return false;
  }
}

}  // namespace hls::ir
