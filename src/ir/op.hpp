// Data-flow graph operations.
//
// Every operation produces at most one value; DFG edges are the operand
// references. `kLoopMux` is the paper's loop-carried multiplexer (Figure 3):
// operand 0 is the initial value, operand 1 the value carried from the
// previous loop iteration (dependence distance 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace hls::ir {

using OpId = std::uint32_t;
inline constexpr OpId kNoOp = static_cast<OpId>(-1);
inline constexpr std::uint32_t kNoPort = static_cast<std::uint32_t>(-1);

enum class OpKind : std::uint8_t {
  kConst,
  kRead,   ///< input-port read
  kWrite,  ///< output-port write (side effect; produces no value)
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  // Bitwise.
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  // Comparison (1-bit result).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Selection.
  kMux,      ///< mux(sel, a, b) == sel ? a : b
  kLoopMux,  ///< loop_mux(init, carried)
  // Free (pure wiring) conversions.
  kZExt,
  kSExt,
  kTrunc,
  kBitRange,  ///< x.range(hi, lo)
  kConcat,    ///< {a, b}
};

const char* op_kind_name(OpKind k);

bool is_binary_arith(OpKind k);
bool is_compare(OpKind k);
bool is_io(OpKind k);
/// True for operations that are pure wiring: zero delay, no function unit.
/// Shifts by a constant are also free but that depends on the operand, so it
/// is decided by resource mapping, not here.
bool is_free_kind(OpKind k);
bool is_commutative(OpKind k);

/// A single DFG operation.
struct Op {
  OpKind kind = OpKind::kConst;
  Type type{};                  ///< result type (ignored for kWrite)
  std::vector<OpId> operands;   ///< producer op ids
  OpId pred = kNoOp;            ///< optional 1-bit guard; see pred_value
  bool pred_value = true;       ///< execute iff value(pred) == pred_value
  std::int64_t imm = 0;         ///< kConst payload
  std::uint8_t hi = 0, lo = 0;  ///< kBitRange bounds (inclusive)
  std::uint8_t aux = 0;         ///< kConcat: width of the low operand
  std::uint32_t port = kNoPort; ///< kRead / kWrite port index
  bool no_speculate = false;    ///< must not execute when predicate is false
  std::string name;             ///< optional debug name

  bool has_pred() const { return pred != kNoOp; }
};

}  // namespace hls::ir
