#include "ir/print.hpp"

#include "support/dot.hpp"
#include "support/strings.hpp"

namespace hls::ir {

namespace {

std::string op_ref(const Dfg& dfg, OpId id) {
  if (id == kNoOp) return "<unset>";
  const Op& o = dfg.op(id);
  if (!o.name.empty()) return o.name;
  return strf("%", id);
}

std::string op_def_line(const Module& m, OpId id) {
  const Dfg& dfg = m.thread.dfg;
  const Op& o = dfg.op(id);
  std::string s = strf(op_ref(dfg, id), ": ", type_name(o.type), " = ",
                       op_kind_name(o.kind));
  if (o.kind == OpKind::kConst) {
    s += strf(" ", o.imm);
  } else if (is_io(o.kind)) {
    s += strf(" @", m.ports[o.port].name);
  }
  for (OpId x : o.operands) s += strf(" ", op_ref(dfg, x));
  if (o.kind == OpKind::kBitRange) {
    s += strf(" [", int(o.hi), ":", int(o.lo), "]");
  }
  if (o.pred != kNoOp) {
    s += strf(" if ", o.pred_value ? "" : "!", op_ref(dfg, o.pred));
  }
  return s;
}

void print_stmt(const Module& m, StmtId id, int indent, std::string& out) {
  const RegionTree& tree = m.thread.tree;
  const Stmt& s = tree.stmt(id);
  const std::string margin(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kSeq:
      for (StmtId c : s.items) print_stmt(m, c, indent, out);
      break;
    case StmtKind::kWait:
      out += strf(margin, "wait;", s.label.empty() ? "" : "  // " + s.label,
                  "\n");
      break;
    case StmtKind::kOp:
      out += strf(margin, op_def_line(m, s.op), "\n");
      break;
    case StmtKind::kIf:
      out += strf(margin, "if ", op_ref(m.thread.dfg, s.cond), " {\n");
      print_stmt(m, s.then_body, indent + 1, out);
      if (s.else_body != kNoStmt &&
          !tree.stmt(s.else_body).items.empty()) {
        out += strf(margin, "} else {\n");
        print_stmt(m, s.else_body, indent + 1, out);
      }
      out += strf(margin, "}\n");
      break;
    case StmtKind::kLoop: {
      const char* kind = s.loop_kind == LoopKind::kForever   ? "forever"
                         : s.loop_kind == LoopKind::kDoWhile ? "do_while"
                         : s.loop_kind == LoopKind::kCounted ? "counted"
                                                             : "stall";
      out += strf(margin, kind, " loop");
      if (s.loop_kind == LoopKind::kCounted) out += strf(" x", s.trip_count);
      if (s.pipeline.enabled) out += strf(" pipeline(II=", s.pipeline.ii, ")");
      out += strf(" latency[", s.latency.min, ",", s.latency.max, "] {\n");
      print_stmt(m, s.body, indent + 1, out);
      if (s.loop_kind == LoopKind::kDoWhile) {
        out += strf(margin, "} while ", op_ref(m.thread.dfg, s.cond), "\n");
      } else {
        out += strf(margin, "}\n");
      }
      break;
    }
  }
}

}  // namespace

std::string print_module(const Module& m) {
  std::string out = strf("module ", m.name, " {\n");
  for (const Port& p : m.ports) {
    out += strf("  ", p.dir == PortDir::kIn ? "in " : "out ", p.name, ": ",
                type_name(p.type), ";\n");
  }
  out += "  thread {\n";
  print_stmt(m, m.thread.tree.root(), 2, out);
  out += "  }\n}\n";
  return out;
}

std::string dfg_to_dot(const Module& m) {
  const Dfg& dfg = m.thread.dfg;
  DotWriter w(strf(m.name, "_dfg"));
  for (OpId id = 0; id < dfg.size(); ++id) {
    const Op& o = dfg.op(id);
    std::string label = op_ref(dfg, id);
    if (o.kind == OpKind::kConst) {
      label = strf(o.imm);
    } else {
      label += strf("\n", op_kind_name(o.kind), " ", type_name(o.type));
    }
    const char* shape = o.kind == OpKind::kConst ? "shape=plaintext"
                        : is_io(o.kind)          ? "shape=house"
                        : o.kind == OpKind::kMux || o.kind == OpKind::kLoopMux
                            ? "shape=trapezium"
                            : "shape=ellipse";
    w.node(strf("n", id), label, shape);
  }
  for (OpId id = 0; id < dfg.size(); ++id) {
    const Op& o = dfg.op(id);
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.operands[i] == kNoOp) continue;
      const bool carried = o.kind == OpKind::kLoopMux && i == 1;
      w.edge(strf("n", o.operands[i]), strf("n", id), {},
             carried ? "style=dashed" : "");
    }
    if (o.pred != kNoOp) {
      w.edge(strf("n", o.pred), strf("n", id), o.pred_value ? "p" : "!p",
             "style=dotted");
    }
  }
  return w.finish();
}

namespace {

struct CfgBuilder {
  const Module& m;
  DotWriter w;
  int next_node = 0;
  int next_wait = 0;

  explicit CfgBuilder(const Module& mod)
      : m(mod), w(strf(mod.name, "_cfg")) {}

  std::string fresh(std::string_view label, std::string_view attrs) {
    std::string id = strf("c", next_node++);
    w.node(id, label, attrs);
    return id;
  }

  /// Emits the subtree, connecting from `entry`; returns the exit node id.
  /// `pending` accumulates ops to be shown on the next emitted edge label.
  std::string emit(StmtId sid, std::string entry, std::string* pending) {
    const RegionTree& tree = m.thread.tree;
    const Stmt& s = tree.stmt(sid);
    switch (s.kind) {
      case StmtKind::kSeq: {
        std::string cur = std::move(entry);
        for (StmtId c : s.items) cur = emit(c, std::move(cur), pending);
        return cur;
      }
      case StmtKind::kOp: {
        if (!pending->empty()) *pending += "\n";
        *pending += op_ref(m.thread.dfg, s.op);
        return entry;
      }
      case StmtKind::kWait: {
        std::string n = fresh(
            s.label.empty() ? strf("s", ++next_wait) : s.label,
            "shape=circle");
        w.edge(entry, n, *pending);
        pending->clear();
        return n;
      }
      case StmtKind::kIf: {
        std::string fork = fresh("If_top", "shape=diamond");
        w.edge(entry, fork, *pending);
        pending->clear();
        std::string tp, ep;
        std::string t_exit = emit(s.then_body, fork, &tp);
        std::string join = fresh("If_bottom", "shape=diamond");
        w.edge(t_exit, join, tp.empty() ? "T" : strf("T\n", tp));
        if (s.else_body != kNoStmt) {
          std::string e_exit = emit(s.else_body, fork, &ep);
          w.edge(e_exit, join, ep.empty() ? "F" : strf("F\n", ep));
        } else {
          w.edge(fork, join, "F");
        }
        return join;
      }
      case StmtKind::kLoop: {
        std::string top = fresh("Loop_top", "shape=box");
        w.edge(entry, top, *pending);
        pending->clear();
        std::string bp;
        std::string bottom_in = emit(s.body, top, &bp);
        std::string bottom = fresh("Loop_bottom", "shape=box");
        w.edge(bottom_in, bottom, bp);
        w.edge(bottom, top, "back", "style=dashed");
        return bottom;
      }
    }
    return entry;
  }
};

}  // namespace

std::string cfg_to_dot(const Module& m) {
  CfgBuilder b(m);
  std::string entry = b.fresh("entry", "shape=point");
  std::string pending;
  std::string exit_node = b.emit(m.thread.tree.root(), entry, &pending);
  std::string final_node = b.fresh("exit", "shape=point");
  b.w.edge(exit_node, final_node, pending);
  return b.w.finish();
}

}  // namespace hls::ir
