// Structural validation of a module's CDFG. Run after construction and
// after every transformation pass; all passes must preserve validity.
#pragma once

#include "ir/module.hpp"
#include "support/diagnostics.hpp"

namespace hls::ir {

/// Checks structural invariants of `m` and reports problems into `diags`:
///  * operand / port / statement ids in range;
///  * operand arity and width rules per op kind;
///  * predicates are 1-bit;
///  * every loop-carried mux has its carried operand set;
///  * each DFG op is referenced exactly once in the region tree;
///  * program order respects data dependences (defs before uses, except
///    loop-carried edges);
///  * kIf conditions are 1-bit, counted loops have positive trip counts.
/// Returns true when no errors were found.
bool validate(const Module& m, DiagEngine& diags);

/// Convenience wrapper that throws UserError listing all problems.
void validate_or_throw(const Module& m);

}  // namespace hls::ir
