// Textual and Graphviz dumps of the CDFG (the forms shown in the paper's
// Figure 3: the CFG with fork/join/wait nodes, and the DFG).
#pragma once

#include <string>

#include "ir/module.hpp"

namespace hls::ir {

/// Human-readable dump of the region tree with inline op definitions.
std::string print_module(const Module& m);

/// DOT graph of the DFG (operations and data edges; loop-carried edges
/// are dashed, predicates dotted).
std::string dfg_to_dot(const Module& m);

/// DOT graph of the flattened CFG: wait states, fork/join and loop nodes,
/// with each edge labelled by the ops homed on it.
std::string cfg_to_dot(const Module& m);

}  // namespace hls::ir
