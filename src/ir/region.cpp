#include "ir/region.hpp"

#include "support/diagnostics.hpp"

namespace hls::ir {

RegionTree::RegionTree() {
  stmts_.push_back(Stmt{});  // root kSeq
}

const Stmt& RegionTree::stmt(StmtId id) const {
  HLS_ASSERT(id < stmts_.size(), "stmt id out of range");
  return stmts_[id];
}

Stmt& RegionTree::stmt_mut(StmtId id) {
  HLS_ASSERT(id < stmts_.size(), "stmt id out of range");
  return stmts_[id];
}

StmtId RegionTree::make_seq() {
  stmts_.push_back(Stmt{});
  return static_cast<StmtId>(stmts_.size() - 1);
}

StmtId RegionTree::make_wait(std::string label) {
  Stmt s;
  s.kind = StmtKind::kWait;
  s.label = std::move(label);
  stmts_.push_back(std::move(s));
  return static_cast<StmtId>(stmts_.size() - 1);
}

StmtId RegionTree::make_op(OpId op) {
  Stmt s;
  s.kind = StmtKind::kOp;
  s.op = op;
  stmts_.push_back(std::move(s));
  return static_cast<StmtId>(stmts_.size() - 1);
}

StmtId RegionTree::make_if(OpId cond, StmtId then_body, StmtId else_body) {
  Stmt s;
  s.kind = StmtKind::kIf;
  s.cond = cond;
  s.then_body = then_body;
  s.else_body = else_body;
  stmts_.push_back(std::move(s));
  return static_cast<StmtId>(stmts_.size() - 1);
}

StmtId RegionTree::make_loop(LoopKind kind, StmtId body) {
  Stmt s;
  s.kind = StmtKind::kLoop;
  s.loop_kind = kind;
  s.body = body;
  stmts_.push_back(std::move(s));
  return static_cast<StmtId>(stmts_.size() - 1);
}

void RegionTree::append(StmtId seq, StmtId child) {
  Stmt& s = stmt_mut(seq);
  HLS_ASSERT(s.kind == StmtKind::kSeq, "append target is not a kSeq");
  s.items.push_back(child);
}

void RegionTree::set_items(StmtId seq, std::vector<StmtId> items) {
  Stmt& s = stmt_mut(seq);
  HLS_ASSERT(s.kind == StmtKind::kSeq, "set_items target is not a kSeq");
  s.items = std::move(items);
}

namespace {

template <typename Fn>
void walk(const RegionTree& tree, StmtId id, bool into_nested_loops,
          const Fn& fn) {
  const Stmt& s = tree.stmt(id);
  fn(id, s);
  switch (s.kind) {
    case StmtKind::kSeq:
      for (StmtId c : s.items) walk(tree, c, into_nested_loops, fn);
      break;
    case StmtKind::kIf:
      walk(tree, s.then_body, into_nested_loops, fn);
      if (s.else_body != kNoStmt) {
        walk(tree, s.else_body, into_nested_loops, fn);
      }
      break;
    case StmtKind::kLoop:
      if (into_nested_loops) walk(tree, s.body, into_nested_loops, fn);
      break;
    case StmtKind::kWait:
    case StmtKind::kOp:
      break;
  }
}

}  // namespace

std::vector<OpId> RegionTree::ops_in(StmtId id, bool into_nested_loops) const {
  std::vector<OpId> out;
  // The walk always enters the given root, even when it is itself a loop.
  const Stmt& s = stmt(id);
  const StmtId start = s.kind == StmtKind::kLoop ? s.body : id;
  walk(*this, start, into_nested_loops, [&](StmtId, const Stmt& st) {
    if (st.kind == StmtKind::kOp) out.push_back(st.op);
  });
  return out;
}

std::vector<StmtId> RegionTree::loops_in(StmtId id) const {
  std::vector<StmtId> out;
  walk(*this, id, /*into_nested_loops=*/true, [&](StmtId sid, const Stmt& st) {
    if (st.kind == StmtKind::kLoop) out.push_back(sid);
  });
  return out;
}

bool RegionTree::has_branches(StmtId id) const {
  bool found = false;
  walk(*this, id, /*into_nested_loops=*/true, [&](StmtId, const Stmt& st) {
    if (st.kind == StmtKind::kIf) found = true;
  });
  return found;
}

int RegionTree::wait_count(StmtId id) const {
  int n = 0;
  walk(*this, id, /*into_nested_loops=*/false, [&](StmtId, const Stmt& st) {
    if (st.kind == StmtKind::kWait) ++n;
  });
  return n;
}

std::vector<OpId> LinearRegion::all_ops() const {
  std::vector<OpId> out;
  for (const auto& s : steps) out.insert(out.end(), s.begin(), s.end());
  return out;
}

namespace {

void linearize_into(const RegionTree& tree, StmtId id, LinearRegion& out) {
  const Stmt& s = tree.stmt(id);
  switch (s.kind) {
    case StmtKind::kSeq:
      for (StmtId c : s.items) linearize_into(tree, c, out);
      break;
    case StmtKind::kWait:
      out.steps.emplace_back();
      break;
    case StmtKind::kOp:
      HLS_ASSERT(!out.steps.empty(), "linearize: internal step list empty");
      out.steps.back().push_back(s.op);
      break;
    case StmtKind::kIf:
      throw InternalError(
          "linearize: region still contains branches; run predication first");
    case StmtKind::kLoop:
      throw InternalError(
          "linearize: region contains a nested loop; unroll it or schedule "
          "it separately");
  }
}

}  // namespace

LinearRegion linearize(const RegionTree& tree, StmtId id) {
  const Stmt& s = tree.stmt(id);
  LinearRegion out;
  out.steps.emplace_back();  // step 0 starts at region entry
  if (s.kind == StmtKind::kLoop) {
    out.timed = s.timed;
    linearize_into(tree, s.body, out);
  } else {
    out.timed = s.timed;
    linearize_into(tree, id, out);
  }
  // A wait as the very last statement produces an empty trailing step;
  // keep it only if it holds ops (the final step otherwise ends the region).
  if (out.steps.size() > 1 && out.steps.back().empty()) {
    out.steps.pop_back();
  }
  return out;
}

}  // namespace hls::ir
