#include "ir/validate.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace hls::ir {

namespace {

int expected_arity(OpKind k) {
  switch (k) {
    case OpKind::kConst:
    case OpKind::kRead:
      return 0;
    case OpKind::kWrite:
    case OpKind::kNeg:
    case OpKind::kNot:
    case OpKind::kZExt:
    case OpKind::kSExt:
    case OpKind::kTrunc:
    case OpKind::kBitRange:
      return 1;
    case OpKind::kMux:
      return 3;
    case OpKind::kLoopMux:
      return 2;
    default:
      return 2;
  }
}

class Validator {
 public:
  Validator(const Module& m, DiagEngine& diags) : m_(m), diags_(diags) {}

  bool run() {
    check_ops();
    check_tree();
    check_program_order();
    return !diags_.has_errors();
  }

 private:
  void error(std::string msg) { diags_.error(std::move(msg)); }

  void check_ops() {
    const Dfg& dfg = m_.thread.dfg;
    for (OpId id = 0; id < dfg.size(); ++id) {
      const Op& o = dfg.op(id);
      const std::string where = strf("op %", id, " (", op_kind_name(o.kind),
                                     o.name.empty() ? "" : " '" + o.name + "'",
                                     ")");
      if (static_cast<int>(o.operands.size()) != expected_arity(o.kind)) {
        error(strf(where, ": expected ", expected_arity(o.kind),
                   " operands, got ", o.operands.size()));
        continue;
      }
      for (std::size_t i = 0; i < o.operands.size(); ++i) {
        const OpId x = o.operands[i];
        if (x == kNoOp) {
          error(strf(where, ": operand ", i, " unset",
                     o.kind == OpKind::kLoopMux && i == 1
                         ? " (carried value never set)"
                         : ""));
        } else if (x >= dfg.size()) {
          error(strf(where, ": operand ", i, " id out of range"));
        }
      }
      if (o.pred != kNoOp) {
        if (o.pred >= dfg.size()) {
          error(strf(where, ": predicate id out of range"));
        } else if (dfg.op(o.pred).type.width != 1) {
          error(strf(where, ": predicate is not 1 bit"));
        }
      }
      if (o.type.width < 1 || o.type.width > 64) {
        error(strf(where, ": bad result width ",
                   static_cast<int>(o.type.width)));
      }
      if (is_compare(o.kind) && o.type.width != 1) {
        error(strf(where, ": comparison result must be 1 bit"));
      }
      if (is_io(o.kind)) {
        if (o.port == kNoPort || o.port >= m_.ports.size()) {
          error(strf(where, ": bad port index"));
        } else {
          const Port& p = m_.ports[o.port];
          const bool want_in = o.kind == OpKind::kRead;
          if (want_in != (p.dir == PortDir::kIn)) {
            error(strf(where, ": direction mismatch with port '", p.name,
                       "'"));
          }
        }
      }
      if (o.kind == OpKind::kBitRange && !o.operands.empty() &&
          o.operands[0] != kNoOp && o.operands[0] < dfg.size()) {
        if (o.hi < o.lo || o.hi >= dfg.op(o.operands[0]).type.width) {
          error(strf(where, ": bit range [", int(o.hi), ":", int(o.lo),
                     "] out of operand width"));
        }
      }
    }
  }

  void check_tree() {
    const RegionTree& tree = m_.thread.tree;
    const Dfg& dfg = m_.thread.dfg;
    std::vector<int> ref_count(dfg.size(), 0);
    for (StmtId id = 0; id < tree.size(); ++id) {
      const Stmt& s = tree.stmt(id);
      switch (s.kind) {
        case StmtKind::kOp:
          if (s.op >= dfg.size()) {
            error(strf("stmt ", id, ": op id out of range"));
          } else {
            ++ref_count[s.op];
          }
          break;
        case StmtKind::kIf:
          if (s.cond == kNoOp || s.cond >= dfg.size()) {
            error(strf("stmt ", id, ": if condition unset"));
          } else if (dfg.op(s.cond).type.width != 1) {
            error(strf("stmt ", id, ": if condition is not 1 bit"));
          }
          if (s.then_body == kNoStmt || s.then_body >= tree.size()) {
            error(strf("stmt ", id, ": missing then body"));
          }
          break;
        case StmtKind::kLoop:
          if (s.body == kNoStmt || s.body >= tree.size()) {
            error(strf("stmt ", id, ": missing loop body"));
          }
          if (s.loop_kind == LoopKind::kCounted && s.trip_count <= 0) {
            error(strf("stmt ", id, ": counted loop with trip ",
                       s.trip_count));
          }
          if ((s.loop_kind == LoopKind::kDoWhile ||
               s.loop_kind == LoopKind::kStall)) {
            if (s.cond == kNoOp || s.cond >= dfg.size()) {
              error(strf("stmt ", id, ": loop condition unset"));
            } else if (dfg.op(s.cond).type.width != 1) {
              error(strf("stmt ", id, ": loop condition is not 1 bit"));
            }
          }
          if (s.pipeline.enabled && s.pipeline.ii < 1) {
            error(strf("stmt ", id, ": pipeline II must be >= 1"));
          }
          if (s.latency.min < 1 || s.latency.max < s.latency.min) {
            error(strf("stmt ", id, ": bad latency bound [", s.latency.min,
                       ",", s.latency.max, "]"));
          }
          break;
        case StmtKind::kSeq:
          for (StmtId c : s.items) {
            if (c >= tree.size()) {
              error(strf("stmt ", id, ": child id out of range"));
            }
          }
          break;
        case StmtKind::kWait:
          break;
      }
    }
    for (OpId id = 0; id < dfg.size(); ++id) {
      // Constants may be shared without appearing in the tree.
      if (dfg.op(id).kind == OpKind::kConst) continue;
      if (ref_count[id] == 0) {
        error(strf("op %", id, " (", op_kind_name(dfg.op(id).kind),
                   ") is not referenced by the region tree"));
      } else if (ref_count[id] > 1) {
        error(strf("op %", id, " referenced ", ref_count[id],
                   " times in the region tree"));
      }
    }
  }

  // Defs must appear before uses in program order (except carried edges).
  void check_program_order() {
    const RegionTree& tree = m_.thread.tree;
    const Dfg& dfg = m_.thread.dfg;
    std::vector<int> position(dfg.size(), -1);
    int counter = 0;
    const auto ops = tree.ops_in(tree.root(), /*into_nested_loops=*/true);
    for (OpId op : ops) {
      if (op < dfg.size()) position[op] = counter++;
    }
    for (OpId id = 0; id < dfg.size(); ++id) {
      const Op& o = dfg.op(id);
      if (position[id] < 0 && o.kind != OpKind::kConst) continue;  // reported
      for (std::size_t i = 0; i < o.operands.size(); ++i) {
        if (o.kind == OpKind::kLoopMux && i == 1) continue;
        const OpId d = o.operands[i];
        if (d == kNoOp || d >= dfg.size()) continue;
        if (dfg.op(d).kind == OpKind::kConst) continue;
        if (position[d] < 0) continue;
        if (o.kind != OpKind::kConst && position[id] >= 0 &&
            position[d] > position[id]) {
          error(strf("op %", id, " uses op %", d,
                     " before it is defined in program order"));
        }
      }
    }
  }

  const Module& m_;
  DiagEngine& diags_;
};

}  // namespace

bool validate(const Module& m, DiagEngine& diags) {
  return Validator(m, diags).run();
}

void validate_or_throw(const Module& m) {
  DiagEngine diags;
  if (!validate(m, diags)) {
    throw UserError(strf("module '", m.name, "' failed validation:\n",
                         diags.to_string()));
  }
}

}  // namespace hls::ir
