// The structured control representation (the "CFG" side of the CDFG).
//
// The paper's elaborator produces a CFG whose nodes fork/join control or
// correspond to wait() calls, with every DFG operation attached to a CFG
// edge (control step). We keep the control flow *structured* — a region
// tree of sequences, waits, ifs and loops — which is the form the
// optimizer's CDFG transformations (predication, balancing, pipelining)
// want to manipulate; a flat node/edge CFG view is derivable for export
// (ir/print.hpp) and the scheduler consumes linearized step lists
// (LinearRegion below) exactly as the paper's pass scheduler walks
// "combinational paths in the CFG".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/op.hpp"

namespace hls::ir {

using StmtId = std::uint32_t;
inline constexpr StmtId kNoStmt = static_cast<StmtId>(-1);

enum class StmtKind : std::uint8_t {
  kSeq,   ///< ordered list of child statements
  kWait,  ///< clock boundary ("wait()" in SystemC)
  kOp,    ///< a DFG operation at this program point
  kIf,    ///< structured conditional (removed by predication)
  kLoop,  ///< structured loop
};

enum class LoopKind : std::uint8_t {
  kForever,  ///< while(true); exits only with the thread
  kDoWhile,  ///< body first, continue while `cond` is true
  kCounted,  ///< fixed trip count, known at compile time
  kStall,    ///< wait until `cond` is true (pipeline stall loop)
};

/// User pipelining directive for a loop (paper Section V: the designer
/// specifies II; the tool chooses LI within bounds).
struct PipelineSpec {
  bool enabled = false;
  int ii = 1;  ///< initiation interval in clock cycles
};

/// States-per-iteration bounds for a loop or block (paper: "1 <= latency
/// <= 3 for the do-while loop").
struct LatencyBound {
  int min = 1;
  int max = 64;
};

struct Stmt {
  StmtKind kind = StmtKind::kSeq;
  // kSeq
  std::vector<StmtId> items;
  // kWait
  std::string label;
  // kOp
  OpId op = kNoOp;
  // kIf: condition plus two kSeq bodies (else may be empty kSeq)
  OpId cond = kNoOp;  // also: kLoop kDoWhile continue-condition / kStall go
  StmtId then_body = kNoStmt;
  StmtId else_body = kNoStmt;
  // kLoop
  StmtId body = kNoStmt;
  LoopKind loop_kind = LoopKind::kForever;
  std::int64_t trip_count = 0;  ///< kCounted only
  LatencyBound latency;
  PipelineSpec pipeline;
  bool timed = false;  ///< if true, waits in this region are protocol-exact
};

/// Statement store for one thread. Statement 0 is always the root kSeq.
class RegionTree {
 public:
  RegionTree();

  StmtId root() const { return 0; }
  const Stmt& stmt(StmtId id) const;
  Stmt& stmt_mut(StmtId id);
  std::size_t size() const { return stmts_.size(); }

  StmtId make_seq();
  StmtId make_wait(std::string label = {});
  StmtId make_op(OpId op);
  StmtId make_if(OpId cond, StmtId then_body, StmtId else_body);
  StmtId make_loop(LoopKind kind, StmtId body);

  /// Appends `child` to sequence `seq`.
  void append(StmtId seq, StmtId child);
  /// Replaces the items of sequence `seq`.
  void set_items(StmtId seq, std::vector<StmtId> items);

  /// All OpIds referenced in the subtree rooted at `id`, in program order.
  /// If `into_nested_loops` is false, bodies of nested kLoop statements are
  /// skipped (their ops are scheduled with the nested loop, not the parent).
  std::vector<OpId> ops_in(StmtId id, bool into_nested_loops = true) const;

  /// All loop statements in the subtree of `id`, outermost first.
  std::vector<StmtId> loops_in(StmtId id) const;

  /// True if the subtree contains a kIf statement (i.e. predication has not
  /// run yet / is required before linearization).
  bool has_branches(StmtId id) const;

  /// Number of wait statements in the subtree (nested loops excluded).
  int wait_count(StmtId id) const;

 private:
  std::vector<Stmt> stmts_;
};

/// A linearized schedulable region: `steps[k]` lists the operations whose
/// program-order home is control step k. Step k corresponds to the CFG edge
/// entering state k+1. Produced by `linearize`.
struct LinearRegion {
  /// Ops homed to each step, program order preserved.
  std::vector<std::vector<OpId>> steps;
  /// True if the region came from a timed (protocol) block: I/O must stay
  /// at its home step.
  bool timed = false;

  int num_steps() const { return static_cast<int>(steps.size()); }
  std::vector<OpId> all_ops() const;
};

/// Flattens a branch-free subtree (kSeq of kOp/kWait, nested loops
/// disallowed) into control steps. A trailing wait is implied: ops after
/// the last wait form the final step. Throws InternalError if the subtree
/// still has kIf or kLoop statements.
LinearRegion linearize(const RegionTree& tree, StmtId id);

}  // namespace hls::ir
