#include "ir/module.hpp"

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::ir {

std::uint32_t Module::port_index(std::string_view port_name) const {
  for (std::uint32_t i = 0; i < ports.size(); ++i) {
    if (ports[i].name == port_name) return i;
  }
  throw UserError(strf("module '", name, "' has no port '", port_name, "'"));
}

const Port& Module::port(std::uint32_t index) const {
  HLS_ASSERT(index < ports.size(), "port index out of range");
  return ports[index];
}

Module& Design::add_module(std::string module_name) {
  modules.push_back(Module{});
  modules.back().name = std::move(module_name);
  return modules.back();
}

const Module& Design::module(std::string_view module_name) const {
  for (const Module& m : modules) {
    if (m.name == module_name) return m;
  }
  throw UserError(strf("design '", name, "' has no module '", module_name,
                       "'"));
}

}  // namespace hls::ir
