// Bit-accurate integer types, mirroring SystemC's sc_int/sc_uint that the
// paper's tool elaborates (Figure 1 uses sc_int<16>/sc_int<32>).
#pragma once

#include <cstdint>
#include <string>

namespace hls::ir {

/// A bit-accurate integer type: 1..64 bits, signed or unsigned.
struct Type {
  std::uint8_t width = 32;
  bool is_signed = true;

  friend bool operator==(const Type&, const Type&) = default;
};

/// Canonical type constructors.
constexpr Type int_ty(std::uint8_t width) { return Type{width, true}; }
constexpr Type uint_ty(std::uint8_t width) { return Type{width, false}; }
constexpr Type bool_ty() { return Type{1, false}; }

/// Human-readable name, e.g. "i32", "u1".
std::string type_name(Type t);

/// Wraps `v` to the range of `t`: truncates to t.width bits and then
/// sign- or zero-extends, producing the canonical 64-bit representation.
std::int64_t canonicalize(std::int64_t v, Type t);

/// Smallest / largest representable value of `t` (canonical form).
std::int64_t type_min(Type t);
std::int64_t type_max(Type t);

/// Number of bits needed to represent constant `v` in signed/unsigned form.
int min_width_for(std::int64_t v, bool is_signed);

}  // namespace hls::ir
