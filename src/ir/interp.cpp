#include "ir/interp.hpp"

#include <unordered_map>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::ir {

namespace {

/// Internal control-flow signal: an input stream ran out; finish cleanly.
struct StreamEnd {};
/// Internal control-flow signal: op-execution budget exhausted.
struct BudgetEnd {};

class Interp {
 public:
  Interp(const Module& m, const Stimulus& stim, const RunLimits& limits)
      : m_(m), limits_(limits) {
    values_.assign(m.thread.dfg.size(), 0);
    // Pre-evaluate constants.
    const Dfg& dfg = m.thread.dfg;
    for (OpId id = 0; id < dfg.size(); ++id) {
      if (dfg.op(id).kind == OpKind::kConst) values_[id] = dfg.op(id).imm;
    }
    // Map port indices to streams.
    port_streams_.resize(m.ports.size(), nullptr);
    for (std::uint32_t i = 0; i < m.ports.size(); ++i) {
      auto it = stim.streams.find(m.ports[i].name);
      if (it != stim.streams.end()) port_streams_[i] = &it->second;
    }
  }

  InterpResult run() {
    try {
      exec_stmt(m_.thread.tree.root());
    } catch (const StreamEnd&) {
      result_.stream_exhausted = true;
    } catch (const BudgetEnd&) {
    }
    result_.ops_executed = ops_executed_;
    return std::move(result_);
  }

 private:
  std::int64_t value(OpId id) const { return values_[id]; }

  void exec_op(OpId id) {
    const Dfg& dfg = m_.thread.dfg;
    const Op& o = dfg.op(id);
    if (++ops_executed_ > limits_.max_op_executions) throw BudgetEnd{};

    bool pred_ok = true;
    if (o.pred != kNoOp) pred_ok = (value(o.pred) != 0) == o.pred_value;

    switch (o.kind) {
      case OpKind::kConst:
        return;  // pre-evaluated
      case OpKind::kRead: {
        const std::int64_t idx = current_iteration_index();
        const std::vector<std::int64_t>* stream = port_streams_[o.port];
        if (stream == nullptr || idx >= static_cast<std::int64_t>(stream->size())) {
          throw StreamEnd{};
        }
        values_[id] = canonicalize((*stream)[static_cast<std::size_t>(idx)],
                                   o.type);
        return;
      }
      case OpKind::kWrite:
        if (pred_ok) {
          result_.writes.push_back(
              {o.port, canonicalize(value(o.operands[0]),
                                    m_.ports[o.port].type)});
        }
        return;
      case OpKind::kLoopMux:
        // Value was latched by the enclosing loop at iteration start.
        return;
      default:
        break;
    }
    if (!pred_ok && o.no_speculate) {
      values_[id] = 0;  // guarded op did not execute; value is undefined
      return;
    }
    // Pure op: evaluate (safe to execute even when the predicate is false —
    // that is exactly what hardware speculation does).
    std::int64_t args[3] = {0, 0, 0};
    HLS_ASSERT(o.operands.size() <= 3, "too many operands");
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      args[i] = value(o.operands[i]);
    }
    values_[id] = Dfg::evaluate(o, args, o.operands.size());
  }

  /// Iteration index of the innermost enclosing loop (0 outside loops).
  std::int64_t current_iteration_index() const {
    return loop_stack_.empty() ? 0 : loop_stack_.back().second;
  }

  void exec_stmt(StmtId sid) {
    const RegionTree& tree = m_.thread.tree;
    const Stmt& s = tree.stmt(sid);
    switch (s.kind) {
      case StmtKind::kSeq:
        for (StmtId c : s.items) exec_stmt(c);
        return;
      case StmtKind::kWait:
        return;  // untimed semantics: waits have no effect
      case StmtKind::kOp:
        exec_op(s.op);
        return;
      case StmtKind::kIf: {
        const bool taken = value(s.cond) != 0;
        if (taken) {
          exec_stmt(s.then_body);
        } else if (s.else_body != kNoStmt) {
          exec_stmt(s.else_body);
        }
        return;
      }
      case StmtKind::kLoop:
        exec_loop(sid, s);
        return;
    }
  }

  void exec_loop(StmtId sid, const Stmt& s) {
    if (s.loop_kind == LoopKind::kStall) {
      // Untimed semantics: the stall condition is eventually true; no-op.
      return;
    }
    const Dfg& dfg = m_.thread.dfg;
    // Collect this loop's loop-carried muxes (directly in its body,
    // not in nested loops).
    std::vector<OpId> lmuxes;
    for (OpId op : m_.thread.tree.ops_in(sid, /*into_nested_loops=*/false)) {
      if (dfg.op(op).kind == OpKind::kLoopMux) lmuxes.push_back(op);
    }
    // Initialize carried values.
    for (OpId lm : lmuxes) values_[lm] = value(dfg.op(lm).operands[0]);

    auto& iter_counter = loop_counters_[sid];
    loop_stack_.emplace_back(sid, iter_counter);
    std::int64_t executed = 0;
    while (true) {
      loop_stack_.back().second = iter_counter;
      exec_stmt(s.body);
      ++iter_counter;
      ++executed;
      result_.loop_iterations[sid] = loop_counters_[sid];
      // Latch carried values for the next iteration.
      std::vector<std::int64_t> next;
      next.reserve(lmuxes.size());
      for (OpId lm : lmuxes) next.push_back(value(dfg.op(lm).operands[1]));
      for (std::size_t i = 0; i < lmuxes.size(); ++i) {
        values_[lmuxes[i]] = next[i];
      }
      if (s.loop_kind == LoopKind::kDoWhile) {
        if (value(s.cond) == 0) break;
      } else if (s.loop_kind == LoopKind::kCounted) {
        if (executed >= s.trip_count) break;
      }
      // kForever: runs until a stream ends or the budget is exhausted.
    }
    loop_stack_.pop_back();
  }

  const Module& m_;
  RunLimits limits_;
  std::vector<std::int64_t> values_;
  std::vector<const std::vector<std::int64_t>*> port_streams_;
  /// (loop stmt, current iteration index) innermost last.
  std::vector<std::pair<StmtId, std::int64_t>> loop_stack_;
  std::unordered_map<StmtId, std::int64_t> loop_counters_;
  InterpResult result_;
  std::int64_t ops_executed_ = 0;
};

}  // namespace

InterpResult interpret(const Module& m, const Stimulus& stimulus,
                       const RunLimits& limits) {
  return Interp(m, stimulus, limits).run();
}

std::map<std::string, std::vector<std::int64_t>> writes_by_port(
    const Module& m, const std::vector<TraceEvent>& trace) {
  std::map<std::string, std::vector<std::int64_t>> out;
  for (const TraceEvent& e : trace) {
    out[m.ports[e.port].name].push_back(e.value);
  }
  return out;
}

}  // namespace hls::ir
