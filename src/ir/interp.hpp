// Reference interpreter for the untimed CDFG semantics.
//
// Used as the golden model: optimizer passes and the scheduled/pipelined
// RTL must produce the same I/O behaviour as this interpreter.
//
// I/O convention (the library's substitution for SystemC signal timing,
// documented in DESIGN.md): input ports carry one value per iteration of
// the innermost loop enclosing each read, indexed by that loop's global
// iteration counter. Reads of the same port in the same iteration see the
// same value, matching SystemC signal reads within one reaction. Output
// writes are recorded in program order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace hls::ir {

/// Per-iteration input values, keyed by port name.
struct Stimulus {
  std::map<std::string, std::vector<std::int64_t>> streams;

  /// Convenience: sets the stream for `port`.
  void set(const std::string& port, std::vector<std::int64_t> values) {
    streams[port] = std::move(values);
  }
};

struct TraceEvent {
  std::uint32_t port = 0;
  std::int64_t value = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct InterpResult {
  std::vector<TraceEvent> writes;
  /// Iterations executed per loop StmtId.
  std::map<StmtId, std::int64_t> loop_iterations;
  /// True if execution stopped because an input stream ran out.
  bool stream_exhausted = false;
  std::int64_t ops_executed = 0;
};

struct RunLimits {
  std::int64_t max_op_executions = 10'000'000;
};

/// Executes the module against `stimulus` and returns the trace.
/// Throws UserError on invalid IR encountered during execution.
InterpResult interpret(const Module& m, const Stimulus& stimulus,
                       const RunLimits& limits = {});

/// Extracts per-port value sequences from a trace.
std::map<std::string, std::vector<std::int64_t>> writes_by_port(
    const Module& m, const std::vector<TraceEvent>& trace);

}  // namespace hls::ir
