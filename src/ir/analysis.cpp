#include "ir/analysis.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hls::ir {

namespace {

/// Adjacency including loop-carried edges (producer -> consumer).
std::vector<std::vector<OpId>> full_adjacency(const Dfg& dfg) {
  std::vector<std::vector<OpId>> adj(dfg.size());
  for (OpId id = 0; id < dfg.size(); ++id) {
    const Op& o = dfg.op(id);
    for (OpId operand : o.operands) {
      if (operand != kNoOp) adj[operand].push_back(id);
    }
    if (o.pred != kNoOp) adj[o.pred].push_back(id);
  }
  return adj;
}

struct TarjanState {
  const std::vector<std::vector<OpId>>& adj;
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<OpId> stack;
  int counter = 0;
  std::vector<std::vector<OpId>> sccs;

  explicit TarjanState(const std::vector<std::vector<OpId>>& a)
      : adj(a),
        index(a.size(), -1),
        lowlink(a.size(), -1),
        on_stack(a.size(), false) {}
};

// Iterative Tarjan to survive deep graphs (designs with 6000+ ops).
void tarjan_from(TarjanState& st, OpId root) {
  struct Frame {
    OpId v;
    std::size_t child = 0;
  };
  std::vector<Frame> frames;
  frames.push_back({root});
  st.index[root] = st.lowlink[root] = st.counter++;
  st.stack.push_back(root);
  st.on_stack[root] = true;

  while (!frames.empty()) {
    Frame& f = frames.back();
    const OpId v = f.v;
    if (f.child < st.adj[v].size()) {
      const OpId w = st.adj[v][f.child++];
      if (st.index[w] < 0) {
        st.index[w] = st.lowlink[w] = st.counter++;
        st.stack.push_back(w);
        st.on_stack[w] = true;
        frames.push_back({w});
      } else if (st.on_stack[w]) {
        st.lowlink[v] = std::min(st.lowlink[v], st.index[w]);
      }
      continue;
    }
    // All children done; close the node.
    if (st.lowlink[v] == st.index[v]) {
      std::vector<OpId> comp;
      while (true) {
        const OpId w = st.stack.back();
        st.stack.pop_back();
        st.on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      st.sccs.push_back(std::move(comp));
    }
    frames.pop_back();
    if (!frames.empty()) {
      const OpId parent = frames.back().v;
      st.lowlink[parent] = std::min(st.lowlink[parent], st.lowlink[v]);
    }
  }
}

}  // namespace

std::vector<std::vector<OpId>> nontrivial_sccs(const Dfg& dfg) {
  const auto adj = full_adjacency(dfg);
  TarjanState st(adj);
  for (OpId id = 0; id < dfg.size(); ++id) {
    if (st.index[id] < 0) tarjan_from(st, id);
  }
  std::vector<std::vector<OpId>> out;
  for (auto& comp : st.sccs) {
    bool nontrivial = comp.size() > 1;
    if (comp.size() == 1) {
      const OpId v = comp[0];
      for (OpId w : adj[v]) {
        if (w == v) nontrivial = true;  // self loop
      }
    }
    if (nontrivial) {
      std::sort(comp.begin(), comp.end());
      out.push_back(std::move(comp));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return out;
}

std::vector<int> fanout_cone_sizes(const Dfg& dfg) {
  // Process in reverse topological order; cone(v) = union of cones of users.
  // Exact union via bitsets would be O(N^2/64); designs reach ~6000 ops so
  // that is ~500k words — fine, and exactness keeps the priority stable.
  const auto order = dfg.topo_order();
  const std::size_t n = dfg.size();
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> bits(n * words, 0);
  auto users = direct_users(dfg);
  std::vector<int> sizes(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId v = *it;
    std::uint64_t* row = &bits[v * words];
    for (OpId u : users[v]) {
      row[u / 64] |= std::uint64_t{1} << (u % 64);
      const std::uint64_t* urow = &bits[u * words];
      for (std::size_t w = 0; w < words; ++w) row[w] |= urow[w];
    }
    int count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      count += static_cast<int>(__builtin_popcountll(row[w]));
    }
    sizes[v] = count;
  }
  return sizes;
}

std::vector<std::vector<OpId>> direct_deps(const Dfg& dfg) {
  std::vector<std::vector<OpId>> deps(dfg.size());
  for (OpId id = 0; id < dfg.size(); ++id) {
    const Op& o = dfg.op(id);
    auto& d = deps[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;  // distance 1
      if (o.operands[i] != kNoOp) d.push_back(o.operands[i]);
    }
    if (o.pred != kNoOp) d.push_back(o.pred);
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return deps;
}

std::vector<std::vector<OpId>> direct_users(const Dfg& dfg) {
  auto deps = direct_deps(dfg);
  std::vector<std::vector<OpId>> users(dfg.size());
  for (OpId id = 0; id < dfg.size(); ++id) {
    for (OpId d : deps[id]) users[d].push_back(id);
  }
  return users;
}

}  // namespace hls::ir
