#include "ir/type.hpp"

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::ir {

std::string type_name(Type t) {
  return strf(t.is_signed ? "i" : "u", static_cast<int>(t.width));
}

std::int64_t canonicalize(std::int64_t v, Type t) {
  HLS_ASSERT(t.width >= 1 && t.width <= 64, "bad type width ",
             static_cast<int>(t.width));
  if (t.width == 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << t.width) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  if (t.is_signed && (u >> (t.width - 1)) != 0) {
    u |= ~mask;  // sign-extend
  }
  return static_cast<std::int64_t>(u);
}

std::int64_t type_min(Type t) {
  if (!t.is_signed) return 0;
  if (t.width == 64) return INT64_MIN;
  return -(std::int64_t{1} << (t.width - 1));
}

std::int64_t type_max(Type t) {
  if (t.is_signed) {
    if (t.width == 64) return INT64_MAX;
    return (std::int64_t{1} << (t.width - 1)) - 1;
  }
  // u63's maximum IS INT64_MAX; u64 saturates there. Also keeps the
  // shift below out of signed-overflow territory (1 << 63 then -1).
  if (t.width >= 63) return INT64_MAX;
  return (std::int64_t{1} << t.width) - 1;
}

int min_width_for(std::int64_t v, bool is_signed) {
  if (is_signed) {
    for (int w = 1; w <= 63; ++w) {
      const std::int64_t lo = -(std::int64_t{1} << (w - 1));
      const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
      if (v >= lo && v <= hi) return w;
    }
    return 64;
  }
  if (v < 0) return 64;  // negative values are not representable unsigned
  for (int w = 1; w <= 62; ++w) {
    if (v <= (std::int64_t{1} << w) - 1) return w;
  }
  // Every non-negative int64 fits u63 (its max is INT64_MAX); computing
  // (1 << 63) - 1 to test it would itself overflow.
  return 63;
}

}  // namespace hls::ir
