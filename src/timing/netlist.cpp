#include "timing/netlist.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hls::timing {

double output_arrival_ps(const PathQuery& q, const tech::Library& lib) {
  double in = 0;
  for (double a : q.operand_arrivals_ps) in = std::max(in, a);
  if (q.cls == tech::FuClass::kNone) return in;  // pure wiring

  double t = in;
  if (q.in_mux_inputs >= 2) t += lib.mux_delay_ps(q.in_mux_inputs);
  t += lib.fu_delay_ps(q.cls, q.width);
  if (q.out_mux_inputs >= 2) t += lib.mux_delay_ps(q.out_mux_inputs);
  return t;
}

double register_slack_ps(double arrival_ps, double tclk_ps,
                         const tech::Library& lib) {
  return tclk_ps - (arrival_ps + lib.reg_setup_ps());
}

}  // namespace hls::timing
