// Memoizing timing-query front end (paper Section IV.B.1: the scheduler
// "performs timing queries (whose results are cached appropriately)").
//
// Path arrival math is pure (netlist.hpp); the engine adds memoization of
// unit-delay lookups and query statistics that the profiling experiment
// (Figure 9) reports. The memo tables are dense vectors indexed by
// (class, width) and mux fan-in — the scheduler issues one of these
// lookups per candidate binding, so a tree lookup here was measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/netlist.hpp"

namespace hls::timing {

/// Immutable, shareable unit-delay tables: the (class, width) and
/// mux-fanin lookups every TimingEngine memoizes are identical for a given
/// library, so a session can prewarm them once and hand the same tables to
/// every concurrently running engine (the explore() worker pool). Engines
/// keep their own query/hit counters; the shared tables are only ever
/// read.
struct DelayTables {
  std::vector<std::vector<double>> fu_delay_ps;  ///< [class][width]; <0 = absent
  std::vector<double> mux_delay_ps;              ///< [inputs]; <0 = absent
  /// Fills the tables for widths 1..max_width and mux fan-ins 2..max_mux.
  static DelayTables prewarm(const tech::Library& lib, int max_width = 64,
                             int max_mux = 64);
};

class TimingEngine {
 public:
  /// `shared`, when given, must outlive the engine; cold lookups that miss
  /// it still fall back to the engine-local memo tables.
  TimingEngine(const tech::Library& lib, double tclk_ps,
               const DelayTables* shared = nullptr)
      : lib_(lib), tclk_ps_(tclk_ps), shared_(shared) {}

  const tech::Library& library() const { return lib_; }
  double tclk_ps() const { return tclk_ps_; }

  /// Unit delay with memoization (one library lookup per (class, width)).
  double fu_delay_ps(tech::FuClass c, int width);
  double mux_delay_ps(int inputs);

  /// Full path query: composes operand arrivals, sharing muxes and the
  /// unit delay; counts one timing query.
  double output_arrival_ps(const PathQuery& q);

  /// Slack of registering a value arriving at `arrival_ps`.
  double register_slack_ps(double arrival_ps) const;

  std::uint64_t queries() const { return queries_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  const tech::Library& lib_;
  double tclk_ps_;
  const DelayTables* shared_ = nullptr;
  /// Dense per-class delay-by-width tables; kUncached marks empty slots
  /// (library delays are non-negative).
  static constexpr double kUncached = -1.0;
  std::vector<std::vector<double>> fu_delay_cache_;
  std::vector<double> mux_delay_cache_;
  std::uint64_t queries_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace hls::timing
