#include "timing/engine.hpp"

#include <algorithm>

namespace hls::timing {

DelayTables DelayTables::prewarm(const tech::Library& lib, int max_width,
                                 int max_mux) {
  DelayTables t;
  constexpr auto kLast = static_cast<std::size_t>(tech::FuClass::kMemPort);
  t.fu_delay_ps.resize(kLast + 1);
  for (std::size_t c = 0; c <= kLast; ++c) {
    const auto cls = static_cast<tech::FuClass>(c);
    if (cls == tech::FuClass::kNone) continue;  // free ops never look up
    auto& by_width = t.fu_delay_ps[c];
    by_width.assign(static_cast<std::size_t>(max_width) + 1, -1.0);
    for (int w = 1; w <= max_width; ++w) {
      by_width[static_cast<std::size_t>(w)] = lib.fu_delay_ps(cls, w);
    }
  }
  t.mux_delay_ps.assign(static_cast<std::size_t>(max_mux) + 1, -1.0);
  for (int n = 2; n <= max_mux; ++n) {
    t.mux_delay_ps[static_cast<std::size_t>(n)] = lib.mux_delay_ps(n);
  }
  return t;
}

double TimingEngine::fu_delay_ps(tech::FuClass c, int width) {
  const auto cls = static_cast<std::size_t>(c);
  if (shared_ != nullptr && cls < shared_->fu_delay_ps.size()) {
    const auto& by_width = shared_->fu_delay_ps[cls];
    const auto sw = static_cast<std::size_t>(width);
    if (sw < by_width.size() && by_width[sw] >= 0) {
      ++cache_hits_;
      return by_width[sw];
    }
  }
  if (cls >= fu_delay_cache_.size()) fu_delay_cache_.resize(cls + 1);
  auto& by_width = fu_delay_cache_[cls];
  const auto w = static_cast<std::size_t>(width);
  if (w >= by_width.size()) by_width.resize(w + 1, kUncached);
  if (by_width[w] != kUncached) {
    ++cache_hits_;
    return by_width[w];
  }
  const double d = lib_.fu_delay_ps(c, width);
  by_width[w] = d;
  return d;
}

double TimingEngine::mux_delay_ps(int inputs) {
  const auto n = static_cast<std::size_t>(inputs);
  if (shared_ != nullptr && n < shared_->mux_delay_ps.size() &&
      shared_->mux_delay_ps[n] >= 0) {
    ++cache_hits_;
    return shared_->mux_delay_ps[n];
  }
  if (n >= mux_delay_cache_.size()) mux_delay_cache_.resize(n + 1, kUncached);
  if (mux_delay_cache_[n] != kUncached) {
    ++cache_hits_;
    return mux_delay_cache_[n];
  }
  const double d = lib_.mux_delay_ps(inputs);
  mux_delay_cache_[n] = d;
  return d;
}

double TimingEngine::output_arrival_ps(const PathQuery& q) {
  ++queries_;
  double in = 0;
  for (double a : q.operand_arrivals_ps) in = std::max(in, a);
  if (q.cls == tech::FuClass::kNone) return in;
  double t = in;
  if (q.in_mux_inputs >= 2) t += mux_delay_ps(q.in_mux_inputs);
  t += fu_delay_ps(q.cls, q.width);
  if (q.out_mux_inputs >= 2) t += mux_delay_ps(q.out_mux_inputs);
  return t;
}

double TimingEngine::register_slack_ps(double arrival_ps) const {
  return timing::register_slack_ps(arrival_ps, tclk_ps_, lib_);
}

}  // namespace hls::timing
