#include "timing/engine.hpp"

#include <algorithm>

namespace hls::timing {

double TimingEngine::fu_delay_ps(tech::FuClass c, int width) {
  const auto cls = static_cast<std::size_t>(c);
  if (cls >= fu_delay_cache_.size()) fu_delay_cache_.resize(cls + 1);
  auto& by_width = fu_delay_cache_[cls];
  const auto w = static_cast<std::size_t>(width);
  if (w >= by_width.size()) by_width.resize(w + 1, kUncached);
  if (by_width[w] != kUncached) {
    ++cache_hits_;
    return by_width[w];
  }
  const double d = lib_.fu_delay_ps(c, width);
  by_width[w] = d;
  return d;
}

double TimingEngine::mux_delay_ps(int inputs) {
  const auto n = static_cast<std::size_t>(inputs);
  if (n >= mux_delay_cache_.size()) mux_delay_cache_.resize(n + 1, kUncached);
  if (mux_delay_cache_[n] != kUncached) {
    ++cache_hits_;
    return mux_delay_cache_[n];
  }
  const double d = lib_.mux_delay_ps(inputs);
  mux_delay_cache_[n] = d;
  return d;
}

double TimingEngine::output_arrival_ps(const PathQuery& q) {
  ++queries_;
  double in = 0;
  for (double a : q.operand_arrivals_ps) in = std::max(in, a);
  if (q.cls == tech::FuClass::kNone) return in;
  double t = in;
  if (q.in_mux_inputs >= 2) t += mux_delay_ps(q.in_mux_inputs);
  t += fu_delay_ps(q.cls, q.width);
  if (q.out_mux_inputs >= 2) t += mux_delay_ps(q.out_mux_inputs);
  return t;
}

double TimingEngine::register_slack_ps(double arrival_ps) const {
  return timing::register_slack_ps(arrival_ps, tclk_ps_, lib_);
}

}  // namespace hls::timing
