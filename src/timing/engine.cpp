#include "timing/engine.hpp"

#include <algorithm>

namespace hls::timing {

double TimingEngine::fu_delay_ps(tech::FuClass c, int width) {
  const auto key = std::pair{static_cast<int>(c), width};
  if (auto it = fu_delay_cache_.find(key); it != fu_delay_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const double d = lib_.fu_delay_ps(c, width);
  fu_delay_cache_.emplace(key, d);
  return d;
}

double TimingEngine::mux_delay_ps(int inputs) {
  if (auto it = mux_delay_cache_.find(inputs); it != mux_delay_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const double d = lib_.mux_delay_ps(inputs);
  mux_delay_cache_.emplace(inputs, d);
  return d;
}

double TimingEngine::output_arrival_ps(const PathQuery& q) {
  ++queries_;
  double in = 0;
  for (double a : q.operand_arrivals_ps) in = std::max(in, a);
  if (q.cls == tech::FuClass::kNone) return in;
  double t = in;
  if (q.in_mux_inputs >= 2) t += mux_delay_ps(q.in_mux_inputs);
  t += fu_delay_ps(q.cls, q.width);
  if (q.out_mux_inputs >= 2) t += mux_delay_ps(q.out_mux_inputs);
  return t;
}

double TimingEngine::register_slack_ps(double arrival_ps) const {
  return timing::register_slack_ps(arrival_ps, tclk_ps_, lib_);
}

}  // namespace hls::timing
