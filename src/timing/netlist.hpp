// Datapath path-delay composition (paper Figure 8).
//
// During scheduling, binding an operation to a resource in a state forms a
// combinational path:
//
//   FF --(clk-to-q)--> [input sharing mux] --> FU --> [output sharing mux]
//      --> chained consumers ... --> FF (setup)
//
// Sharing muxes appear whenever the resource is expected to be shared
// (more compatible operations than instances), which is what makes the
// estimation "realistic": the paper's worked example yields
//   40 + 110 + 930 + 110 + 40 = 1230 ps
// for a multiplication on a shared multiplier at Tclk = 1600.
#pragma once

#include <vector>

#include "tech/library.hpp"

namespace hls::timing {

/// One candidate (or committed) binding's path query.
struct PathQuery {
  /// Arrival time of each data operand at the FU/mux input, ps. Operands
  /// coming from registers arrive at reg_clk_to_q; chained operands arrive
  /// at the producer's post-output-mux time.
  std::vector<double> operand_arrivals_ps;
  tech::FuClass cls = tech::FuClass::kNone;
  int width = 32;
  /// Number of inputs of the sharing mux in front of the unit; 0 = none.
  int in_mux_inputs = 0;
  /// Number of inputs of the sharing structure at the unit output; 0 = none.
  int out_mux_inputs = 0;
};

/// Arrival time of the value at the unit's (post-output-mux) output.
/// kNone units (free ops) contribute only wiring: max operand arrival.
double output_arrival_ps(const PathQuery& q, const tech::Library& lib);

/// Slack of registering a value that arrives at `arrival_ps`:
/// slack = Tclk - (arrival + setup). Negative means a timing violation.
double register_slack_ps(double arrival_ps, double tclk_ps,
                         const tech::Library& lib);

/// A recorded critical path for reporting (Figure 8-style narration).
struct PathReport {
  double arrival_ps = 0;
  double slack_ps = 0;
  std::vector<std::string> segments;  ///< human-readable path pieces
};

}  // namespace hls::timing
