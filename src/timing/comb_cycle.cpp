#include "timing/comb_cycle.hpp"

#include "support/diagnostics.hpp"

namespace hls::timing {

bool CombCycleGraph::reachable(int from, int to) const {
  if (from == to) return true;
  std::set<int> seen{from};
  std::vector<int> work{from};
  while (!work.empty()) {
    const int v = work.back();
    work.pop_back();
    auto it = adj_.find(v);
    if (it == adj_.end()) continue;
    for (const auto& [w, count] : it->second) {
      if (count <= 0) continue;
      if (w == to) return true;
      if (seen.insert(w).second) work.push_back(w);
    }
  }
  return false;
}

bool CombCycleGraph::would_create_cycle(int from, int to) const {
  if (from == to) return true;
  return reachable(to, from);
}

void CombCycleGraph::add_edge(int from, int to) {
  ++adj_[from][to];
}

void CombCycleGraph::remove_edge(int from, int to) {
  auto it = adj_.find(from);
  HLS_ASSERT(it != adj_.end(), "remove_edge: no such edge");
  auto jt = it->second.find(to);
  HLS_ASSERT(jt != it->second.end() && jt->second > 0,
             "remove_edge: no such edge");
  if (--jt->second == 0) it->second.erase(jt);
}

bool CombCycleGraph::has_edge(int from, int to) const {
  auto it = adj_.find(from);
  if (it == adj_.end()) return false;
  auto jt = it->second.find(to);
  return jt != it->second.end() && jt->second > 0;
}

std::size_t CombCycleGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& [v, m] : adj_) {
    for (const auto& [w, c] : m) {
      if (c > 0) ++n;
    }
  }
  return n;
}

}  // namespace hls::timing
