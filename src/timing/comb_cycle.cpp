#include "timing/comb_cycle.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hls::timing {

void CombCycleGraph::ensure(int node) {
  if (node >= static_cast<int>(adj_.size())) {
    adj_.resize(static_cast<std::size_t>(node) + 1);
    seen_.resize(static_cast<std::size_t>(node) + 1, 0);
  }
}

bool CombCycleGraph::reachable(int from, int to) const {
  if (from == to) return true;
  if (from >= static_cast<int>(adj_.size())) return false;
  ++seen_epoch_;
  seen_[static_cast<std::size_t>(from)] = seen_epoch_;
  work_.clear();
  work_.push_back(from);
  while (!work_.empty()) {
    const int v = work_.back();
    work_.pop_back();
    for (const auto& [w, count] : adj_[static_cast<std::size_t>(v)]) {
      if (count <= 0) continue;
      if (w == to) return true;
      if (seen_[static_cast<std::size_t>(w)] != seen_epoch_) {
        seen_[static_cast<std::size_t>(w)] = seen_epoch_;
        work_.push_back(w);
      }
    }
  }
  return false;
}

bool CombCycleGraph::would_create_cycle(int from, int to) const {
  if (from == to) return true;
  return reachable(to, from);
}

void CombCycleGraph::add_edge(int from, int to) {
  ensure(std::max(from, to));
  for (auto& [w, count] : adj_[static_cast<std::size_t>(from)]) {
    if (w == to) {
      ++count;
      return;
    }
  }
  adj_[static_cast<std::size_t>(from)].emplace_back(to, 1);
}

void CombCycleGraph::remove_edge(int from, int to) {
  HLS_ASSERT(from < static_cast<int>(adj_.size()),
             "remove_edge: no such edge");
  auto& edges = adj_[static_cast<std::size_t>(from)];
  for (auto it = edges.begin(); it != edges.end(); ++it) {
    if (it->first == to && it->second > 0) {
      if (--it->second == 0) edges.erase(it);
      return;
    }
  }
  HLS_ASSERT(false, "remove_edge: no such edge");
}

bool CombCycleGraph::has_edge(int from, int to) const {
  if (from >= static_cast<int>(adj_.size())) return false;
  for (const auto& [w, count] : adj_[static_cast<std::size_t>(from)]) {
    if (w == to) return count > 0;
  }
  return false;
}

std::size_t CombCycleGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& edges : adj_) {
    for (const auto& [w, c] : edges) {
      if (c > 0) ++n;
    }
  }
  return n;
}

}  // namespace hls::timing
