// False combinational cycle avoidance (paper Figure 6, Section IV.B.3).
//
// Sharing muxes make resource-to-resource wiring permanent: if an op on
// resource A chains into an op on resource B in one state, and another
// state chains B into A, the netlist contains a combinational cycle even
// though no reachable state sensitizes it. The paper's tool avoids such
// bindings entirely rather than reporting false paths to logic synthesis.
//
// CombCycleGraph tracks chaining edges between resource instances across
// all states and answers "would adding this edge close a cycle?". The
// query runs once per chaining candidate inside BindingEngine::try_bind —
// the single hottest path of a large cold solve — so the graph is stored
// as dense adjacency indexed by instance id with an epoch-stamped visited
// scratch: no per-query allocation, no tree lookups. Instance ids are
// small dense integers (alloc::InstanceNumbering), so the dense storage
// is what the id space was designed for.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace hls::timing {

class CombCycleGraph {
 public:
  /// True if adding edge from->to would create a cycle (including the
  /// two-node cycle from->to->from). Self edges are cycles by definition.
  bool would_create_cycle(int from, int to) const;

  /// Records a chaining edge between resource instances (idempotent).
  void add_edge(int from, int to);

  /// Removes one recorded instance of the edge (edges are counted, since
  /// several op pairs may induce the same resource pair).
  void remove_edge(int from, int to);

  bool has_edge(int from, int to) const;
  std::size_t num_edges() const;

 private:
  bool reachable(int from, int to) const;
  void ensure(int node);

  /// adj_[from] = (to, multiplicity) pairs; degrees are tiny (an
  /// instance chains into a handful of others), so linear scans beat any
  /// tree or hash per edge mutation.
  std::vector<std::vector<std::pair<int, int>>> adj_;
  mutable std::vector<std::uint32_t> seen_;  ///< visited iff == seen_epoch_
  mutable std::uint32_t seen_epoch_ = 0;
  mutable std::vector<int> work_;  ///< DFS stack scratch
};

}  // namespace hls::timing
