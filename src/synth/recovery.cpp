#include "synth/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace hls::synth {

double recovery_area(double combinational_area, double worst_slack_ps,
                     double tclk_ps) {
  if (worst_slack_ps >= 0 || tclk_ps <= 0) return 0;
  const double violation = std::min(1.0, -worst_slack_ps / tclk_ps);
  // Convex sizing cost: ~5% of the combinational area for a 10% violation,
  // ~23% for a 40% violation, saturating at 55% for pathological
  // violations (calibrated to the paper's Table 4 penalty range 2.7-33%).
  const double factor = 1.1 * std::pow(violation, 1.3);
  return combinational_area * std::min(factor, 0.55);
}

double downsizing_savings(double combinational_area, double worst_slack_ps,
                          double tclk_ps) {
  if (worst_slack_ps <= 0 || tclk_ps <= 0) return 0;
  const double headroom = std::min(1.0, worst_slack_ps / tclk_ps);
  // Smaller cells on non-critical paths: up to ~30% of the combinational
  // area at very generous slack, flattening out (sizing has diminishing
  // returns once everything is minimum size).
  return -0.30 * combinational_area * std::pow(headroom, 0.8);
}

AreaReport apply_recovery(AreaReport base, double worst_slack_ps,
                          double tclk_ps) {
  const double comb = base.functional_units + base.sharing_muxes;
  base.timing_recovery =
      worst_slack_ps < 0
          ? recovery_area(comb, worst_slack_ps, tclk_ps)
          : downsizing_savings(comb, worst_slack_ps, tclk_ps);
  return base;
}

}  // namespace hls::synth
