// Post-scheduling area estimation — the library's stand-in for the logic
// synthesis the paper's tool calls for area estimates.
//
// Components: function units (from the final resource set), sharing muxes
// (input/output networks on shared instances), registers (step-crossing
// values, pipeline register chains, loop-carried and output registers),
// and FSM control. Calibrated against the paper's Table 3
// (S=16094, P2=24010, P1=30491 for Example 1).
#pragma once

#include "rtl/fsmd.hpp"
#include "tech/library.hpp"

namespace hls::synth {

struct AreaReport {
  double functional_units = 0;
  double sharing_muxes = 0;
  double registers = 0;
  double control = 0;
  /// Extra area logic synthesis spends recovering negative slack
  /// (gate upsizing); see recovery.hpp.
  double timing_recovery = 0;

  double total() const {
    return functional_units + sharing_muxes + registers + control +
           timing_recovery;
  }
};

/// Estimates the silicon area of the machine (timing recovery excluded;
/// apply_recovery adds it from the schedule's worst slack).
AreaReport estimate_area(const rtl::ModuleMachine& mm,
                         const tech::Library& lib);

}  // namespace hls::synth
