// Timing-driven area recovery — the mechanism behind the paper's Table 4.
//
// When a schedule is handed to logic synthesis with negative slack, the
// synthesizer must upsize gates and restructure logic on the violating
// paths to make timing. That costs area, convexly in the relative
// violation: small violations are cheap (swap in faster cells), large
// ones force wholesale restructuring of the cone.
#pragma once

#include "synth/area.hpp"

namespace hls::synth {

/// Extra area needed to close `worst_slack_ps` of violation at the given
/// clock. Returns 0 when slack is non-negative. `combinational_area` is
/// the logic that sizing can act on (function units + muxes).
double recovery_area(double combinational_area, double worst_slack_ps,
                     double tclk_ps);

/// The flip side: with generous positive slack logic synthesis downsizes
/// gates ("more non-timing critical (hence smaller) resources may require
/// less total area", paper Section V) — returns a NEGATIVE area delta,
/// saturating around -30% of the combinational area.
double downsizing_savings(double combinational_area, double worst_slack_ps,
                          double tclk_ps);

/// Applies recovery to a report given the schedule's worst slack.
AreaReport apply_recovery(AreaReport base, double worst_slack_ps,
                          double tclk_ps);

}  // namespace hls::synth
