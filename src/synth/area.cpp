#include "synth/area.hpp"

#include <map>
#include <set>

#include "support/diagnostics.hpp"

namespace hls::synth {

using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;

namespace {

/// Values needing a register: consumed in a later step or loop-carried.
std::set<OpId> registered_values(const rtl::ModuleMachine& mm) {
  std::set<OpId> regs;
  const ir::Dfg& dfg = mm.module->thread.dfg;
  const auto& s = mm.loop.schedule;
  for (OpId id : mm.loop.region_ops) {
    const Op& o = dfg.op(id);
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      const OpId d = o.operands[i];
      if (d == kNoOp || dfg.is_const(d)) continue;
      if (!s.placement[d].scheduled || !s.placement[id].scheduled) continue;
      const bool carried = o.kind == OpKind::kLoopMux && i == 1;
      if (carried || s.placement[d].step != s.placement[id].step) {
        regs.insert(d);
      }
    }
    if (o.pred != kNoOp && !dfg.is_const(o.pred) &&
        s.placement[o.pred].scheduled && s.placement[id].scheduled &&
        s.placement[o.pred].step != s.placement[id].step) {
      regs.insert(o.pred);
    }
  }
  return regs;
}

}  // namespace

AreaReport estimate_area(const rtl::ModuleMachine& mm,
                         const tech::Library& lib) {
  AreaReport r;
  const ir::Dfg& dfg = mm.module->thread.dfg;
  const auto& s = mm.loop.schedule;

  // ---- Function units -------------------------------------------------------
  for (const auto& pool : s.resources.pools) {
    r.functional_units += pool.count * lib.fu_area(pool.cls, pool.width);
  }

  // ---- Sharing muxes ---------------------------------------------------------
  // Each shared instance (hosting n > 1 ops) carries two operand sharing
  // muxes and one output distribution network of n inputs.
  std::map<std::pair<int, int>, int> instance_ops;
  for (OpId id : mm.loop.region_ops) {
    const auto& pl = s.placement[id];
    if (pl.pool >= 0) ++instance_ops[{pl.pool, pl.instance}];
  }
  for (const auto& [key, n] : instance_ops) {
    if (n < 2) continue;
    const auto& pool = s.resources.pools[static_cast<std::size_t>(key.first)];
    r.sharing_muxes += 3 * lib.mux_area(n, pool.width);
  }

  // ---- Registers ----------------------------------------------------------------
  int reg_bits = 0;
  for (OpId id : registered_values(mm)) {
    reg_bits += dfg.op(id).type.width;
  }
  reg_bits += mm.loop.folded.pipe_register_bits();
  for (const auto& cr : mm.loop.folded.carried_regs) reg_bits += cr.width;
  for (const auto& p : mm.module->ports) {
    if (p.dir == ir::PortDir::kOut) reg_bits += p.type.width;  // port regs
  }
  r.registers = reg_bits * lib.reg_area_per_bit();

  // ---- Control --------------------------------------------------------------------
  const int kernel_edges =
      std::min(mm.loop.folded.ii, mm.loop.folded.li);
  r.control = lib.fsm_area(kernel_edges) +
              lib.fsm_area(1) * mm.loop.folded.stages;  // stage valid bits

  return r;
}

}  // namespace hls::synth
