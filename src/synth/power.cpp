#include "synth/power.hpp"

#include <map>

#include "support/diagnostics.hpp"

namespace hls::synth {

using ir::OpId;

PowerReport estimate_power(const rtl::ModuleMachine& mm,
                           const tech::Library& lib, double tclk_ps,
                           const AreaReport& area, double activity) {
  PowerReport r;
  const auto& s = mm.loop.schedule;
  const int kernel_edges = std::min(mm.loop.folded.ii, mm.loop.folded.li);

  // Dynamic: each op executes once per iteration; an iteration begins
  // every II cycles at full activity, i.e. each op switches its unit once
  // per II cycles.
  double energy_per_iteration_pj = 0;
  for (OpId id : mm.loop.region_ops) {
    const auto& pl = s.placement[id];
    if (pl.pool < 0) continue;
    const auto& pool = s.resources.pools[static_cast<std::size_t>(pl.pool)];
    energy_per_iteration_pj += lib.fu_energy_pj(pool.cls, pool.width);
  }
  // Register write energy: every registered bit toggles once per iteration.
  const double reg_bits = area.registers / lib.reg_area_per_bit();
  energy_per_iteration_pj += lib.reg_energy_pj(1) * reg_bits;

  const double ii_cycles = static_cast<double>(mm.loop.initiation_interval());
  const double iteration_time_ns = ii_cycles * tclk_ps / 1000.0;
  HLS_ASSERT(iteration_time_ns > 0, "bad clock period");
  // pJ / ns == mW.
  r.dynamic_mw = activity * energy_per_iteration_pj / iteration_time_ns;

  // Control switching: the FSM and stage valids toggle every cycle.
  const double control_pj =
      lib.fsm_area(kernel_edges) * lib.energy_per_area_pj();
  r.dynamic_mw += control_pj / (tclk_ps / 1000.0);

  // Leakage is proportional to total silicon (nW -> mW).
  r.leakage_mw = lib.leakage_nw(area.total()) / 1e6;
  return r;
}

}  // namespace hls::synth
