// Power estimation for the area/delay/power exploration of the paper's
// Figures 10-11: dynamic power from per-operation switching energy at the
// achieved activity, plus leakage proportional to area.
#pragma once

#include "synth/area.hpp"

namespace hls::synth {

struct PowerReport {
  double dynamic_mw = 0;
  double leakage_mw = 0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

/// Estimates power at clock period `tclk_ps`. `activity` scales switching
/// (1.0 = the loop initiates as fast as its II allows).
PowerReport estimate_power(const rtl::ModuleMachine& mm,
                           const tech::Library& lib, double tclk_ps,
                           const AreaReport& area, double activity = 1.0);

}  // namespace hls::synth
