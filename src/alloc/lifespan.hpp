// Timing-aware ASAP / ALAP life spans (paper Section IV.A).
//
// Improving on pure step-level mobility (Sharma-Jain), life spans are
// computed with approximate timing: a greedy chain-packing pass walks the
// DFG in topological order accumulating combinational delay (ignoring
// sharing muxes, as the paper specifies for the initial estimate) and cuts
// the chain at register boundaries when the usable cycle time would be
// exceeded. ALAP mirrors the pass from the region's deadline.
#pragma once

#include <vector>

#include "ir/region.hpp"
#include "tech/library.hpp"

namespace hls::alloc {

struct OpSpan {
  int asap = 0;
  int alap = 0;
  /// Optimistic arrival of the op's output within its ASAP step (ps).
  double asap_arrival_ps = 0;
  bool in_region = false;

  int mobility() const { return alap - asap; }
};

struct LifespanResult {
  std::vector<OpSpan> spans;  ///< indexed by OpId; in_region marks members
  bool feasible = true;       ///< false if some op has alap < asap
  ir::OpId first_infeasible = ir::kNoOp;
};

/// Computes spans for all ops of `region` over `num_steps` control steps.
/// If `anchor_io` is true (timed regions), reads/writes are pinned to their
/// home step.
///
/// `window_min` / `window_max` (optional, indexed by OpId, -1 = none) fold
/// absolute I/O timing windows (mem::WindowSpec) into the spans: the ASAP
/// pass clamps an op's earliest step up to window_min (propagating to its
/// consumers), and the ALAP pass folds window_max into the register-cut
/// count *before* it is stored, so producers of a windowed op are pulled
/// earlier too. Both scheduler backends then enforce the window purely
/// through release()/deadline().
LifespanResult compute_lifespans(const ir::Dfg& dfg,
                                 const ir::LinearRegion& region,
                                 int num_steps, const tech::Library& lib,
                                 double tclk_ps, bool anchor_io,
                                 const std::vector<int>* window_min = nullptr,
                                 const std::vector<int>* window_max = nullptr);

}  // namespace hls::alloc
