// Initial resource set estimation (paper Section IV.A).
//
// For each resource pool, a lower bound on the instance count is derived
// from interval demand over the timing-aware ASAP/ALAP life spans: for
// every step interval I, the ops that must execute inside I (span ⊆ I)
// need at least ceil(N_eff / |I|) instances, where N_eff discounts pairs
// of mutually exclusive operations (opposite predicate polarities from the
// predicate transform). For pipelined loops each instance has only II
// usable slots, adding the bound ceil(N_eff_total / II).
#pragma once

#include "alloc/cluster.hpp"
#include "alloc/lifespan.hpp"

namespace hls::alloc {

struct EstimateOptions {
  /// Pipelining initiation interval; 0 = not pipelined.
  int pipeline_ii = 0;
  /// Account for predicate-based mutual exclusivity (paper IV.A improves
  /// over Sharma-Jain with this); disable for ablation studies.
  bool use_mutual_exclusivity = true;
};

/// Fills `set.pools[*].count` with lower bounds and returns the updated
/// set. `spans` must come from compute_lifespans over the same region.
ResourceSet estimate_initial_counts(const ir::Dfg& dfg, ResourceSet set,
                                    const LifespanResult& spans,
                                    int num_steps,
                                    const EstimateOptions& opts = {});

/// True if two ops can never execute together: same predicate op with
/// opposite polarity.
bool mutually_exclusive(const ir::Dfg& dfg, ir::OpId a, ir::OpId b);

/// Mutual exclusivity precomputed as a symmetric bitset matrix, compacted
/// over the predicated ops (unpredicated ops are never exclusive, so they
/// need no row). Build it once per scheduling problem; `exclusive` is then
/// an O(1) lookup instead of re-deriving predicates inside the binding
/// inner loops.
class ExclusivityMatrix {
 public:
  ExclusivityMatrix() = default;
  ExclusivityMatrix(const ir::Dfg& dfg, const std::vector<ir::OpId>& ops);

  /// Same verdict as mutually_exclusive(dfg, a, b) for ops passed at
  /// construction; false for anything else.
  bool exclusive(ir::OpId a, ir::OpId b) const {
    if (a >= index_.size() || b >= index_.size()) return false;
    const int ia = index_[a];
    const int ib = index_[b];
    if (ia < 0 || ib < 0) return false;
    return bits_[static_cast<std::size_t>(ia) * n_ +
                 static_cast<std::size_t>(ib)];
  }

  /// Number of predicated ops (matrix rows).
  std::size_t rows() const { return n_; }

 private:
  std::vector<int> index_;  ///< OpId -> compact row; -1 = unpredicated
  std::size_t n_ = 0;
  std::vector<bool> bits_;  ///< n_ x n_, symmetric
};

}  // namespace hls::alloc
