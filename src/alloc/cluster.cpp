#include "alloc/cluster.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace hls::alloc {

using ir::OpId;
using tech::FuClass;

std::vector<std::vector<OpId>> ResourceSet::members() const {
  std::vector<std::vector<OpId>> out(pools.size());
  for (OpId id = 0; id < op_pool.size(); ++id) {
    if (op_pool[id] >= 0) out[static_cast<std::size_t>(op_pool[id])].push_back(id);
  }
  return out;
}

int ResourceSet::total_instances() const {
  int n = 0;
  for (const ResourcePool& p : pools) n += p.count;
  return n;
}

std::vector<int> ResourceSet::instance_bases() const {
  std::vector<int> bases(pools.size(), 0);
  int base = 0;
  for (std::size_t i = 0; i < pools.size(); ++i) {
    bases[i] = base;
    base += pools[i].count;
  }
  return bases;
}

InstanceNumbering ResourceSet::numbering() const {
  InstanceNumbering n;
  n.bases = instance_bases();
  n.total = total_instances();
  return n;
}

ResourceSet cluster_resources(const ir::Dfg& dfg,
                              const std::vector<OpId>& region_ops,
                              const tech::Library& lib) {
  ResourceSet out;
  out.op_pool.assign(dfg.size(), -1);

  // Group by class.
  std::map<FuClass, std::vector<OpId>> by_class;
  for (OpId id : region_ops) {
    const FuClass c = tech::fu_class_for(dfg, id);
    if (c == FuClass::kNone) continue;
    by_class[c].push_back(id);
  }

  for (auto& [cls, ops] : by_class) {
    // Sort by width ascending; greedily cut when max would exceed 2*min.
    std::sort(ops.begin(), ops.end(), [&](OpId a, OpId b) {
      const int wa = tech::resource_width_for(dfg, a);
      const int wb = tech::resource_width_for(dfg, b);
      return wa != wb ? wa < wb : a < b;
    });
    std::size_t start = 0;
    int cluster_index = 0;
    while (start < ops.size()) {
      const int w_min = tech::resource_width_for(dfg, ops[start]);
      std::size_t end = start;
      int w_max = w_min;
      while (end < ops.size()) {
        const int w = tech::resource_width_for(dfg, ops[end]);
        if (w > 2 * w_min) break;
        w_max = std::max(w_max, w);
        ++end;
      }
      ResourcePool pool;
      pool.cls = cls;
      pool.width = w_max;
      pool.count = 0;
      pool.latency_cycles = lib.fu_latency_cycles(cls);
      pool.name = strf(tech::fu_class_name(cls), w_max,
                       cluster_index > 0 ? strf("#", cluster_index) : "");
      const int pool_idx = static_cast<int>(out.pools.size());
      for (std::size_t i = start; i < end; ++i) {
        out.op_pool[ops[i]] = pool_idx;
      }
      out.pools.push_back(std::move(pool));
      ++cluster_index;
      start = end;
    }
  }
  return out;
}

}  // namespace hls::alloc
