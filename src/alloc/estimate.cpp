#include "alloc/estimate.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"

namespace hls::alloc {

using ir::Dfg;
using ir::kNoOp;
using ir::OpId;

bool mutually_exclusive(const Dfg& dfg, OpId a, OpId b) {
  const ir::Op& oa = dfg.op(a);
  const ir::Op& ob = dfg.op(b);
  return oa.pred != kNoOp && oa.pred == ob.pred &&
         oa.pred_value != ob.pred_value;
}

ExclusivityMatrix::ExclusivityMatrix(const Dfg& dfg,
                                     const std::vector<OpId>& ops) {
  index_.assign(dfg.size(), -1);
  std::vector<OpId> predicated;
  for (OpId id : ops) {
    if (dfg.op(id).pred != kNoOp) {
      index_[id] = static_cast<int>(predicated.size());
      predicated.push_back(id);
    }
  }
  n_ = predicated.size();
  bits_.assign(n_ * n_, false);
  // Exclusive pairs share a predicate with opposite polarity, so only
  // true-side x false-side pairs within one predicate group need bits.
  std::map<OpId, std::pair<std::vector<int>, std::vector<int>>> by_pred;
  for (OpId id : predicated) {
    const ir::Op& o = dfg.op(id);
    auto& group = by_pred[o.pred];
    (o.pred_value ? group.first : group.second).push_back(index_[id]);
  }
  for (const auto& [pred, group] : by_pred) {
    for (int i : group.first) {
      for (int j : group.second) {
        bits_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)] =
            true;
        bits_[static_cast<std::size_t>(j) * n_ + static_cast<std::size_t>(i)] =
            true;
      }
    }
  }
}

namespace {

/// Effective op count after pairing off mutually exclusive ops: per
/// predicate op, the true-side and false-side ops can share instances
/// pairwise, so they contribute max(#true, #false) instead of the sum.
int effective_count(const Dfg& dfg, const std::vector<OpId>& ops) {
  int unpredicated = 0;
  std::map<OpId, std::pair<int, int>> by_pred;  // pred -> (true, false)
  for (OpId id : ops) {
    const ir::Op& o = dfg.op(id);
    if (o.pred == kNoOp) {
      ++unpredicated;
    } else if (o.pred_value) {
      ++by_pred[o.pred].first;
    } else {
      ++by_pred[o.pred].second;
    }
  }
  int n = unpredicated;
  for (const auto& [pred, tf] : by_pred) {
    n += std::max(tf.first, tf.second);
  }
  return n;
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

ResourceSet estimate_initial_counts(const Dfg& dfg, ResourceSet set,
                                    const LifespanResult& spans,
                                    int num_steps,
                                    const EstimateOptions& opts) {
  const auto members = set.members();
  for (std::size_t p = 0; p < set.pools.size(); ++p) {
    const auto& ops = members[p];
    if (ops.empty()) {
      set.pools[p].count = 0;
      continue;
    }
    const int occupancy = std::max(1, set.pools[p].latency_cycles);
    int demand = 1;
    // Interval analysis over all [a, b] step windows.
    for (int a = 0; a < num_steps; ++a) {
      for (int b = a; b < num_steps; ++b) {
        std::vector<OpId> inside;
        for (OpId id : ops) {
          const OpSpan& sp = spans.spans[id];
          if (sp.asap >= a && sp.alap <= b) inside.push_back(id);
        }
        if (inside.empty()) continue;
        const int n = opts.use_mutual_exclusivity
                          ? effective_count(dfg, inside)
                          : static_cast<int>(inside.size());
        demand = std::max(
            demand, ceil_div(n * occupancy, b - a + 1));
      }
    }
    if (opts.pipeline_ii > 0) {
      // An instance is busy on all steps equivalent modulo II, so it offers
      // at most II slots regardless of the latency interval.
      const int n = opts.use_mutual_exclusivity
                        ? effective_count(dfg, ops)
                        : static_cast<int>(ops.size());
      demand = std::max(demand,
                        ceil_div(n * occupancy, opts.pipeline_ii));
    }
    set.pools[p].count = demand;
  }
  return set;
}

}  // namespace hls::alloc
