// Resource type clustering (paper Section IV.A): operations map to
// resource types combining the operation class with operand/result widths.
// "E.g. A1[7:0] + B1[4:0] and A2[5:0] + B2[6:0] could be implemented by an
// 8x6 bit adder. We do not merge resources of very different bit widths."
//
// Clustering rule: within one function-unit class, ops are merged into one
// pool while the pool's max width is at most twice its min width.
#pragma once

#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "tech/library.hpp"

namespace hls::alloc {

struct ResourcePool {
  tech::FuClass cls = tech::FuClass::kNone;
  int width = 0;          ///< instance width = max member width
  int count = 0;          ///< number of instances (set by the estimator)
  int latency_cycles = 0; ///< >0 for multi-cycle units
  std::string name;       ///< e.g. "mul32", "add32#1"

  /// Memory pools (cls == kMemPort, built from a mem::MemorySpec array
  /// rather than by clustering): instances are bank-major,
  /// `instance = bank * ports_per_bank() + offset`, offsets laid out
  /// [read-only)[write-only)[read-write). `count` is kept equal to
  /// `banks * ports_per_bank()` by every relaxation action.
  bool is_memory = false;
  int mem_array = -1;        ///< index into MemorySpec::arrays
  int banks = 1;
  int bank_read_ports = 0;
  int bank_write_ports = 0;
  int bank_rw_ports = 0;

  int ports_per_bank() const {
    return bank_read_ports + bank_write_ports + bank_rw_ports;
  }
  /// Direction compatibility of a within-bank port offset (memory pools).
  bool offset_reads(int offset) const {
    return offset < bank_read_ports ||
           offset >= bank_read_ports + bank_write_ports;
  }
  bool offset_writes(int offset) const { return offset >= bank_read_ports; }
};

/// Dense global numbering of the instances of a ResourceSet: instance
/// `inst` of pool `pool` is `bases[pool] + inst`, a contiguous index in
/// [0, total). Flat per-instance tables (occupancy, forbidden bindings,
/// per-instance op counts) are sized `total` and addressed through
/// `global` so every consumer agrees on the numbering.
struct InstanceNumbering {
  std::vector<int> bases;  ///< first global index per pool (prefix sums)
  int total = 0;           ///< instances across all pools

  int global(int pool, int inst) const {
    return bases[static_cast<std::size_t>(pool)] + inst;
  }
};

struct ResourceSet {
  std::vector<ResourcePool> pools;
  /// Pool index per OpId; -1 for ops that need no function unit.
  std::vector<int> op_pool;

  int pool_of(ir::OpId op) const {
    return op < op_pool.size() ? op_pool[op] : -1;
  }
  /// Ops mapped to each pool.
  std::vector<std::vector<ir::OpId>> members() const;
  /// Total instances across pools.
  int total_instances() const;
  /// First global instance index per pool (prefix sums of the counts):
  /// flat occupancy tables address instances as bases[pool] + instance.
  std::vector<int> instance_bases() const;
  /// Both of the above as one value (the counts must not change while a
  /// numbering is in use).
  InstanceNumbering numbering() const;
};

/// Builds pools for the given region ops (count fields left at 0).
ResourceSet cluster_resources(const ir::Dfg& dfg,
                              const std::vector<ir::OpId>& region_ops,
                              const tech::Library& lib);

}  // namespace hls::alloc
