#include "alloc/lifespan.hpp"

#include <algorithm>

#include "ir/analysis.hpp"
#include "support/diagnostics.hpp"

namespace hls::alloc {

using ir::Dfg;
using ir::kNoOp;
using ir::LinearRegion;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using tech::FuClass;

namespace {

double optimistic_fu_delay(const Dfg& dfg, OpId id, const tech::Library& lib) {
  const FuClass c = tech::fu_class_for(dfg, id);
  if (c == FuClass::kNone) return 0;
  if (lib.fu_latency_cycles(c) > 0) return 0;  // multi-cycle: registered
  return lib.fu_delay_ps(c, tech::resource_width_for(dfg, id));
}

}  // namespace

LifespanResult compute_lifespans(const Dfg& dfg, const LinearRegion& region,
                                 int num_steps, const tech::Library& lib,
                                 double tclk_ps, bool anchor_io,
                                 const std::vector<int>* window_min,
                                 const std::vector<int>* window_max) {
  HLS_ASSERT(num_steps >= 1, "region needs at least one step");
  LifespanResult out;
  out.spans.assign(dfg.size(), OpSpan{});

  std::vector<int> home(dfg.size(), -1);
  for (int s = 0; s < region.num_steps(); ++s) {
    for (OpId id : region.steps[s]) {
      out.spans[id].in_region = true;
      home[id] = std::min(s, num_steps - 1);
    }
  }

  // Usable combinational window per cycle (optimistic: no sharing muxes).
  const double usable = tclk_ps - lib.reg_clk_to_q_ps() - lib.reg_setup_ps();
  const double launch = lib.reg_clk_to_q_ps();

  // Dependence model must mirror the scheduler's: predicate edges only
  // matter for no-speculate consumers (writes). Speculable ops execute
  // regardless of their predicate, so the predicate producer does not
  // constrain their life span.
  std::vector<std::vector<OpId>> deps(dfg.size());
  std::vector<std::vector<OpId>> users(dfg.size());
  for (OpId id = 0; id < dfg.size(); ++id) {
    const Op& o = dfg.op(id);
    auto& d = deps[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;  // carried
      if (o.operands[i] != kNoOp) d.push_back(o.operands[i]);
    }
    if (o.pred != kNoOp && o.no_speculate) d.push_back(o.pred);
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
    for (OpId x : d) users[x].push_back(id);
  }
  const auto order = dfg.topo_order();

  // ---- ASAP: forward chain packing ----------------------------------------
  for (OpId id : order) {
    OpSpan& sp = out.spans[id];
    if (!sp.in_region) continue;
    const Op& o = dfg.op(id);
    const double fu = optimistic_fu_delay(dfg, id, lib);
    const FuClass cls = tech::fu_class_for(dfg, id);
    const int mc_latency =
        cls == FuClass::kNone ? 0 : lib.fu_latency_cycles(cls);

    int step = 0;
    double arr_in = launch;  // region inputs / carried values are registered
    for (OpId d : deps[id]) {
      if (!out.spans[d].in_region) continue;  // consts / outer values
      const OpSpan& ds = out.spans[d];
      const int d_result =
          ds.asap;  // multi-cycle result step already folded into asap below
      if (d_result > step) {
        step = d_result;
        arr_in = ds.asap_arrival_ps;
      } else if (d_result == step) {
        arr_in = std::max(arr_in, ds.asap_arrival_ps);
      }
    }
    if (mc_latency > 0) {
      // Operands must be registered: if anything chains into this step,
      // start one step later. Result is registered after mc_latency cycles.
      bool chained = false;
      for (OpId d : deps[id]) {
        if (out.spans[d].in_region && out.spans[d].asap == step &&
            out.spans[d].asap_arrival_ps > launch) {
          chained = true;
        }
      }
      if (chained) ++step;
      step += mc_latency;  // result step
      arr_in = launch;
      out.spans[id].asap = step;
      out.spans[id].asap_arrival_ps = launch;
    } else {
      double arr_out = arr_in + fu;
      if (arr_out + lib.reg_setup_ps() > tclk_ps) {
        // Cut the chain: register inputs, move to the next step.
        ++step;
        arr_out = launch + fu;
        HLS_ASSERT(fu <= usable,
                   "operation '", o.name, "' (", tech::fu_class_name(cls),
                   ") cannot fit in the clock period even alone: ", fu,
                   " > ", usable, " ps");
      }
      sp.asap = step;
      sp.asap_arrival_ps = arr_out;
    }
    if (anchor_io && ir::is_io(o.kind) && home[id] >= 0) {
      sp.asap = std::max(sp.asap, home[id]);
      if (sp.asap != step) sp.asap_arrival_ps = launch + fu;
    }
    // Timing-window lower bound: the op may not start before wmin, and
    // because consumers read sp.asap the pin propagates downstream.
    if (window_min != nullptr && !window_min->empty() &&
        (*window_min)[id] >= 0) {
      const int wmin = std::min((*window_min)[id], num_steps - 1);
      if (wmin > sp.asap) {
        sp.asap = wmin;
        sp.asap_arrival_ps = launch + fu;
      }
    }
  }

  // ---- ALAP: mirrored backward chain packing --------------------------------
  // tail(op): combinational delay from the op's inputs to the next register
  // boundary below it; cuts_below: register stages strictly below the op.
  std::vector<double> tail(dfg.size(), 0);
  std::vector<int> cuts_below(dfg.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId id = *it;
    OpSpan& sp = out.spans[id];
    if (!sp.in_region) continue;
    const Op& o = dfg.op(id);
    const double fu = optimistic_fu_delay(dfg, id, lib);
    const FuClass cls = tech::fu_class_for(dfg, id);
    const int mc_latency =
        cls == FuClass::kNone ? 0 : lib.fu_latency_cycles(cls);

    double max_tail = 0;
    int max_cuts = 0;
    for (OpId u : users[id]) {
      if (!out.spans[u].in_region) continue;
      // Skip the carried edge: it constrains across iterations, not within.
      if (dfg.op(u).kind == OpKind::kLoopMux &&
          dfg.op(u).operands[1] == id) {
        continue;
      }
      if (cuts_below[u] > max_cuts) {
        max_cuts = cuts_below[u];
        max_tail = tail[u];
      } else if (cuts_below[u] == max_cuts) {
        max_tail = std::max(max_tail, tail[u]);
      }
    }
    double t = max_tail + fu;
    int cuts = max_cuts;
    if (launch + t + lib.reg_setup_ps() > tclk_ps) {
      // The op cannot chain into its critical consumer: register boundary.
      ++cuts;
      t = fu;
    }
    if (mc_latency > 0) {
      cuts += mc_latency;
      t = 0;
    }
    // Timing-window upper bound, folded into the cut count *before* it is
    // stored so producers of the windowed op inherit the earlier deadline
    // (unlike the anchor_io clamp below, which is op-local by design: home
    // steps already order the whole timed region).
    if (window_max != nullptr && !window_max->empty() &&
        (*window_max)[id] >= 0) {
      const int floor_cuts = num_steps - 1 - (*window_max)[id];
      if (floor_cuts > cuts) {
        cuts = floor_cuts;
        t = fu;  // the window acts as a register boundary below the op
      }
    }
    tail[id] = t;
    cuts_below[id] = cuts;
    sp.alap = num_steps - 1 - cuts;
    if (anchor_io && ir::is_io(o.kind) && home[id] >= 0) {
      sp.alap = std::min(sp.alap, home[id]);
    }
    if (sp.alap < sp.asap && out.feasible) {
      out.feasible = false;
      out.first_infeasible = id;
    }
  }
  return out;
}

}  // namespace hls::alloc
