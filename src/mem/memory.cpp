#include "mem/memory.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace hls::mem {

int ArraySpec::bank_of(int elem) const {
  HLS_ASSERT(elem >= 0 && elem < num_elems, "bank_of: element ", elem,
             " outside array ", name, " [0,", num_elems, ")");
  if (banks <= 1) return 0;
  if (interleaved) return elem % banks;
  const int block = (num_elems + banks - 1) / banks;
  return elem / block;
}

int MemorySpec::array_for_port(int port) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const ArraySpec& a = arrays[i];
    if (port >= a.first_port && port < a.first_port + a.num_elems) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void MemorySpec::validate() const {
  for (const ArraySpec& a : arrays) {
    HLS_ASSERT(a.first_port >= 0 && a.num_elems > 0, "memory array ", a.name,
               ": empty or negative port range");
    HLS_ASSERT(a.banks >= 1 && a.banks <= a.max_banks, "memory array ", a.name,
               ": banks ", a.banks, " outside [1,", a.max_banks, "]");
    HLS_ASSERT(a.ports_per_bank() >= 1, "memory array ", a.name,
               ": no ports per bank");
    HLS_ASSERT(a.bank_read_ports >= 0 && a.bank_write_ports >= 0 &&
                   a.bank_rw_ports >= 0,
               "memory array ", a.name, ": negative port count");
    HLS_ASSERT(a.ports_per_bank() <= a.max_ports_per_bank,
               "memory array ", a.name, ": ports per bank ",
               a.ports_per_bank(), " exceed limit ", a.max_ports_per_bank);
    HLS_ASSERT(a.latency_cycles >= 0, "memory array ", a.name,
               ": negative latency");
    // Arrays must not overlap: every covered port maps to exactly one.
    for (int e = 0; e < a.num_elems; ++e) {
      int covered = 0;
      for (const ArraySpec& b : arrays) {
        if (a.first_port + e >= b.first_port &&
            a.first_port + e < b.first_port + b.num_elems) {
          ++covered;
        }
      }
      HLS_ASSERT(covered == 1, "memory arrays overlap at port ",
                 a.first_port + e);
    }
  }
  for (const WindowSpec& w : windows) {
    HLS_ASSERT(w.port >= 0, "window on negative port ", w.port);
    HLS_ASSERT(w.min_step >= 0 && w.max_step >= w.min_step, "window on port ",
               w.port, ": inverted range [", w.min_step, ",", w.max_step, "]");
    HLS_ASSERT(w.max_step_limit < 0 || w.max_step_limit >= w.max_step,
               "window on port ", w.port, ": limit below max_step");
  }
}

std::string MemorySpec::canonical_dump() const {
  if (empty()) return {};
  std::ostringstream os;
  for (const ArraySpec& a : arrays) {
    os << "array " << a.name << " ports=[" << a.first_port << ","
       << a.first_port + a.num_elems << ") banks=" << a.banks << "/"
       << a.max_banks << " r=" << a.bank_read_ports
       << " w=" << a.bank_write_ports << " rw=" << a.bank_rw_ports << "/"
       << a.max_ports_per_bank << " lat=" << a.latency_cycles
       << (a.interleaved ? " interleaved" : " blocked") << "\n";
  }
  for (const WindowSpec& w : windows) {
    os << "window port=" << w.port << " [" << w.min_step << "," << w.max_step
       << "] limit=" << w.max_step_limit << "\n";
  }
  return os.str();
}

}  // namespace hls::mem
