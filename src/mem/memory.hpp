// Memory as a schedulable resource: banked arrays with typed ports, and
// I/O timing windows pinning designated operations to a step range.
//
// The paper's expert system relaxes timing and functional-unit restraints;
// this subsystem adds the third backend-independent constraint family
// (ROADMAP): memory banks/ports (Corre et al., "Memory Aware High-Level
// Synthesis for Embedded Systems") and I/O timing windows (Coussy et al.,
// "High-level synthesis under I/O Timing and Memory constraints").
//
// Model: a `MemorySpec` maps contiguous module-port ranges onto banked
// arrays. Element index = port - first_port; the placement map assigns
// each element to a bank (interleaved `elem % banks` or blocked). Each
// bank exposes `bank_read_ports` read-only, `bank_write_ports` write-only
// and `bank_rw_ports` read/write ports; a load/store op must bind to a
// port of its own bank with a compatible direction. The scheduler turns
// each array into one `alloc::ResourcePool` whose instances are laid out
// bank-major:
//
//   instance = bank * ports_per_bank + offset
//   offset in [0, R)        read-only ports
//   offset in [R, R+W)      write-only ports
//   offset in [R+W, R+W+RW) read/write ports
//
// so bank-conflict detection rides the engine's existing flat-occupancy
// machinery unchanged. `WindowSpec` pins all accesses of one port into an
// absolute `[min_step, max_step]` range, folded into the ASAP/ALAP spans
// so both backends (list and SDC) enforce it through release()/deadline()
// with zero backend-specific code; in the SDC backend the clamped spans
// become ordinary difference constraints on the step variables.
//
// Relaxation limits live in the spec: `max_ports_per_bank` bounds the
// expert's add-mem-port action, `max_banks` bounds re-banking, and
// `WindowSpec::max_step_limit` bounds window widening (-1 = fixed).
#pragma once

#include <string>
#include <vector>

namespace hls::mem {

/// One banked array mapped onto a contiguous range of module ports.
struct ArraySpec {
  std::string name;
  int first_port = 0;  ///< module port index of element 0
  int num_elems = 0;   ///< ports [first_port, first_port + num_elems)
  int banks = 1;
  int bank_read_ports = 0;   ///< read-only ports per bank
  int bank_write_ports = 0;  ///< write-only ports per bank
  int bank_rw_ports = 1;     ///< read/write ports per bank
  int latency_cycles = 0;    ///< access latency (0 = combinational)
  /// Relaxation headroom for the expert system.
  int max_banks = 1;          ///< re-banking doubles banks up to this
  int max_ports_per_bank = 1; ///< add-mem-port grows RW ports up to this
  /// true: element e lives in bank e % banks (stride-1 friendly);
  /// false: blocked placement, bank e / ceil(num_elems / banks).
  bool interleaved = true;

  int ports_per_bank() const {
    return bank_read_ports + bank_write_ports + bank_rw_ports;
  }
  /// Bank of element `elem` under the current placement map.
  int bank_of(int elem) const;
  /// True when pool instance offset `offset` (within a bank) can serve a
  /// read / a write.
  bool offset_reads(int offset) const {
    return offset < bank_read_ports ||
           offset >= bank_read_ports + bank_write_ports;
  }
  bool offset_writes(int offset) const { return offset >= bank_read_ports; }
};

/// Absolute timing window on all accesses of one module port:
/// the op must be scheduled into step ∈ [min_step, max_step].
struct WindowSpec {
  int port = 0;
  int min_step = 0;
  int max_step = 0;
  /// Widening bound for the expert's widen-window action; -1 = the window
  /// is a hard contract and must not be relaxed.
  int max_step_limit = -1;
};

/// The complete memory constraint family for one workload.
struct MemorySpec {
  std::vector<ArraySpec> arrays;
  std::vector<WindowSpec> windows;

  bool empty() const { return arrays.empty() && windows.empty(); }
  /// Index into `arrays` of the array covering module port `port`,
  /// or -1 when the port is unconstrained.
  int array_for_port(int port) const;
  /// Throws InternalError (HLS_ASSERT) on an ill-formed spec: overlapping
  /// arrays, non-positive bank/port counts, inverted windows.
  void validate() const;
  /// Canonical one-line dump, folded into the module hash so memory
  /// constraints key caches the same way the IR does. Empty specs dump
  /// to the empty string (memory-free hashes unchanged).
  std::string canonical_dump() const;
};

}  // namespace hls::mem
