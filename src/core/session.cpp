#include "core/session.hpp"

#include <chrono>
#include <utility>

#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "opt/pass.hpp"
#include "pipeline/straighten.hpp"
#include "support/strings.hpp"
#include "tech/library.hpp"

namespace hls::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over the canonical module dump. The dump is deterministic (op
/// and statement ids are assigned in construction order), so structurally
/// identical workloads — regardless of their display name — hash equal.
std::uint64_t fnv1a(std::string_view text, std::uint64_t h) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::vector<Diagnostic> validate_flow_options(const FlowOptions& options) {
  std::vector<Diagnostic> diags;
  auto bad = [&](std::string code, std::string message) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.message = std::move(message);
    d.stage = "options";
    d.code = std::move(code);
    diags.push_back(std::move(d));
  };
  if (!(options.tclk_ps > 0)) {
    bad("non-positive-tclk",
        strf("tclk_ps must be positive, got ", options.tclk_ps));
  }
  if (options.pipeline_ii < 0) {
    bad("negative-ii", strf("pipeline_ii must be >= 0 (0 = sequential), got ",
                            options.pipeline_ii));
  }
  if (options.latency_min < 0) {
    bad("negative-latency",
        strf("latency_min must be >= 0 (0 keeps the designer's bound), got ",
             options.latency_min));
  }
  if (options.latency_max < 0) {
    bad("negative-latency",
        strf("latency_max must be >= 0 (0 keeps the designer's bound), got ",
             options.latency_max));
  }
  if (options.latency_min > 0 && options.latency_max > 0 &&
      options.latency_min > options.latency_max) {
    bad("inverted-latency-bound",
        strf("latency_min (", options.latency_min, ") exceeds latency_max (",
             options.latency_max, ")"));
  }
  if (options.budget.max_passes < 0 || options.budget.max_commits < 0 ||
      options.budget.max_relax_steps < 0 ||
      options.budget.deadline_seconds < 0) {
    bad("negative-budget",
        "budget limits must be >= 0 (0 = unlimited); see support/budget.hpp");
  }
  return diags;
}

// ---- FlowSession ----------------------------------------------------------

FlowSession::FlowSession(workloads::Workload workload,
                         const SessionOptions& options)
    : name_(workload.name.empty() ? workload.module.name : workload.name),
      compiled_(std::move(workload.module)),
      loop_(workload.loop),
      memory_(std::move(workload.memory)) {
  const auto t0 = std::chrono::steady_clock::now();

  // Validation runs BEFORE any transformation: the optimizer and the
  // predication pass index the DFG by ids a malformed module may have out
  // of range, and the constructor's contract is a clean "compile"
  // diagnostic, never a crash or a throw.
  auto compile_error = [&](std::string code, std::string message) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.message = std::move(message);
    d.stage = "compile";
    d.code = std::move(code);
    diags_.push_back(std::move(d));
  };
  if (loop_ == ir::kNoStmt || loop_ >= compiled_.thread.tree.size()) {
    compile_error("no-loop", "workload names no schedulable loop statement");
  } else if (options.validate_ir) {
    DiagEngine engine;
    if (!ir::validate(compiled_, engine)) {
      for (Diagnostic d : engine.diagnostics()) {
        d.stage = "compile";
        if (d.code.empty()) d.code = "invalid-ir";
        diags_.push_back(std::move(d));
      }
    }
  }

  if (ok()) {
    if (options.run_optimizer) {
      auto pm = opt::PassManager::standard_pipeline();
      pm.run_to_fixpoint(compiled_);
    }
    // Branch predication is required before scheduling (and is what makes
    // loop bodies straight lines for pipelining).
    pipeline::straighten(compiled_);
    if (options.share_timing_tables) {
      // Every run's TimingEngine would otherwise rebuild the same
      // (class, width) and mux-fanin memo tables from cold; prewarm them
      // once here and share them read-only across runs and workers.
      delay_tables_ = std::make_shared<const timing::DelayTables>(
          timing::DelayTables::prewarm(tech::artisan90()));
    }
    // Hash the post-front-end IR with the display name normalized away, so
    // the serve layer's session cache collides renamed-but-identical
    // designs. The dump is taken AFTER optimize + predicate: equal hashes
    // mean equal scheduling inputs, which is the cache's contract.
    ir::Module canonical = compiled_;
    canonical.name = "m";
    module_hash_ =
        fnv1a(ir::print_module(canonical),
              fnv1a("loop", 0xcbf29ce484222325ULL) ^ (loop_ * 0x9e3779b97f4a7c15ULL));
    // Memory constraints change scheduling, so they must key the serve
    // cache too. Folded in only when present, keeping every memory-free
    // design's hash (and cached entries) unchanged.
    if (!memory_.empty()) {
      module_hash_ = fnv1a(memory_.canonical_dump(), module_hash_);
    }
  }
  compile_seconds_ = seconds_since(t0);
}

bool FlowSession::ok() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

FlowRun FlowSession::begin(FlowOptions options) const& {
  // Clone the only state the back-end stages mutate; the session's
  // compiled module stays untouched, which is what makes concurrent runs
  // over one session safe.
  return FlowRun(std::move(options), std::make_unique<ir::Module>(compiled_),
                 loop_, compile_seconds_, diags_, delay_tables_, memory_);
}

FlowRun FlowSession::begin(FlowOptions options) && {
  // The session is expiring: hand its module over instead of cloning.
  return FlowRun(std::move(options),
                 std::make_unique<ir::Module>(std::move(compiled_)), loop_,
                 compile_seconds_, diags_, std::move(delay_tables_),
                 std::move(memory_));
}

FlowResult FlowSession::run(const FlowOptions& options) const& {
  FlowRun run = begin(options);
  run.run_all();
  return run.take();
}

FlowResult FlowSession::run(const FlowOptions& options) && {
  FlowRun run = std::move(*this).begin(options);
  run.run_all();
  return run.take();
}

// ---- FlowRun --------------------------------------------------------------

FlowRun::FlowRun(FlowOptions options, std::unique_ptr<ir::Module> module,
                 ir::StmtId loop, double compile_seconds,
                 const std::vector<Diagnostic>& session_diags,
                 std::shared_ptr<const timing::DelayTables> shared_delays,
                 mem::MemorySpec memory)
    : options_(std::move(options)),
      memory_(std::move(memory)),
      shared_delays_(std::move(shared_delays)) {
  result_.module = std::move(module);
  result_.loop = loop;
  result_.timings.compile_seconds = compile_seconds;
  for (const Diagnostic& d : session_diags) {
    result_.diagnostics.push_back(d);
    if (d.severity == Severity::kError && next_ != Stage::kFailed) {
      result_.failure_reason = d.to_string();
      next_ = Stage::kFailed;
    }
  }
}

void FlowRun::fail(std::string stage, std::string code, std::string message) {
  result_.failure_reason = message;
  Diagnostic d;
  d.severity = Severity::kError;
  d.message = std::move(message);
  d.stage = std::move(stage);
  d.code = std::move(code);
  result_.diagnostics.push_back(std::move(d));
  next_ = Stage::kFailed;
}

bool FlowRun::select_microarch() {
  if (next_ != Stage::kMicroarch) return false;
  const auto t0 = std::chrono::steady_clock::now();

  auto option_diags = validate_flow_options(options_);
  if (!option_diags.empty()) {
    result_.failure_reason = option_diags.front().to_string();
    for (auto& d : option_diags) result_.diagnostics.push_back(std::move(d));
    next_ = Stage::kFailed;
    return false;
  }

  ir::Module& m = *result_.module;
  ir::Stmt& loop_stmt = m.thread.tree.stmt_mut(result_.loop);
  latency_ = loop_stmt.latency;
  if (options_.latency_min > 0) latency_.min = options_.latency_min;
  if (options_.latency_max > 0) latency_.max = options_.latency_max;
  // A latency_min override above the designer's maximum leaves an empty
  // bound. Pipelined runs are exempt: the driver raises the maximum to
  // the feasible minimum there (paper Section V lets LI grow).
  if (latency_.min > latency_.max && options_.pipeline_ii <= 0 &&
      !options_.solve_min_ii) {
    fail("microarch", "inverted-latency-bound",
         strf("effective latency bound [", latency_.min, ",", latency_.max,
              "] is empty: latency_min exceeds the loop's maximum latency"));
    return false;
  }

  sopts_ = sched::SchedulerOptions{};
  sopts_.tclk_ps = options_.tclk_ps;
  sopts_.lib = options_.lib != nullptr ? options_.lib : &tech::artisan90();
  sopts_.backend = options_.backend;
  // The session's tables are prewarmed for the default library; a custom
  // library must not read them (its delays differ).
  if (sopts_.lib == &tech::artisan90()) {
    sopts_.shared_delays = shared_delays_.get();
  }
  if (options_.pipeline_ii > 0 || options_.solve_min_ii) {
    // Min-II solving implies a pipelined micro-architecture; an explicit
    // pipeline_ii then floors the search (0 floors it at II=1). The
    // solved II is written back into the loop stmt after scheduling.
    const int floor_ii = std::max(1, options_.pipeline_ii);
    sopts_.pipeline = {true, floor_ii};
    sopts_.solve_min_ii = options_.solve_min_ii;
    loop_stmt.pipeline = {true, floor_ii};
  }
  sopts_.enable_chaining = options_.enable_chaining;
  sopts_.enable_move_scc = options_.enable_move_scc;
  sopts_.avoid_comb_cycles = options_.avoid_comb_cycles;
  sopts_.use_mutual_exclusivity = options_.use_mutual_exclusivity;
  sopts_.allow_accept_slack = options_.allow_accept_slack;
  sopts_.warm_start = options_.warm_start;
  // sopts_ points at the run's own copy (not the session's) so the &&
  // facade — which expires the session before schedule() runs — is safe.
  if (options_.memory_aware && !memory_.empty()) sopts_.memory = &memory_;
  sopts_.seed = options_.seed;
  sopts_.record_seed = options_.record_seed;
  sopts_.budget = options_.budget;
  sopts_.stop = options_.stop;

  region_ = ir::linearize(m.thread.tree, result_.loop);
  result_.timings.microarch_seconds = seconds_since(t0);
  next_ = Stage::kSchedule;
  return true;
}

bool FlowRun::schedule() {
  if (next_ != Stage::kSchedule) return false;
  const ir::Module& m = *result_.module;
  const auto t0 = std::chrono::steady_clock::now();
  result_.sched = sched::schedule_region(m.thread.dfg, region_, latency_,
                                         m.ports.size(), sopts_);
  result_.sched_seconds = seconds_since(t0);
  result_.timings.sched_seconds = result_.sched_seconds;
  if (!result_.sched.success) {
    // Budget exhaustion and cancellation carry their own codes; ordinary
    // infeasibility (empty failure_code) keeps the long-standing one.
    fail("schedule",
         result_.sched.failure_code.empty() ? "infeasible"
                                            : result_.sched.failure_code,
         strf("scheduling failed: ", result_.sched.failure_reason));
    return false;
  }
  if (options_.solve_min_ii && result_.sched.min_ii > 0) {
    // Sync the IR with the solved II so every downstream consumer of the
    // loop stmt (not only the schedule's own pipeline config, which the
    // scheduler already set) sees the micro-architecture that was built.
    result_.module->thread.tree.stmt_mut(result_.loop).pipeline = {
        true, result_.sched.schedule.pipeline.ii};
  }
  next_ = Stage::kRtl;
  return true;
}

bool FlowRun::generate_rtl() {
  if (next_ != Stage::kRtl) return false;
  const auto t0 = std::chrono::steady_clock::now();
  result_.machine =
      rtl::build_machine(*result_.module, result_.loop, result_.sched.schedule);
  if (options_.emit_verilog) {
    result_.verilog = rtl::emit_verilog(result_.machine);
  }
  result_.timings.rtl_seconds = seconds_since(t0);
  next_ = Stage::kEstimate;
  return true;
}

bool FlowRun::estimate() {
  if (next_ != Stage::kEstimate) return false;
  const auto t0 = std::chrono::steady_clock::now();
  const tech::Library& lib = *sopts_.lib;
  result_.area = synth::apply_recovery(
      synth::estimate_area(result_.machine, lib),
      result_.sched.schedule.worst_slack_ps, options_.tclk_ps);
  result_.power = synth::estimate_power(result_.machine, lib, options_.tclk_ps,
                                        result_.area);
  result_.delay_ns =
      result_.machine.loop.initiation_interval() * options_.tclk_ps / 1000.0;
  result_.timings.synth_seconds = seconds_since(t0);
  result_.success = true;
  next_ = Stage::kDone;
  return true;
}

bool FlowRun::run_all() {
  select_microarch();
  schedule();
  generate_rtl();
  estimate();
  return result_.success;
}

FlowResult FlowRun::take() {
  next_ = Stage::kFailed;  // any further stage call is a no-op
  return std::move(result_);
}

}  // namespace hls::core
