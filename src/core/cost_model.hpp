// The fitted scheduling cost model: deterministic per-pass and per-point
// cost predictions keyed on problem shape, consulted by
// sched::resolve_backend (backend auto-selection) and the model-guided
// explore engine (best-first chain ordering).
//
// The model is FITTED OFFLINE from the signals CI already collects —
// the per-size ns-per-pass sweeps and backend A/Bs in
// BENCH_scheduler.json / BENCH_explore.json — by bench/fit_cost_model.py,
// which regenerates the committed coefficient file
// src/core/cost_model_coeffs.inc (provenance in its header; re-fit
// instructions in docs/EXPLORE.md). At runtime the model is a pure
// function of its features: same features, same prediction, on every
// machine — predictions ORDER work and PICK backends, they never gate
// results, so a stale fit can cost wall-clock but can never change what
// any run produces.
//
// This header is deliberately dependency-free (no sched/ or core/ types)
// so both the scheduler layer below and the explore layer above can
// consult one model without an include cycle.
#pragma once

#include <cstddef>

namespace hls::core {

/// Problem-shape features the cost model reads. Everything is available
/// before scheduling starts: op count, recurrence structure (the
/// region-restricted SCCs of a pipelined problem), memory pools, and the
/// warm-start switch (cold SDC passes obey a much steeper law).
struct CostFeatures {
  std::size_t ops = 0;
  bool pipelined = false;
  /// Region-restricted SCC count (0 for feed-forward / sequential
  /// problems; recurrence-bearing pipelined problems have >= 1).
  std::size_t recurrences = 0;
  /// Memory pools under constraint (0 when memory-blind or the design
  /// has no arrays); each pool adds bank/port/window restraint passes.
  std::size_t memory_pools = 0;
  /// SchedulerOptions::warm_start — selects the warm or cold SDC law.
  bool warm_start = true;
};

/// Predicted cost of one scheduling pass in nanoseconds, per backend
/// (`sdc` false = the list backend). Power laws fitted from the
/// feed-forward sweep, with the fitted recurrence discount applied to
/// SDC on recurrence-bearing pipelined problems.
double predicted_ns_per_pass(const CostFeatures& features, bool sdc);

/// Predicted pass count for one configuration (the fitted mean passes
/// per explore point, bumped per constrained memory pool). A prior for
/// ORDERING work — actual pass counts depend on the relaxation ladder.
double predicted_passes(const CostFeatures& features);

/// Predicted total scheduling cost of one configuration in nanoseconds:
/// predicted_ns_per_pass * predicted_passes.
double predicted_cost_ns(const CostFeatures& features, bool sdc);

/// The backend auto-selection rule: true when the model predicts the SDC
/// backend's per-pass cost stays within the fitted affordability bound
/// of the list backend's. Only recurrence-bearing pipelined problems
/// ever prefer SDC — the constraint system earns its constant-factor
/// overhead by moving whole SCC bodies per window action, a benefit
/// feed-forward problems cannot collect (sched::resolve_backend).
bool model_prefers_sdc(const CostFeatures& features);

}  // namespace hls::core
