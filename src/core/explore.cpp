#include "core/explore.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/diagnostics.hpp"

namespace hls::core {

ExplorePoint run_point(const FlowSession& session, const ExploreConfig& cfg,
                       RunPointExtras* extras) {
  ExplorePoint pt;
  pt.curve = cfg.curve;
  pt.tclk_ps = cfg.tclk_ps;
  pt.latency = cfg.latency;
  pt.pipelined = cfg.pipeline_ii > 0 || cfg.solve_min_ii;

  FlowOptions opts;
  opts.tclk_ps = cfg.tclk_ps;
  opts.backend = cfg.backend;
  opts.pipeline_ii = cfg.pipeline_ii;
  opts.solve_min_ii = cfg.solve_min_ii;
  opts.latency_min = cfg.latency;
  opts.latency_max = cfg.latency;
  opts.memory_aware = cfg.memory_aware;
  opts.budget = cfg.budget;
  opts.emit_verilog = false;
  if (extras != nullptr) {
    opts.seed = extras->seed;
    opts.record_seed = extras->record_seed;
    opts.stop = extras->stop;
  }
  pt.backend = sched::backend_name(cfg.backend);
  try {
    FlowResult r = session.run(opts);
    // Report the backend that actually ran (kAuto resolves per problem
    // inside schedule_region). A run that failed before the schedule
    // stage keeps the requested name — nothing was resolved.
    const bool reached_schedule =
        r.success ||
        std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                    [](const Diagnostic& d) { return d.stage == "schedule"; });
    if (reached_schedule) {
      pt.backend = sched::backend_name(r.sched.backend);
      pt.min_ii = r.sched.min_ii;
    }
    pt.sched_seconds = r.sched_seconds;
    pt.passes = r.sched.passes;
    pt.relaxations = r.sched.relaxations();
    pt.seed_use = sched::seed_use_name(r.sched.seed_use);
    pt.memory_restraints = r.sched.memory_restraints;
    for (const alloc::ResourcePool& pool : r.sched.schedule.resources.pools) {
      if (!pool.is_memory) continue;
      pt.mem_banks += pool.banks;
      pt.mem_ports += pool.count;
    }
    if (r.success) {
      pt.feasible = true;
      pt.delay_ns = r.delay_ns;
      pt.area = r.area.total();
      pt.power_mw = r.power.total_mw();
      if (extras != nullptr && extras->record_seed) {
        extras->seed_out = std::move(r.sched.seed_out);
        extras->seed_recorded = true;
      }
    } else {
      pt.failure = r.failure_reason;
      // Lead with the structured coordinates of the diagnostic that
      // failed the run (the last error is the one that stopped it).
      for (auto it = r.diagnostics.rbegin(); it != r.diagnostics.rend();
           ++it) {
        if (it->severity != Severity::kError) continue;
        pt.failure = strf("[", it->stage, "/", it->code, "] ",
                          r.failure_reason);
        pt.cancelled = it->code == "cancelled";
        break;
      }
    }
  } catch (const InternalError& e) {
    // Clock infeasible for the library (e.g. a multiplier cannot fit):
    // the configuration is reported as infeasible, like a failed run.
    pt.failure = strf("internal: ", e.what());
  }
  return pt;
}

std::vector<ExplorePoint> explore(const FlowSession& session,
                                  const std::vector<ExploreConfig>& configs,
                                  const ExploreOptions& options) {
  std::vector<ExplorePoint> points(configs.size());
  if (configs.empty()) return points;

  // 0 = one worker per hardware thread; anything negative is clamped to
  // serial rather than silently fanning out.
  std::size_t threads = 1;
  if (options.threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  } else if (options.threads > 0) {
    threads = static_cast<std::size_t>(options.threads);
  }
  threads = std::min(threads, configs.size());

  std::mutex progress_mutex;
  std::size_t completed = 0;
  auto report = [&](const ExplorePoint& pt) {
    if (!options.progress) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    options.progress(pt, ++completed, configs.size());
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      points[i] = run_point(session, configs[i]);
      report(points[i]);
    }
    return points;
  }

  // Worker pool over an atomic work index. Each worker writes only its own
  // slot, so the result vector is ordered like `configs` no matter which
  // worker picks which configuration up.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(configs.size());
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < configs.size();
         i = next.fetch_add(1)) {
      try {
        points[i] = run_point(session, configs[i]);
        report(points[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  // Deterministic error propagation: the lowest-index failure wins, as it
  // would have in a serial run.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return points;
}

std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs, const ExploreOptions& options) {
  const FlowSession session(make_workload());
  return explore(session, configs, options);
}

std::vector<ExploreConfig> idct_paper_grid() {
  // 5 micro-architectures x 5 clock periods = 25 runs (paper Section VI:
  // "We performed 25 HLS and logic synthesis runs").
  struct Arch {
    const char* name;
    int latency;
    int ii;  // 0 = sequential
  };
  const Arch archs[] = {
      {"Non-Pipelined 8", 8, 0},   {"Non-Pipelined 16", 16, 0},
      {"Non-Pipelined 32", 32, 0}, {"Pipelined 16", 16, 8},
      {"Pipelined 32", 32, 16},
  };
  const double clocks[] = {1300, 1450, 1600, 1850, 2200};
  std::vector<ExploreConfig> grid;
  for (const Arch& a : archs) {
    for (double t : clocks) {
      ExploreConfig cfg;
      cfg.curve = a.name;
      cfg.tclk_ps = t;
      cfg.latency = a.latency;
      cfg.pipeline_ii = a.ii;
      grid.push_back(cfg);
    }
  }
  return grid;
}

}  // namespace hls::core
