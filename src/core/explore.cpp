#include "core/explore.hpp"

#include "support/diagnostics.hpp"

namespace hls::core {

std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs) {
  std::vector<ExplorePoint> points;
  points.reserve(configs.size());
  for (const ExploreConfig& cfg : configs) {
    FlowOptions opts;
    opts.tclk_ps = cfg.tclk_ps;
    opts.pipeline_ii = cfg.pipeline_ii;
    opts.latency_min = cfg.latency;
    opts.latency_max = cfg.latency;
    ExplorePoint pt;
    pt.curve = cfg.curve;
    pt.tclk_ps = cfg.tclk_ps;
    pt.latency = cfg.latency;
    pt.pipelined = cfg.pipeline_ii > 0;
    try {
      FlowResult r = run_flow(make_workload(), opts);
      if (r.success) {
        pt.feasible = true;
        pt.delay_ns = r.delay_ns;
        pt.area = r.area.total();
        pt.power_mw = r.power.total_mw();
      }
    } catch (const InternalError&) {
      // Clock infeasible for the library (e.g. a multiplier cannot fit):
      // the configuration is reported as infeasible, like a failed run.
    }
    points.push_back(std::move(pt));
  }
  return points;
}

std::vector<ExploreConfig> idct_paper_grid() {
  // 5 micro-architectures x 5 clock periods = 25 runs (paper Section VI:
  // "We performed 25 HLS and logic synthesis runs").
  struct Arch {
    const char* name;
    int latency;
    int ii;  // 0 = sequential
  };
  const Arch archs[] = {
      {"Non-Pipelined 8", 8, 0},   {"Non-Pipelined 16", 16, 0},
      {"Non-Pipelined 32", 32, 0}, {"Pipelined 16", 16, 8},
      {"Pipelined 32", 32, 16},
  };
  const double clocks[] = {1300, 1450, 1600, 1850, 2200};
  std::vector<ExploreConfig> grid;
  for (const Arch& a : archs) {
    for (double t : clocks) {
      ExploreConfig cfg;
      cfg.curve = a.name;
      cfg.tclk_ps = t;
      cfg.latency = a.latency;
      cfg.pipeline_ii = a.ii;
      grid.push_back(cfg);
    }
  }
  return grid;
}

}  // namespace hls::core
