#include "core/explore.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "core/cost_model.hpp"
#include "support/diagnostics.hpp"

namespace hls::core {

ExplorePoint run_point(const FlowSession& session, const ExploreConfig& cfg,
                       RunPointExtras* extras) {
  ExplorePoint pt;
  pt.curve = cfg.curve;
  pt.tclk_ps = cfg.tclk_ps;
  pt.latency = cfg.latency;
  pt.pipelined = cfg.pipeline_ii > 0 || cfg.solve_min_ii;

  FlowOptions opts;
  opts.tclk_ps = cfg.tclk_ps;
  opts.backend = cfg.backend;
  opts.pipeline_ii = cfg.pipeline_ii;
  opts.solve_min_ii = cfg.solve_min_ii;
  opts.latency_min = cfg.latency;
  opts.latency_max = cfg.latency;
  opts.memory_aware = cfg.memory_aware;
  opts.budget = cfg.budget;
  opts.emit_verilog = false;
  if (extras != nullptr) {
    opts.seed = extras->seed;
    opts.record_seed = extras->record_seed;
    opts.stop = extras->stop;
  }
  pt.backend = sched::backend_name(cfg.backend);
  try {
    FlowResult r = session.run(opts);
    // Report the backend that actually ran (kAuto resolves per problem
    // inside schedule_region). A run that failed before the schedule
    // stage keeps the requested name — nothing was resolved.
    const bool reached_schedule =
        r.success ||
        std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                    [](const Diagnostic& d) { return d.stage == "schedule"; });
    if (reached_schedule) {
      pt.backend = sched::backend_name(r.sched.backend);
      pt.min_ii = r.sched.min_ii;
    }
    pt.sched_seconds = r.sched_seconds;
    pt.passes = r.sched.passes;
    pt.relaxations = r.sched.relaxations();
    pt.seed_use = sched::seed_use_name(r.sched.seed_use);
    pt.memory_restraints = r.sched.memory_restraints;
    for (const sched::PassRecord& rec : r.sched.history) {
      pt.constraint_edges += rec.constraint_edges;
      pt.propagation_relaxations += rec.propagation_relaxations;
    }
    for (const alloc::ResourcePool& pool : r.sched.schedule.resources.pools) {
      if (!pool.is_memory) continue;
      pt.mem_banks += pool.banks;
      pt.mem_ports += pool.count;
    }
    if (r.success) {
      pt.feasible = true;
      pt.delay_ns = r.delay_ns;
      pt.area = r.area.total();
      pt.power_mw = r.power.total_mw();
      if (extras != nullptr && extras->record_seed) {
        extras->seed_out = std::move(r.sched.seed_out);
        extras->seed_recorded = true;
      }
    } else {
      pt.failure = r.failure_reason;
      // Lead with the structured coordinates of the diagnostic that
      // failed the run (the last error is the one that stopped it).
      for (auto it = r.diagnostics.rbegin(); it != r.diagnostics.rend();
           ++it) {
        if (it->severity != Severity::kError) continue;
        pt.failure = strf("[", it->stage, "/", it->code, "] ",
                          r.failure_reason);
        pt.cancelled = it->code == "cancelled";
        break;
      }
    }
  } catch (const InternalError& e) {
    // Clock infeasible for the library (e.g. a multiplier cannot fit):
    // the configuration is reported as infeasible, like a failed run.
    pt.failure = strf("internal: ", e.what());
  }
  return pt;
}

bool proves_infeasibility(const ExplorePoint& point) {
  if (point.feasible || point.cancelled) return false;
  return point.failure.rfind("[schedule/infeasible]", 0) == 0 ||
         point.failure.rfind("[schedule/no_feasible_ii]", 0) == 0;
}

std::string explore_chain_key(const ExploreConfig& cfg) {
  // '\x1f' (unit separator) fences the free-form curve name off from the
  // numeric fields; everything after it is numeric, so keys are
  // collision-free. tclk_ps is deliberately absent — it is the chain's
  // ladder axis.
  return strf(cfg.curve, '\x1f', cfg.latency, '|', cfg.pipeline_ii, '|',
              cfg.solve_min_ii, '|', static_cast<int>(cfg.backend), '|',
              cfg.memory_aware, '|', cfg.budget.max_passes, '|',
              cfg.budget.max_commits, '|', cfg.budget.max_relax_steps, '|',
              cfg.budget.deadline_seconds);
}

double predicted_config_cost_ns(const FlowSession& session,
                                const ExploreConfig& cfg) {
  CostFeatures features;
  features.ops = session.module().thread.dfg.size();
  features.pipelined = cfg.pipeline_ii > 0 || cfg.solve_min_ii;
  // Recurrence *presence* prior: the region-restricted SCCs are only
  // computed once scheduling builds its Problem, and for ordering all
  // the model needs is whether the recurrence discount can apply.
  features.recurrences = features.pipelined ? 1 : 0;
  features.memory_pools =
      cfg.memory_aware ? session.memory().arrays.size() : 0;
  bool sdc = false;
  switch (cfg.backend) {
    case sched::BackendKind::kSdc: sdc = true; break;
    case sched::BackendKind::kList: sdc = false; break;
    case sched::BackendKind::kAuto: sdc = model_prefers_sdc(features); break;
  }
  return predicted_cost_ns(features, sdc);
}

namespace {

/// One clock ladder: the guided engine's unit of dispatch, seed sharing
/// and pruning.
struct GuidedChain {
  std::vector<std::size_t> order;  ///< config indices, loosest tclk first
  double cost = 0;                 ///< summed predicted ns (LPT dispatch)
  std::size_t anchor = 0;          ///< smallest config index (tie-break)
};

std::vector<GuidedChain> build_guided_chains(
    const FlowSession& session, const std::vector<ExploreConfig>& configs) {
  // std::map keeps grouping deterministic; final chain order is fixed by
  // the (cost, anchor) sort below regardless of container choice.
  std::map<std::string, std::size_t> by_key;
  std::vector<GuidedChain> chains;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto [it, inserted] =
        by_key.emplace(explore_chain_key(configs[i]), chains.size());
    if (inserted) chains.emplace_back();
    GuidedChain& chain = chains[it->second];
    chain.order.push_back(i);
    chain.cost += predicted_config_cost_ns(session, configs[i]);
  }
  for (GuidedChain& chain : chains) {
    chain.anchor = *std::min_element(chain.order.begin(), chain.order.end());
    // Loosest clock first (the cheapest end of the ladder and the
    // dominance witness's side); equal clocks keep config order, so
    // exact-config duplicates replay off the first occurrence.
    std::stable_sort(chain.order.begin(), chain.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (configs[a].tclk_ps != configs[b].tclk_ps) {
                         return configs[a].tclk_ps > configs[b].tclk_ps;
                       }
                       return a < b;
                     });
  }
  // Longest-predicted-first across chains bounds the parallel makespan
  // (LPT); the anchor tie-break keeps the order deterministic when the
  // model prices two chains identically.
  std::sort(chains.begin(), chains.end(),
            [](const GuidedChain& a, const GuidedChain& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              return a.anchor < b.anchor;
            });
  return chains;
}

}  // namespace

std::vector<std::size_t> guided_order(
    const FlowSession& session, const std::vector<ExploreConfig>& configs) {
  std::vector<std::size_t> order;
  order.reserve(configs.size());
  for (const GuidedChain& chain : build_guided_chains(session, configs)) {
    order.insert(order.end(), chain.order.begin(), chain.order.end());
  }
  return order;
}

std::vector<ExplorePoint> explore(const FlowSession& session,
                                  const std::vector<ExploreConfig>& configs,
                                  const ExploreOptions& options) {
  std::vector<ExplorePoint> points(configs.size());
  if (configs.empty()) return points;

  // 0 = one worker per hardware thread; anything negative is clamped to
  // serial rather than silently fanning out.
  std::size_t threads = 1;
  if (options.threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  } else if (options.threads > 0) {
    threads = static_cast<std::size_t>(options.threads);
  }
  threads = std::min(threads, configs.size());

  std::mutex progress_mutex;
  std::size_t completed = 0;
  auto report = [&](const ExplorePoint& pt) {
    if (!options.progress) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    options.progress(pt, ++completed, configs.size());
  };

  std::vector<std::exception_ptr> errors(configs.size());

  if (options.guided || options.prune) {
    // Model-guided engine: chains are the work units. All cross-thread
    // state is per-chain and chains never share slots, so every field of
    // every point — including seed_use — is identical at any thread
    // count; only dispatch overlap (wall-clock) changes.
    const std::vector<GuidedChain> chains =
        build_guided_chains(session, configs);
    auto run_chain = [&](const GuidedChain& chain) {
      sched::ScheduleSeed donor;
      bool have_donor = false;
      bool have_witness = false;
      double witness_tclk = 0;
      for (const std::size_t i : chain.order) {
        const ExploreConfig& cfg = configs[i];
        if (options.prune && have_witness && cfg.tclk_ps < witness_tclk) {
          // Dominated: provable infeasibility at a looser clock on this
          // chain proves this strictly tighter point infeasible too
          // (feasibility is monotone in tclk along a chain). Synthesize
          // the point without scheduling.
          ExplorePoint& pt = points[i];
          pt.curve = cfg.curve;
          pt.tclk_ps = cfg.tclk_ps;
          pt.latency = cfg.latency;
          pt.pipelined = cfg.pipeline_ii > 0 || cfg.solve_min_ii;
          pt.backend = sched::backend_name(cfg.backend);
          pt.failure = strf(kDominatedPrefix,
                            " provably infeasible at looser clock tclk_ps=",
                            witness_tclk);
          report(pt);
          continue;
        }
        try {
          RunPointExtras extras;
          extras.seed = have_donor ? &donor : nullptr;
          extras.record_seed = true;
          points[i] = run_point(session, cfg, &extras);
          if (extras.seed_recorded) {
            donor = std::move(extras.seed_out);
            have_donor = true;
          }
          if (options.prune && !have_witness &&
              proves_infeasibility(points[i])) {
            have_witness = true;
            witness_tclk = cfg.tclk_ps;
          }
          report(points[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    if (threads <= 1 || chains.size() <= 1) {
      for (const GuidedChain& chain : chains) run_chain(chain);
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (std::size_t c = next.fetch_add(1); c < chains.size();
             c = next.fetch_add(1)) {
          run_chain(chains[c]);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(std::min(threads, chains.size()));
      for (std::size_t t = 0; t < std::min(threads, chains.size()); ++t) {
        pool.emplace_back(worker);
      }
      for (std::thread& t : pool) t.join();
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return points;
  }

  if (threads <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      points[i] = run_point(session, configs[i]);
      report(points[i]);
    }
    return points;
  }

  // Worker pool over an atomic work index. Each worker writes only its own
  // slot, so the result vector is ordered like `configs` no matter which
  // worker picks which configuration up.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < configs.size();
         i = next.fetch_add(1)) {
      try {
        points[i] = run_point(session, configs[i]);
        report(points[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  // Deterministic error propagation: the lowest-index failure wins, as it
  // would have in a serial run.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return points;
}

std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs, const ExploreOptions& options) {
  const FlowSession session(make_workload());
  return explore(session, configs, options);
}

std::vector<ExploreConfig> idct_paper_grid() {
  // 5 micro-architectures x 5 clock periods = 25 runs (paper Section VI:
  // "We performed 25 HLS and logic synthesis runs").
  struct Arch {
    const char* name;
    int latency;
    int ii;  // 0 = sequential
  };
  const Arch archs[] = {
      {"Non-Pipelined 8", 8, 0},   {"Non-Pipelined 16", 16, 0},
      {"Non-Pipelined 32", 32, 0}, {"Pipelined 16", 16, 8},
      {"Pipelined 32", 32, 16},
  };
  const double clocks[] = {1300, 1450, 1600, 1850, 2200};
  std::vector<ExploreConfig> grid;
  for (const Arch& a : archs) {
    for (double t : clocks) {
      ExploreConfig cfg;
      cfg.curve = a.name;
      cfg.tclk_ps = t;
      cfg.latency = a.latency;
      cfg.pipeline_ii = a.ii;
      grid.push_back(cfg);
    }
  }
  return grid;
}

}  // namespace hls::core
