#include "core/report.hpp"

#include <algorithm>

#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace hls::core {

std::string render_trace(const sched::SchedulerResult& r) {
  std::string out;
  for (const auto& pass : r.history) {
    out += strf("pass ", pass.pass_number, " @ ", pass.num_steps, " states: ",
                pass.success ? "success" : "failed", "\n");
    for (const auto& restraint : pass.restraints) {
      out += strf("  restraint: ", restraint, "\n");
    }
    if (!pass.action.empty()) out += strf("  action: ", pass.action, "\n");
  }
  return out;
}

std::string render_report(const FlowResult& r) {
  if (!r.success) {
    // Lead with the failing diagnostic's structured coordinates so a
    // pass-budget exhaustion or a cancellation is distinguishable from
    // ordinary infeasibility without parsing the free-form reason.
    for (auto it = r.diagnostics.rbegin(); it != r.diagnostics.rend(); ++it) {
      if (it->severity != Severity::kError) continue;
      return strf("flow FAILED [", it->stage, "/", it->code, "]: ",
                  r.failure_reason, "\n");
    }
    return strf("flow FAILED: ", r.failure_reason, "\n");
  }
  const ir::Module& m = *r.module;
  std::string out = strf("=== ", m.name, " ===\n");
  out += strf("latency interval LI = ", r.sched.schedule.num_steps,
              " states; ",
              r.sched.schedule.pipeline.enabled
                  ? strf("pipelined II = ", r.sched.schedule.pipeline.ii,
                         " (", r.machine.loop.folded.stages, " stages)",
                         r.sched.min_ii > 0 ? " (minimum II solve)" : "")
                  : std::string("sequential"),
              "\n");
  out += strf("worst slack: ", fmt_fixed(r.sched.schedule.worst_slack_ps, 0),
              " ps; backend: ", sched::backend_name(r.sched.backend),
              "; passes: ", r.sched.passes, "; timing queries: ",
              r.sched.timing_queries, "\n\n");
  out += "Schedule (Table 2 format):\n";
  out += r.sched.schedule.to_table(m.thread.dfg);
  out += "\nResources:\n";
  {
    TextTable t({"pool", "instances", "width", "area"});
    const auto& lib = tech::artisan90();
    for (const auto& p : r.sched.schedule.resources.pools) {
      t.row({p.name, strf(p.count), strf(p.width),
             fmt_fixed(p.count * lib.fu_area(p.cls, p.width), 0)});
    }
    out += t.to_string();
  }
  {
    // Memory pools get their own table: banks and per-bank ports are the
    // relaxable quantities (docs/MEMORY.md), and the restraint count shows
    // whether the expert had to relax them at all.
    bool any = false;
    for (const auto& p : r.sched.schedule.resources.pools) {
      any = any || p.is_memory;
    }
    if (any) {
      out += strf("\nMemory (", r.sched.memory_restraints,
                  " memory restraints):\n");
      TextTable t({"array", "banks", "ports/bank", "total ports"});
      for (const auto& p : r.sched.schedule.resources.pools) {
        if (!p.is_memory) continue;
        t.row({p.name, strf(p.banks), strf(p.ports_per_bank()),
               strf(p.count)});
      }
      out += t.to_string();
    }
  }
  out += strf("\nArea: fu=", fmt_fixed(r.area.functional_units, 0),
              " mux=", fmt_fixed(r.area.sharing_muxes, 0),
              " reg=", fmt_fixed(r.area.registers, 0),
              " ctrl=", fmt_fixed(r.area.control, 0),
              " recovery=", fmt_fixed(r.area.timing_recovery, 0),
              "  total=", fmt_fixed(r.area.total(), 0), "\n");
  out += strf("Power: dynamic=", fmt_fixed(r.power.dynamic_mw, 3),
              " mW leakage=", fmt_fixed(r.power.leakage_mw, 3),
              " mW  total=", fmt_fixed(r.power.total_mw(), 3), " mW\n");
  out += strf("Delay (II x Tclk): ", fmt_fixed(r.delay_ns, 2), " ns\n");
  return out;
}

std::string render_json(const FlowResult& r) {
  JsonWriter w;
  w.begin_object();
  w.key("success");
  w.value(r.success);
  w.key("backend");
  w.value(sched::backend_name(r.sched.backend));
  if (r.success) {
    w.key("module");
    w.value(r.module->name);
    w.key("li");
    w.value(r.sched.schedule.num_steps);
    w.key("pipelined");
    w.value(r.sched.schedule.pipeline.enabled);
    w.key("ii");
    w.value(r.machine.loop.initiation_interval());
    if (r.sched.min_ii > 0) {
      // Present only for min-II solves, so fixed-II artifacts are
      // byte-identical to what they were before the key existed.
      w.key("min_ii");
      w.value(r.sched.min_ii);
    }
    w.key("worst_slack_ps");
    w.value(r.sched.schedule.worst_slack_ps);
    w.key("passes");
    w.value(r.sched.passes);
    w.key("relaxations");
    w.value(r.sched.relaxations());
    // Per-pass constraint-system statistics (SDC passes only; the key is
    // absent for list-backend runs so their artifacts are unchanged).
    // Edge-count regressions — e.g. losing the star encoding back to
    // pairwise II windows — show up here directly instead of only as
    // wall-clock drift in the bench figures.
    if (std::any_of(r.sched.history.begin(), r.sched.history.end(),
                    [](const sched::PassRecord& p) {
                      return p.constraint_edges > 0;
                    })) {
      w.key("constraint_stats");
      w.begin_array();
      for (const auto& p : r.sched.history) {
        if (p.constraint_edges == 0) continue;
        w.begin_object();
        w.key("pass");
        w.value(p.pass_number);
        w.key("edges");
        w.value(p.constraint_edges);
        w.key("propagation_relaxations");
        w.value(p.propagation_relaxations);
        w.end_object();
      }
      w.end_array();
    }
    w.key("timing_queries");
    w.value(r.sched.timing_queries);
    w.key("sched_seconds");
    w.value(r.sched_seconds);
    w.key("timings");
    w.begin_object();
    w.key("compile_s");
    w.value(r.timings.compile_seconds);
    w.key("microarch_s");
    w.value(r.timings.microarch_seconds);
    w.key("sched_s");
    w.value(r.timings.sched_seconds);
    w.key("rtl_s");
    w.value(r.timings.rtl_seconds);
    w.key("synth_s");
    w.value(r.timings.synth_seconds);
    w.end_object();
    w.key("area");
    w.begin_object();
    w.key("fu");
    w.value(r.area.functional_units);
    w.key("mux");
    w.value(r.area.sharing_muxes);
    w.key("reg");
    w.value(r.area.registers);
    w.key("control");
    w.value(r.area.control);
    w.key("recovery");
    w.value(r.area.timing_recovery);
    w.key("total");
    w.value(r.area.total());
    w.end_object();
    w.key("power_mw");
    w.value(r.power.total_mw());
    w.key("delay_ns");
    w.value(r.delay_ns);
    w.key("resources");
    w.begin_array();
    for (const auto& p : r.sched.schedule.resources.pools) {
      w.begin_object();
      w.key("name");
      w.value(p.name);
      w.key("count");
      w.value(p.count);
      w.end_object();
    }
    w.end_array();
    w.key("memory");
    w.begin_object();
    w.key("restraints");
    w.value(r.sched.memory_restraints);
    w.key("arrays");
    w.begin_array();
    for (const auto& p : r.sched.schedule.resources.pools) {
      if (!p.is_memory) continue;
      w.begin_object();
      w.key("name");
      w.value(p.name);
      w.key("banks");
      w.value(p.banks);
      w.key("ports_per_bank");
      w.value(p.ports_per_bank());
      w.key("total_ports");
      w.value(p.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  } else {
    w.key("reason");
    w.value(r.failure_reason);
    // The code that stopped the run (the last error diagnostic), so JSON
    // consumers can branch on budget_exhausted/cancelled without walking
    // the diagnostics array.
    for (auto it = r.diagnostics.rbegin(); it != r.diagnostics.rend(); ++it) {
      if (it->severity != Severity::kError) continue;
      w.key("reason_code");
      w.value(strf(it->stage, "/", it->code));
      break;
    }
    w.key("diagnostics");
    w.begin_array();
    for (const Diagnostic& d : r.diagnostics) {
      w.begin_object();
      w.key("stage");
      w.value(d.stage);
      w.key("code");
      w.value(d.code);
      w.key("message");
      w.value(d.message);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace hls::core
