// Design-space exploration (paper Section VI, Figures 10-11): sweep
// micro-architectures (sequential / pipelined x latency x clock) and
// collect (delay, area, power) points per curve.
//
// The engine is batched: the workload is compiled once into a FlowSession
// and the configurations fan out across a worker pool. The returned point
// vector is ordered like `configs`, and every result field except the
// wall-clock `sched_seconds` is identical regardless of the thread count
// (every run schedules the same immutable compiled module).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace hls::core {

struct ExplorePoint {
  std::string curve;    ///< e.g. "Pipelined 32", "Non-Pipelined 16"
  double tclk_ps = 0;
  int latency = 0;      ///< LI of the configuration
  bool pipelined = false;
  double delay_ns = 0;  ///< II x Tclk (inverse throughput)
  double area = 0;
  double power_mw = 0;
  bool feasible = false;
  /// Why the configuration is infeasible (rendered diagnostics; empty when
  /// feasible).
  std::string failure;

  // Figure 9-style profiling of the run that produced the point.
  double sched_seconds = 0;  ///< wall-clock scheduling time
  int passes = 0;            ///< scheduling passes taken
  int relaxations = 0;       ///< expert relaxation actions applied
  /// Which scheduler backend produced the point ("list" / "sdc"). A
  /// kAuto config reports the backend the scheduler resolved to; only a
  /// run that failed before scheduling keeps "auto".
  std::string backend;
};

struct ExploreConfig {
  std::string curve;
  double tclk_ps = 0;
  int latency = 0;       ///< target LI (used as both min and max bound)
  int pipeline_ii = 0;   ///< 0 = sequential
  /// Scheduler backend for this configuration (backends can be swept
  /// against each other in one grid; kAuto lets the scheduler pick per
  /// problem and the point reports the resolved choice).
  sched::BackendKind backend = sched::BackendKind::kList;
};

struct ExploreOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = run
  /// serially on the calling thread (negative values are treated as 1).
  /// The point vector is deterministic and ordered either way.
  int threads = 1;
  /// Invoked once per finished configuration, serialized under a lock (a
  /// streaming/serving caller can print or publish from it). `completed`
  /// counts finished configurations so far (1..total); completion order
  /// may differ from config order when threads > 1.
  std::function<void(const ExplorePoint& point, std::size_t completed,
                     std::size_t total)>
      progress;
};

/// Runs one flow per configuration against `session`'s compiled module,
/// fanning out across `options.threads` workers.
std::vector<ExplorePoint> explore(const FlowSession& session,
                                  const std::vector<ExploreConfig>& configs,
                                  const ExploreOptions& options = {});

/// Convenience overload: compiles `make_workload()` once into a session.
std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs,
    const ExploreOptions& options = {});

/// The paper's IDCT experiment grid: pipelined and non-pipelined
/// micro-architectures with latencies {8, 16, 32}, clock scaled so each
/// curve spans a range of delays (25 configurations).
std::vector<ExploreConfig> idct_paper_grid();

}  // namespace hls::core
