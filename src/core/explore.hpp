// Design-space exploration (paper Section VI, Figures 10-11): sweep
// micro-architectures (sequential / pipelined x latency x clock) and
// collect (delay, area, power) points per curve.
//
// The engine is batched: the workload is compiled once into a FlowSession
// and the configurations fan out across a worker pool. The returned point
// vector is ordered like `configs`, and every result field except the
// wall-clock `sched_seconds` is identical regardless of the thread count
// (every run schedules the same immutable compiled module).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace hls::core {

struct ExplorePoint {
  std::string curve;    ///< e.g. "Pipelined 32", "Non-Pipelined 16"
  double tclk_ps = 0;
  int latency = 0;      ///< LI of the configuration
  bool pipelined = false;
  /// Solved minimum II when the config asked for min-II solving
  /// (ExploreConfig::solve_min_ii) and the schedule stage was reached;
  /// 0 otherwise.
  int min_ii = 0;
  double delay_ns = 0;  ///< II x Tclk (inverse throughput)
  double area = 0;
  double power_mw = 0;
  bool feasible = false;
  /// Why the configuration is infeasible; empty when feasible. Prefixed
  /// with the failing diagnostic's structured coordinates —
  /// "[stage/code] message" — so grid consumers can classify failures
  /// (options vs compile vs schedule) without parsing the free-form text.
  std::string failure;
  /// True when the run was cut short cooperatively rather than proven
  /// infeasible: a stop request ("cancelled") or the serve layer skipping
  /// the point before dispatch. Always paired with feasible == false.
  bool cancelled = false;

  // Figure 9-style profiling of the run that produced the point.
  double sched_seconds = 0;  ///< wall-clock scheduling time
  int passes = 0;            ///< scheduling passes taken
  int relaxations = 0;       ///< expert relaxation actions applied
  /// Which scheduler backend produced the point ("list" / "sdc"). A
  /// kAuto config reports the backend the scheduler resolved to; only a
  /// run that failed before scheduling keeps "auto".
  std::string backend;
  /// How the run used a cross-run scheduling seed, when one was offered
  /// through RunPointExtras ("none" / "replay" / "seeded" / "miss"; see
  /// sched::SeedUse). Plain explore() runs always report "none".
  std::string seed_use = "none";

  // Memory constraint family observability (all 0 for memory-free
  // designs; see mem/memory.hpp and docs/MEMORY.md).
  /// Bank-conflict / port-pressure / window-miss restraints across all
  /// scheduling passes.
  int memory_restraints = 0;
  /// Total banks across the schedule's memory pools, post-relaxation
  /// (re-bank raises this above the spec's starting value).
  int mem_banks = 0;
  /// Total port instances across the memory pools, post-relaxation.
  int mem_ports = 0;
};

struct ExploreConfig {
  std::string curve;
  double tclk_ps = 0;
  int latency = 0;       ///< target LI (used as both min and max bound)
  int pipeline_ii = 0;   ///< 0 = sequential
  /// Solve for the minimum feasible II instead of pinning pipeline_ii
  /// (FlowOptions::solve_min_ii); pipeline_ii then floors the search.
  /// The point reports the solved II in ExplorePoint::min_ii.
  bool solve_min_ii = false;
  /// Scheduler backend for this configuration (backends can be swept
  /// against each other in one grid; kAuto lets the scheduler pick per
  /// problem and the point reports the resolved choice).
  sched::BackendKind backend = sched::BackendKind::kList;
  /// Honor the session workload's mem::MemorySpec (FlowOptions::
  /// memory_aware). Off = memory-blind baseline for the same grid point.
  bool memory_aware = true;
  /// Per-point work-unit budget (FlowOptions::budget). Deterministic:
  /// a budget-exhausted point is identical at every thread count.
  support::BudgetLimits budget = {};
};

struct ExploreOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = run
  /// serially on the calling thread (negative values are treated as 1).
  /// The point vector is deterministic and ordered either way.
  int threads = 1;
  /// Invoked once per finished configuration, serialized under a lock (a
  /// streaming/serving caller can print or publish from it). `completed`
  /// counts finished configurations so far (1..total); completion order
  /// may differ from config order when threads > 1.
  std::function<void(const ExplorePoint& point, std::size_t completed,
                     std::size_t total)>
      progress;
};

/// Seed plumbing for run_point: lets a serving layer thread a
/// sched::ScheduleSeed from a finished neighboring configuration into a
/// run, and capture the run's own seed for later reuse. Exploration's
/// determinism contract is preserved because a seed can only change pass
/// counts, never the schedule (the driver restarts cold on a seed miss).
struct RunPointExtras {
  /// Seed to offer the scheduler (must describe the same module; the
  /// pointee must outlive the call). nullptr = cold.
  const sched::ScheduleSeed* seed = nullptr;
  /// Record this run's transferable state into `seed_out`.
  bool record_seed = false;
  /// Filled when record_seed is set and the run succeeded.
  sched::ScheduleSeed seed_out;
  bool seed_recorded = false;
  /// Cooperative cancellation for the run (FlowOptions::stop); observed
  /// at scheduling pass boundaries. The pointee must outlive the call.
  const support::StopSource* stop = nullptr;
};

/// Runs ONE configuration against `session`'s compiled module — the same
/// routine explore() fans out over its worker pool, exposed for callers
/// (e.g. the serve layer) that manage their own pools and want seed
/// plumbing. Thread-safe for concurrent calls on one session.
ExplorePoint run_point(const FlowSession& session, const ExploreConfig& cfg,
                       RunPointExtras* extras = nullptr);

/// Runs one flow per configuration against `session`'s compiled module,
/// fanning out across `options.threads` workers.
std::vector<ExplorePoint> explore(const FlowSession& session,
                                  const std::vector<ExploreConfig>& configs,
                                  const ExploreOptions& options = {});

/// Convenience overload: compiles `make_workload()` once into a session.
std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs,
    const ExploreOptions& options = {});

/// The paper's IDCT experiment grid: pipelined and non-pipelined
/// micro-architectures with latencies {8, 16, 32}, clock scaled so each
/// curve spans a range of delays (25 configurations).
std::vector<ExploreConfig> idct_paper_grid();

}  // namespace hls::core
