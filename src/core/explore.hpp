// Design-space exploration (paper Section VI, Figures 10-11): sweep
// micro-architectures (sequential / pipelined x latency x clock) and
// collect (delay, area, power) points per curve.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/flow.hpp"

namespace hls::core {

struct ExplorePoint {
  std::string curve;    ///< e.g. "Pipelined 32", "Non-Pipelined 16"
  double tclk_ps = 0;
  int latency = 0;      ///< LI of the configuration
  bool pipelined = false;
  double delay_ns = 0;  ///< II x Tclk (inverse throughput)
  double area = 0;
  double power_mw = 0;
  bool feasible = false;
};

struct ExploreConfig {
  std::string curve;
  double tclk_ps = 0;
  int latency = 0;       ///< target LI (used as both min and max bound)
  int pipeline_ii = 0;   ///< 0 = sequential
};

/// Runs the flow once per configuration on fresh copies of the workload.
std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs);

/// The paper's IDCT experiment grid: pipelined and non-pipelined
/// micro-architectures with latencies {8, 16, 32}, clock scaled so each
/// curve spans a range of delays (25 configurations).
std::vector<ExploreConfig> idct_paper_grid();

}  // namespace hls::core
