// Design-space exploration (paper Section VI, Figures 10-11): sweep
// micro-architectures (sequential / pipelined x latency x clock) and
// collect (delay, area, power) points per curve.
//
// The engine is batched: the workload is compiled once into a FlowSession
// and the configurations fan out across a worker pool. The returned point
// vector is ordered like `configs`, and every result field except the
// wall-clock `sched_seconds` is identical regardless of the thread count
// (every run schedules the same immutable compiled module).
//
// Model-guided mode (ExploreOptions::guided / ::prune, docs/EXPLORE.md):
// configurations that differ only in clock period form a *chain*; chains
// become the parallel work units, dispatched longest-predicted-first
// (core/cost_model.hpp) for makespan, and each chain runs serially from
// its loosest clock down, threading each success's sched::ScheduleSeed
// into the next point. With `prune`, a provable infeasibility part-way
// down a chain skips every strictly tighter clock on that chain —
// reported as synthetic `[explore/dominated]` points without running.
// Either way the engine stays deterministic at every thread count, and
// every point it does run is field-identical to the exhaustive engine's
// (seeds never change schedules or pass counts; golden-suite enforced).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace hls::core {

struct ExplorePoint {
  std::string curve;    ///< e.g. "Pipelined 32", "Non-Pipelined 16"
  double tclk_ps = 0;
  int latency = 0;      ///< LI of the configuration
  bool pipelined = false;
  /// Solved minimum II when the config asked for min-II solving
  /// (ExploreConfig::solve_min_ii) and the schedule stage was reached;
  /// 0 otherwise.
  int min_ii = 0;
  double delay_ns = 0;  ///< II x Tclk (inverse throughput)
  double area = 0;
  double power_mw = 0;
  bool feasible = false;
  /// Why the configuration is infeasible; empty when feasible. Prefixed
  /// with the failing diagnostic's structured coordinates —
  /// "[stage/code] message" — so grid consumers can classify failures
  /// (options vs compile vs schedule) without parsing the free-form text.
  std::string failure;
  /// True when the run was cut short cooperatively rather than proven
  /// infeasible: a stop request ("cancelled") or the serve layer skipping
  /// the point before dispatch. Always paired with feasible == false.
  bool cancelled = false;

  // Figure 9-style profiling of the run that produced the point.
  double sched_seconds = 0;  ///< wall-clock scheduling time
  int passes = 0;            ///< scheduling passes taken
  int relaxations = 0;       ///< expert relaxation actions applied
  /// Which scheduler backend produced the point ("list" / "sdc"). A
  /// kAuto config reports the backend the scheduler resolved to; only a
  /// run that failed before scheduling keeps "auto".
  std::string backend;
  /// How the run used a cross-run scheduling seed, when one was offered
  /// through RunPointExtras ("none" / "replay" / "seeded" / "miss"; see
  /// sched::SeedUse). Plain explore() runs always report "none".
  std::string seed_use = "none";

  /// Constraint-system totals across the run's scheduling passes (SDC
  /// backend; 0 for list runs): static difference-constraint edges and
  /// Bellman-Ford edge relaxations (PassRecord::constraint_edges /
  /// ::propagation_relaxations summed over the pass history). Surfaced
  /// per point so grid-level encoding regressions are visible in
  /// BENCH_explore.json, not only as wall-clock.
  std::uint64_t constraint_edges = 0;
  std::uint64_t propagation_relaxations = 0;

  // Memory constraint family observability (all 0 for memory-free
  // designs; see mem/memory.hpp and docs/MEMORY.md).
  /// Bank-conflict / port-pressure / window-miss restraints across all
  /// scheduling passes.
  int memory_restraints = 0;
  /// Total banks across the schedule's memory pools, post-relaxation
  /// (re-bank raises this above the spec's starting value).
  int mem_banks = 0;
  /// Total port instances across the memory pools, post-relaxation.
  int mem_ports = 0;
};

struct ExploreConfig {
  std::string curve;
  double tclk_ps = 0;
  int latency = 0;       ///< target LI (used as both min and max bound)
  int pipeline_ii = 0;   ///< 0 = sequential
  /// Solve for the minimum feasible II instead of pinning pipeline_ii
  /// (FlowOptions::solve_min_ii); pipeline_ii then floors the search.
  /// The point reports the solved II in ExplorePoint::min_ii.
  bool solve_min_ii = false;
  /// Scheduler backend for this configuration (backends can be swept
  /// against each other in one grid; kAuto lets the scheduler pick per
  /// problem and the point reports the resolved choice).
  sched::BackendKind backend = sched::BackendKind::kList;
  /// Honor the session workload's mem::MemorySpec (FlowOptions::
  /// memory_aware). Off = memory-blind baseline for the same grid point.
  bool memory_aware = true;
  /// Per-point work-unit budget (FlowOptions::budget). Deterministic:
  /// a budget-exhausted point is identical at every thread count.
  support::BudgetLimits budget = {};
};

struct ExploreOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = run
  /// serially on the calling thread (negative values are treated as 1).
  /// The point vector is deterministic and ordered either way.
  int threads = 1;
  /// Invoked once per finished configuration, serialized under a lock (a
  /// streaming/serving caller can print or publish from it). `completed`
  /// counts finished configurations so far (1..total); completion order
  /// may differ from config order when threads > 1.
  std::function<void(const ExplorePoint& point, std::size_t completed,
                     std::size_t total)>
      progress;

  /// Model-guided execution: run the grid as clock-ladder chains
  /// (explore_chain_key) dispatched longest-predicted-first
  /// (predicted_config_cost_ns), each chain serially loosest-clock-first
  /// with in-chain warm-start seed sharing. Points the engine runs are
  /// field-identical to the exhaustive engine's except `seed_use` (which
  /// reports the sharing) and wall-clock; the result vector stays ordered
  /// like `configs`.
  bool guided = false;
  /// Infeasibility-dominance pruning (implies the guided chain engine):
  /// once a chain point fails with a *provable* schedule-stage code
  /// (proves_infeasibility), every strictly tighter clock on that chain
  /// is reported as a synthetic `[explore/dominated]` point without
  /// running. Sound because feasibility is monotone in the clock period
  /// along a chain: a schedule found at a tight clock is valid verbatim
  /// at a looser one (chaining slack only grows), and the deterministic
  /// relaxation ladder preserves that monotonicity (test-enforced).
  /// Budget/cancellation failures are not proofs and never prune.
  bool prune = false;
};

/// Seed plumbing for run_point: lets a serving layer thread a
/// sched::ScheduleSeed from a finished neighboring configuration into a
/// run, and capture the run's own seed for later reuse. Exploration's
/// determinism contract is preserved because a seed can only change pass
/// counts, never the schedule (the driver restarts cold on a seed miss).
struct RunPointExtras {
  /// Seed to offer the scheduler (must describe the same module; the
  /// pointee must outlive the call). nullptr = cold.
  const sched::ScheduleSeed* seed = nullptr;
  /// Record this run's transferable state into `seed_out`.
  bool record_seed = false;
  /// Filled when record_seed is set and the run succeeded.
  sched::ScheduleSeed seed_out;
  bool seed_recorded = false;
  /// Cooperative cancellation for the run (FlowOptions::stop); observed
  /// at scheduling pass boundaries. The pointee must outlive the call.
  const support::StopSource* stop = nullptr;
};

/// Runs ONE configuration against `session`'s compiled module — the same
/// routine explore() fans out over its worker pool, exposed for callers
/// (e.g. the serve layer) that manage their own pools and want seed
/// plumbing. Thread-safe for concurrent calls on one session.
ExplorePoint run_point(const FlowSession& session, const ExploreConfig& cfg,
                       RunPointExtras* extras = nullptr);

/// Runs one flow per configuration against `session`'s compiled module,
/// fanning out across `options.threads` workers.
std::vector<ExplorePoint> explore(const FlowSession& session,
                                  const std::vector<ExploreConfig>& configs,
                                  const ExploreOptions& options = {});

/// Convenience overload: compiles `make_workload()` once into a session.
std::vector<ExplorePoint> explore(
    const std::function<workloads::Workload()>& make_workload,
    const std::vector<ExploreConfig>& configs,
    const ExploreOptions& options = {});

/// The paper's IDCT experiment grid: pipelined and non-pipelined
/// micro-architectures with latencies {8, 16, 32}, clock scaled so each
/// curve spans a range of delays (25 configurations).
std::vector<ExploreConfig> idct_paper_grid();

// ---- Model-guided engine building blocks (shared with the serve layer
// ---- and the guided-explore tests/bench).

/// Failure prefix stamped on points skipped by dominance pruning.
inline constexpr char kDominatedPrefix[] = "[explore/dominated]";

/// True when the point's failure is a *proof* of infeasibility for its
/// configuration — a schedule-stage result that cannot change on re-run:
/// the relaxation ladder exhausted every expert action
/// ("[schedule/infeasible]") or min-II search exhausted every candidate
/// ("[schedule/no_feasible_ii]"). Budget, deadline and cancellation
/// failures say the run was cut short, not that the point is infeasible,
/// so they never justify pruning.
bool proves_infeasibility(const ExplorePoint& point);

/// Chain (family) key: every ExploreConfig field EXCEPT the clock
/// period, so configs with equal keys form one clock ladder — the unit
/// of in-chain seed sharing and of dominance pruning. Pure and
/// deterministic.
std::string explore_chain_key(const ExploreConfig& cfg);

/// Predicted scheduling cost of one configuration in nanoseconds
/// (core/cost_model.hpp), from features available before any run: the
/// session's post-optimizer op count, the config's pipelining, and the
/// memory-pool count when memory-aware. Used to ORDER work (chain
/// dispatch, serve admission) — never to gate or alter results.
double predicted_config_cost_ns(const FlowSession& session,
                                const ExploreConfig& cfg);

/// The guided execution order as a permutation of config indices: chains
/// sorted by predicted cost descending (longest-processing-time-first
/// dispatch), each chain's members loosest clock first (ties by config
/// index). explore(guided) consumes chains directly; the serve layer
/// reorders a job's points with this at admission.
std::vector<std::size_t> guided_order(const FlowSession& session,
                                      const std::vector<ExploreConfig>& configs);

}  // namespace hls::core
