#include "core/flow.hpp"

#include "opt/pass.hpp"
#include "pipeline/straighten.hpp"
#include "support/strings.hpp"
#include "tech/library.hpp"

namespace hls::core {

FlowResult run_flow(workloads::Workload workload,
                    const FlowOptions& options) {
  FlowResult result;
  result.module = std::make_unique<ir::Module>(std::move(workload.module));
  result.loop = workload.loop;
  ir::Module& m = *result.module;

  // ---- Optimizer (paper Section II) -----------------------------------------
  if (options.run_optimizer) {
    auto pm = opt::PassManager::standard_pipeline();
    pm.run_to_fixpoint(m);
  }
  // Branch predication is required before scheduling (and is what makes
  // loop bodies straight lines for pipelining).
  pipeline::straighten(m);

  // ---- Scheduling ------------------------------------------------------------
  ir::Stmt& loop_stmt = m.thread.tree.stmt_mut(result.loop);
  ir::LatencyBound latency = loop_stmt.latency;
  if (options.latency_min > 0) latency.min = options.latency_min;
  if (options.latency_max > 0) latency.max = options.latency_max;

  sched::SchedulerOptions sopts;
  sopts.tclk_ps = options.tclk_ps;
  sopts.lib = options.lib != nullptr ? options.lib : &tech::artisan90();
  if (options.pipeline_ii > 0) {
    sopts.pipeline = {true, options.pipeline_ii};
    loop_stmt.pipeline = {true, options.pipeline_ii};
  }
  sopts.enable_chaining = options.enable_chaining;
  sopts.enable_move_scc = options.enable_move_scc;
  sopts.avoid_comb_cycles = options.avoid_comb_cycles;
  sopts.use_mutual_exclusivity = options.use_mutual_exclusivity;
  sopts.allow_accept_slack = options.allow_accept_slack;

  const auto region = ir::linearize(m.thread.tree, result.loop);
  const auto t0 = std::chrono::steady_clock::now();
  result.sched = sched::schedule_region(m.thread.dfg, region, latency,
                                        m.ports.size(), sopts);
  const auto t1 = std::chrono::steady_clock::now();
  result.sched_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  if (!result.sched.success) {
    result.failure_reason =
        strf("scheduling failed: ", result.sched.failure_reason);
    return result;
  }

  // ---- Output generation --------------------------------------------------------
  result.machine = rtl::build_machine(m, result.loop, result.sched.schedule);
  if (options.emit_verilog) {
    result.verilog = rtl::emit_verilog(result.machine);
  }

  // ---- Synthesis estimates ---------------------------------------------------------
  const tech::Library& lib = *sopts.lib;
  result.area = synth::apply_recovery(
      synth::estimate_area(result.machine, lib),
      result.sched.schedule.worst_slack_ps, options.tclk_ps);
  result.power = synth::estimate_power(result.machine, lib, options.tclk_ps,
                                       result.area);
  result.delay_ns =
      result.machine.loop.initiation_interval() * options.tclk_ps / 1000.0;
  result.success = true;
  return result;
}

}  // namespace hls::core
