#include "core/flow.hpp"

#include "core/session.hpp"

namespace hls::core {

FlowResult run_flow(workloads::Workload workload, const FlowOptions& options) {
  SessionOptions sopts;
  sopts.run_optimizer = options.run_optimizer;
  // Expiring session: the compiled module is moved into the run, so the
  // one-shot path costs no extra module copy over the pre-session facade.
  return FlowSession(std::move(workload), sopts).run(options);
}

}  // namespace hls::core
