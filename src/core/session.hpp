// The staged, reusable flow API.
//
// A FlowSession does the front-end work exactly once — build, validate,
// optimize, predicate (paper Figure 2's "optimizer" box) — producing an
// immutable compiled module. Every `run(FlowOptions)` then clones only the
// mutable state and executes micro-architecture selection → scheduling →
// RTL → synthesis. Because the compiled module is never written after
// construction, concurrent `run` calls on one session are safe; this is
// what the parallel design-space exploration engine (explore.hpp) builds
// on.
//
//   core::FlowSession session(workloads::make_idct8());
//   core::FlowOptions pipe;  pipe.pipeline_ii = 8;
//   auto r1 = session.run(pipe);     // full flow
//
//   core::FlowRun run = session.begin(pipe);   // or stage by stage:
//   run.select_microarch() && run.schedule() &&
//       run.generate_rtl() && run.estimate();
//   auto r2 = run.take();
#pragma once

#include "core/flow.hpp"

namespace hls::core {

struct SessionOptions {
  /// Run the standard optimizer pipeline at compile time (paper Section
  /// II). Mirrors FlowOptions::run_optimizer for the one-shot facade.
  bool run_optimizer = true;
  /// Structurally validate the compiled IR; problems become "compile"
  /// diagnostics and every subsequent run fails cleanly.
  bool validate_ir = true;
  /// Prewarm the (class, width) and mux-fanin delay tables once at
  /// construction and share them read-only with every run's
  /// TimingEngine, so concurrent explore() workers skip the cold library
  /// lookups (each engine keeps its own query counters). Runs against a
  /// non-default library fall back to engine-local memo tables.
  bool share_timing_tables = true;
};

class FlowSession;

/// One in-flight flow execution over a session's compiled module. Stages
/// must be invoked in order (select_microarch → schedule → generate_rtl →
/// estimate); each returns false once the run has failed, so the chain
/// short-circuits. Construction takes over a copy of the compiled module
/// (the only state the back-end stages mutate) and nothing else; the
/// single-use facade moves the module in instead of copying.
class FlowRun {
 public:
  /// Applies the pipelining directive and latency-bound overrides to the
  /// cloned module and prepares the scheduling problem. Fails on
  /// malformed options (validate_flow_options) or compile diagnostics.
  bool select_microarch();
  /// Iterative simultaneous scheduling and binding (paper Section IV).
  bool schedule();
  /// Folds the schedule into the FSM+datapath machine and, when
  /// requested, emits Verilog.
  bool generate_rtl();
  /// Area / power / delay estimates; marks the run successful.
  bool estimate();

  /// Runs every remaining stage in order.
  bool run_all();

  const FlowResult& result() const { return result_; }
  /// Moves the accumulated result out; the run is finished afterwards.
  FlowResult take();

 private:
  friend class FlowSession;
  FlowRun(FlowOptions options, std::unique_ptr<ir::Module> module,
          ir::StmtId loop, double compile_seconds,
          const std::vector<Diagnostic>& session_diags,
          std::shared_ptr<const timing::DelayTables> shared_delays,
          mem::MemorySpec memory);

  void fail(std::string stage, std::string code, std::string message);

  enum class Stage : std::uint8_t {
    kMicroarch,
    kSchedule,
    kRtl,
    kEstimate,
    kDone,
    kFailed,
  };

  FlowOptions options_;
  FlowResult result_;
  Stage next_ = Stage::kMicroarch;
  /// The workload's memory constraints; sopts_.memory points here (the
  /// run owns a copy so the && facade can expire the session).
  mem::MemorySpec memory_;
  /// Keeps the session's prewarmed delay tables alive for the schedule
  /// stage even when the session itself has expired (the && facade).
  std::shared_ptr<const timing::DelayTables> shared_delays_;

  // Prepared by select_microarch for schedule().
  sched::SchedulerOptions sopts_;
  ir::LatencyBound latency_;
  ir::LinearRegion region_;
};

class FlowSession {
 public:
  /// Compiles the workload: structural validation first, then (when the
  /// IR is sound) the optimizer to fixpoint and branch predication
  /// (straighten). Construction never throws on malformed input;
  /// problems land in diagnostics() and runs fail cleanly.
  explicit FlowSession(workloads::Workload workload,
                       const SessionOptions& options = {});

  const std::string& name() const { return name_; }
  /// The immutable compiled module. Never mutated after construction.
  const ir::Module& module() const { return compiled_; }
  ir::StmtId loop() const { return loop_; }
  /// The workload's memory constraints (empty for most designs).
  const mem::MemorySpec& memory() const { return memory_; }

  /// Stable 64-bit hash of the compiled module (post-optimizer IR dump
  /// plus the schedulable loop id; the workload *name* is deliberately
  /// excluded so renamed but structurally identical designs collide).
  /// This is the serve layer's session-cache key: two submissions with
  /// equal hashes schedule identically under equal options, so the second
  /// can skip the front end entirely. Computed once at construction.
  std::uint64_t module_hash() const { return module_hash_; }

  /// True when compilation produced no error diagnostics.
  bool ok() const;
  /// Compile-time diagnostics (stage "compile").
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  /// Wall-clock seconds spent compiling (optimize + predicate + validate).
  double compile_seconds() const { return compile_seconds_; }
  /// The session-wide prewarmed delay tables (null when sharing is off).
  const timing::DelayTables* delay_tables() const {
    return delay_tables_.get();
  }

  /// Starts a staged run against a clone of the compiled module.
  /// Thread-safe: `this` is only read.
  FlowRun begin(FlowOptions options) const&;
  /// Single-use fast path on an expiring session: the compiled module is
  /// moved into the run instead of cloned (what run_flow uses).
  FlowRun begin(FlowOptions options) &&;
  /// Convenience: begin() + run_all() + take().
  FlowResult run(const FlowOptions& options) const&;
  FlowResult run(const FlowOptions& options) &&;

 private:
  friend class FlowRun;

  std::string name_;
  ir::Module compiled_;
  ir::StmtId loop_ = ir::kNoStmt;
  mem::MemorySpec memory_;
  std::uint64_t module_hash_ = 0;
  std::vector<Diagnostic> diags_;
  double compile_seconds_ = 0;
  std::shared_ptr<const timing::DelayTables> delay_tables_;
};

}  // namespace hls::core
