// Report rendering: schedule tables (the paper's Table 2 format), area /
// power breakdowns, relaxation traces, and machine-readable JSON dumps.
#pragma once

#include <string>

#include "core/flow.hpp"

namespace hls::core {

/// Multi-section human-readable report of a flow result.
std::string render_report(const FlowResult& r);

/// The scheduling-pass / restraint / action trace (expert system log).
std::string render_trace(const sched::SchedulerResult& r);

/// Machine-readable summary (schedule, area, power, stats).
std::string render_json(const FlowResult& r);

}  // namespace hls::core
