// The end-to-end HLS flow (paper Figure 2): optimizer → micro-architecture
// (pipelining directive) → simultaneous scheduling and binding → output
// generation (RTL model + Verilog) → synthesis estimates.
//
// Two entry points:
//  * `core::FlowSession` (session.hpp) — the staged, reusable API: compile
//    a workload once, then run many micro-architecture configurations
//    against the immutable compiled module (possibly concurrently).
//  * `core::run_flow` — the one-shot facade, now a thin wrapper over a
//    single-use FlowSession:
//
//   core::FlowOptions opts;
//   opts.tclk_ps = 1600;
//   opts.pipeline_ii = 2;                  // 0 = sequential
//   auto result = core::run_flow(workloads::make_idct8(), opts);
//   std::cout << result.sched.schedule.to_table(result.module->thread.dfg);
#pragma once

#include <chrono>
#include <memory>

#include "rtl/sim.hpp"
#include "rtl/verilog.hpp"
#include "sched/driver.hpp"
#include "support/diagnostics.hpp"
#include "synth/power.hpp"
#include "synth/recovery.hpp"
#include "workloads/workloads.hpp"

namespace hls::core {

struct FlowOptions {
  double tclk_ps = 1600;
  const tech::Library* lib = nullptr;  ///< defaults to artisan90
  /// Scheduling backend (list, SDC, or kAuto to let the scheduler pick
  /// per problem; see sched/backend.hpp). Reports — render_report,
  /// render_json, ExplorePoint — always carry the resolved backend.
  sched::BackendKind backend = sched::BackendKind::kList;
  /// 0 = sequential micro-architecture; >0 = pipeline with this II.
  int pipeline_ii = 0;
  /// Solve for the minimum feasible initiation interval instead of
  /// taking pipeline_ii as given (sched::SchedulerOptions::solve_min_ii).
  /// Implies a pipelined micro-architecture; pipeline_ii > 0 then acts
  /// as the search floor (0 floors the search at II=1). The solved II is
  /// reported as FlowResult::sched.min_ii and in render_report /
  /// render_json ("min_ii"); no feasible II fails the schedule stage
  /// with code "no_feasible_ii".
  bool solve_min_ii = false;
  /// Override the loop's latency bound (0 keeps the designer's bound).
  int latency_min = 0;
  int latency_max = 0;
  bool run_optimizer = true;
  /// Paper feature switches, forwarded to the scheduler.
  bool enable_chaining = true;
  bool enable_move_scc = true;
  bool avoid_comb_cycles = true;
  bool use_mutual_exclusivity = true;
  bool allow_accept_slack = true;
  /// Honor the workload's mem::MemorySpec (banked arrays, port counts,
  /// I/O timing windows; docs/MEMORY.md). Off = schedule as if the spec
  /// were empty — the memory-blind baseline for A/B comparisons.
  bool memory_aware = true;
  /// Warm-start relaxation passes from the prior pass's decision trace
  /// (both backends; bit-identical results either way). Exposed here so
  /// warm/cold A/B comparisons can run at the flow/explore level.
  bool warm_start = true;
  /// Emit Verilog text into the result (costs a little time).
  bool emit_verilog = true;

  /// Deterministic work-unit budget for the scheduling stage
  /// (support/budget.hpp): pass/commit/relaxation-step limits checked at
  /// pass boundaries, plus the opt-in advisory wall-clock deadline.
  /// Exhaustion fails the run with a "schedule" diagnostic whose code is
  /// "pass_budget_exhausted" / "budget_exhausted" / "deadline_exceeded".
  support::BudgetLimits budget;
  /// Cooperative cancellation, observed at scheduling pass boundaries
  /// (diagnostic code "cancelled"). The pointee must outlive the run.
  const support::StopSource* stop = nullptr;

  /// Cross-run scheduling seed (sched::ScheduleSeed) from a finished run
  /// on the SAME module — the serve layer's trace cache feeds this.
  /// Incompatible seeds are ignored, exact-config seeds replay bit-exact
  /// in one pass, and neighbor seeds only track the cold ladder, so the
  /// result is never changed by seeding (SchedulerResult::seed_use
  /// reports what happened). The pointee must outlive the run.
  const sched::ScheduleSeed* seed = nullptr;
  /// Record a ScheduleSeed into SchedulerResult::seed_out on success.
  bool record_seed = false;
};

/// Checks a FlowOptions for values that would cause undefined behavior
/// downstream (non-positive clock, negative II, inverted latency bound).
/// Returns the problems as structured diagnostics with stage "options";
/// an empty vector means the options are well-formed.
std::vector<Diagnostic> validate_flow_options(const FlowOptions& options);

/// Wall-clock seconds per flow stage. `compile_seconds` covers the
/// session-level front end (optimize + predicate), which is paid once per
/// FlowSession and therefore amortized across its runs.
struct StageTimings {
  double compile_seconds = 0;
  double microarch_seconds = 0;
  double sched_seconds = 0;
  double rtl_seconds = 0;
  double synth_seconds = 0;
};

struct FlowResult {
  bool success = false;
  /// Human-readable summary of `diagnostics` (kept for existing callers;
  /// empty on success).
  std::string failure_reason;
  /// Structured failure/warning records: each names the stage that
  /// produced it ("options", "compile", "schedule", ...) and a stable
  /// machine-readable code.
  std::vector<Diagnostic> diagnostics;
  /// The transformed module (owned; machine and reports reference it).
  std::unique_ptr<ir::Module> module;
  ir::StmtId loop = ir::kNoStmt;
  sched::SchedulerResult sched;
  rtl::ModuleMachine machine;
  synth::AreaReport area;
  synth::PowerReport power;
  std::string verilog;
  double sched_seconds = 0;  ///< wall-clock scheduling time (Figure 9)
  StageTimings timings;      ///< per-stage wall-clock breakdown

  /// Delay in ns per iteration: II × Tclk (the paper's Figures 10-11 x
  /// axis: "the delay is actually the inverse of the throughput").
  double delay_ns = 0;
};

/// One-shot convenience: compiles `workload` into a single-use session and
/// runs it once. Prefer FlowSession when running several configurations of
/// the same workload.
FlowResult run_flow(workloads::Workload workload, const FlowOptions& options);

}  // namespace hls::core
