#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace hls::core {

namespace coeffs {
#include "core/cost_model_coeffs.inc"
}  // namespace coeffs

namespace {

double power_law(double a, double e, std::size_t ops) {
  // Clamp to one op: the laws were fitted on 100..6400-op designs and a
  // zero-op region would otherwise predict a zero (list) or infinite
  // (negative-exponent discount) cost.
  const double n = static_cast<double>(std::max<std::size_t>(ops, 1));
  return a * std::pow(n, e);
}

}  // namespace

double predicted_ns_per_pass(const CostFeatures& features, bool sdc) {
  if (!sdc) {
    return power_law(coeffs::kListPassA, coeffs::kListPassE, features.ops);
  }
  double ns = features.warm_start
                  ? power_law(coeffs::kSdcWarmPassA, coeffs::kSdcWarmPassE,
                              features.ops)
                  : power_law(coeffs::kSdcColdPassA, coeffs::kSdcColdPassE,
                              features.ops);
  if (features.pipelined && features.recurrences > 0) {
    // The feed-forward sweep overstates SDC on recurrence problems: II
    // windows bound the constraint graph the Bellman-Ford propagation
    // walks, so the observed per-pass ratio CLOSES with size instead of
    // widening (the committed recurrence A/B). The discount is that
    // observed-over-feed-forward correction.
    ns *= power_law(coeffs::kSdcRecurrenceDiscountC,
                    coeffs::kSdcRecurrenceDiscountG, features.ops);
  }
  return ns;
}

double predicted_passes(const CostFeatures& features) {
  return coeffs::kBasePasses *
         (1.0 + coeffs::kMemoryPoolPassBump *
                    static_cast<double>(features.memory_pools));
}

double predicted_cost_ns(const CostFeatures& features, bool sdc) {
  return predicted_ns_per_pass(features, sdc) * predicted_passes(features);
}

bool model_prefers_sdc(const CostFeatures& features) {
  if (!features.pipelined || features.recurrences == 0) return false;
  return predicted_ns_per_pass(features, /*sdc=*/true) <=
         coeffs::kSdcAffordability *
             predicted_ns_per_pass(features, /*sdc=*/false);
}

}  // namespace hls::core
