// String formatting and manipulation helpers used across the HLS library.
//
// GCC 12 does not ship std::format, so `strf` provides a tiny stream-based
// substitute that is sufficient for diagnostics and report generation.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hls {

namespace detail {
inline void strf_append(std::ostringstream&) {}

template <typename T, typename... Rest>
void strf_append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  strf_append(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments using operator<< into a single string.
template <typename... Args>
std::string strf(const Args&... args) {
  std::ostringstream os;
  detail::strf_append(os, args...);
  return os.str();
}

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Left-pads `text` with spaces to at least `width` characters.
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads `text` with spaces to at least `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

/// Formats a double with `digits` digits after the decimal point.
std::string fmt_fixed(double value, int digits);

}  // namespace hls
