#include "support/dot.hpp"

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls {

DotWriter::DotWriter(std::string_view graph_name, bool directed)
    : directed_(directed) {
  out_ = strf(directed ? "digraph" : "graph", " \"", escape(graph_name),
              "\" {\n");
}

std::string DotWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void DotWriter::node(std::string_view id, std::string_view label,
                     std::string_view attrs) {
  out_ += strf("  \"", escape(id), "\" [label=\"", escape(label), "\"",
               attrs.empty() ? "" : ", ", attrs, "];\n");
}

void DotWriter::edge(std::string_view from, std::string_view to,
                     std::string_view label, std::string_view attrs) {
  out_ += strf("  \"", escape(from), "\" ", directed_ ? "->" : "--", " \"",
               escape(to), "\"");
  if (!label.empty() || !attrs.empty()) {
    out_ += " [";
    if (!label.empty()) out_ += strf("label=\"", escape(label), "\"");
    if (!label.empty() && !attrs.empty()) out_ += ", ";
    out_ += attrs;
    out_ += "]";
  }
  out_ += ";\n";
}

void DotWriter::begin_cluster(std::string_view id, std::string_view label) {
  out_ += strf("  subgraph \"cluster_", escape(id), "\" {\n  label=\"",
               escape(label), "\";\n");
}

void DotWriter::end_cluster() { out_ += "  }\n"; }

std::string DotWriter::finish() {
  HLS_ASSERT(!finished_, "DotWriter::finish called twice");
  finished_ = true;
  out_ += "}\n";
  return out_;
}

}  // namespace hls
