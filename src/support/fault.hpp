// Deterministic fault injection for robustness tests.
//
// A FaultInjector is a registry of named SITES — places in production
// code that can fail for reasons the test harness cannot provoke
// naturally (a transient compile hiccup, a cache eviction race, a socket
// EINTR/EPIPE). Production code asks `should_fail(site)` at each site; an
// unarmed injector (or a null pointer, the production default) always
// answers no, so the instrumented paths cost one pointer check.
//
// Two arming modes, both reproducible:
//  * Counted  — arm(site, count, skip): occurrences skip+1 .. skip+count
//    fail. This is the workhorse for "fail exactly the second insert".
//  * Seeded   — arm_random(site, p, seed): an hls::Rng Bernoulli trial per
//    occurrence. Same seed, same call sequence → same fault sequence.
//
// Determinism rule for callers: consult the injector only from SERIAL
// sections (the serve round loop, admission, barriers, socket loops) and
// let the decision travel with the work item into any thread pool. The
// injector itself is not thread-safe, and a site consulted under racy
// thread timing would make the fault sequence nondeterministic anyway.
//
// Registered sites (docs/FAULTS.md): session/compile, session/evict,
// trace/insert, trace/evict, worker/dispatch, drain/stop, socket/read,
// socket/write, socket/epipe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "support/rng.hpp"

namespace hls::support {

class FaultInjector {
 public:
  /// Arms `site` to fail occurrences skip+1 .. skip+count (counted from 1
  /// over the site's lifetime calls, including calls made before arming).
  void arm(std::string site, std::uint64_t count = 1, std::uint64_t skip = 0);

  /// Arms `site` to fail each occurrence with probability `p`, drawn from
  /// a dedicated Rng seeded with `seed`.
  void arm_random(std::string site, double probability, std::uint64_t seed);

  void disarm(std::string_view site);
  void reset() { sites_.clear(); }

  /// True when this occurrence of `site` should fail. Counts the call
  /// either way. Sites never armed always return false (and still count).
  bool should_fail(std::string_view site);

  /// Occurrences of `site` observed so far.
  std::uint64_t calls(std::string_view site) const;
  /// Occurrences of `site` that were failed.
  std::uint64_t fired(std::string_view site) const;
  std::uint64_t total_fired() const;

 private:
  struct Site {
    std::uint64_t calls = 0;
    std::uint64_t fired = 0;
    // Counted mode.
    std::uint64_t skip = 0;
    std::uint64_t count = 0;
    // Seeded mode.
    bool random = false;
    double probability = 0;
    Rng rng{0};
  };

  Site& site(std::string_view name);

  std::map<std::string, Site, std::less<>> sites_;
};

}  // namespace hls::support
