// Plain-text table rendering used by benches and examples to print the
// paper's tables (Tables 1-4) in a readable aligned format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/strings.hpp"

namespace hls {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; it must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Convenience: renders every cell with operator<<.
  template <typename... Ts>
  void row_of(const Ts&... cells) {
    row({strf(cells)...});
  }

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with column alignment, a header separator, and `indent` spaces
  /// of left margin.
  std::string to_string(int indent = 0) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hls
