#include "support/fault.hpp"

#include <utility>

namespace hls::support {

FaultInjector::Site& FaultInjector::site(std::string_view name) {
  const auto it = sites_.find(name);
  if (it != sites_.end()) return it->second;
  return sites_.emplace(std::string(name), Site{}).first->second;
}

void FaultInjector::arm(std::string site_name, std::uint64_t count,
                        std::uint64_t skip) {
  Site& s = site(site_name);
  s.skip = skip;
  s.count = count;
  s.random = false;
}

void FaultInjector::arm_random(std::string site_name, double probability,
                               std::uint64_t seed) {
  Site& s = site(site_name);
  s.random = true;
  s.probability = probability;
  s.rng = Rng(seed);
  s.skip = 0;
  s.count = 0;
}

void FaultInjector::disarm(std::string_view site_name) {
  const auto it = sites_.find(site_name);
  if (it == sites_.end()) return;
  it->second.count = 0;
  it->second.random = false;
}

bool FaultInjector::should_fail(std::string_view site_name) {
  Site& s = site(site_name);
  ++s.calls;
  bool fail = false;
  if (s.random) {
    fail = s.rng.chance(s.probability);
  } else if (s.count > 0) {
    fail = s.calls > s.skip && s.calls <= s.skip + s.count;
  }
  if (fail) ++s.fired;
  return fail;
}

std::uint64_t FaultInjector::calls(std::string_view site_name) const {
  const auto it = sites_.find(site_name);
  return it == sites_.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::fired(std::string_view site_name) const {
  const auto it = sites_.find(site_name);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const auto& [name, s] : sites_) total += s.fired;
  return total;
}

}  // namespace hls::support
