// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (random CDFG generation,
// property-test stimulus) use this generator so every run is reproducible
// from a seed; we never consult std::random_device or wall-clock time.
#pragma once

#include <cstdint>

#include "support/diagnostics.hpp"

namespace hls {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    HLS_ASSERT(lo <= hi, "uniform: empty range [", lo, ",", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hls
