// Minimal streaming JSON writer for machine-readable reports, plus a
// small recursive-descent reader (JsonValue / parse_json) for the inputs
// the serve layer accepts (job files, socket requests).
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("ops"); w.value(42);
//   w.key("list"); w.begin_array(); w.value(1); w.value(2); w.end_array();
//   w.end_object();
//   std::string text = w.str();
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hls {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; must be followed by a value or container.
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint64_t v);
  void value(double v);
  void value(bool v);
  void null();

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view raw);

 private:
  void pre_value();

  enum class Ctx : std::uint8_t { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool first = true;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
  std::string out_;
};

/// Parsed JSON document node. Objects keep their members in source order
/// (and duplicate keys resolve to the last occurrence, like every common
/// reader), so iterating a parsed job file is deterministic.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const;
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  const JsonValue& at(std::size_t i) const { return items_[i]; }

  /// Object member lookup; returns nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// `find` that also accepts dotted paths ("stats.passes").
  const JsonValue* find_path(std::string_view dotted) const;

  // Builder hooks used by the parser (and tests that assemble documents).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();
  void push_back(JsonValue v);                       ///< arrays
  void set(std::string key, JsonValue v);            ///< objects

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;       ///< array items / object values
  std::vector<std::string> keys_;      ///< object keys, parallel to items_
};

/// Parses one JSON document. On malformed input returns nullopt-like null
/// and sets `*error` (never throws): "<line>:<col>: message".
bool parse_json(std::string_view text, JsonValue* out, std::string* error);

}  // namespace hls
