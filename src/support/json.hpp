// Minimal streaming JSON writer for machine-readable reports.
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("ops"); w.value(42);
//   w.key("list"); w.begin_array(); w.value(1); w.value(2); w.end_array();
//   w.end_object();
//   std::string text = w.str();
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hls {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; must be followed by a value or container.
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint64_t v);
  void value(double v);
  void value(bool v);
  void null();

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view raw);

 private:
  void pre_value();

  enum class Ctx : std::uint8_t { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool first = true;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
  std::string out_;
};

}  // namespace hls
