// Rng is header-only; this translation unit exists so the support library
// always has at least the strings/diagnostics objects plus a stable anchor
// for the header, keeping the build graph uniform across modules.
#include "support/rng.hpp"

namespace hls {
static_assert(sizeof(Rng) == 4 * sizeof(std::uint64_t),
              "Rng must stay a plain 256-bit state");
}  // namespace hls
