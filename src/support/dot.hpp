// Tiny Graphviz DOT writer used to dump CFGs, DFGs, and schedules for
// visual inspection (Figures 3 and 5 of the paper).
#pragma once

#include <string>
#include <string_view>

namespace hls {

class DotWriter {
 public:
  explicit DotWriter(std::string_view graph_name, bool directed = true);

  /// Adds a node; `attrs` is raw DOT attribute text, e.g. "shape=box".
  void node(std::string_view id, std::string_view label,
            std::string_view attrs = {});
  void edge(std::string_view from, std::string_view to,
            std::string_view label = {}, std::string_view attrs = {});
  void begin_cluster(std::string_view id, std::string_view label);
  void end_cluster();

  /// Finalizes and returns the DOT text. The writer must not be reused.
  std::string finish();

  static std::string escape(std::string_view raw);

 private:
  std::string out_;
  bool directed_;
  bool finished_ = false;
};

}  // namespace hls
