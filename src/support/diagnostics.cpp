#include "support/diagnostics.hpp"

#include <algorithm>

namespace hls {

void assert_fail(const char* cond, const char* file, int line,
                 const std::string& msg) {
  throw InternalError(strf("HLS_ASSERT failed: ", cond, " at ", file, ":",
                           line, (msg.empty() ? "" : ": "), msg));
}

bool DiagEngine::has_errors() const {
  return std::any_of(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

std::string Diagnostic::to_string() const {
  const char* sev = severity == Severity::kError     ? "error"
                    : severity == Severity::kWarning ? "warning"
                                                     : "note";
  if (line > 0) {
    return strf(line, ":", column, ": ", sev, ": ", message);
  }
  std::string out;
  if (!stage.empty()) out += strf("[", stage, "] ");
  out += sev;
  if (!code.empty()) out += strf("(", code, ")");
  return strf(out, ": ", message);
}

std::string render_diagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += d.to_string() + "\n";
  return out;
}

std::string DiagEngine::to_string() const {
  return render_diagnostics(diags_);
}

}  // namespace hls
