#include "support/diagnostics.hpp"

#include <algorithm>

namespace hls {

void assert_fail(const char* cond, const char* file, int line,
                 const std::string& msg) {
  throw InternalError(strf("HLS_ASSERT failed: ", cond, " at ", file, ":",
                           line, (msg.empty() ? "" : ": "), msg));
}

bool DiagEngine::has_errors() const {
  return std::any_of(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

std::string DiagEngine::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    const char* sev = d.severity == Severity::kError     ? "error"
                      : d.severity == Severity::kWarning ? "warning"
                                                         : "note";
    if (d.line > 0) {
      out += strf(d.line, ":", d.column, ": ", sev, ": ", d.message, "\n");
    } else {
      out += strf(sev, ": ", d.message, "\n");
    }
  }
  return out;
}

}  // namespace hls
