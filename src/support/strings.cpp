#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace hls {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string s(text);
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string s(text);
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace hls
