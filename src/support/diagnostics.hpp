// Error handling primitives.
//
// The library distinguishes two failure classes:
//  * programming errors / broken invariants -> HLS_ASSERT, throws InternalError
//  * malformed user input (IR validation, DSL parse errors) -> UserError or
//    a DiagEngine that accumulates messages for batch reporting.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace hls {

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed user input (bad IR, unsatisfiable hard constraints).
class UserError : public std::runtime_error {
 public:
  explicit UserError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg);

#define HLS_ASSERT(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hls::assert_fail(#cond, __FILE__, __LINE__, ::hls::strf(__VA_ARGS__)); \
    }                                                                      \
  } while (false)

/// Severity of a collected diagnostic message.
enum class Severity { kNote, kWarning, kError };

/// A single diagnostic with optional source location (used by the DSL).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  int line = 0;    ///< 1-based; 0 when not tied to a source location
  int column = 0;  ///< 1-based; 0 when not tied to a source location
};

/// Accumulates diagnostics so callers can report all problems at once.
class DiagEngine {
 public:
  void error(std::string msg, int line = 0, int col = 0) {
    diags_.push_back({Severity::kError, std::move(msg), line, col});
  }
  void warning(std::string msg, int line = 0, int col = 0) {
    diags_.push_back({Severity::kWarning, std::move(msg), line, col});
  }
  void note(std::string msg, int line = 0, int col = 0) {
    diags_.push_back({Severity::kNote, std::move(msg), line, col});
  }

  bool has_errors() const;
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders all diagnostics, one per line, e.g. "3:7: error: ...".
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace hls
