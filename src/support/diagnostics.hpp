// Error handling primitives.
//
// The library distinguishes two failure classes:
//  * programming errors / broken invariants -> HLS_ASSERT, throws InternalError
//  * malformed user input (IR validation, DSL parse errors) -> UserError or
//    a DiagEngine that accumulates messages for batch reporting.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace hls {

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed user input (bad IR, unsatisfiable hard constraints).
class UserError : public std::runtime_error {
 public:
  explicit UserError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg);

#define HLS_ASSERT(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hls::assert_fail(#cond, __FILE__, __LINE__, ::hls::strf(__VA_ARGS__)); \
    }                                                                      \
  } while (false)

/// Severity of a collected diagnostic message.
enum class Severity { kNote, kWarning, kError };

/// A single diagnostic with optional source location (used by the DSL) and
/// optional flow provenance (used by core::FlowSession).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  int line = 0;    ///< 1-based; 0 when not tied to a source location
  int column = 0;  ///< 1-based; 0 when not tied to a source location
  /// Producing flow stage, e.g. "options", "microarch", "schedule";
  /// empty when the diagnostic is not tied to a flow stage.
  std::string stage;
  /// Stable machine-readable code, e.g. "recurrence-infeasible"; empty
  /// when the message is the only identity.
  std::string code;

  /// One-line rendering: "[stage] error(code): message" with the optional
  /// parts elided, or "line:col: error: message" for source diagnostics.
  std::string to_string() const;
};

/// Renders one diagnostic per line via Diagnostic::to_string.
std::string render_diagnostics(const std::vector<Diagnostic>& diags);

/// Accumulates diagnostics so callers can report all problems at once.
class DiagEngine {
 public:
  void error(std::string msg, int line = 0, int col = 0) {
    add(Severity::kError, std::move(msg), line, col);
  }
  void warning(std::string msg, int line = 0, int col = 0) {
    add(Severity::kWarning, std::move(msg), line, col);
  }
  void note(std::string msg, int line = 0, int col = 0) {
    add(Severity::kNote, std::move(msg), line, col);
  }

  bool has_errors() const;
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders all diagnostics, one per line, e.g. "3:7: error: ...".
  std::string to_string() const;

 private:
  void add(Severity severity, std::string msg, int line, int col) {
    Diagnostic d;
    d.severity = severity;
    d.message = std::move(msg);
    d.line = line;
    d.column = col;
    diags_.push_back(std::move(d));
  }

  std::vector<Diagnostic> diags_;
};

}  // namespace hls
