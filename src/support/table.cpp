#include "support/table.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HLS_ASSERT(!header_.empty(), "table needs at least one column");
}

void TextTable::row(std::vector<std::string> cells) {
  HLS_ASSERT(cells.size() == header_.size(), "row arity ", cells.size(),
             " != header arity ", header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const std::string margin(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    out += margin;
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += pad_right(r[c], widths[c]);
      if (c + 1 != r.size()) out += "  ";
    }
    // Trim trailing spaces introduced by padding the last column.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(header_);
  out += margin;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c], '-');
    if (c + 1 != widths.size()) out += "  ";
  }
  out += '\n';
  for (const auto& r : rows_) emit_row(r);
  return out;
}

}  // namespace hls
