#include "support/json.hpp"

#include <cstdio>

#include "support/diagnostics.hpp"

namespace hls {

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.ctx == Ctx::kObject) {
    HLS_ASSERT(top.key_pending, "JSON object value without key");
    top.key_pending = false;
    return;
  }
  if (!top.first) out_ += ',';
  top.first = false;
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back({Ctx::kObject});
}

void JsonWriter::end_object() {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
             "unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back({Ctx::kArray});
}

void JsonWriter::end_array() {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kArray,
             "unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
             "JSON key outside object");
  Level& top = stack_.back();
  HLS_ASSERT(!top.key_pending, "two JSON keys in a row");
  if (!top.first) out_ += ',';
  top.first = false;
  top.key_pending = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
}

void JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  pre_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  pre_value();
  out_ += "null";
}

}  // namespace hls
