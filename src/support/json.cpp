#include "support/json.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/diagnostics.hpp"

namespace hls {

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.ctx == Ctx::kObject) {
    HLS_ASSERT(top.key_pending, "JSON object value without key");
    top.key_pending = false;
    return;
  }
  if (!top.first) out_ += ',';
  top.first = false;
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back({Ctx::kObject});
}

void JsonWriter::end_object() {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
             "unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back({Ctx::kArray});
}

void JsonWriter::end_array() {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kArray,
             "unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  HLS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
             "JSON key outside object");
  Level& top = stack_.back();
  HLS_ASSERT(!top.key_pending, "two JSON keys in a row");
  if (!top.first) out_ += ',';
  top.first = false;
  top.key_pending = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
}

void JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  pre_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  pre_value();
  out_ += "null";
}

// ---- JsonValue -------------------------------------------------------------

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  if (!is_number()) return fallback;
  return static_cast<std::int64_t>(number_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  // Last occurrence wins, matching common readers; scan back to front.
  for (std::size_t i = keys_.size(); i > 0; --i) {
    if (keys_[i - 1] == key) return &items_[i - 1];
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  const JsonValue* cur = this;
  while (cur != nullptr && !dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    dotted = dot == std::string_view::npos ? std::string_view()
                                           : dotted.substr(dot + 1);
    cur = cur->find(head);
  }
  return cur;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::make_object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

void JsonValue::push_back(JsonValue v) {
  HLS_ASSERT(is_array(), "push_back on non-array JsonValue");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  HLS_ASSERT(is_object(), "set on non-object JsonValue");
  keys_.push_back(std::move(key));
  items_.push_back(std::move(v));
}

// ---- parse_json ------------------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      int line = 1, col = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      *error_ = std::to_string(line) + ":" + std::to_string(col) + ": " +
                message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        *out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        *out = JsonValue::make_null();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::make_object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->set(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::make_array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    std::string s;
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) return fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — job files are ASCII in
          // practice and lossless round-tripping is not a goal here).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    *out = std::move(s);
    return true;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    *out = JsonValue::make_number(v);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  if (error != nullptr) error->clear();
  JsonParser p(text, error);
  JsonValue v;
  if (!p.parse(&v)) {
    *out = JsonValue::make_null();
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace hls
