#include "support/budget.hpp"

#include "support/strings.hpp"

namespace hls::support {

const char* budget_verdict_code(BudgetVerdict verdict) {
  switch (verdict) {
    case BudgetVerdict::kOk: return "";
    case BudgetVerdict::kCancelled: return "cancelled";
    case BudgetVerdict::kDeadlineExceeded: return "deadline_exceeded";
    case BudgetVerdict::kCommitsExhausted:
    case BudgetVerdict::kRelaxExhausted: return "budget_exhausted";
  }
  return "";
}

Budget::Budget(const BudgetLimits& limits, const StopSource* stop)
    : limits_(limits),
      stop_(stop),
      armed_(std::chrono::steady_clock::now()) {}

BudgetVerdict Budget::check() const {
  if (stop_ != nullptr && stop_->stop_requested()) {
    return BudgetVerdict::kCancelled;
  }
  if (limits_.deadline_seconds > 0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - armed_;
    if (elapsed.count() >= limits_.deadline_seconds) {
      return BudgetVerdict::kDeadlineExceeded;
    }
  }
  if (limits_.max_commits > 0 &&
      commits_ >= static_cast<std::uint64_t>(limits_.max_commits)) {
    return BudgetVerdict::kCommitsExhausted;
  }
  if (limits_.max_relax_steps > 0 &&
      relax_steps_ >= static_cast<std::uint64_t>(limits_.max_relax_steps)) {
    return BudgetVerdict::kRelaxExhausted;
  }
  return BudgetVerdict::kOk;
}

std::string Budget::describe(BudgetVerdict verdict) const {
  switch (verdict) {
    case BudgetVerdict::kOk:
      return "";
    case BudgetVerdict::kCancelled:
      return "cancelled by stop request at a pass boundary";
    case BudgetVerdict::kDeadlineExceeded:
      return strf("advisory deadline (", limits_.deadline_seconds,
                  "s) exceeded at a pass boundary");
    case BudgetVerdict::kCommitsExhausted:
      return strf("work-unit budget exhausted: ", commits_,
                  " engine commits >= limit ", limits_.max_commits);
    case BudgetVerdict::kRelaxExhausted:
      return strf("work-unit budget exhausted: ", relax_steps_,
                  " relaxation steps >= limit ", limits_.max_relax_steps);
  }
  return "";
}

}  // namespace hls::support
