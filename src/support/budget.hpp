// Deterministic work-unit budgets and cooperative cancellation.
//
// The scheduler's pass/relaxation loop can run for a long time on a
// pathological configuration, and nothing above it could stop a run once
// started. This component gives every layer of the stack — scheduler,
// flow, explore, serve — one shared vocabulary for "stop doing work":
//
//  * StopSource — a thread-safe cancellation flag. A signal handler or a
//    controlling thread flips it; workers observe it cooperatively at
//    pass boundaries, so a cancelled run always leaves consistent state.
//
//  * BudgetLimits / Budget — bounds in WORK UNITS (scheduling passes,
//    BindingEngine commits, Bellman-Ford relaxation steps), not seconds.
//    Work units are a pure function of the problem and the options, never
//    of machine speed or thread timing, so a budget-exhausted failure is
//    byte-reproducible: the same job fails at the same point with the
//    same diagnostic at every thread count (docs/FAULTS.md has the full
//    determinism argument). A wall-clock deadline is available as an
//    opt-in ADVISORY overlay — useful operationally, but any run that
//    relies on it forfeits byte-reproducibility of its failure point.
//
// Budgets are checked only at pass boundaries (sched/driver.cpp): a pass
// always runs to completion, so the charge for the pass that crossed the
// limit is included in the reported spend.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace hls::support {

/// Thread-safe cooperative cancellation flag. request_stop() is
/// async-signal-safe (a lock-free atomic store), so signal handlers may
/// call it directly.
class StopSource {
 public:
  void request_stop() { stopped_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stopped_{false};
};

/// Work-unit bounds for one scheduling run. 0 = unlimited. `max_passes`
/// tightens SchedulerOptions::max_passes (the smaller of the two wins and
/// exhaustion reports sched/pass_budget_exhausted); commits and relaxation
/// steps accumulate across every pass of the run, including seed-replay
/// attempts.
struct BudgetLimits {
  std::int64_t max_passes = 0;
  std::int64_t max_commits = 0;
  std::int64_t max_relax_steps = 0;
  /// Advisory wall-clock deadline in seconds (0 = none). Checked at the
  /// same pass boundaries as the work units, but NOT deterministic —
  /// see the header comment.
  double deadline_seconds = 0;

  bool unlimited() const {
    return max_passes <= 0 && max_commits <= 0 && max_relax_steps <= 0 &&
           deadline_seconds <= 0;
  }
};

/// Why a budget check stopped (or did not stop) a run. Precedence when
/// several trip at once is the declaration order below — cancellation
/// outranks the deadline, which outranks the work units — so the reported
/// code never depends on check order.
enum class BudgetVerdict : std::uint8_t {
  kOk,
  kCancelled,
  kDeadlineExceeded,
  kCommitsExhausted,
  kRelaxExhausted,
};

/// Structured diagnostic code for a verdict: "" (kOk), "cancelled",
/// "deadline_exceeded", or "budget_exhausted" (both work-unit verdicts).
const char* budget_verdict_code(BudgetVerdict verdict);

/// Accumulates work-unit charges for one scheduling run and answers
/// check() at pass boundaries. Arms its deadline clock at construction.
/// Not thread-safe: one Budget belongs to one run.
class Budget {
 public:
  /// Unlimited, never trips.
  Budget() : Budget(BudgetLimits{}, nullptr) {}
  explicit Budget(const BudgetLimits& limits,
                  const StopSource* stop = nullptr);

  void charge_commits(std::uint64_t n) { commits_ += n; }
  void charge_relax_steps(std::uint64_t n) { relax_steps_ += n; }

  std::uint64_t commits() const { return commits_; }
  std::uint64_t relax_steps() const { return relax_steps_; }

  BudgetVerdict check() const;

  /// Deterministic human-readable reason for a non-kOk verdict (work-unit
  /// messages name the unit, the spend and the limit; no wall-clock values
  /// appear in any message).
  std::string describe(BudgetVerdict verdict) const;

 private:
  BudgetLimits limits_;
  const StopSource* stop_ = nullptr;
  std::uint64_t commits_ = 0;
  std::uint64_t relax_steps_ = 0;
  std::chrono::steady_clock::time_point armed_;
};

}  // namespace hls::support
