// Lexer for the `.hls` behavioral text format — the library's stand-in for
// the paper's SystemC input (see frontend/parser.hpp for the grammar).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace hls::frontend {

enum class TokKind : std::uint8_t {
  kIdent,
  kNumber,
  kPunct,  ///< operators and delimiters, text holds the spelling
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
  int column = 1;

  bool is(std::string_view p) const {
    return kind == TokKind::kPunct && text == p;
  }
  bool is_ident(std::string_view name) const {
    return kind == TokKind::kIdent && text == name;
  }
};

/// Tokenizes the source; reports malformed input into `diags` and
/// recovers. Comments: `//` to end of line. Numbers: decimal and 0x hex.
std::vector<Token> lex(std::string_view source, DiagEngine& diags);

}  // namespace hls::frontend
