#include "frontend/builder.hpp"

#include <algorithm>

#include "ir/validate.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::frontend {

using ir::kNoOp;
using ir::kNoStmt;
using ir::LoopKind;
using ir::OpKind;
using ir::StmtKind;

Builder::Builder(std::string module_name) {
  m_.name = std::move(module_name);
  seq_stack_.push_back(m_.thread.tree.root());
}

PortHandle Builder::in(std::string name, Type t) {
  m_.ports.push_back({std::move(name), t, ir::PortDir::kIn});
  return {static_cast<std::uint32_t>(m_.ports.size() - 1)};
}

PortHandle Builder::out(std::string name, Type t) {
  m_.ports.push_back({std::move(name), t, ir::PortDir::kOut});
  return {static_cast<std::uint32_t>(m_.ports.size() - 1)};
}

void Builder::emit(OpId op) {
  HLS_ASSERT(!seq_stack_.empty(), "no open sequence");
  tree().append(seq_stack_.back(), tree().make_op(op));
}

Val Builder::c(std::int64_t value, Type t) {
  // Constants are not emitted into the region tree (they are pure values).
  return {dfg().constant(value, t)};
}

Val Builder::read(PortHandle p, std::string name) {
  HLS_ASSERT(p.index != ir::kNoPort, "read from null port");
  if (name.empty()) name = m_.ports[p.index].name + "_read";
  const OpId id = dfg().read(p.index, m_.ports[p.index].type, std::move(name));
  emit(id);
  return {id};
}

void Builder::write(PortHandle p, Val v) {
  HLS_ASSERT(p.index != ir::kNoPort, "write to null port");
  const OpId id =
      dfg().write(p.index, v.id, m_.ports[p.index].name + "_write");
  emit(id);
}

Type Builder::common_type(Val a, Val b) const {
  const Type ta = m_.thread.dfg.op(a.id).type;
  const Type tb = m_.thread.dfg.op(b.id).type;
  return Type{std::max(ta.width, tb.width), ta.is_signed || tb.is_signed};
}

Val Builder::binary_common(OpKind k, Val a, Val b, std::string name) {
  const OpId id = dfg().binary(k, a.id, b.id, common_type(a, b),
                               std::move(name));
  emit(id);
  return {id};
}

Val Builder::compare_common(OpKind k, Val a, Val b, std::string name) {
  const OpId id = dfg().compare(k, a.id, b.id, std::move(name));
  emit(id);
  return {id};
}

Val Builder::add(Val a, Val b, std::string n) { return binary_common(OpKind::kAdd, a, b, std::move(n)); }
Val Builder::sub(Val a, Val b, std::string n) { return binary_common(OpKind::kSub, a, b, std::move(n)); }
Val Builder::mul(Val a, Val b, std::string n) { return binary_common(OpKind::kMul, a, b, std::move(n)); }
Val Builder::div(Val a, Val b, std::string n) { return binary_common(OpKind::kDiv, a, b, std::move(n)); }
Val Builder::mod(Val a, Val b, std::string n) { return binary_common(OpKind::kMod, a, b, std::move(n)); }
Val Builder::band(Val a, Val b, std::string n) { return binary_common(OpKind::kAnd, a, b, std::move(n)); }
Val Builder::bor(Val a, Val b, std::string n) { return binary_common(OpKind::kOr, a, b, std::move(n)); }
Val Builder::bxor(Val a, Val b, std::string n) { return binary_common(OpKind::kXor, a, b, std::move(n)); }
Val Builder::shl(Val a, Val b, std::string n) { return binary_common(OpKind::kShl, a, b, std::move(n)); }
Val Builder::shr(Val a, Val b, std::string n) { return binary_common(OpKind::kShr, a, b, std::move(n)); }

Val Builder::neg(Val a, std::string name) {
  const OpId id = dfg().unary(OpKind::kNeg, a.id, m_.thread.dfg.op(a.id).type,
                              std::move(name));
  emit(id);
  return {id};
}

Val Builder::bnot(Val a, std::string name) {
  const OpId id = dfg().unary(OpKind::kNot, a.id, m_.thread.dfg.op(a.id).type,
                              std::move(name));
  emit(id);
  return {id};
}

Val Builder::eq(Val a, Val b, std::string n) { return compare_common(OpKind::kEq, a, b, std::move(n)); }
Val Builder::ne(Val a, Val b, std::string n) { return compare_common(OpKind::kNe, a, b, std::move(n)); }
Val Builder::lt(Val a, Val b, std::string n) { return compare_common(OpKind::kLt, a, b, std::move(n)); }
Val Builder::le(Val a, Val b, std::string n) { return compare_common(OpKind::kLe, a, b, std::move(n)); }
Val Builder::gt(Val a, Val b, std::string n) { return compare_common(OpKind::kGt, a, b, std::move(n)); }
Val Builder::ge(Val a, Val b, std::string n) { return compare_common(OpKind::kGe, a, b, std::move(n)); }

Val Builder::mux(Val sel, Val if_true, Val if_false, std::string name) {
  const OpId id = dfg().mux(sel.id, if_true.id, if_false.id, std::move(name));
  emit(id);
  return {id};
}

Val Builder::sext(Val a, std::uint8_t width, std::string name) {
  const OpId id = dfg().sext(a.id, width, std::move(name));
  emit(id);
  return {id};
}

Val Builder::zext(Val a, std::uint8_t width, std::string name) {
  const OpId id = dfg().zext(a.id, width, std::move(name));
  emit(id);
  return {id};
}

Val Builder::trunc(Val a, std::uint8_t width, std::string name) {
  const OpId id = dfg().trunc(a.id, width, std::move(name));
  emit(id);
  return {id};
}

Val Builder::bits(Val a, std::uint8_t hi, std::uint8_t lo, std::string name) {
  const OpId id = dfg().bit_range(a.id, hi, lo, std::move(name));
  emit(id);
  return {id};
}

VarHandle Builder::var(std::string name, Type t) {
  vars_.push_back({std::move(name), t, kNoOp});
  return {static_cast<std::uint32_t>(vars_.size() - 1)};
}

void Builder::set(VarHandle v, Val x) {
  HLS_ASSERT(v.index < vars_.size(), "bad variable handle");
  vars_[v.index].def = x.id;
}

Val Builder::get(VarHandle v) {
  HLS_ASSERT(v.index < vars_.size(), "bad variable handle");
  const OpId def = vars_[v.index].def;
  HLS_ASSERT(def != kNoOp, "variable '", vars_[v.index].name,
             "' read before first assignment");
  return {def};
}

void Builder::wait(std::string label) {
  tree().append(seq_stack_.back(), tree().make_wait(std::move(label)));
}

void Builder::begin_if(Val cond) {
  IfFrame f;
  f.cond = cond.id;
  const StmtId then_seq = tree().make_seq();
  const StmtId else_seq = tree().make_seq();
  f.if_stmt = tree().make_if(cond.id, then_seq, else_seq);
  tree().append(seq_stack_.back(), f.if_stmt);
  f.snapshot.reserve(vars_.size());
  for (const VarState& vs : vars_) f.snapshot.push_back(vs.def);
  if_stack_.push_back(std::move(f));
  seq_stack_.push_back(then_seq);
}

void Builder::begin_else() {
  HLS_ASSERT(!if_stack_.empty(), "begin_else outside if");
  IfFrame& f = if_stack_.back();
  HLS_ASSERT(!f.in_else, "begin_else called twice");
  f.in_else = true;
  // Save then-branch defs; restore snapshot for the else branch.
  f.then_defs.reserve(vars_.size());
  for (const VarState& vs : vars_) f.then_defs.push_back(vs.def);
  for (std::size_t i = 0; i < f.snapshot.size(); ++i) {
    vars_[i].def = f.snapshot[i];
  }
  // Any variable DECLARED inside the then branch stays then-local; its def
  // is left untouched (snapshot is shorter than vars_).
  seq_stack_.pop_back();
  seq_stack_.push_back(tree().stmt(f.if_stmt).else_body);
}

void Builder::end_if() {
  HLS_ASSERT(!if_stack_.empty(), "end_if outside if");
  IfFrame f = std::move(if_stack_.back());
  if_stack_.pop_back();
  if (!f.in_else) {
    // No else branch: treat current defs as then-defs and restore snapshot.
    f.then_defs.reserve(vars_.size());
    for (const VarState& vs : vars_) f.then_defs.push_back(vs.def);
    for (std::size_t i = 0; i < f.snapshot.size(); ++i) {
      vars_[i].def = f.snapshot[i];
    }
    f.in_else = true;
  }
  seq_stack_.pop_back();
  // Merge: for each variable whose def differs between branches, emit a mux
  // after the if statement (this is the merge MUX of the paper's Figure 3).
  for (std::size_t i = 0; i < f.snapshot.size(); ++i) {
    const OpId then_def = i < f.then_defs.size() ? f.then_defs[i] : kNoOp;
    const OpId else_def = vars_[i].def;  // restored snapshot or else-branch def
    if (then_def == kNoOp || else_def == kNoOp) continue;
    if (then_def == else_def) continue;
    const OpId merged = dfg().mux(f.cond, then_def, else_def,
                                  vars_[i].name + "_mux");
    emit(merged);
    vars_[i].def = merged;
  }
}

StmtId Builder::begin_forever() {
  open_loop_common(LoopKind::kForever, kNoOp);
  return loop_stack_.back().loop;
}

StmtId Builder::begin_do_while() {
  open_loop_common(LoopKind::kDoWhile, kNoOp);
  return loop_stack_.back().loop;
}

StmtId Builder::begin_counted(std::int64_t trip) {
  open_loop_common(LoopKind::kCounted, kNoOp);
  tree().stmt_mut(loop_stack_.back().loop).trip_count = trip;
  return loop_stack_.back().loop;
}

// Opens a loop frame and eagerly promotes live variables.
void Builder::open_loop_common(LoopKind kind, OpId /*cond*/) {
  LoopFrame f;
  const StmtId body = tree().make_seq();
  f.loop = tree().make_loop(kind, body);
  tree().append(seq_stack_.back(), f.loop);
  f.header = tree().make_seq();
  tree().append(body, f.header);
  // Eagerly promote every live variable to a loop-carried mux; pass-through
  // muxes (for variables the loop never reassigns) are folded by the
  // optimizer's loop-mux simplification.
  for (std::uint32_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].def == kNoOp) continue;
    const OpId lm = dfg().loop_mux(vars_[i].def, vars_[i].type,
                                   vars_[i].name + "_lmux");
    tree().append(f.header, tree().make_op(lm));
    f.promoted.push_back({i, lm, vars_[i].def});
    vars_[i].def = lm;
  }
  loop_stack_.push_back(std::move(f));
  seq_stack_.push_back(body);
}

void Builder::end_loop() {
  HLS_ASSERT(!loop_stack_.empty(), "end_loop outside loop");
  const LoopKind k = tree().stmt(loop_stack_.back().loop).loop_kind;
  HLS_ASSERT(k == LoopKind::kForever || k == LoopKind::kCounted,
             "use end_do_while for do-while loops");
  LoopFrame f = std::move(loop_stack_.back());
  loop_stack_.pop_back();
  seq_stack_.pop_back();
  for (const LoopFrame::Promoted& p : f.promoted) {
    const OpId cur = vars_[p.var].def;
    // Unchanged variable: make the mux a pass-through (init as carried).
    dfg().set_carried(p.loop_mux, cur == p.loop_mux ? p.init : cur);
    // After the loop the variable holds the last-iteration value.
    // (For a pass-through that is simply the initial value.)
    if (cur == p.loop_mux) vars_[p.var].def = p.init;
  }
}

void Builder::end_do_while(Val continue_cond) {
  HLS_ASSERT(!loop_stack_.empty(), "end_do_while outside loop");
  LoopFrame f = std::move(loop_stack_.back());
  HLS_ASSERT(tree().stmt(f.loop).loop_kind == LoopKind::kDoWhile,
             "end_do_while on a non-do-while loop");
  loop_stack_.pop_back();
  seq_stack_.pop_back();
  tree().stmt_mut(f.loop).cond = continue_cond.id;
  for (const LoopFrame::Promoted& p : f.promoted) {
    const OpId cur = vars_[p.var].def;
    dfg().set_carried(p.loop_mux, cur == p.loop_mux ? p.init : cur);
    if (cur == p.loop_mux) vars_[p.var].def = p.init;
  }
}

void Builder::set_latency(StmtId loop, int min, int max) {
  ir::Stmt& s = tree().stmt_mut(loop);
  HLS_ASSERT(s.kind == StmtKind::kLoop, "set_latency on non-loop");
  s.latency = {min, max};
}

void Builder::set_pipeline(StmtId loop, int ii) {
  ir::Stmt& s = tree().stmt_mut(loop);
  HLS_ASSERT(s.kind == StmtKind::kLoop, "set_pipeline on non-loop");
  s.pipeline = {true, ii};
}

ir::Module Builder::finish() {
  HLS_ASSERT(!finished_, "Builder::finish called twice");
  HLS_ASSERT(loop_stack_.empty(), "finish with open loops");
  HLS_ASSERT(if_stack_.empty(), "finish with open ifs");
  finished_ = true;
  ir::validate_or_throw(m_);
  return std::move(m_);
}

}  // namespace hls::frontend
