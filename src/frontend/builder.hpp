// Fluent construction API for behavioral modules — the library's stand-in
// for the paper's SystemC elaborator. It performs the elaboration work:
// variables become SSA values, loops get loop-carried muxes (the paper's
// loopMux), conditional assignments become DFG muxes at the if-join, and
// waits become control steps.
//
// Usage (the paper's Figure 1 example):
//   Builder b("example1");
//   auto mask = b.in("mask", int_ty(32));   ...
//   auto pixel = b.out("pixel", int_ty(32));
//   auto aver = b.var("aver", int_ty(32));
//   b.begin_forever();
//     b.set(aver, b.c(0));
//     b.wait("s0");
//     StmtId loop = b.begin_do_while();
//       auto m = b.read(mask); ...
//     b.end_do_while(b.ne(delta, b.c(0)));
//   b.end_loop();
//   Module mod = b.finish();
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace hls::frontend {

using ir::OpId;
using ir::StmtId;
using ir::Type;

struct PortHandle {
  std::uint32_t index = ir::kNoPort;
};
struct Val {
  OpId id = ir::kNoOp;
};
struct VarHandle {
  std::uint32_t index = static_cast<std::uint32_t>(-1);
};

class Builder {
 public:
  explicit Builder(std::string module_name);

  // ---- Ports ---------------------------------------------------------------
  PortHandle in(std::string name, Type t);
  PortHandle out(std::string name, Type t);

  // ---- Values --------------------------------------------------------------
  Val c(std::int64_t value, Type t = ir::int_ty(32));
  Val read(PortHandle p, std::string name = {});
  void write(PortHandle p, Val v);

  Val add(Val a, Val b, std::string name = {});
  Val sub(Val a, Val b, std::string name = {});
  Val mul(Val a, Val b, std::string name = {});
  Val div(Val a, Val b, std::string name = {});
  Val mod(Val a, Val b, std::string name = {});
  Val band(Val a, Val b, std::string name = {});
  Val bor(Val a, Val b, std::string name = {});
  Val bxor(Val a, Val b, std::string name = {});
  Val shl(Val a, Val b, std::string name = {});
  Val shr(Val a, Val b, std::string name = {});
  Val neg(Val a, std::string name = {});
  Val bnot(Val a, std::string name = {});

  Val eq(Val a, Val b, std::string name = {});
  Val ne(Val a, Val b, std::string name = {});
  Val lt(Val a, Val b, std::string name = {});
  Val le(Val a, Val b, std::string name = {});
  Val gt(Val a, Val b, std::string name = {});
  Val ge(Val a, Val b, std::string name = {});

  Val mux(Val sel, Val if_true, Val if_false, std::string name = {});
  Val sext(Val a, std::uint8_t width, std::string name = {});
  Val zext(Val a, std::uint8_t width, std::string name = {});
  Val trunc(Val a, std::uint8_t width, std::string name = {});
  Val bits(Val a, std::uint8_t hi, std::uint8_t lo, std::string name = {});

  // ---- Variables (SSA-managed) ----------------------------------------------
  VarHandle var(std::string name, Type t);
  void set(VarHandle v, Val x);
  Val get(VarHandle v);

  // ---- Control structure -----------------------------------------------------
  void wait(std::string label = {});
  void begin_if(Val cond);
  void begin_else();
  void end_if();

  /// All loops return the loop StmtId so constraints can be attached.
  StmtId begin_forever();
  StmtId begin_do_while();
  StmtId begin_counted(std::int64_t trip);
  void end_loop();                  ///< closes forever / counted loops
  void end_do_while(Val continue_cond);

  void set_latency(StmtId loop, int min, int max);
  void set_pipeline(StmtId loop, int ii);

  // ---- Finish ----------------------------------------------------------------
  /// Validates and returns the module. The builder must not be reused.
  ir::Module finish();

  /// Access to the module under construction (e.g. for workload tweaks).
  ir::Module& module() { return m_; }

 private:
  ir::Dfg& dfg() { return m_.thread.dfg; }
  ir::RegionTree& tree() { return m_.thread.tree; }

  /// Appends an OpStmt for `op` at the current insertion point.
  void emit(OpId op);
  Val binary_common(ir::OpKind k, Val a, Val b, std::string name);
  Val compare_common(ir::OpKind k, Val a, Val b, std::string name);
  Type common_type(Val a, Val b) const;

  struct VarState {
    std::string name;
    Type type;
    OpId def = ir::kNoOp;
  };

  struct LoopFrame {
    StmtId loop = ir::kNoStmt;
    StmtId header = ir::kNoStmt;  ///< seq holding the loop muxes
    /// Per promoted variable: (var index, loop mux op, init def).
    struct Promoted {
      std::uint32_t var;
      OpId loop_mux;
      OpId init;
    };
    std::vector<Promoted> promoted;
  };

  struct IfFrame {
    StmtId if_stmt = ir::kNoStmt;
    OpId cond = ir::kNoOp;
    std::vector<OpId> snapshot;  ///< defs at begin_if, indexed by var
    std::vector<OpId> then_defs; ///< defs at begin_else
    bool in_else = false;
  };

  void open_loop_common(ir::LoopKind kind, OpId cond);

  ir::Module m_;
  std::vector<StmtId> seq_stack_;    ///< open insertion sequences
  std::vector<LoopFrame> loop_stack_;
  std::vector<IfFrame> if_stack_;
  std::vector<VarState> vars_;
  bool finished_ = false;
};

}  // namespace hls::frontend
