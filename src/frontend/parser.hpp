// Parser / elaborator for the `.hls` behavioral text format — a compact
// substitute for the paper's SystemC front end. Parsing elaborates
// directly through frontend::Builder, so the result is the same CDFG the
// builder API produces (SSA variables, loop-carried muxes, if-join muxes).
//
// Grammar (informal):
//
//   module   := 'module' IDENT '{' port* thread '}'
//   port     := ('in'|'out') IDENT ':' type ';'
//   type     := 'i' N | 'u' N                      (1 <= N <= 64)
//   thread   := 'thread' '{' stmt* '}'
//   stmt     := 'var' IDENT ':' type '=' expr ';'
//            |  IDENT '=' expr ';'                 (variable or out port)
//            |  'wait' ';'
//            |  'if' '(' expr ')' block ('else' block)?
//            |  'forever' block attrs?
//            |  'repeat' '(' NUMBER ')' block attrs?
//            |  'do' block 'while' '(' expr ')' attrs? ';'
//   attrs    := ('latency' '(' NUMBER ',' NUMBER ')')? ('pipeline' '(' NUMBER ')')?
//   expr     := ternary-free C expressions with precedence:
//               || && | ^ & ==,!= <,<=,>,>= <<,>> +,- *,/,% unary -,~,! ( )
//               operands: NUMBER, IDENT (variable or input port)
//
// Reads of input ports follow the library's per-iteration stream
// semantics; each mention of an input port inside a loop iteration sees
// the same value (duplicate reads unify in the CSE pass).
#pragma once

#include <optional>
#include <string_view>

#include "ir/module.hpp"
#include "support/diagnostics.hpp"

namespace hls::frontend {

struct ParseResult {
  bool ok = false;
  ir::Module module;
  /// Loops in source order (outermost first); usable as scheduling targets.
  std::vector<ir::StmtId> loops;
};

/// Parses and elaborates a module. On error, `diags` holds line/column
/// messages and `ok` is false.
ParseResult parse_module(std::string_view source, DiagEngine& diags);

/// Convenience: parse or throw UserError with all diagnostics.
ParseResult parse_module_or_throw(std::string_view source);

}  // namespace hls::frontend
