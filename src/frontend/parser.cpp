#include "frontend/parser.hpp"

#include <map>

#include "frontend/builder.hpp"
#include "frontend/lexer.hpp"
#include "support/strings.hpp"

namespace hls::frontend {

namespace {

/// Thrown internally to abort parsing after a fatal diagnostic.
struct ParseAbort {};

class Parser {
 public:
  Parser(std::string_view source, DiagEngine& diags)
      : diags_(diags), toks_(lex(source, diags)) {}

  ParseResult run() {
    ParseResult result;
    try {
      parse_module_decl();
      result.module = builder_->finish();
      result.loops = loops_;
      result.ok = !diags_.has_errors();
    } catch (const ParseAbort&) {
      result.ok = false;
    }
    return result;
  }

 private:
  // ---- Token helpers ---------------------------------------------------------

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token take() {
    Token t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  [[noreturn]] void fail(const std::string& msg) {
    diags_.error(msg, peek().line, peek().column);
    throw ParseAbort{};
  }
  void expect_punct(std::string_view p) {
    if (!peek().is(p)) fail(strf("expected '", p, "'"));
    take();
  }
  void expect_keyword(std::string_view k) {
    if (!peek().is_ident(k)) fail(strf("expected '", k, "'"));
    take();
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::kIdent) fail("expected identifier");
    return take().text;
  }
  std::int64_t expect_number() {
    if (peek().kind != TokKind::kNumber) fail("expected number");
    return take().number;
  }

  // ---- Declarations -----------------------------------------------------------

  ir::Type parse_type() {
    const Token t = peek();
    if (t.kind != TokKind::kIdent || t.text.size() < 2 ||
        (t.text[0] != 'i' && t.text[0] != 'u')) {
      fail("expected type (iN or uN)");
    }
    take();
    int width = 0;
    for (std::size_t i = 1; i < t.text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(t.text[i])) == 0) {
        fail(strf("malformed type '", t.text, "'"));
      }
      width = width * 10 + (t.text[i] - '0');
    }
    if (width < 1 || width > 64) fail(strf("unsupported width ", width));
    return ir::Type{static_cast<std::uint8_t>(width), t.text[0] == 'i'};
  }

  void parse_module_decl() {
    expect_keyword("module");
    const std::string name = expect_ident();
    builder_.emplace(name);
    expect_punct("{");
    while (peek().is_ident("in") || peek().is_ident("out")) {
      const bool is_in = take().text == "in";
      const std::string pname = expect_ident();
      expect_punct(":");
      const ir::Type ty = parse_type();
      expect_punct(";");
      if (ports_.count(pname) != 0 || vars_.count(pname) != 0) {
        fail(strf("duplicate name '", pname, "'"));
      }
      ports_[pname] = is_in ? builder_->in(pname, ty)
                            : builder_->out(pname, ty);
      port_is_in_[pname] = is_in;
    }
    expect_keyword("thread");
    parse_block();
    expect_punct("}");
    if (peek().kind != TokKind::kEnd) fail("trailing input after module");
  }

  // ---- Statements ---------------------------------------------------------------

  void parse_block() {
    expect_punct("{");
    while (!peek().is("}")) parse_stmt();
    expect_punct("}");
  }

  void parse_stmt() {
    const Token& t = peek();
    if (t.is_ident("var")) {
      take();
      const std::string name = expect_ident();
      expect_punct(":");
      const ir::Type ty = parse_type();
      expect_punct("=");
      const Val v = parse_expr();
      expect_punct(";");
      if (ports_.count(name) != 0) fail(strf("'", name, "' is a port"));
      if (vars_.count(name) == 0) vars_[name] = builder_->var(name, ty);
      builder_->set(vars_[name], coerce(v, ty));
      return;
    }
    if (t.is_ident("wait")) {
      take();
      expect_punct(";");
      builder_->wait();
      return;
    }
    if (t.is_ident("if")) {
      take();
      expect_punct("(");
      const Val cond = parse_expr();
      expect_punct(")");
      builder_->begin_if(to_bool(cond));
      parse_block();
      if (peek().is_ident("else")) {
        take();
        builder_->begin_else();
        parse_block();
      }
      builder_->end_if();
      return;
    }
    if (t.is_ident("forever")) {
      take();
      const ir::StmtId loop = builder_->begin_forever();
      loops_.push_back(loop);
      parse_block();
      builder_->end_loop();
      parse_loop_attrs(loop);
      return;
    }
    if (t.is_ident("repeat")) {
      take();
      expect_punct("(");
      const std::int64_t trips = expect_number();
      expect_punct(")");
      if (trips < 1) fail("repeat count must be positive");
      const ir::StmtId loop = builder_->begin_counted(trips);
      loops_.push_back(loop);
      parse_block();
      builder_->end_loop();
      parse_loop_attrs(loop);
      return;
    }
    if (t.is_ident("do")) {
      take();
      const ir::StmtId loop = builder_->begin_do_while();
      loops_.push_back(loop);
      parse_block();
      expect_keyword("while");
      expect_punct("(");
      // The continue condition elaborates inside the still-open loop body.
      const Val cond = parse_expr();
      expect_punct(")");
      builder_->end_do_while(to_bool(cond));
      parse_loop_attrs(loop);
      expect_punct(";");
      return;
    }
    if (t.kind == TokKind::kIdent) {
      // Assignment to a variable or an output port.
      const std::string name = take().text;
      expect_punct("=");
      const Val v = parse_expr();
      expect_punct(";");
      if (auto it = vars_.find(name); it != vars_.end()) {
        builder_->set(it->second, v);
        return;
      }
      if (auto it = ports_.find(name); it != ports_.end()) {
        if (port_is_in_[name]) fail(strf("cannot assign input port '", name,
                                         "'"));
        builder_->write(it->second, v);
        return;
      }
      fail(strf("unknown name '", name, "'"));
    }
    fail("expected statement");
  }

  void parse_loop_attrs(ir::StmtId loop) {
    while (true) {
      if (peek().is_ident("latency")) {
        take();
        expect_punct("(");
        const auto lo = expect_number();
        expect_punct(",");
        const auto hi = expect_number();
        expect_punct(")");
        builder_->set_latency(loop, static_cast<int>(lo),
                              static_cast<int>(hi));
      } else if (peek().is_ident("pipeline")) {
        take();
        expect_punct("(");
        const auto ii = expect_number();
        expect_punct(")");
        builder_->set_pipeline(loop, static_cast<int>(ii));
      } else {
        return;
      }
    }
  }

  // ---- Expressions -----------------------------------------------------------------

  Val to_bool(Val v) {
    if (builder_->module().thread.dfg.op(v.id).type.width == 1) return v;
    return builder_->ne(v, builder_->c(0, value_type(v)));
  }
  ir::Type value_type(Val v) {
    return builder_->module().thread.dfg.op(v.id).type;
  }
  Val coerce(Val v, ir::Type ty) {
    const ir::Type have = value_type(v);
    if (have == ty) return v;
    if (have.width == ty.width) return v;  // reinterpretation is implicit
    if (ty.width < have.width) return builder_->trunc(v, ty.width);
    return have.is_signed ? builder_->sext(v, ty.width)
                          : builder_->zext(v, ty.width);
  }

  Val parse_expr() { return parse_logic_or(); }

  Val parse_logic_or() {
    Val v = parse_logic_and();
    while (peek().is("||")) {
      take();
      v = builder_->bor(to_bool(v), to_bool(parse_logic_and()));
    }
    return v;
  }
  Val parse_logic_and() {
    Val v = parse_bit_or();
    while (peek().is("&&")) {
      take();
      v = builder_->band(to_bool(v), to_bool(parse_bit_or()));
    }
    return v;
  }
  Val parse_bit_or() {
    Val v = parse_bit_xor();
    while (peek().is("|")) {
      take();
      v = builder_->bor(v, parse_bit_xor());
    }
    return v;
  }
  Val parse_bit_xor() {
    Val v = parse_bit_and();
    while (peek().is("^")) {
      take();
      v = builder_->bxor(v, parse_bit_and());
    }
    return v;
  }
  Val parse_bit_and() {
    Val v = parse_equality();
    while (peek().is("&")) {
      take();
      v = builder_->band(v, parse_equality());
    }
    return v;
  }
  Val parse_equality() {
    Val v = parse_relational();
    while (peek().is("==") || peek().is("!=")) {
      const bool eq = take().text == "==";
      const Val rhs = parse_relational();
      v = eq ? builder_->eq(v, rhs) : builder_->ne(v, rhs);
    }
    return v;
  }
  Val parse_relational() {
    Val v = parse_shift();
    while (peek().is("<") || peek().is("<=") || peek().is(">") ||
           peek().is(">=")) {
      const std::string op = take().text;
      const Val rhs = parse_shift();
      if (op == "<") v = builder_->lt(v, rhs);
      else if (op == "<=") v = builder_->le(v, rhs);
      else if (op == ">") v = builder_->gt(v, rhs);
      else v = builder_->ge(v, rhs);
    }
    return v;
  }
  Val parse_shift() {
    Val v = parse_additive();
    while (peek().is("<<") || peek().is(">>")) {
      const bool left = take().text == "<<";
      const Val rhs = parse_additive();
      v = left ? builder_->shl(v, rhs) : builder_->shr(v, rhs);
    }
    return v;
  }
  Val parse_additive() {
    Val v = parse_multiplicative();
    while (peek().is("+") || peek().is("-")) {
      const bool add = take().text == "+";
      const Val rhs = parse_multiplicative();
      v = add ? builder_->add(v, rhs) : builder_->sub(v, rhs);
    }
    return v;
  }
  Val parse_multiplicative() {
    Val v = parse_unary();
    while (peek().is("*") || peek().is("/") || peek().is("%")) {
      const std::string op = take().text;
      const Val rhs = parse_unary();
      if (op == "*") v = builder_->mul(v, rhs);
      else if (op == "/") v = builder_->div(v, rhs);
      else v = builder_->mod(v, rhs);
    }
    return v;
  }
  Val parse_unary() {
    if (peek().is("-")) {
      take();
      return builder_->neg(parse_unary());
    }
    if (peek().is("~")) {
      take();
      return builder_->bnot(parse_unary());
    }
    if (peek().is("!")) {
      take();
      return builder_->eq(to_bool(parse_unary()),
                          builder_->c(0, ir::bool_ty()));
    }
    return parse_primary();
  }
  Val parse_primary() {
    if (peek().is("(")) {
      take();
      const Val v = parse_expr();
      expect_punct(")");
      return v;
    }
    if (peek().kind == TokKind::kNumber) {
      const Token t = take();
      const int w = std::max(32, ir::min_width_for(t.number, true));
      return builder_->c(t.number, ir::int_ty(static_cast<std::uint8_t>(w)));
    }
    if (peek().kind == TokKind::kIdent) {
      const std::string name = take().text;
      if (auto it = vars_.find(name); it != vars_.end()) {
        return builder_->get(it->second);
      }
      if (auto it = ports_.find(name); it != ports_.end()) {
        if (!port_is_in_[name]) fail(strf("cannot read output port '", name,
                                          "'"));
        return builder_->read(it->second);
      }
      fail(strf("unknown name '", name, "'"));
    }
    fail("expected expression");
  }

  DiagEngine& diags_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::optional<Builder> builder_;
  std::map<std::string, PortHandle> ports_;
  std::map<std::string, bool> port_is_in_;
  std::map<std::string, VarHandle> vars_;
  std::vector<ir::StmtId> loops_;
};

}  // namespace

ParseResult parse_module(std::string_view source, DiagEngine& diags) {
  return Parser(source, diags).run();
}

ParseResult parse_module_or_throw(std::string_view source) {
  DiagEngine diags;
  ParseResult r = parse_module(source, diags);
  if (!r.ok) {
    throw UserError(strf("failed to parse .hls module:\n", diags.to_string()));
  }
  return r;
}

}  // namespace hls::frontend
