#include "frontend/lexer.hpp"

#include <cctype>

namespace hls::frontend {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<Token> lex(std::string_view src, DiagEngine& diags) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  // Multi-character operators, longest first.
  static const char* kOps[] = {"<<", ">>", "<=", ">=", "==", "!=",
                               "&&", "||"};

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    Token t;
    t.line = line;
    t.column = col;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      t.kind = TokKind::kIdent;
      t.text = std::string(src.substr(i, j - i));
      advance(j - i);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      int base = 10;
      if (c == '0' && j + 1 < src.size() &&
          (src[j + 1] == 'x' || src[j + 1] == 'X')) {
        base = 16;
        j += 2;
      }
      std::uint64_t v = 0;
      bool any = false;
      while (j < src.size()) {
        const char d = src[j];
        int dv;
        if (d >= '0' && d <= '9') {
          dv = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          dv = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          dv = d - 'A' + 10;
        } else {
          break;
        }
        v = v * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(dv);
        any = true;
        ++j;
      }
      if (!any) {
        diags.error("malformed number literal", line, col);
      }
      t.kind = TokKind::kNumber;
      t.text = std::string(src.substr(i, j - i));
      t.number = static_cast<std::int64_t>(v);
      advance(j - i);
      out.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation.
    bool matched = false;
    for (const char* op : kOps) {
      const std::size_t n = std::string_view(op).size();
      if (src.substr(i, n) == op) {
        t.kind = TokKind::kPunct;
        t.text = op;
        advance(n);
        out.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string_view kSingles = "{}()[]:;,=+-*/%&|^~!<>";
    if (kSingles.find(c) != std::string_view::npos) {
      t.kind = TokKind::kPunct;
      t.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(t));
      continue;
    }
    diags.error(strf("unexpected character '", c, "'"), line, col);
    advance(1);
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace hls::frontend
