#include "workloads/example1.hpp"

#include "frontend/builder.hpp"

namespace hls::workloads {

using frontend::Builder;
using ir::int_ty;

Example1 make_example1(int latency_min, int latency_max) {
  Builder b("example1");
  const auto mask = b.in("mask", int_ty(32));
  const auto chrome = b.in("chrome", int_ty(32));
  const auto scale = b.in("scale", int_ty(32));
  const auto th = b.in("th", int_ty(32));
  const auto pixel = b.out("pixel", int_ty(32));

  const auto aver = b.var("aver", int_ty(32));

  const ir::StmtId outer = b.begin_forever();
  b.set(aver, b.c(0));
  b.wait("s0");
  const ir::StmtId loop = b.begin_do_while();
  {
    // int filt = mask; delta = mask * chrome; aver += delta;
    const auto filt = b.read(mask, "mask_read");
    const auto chrome_v = b.read(chrome, "chrome_read");
    const auto delta = b.mul(filt, chrome_v, "mul1_op");
    b.set(aver, b.add(b.get(aver), delta, "add_op"));
    // if (aver > th) { aver *= scale; }
    const auto th_v = b.read(th, "th_read");
    const auto scale_v = b.read(scale, "scale_read");
    const auto cond = b.gt(b.get(aver), th_v, "gt_op");
    b.begin_if(cond);
    b.set(aver, b.mul(b.get(aver), scale_v, "mul2_op"));
    b.end_if();  // emits the merge MUX of Figure 3(b)
    b.wait("s1");
    // pixel = aver * filt;
    b.write(pixel, b.mul(b.get(aver), filt, "mul3_op"));
    b.end_do_while(b.ne(delta, b.c(0), "neq_op"));
  }
  b.end_loop();
  b.set_latency(loop, latency_min, latency_max);

  Example1 out{b.finish(), outer, loop};
  return out;
}

}  // namespace hls::workloads
