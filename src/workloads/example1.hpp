// The paper's running example (Figure 1): an image-filter-like thread with
// a data-dependent do-while loop, one conditional scale, and a pixel
// output. Its DFG is exactly Figure 3(b): mul1 (delta = mask*chrome),
// add (aver += delta), gt (aver > th), mul2 (aver*scale), the if-join MUX,
// neq (loop exit test), mul3 (pixel = aver*filt) and the loop-carried
// loopMux for `aver`.
#pragma once

#include "ir/module.hpp"

namespace hls::workloads {

struct Example1 {
  ir::Module module;
  ir::StmtId outer_loop;  ///< the while(true) thread loop
  ir::StmtId loop;        ///< the do-while loop (latency bound [1,3])
};

/// Builds the Figure 1 design. `latency_min`/`latency_max` set the do-while
/// loop latency bound (the paper explores 1..3).
Example1 make_example1(int latency_min = 1, int latency_max = 3);

}  // namespace hls::workloads
