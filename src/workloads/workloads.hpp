// Benchmark designs standing in for the paper's industrial suite
// ("filters, FFTs, image processing algorithms", 100-6000 operations).
// Each workload is a module with one schedulable (optionally pipelinable)
// loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "mem/memory.hpp"

namespace hls::workloads {

struct Workload {
  std::string name;
  ir::Module module;
  ir::StmtId loop = ir::kNoStmt;  ///< the loop to schedule / pipeline

  /// Memory constraints over the module's ports (banked arrays, port
  /// counts, I/O timing windows; mem/memory.hpp). Empty for most kernels;
  /// scheduling is bit-exact with and without an empty spec.
  mem::MemorySpec memory;

  /// Number of scheduler-visible operations in the loop region.
  int op_count() const;
};

// ---- Filters -------------------------------------------------------------------
/// N-tap FIR with odd constant coefficients and a carried delay line.
Workload make_fir(int taps, int data_width = 16);
/// Fifth-order elliptic wave filter (the classic HLS benchmark shape:
/// 8 constant multiplications, 26 additions, carried filter states).
Workload make_ewf();
/// Auto-regression filter (16 multiplications, 12 additions, 2 outputs).
Workload make_arf();
/// Byte-wise CRC-32 (bitwise logic and muxes over a carried register).
Workload make_crc32();

// ---- Transforms ------------------------------------------------------------------
/// First butterfly stage of an 8-point complex FFT (16 multiplications).
Workload make_fft8_stage();
/// 8-point DCT / IDCT in fixed point (matrix form: 64 multiplications,
/// 56 additions). The IDCT is the paper's Section VI exploration design.
Workload make_dct8(int data_width = 16);
Workload make_idct8(int data_width = 16);

// ---- Image processing ---------------------------------------------------------------
/// 3x3 convolution over a streamed window (9 mul, 8 add).
Workload make_conv3x3();
/// Sobel gradient magnitude (two 3x3 kernels, |gx|+|gy| via muxes).
Workload make_sobel();

// ---- Memory-bound kernels --------------------------------------------------------------
/// 8-tap FIR whose sample window lives in a banked array: 2 banks
/// interleaved x 1 RW port. Port-starved at tight latency; converges via
/// the expert's add-mem-port relaxation (memory_kernels.cpp).
Workload make_banked_fir();
/// 4x4 matrix transpose reading two columns of a 4-bank row-interleaved
/// array: every read in a column lands in the same bank, so the initial
/// banking serializes. Converges via re-bank.
Workload make_transpose4();
/// Stencil row update whose output port carries a soft I/O timing window
/// (max_step below the chain's depth, with a relaxable limit). Converges
/// via widen-window.
Workload make_stencil_row();

// ---- Synthetic suite -------------------------------------------------------------------
struct RandomCdfgOptions {
  int target_ops = 400;
  int inputs = 4;
  int outputs = 2;
  double mul_fraction = 0.20;
  double carried_accumulators = 2;  ///< loop-carried SCCs
  /// Designer latency bound maximum; 0 = auto. Auto keeps the historical
  /// 64 states up to 4096 ops and scales as target_ops/64 beyond, so the
  /// largest profiling designs stay feasible for their estimated resource
  /// set instead of merely exhausting the pass budget (the bound must
  /// grow with the design for the success path to be exercised at all).
  int latency_max = 0;
};
Workload make_random_cdfg(std::uint64_t seed, const RandomCdfgOptions& opts);

/// The named-kernel suite: every bundled filter / transform / image kernel
/// plus one small seeded random CDFG. Compact enough to run the full flow
/// on every member in a test; see make_profile_suite() for the large
/// profiling set.
std::vector<Workload> suite();

/// The Figure 9 profiling suite: named kernels plus random CDFGs spanning
/// roughly 100-6000 operations (about 40 designs).
std::vector<Workload> make_profile_suite();

}  // namespace hls::workloads
