// Memory-bound kernels exercising the mem:: constraint family
// (docs/MEMORY.md). Each is deliberately infeasible under its spec's
// starting bank/port/window configuration at the tight latency bound, and
// converges through exactly one of the expert's memory relaxations:
//
//   banked_fir   port-starved accesses   -> add-mem-port
//   transpose4   same-bank column reads  -> re-bank
//   stencil_row  early output contract   -> widen-window
#include "frontend/builder.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {

using frontend::Builder;
using frontend::PortHandle;
using frontend::Val;
using ir::int_ty;

Workload make_banked_fir() {
  // 8-tap FIR whose sample window is a banked array: 2 banks interleaved,
  // 1 RW port each, so only two reads issue per state. The latency bound
  // leaves no room for the four states the reads of one bank would need,
  // and re-banking is capped at 2, so the only lever is add-mem-port.
  Builder b("banked_fir");
  std::vector<PortHandle> xs;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(b.in("x" + std::to_string(i), int_ty(16)));
  }
  auto y_out = b.out("y", int_ty(32));

  auto loop = b.begin_counted(512);
  Val acc = b.c(0);
  for (int i = 0; i < 8; ++i) {
    const std::int64_t coef = 2 * ((i * 29) % 23) + 3;
    auto prod = b.mul(b.sext(b.read(xs[static_cast<std::size_t>(i)]), 32),
                      b.c(coef), "mac" + std::to_string(i));
    acc = i == 0 ? prod : b.add(acc, prod);
  }
  b.write(y_out, acc);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 4);

  Workload out;
  out.name = "banked_fir";
  out.loop = loop;
  out.module = b.finish();
  mem::ArraySpec a;
  a.name = "x";
  a.first_port = 0;
  a.num_elems = 8;
  a.banks = 2;
  a.bank_rw_ports = 1;
  a.max_banks = 2;
  a.max_ports_per_bank = 4;
  out.memory.arrays.push_back(a);
  return out;
}

Workload make_transpose4() {
  // Reads two columns of a 4x4 row-major matrix held in a 4-bank
  // interleaved array. Element 4r+c lives in bank (4r+c) % 4 = c, so all
  // four reads of a column land in the SAME bank while the other banks
  // idle — the signature bank conflict. Ports per bank are capped at 1;
  // the fix is re-banking to 8 (element 4r+c then lives in bank
  // (4r+c) % 8, splitting each column across two banks).
  Builder b("transpose4");
  std::vector<PortHandle> as;
  for (int i = 0; i < 16; ++i) {
    as.push_back(b.in("a" + std::to_string(i), int_ty(16)));
  }
  std::vector<PortHandle> ss;
  for (int r = 0; r < 4; ++r) {
    ss.push_back(b.out("s" + std::to_string(r), int_ty(32)));
  }

  auto loop = b.begin_counted(256);
  for (int r = 0; r < 4; ++r) {
    auto c0 = b.sext(b.read(as[static_cast<std::size_t>(4 * r)]), 32);
    auto c1 = b.sext(b.read(as[static_cast<std::size_t>(4 * r + 1)]), 32);
    b.write(ss[static_cast<std::size_t>(r)], b.add(c0, c1));
  }
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 3);

  Workload out;
  out.name = "transpose4";
  out.loop = loop;
  out.module = b.finish();
  mem::ArraySpec a;
  a.name = "a";
  a.first_port = 0;
  a.num_elems = 16;
  a.banks = 4;
  a.bank_rw_ports = 1;
  a.max_banks = 8;
  a.max_ports_per_bank = 1;
  out.memory.arrays.push_back(a);
  return out;
}

Workload make_stencil_row() {
  // Row update of a 3-point stencil with ample read bandwidth (one bank,
  // three RW ports serves all reads in one state) but a soft I/O timing
  // window on the output port: the contract asks for the result by step 1,
  // while the multiply chain cannot deliver before step 2+. Only widening
  // the window helps, and max_step_limit permits it.
  Builder b("stencil_row");
  auto x0 = b.in("x0", int_ty(16));
  auto x1 = b.in("x1", int_ty(16));
  auto x2 = b.in("x2", int_ty(16));
  auto y_out = b.out("y", int_ty(32));

  auto loop = b.begin_counted(512);
  auto l = b.sext(b.read(x0), 32);
  auto c = b.sext(b.read(x1), 32);
  auto r = b.sext(b.read(x2), 32);
  // Three chained multiplies force the write past the window's max step.
  auto m1 = b.mul(c, b.c(5), "m1");
  auto m2 = b.mul(b.add(l, m1), b.c(7), "m2");
  auto m3 = b.mul(b.add(m2, r), b.c(9), "m3");
  b.write(y_out, b.add(m3, l));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 3);

  Workload out;
  out.name = "stencil_row";
  out.loop = loop;
  out.module = b.finish();
  mem::ArraySpec a;
  a.name = "x";
  a.first_port = 0;
  a.num_elems = 3;
  a.banks = 1;
  a.bank_rw_ports = 3;
  a.max_banks = 1;
  a.max_ports_per_bank = 3;
  out.memory.arrays.push_back(a);
  mem::WindowSpec w;
  w.port = 3;  // the y output
  w.min_step = 0;
  w.max_step = 1;
  w.max_step_limit = 8;
  out.memory.windows.push_back(w);
  return out;
}

}  // namespace hls::workloads
