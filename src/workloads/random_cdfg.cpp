// Seeded random CDFG generation — the synthetic stand-in for the paper's
// ~40 industrial designs (Figure 9 / Table 4). Produces layered expression
// DAGs with a configurable multiplier fraction, conditional regions
// (exercising predication), and loop-carried accumulators (SCCs).
#include <algorithm>

#include "frontend/builder.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {

using frontend::Builder;
using frontend::Val;
using ir::int_ty;

Workload make_random_cdfg(std::uint64_t seed, const RandomCdfgOptions& opts) {
  Rng rng(seed);
  Builder b("rand" + std::to_string(seed));

  std::vector<frontend::PortHandle> ins;
  for (int i = 0; i < opts.inputs; ++i) {
    ins.push_back(b.in("in" + std::to_string(i), int_ty(16)));
  }
  std::vector<frontend::PortHandle> outs;
  for (int i = 0; i < opts.outputs; ++i) {
    outs.push_back(b.out("out" + std::to_string(i), int_ty(32)));
  }

  const int n_acc = static_cast<int>(opts.carried_accumulators);
  std::vector<frontend::VarHandle> accs;
  for (int i = 0; i < n_acc; ++i) {
    auto v = b.var("acc" + std::to_string(i), int_ty(32));
    b.set(v, b.c(0));
    accs.push_back(v);
  }

  auto loop = b.begin_counted(64);
  std::vector<Val> pool;
  for (auto& p : ins) pool.push_back(b.sext(b.read(p), 32));
  for (auto& a : accs) pool.push_back(b.get(a));

  auto pick = [&]() {
    return pool[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  int made = 0;
  while (made < opts.target_ops) {
    const double roll = rng.uniform01();
    if (roll < opts.mul_fraction) {
      pool.push_back(b.mul(pick(), pick()));
      ++made;
    } else if (roll < opts.mul_fraction + 0.45) {
      pool.push_back(rng.chance(0.5) ? b.add(pick(), pick())
                                     : b.sub(pick(), pick()));
      ++made;
    } else if (roll < opts.mul_fraction + 0.60) {
      pool.push_back(rng.chance(0.5) ? b.bxor(pick(), pick())
                                     : b.band(pick(), pick()));
      ++made;
    } else if (roll < opts.mul_fraction + 0.70) {
      auto sel = b.gt(pick(), pick());
      pool.push_back(b.mux(sel, pick(), pick()));
      made += 2;
    } else if (roll < opts.mul_fraction + 0.78 && made + 4 < opts.target_ops) {
      // A conditional region: assignments under a data-dependent branch.
      auto v = b.var("t" + std::to_string(made), int_ty(32));
      b.set(v, pick());
      b.begin_if(b.ge(pick(), b.c(0)));
      b.set(v, b.add(pick(), pick()));
      b.begin_else();
      b.set(v, b.sub(pick(), pick()));
      b.end_if();
      pool.push_back(b.get(v));
      made += 4;
    } else {
      pool.push_back(b.add(pick(), b.c(rng.uniform(1, 255))));
      ++made;
    }
  }

  // Fold the freshest values into the accumulators (loop-carried SCCs).
  for (int i = 0; i < n_acc; ++i) {
    b.set(accs[static_cast<std::size_t>(i)],
          b.add(b.get(accs[static_cast<std::size_t>(i)]), pick()));
  }
  for (int i = 0; i < opts.outputs; ++i) {
    b.write(outs[static_cast<std::size_t>(i)],
            i < n_acc ? b.get(accs[static_cast<std::size_t>(i)]) : pick());
  }
  b.wait();
  b.end_loop();
  const int latency_max = opts.latency_max > 0
                              ? opts.latency_max
                              : std::max(64, opts.target_ops / 64);
  b.set_latency(loop, 1, latency_max);

  Workload out;
  out.name = "rand" + std::to_string(seed);
  out.loop = loop;
  out.module = b.finish();
  return out;
}

}  // namespace hls::workloads
