#include "frontend/builder.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {

using frontend::Builder;
using frontend::Val;
using ir::int_ty;

Workload make_conv3x3() {
  // 3x3 convolution over a streamed window: 9 multiplications by constant
  // kernel weights, 8 additions, one pixel out per iteration.
  Builder b("conv3x3");
  std::vector<frontend::PortHandle> win;
  for (int i = 0; i < 9; ++i) {
    win.push_back(b.in("w" + std::to_string(i), int_ty(16)));
  }
  auto p_out = b.out("pix", int_ty(32));

  const std::int64_t kernel[9] = {1, 3, 1, 3, 9, 3, 1, 3, 1};
  auto loop = b.begin_counted(1024);
  Val acc{};
  for (int i = 0; i < 9; ++i) {
    auto prod = b.mul(b.sext(b.read(win[static_cast<std::size_t>(i)]), 32),
                      b.c(kernel[i]), "k" + std::to_string(i));
    acc = i == 0 ? prod : b.add(acc, prod);
  }
  b.write(p_out, acc);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);

  Workload out;
  out.name = "conv3x3";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

Workload make_sobel() {
  // Sobel gradient magnitude |gx| + |gy| with conditional negation
  // (if-branches become predicated muxes, exercising the predicate path).
  Builder b("sobel");
  std::vector<frontend::PortHandle> win;
  for (int i = 0; i < 9; ++i) {
    win.push_back(b.in("p" + std::to_string(i), int_ty(16)));
  }
  auto m_out = b.out("mag", int_ty(32));

  auto loop = b.begin_counted(1024);
  std::vector<Val> p;
  for (int i = 0; i < 9; ++i) {
    p.push_back(b.sext(b.read(win[static_cast<std::size_t>(i)]), 32));
  }
  // gx = (p2 + 2 p5 + p8) - (p0 + 2 p3 + p6)
  auto gx = b.sub(b.add(p[2], b.add(b.mul(p[5], b.c(3), "gx_m"), p[8])),
                  b.add(p[0], b.add(b.mul(p[3], b.c(3), "gx_n"), p[6])));
  // gy = (p6 + 2 p7 + p8) - (p0 + 2 p1 + p2)
  auto gy = b.sub(b.add(p[6], b.add(b.mul(p[7], b.c(3), "gy_m"), p[8])),
                  b.add(p[0], b.add(b.mul(p[1], b.c(3), "gy_n"), p[2])));
  auto ax = b.var("ax", int_ty(32));
  auto ay = b.var("ay", int_ty(32));
  b.begin_if(b.ge(gx, b.c(0)));
  b.set(ax, gx);
  b.begin_else();
  b.set(ax, b.neg(gx));
  b.end_if();
  b.begin_if(b.ge(gy, b.c(0)));
  b.set(ay, gy);
  b.begin_else();
  b.set(ay, b.neg(gy));
  b.end_if();
  b.write(m_out, b.add(b.get(ax), b.get(ay)));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);

  Workload out;
  out.name = "sobel";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

}  // namespace hls::workloads
