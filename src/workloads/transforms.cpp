#include <cmath>

#include "frontend/builder.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {

using frontend::Builder;
using frontend::Val;
using ir::int_ty;

namespace {

/// Fixed-point DCT-II / IDCT coefficient, Q12.
std::int64_t dct_coef(int k, int n, bool inverse) {
  const double pi = 3.14159265358979323846;
  const double c = (inverse ? (k == 0 ? std::sqrt(0.5) : 1.0)
                            : (k == 0 ? std::sqrt(0.5) : 1.0)) *
                   std::cos((2 * n + 1) * k * pi / 16.0) * 0.5;
  return static_cast<std::int64_t>(std::llround(c * 4096.0));
}

Workload make_dct_like(const std::string& name, bool inverse,
                       int data_width) {
  Builder b(name);
  const auto w = static_cast<std::uint8_t>(data_width);
  std::vector<frontend::PortHandle> ins;
  std::vector<frontend::PortHandle> outs;
  for (int i = 0; i < 8; ++i) {
    ins.push_back(b.in("x" + std::to_string(i), int_ty(w)));
  }
  for (int i = 0; i < 8; ++i) {
    outs.push_back(b.out("y" + std::to_string(i), int_ty(w)));
  }

  // One column of the 8-point transform per iteration (the paper's
  // Section VI IDCT: latencies 8..32 per column explored).
  auto loop = b.begin_counted(64);
  std::vector<Val> x;
  for (int i = 0; i < 8; ++i) {
    x.push_back(b.sext(b.read(ins[static_cast<std::size_t>(i)]), 32));
  }
  for (int k = 0; k < 8; ++k) {
    Val acc{};
    for (int n = 0; n < 8; ++n) {
      // IDCT: out[n] = sum_k coef(k,n) X[k]; DCT: out[k] = sum_n ...
      const std::int64_t c =
          inverse ? dct_coef(n, k, true) : dct_coef(k, n, false);
      auto prod = b.mul(x[static_cast<std::size_t>(inverse ? n : n)], b.c(c),
                        "m" + std::to_string(k) + "_" + std::to_string(n));
      acc = n == 0 ? prod : b.add(acc, prod);
    }
    auto scaled = b.shr(acc, b.c(12, ir::uint_ty(5)));
    b.write(outs[static_cast<std::size_t>(k)],
            b.trunc(scaled, w, "out" + std::to_string(k)));
  }
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);

  Workload out;
  out.name = name;
  out.loop = loop;
  out.module = b.finish();
  return out;
}

}  // namespace

Workload make_dct8(int data_width) {
  return make_dct_like("dct8", /*inverse=*/false, data_width);
}

Workload make_idct8(int data_width) {
  return make_dct_like("idct8", /*inverse=*/true, data_width);
}

Workload make_fft8_stage() {
  // First DIT stage of an 8-point complex FFT: 4 butterflies with twiddle
  // factors W8^k in Q12 fixed point (16 multiplications, 24 additions).
  Builder b("fft8");
  std::vector<frontend::PortHandle> in_re, in_im, out_re, out_im;
  for (int i = 0; i < 8; ++i) {
    in_re.push_back(b.in("re" + std::to_string(i), int_ty(16)));
    in_im.push_back(b.in("im" + std::to_string(i), int_ty(16)));
  }
  for (int i = 0; i < 8; ++i) {
    out_re.push_back(b.out("ore" + std::to_string(i), int_ty(16)));
    out_im.push_back(b.out("oim" + std::to_string(i), int_ty(16)));
  }

  auto loop = b.begin_counted(128);
  std::vector<Val> re, im;
  for (int i = 0; i < 8; ++i) {
    re.push_back(b.sext(b.read(in_re[static_cast<std::size_t>(i)]), 32));
    im.push_back(b.sext(b.read(in_im[static_cast<std::size_t>(i)]), 32));
  }
  const double pi = 3.14159265358979323846;
  for (int k = 0; k < 4; ++k) {
    const auto wr = static_cast<std::int64_t>(
        std::llround(std::cos(-2 * pi * k / 8.0) * 4096.0));
    const auto wi = static_cast<std::int64_t>(
        std::llround(std::sin(-2 * pi * k / 8.0) * 4096.0));
    auto su = static_cast<std::size_t>(k);
    auto sl = static_cast<std::size_t>(k + 4);
    auto sum_r = b.add(re[su], re[sl]);
    auto sum_i = b.add(im[su], im[sl]);
    auto diff_r = b.sub(re[su], re[sl]);
    auto diff_i = b.sub(im[su], im[sl]);
    // (diff_r + j diff_i) * (wr + j wi)
    auto rr = b.mul(diff_r, b.c(wr));
    auto ii = b.mul(diff_i, b.c(wi));
    auto ri = b.mul(diff_r, b.c(wi));
    auto ir = b.mul(diff_i, b.c(wr));
    auto tw_r = b.shr(b.sub(rr, ii), b.c(12, ir::uint_ty(5)));
    auto tw_i = b.shr(b.add(ri, ir), b.c(12, ir::uint_ty(5)));
    b.write(out_re[su], b.trunc(sum_r, 16));
    b.write(out_im[su], b.trunc(sum_i, 16));
    b.write(out_re[sl], b.trunc(tw_r, 16));
    b.write(out_im[sl], b.trunc(tw_i, 16));
  }
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);

  Workload out;
  out.name = "fft8";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

}  // namespace hls::workloads
