#include "frontend/builder.hpp"
#include "workloads/workloads.hpp"

namespace hls::workloads {

using frontend::Builder;
using frontend::Val;
using frontend::VarHandle;
using ir::int_ty;
using ir::uint_ty;

int Workload::op_count() const {
  return static_cast<int>(
      module.thread.tree.ops_in(loop, /*into_nested_loops=*/false).size());
}

Workload make_fir(int taps, int data_width) {
  Builder b("fir" + std::to_string(taps));
  const auto w = static_cast<std::uint8_t>(data_width);
  auto x_in = b.in("x", int_ty(w));
  auto y_out = b.out("y", int_ty(32));

  // Carried delay line x[n-1] .. x[n-taps+1].
  std::vector<VarHandle> delay;
  for (int i = 1; i < taps; ++i) {
    auto v = b.var("z" + std::to_string(i), int_ty(w));
    b.set(v, b.c(0, int_ty(w)));
    delay.push_back(v);
  }

  auto loop = b.begin_counted(1024);
  auto x = b.read(x_in);
  std::vector<Val> window{x};
  for (auto& v : delay) window.push_back(b.get(v));

  // Odd coefficients so strength reduction cannot trivialize the muls.
  Val acc = b.c(0);
  for (int i = 0; i < taps; ++i) {
    const std::int64_t coef = 2 * ((i * 37) % 31) + 3;
    auto prod = b.mul(b.sext(window[static_cast<std::size_t>(i)], 32),
                      b.c(coef), "mac" + std::to_string(i));
    acc = i == 0 ? prod : b.add(acc, prod);
  }
  b.write(y_out, acc);
  // Shift the delay line.
  for (int i = taps - 2; i >= 1; --i) {
    b.set(delay[static_cast<std::size_t>(i)],
          b.get(delay[static_cast<std::size_t>(i - 1)]));
  }
  if (!delay.empty()) b.set(delay[0], x);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 64);

  Workload out;
  out.name = "fir" + std::to_string(taps);
  out.loop = loop;
  out.module = b.finish();
  return out;
}

Workload make_ewf() {
  // Fifth-order elliptic wave filter in the classic HLS benchmark shape:
  // a lattice of 26 additions and 8 constant multiplications over carried
  // state variables (adapted; see DESIGN.md).
  Builder b("ewf");
  auto x_in = b.in("x", int_ty(16));
  auto y_out = b.out("y", int_ty(32));

  std::vector<VarHandle> st;
  for (int i = 0; i < 7; ++i) {
    auto v = b.var("s" + std::to_string(i), int_ty(32));
    b.set(v, b.c(0));
    st.push_back(v);
  }

  auto loop = b.begin_counted(512);
  auto x = b.sext(b.read(x_in), 32);
  auto mulc = [&](Val v, std::int64_t c, const char* name) {
    return b.mul(v, b.c(c), name);
  };
  // Input adaptor section.
  auto t1 = b.add(x, b.get(st[0]));
  auto t2 = b.add(t1, b.get(st[1]));
  auto m1 = mulc(t2, 5, "m1");
  auto t3 = b.add(m1, b.get(st[2]));
  auto t4 = b.add(t3, t1);
  auto m2 = mulc(t4, 11, "m2");
  // Middle lattice.
  auto t5 = b.add(m2, b.get(st[3]));
  auto t6 = b.add(t5, t3);
  auto m3 = mulc(t6, 7, "m3");
  auto t7 = b.add(m3, b.get(st[4]));
  auto t8 = b.add(t7, t5);
  auto m4 = mulc(t8, 13, "m4");
  auto t9 = b.add(m4, t7);
  auto t10 = b.add(t9, b.get(st[5]));
  auto m5 = mulc(t10, 3, "m5");
  // Output adaptor section.
  auto t11 = b.add(m5, b.get(st[6]));
  auto t12 = b.add(t11, t9);
  auto m6 = mulc(t12, 9, "m6");
  auto t13 = b.add(m6, t11);
  auto t14 = b.add(t13, t4);
  auto m7 = mulc(t14, 5, "m7");
  auto t15 = b.add(m7, t13);
  auto t16 = b.add(t15, t2);
  auto m8 = mulc(t16, 7, "m8");
  auto t17 = b.add(m8, t15);
  auto t18 = b.add(t17, t12);
  auto t19 = b.add(t18, t16);
  auto t20 = b.add(t19, t14);
  auto t21 = b.add(t20, t10);
  auto t22 = b.add(t21, t8);
  auto t23 = b.add(t22, t6);
  auto t24 = b.add(t23, x);
  auto t25 = b.add(t24, t18);
  auto t26 = b.add(t25, t21);
  b.write(y_out, t26);
  // State updates (carried).
  b.set(st[0], t26);
  b.set(st[1], t19);
  b.set(st[2], t17);
  b.set(st[3], t13);
  b.set(st[4], t9);
  b.set(st[5], t5);
  b.set(st[6], t3);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 64);

  Workload out;
  out.name = "ewf";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

Workload make_arf() {
  // Auto-regression filter: 16 multiplications, 12 additions, 2 outputs.
  Builder b("arf");
  auto x0 = b.in("x0", int_ty(16));
  auto x1 = b.in("x1", int_ty(16));
  auto y0 = b.out("y0", int_ty(32));
  auto y1 = b.out("y1", int_ty(32));

  std::vector<VarHandle> st;
  for (int i = 0; i < 4; ++i) {
    auto v = b.var("r" + std::to_string(i), int_ty(32));
    b.set(v, b.c(0));
    st.push_back(v);
  }

  auto loop = b.begin_counted(512);
  auto a = b.sext(b.read(x0), 32);
  auto c = b.sext(b.read(x1), 32);
  std::vector<Val> prods;
  const std::int64_t coefs[16] = {3,  5,  7,  11, 13, 17, 19, 23,
                                  29, 31, 37, 41, 43, 47, 53, 59};
  std::vector<Val> srcs{a, c, b.get(st[0]), b.get(st[1]), b.get(st[2]),
                        b.get(st[3])};
  for (int i = 0; i < 16; ++i) {
    prods.push_back(b.mul(srcs[static_cast<std::size_t>(i % srcs.size())],
                          b.c(coefs[i]), "p" + std::to_string(i)));
  }
  // Two adder trees of 8 products each (7 + 5 = 12 additions total: the
  // second tree reuses two partial sums from the first).
  auto sum4 = [&](int base) {
    auto s0 = b.add(prods[static_cast<std::size_t>(base)],
                    prods[static_cast<std::size_t>(base + 1)]);
    auto s1 = b.add(prods[static_cast<std::size_t>(base + 2)],
                    prods[static_cast<std::size_t>(base + 3)]);
    return b.add(s0, s1);
  };
  auto t0 = sum4(0);
  auto t1 = sum4(4);
  auto out0 = b.add(t0, t1);
  auto t2 = sum4(8);
  auto out1 = b.add(t2, b.add(t1, prods[15]));
  b.write(y0, out0);
  b.write(y1, out1);
  b.set(st[0], out0);
  b.set(st[1], out1);
  b.set(st[2], t0);
  b.set(st[3], t2);
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 64);

  Workload out;
  out.name = "arf";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

Workload make_crc32() {
  // Byte-at-a-time CRC-32 (polynomial 0xEDB88320), eight unrolled bit
  // steps of shifts (free), XORs, and muxes over the carried register.
  Builder b("crc32");
  auto d_in = b.in("data", uint_ty(8));
  auto c_out = b.out("crc", uint_ty(32));
  auto crc = b.var("state", uint_ty(32));
  b.set(crc, b.c(0xFFFFFFFF, uint_ty(32)));

  auto loop = b.begin_counted(256);
  auto byte = b.zext(b.read(d_in), 32);
  auto cur = b.bxor(b.get(crc), byte);
  for (int i = 0; i < 8; ++i) {
    auto lsb = b.bits(cur, 0, 0);
    auto shifted = b.shr(cur, b.c(1, uint_ty(6)));
    auto xored = b.bxor(shifted, b.c(0xEDB88320, uint_ty(32)));
    cur = b.mux(lsb, xored, shifted, "bit" + std::to_string(i));
  }
  b.set(crc, cur);
  b.write(c_out, b.bxor(cur, b.c(0xFFFFFFFF, uint_ty(32))));
  b.wait();
  b.end_loop();
  b.set_latency(loop, 1, 32);

  Workload out;
  out.name = "crc32";
  out.loop = loop;
  out.module = b.finish();
  return out;
}

}  // namespace hls::workloads
