// The Figure 9 profiling suite: named kernels plus seeded random CDFGs
// spanning roughly 100-6000 operations (the paper's design-size range,
// average ~1400).
#include "workloads/workloads.hpp"

namespace hls::workloads {

std::vector<Workload> suite() {
  std::vector<Workload> all;
  all.push_back(make_fir(16));
  all.push_back(make_ewf());
  all.push_back(make_arf());
  all.push_back(make_crc32());
  all.push_back(make_fft8_stage());
  all.push_back(make_dct8());
  all.push_back(make_idct8());
  all.push_back(make_conv3x3());
  all.push_back(make_sobel());
  all.push_back(make_banked_fir());
  all.push_back(make_transpose4());
  all.push_back(make_stencil_row());
  RandomCdfgOptions opts;
  opts.target_ops = 150;
  all.push_back(make_random_cdfg(7, opts));
  return all;
}

std::vector<Workload> make_profile_suite() {
  std::vector<Workload> suite;
  // Named kernels (filters, FFTs, image processing — the categories the
  // paper lists).
  suite.push_back(make_fir(16));
  suite.push_back(make_fir(64));
  suite.push_back(make_ewf());
  suite.push_back(make_arf());
  suite.push_back(make_crc32());
  suite.push_back(make_fft8_stage());
  suite.push_back(make_dct8());
  suite.push_back(make_idct8());
  suite.push_back(make_conv3x3());
  suite.push_back(make_sobel());
  // Random designs spanning ~100-6000 ops, denser at the small end
  // (the paper: average 1400 ops).
  const int sizes[] = {100,  140,  190,  260,  350,  470,  620,  800,
                       1000, 1200, 1400, 1600, 1850, 2100, 2400, 2700,
                       3000, 3400, 3800, 4200, 4600, 5000, 5400, 5800,
                       6000, 150,  450,  900,  1300, 2000};
  std::uint64_t seed = 1000;
  for (int target : sizes) {
    RandomCdfgOptions opts;
    opts.target_ops = target;
    opts.inputs = 4 + target / 800;
    opts.outputs = 2 + target / 2000;
    opts.mul_fraction = 0.12 + 0.1 * ((seed % 3) / 3.0);
    opts.carried_accumulators = 1 + static_cast<int>(seed % 3);
    suite.push_back(make_random_cdfg(seed++, opts));
  }
  return suite;
}

}  // namespace hls::workloads
