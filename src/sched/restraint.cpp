#include "sched/restraint.hpp"

#include "ir/dfg.hpp"
#include "support/strings.hpp"

namespace hls::sched {

const char* restraint_kind_name(RestraintKind k) {
  switch (k) {
    case RestraintKind::kNoResource: return "no-resource";
    case RestraintKind::kNegativeSlack: return "negative-slack";
    case RestraintKind::kCombCycle: return "comb-cycle";
    case RestraintKind::kSccWindow: return "scc-window";
    case RestraintKind::kNoStates: return "no-states";
    case RestraintKind::kBankConflict: return "bank-conflict";
    case RestraintKind::kPortPressure: return "port-pressure";
    case RestraintKind::kWindowMiss: return "window-miss";
  }
  return "?";
}

std::string Restraint::to_string(const ir::Dfg& dfg) const {
  std::string name = op != ir::kNoOp && op < dfg.size() && !dfg.op(op).name.empty()
                         ? dfg.op(op).name
                         : strf("%", op);
  std::string s = strf(restraint_kind_name(kind), " op=", name, " step=s",
                       step + 1);
  if (kind == RestraintKind::kNegativeSlack) {
    s += strf(" slack=", slack_ps, "ps");
  }
  if (scc >= 0) s += strf(" scc=", scc);
  return s;
}

}  // namespace hls::sched
