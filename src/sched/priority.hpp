// List-scheduling priorities (paper Figure 7 and Section IV.B): "The
// priority function takes into account the mobility of the operations
// defined by timing-aware ASAP/ALAP intervals (similar to Force-Directed
// Scheduling), the complexity of operations (more complex ones are
// scheduled first), the size of the fanout cone of an operation".
#pragma once

#include <vector>

#include "sched/problem.hpp"

namespace hls::sched {

struct Priority {
  int mobility = 0;        ///< smaller = more urgent
  double complexity = 0;   ///< unit delay; larger first
  int fanout_cone = 0;     ///< larger first
  ir::OpId op = ir::kNoOp; ///< ascending id tie break

  /// True if *this should be scheduled before `other`.
  bool before(const Priority& other) const {
    if (mobility != other.mobility) return mobility < other.mobility;
    if (complexity != other.complexity) return complexity > other.complexity;
    if (fanout_cone != other.fanout_cone) {
      return fanout_cone > other.fanout_cone;
    }
    return op < other.op;
  }
};

/// Priorities for every op in the problem (indexed by OpId; entries for
/// non-region ops are defaulted).
std::vector<Priority> compute_priorities(const Problem& p);

/// Total scheduling order as a dense rank per OpId: rank 0 is the op that
/// `before` puts first; non-region ops get rank dfg.size(). Since `before`
/// is a strict total order (the op-id tie break), a single int compare on
/// ranks reproduces it exactly — the ready queues sort on ranks instead of
/// re-running the four-field comparison per pick.
std::vector<int> priority_ranks(const Problem& p,
                                const std::vector<Priority>& priorities);

/// The rank table and its inverse, recomputed once per pass (spans — and
/// with them mobilities — change between relaxation passes). Both backends
/// serve their ready sets in this order.
struct PriorityOrder {
  std::vector<int> rank;        ///< OpId -> scheduling-order rank
  std::vector<ir::OpId> order;  ///< rank -> OpId
};

PriorityOrder compute_priority_order(const Problem& p);

}  // namespace hls::sched
