// Restraints: the failure records the pass scheduler leaves behind for the
// expert system (paper Section IV.B: "The history of the scheduling pass
// is recorded in a set of restraints, which are issued every time a
// binding of an operation to an edge and/or a resource fails").
#pragma once

#include <string>
#include <vector>

#include "ir/dfg.hpp"

namespace hls::sched {

enum class RestraintKind : std::uint8_t {
  kNoResource,     ///< all compatible instances busy at the deadline step
  kNegativeSlack,  ///< every feasible binding violates the clock period
  kCombCycle,      ///< binding would create a false combinational cycle
  kSccWindow,      ///< the op's SCC cannot fit its II-state window here
  kNoStates,       ///< the op's dependences never became ready in time
  // Memory constraint family (mem::MemorySpec; see docs/MEMORY.md):
  kBankConflict,   ///< own bank's ports busy while another bank sat idle
  kPortPressure,   ///< every bank's compatible ports busy at the deadline
  kWindowMiss,     ///< the op's timing window closed before it could bind
};

const char* restraint_kind_name(RestraintKind k);

/// True for the memory constraint family (bank/port/window restraints) —
/// reported separately in SchedulerResult / render_report / ExplorePoint.
inline bool is_memory_restraint(RestraintKind k) {
  return k == RestraintKind::kBankConflict ||
         k == RestraintKind::kPortPressure ||
         k == RestraintKind::kWindowMiss;
}

struct Restraint {
  RestraintKind kind = RestraintKind::kNoResource;
  ir::OpId op = ir::kNoOp;
  int step = -1;          ///< step at which the fatal failure occurred
  int pool = -1;          ///< resource pool involved (if any)
  int instance = -1;      ///< instance involved (kCombCycle)
  double slack_ps = 0;    ///< most favourable (least negative) slack seen
  int scc = -1;           ///< SCC index (kSccWindow / SCC member failures)
  /// Weight: proximity to the failed op (1 for the op itself, decaying
  /// through its fan-in cone) times the failure count.
  double weight = 1.0;

  std::string to_string(const ir::Dfg& dfg) const;
};

}  // namespace hls::sched
