// The shared binding/legalization engine (BindingEngine) plus the pass
// vocabulary both scheduler backends speak: decision traces (PassEvent /
// PassTrace / WarmStart) and pass outcomes (PassOutcome).
//
// Both backends — the paper's timing-driven list scheduler and the SDC
// difference-constraint scheduler — legalize bindings under identical
// rules: the same dependence structure, chaining/slack verdicts,
// exclusivity-aware instance selection, write-port conflict ordering,
// combinational-cycle avoidance, commit/release semantics and restraint
// vocabulary. Until this component existed, `SdcPass` re-implemented the
// list pass's binder machinery line for line and the two stayed
// semantically identical only by convention (enforced by the
// backend-equivalence suite). The BindingEngine turns that convention
// into structure: the machinery exists exactly once, and each backend
// keeps only its solver core — ready-list serving for the list pass, the
// Bellman-Ford difference-constraint propagation for SDC — driving the
// engine through the narrow Host seam below.
//
// The engine is per-pass state (occupancy, placements, restraints are
// torn down between relaxation passes); the DependenceGraph is
// pass-invariant and built once per schedule_region by each backend.
#pragma once

#include <set>

#include "sched/priority.hpp"
#include "sched/problem.hpp"
#include "sched/restraint.hpp"
#include "timing/comb_cycle.hpp"
#include "timing/engine.hpp"

namespace hls::sched {

/// The dependence structure both backends schedule over, built with one
/// set of rules: carried loop-mux edges excluded, constants and
/// out-of-region values come from registers, no-speculate ops additionally
/// wait for their predicate, and consecutive writes to one port carry a
/// pseudo-dependence (ordering, no chaining exception). Static per
/// Problem — only instance counts change between passes — so backends
/// build it once per schedule_region.
struct DependenceGraph {
  std::vector<std::vector<ir::OpId>> deps;   ///< per op, sorted unique
  std::vector<std::vector<ir::OpId>> users;  ///< reverse deps
  std::vector<ir::OpId> port_next;  ///< next write on the same port
  std::vector<int> base_unmet;      ///< deps per op incl. the port pseudo-dep
};

DependenceGraph build_dependence_graph(const Problem& p);

/// One decision a pass took, in decision order. The trace makes warm
/// starts possible: after a relaxation, the next pass replays the prefix
/// of decisions the action provably cannot have changed and only re-runs
/// the binding loops from the invalidation frontier on.
struct PassEvent {
  enum class Kind : std::uint8_t {
    kCommit,      ///< op bound (pool/instance/arrival recorded)
    kDefer,       ///< try_bind failed before the deadline; op retried later
    kFatalBind,   ///< try_bind failed at the deadline (restraints recorded)
    kFatalSweep,  ///< dependences never became ready by the deadline
    kFatalFinal,  ///< left unscheduled after the last state (re-derived,
                  ///< never replayed)
  };
  Kind kind = Kind::kCommit;
  ir::OpId op = ir::kNoOp;
  int step = -1;  ///< decision step (start step for commits)
  int pool = -1;
  int instance = -1;
  int lat = 0;
  double arrival_ps = 0;
  /// kFatal*: the restraints this failure pushed, replayed verbatim.
  std::vector<Restraint> restraints;
};

struct PassTrace {
  std::vector<PassEvent> events;
};

/// Warm-start request: replay `trace` events at steps < `frontier_step`,
/// then schedule normally from the frontier. The caller guarantees (via
/// warm_start_frontier) that the applied relaxation cannot change any
/// decision before the frontier.
struct WarmStart {
  const PassTrace* trace = nullptr;
  int frontier_step = 0;
};

struct PassOutcome {
  bool success = false;
  Schedule schedule;  ///< complete on success; partial placement on failure
  std::vector<Restraint> restraints;
  std::vector<ir::OpId> failed_ops;
  PassTrace trace;  ///< decision log for the next pass's warm start
  /// Work-unit charges for support::Budget accounting (docs/FAULTS.md):
  /// ops committed through the engine this pass (both backends, warm
  /// replays included) and Bellman-Ford edge relaxation steps (SDC
  /// backend only; 0 for the list backend).
  std::uint64_t commits = 0;
  std::uint64_t relax_steps = 0;
  /// Static constraint-edge count of the pass's difference-constraint
  /// system (SDC backend only; 0 for list passes). Surfaced per pass in
  /// PassRecord::constraint_edges.
  std::uint64_t constraint_edges = 0;
};

/// The shared binder: everything a constrained scheduling attempt needs
/// besides the order in which ops are offered to it. Owns the dense
/// forbidden table and flat occupancy over the ResourceSet's global
/// instance numbering, placements, the combinational-cycle graph, the
/// per-op refusal log and the restraint list. `try_bind`/`commit` place
/// ops; `fatal`/`fatal_no_states` aggregate the refusals at the deadline
/// step into the restraint vocabulary the expert system consumes; both
/// backends therefore emit byte-identical restraints for the same
/// refusal history.
class BindingEngine {
 public:
  /// The callback seam to the solver. The engine never touches the
  /// solver's ready structures directly; it reports state changes and the
  /// solver updates its queues (and, for the list backend, its decision
  /// trace) in response.
  class Host {
   public:
    /// `id` was committed starting at step `e` (result step `e + lat`,
    /// placement and occupancy already recorded): remove it from the
    /// ready structures and log the decision if the solver keeps a trace.
    virtual void on_commit(ir::OpId id, int pool, int inst, int e, int lat,
                           double arrival) = 0;
    /// One dependence of `user` was satisfied; the producing result is
    /// usable from `avail_step` on.
    virtual void on_dep_satisfied(ir::OpId user, int avail_step) = 0;

   protected:
    ~Host() = default;
  };

  BindingEngine(const Problem& p, const DependenceGraph& dg,
                timing::TimingEngine& eng, Host& host);

  // ---- Queries the solver loops key their serving order off ---------------
  int latency_of(ir::OpId id) const { return p_->pool_latency(id); }
  /// Latest step at which execution may START (deadline on the result
  /// step minus the unit latency).
  int start_deadline(ir::OpId id) const {
    return p_->deadline(id) - latency_of(id);
  }
  bool scheduled(ir::OpId id) const { return placement_[id].scheduled; }
  bool op_failed(ir::OpId id) const { return failed_[id]; }
  const OpPlacement& placement(ir::OpId id) const { return placement_[id]; }
  std::size_t num_restraints() const { return restraints_.size(); }
  const std::vector<Restraint>& restraints() const { return restraints_; }

  // ---- Binding -------------------------------------------------------------
  /// One binding attempt of `id` starting at step `e`: instance selection
  /// (forbidden table, occupancy with exclusive colocation, comb-cycle
  /// avoidance, timing), write-port conflicts for free ops, SCC window
  /// feasibility. Commits (through `commit`) and returns true on success;
  /// otherwise records the refusal causes for later aggregation.
  bool try_bind(ir::OpId id, int e);
  /// Records the placement, occupancy and chaining edges, notifies the
  /// host, then releases the consumers (`on_dep_satisfied` per user, with
  /// the chaining-aware availability step). Also the warm-start replay
  /// path for recorded commits.
  void commit(ir::OpId id, int pool, int inst, int e, int lat,
              double arrival);

  // ---- Failure bookkeeping -------------------------------------------------
  /// Deadline-step failure: marks the op failed and aggregates its refusal
  /// causes at step `e` into restraints (busy/forbidden counts, best
  /// negative slack with fan-in cone blame, comb cycles, SCC windows).
  void fatal(ir::OpId id, int e);
  /// No-states failure (dependences never became ready / ran out of
  /// states). No-op when the op is already failed.
  void fatal_no_states(ir::OpId id, int e);
  /// Warm-start replay of a recorded fatal: marks the op failed and
  /// re-appends the recorded restraints verbatim.
  void replay_fatal(ir::OpId id, const std::vector<Restraint>& restraints);

  /// Assembles the pass outcome: success flag, schedule shell, restraints
  /// and failed ops moved out; on success runs the final timing pass
  /// (finalize_timing) and demotes the pass to a failure when mux growth
  /// pushed a path over the clock period. The engine is spent afterwards.
  PassOutcome finish();

 private:
  /// Why a particular instance refused a binding.
  enum class RefuseCause : std::uint8_t {
    kBusy,
    kSlack,
    kCycle,
    kForbidden,
    kWindow,
  };

  struct Refusal {
    int step;
    int pool;
    int instance;
    RefuseCause cause;
    double slack;
  };

  int slot_of(int step) const {
    return p_->pipeline.enabled ? step % p_->pipeline.ii : step;
  }
  bool pool_shared(int pool) const {
    return p_->pool_members(pool) >
           p_->resources.pools[static_cast<std::size_t>(pool)].count;
  }

  void build_forbidden();
  bool is_forbidden(ir::OpId id, int pool, int inst) const;

  double operand_arrival(ir::OpId d, int e) const;
  void gather_arrivals(ir::OpId id, int e);
  bool candidate_timing(int pool, int inst, int lat, double* arrival,
                        double* slack);

  bool bind_free(ir::OpId id, int e);
  bool scc_window_ok(ir::OpId id, int result_step) const;
  bool instance_free(ir::OpId id, int pool, int inst, int e, int lat,
                     bool excl_pred_ready) const;
  bool creates_comb_cycle(ir::OpId id, int pool, int inst, int e) const;
  /// Memory pools: may `inst` (bank-major port index) serve this op at
  /// all — right bank, direction-compatible port? Incompatible instances
  /// are skipped silently so busy counts mean "my bank's ports".
  bool memory_instance_ok(ir::OpId id, const alloc::ResourcePool& pool,
                          int inst) const;
  /// Classifies an all-ports-busy failure of a memory op: window closed →
  /// kWindowMiss, another bank had a compatible free port at this step →
  /// kBankConflict, otherwise kPortPressure.
  RestraintKind classify_memory_busy(ir::OpId id, int pool, int e) const;

  void note_refusal(ir::OpId id, int e, int pool, int inst, RefuseCause cause,
                    double slack = 0);
  bool depends_on_failure(ir::OpId id) const;

  const Problem* p_;
  const ir::Dfg* dfg_;
  const DependenceGraph* dg_;
  timing::TimingEngine* eng_;
  Host* host_;

  alloc::InstanceNumbering num_;
  int num_slots_ = 1;

  std::vector<OpPlacement> placement_;
  std::vector<bool> failed_;
  std::vector<ir::OpId> failed_list_;
  /// Occupants per global instance * num_slots + slot.
  std::vector<std::vector<ir::OpId>> occ_;
  std::vector<int> inst_ops_;    ///< committed ops per global instance
  std::vector<char> forbidden_;  ///< dense op x instance; empty = none
  std::vector<double> arrivals_;  ///< scratch operand-arrival buffer
  timing::PathQuery pq_;          ///< scratch query (arrivals set per bind)
  timing::CombCycleGraph comb_graph_;
  std::vector<Restraint> restraints_;
  std::vector<std::vector<Refusal>> refusals_;  ///< per op
  std::uint64_t commits_ = 0;  ///< PassOutcome::commits
};

/// Solver-side scaffolding shared by both backends' pass runners: owns
/// the BindingEngine, the priority-rank-ordered active set, the per-step
/// deferral epochs, and the decision trace (commits, first defers,
/// fatals with their restraint slices). A backend's pass runner derives
/// from this, keeps only its own ready queues/counters and step loop,
/// and implements `on_dep_satisfied` — how a released consumer re-enters
/// those queues, which is the one readiness rule the backends genuinely
/// differ on.
class SolverHost : public BindingEngine::Host {
 protected:
  SolverHost(const Problem& p, const DependenceGraph& dg,
             timing::TimingEngine& eng);
  ~SolverHost() = default;

  /// Committed ops leave the active set and enter the trace.
  void on_commit(ir::OpId id, int pool, int inst, int e, int lat,
                 double arrival) final;

  /// Adds the op to the active set (anchored I/O is additionally tracked
  /// for removal when its home step ends).
  void insert_active(ir::OpId id);
  /// Highest-priority active op not deferred in the current epoch.
  ir::OpId pick_ready() const;
  /// Marks the op deferred for this epoch; logs only the first defer
  /// (the warm-start frontier needs the op's minimum failed-bind step).
  void defer(ir::OpId id, int e);
  /// Deadline-step failure: engine aggregation + trace record.
  void fatal(ir::OpId id, int e);
  /// No-states failure with the given event kind; no-op when already
  /// reported.
  void fatal_no_states(ir::OpId id, int e, PassEvent::Kind kind);
  /// Replays one recorded decision through the engine and the trace.
  void apply_replay(const PassEvent& ev);

  const Problem& p_;
  const ir::Dfg& dfg_;
  BindingEngine binder_;
  PriorityOrder po_;
  std::set<int> active_;  ///< ranks of currently eligible ops
  std::vector<ir::OpId> step_anchored_;
  std::vector<std::uint32_t> deferred_mark_;
  std::vector<bool> defer_logged_;
  std::uint32_t deferred_epoch_ = 1;
  /// pick_ready scan cursor: while the epoch matches deferred_epoch_,
  /// every active rank <= ready_cursor_rank_ is deferred-marked at that
  /// epoch, so scans resume past the prefix. insert_active invalidates
  /// it (epoch 0 never matches; deferred_epoch_ starts at 1 and only
  /// grows). Mutable: pick_ready is a const query whose result is
  /// identical with or without the cursor.
  mutable std::uint32_t ready_cursor_epoch_ = 0;
  mutable int ready_cursor_rank_ = 0;
  PassTrace trace_;

 private:
  void record_fatal(ir::OpId id, int e, PassEvent::Kind kind,
                    std::size_t restraints_before);
};

/// Number of ops the current resource counts provably leave without an
/// instance slot: for every pool, members beyond count x usable slots must
/// fail their binding, each with at least one restraint. This is the
/// "hopeless pass" detector behind SchedulerOptions::restraint_volume_cap
/// (exclusive colocation can only lower the true figure, so the estimate
/// is a floor on the restraint volume, not on feasibility).
int provable_resource_overflow(const Problem& p);

/// States needed so every pool fits its members (sequential regions; for
/// pipelined regions extra states do not add slots).
int states_for_resources(const Problem& p);

/// Recomputes all arrival times with the final sharing-mux sizes (commits
/// during the pass use the mux size seen at bind time; later ops can grow
/// a mux from 2 to 3+ inputs). Stores per-op arrivals and the worst slack
/// in the schedule; returns the worst slack.
double finalize_timing(const Problem& p, Schedule& s,
                       timing::TimingEngine& eng,
                       ir::OpId* worst_op_out = nullptr);

/// Asserts every schedule invariant (dependences, occupancy incl.
/// pipeline-equivalent steps, SCC windows, port write order, timing).
/// Throws InternalError with a description on the first violation.
void check_schedule(const Problem& p, const Schedule& s);

}  // namespace hls::sched
