// The pluggable scheduler-backend interface.
//
// `schedule_region` (driver.cpp) owns everything both algorithms share:
// Problem construction, the recurrence bound, the expert relaxation loop
// (expert.cpp), pass records and the final schedule check. What varies is
// how one constrained scheduling *attempt* over the current Problem is
// made. A backend is constructed once per schedule_region call from the
// Problem and the SchedulerOptions (so it can cache pass-invariant
// structure — dependence graphs, priority ranks), and its `run_pass` is
// invoked once per pass against the expert-mutated Problem, producing the
// same PassOutcome shape (partial schedule + restraints) the expert
// consumes. The driver turns the pass sequence into a SchedulerResult
// with placements, arrivals and per-pass records regardless of backend.
//
// Backends:
//  * ListScheduler (backend.cpp) — the paper's timing-driven list
//    scheduling pass (pass_scheduler.cpp); supports warm starts.
//  * SdcScheduler (sdc_scheduler.hpp) — difference-constraint
//    formulation solved by an incremental longest-path core; also
//    warm-startable.
// Both drive the shared sched::BindingEngine (binder.hpp) for
// legalization, so restraints and binding semantics are structurally
// identical. BackendKind::kAuto defers the choice to resolve_backend,
// a deterministic per-problem heuristic.
#pragma once

#include <memory>

#include "sched/driver.hpp"

namespace hls::sched {

class SchedulerBackend {
 public:
  SchedulerBackend(const Problem& problem, const SchedulerOptions& options)
      : problem_(problem), options_(options) {}
  virtual ~SchedulerBackend() = default;

  SchedulerBackend(const SchedulerBackend&) = delete;
  SchedulerBackend& operator=(const SchedulerBackend&) = delete;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_name(kind()); }

  /// True when the backend can replay a prior pass's decision trace from
  /// an invalidation frontier. The driver only computes frontiers (and
  /// passes a WarmStart) for backends that opt in.
  virtual bool warm_startable() const { return false; }

  /// One constrained scheduling attempt over the (expert-mutated)
  /// Problem. Must not mutate the Problem; failures are reported as
  /// restraints in the outcome, successes as a complete schedule.
  virtual PassOutcome run_pass(timing::TimingEngine& eng,
                               const WarmStart* warm) = 0;

 protected:
  const Problem& problem_;
  const SchedulerOptions& options_;
};

/// Resolves `options.backend` to a concrete backend kind (never kAuto).
/// Deterministic: a pure function of the problem shape and options, so
/// repeated calls — and re-runs of the same configuration — always pick
/// the same backend. The kAuto rule consults the fitted cost model
/// (core/cost_model.hpp): list unless the problem is a pipelined
/// recurrence whose predicted SDC per-pass cost stays within the fitted
/// affordability bound of list's. Coefficients are fitted offline by
/// bench/fit_cost_model.py from BENCH_scheduler.json /
/// BENCH_explore.json; `options.legacy_auto_rule` restores the old
/// fixed 4096-op-cap heuristic for A/B (docs/SCHEDULER.md).
BackendKind resolve_backend(const Problem& problem,
                            const SchedulerOptions& options);

/// Constructs the backend selected by `options.backend` (kAuto resolved
/// via resolve_backend). The Problem and options must outlive the
/// returned backend.
std::unique_ptr<SchedulerBackend> make_backend(const Problem& problem,
                                               const SchedulerOptions& options);

/// Pure II-feasibility probe (no binding, no timing queries): propagates
/// the release bounds through the difference-constraint system at
/// candidate `ii` — dependences, port write order, and the star-encoded
/// II windows — and reports false when any op's start bound saturates at
/// `max_states` (equivalently: the system has a positive cycle at this
/// II, or a bound exceeds every state count the expert could ever reach).
/// Sound: a probe-infeasible II can never be scheduled by a full solve,
/// on either backend, because every constraint here is one the solve must
/// also satisfy and resources/timing only tighten it further. Monotone in
/// `ii` (larger II weakens every window edge), which is what makes
/// min_feasible_ii a binary search. Implemented in sdc_scheduler.cpp next
/// to the constraint-edge builder it shares with the SDC backend.
bool ii_probe_feasible(const Problem& problem, const DependenceGraph& dg,
                       int ii, int max_states);

/// Smallest probe-feasible II in [lo, hi] (binary search over the
/// monotone probe; per-candidate max_states is
/// max(latency_max, candidate + 1), mirroring the driver's pipelined
/// latency bound). Returns -1 when even `hi` is infeasible. Also enforces
/// the recurrence bound: candidates below any SCC's scc_min_states are
/// infeasible by definition.
int min_feasible_ii(const Problem& problem, const DependenceGraph& dg,
                    int lo, int hi, int latency_max);

}  // namespace hls::sched
