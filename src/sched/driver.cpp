#include "sched/driver.hpp"

#include <algorithm>

#include "sched/backend.hpp"
#include "support/strings.hpp"
#include "tech/library.hpp"

namespace hls::sched {

int SchedulerResult::relaxations() const {
  int n = 0;
  for (const PassRecord& r : history) n += r.relaxed ? 1 : 0;
  return n;
}

SchedulerResult schedule_region(const ir::Dfg& dfg,
                                const ir::LinearRegion& region,
                                ir::LatencyBound latency,
                                std::size_t num_ports,
                                const SchedulerOptions& options) {
  const tech::Library& lib =
      options.lib != nullptr ? *options.lib : tech::artisan90();
  timing::TimingEngine eng(lib, options.tclk_ps, options.shared_delays);

  Problem p = build_problem(dfg, region, latency, lib, options.tclk_ps,
                            options.pipeline, num_ports, options.anchor_io,
                            options.use_mutual_exclusivity);
  p.enable_chaining = options.enable_chaining;
  p.avoid_comb_cycles = options.avoid_comb_cycles;
  p.exclusive_colocation = options.use_mutual_exclusivity;

  // The result reports the *resolved* backend: a kAuto request resolves
  // deterministically per problem (resolve_backend) and every consumer —
  // render_report, render_json, ExplorePoint — sees what actually ran.
  const BackendKind resolved = resolve_backend(p, options);

  // Recurrence bound: an SCC whose optimistic chain needs more states than
  // II can never satisfy the window constraint, no matter where the window
  // sits (the designer must raise II; the paper leaves II to the designer).
  if (options.pipeline.enabled) {
    for (std::size_t i = 0; i < p.sccs.size(); ++i) {
      const int needed = scc_min_states(p, p.sccs[i]);
      if (needed > options.pipeline.ii) {
        SchedulerResult result;
        result.backend = resolved;
        result.failure_reason = strf(
            "recurrence infeasible: an inter-iteration dependency cycle "
            "(SCC #", i, ", ", p.sccs[i].size(), " ops) needs at least ",
            needed, " states, more than II=", options.pipeline.ii,
            "; increase the initiation interval or the clock period");
        return result;
      }
    }
  }

  ExpertOptions eopts;
  eopts.latency = latency;
  if (options.pipeline.enabled) {
    // LI may grow beyond the sequential bound as long as the designer's
    // maximum allows; the minimum is II+1 (paper Section V, condition 2).
    eopts.latency.min = std::max(latency.min, options.pipeline.ii + 1);
    eopts.latency.max = std::max(latency.max, eopts.latency.min);
  }
  eopts.enable_move_scc = options.enable_move_scc;
  eopts.allow_accept_slack = options.allow_accept_slack;

  std::unique_ptr<SchedulerBackend> backend = make_backend(p, options);
  const bool warm_startable = options.warm_start && backend->warm_startable();

  SchedulerResult result;
  result.backend = backend->kind();
  // Warm-start state: the previous pass's decision trace plus the first
  // step the applied relaxation could have changed. A zero frontier (or an
  // invalidated trace) means a cold pass.
  PassTrace trace;
  bool trace_valid = false;
  int frontier = 0;
  for (int pass = 1; pass <= options.max_passes; ++pass) {
    bool fast_forwarded = false;
    // Fast-forward wide latency shortfalls: when the life spans prove the
    // region cannot fit by a large margin, add the missing states at once.
    // Near-feasible cases still go through the per-pass expert walk, so
    // small designs keep the paper's restraint-by-restraint narrative.
    if (!p.spans.feasible) {
      int shortage = 0;
      for (ir::OpId id : p.ops) {
        if (p.spans.spans[id].in_region) {
          shortage = std::max(shortage, p.spans.spans[id].asap -
                                            p.spans.spans[id].alap);
        }
      }
      if (shortage > 3 && p.num_steps + shortage - 2 <= eopts.latency.max) {
        PassRecord rec;
        rec.pass_number = pass;
        rec.num_steps = p.num_steps;
        rec.success = false;
        rec.action = strf("fast-forward: +", shortage - 2,
                          " states (life spans infeasible)");
        rec.relaxed = true;
        result.history.push_back(std::move(rec));
        p.num_steps += shortage - 2;
        refresh_spans(p);
        fast_forwarded = true;
      }
    }
    // Restraint-volume cap: a pass that provably cannot bind `overflow`
    // ops would emit (at least) that many per-op restraints, render them
    // all into the pass record, and have the expert rank them — only for
    // the relaxation to be "add many states" anyway. Emit the aggregate
    // add-state action directly instead, in the same driver iteration as
    // a life-span fast-forward so the hopeless pass is never run at all.
    // Pipelined regions are exempt (states do not add slots there; the
    // expert's add-resource reasoning is the right lever), as are
    // problems below the cap, which keep the per-restraint narrative.
    if (options.restraint_volume_cap > 0 && !p.pipeline.enabled &&
        p.num_steps < eopts.latency.max) {
      const int overflow = provable_resource_overflow(p);
      if (overflow >= options.restraint_volume_cap) {
        const int target =
            std::min(states_for_resources(p), eopts.latency.max);
        if (target > p.num_steps) {
          PassRecord rec;
          rec.pass_number = pass;
          rec.num_steps = p.num_steps;
          rec.success = false;
          rec.action = strf("fast-forward: +", target - p.num_steps,
                            " states (", overflow,
                            " ops over resource capacity)");
          rec.relaxed = true;
          result.history.push_back(std::move(rec));
          p.num_steps = target;
          refresh_spans(p);
          fast_forwarded = true;
        }
      }
    }
    if (fast_forwarded) {
      result.passes = pass;
      trace_valid = false;  // spans moved: no decision survives
      continue;
    }
    const WarmStart warm{&trace, frontier};
    const bool use_warm = warm_startable && trace_valid && frontier > 0;
    PassOutcome outcome = backend->run_pass(eng, use_warm ? &warm : nullptr);
    PassRecord rec;
    rec.pass_number = pass;
    rec.num_steps = p.num_steps;
    rec.success = outcome.success;
    for (const Restraint& r : outcome.restraints) {
      rec.restraints.push_back(r.to_string(dfg));
    }
    result.passes = pass;

    if (outcome.success) {
      result.history.push_back(std::move(rec));
      result.success = true;
      result.schedule = std::move(outcome.schedule);
      result.timing_queries = eng.queries();
      check_schedule(p, result.schedule);
      return result;
    }

    const ExpertDecision decision = choose_action(p, outcome, eopts, eng);
    if (!decision.has_action) {
      rec.action = decision.narration;
      result.history.push_back(std::move(rec));
      result.failure_reason = strf(
          "no applicable relaxation after pass ", pass, " at ", p.num_steps,
          " states (latency bound [", eopts.latency.min, ",",
          eopts.latency.max, "])");
      result.timing_queries = eng.queries();
      return result;
    }
    rec.action = decision.action.to_string(p);
    rec.relaxed = true;
    result.history.push_back(std::move(rec));
    apply_action(p, decision.action);
    if (warm_startable) {
      frontier = warm_start_frontier(p, decision.action, outcome.trace);
      trace = std::move(outcome.trace);
      trace_valid = true;
    }
  }
  result.failure_reason =
      strf("pass budget (", options.max_passes, ") exhausted");
  result.timing_queries = eng.queries();
  return result;
}

}  // namespace hls::sched
