#include "sched/driver.hpp"

#include <algorithm>
#include <utility>

#include "sched/backend.hpp"
#include "support/strings.hpp"
#include "tech/library.hpp"

namespace hls::sched {

int SchedulerResult::relaxations() const {
  int n = 0;
  for (const PassRecord& r : history) n += r.relaxed ? 1 : 0;
  return n;
}

const char* seed_use_name(SeedUse use) {
  switch (use) {
    case SeedUse::kNone: return "none";
    case SeedUse::kReplay: return "replay";
    case SeedUse::kSeeded: return "seeded";
    case SeedUse::kMiss: return "miss";
  }
  return "?";
}

namespace {

/// Whether two recorded actions are the same relaxation. Compares the
/// semantic fields only — gain/cost are expert ranking scores that depend
/// on the clock period and are irrelevant to what the action does.
bool same_action(const Action& a, const Action& b) {
  return a.kind == b.kind && a.pool == b.pool && a.amount == b.amount &&
         a.op == b.op && a.instance == b.instance && a.scc == b.scc &&
         a.window_start == b.window_start && a.port == b.port;
}

/// Applies one recorded seed action to the problem, translated to the
/// target configuration. Returns false (without mutating) when the action
/// cannot be transferred cleanly — the caller then abandons the seed.
bool apply_seed_action(Problem& p, const Action& a, const ExpertOptions& eopts) {
  switch (a.kind) {
    case ActionKind::kAddState: {
      const int amount = std::max(1, a.amount);
      if (p.num_steps + amount > eopts.latency.max) return false;
      break;
    }
    case ActionKind::kAddResource:
      if (a.pool < 0 ||
          a.pool >= static_cast<int>(p.resources.pools.size())) {
        return false;
      }
      break;
    case ActionKind::kForbidBinding:
      if (a.op == ir::kNoOp || !p.in_region(a.op) || a.pool < 0 ||
          a.pool >= static_cast<int>(p.resources.pools.size())) {
        return false;
      }
      break;
    case ActionKind::kMoveScc:
      if (a.scc < 0 || a.scc >= static_cast<int>(p.sccs.size()) ||
          !p.pipeline.enabled ||
          a.window_start + p.pipeline.ii - 1 > p.num_steps - 1) {
        return false;
      }
      break;
    case ActionKind::kAcceptSlack:
      break;
    case ActionKind::kAddMemPort: {
      if (a.pool < 0 || a.pool >= static_cast<int>(p.resources.pools.size())) {
        return false;
      }
      const auto& pool = p.resources.pools[static_cast<std::size_t>(a.pool)];
      if (!pool.is_memory || p.memory == nullptr) return false;
      const mem::ArraySpec& spec =
          p.memory->arrays[static_cast<std::size_t>(pool.mem_array)];
      if (pool.ports_per_bank() + std::max(1, a.amount) >
          spec.max_ports_per_bank) {
        return false;
      }
      break;
    }
    case ActionKind::kRebank: {
      if (a.pool < 0 || a.pool >= static_cast<int>(p.resources.pools.size())) {
        return false;
      }
      const auto& pool = p.resources.pools[static_cast<std::size_t>(a.pool)];
      if (!pool.is_memory || p.memory == nullptr) return false;
      const mem::ArraySpec& spec =
          p.memory->arrays[static_cast<std::size_t>(pool.mem_array)];
      if (pool.banks * 2 > spec.max_banks) return false;
      break;
    }
    case ActionKind::kWidenWindow: {
      if (a.port < 0 || p.memory == nullptr) return false;
      const mem::WindowSpec* w = nullptr;
      for (const mem::WindowSpec& ws : p.memory->windows) {
        if (ws.port == a.port) w = &ws;
      }
      if (w == nullptr || w->max_step_limit < 0 ||
          a.window_start > w->max_step_limit) {
        return false;
      }
      break;
    }
  }
  apply_action(p, a);
  return true;
}

/// The iterative pass/relaxation loop over an already-built problem.
///
/// `initial_trace`/`initial_frontier` warm-start the FIRST pass — the
/// exact-config replay path; later passes warm-start from their own
/// predecessors as before. `single_pass` returns after the first attempt,
/// successful or not (the exact-replay contract: win in one pass or let
/// the caller restart cold).
///
/// `ladder` is the neighbor-seeding protocol (docs/SCHEDULER.md). The
/// loop runs the COLD ladder unchanged — every pass, expert decision,
/// and relaxation is exactly what an unseeded run performs, so a
/// neighbor seed can NEVER change the result — while comparing each
/// relaxation against the donor's recorded recipe. A solve whose ladder
/// matched the donor's recipe end to end reports SeedUse::kSeeded (the
/// donor predicted this solve: the next submission of this exact
/// configuration will replay in one pass); any divergence reports kMiss.
///
/// Skipping ladder passes outright would be unsound here: each expert
/// decision is a function of the previous pass's restraint set, which
/// depends on the clock period, so a donor recipe from a neighboring
/// tclk can over- or under-relax relative to this configuration's cold
/// ladder and land on a different (valid but non-canonical) schedule.
/// Only the exact-configuration path (schedule_region) skips passes,
/// where the warm ≡ cold replay guarantee makes it bit-exact.
SchedulerResult run_relaxation_loop(
    Problem& p, const ir::Dfg& dfg, timing::TimingEngine& eng,
    SchedulerBackend& backend, const SchedulerOptions& options,
    const ExpertOptions& eopts, const PassTrace* initial_trace,
    int initial_frontier, bool single_pass, const ScheduleSeed* ladder,
    std::vector<PassRecord> history, std::vector<Action>* applied_out,
    support::Budget& budget) {
  const bool warm_startable = options.warm_start && backend.warm_startable();
  // A work-unit pass budget tightens the option cap; exhaustion of either
  // reports the same dedicated code at the loop's end.
  int max_passes = options.max_passes;
  if (options.budget.max_passes > 0 &&
      options.budget.max_passes < max_passes) {
    max_passes = static_cast<int>(options.budget.max_passes);
  }

  SchedulerResult result;
  result.backend = backend.kind();
  result.history = std::move(history);

  // Ladder-following state: how far the cold ladder has tracked the
  // donor's recipe.
  bool following = ladder != nullptr;
  std::size_t ladder_pos = 0;
  // Every action the loop applies flows through here so seed recording
  // and ladder matching cannot drift apart.
  auto note_applied = [&](const Action& a) {
    if (applied_out != nullptr) applied_out->push_back(a);
    if (following) {
      if (ladder_pos < ladder->actions.size() &&
          same_action(a, ladder->actions[ladder_pos])) {
        ++ladder_pos;
      } else {
        following = false;
      }
    }
  };

  auto finish_success = [&](PassOutcome&& outcome, PassRecord&& rec) {
    if (following && ladder_pos == ladder->actions.size() &&
        p.num_steps == ladder->num_steps) {
      result.seed_use = SeedUse::kSeeded;
    }
    result.history.push_back(std::move(rec));
    result.success = true;
    result.schedule = std::move(outcome.schedule);
    result.timing_queries = eng.queries();
    check_schedule(p, result.schedule);
    if (options.record_seed) {
      result.seed_out.tclk_ps = options.tclk_ps;
      result.seed_out.num_steps = p.num_steps;
      result.seed_out.pipelined = p.pipeline.enabled;
      result.seed_out.ii = p.pipeline.enabled ? p.pipeline.ii : 0;
      result.seed_out.backend = backend.kind();
      result.seed_out.final_trace = std::move(outcome.trace);
    }
  };

  // Warm-start state: the previous pass's decision trace plus the first
  // step the applied relaxation could have changed. A zero frontier (or an
  // invalidated trace) means a cold pass.
  PassTrace trace;
  bool trace_valid = false;
  int frontier = 0;
  if (warm_startable && initial_trace != nullptr && initial_frontier > 0) {
    trace = *initial_trace;
    trace_valid = true;
    frontier = initial_frontier;
  }
  // Timing windows pin ALAPs at absolute steps, so a spans-infeasibility
  // under windows is not (only) a latency shortfall — adding states cannot
  // raise a window-clamped deadline, and the fast-forward would burn its
  // state budget without converging. Let the expert walk see the
  // window-miss restraints instead.
  const bool has_windows =
      std::any_of(p.mem_window_max.begin(), p.mem_window_max.end(),
                  [](int w) { return w >= 0; });

  for (int pass = 1; pass <= max_passes; ++pass) {
    // Budgets and cancellation are observed only here, BETWEEN passes: a
    // pass always runs to completion, so exhaustion is a pure function of
    // the work done so far — byte-reproducible at any thread count — and
    // cancellation never leaves a half-mutated problem behind.
    const support::BudgetVerdict verdict = budget.check();
    if (verdict != support::BudgetVerdict::kOk) {
      result.failure_code = support::budget_verdict_code(verdict);
      result.failure_reason = budget.describe(verdict);
      result.timing_queries = eng.queries();
      return result;
    }
    bool fast_forwarded = false;
    // Fast-forward wide latency shortfalls: when the life spans prove the
    // region cannot fit by a large margin, add the missing states at once.
    // Near-feasible cases still go through the per-pass expert walk, so
    // small designs keep the paper's restraint-by-restraint narrative.
    if (!p.spans.feasible && !single_pass && !has_windows) {
      int shortage = 0;
      for (ir::OpId id : p.ops) {
        if (p.spans.spans[id].in_region) {
          shortage = std::max(shortage, p.spans.spans[id].asap -
                                            p.spans.spans[id].alap);
        }
      }
      if (shortage > 3 && p.num_steps + shortage - 2 <= eopts.latency.max) {
        PassRecord rec;
        rec.pass_number = pass;
        rec.num_steps = p.num_steps;
        rec.success = false;
        rec.action = strf("fast-forward: +", shortage - 2,
                          " states (life spans infeasible)");
        rec.relaxed = true;
        result.history.push_back(std::move(rec));
        Action a;
        a.kind = ActionKind::kAddState;
        a.amount = shortage - 2;
        note_applied(a);
        p.num_steps += shortage - 2;
        refresh_spans(p);
        fast_forwarded = true;
      }
    }
    // Restraint-volume cap: a pass that provably cannot bind `overflow`
    // ops would emit (at least) that many per-op restraints, render them
    // all into the pass record, and have the expert rank them — only for
    // the relaxation to be "add many states" anyway. Emit the aggregate
    // add-state action directly instead, in the same driver iteration as
    // a life-span fast-forward so the hopeless pass is never run at all.
    // Pipelined regions are exempt (states do not add slots there; the
    // expert's add-resource reasoning is the right lever), as are
    // problems below the cap, which keep the per-restraint narrative.
    if (options.restraint_volume_cap > 0 && !p.pipeline.enabled &&
        p.num_steps < eopts.latency.max && !single_pass) {
      const int overflow = provable_resource_overflow(p);
      if (overflow >= options.restraint_volume_cap) {
        const int target =
            std::min(states_for_resources(p), eopts.latency.max);
        if (target > p.num_steps) {
          PassRecord rec;
          rec.pass_number = pass;
          rec.num_steps = p.num_steps;
          rec.success = false;
          rec.action = strf("fast-forward: +", target - p.num_steps,
                            " states (", overflow,
                            " ops over resource capacity)");
          rec.relaxed = true;
          result.history.push_back(std::move(rec));
          Action a;
          a.kind = ActionKind::kAddState;
          a.amount = target - p.num_steps;
          note_applied(a);
          p.num_steps = target;
          refresh_spans(p);
          fast_forwarded = true;
        }
      }
    }
    if (fast_forwarded) {
      result.passes = pass;
      trace_valid = false;  // spans moved: no decision survives
      continue;
    }
    const WarmStart warm{&trace, frontier};
    const bool use_warm = warm_startable && trace_valid && frontier > 0;
    PassOutcome outcome = backend.run_pass(eng, use_warm ? &warm : nullptr);
    budget.charge_commits(outcome.commits);
    budget.charge_relax_steps(outcome.relax_steps);
    PassRecord rec;
    rec.pass_number = pass;
    rec.num_steps = p.num_steps;
    rec.success = outcome.success;
    rec.constraint_edges = outcome.constraint_edges;
    rec.propagation_relaxations = outcome.relax_steps;
    for (const Restraint& r : outcome.restraints) {
      rec.restraints.push_back(r.to_string(dfg));
      if (is_memory_restraint(r.kind)) ++result.memory_restraints;
    }
    result.passes = pass;

    if (outcome.success) {
      finish_success(std::move(outcome), std::move(rec));
      return result;
    }
    if (single_pass) {
      result.history.push_back(std::move(rec));
      result.failure_reason = "seeded pass failed";
      result.timing_queries = eng.queries();
      return result;
    }

    const ExpertDecision decision = choose_action(p, outcome, eopts, eng);
    if (!decision.has_action) {
      rec.action = decision.narration;
      result.history.push_back(std::move(rec));
      result.failure_reason = strf(
          "no applicable relaxation after pass ", pass, " at ", p.num_steps,
          " states (latency bound [", eopts.latency.min, ",",
          eopts.latency.max, "])");
      result.timing_queries = eng.queries();
      return result;
    }
    rec.action = decision.action.to_string(p);
    rec.relaxed = true;
    result.history.push_back(std::move(rec));
    apply_action(p, decision.action);
    note_applied(decision.action);
    if (warm_startable) {
      frontier = warm_start_frontier(p, decision.action, outcome.trace);
      trace = std::move(outcome.trace);
      trace_valid = true;
    }
  }
  result.failure_code = "pass_budget_exhausted";
  result.failure_reason = strf("pass budget (", max_passes, ") exhausted");
  result.timing_queries = eng.queries();
  return result;
}

/// One full scheduling run at a FIXED configuration (the entire former
/// schedule_region): problem construction, recurrence bound, seeding,
/// and the relaxation loop. The public schedule_region either forwards
/// here directly or, under options.solve_min_ii, drives this once per
/// candidate II.
SchedulerResult schedule_region_impl(const ir::Dfg& dfg,
                                     const ir::LinearRegion& region,
                                     ir::LatencyBound latency,
                                     std::size_t num_ports,
                                     const SchedulerOptions& options) {
  const tech::Library& lib =
      options.lib != nullptr ? *options.lib : tech::artisan90();
  timing::TimingEngine eng(lib, options.tclk_ps, options.shared_delays);

  Problem p = build_problem(dfg, region, latency, lib, options.tclk_ps,
                            options.pipeline, num_ports, options.anchor_io,
                            options.use_mutual_exclusivity, options.memory);
  p.enable_chaining = options.enable_chaining;
  p.avoid_comb_cycles = options.avoid_comb_cycles;
  p.exclusive_colocation = options.use_mutual_exclusivity;

  // The result reports the *resolved* backend: a kAuto request resolves
  // deterministically per problem (resolve_backend) and every consumer —
  // render_report, render_json, ExplorePoint — sees what actually ran.
  const BackendKind resolved = resolve_backend(p, options);

  // Recurrence bound: an SCC whose optimistic chain needs more states than
  // II can never satisfy the window constraint, no matter where the window
  // sits (the designer must raise II; the paper leaves II to the designer).
  if (options.pipeline.enabled) {
    for (std::size_t i = 0; i < p.sccs.size(); ++i) {
      const int needed = scc_min_states(p, p.sccs[i]);
      if (needed > options.pipeline.ii) {
        SchedulerResult result;
        result.backend = resolved;
        result.failure_reason = strf(
            "recurrence infeasible: an inter-iteration dependency cycle "
            "(SCC #", i, ", ", p.sccs[i].size(), " ops) needs at least ",
            needed, " states, more than II=", options.pipeline.ii,
            "; increase the initiation interval or the clock period");
        return result;
      }
    }
  }

  ExpertOptions eopts;
  eopts.latency = latency;
  if (options.pipeline.enabled) {
    // LI may grow beyond the sequential bound as long as the designer's
    // maximum allows; the minimum is II+1 (paper Section V, condition 2).
    eopts.latency.min = std::max(latency.min, options.pipeline.ii + 1);
    eopts.latency.max = std::max(latency.max, eopts.latency.min);
  }
  eopts.enable_move_scc = options.enable_move_scc;
  eopts.allow_accept_slack = options.allow_accept_slack;

  std::unique_ptr<SchedulerBackend> backend = make_backend(p, options);

  std::vector<Action> applied;
  std::vector<Action>* applied_out =
      options.record_seed ? &applied : nullptr;
  // One budget for the whole run: a failed seed-replay attempt's work
  // counts against the cold restart that follows it.
  support::Budget budget(options.budget, options.stop);
  auto stamp_seed = [&](SchedulerResult& result) {
    if (options.record_seed && result.success) {
      result.seed_out.actions = std::move(applied);
    }
    result.engine_commits = budget.commits();
    result.relax_steps = budget.relax_steps();
  };

  // ---- Cross-run seeding -----------------------------------------------
  // Exact-config seeds replay the donor's final pass wholesale (bit-exact
  // by the warm ≡ cold guarantee: a successful trace has no fatal events,
  // so a full replay re-derives the identical schedule). Neighbor seeds
  // (same module/II/latency, different tclk) go through the
  // ladder-following protocol inside run_relaxation_loop — pass 1 always
  // runs cold, and the jump fires only once the cold ladder agrees with
  // the donor recipe, so a seed changes pass counts but is designed never
  // to change the result (pinned by the serve golden suite).
  const ScheduleSeed* seed = options.seed;
  const bool seed_shape_ok =
      seed != nullptr && options.warm_start && backend->warm_startable() &&
      seed->backend == backend->kind() &&
      seed->pipelined == p.pipeline.enabled &&
      (!p.pipeline.enabled || seed->ii == p.pipeline.ii);

  if (seed_shape_ok && seed->tclk_ps == options.tclk_ps) {
    // Exact configuration: re-apply the recorded recipe up front and
    // replay the donor's final pass in full.
    Problem pristine = p;
    bool transferred = true;
    for (const Action& a : seed->actions) {
      if (!apply_seed_action(p, a, eopts)) {
        transferred = false;
        break;
      }
    }
    transferred = transferred && p.num_steps == seed->num_steps;
    if (transferred) {
      if (applied_out != nullptr) {
        applied_out->assign(seed->actions.begin(), seed->actions.end());
      }
      PassRecord rec;
      rec.pass_number = 0;
      rec.num_steps = p.num_steps;
      rec.success = false;
      rec.action = strf("seed: exact config match, re-applied ",
                        seed->actions.size(),
                        " recorded relaxations; final pass replays");
      rec.relaxed = !seed->actions.empty();
      std::vector<PassRecord> seeded_history;
      seeded_history.push_back(std::move(rec));
      SchedulerResult replayed = run_relaxation_loop(
          p, dfg, eng, *backend, options, eopts, &seed->final_trace,
          p.num_steps, /*single_pass=*/true, nullptr,
          std::move(seeded_history), applied_out, budget);
      if (replayed.success) {
        replayed.seed_use = SeedUse::kReplay;
        stamp_seed(replayed);
        return replayed;
      }
    }
    p = std::move(pristine);
    if (applied_out != nullptr) applied_out->clear();
    // Replay impossible or failed: solve cold from the pristine problem,
    // still offering the recipe to the ladder protocol (the donor state
    // may schedule even when the decision trace no longer transfers).
    std::vector<PassRecord> miss_history;
    PassRecord miss;
    miss.pass_number = 0;
    miss.num_steps = p.num_steps;
    miss.success = false;
    miss.action = "seed: exact replay unavailable, solving cold";
    miss_history.push_back(std::move(miss));
    SchedulerResult cold = run_relaxation_loop(
        p, dfg, eng, *backend, options, eopts, nullptr, 0,
        /*single_pass=*/false, seed, std::move(miss_history), applied_out,
        budget);
    if (cold.seed_use == SeedUse::kNone) cold.seed_use = SeedUse::kMiss;
    stamp_seed(cold);
    return cold;
  }

  SchedulerResult result = run_relaxation_loop(
      p, dfg, eng, *backend, options, eopts, nullptr, 0,
      /*single_pass=*/false, seed_shape_ok ? seed : nullptr, {},
      applied_out, budget);
  if (seed != nullptr && result.seed_use == SeedUse::kNone) {
    result.seed_use = SeedUse::kMiss;
  }
  stamp_seed(result);
  return result;
}

}  // namespace

SchedulerResult schedule_region(const ir::Dfg& dfg,
                                const ir::LinearRegion& region,
                                ir::LatencyBound latency,
                                std::size_t num_ports,
                                const SchedulerOptions& options) {
  if (!options.solve_min_ii || !options.pipeline.enabled) {
    return schedule_region_impl(dfg, region, latency, num_ports, options);
  }

  // ---- Minimum-II solving ----------------------------------------------
  // Phase 1 (pure probe, no binding): binary-search the smallest II whose
  // star-encoded difference-constraint system has a fixpoint within the
  // reachable state counts (ii_probe_feasible is sound and monotone in
  // II, backend.hpp). Phase 2: run full fixed-II solves upward from that
  // candidate until one schedules — the probe is necessary, not
  // sufficient (resources and timing can refuse a probe-feasible II), and
  // the first candidate that fully schedules is by construction the
  // minimum: every smaller II is either probe-infeasible or was attempted
  // and failed. This matches an exhaustive II sweep's answer while
  // skipping the sweep's infeasible prefix without running a single pass
  // on it. Each candidate attempt gets the full option budget; the
  // returned engine_commits/relax_steps accumulate the whole escalation.
  const tech::Library& lib =
      options.lib != nullptr ? *options.lib : tech::artisan90();
  const int floor_ii = std::max(1, options.pipeline.ii);
  SchedulerOptions probe_opts = options;
  probe_opts.pipeline = {true, floor_ii};
  Problem probe_p =
      build_problem(dfg, region, latency, lib, options.tclk_ps,
                    probe_opts.pipeline, num_ports, options.anchor_io,
                    options.use_mutual_exclusivity, options.memory);
  const DependenceGraph probe_dg = build_dependence_graph(probe_p);
  const int hi = std::max(floor_ii, latency.max);
  const int start = min_feasible_ii(probe_p, probe_dg, floor_ii, hi,
                                    latency.max);

  auto min_ii_record = [&](const std::string& text) {
    PassRecord rec;
    rec.pass_number = 0;
    rec.action = text;
    return rec;
  };
  auto no_feasible = [&](const std::string& detail) {
    SchedulerResult r;
    r.backend = resolve_backend(probe_p, probe_opts);
    r.failure_code = "no_feasible_ii";
    r.failure_reason = strf("no feasible initiation interval in [", floor_ii,
                            ",", hi, "]: ", detail);
    r.history.push_back(min_ii_record(r.failure_reason));
    return r;
  };
  if (start < 0) {
    return no_feasible(
        "the difference-constraint system has no fixpoint within the "
        "latency bound at any candidate II");
  }

  std::uint64_t commits = 0;
  std::uint64_t relax = 0;
  int attempts = 0;
  for (int ii = start; ii <= hi; ++ii) {
    // Re-probe each candidate (one Bellman-Ford, no binding) before
    // paying for a full relaxation ladder. With the probe monotone in II
    // this never fires after `start`, but it keeps the escalation sound
    // under any future constraint family whose probe is not.
    if (ii > start &&
        !ii_probe_feasible(probe_p, probe_dg, ii,
                           std::max(latency.max, ii + 1))) {
      continue;
    }
    SchedulerOptions o2 = options;
    o2.solve_min_ii = false;
    o2.pipeline = {true, ii};
    ++attempts;
    SchedulerResult r =
        schedule_region_impl(dfg, region, latency, num_ports, o2);
    commits += r.engine_commits;
    relax += r.relax_steps;
    const bool out_of_budget =
        r.failure_code == "budget_exhausted" || r.failure_code == "cancelled" ||
        r.failure_code == "deadline_exceeded";
    if (r.success || out_of_budget) {
      r.engine_commits = commits;
      r.relax_steps = relax;
      if (r.success) {
        r.min_ii = ii;
        r.history.insert(
            r.history.begin(),
            min_ii_record(strf("min-II solve: probe-feasible from II=", start,
                               ", solved at II=", ii, " (", attempts,
                               " candidate attempt", attempts == 1 ? "" : "s",
                               ")")));
      }
      return r;
    }
  }
  SchedulerResult r = no_feasible(
      strf("all ", attempts, " probe-feasible candidate(s) from II=", start,
           " failed to schedule"));
  r.engine_commits = commits;
  r.relax_steps = relax;
  return r;
}

}  // namespace hls::sched
