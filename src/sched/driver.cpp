#include "sched/driver.hpp"

#include <algorithm>

#include "support/strings.hpp"
#include "tech/library.hpp"

namespace hls::sched {

int SchedulerResult::relaxations() const {
  int n = 0;
  for (const PassRecord& r : history) n += r.relaxed ? 1 : 0;
  return n;
}

SchedulerResult schedule_region(const ir::Dfg& dfg,
                                const ir::LinearRegion& region,
                                ir::LatencyBound latency,
                                std::size_t num_ports,
                                const SchedulerOptions& options) {
  const tech::Library& lib =
      options.lib != nullptr ? *options.lib : tech::artisan90();
  timing::TimingEngine eng(lib, options.tclk_ps);

  Problem p = build_problem(dfg, region, latency, lib, options.tclk_ps,
                            options.pipeline, num_ports, options.anchor_io,
                            options.use_mutual_exclusivity);
  p.enable_chaining = options.enable_chaining;
  p.avoid_comb_cycles = options.avoid_comb_cycles;
  p.exclusive_colocation = options.use_mutual_exclusivity;

  // Recurrence bound: an SCC whose optimistic chain needs more states than
  // II can never satisfy the window constraint, no matter where the window
  // sits (the designer must raise II; the paper leaves II to the designer).
  if (options.pipeline.enabled) {
    for (std::size_t i = 0; i < p.sccs.size(); ++i) {
      const int needed = scc_min_states(p, p.sccs[i]);
      if (needed > options.pipeline.ii) {
        SchedulerResult result;
        result.failure_reason = strf(
            "recurrence infeasible: an inter-iteration dependency cycle "
            "(SCC #", i, ", ", p.sccs[i].size(), " ops) needs at least ",
            needed, " states, more than II=", options.pipeline.ii,
            "; increase the initiation interval or the clock period");
        return result;
      }
    }
  }

  ExpertOptions eopts;
  eopts.latency = latency;
  if (options.pipeline.enabled) {
    // LI may grow beyond the sequential bound as long as the designer's
    // maximum allows; the minimum is II+1 (paper Section V, condition 2).
    eopts.latency.min = std::max(latency.min, options.pipeline.ii + 1);
    eopts.latency.max = std::max(latency.max, eopts.latency.min);
  }
  eopts.enable_move_scc = options.enable_move_scc;
  eopts.allow_accept_slack = options.allow_accept_slack;

  SchedulerResult result;
  // Warm-start state: the previous pass's decision trace plus the first
  // step the applied relaxation could have changed. A zero frontier (or an
  // invalidated trace) means a cold pass.
  PassTrace trace;
  bool trace_valid = false;
  int frontier = 0;
  for (int pass = 1; pass <= options.max_passes; ++pass) {
    // Fast-forward wide latency shortfalls: when the life spans prove the
    // region cannot fit by a large margin, add the missing states at once.
    // Near-feasible cases still go through the per-pass expert walk, so
    // small designs keep the paper's restraint-by-restraint narrative.
    if (!p.spans.feasible) {
      int shortage = 0;
      for (ir::OpId id : p.ops) {
        if (p.spans.spans[id].in_region) {
          shortage = std::max(shortage, p.spans.spans[id].asap -
                                            p.spans.spans[id].alap);
        }
      }
      if (shortage > 3 && p.num_steps + shortage - 2 <= eopts.latency.max) {
        PassRecord rec;
        rec.pass_number = pass;
        rec.num_steps = p.num_steps;
        rec.success = false;
        rec.action = strf("fast-forward: +", shortage - 2,
                          " states (life spans infeasible)");
        rec.relaxed = true;
        result.history.push_back(std::move(rec));
        p.num_steps += shortage - 2;
        refresh_spans(p);
        result.passes = pass;
        trace_valid = false;  // spans moved: no decision survives
        continue;
      }
    }
    const WarmStart warm{&trace, frontier};
    const bool use_warm = options.warm_start && trace_valid && frontier > 0;
    PassOutcome outcome = run_pass(p, eng, use_warm ? &warm : nullptr);
    PassRecord rec;
    rec.pass_number = pass;
    rec.num_steps = p.num_steps;
    rec.success = outcome.success;
    for (const Restraint& r : outcome.restraints) {
      rec.restraints.push_back(r.to_string(dfg));
    }
    result.passes = pass;

    if (outcome.success) {
      result.history.push_back(std::move(rec));
      result.success = true;
      result.schedule = std::move(outcome.schedule);
      result.timing_queries = eng.queries();
      check_schedule(p, result.schedule);
      return result;
    }

    const ExpertDecision decision = choose_action(p, outcome, eopts, eng);
    if (!decision.has_action) {
      rec.action = decision.narration;
      result.history.push_back(std::move(rec));
      result.failure_reason = strf(
          "no applicable relaxation after pass ", pass, " at ", p.num_steps,
          " states (latency bound [", eopts.latency.min, ",",
          eopts.latency.max, "])");
      result.timing_queries = eng.queries();
      return result;
    }
    rec.action = decision.action.to_string(p);
    rec.relaxed = true;
    result.history.push_back(std::move(rec));
    apply_action(p, decision.action);
    if (options.warm_start) {
      frontier = warm_start_frontier(p, decision.action, outcome.trace);
      trace = std::move(outcome.trace);
      trace_valid = true;
    }
  }
  result.failure_reason =
      strf("pass budget (", options.max_passes, ") exhausted");
  result.timing_queries = eng.queries();
  return result;
}

}  // namespace hls::sched
