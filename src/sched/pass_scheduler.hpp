// A single scheduling pass (paper Figure 7): timing-driven list scheduling
// that binds each operation simultaneously to a control step and a
// resource instance, with chaining, multi-cycle units, combinational-cycle
// avoidance, predicate-exclusive sharing, and — for pipelined regions —
// equivalent-edge resource exclusion and SCC window constraints.
#pragma once

#include "sched/problem.hpp"
#include "sched/restraint.hpp"
#include "timing/engine.hpp"

namespace hls::sched {

struct PassOutcome {
  bool success = false;
  Schedule schedule;  ///< complete on success; partial placement on failure
  std::vector<Restraint> restraints;
  std::vector<ir::OpId> failed_ops;
};

/// Runs one pass over the problem. Does not mutate the problem; the expert
/// system applies relaxations between passes.
PassOutcome run_pass(const Problem& p, timing::TimingEngine& eng);

/// Recomputes all arrival times with the final sharing-mux sizes (commits
/// during the pass use the mux size seen at bind time; later ops can grow
/// a mux from 2 to 3+ inputs). Stores per-op arrivals and the worst slack
/// in the schedule; returns the worst slack.
double finalize_timing(const Problem& p, Schedule& s,
                       timing::TimingEngine& eng,
                       ir::OpId* worst_op_out = nullptr);

/// Asserts every schedule invariant (dependences, occupancy incl.
/// pipeline-equivalent steps, SCC windows, port write order, timing).
/// Throws InternalError with a description on the first violation.
void check_schedule(const Problem& p, const Schedule& s);

}  // namespace hls::sched
