// A single scheduling pass (paper Figure 7): timing-driven list scheduling
// that binds each operation simultaneously to a control step and a
// resource instance, with chaining, multi-cycle units, combinational-cycle
// avoidance, predicate-exclusive sharing, and — for pipelined regions —
// equivalent-edge resource exclusion and SCC window constraints.
#pragma once

#include "sched/problem.hpp"
#include "sched/restraint.hpp"
#include "timing/engine.hpp"

namespace hls::sched {

/// One decision the pass took, in decision order. The trace makes warm
/// starts possible: after a relaxation, the next pass replays the prefix
/// of decisions the action provably cannot have changed and only re-runs
/// the binding loops from the invalidation frontier on.
struct PassEvent {
  enum class Kind : std::uint8_t {
    kCommit,      ///< op bound (pool/instance/arrival recorded)
    kDefer,       ///< try_bind failed before the deadline; op retried later
    kFatalBind,   ///< try_bind failed at the deadline (restraints recorded)
    kFatalSweep,  ///< dependences never became ready by the deadline
    kFatalFinal,  ///< left unscheduled after the last state (re-derived,
                  ///< never replayed)
  };
  Kind kind = Kind::kCommit;
  ir::OpId op = ir::kNoOp;
  int step = -1;  ///< decision step (start step for commits)
  int pool = -1;
  int instance = -1;
  int lat = 0;
  double arrival_ps = 0;
  /// kFatal*: the restraints this failure pushed, replayed verbatim.
  std::vector<Restraint> restraints;
};

struct PassTrace {
  std::vector<PassEvent> events;
};

/// Warm-start request: replay `trace` events at steps < `frontier_step`,
/// then schedule normally from the frontier. The caller guarantees (via
/// warm_start_frontier) that the applied relaxation cannot change any
/// decision before the frontier.
struct WarmStart {
  const PassTrace* trace = nullptr;
  int frontier_step = 0;
};

struct PassOutcome {
  bool success = false;
  Schedule schedule;  ///< complete on success; partial placement on failure
  std::vector<Restraint> restraints;
  std::vector<ir::OpId> failed_ops;
  PassTrace trace;  ///< decision log for the next pass's warm start
};

/// Runs one pass over the problem. Does not mutate the problem; the expert
/// system applies relaxations between passes. With `warm`, the prior
/// pass's decisions before the frontier are replayed instead of re-solved;
/// the outcome is bit-identical to a cold pass.
PassOutcome run_pass(const Problem& p, timing::TimingEngine& eng,
                     const WarmStart* warm = nullptr);

/// Recomputes all arrival times with the final sharing-mux sizes (commits
/// during the pass use the mux size seen at bind time; later ops can grow
/// a mux from 2 to 3+ inputs). Stores per-op arrivals and the worst slack
/// in the schedule; returns the worst slack.
double finalize_timing(const Problem& p, Schedule& s,
                       timing::TimingEngine& eng,
                       ir::OpId* worst_op_out = nullptr);

/// Asserts every schedule invariant (dependences, occupancy incl.
/// pipeline-equivalent steps, SCC windows, port write order, timing).
/// Throws InternalError with a description on the first violation.
void check_schedule(const Problem& p, const Schedule& s);

}  // namespace hls::sched
