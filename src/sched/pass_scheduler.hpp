// A single scheduling pass (paper Figure 7): timing-driven list scheduling
// that binds each operation simultaneously to a control step and a
// resource instance, with chaining, multi-cycle units, combinational-cycle
// avoidance, predicate-exclusive sharing, and — for pipelined regions —
// equivalent-edge resource exclusion and SCC window constraints.
//
// The binding/legalization machinery itself (occupancy, forbidden table,
// timing verdicts, commit/release, restraint aggregation) lives in the
// shared sched::BindingEngine (binder.hpp); this pass contributes the
// solver core: incremental ready-list serving in priority order with a
// once-per-op missed-deadline sweep, plus warm-start trace replay.
#pragma once

#include "sched/binder.hpp"
#include "timing/engine.hpp"

namespace hls::sched {

/// Runs one pass over the problem. Does not mutate the problem; the expert
/// system applies relaxations between passes. `dg` must be the problem's
/// dependence graph (build_dependence_graph), typically cached by the
/// backend across passes. With `warm`, the prior pass's decisions before
/// the frontier are replayed instead of re-solved; the outcome is
/// bit-identical to a cold pass.
PassOutcome run_pass(const Problem& p, const DependenceGraph& dg,
                     timing::TimingEngine& eng,
                     const WarmStart* warm = nullptr);

}  // namespace hls::sched
