// Schedule representation: the simultaneous binding of every operation to
// a control step AND a resource instance (paper Section IV), plus
// Table 2-style rendering.
#pragma once

#include <string>
#include <vector>

#include "alloc/cluster.hpp"
#include "ir/region.hpp"

namespace hls::sched {

/// Pipelining configuration for the scheduled region (paper Section V:
/// the designer fixes II; LI is chosen by the tool within bounds).
struct PipelineConfig {
  bool enabled = false;
  int ii = 1;
};

struct OpPlacement {
  bool scheduled = false;
  /// Step at which the op's result becomes available. For multi-cycle
  /// units this is start step + latency (a registered result).
  int step = -1;
  int pool = -1;      ///< resource pool index; -1 = no function unit
  int instance = -1;  ///< instance within the pool
  /// Output arrival within the step, ps (post output-sharing-mux).
  double arrival_ps = 0;
};

struct Schedule {
  int num_steps = 0;
  PipelineConfig pipeline;
  alloc::ResourceSet resources;
  std::vector<OpPlacement> placement;  ///< indexed by OpId
  /// Worst register-setup slack across the schedule after final timing
  /// (negative when the expert accepted a violation; see synth recovery).
  double worst_slack_ps = 0;

  int stages() const {
    return pipeline.enabled ? (num_steps + pipeline.ii - 1) / pipeline.ii : 1;
  }
  /// Kernel step of a step under folding (identity when not pipelined).
  int kernel_step(int step) const {
    return pipeline.enabled ? step % pipeline.ii : step;
  }
  /// Scheduled ops per step.
  std::vector<std::vector<ir::OpId>> ops_by_step() const;

  /// Renders the paper's Table 2 format: one row per state, one column per
  /// resource pool, cells listing the ops bound there.
  std::string to_table(const ir::Dfg& dfg) const;
};

}  // namespace hls::sched
