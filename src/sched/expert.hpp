// The expert system that relaxes constraints between scheduling passes
// (paper Section IV): "Each restraint suggests a set of actions ... Every
// action has an estimated cost, which is combined with the number of
// restraints solved by this action and the restraint weight. The action
// with the best estimated gain wins."
//
// Actions: add a state (where the latency bound permits), add a resource
// instance, forbid a binding (combinational cycles), move a whole SCC to a
// later pipeline window (Section V's novel relaxation), or — as a last
// resort — accept negative slack and let downstream logic synthesis
// recover it with area (the mechanism ablated in Table 4).
#pragma once

#include <string>

#include "sched/pass_scheduler.hpp"

namespace hls::sched {

enum class ActionKind : std::uint8_t {
  kAddState,
  kAddResource,
  kForbidBinding,
  kMoveScc,
  kAcceptSlack,
  // Memory constraint family (mem::MemorySpec; see docs/MEMORY.md):
  kAddMemPort,   ///< +amount RW ports per bank (≤ max_ports_per_bank)
  kRebank,       ///< double the array's banks (≤ max_banks), re-place ops
  kWidenWindow,  ///< raise a port's window max step (≤ max_step_limit)
};

const char* action_kind_name(ActionKind k);

struct Action {
  ActionKind kind = ActionKind::kAddState;
  int pool = -1;         ///< kAddResource / kAddMemPort / kRebank
  int amount = 1;        ///< kAddResource: instances to add (can unshare)
  ir::OpId op = ir::kNoOp;  ///< kForbidBinding
  int instance = -1;     ///< kForbidBinding
  int scc = -1;          ///< kMoveScc
  int window_start = -1; ///< kMoveScc: new first step of the window;
                         ///< kWidenWindow: new max step of the port window
  int port = -1;         ///< kWidenWindow: the windowed module port
  double gain = 0;
  double cost = 1;

  double score() const { return gain / cost; }
  std::string to_string(const Problem& p) const;
};

struct ExpertOptions {
  ir::LatencyBound latency{1, 64};
  /// The Section V relaxation; disabled for the Table 4 ablation.
  bool enable_move_scc = true;
  /// Whether accepting negative slack is permitted at all.
  bool allow_accept_slack = true;
};

struct ExpertDecision {
  bool has_action = false;
  Action action;
  std::string narration;  ///< human-readable reasoning trace
};

/// Analyses the failed pass and picks the best relaxation.
ExpertDecision choose_action(const Problem& p, const PassOutcome& outcome,
                             const ExpertOptions& opts,
                             timing::TimingEngine& eng);

/// Mutates the problem according to the action (adds the state/resource,
/// records the forbid, moves the window, or sets accept_negative_slack).
void apply_action(Problem& p, const Action& a);

/// Warm-start invalidation frontier for the next pass: the earliest step
/// at which `a` (already applied to `p`) could change any decision of the
/// pass recorded in `trace`. Decisions at strictly earlier steps replay
/// verbatim. 0 means the whole pass must be re-solved (AddState moves
/// every life span; AcceptSlack changes every timing verdict).
///
/// The rules are conservative:
///  * AddResource invalidates from the first failed binding attempt on
///    the grown pool (earlier attempts committed on a first-fit instance
///    the growth cannot displace), or everything when the pool flips from
///    shared to unshared (every bind of the pool retimes);
///  * ForbidBinding invalidates from the first decision involving the op;
///  * MoveScc invalidates from the first decision involving any member,
///    capped by each member's new start deadline (a shrunken deadline can
///    trigger a missed-deadline sweep that did not exist before).
int warm_start_frontier(const Problem& p, const Action& a,
                        const PassTrace& trace);

}  // namespace hls::sched
