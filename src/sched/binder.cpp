#include "sched/binder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::sched {

using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using tech::FuClass;

DependenceGraph build_dependence_graph(const Problem& p) {
  const ir::Dfg& dfg = *p.dfg;
  DependenceGraph dg;
  dg.deps.assign(dfg.size(), {});
  dg.users.assign(dfg.size(), {});
  dg.port_next.assign(dfg.size(), kNoOp);
  dg.base_unmet.assign(dfg.size(), 0);
  for (OpId id : p.ops) {
    const Op& o = dfg.op(id);
    auto& d = dg.deps[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;  // carried
      const OpId x = o.operands[i];
      if (x == kNoOp) continue;
      if (!p.in_region(x)) continue;  // consts / outer values: registered
      d.push_back(x);
    }
    // Speculable ops execute regardless of their predicate (hardware
    // speculation); only no-speculate ops (writes) wait for the enable.
    if (o.pred != kNoOp && o.no_speculate && p.in_region(o.pred)) {
      d.push_back(o.pred);
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  for (OpId id : p.ops) {
    for (OpId d : dg.deps[id]) dg.users[d].push_back(id);
    dg.base_unmet[id] = static_cast<int>(dg.deps[id].size());
  }
  // Port write ordering is an extra pseudo-dependence on the previous
  // write to the same port (availability = its placed step, no chaining
  // exception).
  for (const auto& writes : p.port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      dg.port_next[writes[i - 1]] = writes[i];
      ++dg.base_unmet[writes[i]];
    }
  }
  return dg;
}

BindingEngine::BindingEngine(const Problem& p, const DependenceGraph& dg,
                             timing::TimingEngine& eng, Host& host)
    : p_(&p), dfg_(p.dfg), dg_(&dg), eng_(&eng), host_(&host) {
  placement_.assign(dfg_->size(), OpPlacement{});
  failed_.assign(dfg_->size(), false);
  num_ = p_->resources.numbering();
  num_slots_ = p_->pipeline.enabled ? p_->pipeline.ii : p_->num_steps;
  occ_.assign(static_cast<std::size_t>(num_.total) *
                  static_cast<std::size_t>(num_slots_),
              {});
  inst_ops_.assign(static_cast<std::size_t>(num_.total), 0);
  refusals_.assign(dfg_->size(), {});
  build_forbidden();
}

// ---- Forbidden table --------------------------------------------------------

void BindingEngine::build_forbidden() {
  if (p_->forbidden.empty()) return;
  forbidden_.assign(dfg_->size() * static_cast<std::size_t>(num_.total), 0);
  for (const auto& [op, pool, inst] : p_->forbidden) {
    if (pool < 0 || pool >= static_cast<int>(p_->resources.pools.size()) ||
        inst < 0 ||
        inst >= p_->resources.pools[static_cast<std::size_t>(pool)].count) {
      continue;
    }
    forbidden_[op * static_cast<std::size_t>(num_.total) +
               static_cast<std::size_t>(num_.global(pool, inst))] = 1;
  }
}

bool BindingEngine::is_forbidden(OpId id, int pool, int inst) const {
  if (forbidden_.empty()) return false;
  return forbidden_[id * static_cast<std::size_t>(num_.total) +
                    static_cast<std::size_t>(num_.global(pool, inst))] != 0;
}

// ---- Timing -----------------------------------------------------------------

double BindingEngine::operand_arrival(OpId d, int e) const {
  if (dfg_->is_const(d)) return 0;  // hard-wired constant
  if (!p_->in_region(d)) return p_->lib->reg_clk_to_q_ps();
  const OpPlacement& pl = placement_[d];
  HLS_ASSERT(pl.scheduled, "operand not scheduled");
  if (pl.step == e) return pl.arrival_ps;  // chained (or registered result)
  return p_->lib->reg_clk_to_q_ps();
}

/// All data operands (carried edges excluded) plus, for no-speculate
/// ops, the predicate (its enable must settle before the clock edge).
/// Fills the reusable scratch buffer (one gather per try_bind, not one
/// per candidate instance).
void BindingEngine::gather_arrivals(OpId id, int e) {
  const Op& o = dfg_->op(id);
  arrivals_.clear();
  for (std::size_t i = 0; i < o.operands.size(); ++i) {
    if (o.kind == OpKind::kLoopMux && i == 1) continue;
    if (o.operands[i] == kNoOp) continue;
    arrivals_.push_back(operand_arrival(o.operands[i], e));
  }
  if (o.pred != kNoOp && o.no_speculate && p_->in_region(o.pred)) {
    arrivals_.push_back(operand_arrival(o.pred, e));
  }
}

bool BindingEngine::candidate_timing(int pool, int inst, int lat,
                                     double* arrival, double* slack) {
  const auto& pdesc = p_->resources.pools[static_cast<std::size_t>(pool)];
  if (lat > 0) {
    // Multi-cycle: operands must be registered at execution start.
    for (double a : arrivals_) {
      if (a > p_->lib->reg_clk_to_q_ps() + 1e-9) {
        *slack = -1e18;  // not representable: needs registered inputs
        *arrival = 0;
        return false;
      }
    }
    *arrival = p_->lib->reg_clk_to_q_ps();  // registered result
    const double internal =
        p_->lib->fu_delay_into_cycle_ps(pdesc.cls) + p_->lib->reg_setup_ps();
    *slack = p_->tclk_ps - internal;
    return *slack >= -1e-9;
  }
  const bool shared = pool_shared(pool);
  const int n_ops =
      inst_ops_[static_cast<std::size_t>(num_.global(pool, inst))] + 1;
  pq_.cls = pdesc.cls;
  pq_.width = pdesc.width;
  pq_.in_mux_inputs = shared ? std::max(2, n_ops) : 0;
  pq_.out_mux_inputs = shared ? std::max(2, n_ops) : 0;
  *arrival = eng_->output_arrival_ps(pq_);
  *slack = eng_->register_slack_ps(*arrival);
  return *slack >= -1e-9;
}

// ---- Binding ----------------------------------------------------------------

bool BindingEngine::scc_window_ok(OpId id, int result_step) const {
  if (!p_->pipeline.enabled) return true;
  const int scc = p_->scc_of[id];
  if (scc < 0) return true;
  int lo = result_step;
  int hi = result_step;
  for (OpId member : p_->sccs[static_cast<std::size_t>(scc)]) {
    if (member == id || !placement_[member].scheduled) continue;
    lo = std::min(lo, placement_[member].step);
    hi = std::max(hi, placement_[member].step);
  }
  return hi - lo <= p_->pipeline.ii - 1;
}

bool BindingEngine::instance_free(OpId id, int pool, int inst, int e, int lat,
                                  bool excl_pred_ready) const {
  const int g = num_.global(pool, inst);
  const int span = std::max(1, lat);
  for (int s = e; s < e + span; ++s) {
    if (s >= p_->num_steps) return false;
    const auto& slot_ops =
        occ_[static_cast<std::size_t>(g) * static_cast<std::size_t>(num_slots_) +
             static_cast<std::size_t>(slot_of(s))];
    for (OpId other : slot_ops) {
      if (!(p_->exclusive_colocation && p_->exclusive(id, other))) {
        return false;
      }
      if (!excl_pred_ready) return false;
    }
  }
  return true;
}

bool BindingEngine::creates_comb_cycle(OpId id, int pool, int inst,
                                       int e) const {
  const int me = num_.global(pool, inst);
  for (OpId d : dg_->deps[id]) {
    const OpPlacement& pl = placement_[d];
    if (pl.step != e || pl.pool < 0) continue;  // only chained FU deps
    if (latency_of(d) > 0) continue;            // registered result
    const int from = num_.global(pl.pool, pl.instance);
    if (comb_graph_.would_create_cycle(from, me)) return true;
  }
  return false;
}

bool BindingEngine::memory_instance_ok(OpId id,
                                       const alloc::ResourcePool& pool,
                                       int inst) const {
  const int ppb = pool.ports_per_bank();
  if (inst / ppb != p_->mem_bank(id)) return false;
  const int offset = inst % ppb;
  return dfg_->op(id).kind == OpKind::kWrite ? pool.offset_writes(offset)
                                             : pool.offset_reads(offset);
}

RestraintKind BindingEngine::classify_memory_busy(OpId id, int pool,
                                                  int e) const {
  // A closed timing window is the root cause whenever it is the binding
  // deadline: more ports cannot reopen it, only widening can.
  const int wmax = p_->window_max_of(id);
  if (wmax >= 0 && p_->deadline(id) == wmax) {
    return RestraintKind::kWindowMiss;
  }
  // Own bank saturated while another bank had a direction-compatible port
  // free at this very step: the placement map, not the port count, is at
  // fault — re-banking can spread the accesses.
  const auto& pdesc = p_->resources.pools[static_cast<std::size_t>(pool)];
  const int ppb = pdesc.ports_per_bank();
  const int lat = pdesc.latency_cycles;
  const bool is_write = dfg_->op(id).kind == OpKind::kWrite;
  for (int inst = 0; inst < pdesc.count; ++inst) {
    if (inst / ppb == p_->mem_bank(id)) continue;
    const int offset = inst % ppb;
    if (is_write ? !pdesc.offset_writes(offset) : !pdesc.offset_reads(offset)) {
      continue;
    }
    if (instance_free(id, pool, inst, e, lat, /*excl_pred_ready=*/false)) {
      return RestraintKind::kBankConflict;
    }
  }
  return RestraintKind::kPortPressure;
}

namespace {
struct Candidate {
  int instance = -1;
  double arrival = 0;
  double slack = 0;
};
}  // namespace

bool BindingEngine::try_bind(OpId id, int e) {
  const int pool = p_->resources.pool_of(id);
  if (pool < 0) return bind_free(id, e);

  const auto& pdesc = p_->resources.pools[static_cast<std::size_t>(pool)];
  const int lat = pdesc.latency_cycles;
  if (lat > 0 && p_->pipeline.enabled && lat > p_->pipeline.ii) {
    // A multi-cycle unit cannot be rebooked every II cycles.
    note_refusal(id, e, pool, -1, RefuseCause::kBusy);
    return false;
  }
  if (e + lat >= p_->num_steps) {
    // The registered result would land past the last state.
    note_refusal(id, e, pool, -1, RefuseCause::kBusy);
    return false;
  }

  // SCC window feasibility at this step (checked once, not per instance).
  if (!scc_window_ok(id, e + lat)) {
    note_refusal(id, e, pool, -1, RefuseCause::kWindow);
    return false;
  }

  gather_arrivals(id, e);
  pq_.operand_arrivals_ps = arrivals_;  // one copy for all candidates
  // Exclusive sharing needs the op's predicate available at this step;
  // that is invariant across instances and slots, so check it once.
  const Op& o = dfg_->op(id);
  const bool excl_pred_ready =
      o.pred != kNoOp && p_->in_region(o.pred) &&
      placement_[o.pred].scheduled && placement_[o.pred].step <= e;

  // Memory-pooled writes keep the same-port/same-slot exclusivity rule
  // free writes get in bind_free (distinct bank ports do not make two
  // writes to ONE element in one step meaningful).
  if (pdesc.is_memory && o.kind == OpKind::kWrite) {
    for (OpId other : p_->port_writes[o.port]) {
      if (other == id || !placement_[other].scheduled) continue;
      const int other_slot = slot_of(placement_[other].step);
      if (other_slot == slot_of(e + lat) &&
          !(p_->exclusive_colocation && p_->exclusive(id, other))) {
        note_refusal(id, e, pool, -1, RefuseCause::kBusy);
        return false;
      }
    }
  }

  std::vector<Candidate> feasible_negative;
  for (int inst = 0; inst < pdesc.count; ++inst) {
    if (pdesc.is_memory && !memory_instance_ok(id, pdesc, inst)) {
      continue;  // wrong bank / direction: not a candidate, not a refusal
    }
    if (is_forbidden(id, pool, inst)) {
      note_refusal(id, e, pool, inst, RefuseCause::kForbidden);
      continue;
    }
    if (!instance_free(id, pool, inst, e, lat, excl_pred_ready)) {
      note_refusal(id, e, pool, inst, RefuseCause::kBusy);
      continue;
    }
    if (p_->avoid_comb_cycles && creates_comb_cycle(id, pool, inst, e)) {
      note_refusal(id, e, pool, inst, RefuseCause::kCycle);
      continue;
    }
    // Timing.
    double arrival = 0;
    double slack = 0;
    if (!candidate_timing(pool, inst, lat, &arrival, &slack)) {
      note_refusal(id, e, pool, inst, RefuseCause::kSlack, slack);
      if (slack > -1e17) {
        feasible_negative.push_back({inst, arrival, slack});
      }
      continue;
    }
    commit(id, pool, inst, e, lat, arrival);
    return true;
  }
  if (p_->accept_negative_slack && !feasible_negative.empty()) {
    // Last-resort mode: take the least-negative binding; logic synthesis
    // will have to recover the slack with area (Table 4's mechanism).
    auto best = std::max_element(
        feasible_negative.begin(), feasible_negative.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.slack < b.slack;
        });
    commit(id, pool, best->instance, e, lat, best->arrival);
    return true;
  }
  return false;
}

bool BindingEngine::bind_free(OpId id, int e) {
  const Op& o = dfg_->op(id);
  if (!scc_window_ok(id, e)) {
    note_refusal(id, e, -1, -1, RefuseCause::kWindow);
    return false;
  }
  // Write-port conflict: two writes to one port in one step are only
  // allowed when mutually exclusive.
  if (o.kind == OpKind::kWrite) {
    for (OpId other : p_->port_writes[o.port]) {
      if (other == id || !placement_[other].scheduled) continue;
      const int other_slot = slot_of(placement_[other].step);
      if (other_slot == slot_of(e) &&
          !(p_->exclusive_colocation && p_->exclusive(id, other))) {
        note_refusal(id, e, -1, -1, RefuseCause::kBusy);
        return false;
      }
    }
  }
  gather_arrivals(id, e);
  timing::PathQuery q;
  q.operand_arrivals_ps = arrivals_;
  q.cls = FuClass::kNone;
  const double arrival = o.kind == OpKind::kRead
                             ? p_->lib->reg_clk_to_q_ps()
                             : eng_->output_arrival_ps(q);
  const double slack = eng_->register_slack_ps(arrival);
  if (slack < -1e-9 && !p_->accept_negative_slack) {
    note_refusal(id, e, -1, -1, RefuseCause::kSlack, slack);
    return false;
  }
  commit(id, -1, -1, e, 0, arrival);
  return true;
}

void BindingEngine::commit(OpId id, int pool, int inst, int e, int lat,
                           double arrival) {
  ++commits_;
  OpPlacement& pl = placement_[id];
  pl.scheduled = true;
  pl.step = e + lat;
  pl.pool = pool;
  pl.instance = inst;
  pl.arrival_ps = arrival;
  if (pool >= 0) {
    const int g = num_.global(pool, inst);
    const int span = std::max(1, lat);
    for (int s = e; s < e + span; ++s) {
      occ_[static_cast<std::size_t>(g) * static_cast<std::size_t>(num_slots_) +
           static_cast<std::size_t>(slot_of(s))]
          .push_back(id);
    }
    ++inst_ops_[static_cast<std::size_t>(g)];
    // Register chaining edges for false-cycle avoidance.
    if (lat == 0) {
      for (OpId d : dg_->deps[id]) {
        const OpPlacement& dp = placement_[d];
        if (dp.step == e + lat && dp.pool >= 0 && latency_of(d) == 0) {
          comb_graph_.add_edge(num_.global(dp.pool, dp.instance), g);
        }
      }
    }
  }
  host_->on_commit(id, pool, inst, e, lat, arrival);

  // Release consumers: the result is available to them from `res_avail`
  // (chaining allows the commit step itself; otherwise the step after,
  // unless the result is registered within the step).
  const double thresh = p_->lib->reg_clk_to_q_ps() + 1e-9;
  const int res_avail = p_->enable_chaining
                            ? pl.step
                            : pl.step + (arrival <= thresh ? 0 : 1);
  for (OpId u : dg_->users[id]) host_->on_dep_satisfied(u, res_avail);
  if (dg_->port_next[id] != kNoOp) {
    host_->on_dep_satisfied(dg_->port_next[id], pl.step);
  }
}

// ---- Failure bookkeeping ----------------------------------------------------

void BindingEngine::note_refusal(OpId id, int e, int pool, int inst,
                                 RefuseCause cause, double slack) {
  refusals_[id].push_back({e, pool, inst, cause, slack});
}

void BindingEngine::fatal(OpId id, int e) {
  failed_[id] = true;
  failed_list_.push_back(id);
  // Aggregate the refusal causes at the deadline step into restraints.
  const auto& refusals = refusals_[id];
  if (!refusals.empty()) {
    int busy = 0;
    int cycle_pool = -1;
    int cycle_inst = -1;
    double best_slack = -1e18;
    bool slack_seen = false;
    bool window_seen = false;
    int pool = -1;
    for (const auto& r : refusals) {
      if (r.step != e) continue;
      pool = std::max(pool, r.pool);
      switch (r.cause) {
        case RefuseCause::kBusy: ++busy; break;
        case RefuseCause::kForbidden: ++busy; break;
        case RefuseCause::kSlack:
          slack_seen = true;
          best_slack = std::max(best_slack, r.slack);
          break;
        case RefuseCause::kCycle:
          cycle_pool = r.pool;
          cycle_inst = r.instance;
          break;
        case RefuseCause::kWindow: window_seen = true; break;
      }
    }
    if (busy > 0) {
      Restraint r;
      r.kind =
          pool >= 0 &&
                  p_->resources.pools[static_cast<std::size_t>(pool)].is_memory
              ? classify_memory_busy(id, pool, e)
              : RestraintKind::kNoResource;
      r.op = id;
      r.step = e;
      r.pool = pool;
      r.weight = busy;
      restraints_.push_back(r);
    }
    if (slack_seen) {
      Restraint r;
      r.kind = RestraintKind::kNegativeSlack;
      r.op = id;
      r.step = e;
      r.pool = pool;
      r.slack_ps = best_slack;
      r.scc = p_->pipeline.enabled ? p_->scc_of[id] : -1;
      restraints_.push_back(r);
    }
    if (busy > 0 || slack_seen) {
      // Fan-in cone analysis (paper IV.B): when a failed op chains after
      // producers in the same state, the root cause may be THEIR pool
      // (e.g. a multiplier forced into the last state drags its consumer
      // over the clock). Emit secondary restraints against the chained
      // producers with decayed weight.
      for (OpId d : dg_->deps[id]) {
        const OpPlacement& dp = placement_[d];
        if (!dp.scheduled || dp.step != e || dp.pool < 0) continue;
        if (dp.arrival_ps <= p_->lib->reg_clk_to_q_ps() + 1e-9) continue;
        // Only blame the producer when congestion delayed it: it sits
        // later than its chain-feasible step, so more capacity in ITS
        // pool could move it (and this op's chain) earlier.
        if (p_->spans.spans[d].asap >= dp.step) continue;
        Restraint r;
        r.kind = RestraintKind::kNegativeSlack;
        r.op = d;
        r.step = e;
        r.pool = dp.pool;
        r.slack_ps = best_slack;
        r.scc = p_->pipeline.enabled ? p_->scc_of[d] : -1;
        r.weight = 0.5;
        restraints_.push_back(r);
      }
    }
    if (cycle_pool >= 0) {
      Restraint r;
      r.kind = RestraintKind::kCombCycle;
      r.op = id;
      r.step = e;
      r.pool = cycle_pool;
      r.instance = cycle_inst;
      restraints_.push_back(r);
    }
    if (window_seen) {
      Restraint r;
      r.kind = RestraintKind::kSccWindow;
      r.op = id;
      r.step = e;
      r.scc = p_->scc_of[id];
      restraints_.push_back(r);
    }
  }
  // Matches the historical behavior: an op that failed with no refusal
  // at the deadline step is marked failed without a restraint (the
  // no-states fallback bails out because `failed_` is already set).
}

bool BindingEngine::depends_on_failure(OpId id) const {
  for (OpId d : dg_->deps[id]) {
    if (failed_[d]) return true;
  }
  return false;
}

void BindingEngine::fatal_no_states(OpId id, int e) {
  if (failed_[id]) return;  // already reported
  failed_[id] = true;
  failed_list_.push_back(id);
  Restraint r;
  // Dependences that never became ready before a window-clamped deadline
  // are the window's fault: extra states cannot raise the deadline.
  const int wmax = p_->window_max_of(id);
  r.kind = wmax >= 0 && p_->deadline(id) == wmax ? RestraintKind::kWindowMiss
                                                 : RestraintKind::kNoStates;
  if (r.kind == RestraintKind::kWindowMiss) r.pool = p_->resources.pool_of(id);
  r.op = id;
  r.step = e;
  r.scc = p_->pipeline.enabled ? p_->scc_of[id] : -1;
  // Secondary failures (a dependence already failed) weigh less so the
  // expert is not flooded by the cascade.
  r.weight = depends_on_failure(id) ? 0.25 : 1.0;
  restraints_.push_back(r);
}

void BindingEngine::replay_fatal(OpId id,
                                 const std::vector<Restraint>& restraints) {
  failed_[id] = true;
  failed_list_.push_back(id);
  for (const Restraint& r : restraints) restraints_.push_back(r);
}

PassOutcome BindingEngine::finish() {
  PassOutcome out;
  out.success = std::none_of(p_->ops.begin(), p_->ops.end(),
                             [&](OpId id) { return failed_[id]; });
  out.schedule.num_steps = p_->num_steps;
  out.schedule.pipeline = p_->pipeline;
  out.schedule.resources = p_->resources;
  out.schedule.placement = std::move(placement_);
  out.restraints = std::move(restraints_);
  out.failed_ops = std::move(failed_list_);
  out.commits = commits_;
  if (out.success) {
    OpId worst_op = kNoOp;
    out.schedule.worst_slack_ps =
        finalize_timing(*p_, out.schedule, *eng_, &worst_op);
    if (out.schedule.worst_slack_ps < -1e-9 && !p_->accept_negative_slack) {
      // Mux growth after commit pushed a path over the clock period.
      out.success = false;
      Restraint r;
      r.kind = RestraintKind::kNegativeSlack;
      r.op = worst_op;
      r.step = out.schedule.placement[worst_op].step;
      r.pool = out.schedule.placement[worst_op].pool;
      r.slack_ps = out.schedule.worst_slack_ps;
      out.restraints.push_back(r);
      out.failed_ops.push_back(worst_op);
    }
  }
  return out;
}

// ---- Solver-side scaffolding ------------------------------------------------

SolverHost::SolverHost(const Problem& p, const DependenceGraph& dg,
                       timing::TimingEngine& eng)
    : p_(p),
      dfg_(*p.dfg),
      binder_(p, dg, eng, *this),
      po_(compute_priority_order(p)) {
  deferred_mark_.assign(dfg_.size(), 0);
  defer_logged_.assign(dfg_.size(), false);
}

void SolverHost::on_commit(OpId id, int pool, int inst, int e, int lat,
                           double arrival) {
  active_.erase(po_.rank[id]);
  PassEvent ev;
  ev.kind = PassEvent::Kind::kCommit;
  ev.op = id;
  ev.step = e;
  ev.pool = pool;
  ev.instance = inst;
  ev.lat = lat;
  ev.arrival_ps = arrival;
  trace_.events.push_back(std::move(ev));
}

void SolverHost::insert_active(OpId id) {
  active_.insert(po_.rank[id]);
  // The newcomer may rank before the scan cursor without being deferred;
  // the next pick_ready must see it.
  ready_cursor_epoch_ = 0;
  if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
    step_anchored_.push_back(id);
  }
}

OpId SolverHost::pick_ready() const {
  // Resume after the last rank OBSERVED deferred in this epoch: erases
  // cannot un-defer anything before the cursor, and inserts reset it, so
  // skipping the prefix returns exactly what a full scan would. Without
  // the cursor the bind loop is quadratic in the step's deferred set
  // (every defer re-scans the whole marked prefix) — the second-hottest
  // path of a large cold SDC solve.
  auto it = ready_cursor_epoch_ == deferred_epoch_
                ? active_.upper_bound(ready_cursor_rank_)
                : active_.begin();
  for (; it != active_.end(); ++it) {
    const int r = *it;
    const OpId id = po_.order[static_cast<std::size_t>(r)];
    if (deferred_mark_[id] == deferred_epoch_) {
      // Known-deferred prefix grows: remember it. The op we RETURN is
      // not part of it (the caller may still bind it).
      ready_cursor_epoch_ = deferred_epoch_;
      ready_cursor_rank_ = r;
      continue;
    }
    return id;
  }
  return kNoOp;
}

void SolverHost::defer(OpId id, int e) {
  deferred_mark_[id] = deferred_epoch_;
  // Only the first defer matters to the warm-start frontier (it has the
  // op's minimum failed-bind step); skip the rest to bound the trace.
  if (defer_logged_[id]) return;
  defer_logged_[id] = true;
  PassEvent ev;
  ev.kind = PassEvent::Kind::kDefer;
  ev.op = id;
  ev.step = e;
  trace_.events.push_back(std::move(ev));
}

void SolverHost::record_fatal(OpId id, int e, PassEvent::Kind kind,
                              std::size_t restraints_before) {
  PassEvent ev;
  ev.kind = kind;
  ev.op = id;
  ev.step = e;
  const auto& restraints = binder_.restraints();
  ev.restraints.assign(restraints.begin() +
                           static_cast<std::ptrdiff_t>(restraints_before),
                       restraints.end());
  trace_.events.push_back(std::move(ev));
}

void SolverHost::fatal(OpId id, int e) {
  const std::size_t restraints_before = binder_.num_restraints();
  active_.erase(po_.rank[id]);
  binder_.fatal(id, e);
  record_fatal(id, e, PassEvent::Kind::kFatalBind, restraints_before);
}

void SolverHost::fatal_no_states(OpId id, int e, PassEvent::Kind kind) {
  if (binder_.op_failed(id)) return;  // already reported
  const std::size_t restraints_before = binder_.num_restraints();
  active_.erase(po_.rank[id]);
  binder_.fatal_no_states(id, e);
  record_fatal(id, e, kind, restraints_before);
}

void SolverHost::apply_replay(const PassEvent& ev) {
  switch (ev.kind) {
    case PassEvent::Kind::kCommit:
      binder_.commit(ev.op, ev.pool, ev.instance, ev.step, ev.lat,
                     ev.arrival_ps);
      break;
    case PassEvent::Kind::kDefer:
      defer_logged_[ev.op] = true;
      trace_.events.push_back(ev);
      break;
    case PassEvent::Kind::kFatalBind:
    case PassEvent::Kind::kFatalSweep:
      binder_.replay_fatal(ev.op, ev.restraints);
      active_.erase(po_.rank[ev.op]);
      trace_.events.push_back(ev);
      break;
    case PassEvent::Kind::kFatalFinal:
      break;  // never replayed; the final loop re-derives these
  }
}

// ---- The volume-cap fast-forward detector -----------------------------------

int provable_resource_overflow(const Problem& p) {
  const int slots = p.pipeline.enabled ? p.pipeline.ii : p.num_steps;
  int overflow = 0;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    // A multi-cycle member occupies `span` consecutive slots, so an
    // instance hosts at most slots/span ops (back-to-back packing).
    const int span = std::max(1, p.resources.pools[i].latency_cycles);
    const int capacity = p.resources.pools[i].count * (slots / span);
    overflow += std::max(0, p.pool_member_counts[i] - capacity);
  }
  return overflow;
}

int states_for_resources(const Problem& p) {
  int needed = p.num_steps;
  for (std::size_t i = 0; i < p.resources.pools.size(); ++i) {
    const int count = p.resources.pools[i].count;
    if (count <= 0 || p.pool_member_counts[i] == 0) continue;
    const int span = std::max(1, p.resources.pools[i].latency_cycles);
    needed = std::max(
        needed, ((p.pool_member_counts[i] + count - 1) / count) * span);
  }
  return needed;
}

// ---- Final timing and schedule invariants -----------------------------------

double finalize_timing(const Problem& p, Schedule& s,
                       timing::TimingEngine& eng, ir::OpId* worst_op_out) {
  const ir::Dfg& dfg = *p.dfg;
  // Final op count per instance determines the real mux sizes.
  std::map<std::pair<int, int>, int> final_counts;
  for (OpId id : p.ops) {
    const OpPlacement& pl = s.placement[id];
    if (pl.scheduled && pl.pool >= 0) {
      ++final_counts[{pl.pool, pl.instance}];
    }
  }
  double worst = 1e18;
  OpId worst_op = kNoOp;
  for (OpId id : dfg.topo_order()) {
    OpPlacement& pl = s.placement[id];
    if (!pl.scheduled || !p.in_region(id)) continue;
    const Op& o = dfg.op(id);
    std::vector<double> arrivals;
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;
      const OpId d = o.operands[i];
      if (d == kNoOp) continue;
      if (dfg.is_const(d)) {
        arrivals.push_back(0);
      } else if (!p.in_region(d) || s.placement[d].step != pl.step) {
        arrivals.push_back(p.lib->reg_clk_to_q_ps());
      } else {
        arrivals.push_back(s.placement[d].arrival_ps);
      }
    }
    double arrival;
    if (pl.pool >= 0) {
      const auto& pdesc = s.resources.pools[static_cast<std::size_t>(pl.pool)];
      if (pdesc.latency_cycles > 0) {
        arrival = p.lib->reg_clk_to_q_ps();
      } else {
        const bool shared = p.pool_members(pl.pool) > pdesc.count;
        const int n = final_counts[{pl.pool, pl.instance}];
        timing::PathQuery q;
        q.operand_arrivals_ps = arrivals;
        q.cls = pdesc.cls;
        q.width = pdesc.width;
        q.in_mux_inputs = shared ? std::max(2, n) : 0;
        q.out_mux_inputs = shared ? std::max(2, n) : 0;
        arrival = eng.output_arrival_ps(q);
      }
    } else if (o.kind == OpKind::kRead) {
      arrival = p.lib->reg_clk_to_q_ps();
    } else {
      timing::PathQuery q;
      q.operand_arrivals_ps = arrivals;
      q.cls = FuClass::kNone;
      arrival = eng.output_arrival_ps(q);
    }
    pl.arrival_ps = arrival;
    const double slack = eng.register_slack_ps(arrival);
    if (slack < worst) {
      worst = slack;
      worst_op = id;
    }
  }
  s.worst_slack_ps = worst == 1e18 ? 0 : worst;
  if (worst_op_out != nullptr) *worst_op_out = worst_op;
  return s.worst_slack_ps;
}

void check_schedule(const Problem& p, const Schedule& s) {
  const ir::Dfg& dfg = *p.dfg;
  auto fail = [&](const std::string& msg) {
    throw InternalError(strf("schedule invariant violated: ", msg));
  };
  // Every region op scheduled in range with a resource when needed.
  for (OpId id : p.ops) {
    const OpPlacement& pl = s.placement[id];
    if (!pl.scheduled) fail(strf("op %", id, " not scheduled"));
    if (pl.step < 0 || pl.step >= s.num_steps) {
      fail(strf("op %", id, " step out of range"));
    }
    const int pool = s.resources.pool_of(id);
    if (pool >= 0 && pl.pool != pool) {
      fail(strf("op %", id, " bound to wrong pool"));
    }
    if (pool >= 0 &&
        (pl.instance < 0 ||
         pl.instance >=
             s.resources.pools[static_cast<std::size_t>(pool)].count)) {
      fail(strf("op %", id, " instance out of range"));
    }
    // Memory legality: bound to a port of its own bank, direction ok.
    if (pool >= 0 &&
        s.resources.pools[static_cast<std::size_t>(pool)].is_memory) {
      const auto& pd = s.resources.pools[static_cast<std::size_t>(pool)];
      const int ppb = pd.ports_per_bank();
      if (pl.instance / ppb != p.mem_bank(id)) {
        fail(strf("op %", id, " bound to bank ", pl.instance / ppb,
                  " but placed in bank ", p.mem_bank(id)));
      }
      const int offset = pl.instance % ppb;
      const bool is_write = dfg.op(id).kind == OpKind::kWrite;
      if (is_write ? !pd.offset_writes(offset) : !pd.offset_reads(offset)) {
        fail(strf("op %", id, " bound to a direction-incompatible port"));
      }
    }
    // Timing windows (the accept-negative-slack endgame may legally pull
    // SCC members before their window opens; the deadline still holds).
    if (!p.mem_window_max.empty()) {
      const int wmin = p.mem_window_min[id];
      const int wmax = p.mem_window_max[id];
      if (!p.accept_negative_slack && wmin >= 0 && pl.step < wmin) {
        fail(strf("op %", id, " before its window opens at s", wmin + 1));
      }
      if (wmax >= 0 && pl.step > wmax) {
        fail(strf("op %", id, " after its window closes at s", wmax + 1));
      }
    }
  }
  // Dependences.
  for (OpId id : p.ops) {
    const Op& o = dfg.op(id);
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;
      const OpId d = o.operands[i];
      if (d == kNoOp || dfg.is_const(d) || !p.in_region(d)) continue;
      if (s.placement[d].step > s.placement[id].step) {
        fail(strf("op %", id, " scheduled before operand %", d));
      }
    }
  }
  // Occupancy including pipeline-equivalent steps and multi-cycle spans.
  std::map<std::tuple<int, int, int>, std::vector<OpId>> occ;
  for (OpId id : p.ops) {
    const OpPlacement& pl = s.placement[id];
    if (pl.pool < 0) continue;
    const int lat =
        s.resources.pools[static_cast<std::size_t>(pl.pool)].latency_cycles;
    const int start = pl.step - lat;
    for (int t = start; t < start + std::max(1, lat); ++t) {
      const int slot = s.kernel_step(t);
      occ[{pl.pool, pl.instance, slot}].push_back(id);
    }
  }
  for (const auto& [key, ops] : occ) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (!alloc::mutually_exclusive(dfg, ops[i], ops[j])) {
          fail(strf("ops %", ops[i], " and %", ops[j],
                    " share an instance slot without exclusivity"));
        }
      }
    }
  }
  // SCC windows.
  if (p.pipeline.enabled) {
    for (const auto& scc : p.sccs) {
      int lo = s.num_steps;
      int hi = -1;
      for (OpId id : scc) {
        lo = std::min(lo, s.placement[id].step);
        hi = std::max(hi, s.placement[id].step);
      }
      if (hi - lo > p.pipeline.ii - 1) {
        fail(strf("SCC spans ", hi - lo + 1, " states > II=", p.pipeline.ii));
      }
    }
  }
  // Port write order.
  for (const auto& writes : p.port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      if (s.placement[writes[i - 1]].step > s.placement[writes[i]].step) {
        fail("port writes out of order");
      }
    }
  }
  // Timing.
  if (!p.accept_negative_slack && s.worst_slack_ps < -1e-9) {
    fail(strf("worst slack ", s.worst_slack_ps, "ps"));
  }
}

}  // namespace hls::sched
