#include "sched/problem.hpp"

#include <algorithm>

#include "ir/analysis.hpp"
#include "support/diagnostics.hpp"

namespace hls::sched {

using ir::OpId;

int Problem::deadline(OpId id) const {
  int d = spans.spans[id].alap;
  if (pipeline.enabled && scc_of[id] >= 0) {
    const int ws = scc_window_start[static_cast<std::size_t>(scc_of[id])];
    if (ws >= 0) d = std::min(d, ws + pipeline.ii - 1);
  }
  return d;
}

int Problem::release(OpId id) const {
  // Clamp to the last state: when the region is too short the op is still
  // *tried* there, so the failure produces the specific restraint (busy /
  // slack) the expert reasons about, exactly as in the paper's Example 1.
  int r = std::min(spans.spans[id].asap, num_steps - 1);
  // In the accept-negative-slack endgame, SCC members may bind earlier
  // than their chain-feasible step: their II window traps them in an early
  // stage and they take the slack hit (the Table 4 ablation keeps an SCC
  // where it is, accumulating negative slack instead of moving it). Ops
  // outside SCCs keep their normal chain-feasible release.
  if (accept_negative_slack && pipeline.enabled && scc_of[id] >= 0) r = 0;
  if (pipeline.enabled && scc_of[id] >= 0) {
    const int ws = scc_window_start[static_cast<std::size_t>(scc_of[id])];
    if (ws >= 0) r = std::max(r, ws);
  }
  return r;
}

Problem build_problem(const ir::Dfg& dfg, const ir::LinearRegion& region,
                      ir::LatencyBound latency, const tech::Library& lib,
                      double tclk_ps, PipelineConfig pipeline,
                      std::size_t num_ports, bool anchor_io,
                      bool use_mutual_exclusivity,
                      const mem::MemorySpec* memory) {
  Problem p;
  p.dfg = &dfg;
  p.lib = &lib;
  p.tclk_ps = tclk_ps;
  p.region = region;
  p.ops = region.all_ops();
  p.pipeline = pipeline;
  p.anchor_io = anchor_io;
  p.exclusive_colocation = use_mutual_exclusivity;

  // The paper starts scheduling at the minimum latency but estimates the
  // initial resource set against the maximum ("3 multiplies in at most 3
  // states -> one multiplier").
  p.num_steps = pipeline.enabled
                    ? std::max(latency.min, pipeline.ii + 1)
                    : latency.min;
  const int estimate_steps = std::max(latency.max, p.num_steps);
  auto estimate_spans = alloc::compute_lifespans(
      dfg, region, estimate_steps, lib, tclk_ps, anchor_io);
  auto set = alloc::cluster_resources(dfg, p.ops, lib);
  alloc::EstimateOptions eopts;
  eopts.pipeline_ii = pipeline.enabled ? pipeline.ii : 0;
  eopts.use_mutual_exclusivity = use_mutual_exclusivity;
  p.resources = alloc::estimate_initial_counts(dfg, std::move(set),
                                               estimate_spans, estimate_steps,
                                               eopts);

  // Memory pools: one per banked array, appended after the clustered FU
  // pools (reads/writes cluster to kNone, so the estimator never sees
  // them). Instances are bank-major (bank * ports_per_bank + offset), so
  // bank-conflict detection rides the flat-occupancy machinery unchanged.
  if (memory != nullptr && !memory->empty()) {
    memory->validate();
    p.memory = memory;
    p.mem_bank_of.assign(dfg.size(), -1);
    p.mem_window_min.assign(dfg.size(), -1);
    p.mem_window_max.assign(dfg.size(), -1);
    for (std::size_t ai = 0; ai < memory->arrays.size(); ++ai) {
      const mem::ArraySpec& a = memory->arrays[ai];
      alloc::ResourcePool pool;
      pool.cls = tech::FuClass::kMemPort;
      pool.is_memory = true;
      pool.mem_array = static_cast<int>(ai);
      pool.banks = a.banks;
      pool.bank_read_ports = a.bank_read_ports;
      pool.bank_write_ports = a.bank_write_ports;
      pool.bank_rw_ports = a.bank_rw_ports;
      pool.count = pool.banks * pool.ports_per_bank();
      pool.latency_cycles = a.latency_cycles;
      pool.name = "mem:" + a.name;
      const int pool_idx = static_cast<int>(p.resources.pools.size());
      int width = 1;
      for (OpId id : p.ops) {
        const ir::Op& o = dfg.op(id);
        if (o.kind != ir::OpKind::kRead && o.kind != ir::OpKind::kWrite) {
          continue;
        }
        const int port = static_cast<int>(o.port);
        if (port < a.first_port || port >= a.first_port + a.num_elems) {
          continue;
        }
        p.resources.op_pool[id] = pool_idx;
        p.mem_bank_of[id] = a.bank_of(port - a.first_port);
        width = std::max(width, tech::resource_width_for(dfg, id));
      }
      pool.width = width;
      p.resources.pools.push_back(std::move(pool));
    }
    for (const mem::WindowSpec& w : memory->windows) {
      for (OpId id : p.ops) {
        const ir::Op& o = dfg.op(id);
        if (o.kind != ir::OpKind::kRead && o.kind != ir::OpKind::kWrite) {
          continue;
        }
        if (static_cast<int>(o.port) != w.port) continue;
        p.mem_window_min[id] = w.min_step;
        p.mem_window_max[id] = w.max_step;
      }
    }
  }

  // SCCs restricted to region ops (inter-iteration dependency cycles).
  p.scc_of.assign(dfg.size(), -1);
  if (pipeline.enabled) {
    std::vector<bool> in_region(dfg.size(), false);
    for (OpId id : p.ops) in_region[id] = true;
    for (const auto& comp : ir::nontrivial_sccs(dfg)) {
      const bool inside = std::all_of(comp.begin(), comp.end(),
                                      [&](OpId id) { return in_region[id]; });
      if (!inside) continue;
      const int idx = static_cast<int>(p.sccs.size());
      for (OpId id : comp) p.scc_of[id] = idx;
      p.sccs.push_back(comp);
    }
    p.scc_window_start.assign(p.sccs.size(), -1);
    p.scc_move_count.assign(p.sccs.size(), 0);
  }

  p.excl = alloc::ExclusivityMatrix(dfg, p.ops);
  p.fanout_cones = ir::fanout_cone_sizes(dfg);

  p.pool_member_counts.assign(p.resources.pools.size(), 0);
  for (OpId id : p.ops) {
    const int pool = p.resources.pool_of(id);
    if (pool >= 0) ++p.pool_member_counts[static_cast<std::size_t>(pool)];
  }

  // Port write ordering.
  p.port_writes.assign(num_ports, {});
  for (OpId id : p.ops) {
    const ir::Op& o = dfg.op(id);
    if (o.kind == ir::OpKind::kWrite) p.port_writes[o.port].push_back(id);
  }

  refresh_spans(p);
  return p;
}

void refresh_spans(Problem& p) {
  const std::vector<int>* wmin =
      p.mem_window_min.empty() ? nullptr : &p.mem_window_min;
  const std::vector<int>* wmax =
      p.mem_window_max.empty() ? nullptr : &p.mem_window_max;
  p.spans = alloc::compute_lifespans(*p.dfg, p.region, p.num_steps, *p.lib,
                                     p.tclk_ps, p.anchor_io, wmin, wmax);
}

void refresh_memory_banks(Problem& p, int pool_idx) {
  const alloc::ResourcePool& pool =
      p.resources.pools[static_cast<std::size_t>(pool_idx)];
  HLS_ASSERT(pool.is_memory && p.memory != nullptr,
             "refresh_memory_banks on non-memory pool ", pool_idx);
  // Evaluate the placement map at the pool's *current* bank count (the
  // spec keeps the starting value; re-bank mutates only the pool).
  mem::ArraySpec a =
      p.memory->arrays[static_cast<std::size_t>(pool.mem_array)];
  a.banks = pool.banks;
  for (OpId id : p.ops) {
    if (p.resources.pool_of(id) != pool_idx) continue;
    p.mem_bank_of[id] = a.bank_of(p.dfg->op(id).port - a.first_port);
  }
}

int scc_min_states(const Problem& p, const std::vector<OpId>& scc) {
  const ir::Dfg& dfg = *p.dfg;
  const tech::Library& lib = *p.lib;
  const double launch = lib.reg_clk_to_q_ps();
  std::vector<bool> member(dfg.size(), false);
  for (OpId id : scc) member[id] = true;

  std::vector<int> state(dfg.size(), 0);
  std::vector<double> arrival(dfg.size(), launch);
  int needed = 1;
  for (OpId id : dfg.topo_order()) {
    if (!member[id]) continue;
    const ir::Op& o = dfg.op(id);
    const tech::FuClass cls = tech::fu_class_for(dfg, id);
    const double fu =
        cls == tech::FuClass::kNone
            ? 0
            : (lib.fu_latency_cycles(cls) > 0
                   ? 0
                   : lib.fu_delay_ps(cls, tech::resource_width_for(dfg, id)));
    int st = 0;
    double arr = launch;  // external inputs come from registers
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == ir::OpKind::kLoopMux && i == 1) continue;
      const OpId d = o.operands[i];
      if (d == ir::kNoOp || !member[d]) continue;
      if (state[d] > st) {
        st = state[d];
        arr = arrival[d];
      } else if (state[d] == st) {
        arr = std::max(arr, arrival[d]);
      }
    }
    double out = arr + fu;
    if (out + lib.reg_setup_ps() > p.tclk_ps) {
      ++st;
      out = launch + fu;
    }
    const int lat =
        cls == tech::FuClass::kNone ? 0 : lib.fu_latency_cycles(cls);
    if (lat > 0) {
      st += lat;
      out = launch;
    }
    state[id] = st;
    arrival[id] = out;
    needed = std::max(needed, st + 1);
  }
  return needed;
}

}  // namespace hls::sched
