// The iterative scheduling driver: runs constrained scheduling passes and
// expert relaxations until the region schedules (paper Section IV: "we
// perform iterative simultaneous scheduling and binding passes. ... If a
// scheduling pass fails, an internal expert system is called to choose an
// action to relax some of the constraints").
#pragma once

#include <string>
#include <vector>

#include "sched/expert.hpp"

namespace hls::sched {

/// Which scheduling algorithm runs inside the pass/relaxation loop. Both
/// backends share the Problem construction, the expert system, the
/// BindingEngine legalization machinery and the result/report shapes (see
/// backend.hpp for the interface contract).
enum class BackendKind : std::uint8_t {
  kList,  ///< the paper's timing-driven list scheduler (default)
  kSdc,   ///< difference-constraint core + shared binding engine
  kAuto,  ///< resolve_backend picks list or SDC per problem
};

/// Stable lowercase name ("list" / "sdc" / "auto") for reports and JSON.
const char* backend_name(BackendKind kind);

struct SchedulerOptions {
  double tclk_ps = 1600;
  const tech::Library* lib = nullptr;  ///< defaults to artisan90
  PipelineConfig pipeline;
  bool anchor_io = false;

  /// Scheduling algorithm run inside the relaxation loop. kAuto resolves
  /// to list or SDC per problem (resolve_backend, backend.hpp); the
  /// resolved choice is what SchedulerResult::backend reports.
  BackendKind backend = BackendKind::kList;

  /// Shared read-only unit-delay tables (timing::DelayTables), usually
  /// prewarmed once per FlowSession; nullptr = engine-local memo only.
  const timing::DelayTables* shared_delays = nullptr;

  /// Aggregate hopeless passes: when the current resource counts provably
  /// leave at least this many ops without an instance slot, the driver
  /// fast-forwards the state count in one action instead of running a
  /// pass that itemizes ~n per-op restraints (and then renders and ranks
  /// all of them). Small designs never reach the cap, keeping the paper's
  /// restraint-by-restraint narrative; 0 disables the cap entirely.
  int restraint_volume_cap = 256;

  // Feature switches (for the paper's ablations).
  bool enable_chaining = true;
  bool avoid_comb_cycles = true;
  bool enable_move_scc = true;      ///< Table 4 ablation
  bool use_mutual_exclusivity = true;
  bool allow_accept_slack = true;
  /// Re-enter relaxation passes from the prior pass's decision trace,
  /// re-solving only from the invalidation frontier onward (both
  /// backends; SDC replay also re-derives its solved constraint bounds
  /// for the prefix). Results are bit-identical to cold passes (golden
  /// suite enforced); disable to force cold passes, e.g. for A/B
  /// determinism checks.
  bool warm_start = true;

  int max_passes = 128;
};

struct PassRecord {
  int pass_number = 0;
  int num_steps = 0;
  bool success = false;
  std::vector<std::string> restraints;  ///< rendered for reporting
  std::string action;                   ///< relaxation taken (if any)
  /// True when `action` is a relaxation that was actually applied (false
  /// for the terminal "no applicable relaxation" narration).
  bool relaxed = false;
};

struct SchedulerResult {
  bool success = false;
  Schedule schedule;
  /// The backend that produced (or failed to produce) the schedule: the
  /// *resolved* backend, never kAuto — a kAuto request reports the
  /// concrete choice resolve_backend made for this problem.
  BackendKind backend = BackendKind::kList;
  int passes = 0;
  std::vector<PassRecord> history;
  std::uint64_t timing_queries = 0;
  std::string failure_reason;  ///< set when success == false

  /// Number of relaxation actions applied across all passes (Figure 9's
  /// driver of scheduling time, alongside the pass count).
  int relaxations() const;
};

/// Schedules a linearized region under its latency bound.
SchedulerResult schedule_region(const ir::Dfg& dfg,
                                const ir::LinearRegion& region,
                                ir::LatencyBound latency,
                                std::size_t num_ports,
                                const SchedulerOptions& options);

}  // namespace hls::sched
