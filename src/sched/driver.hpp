// The iterative scheduling driver: runs constrained scheduling passes and
// expert relaxations until the region schedules (paper Section IV: "we
// perform iterative simultaneous scheduling and binding passes. ... If a
// scheduling pass fails, an internal expert system is called to choose an
// action to relax some of the constraints").
#pragma once

#include <string>
#include <vector>

#include "sched/expert.hpp"
#include "support/budget.hpp"

namespace hls::sched {

/// Which scheduling algorithm runs inside the pass/relaxation loop. Both
/// backends share the Problem construction, the expert system, the
/// BindingEngine legalization machinery and the result/report shapes (see
/// backend.hpp for the interface contract).
enum class BackendKind : std::uint8_t {
  kList,  ///< the paper's timing-driven list scheduler (default)
  kSdc,   ///< difference-constraint core + shared binding engine
  kAuto,  ///< resolve_backend picks list or SDC per problem
};

/// Stable lowercase name ("list" / "sdc" / "auto") for reports and JSON.
const char* backend_name(BackendKind kind);

/// A finished run's transferable scheduling state, recorded when
/// SchedulerOptions::record_seed is on and replayed into a later run via
/// SchedulerOptions::seed. Two levels of reuse:
///
///  * Exact replay — the seed came from the *same* module under the
///    *same* configuration (tclk, II, latency, backend, feature
///    switches). The recorded relaxations are re-applied up front and the
///    final pass replays in full through the PR-5 warm-start path, so the
///    run completes in one pass with near-zero timing queries. Bit-exact
///    by the warm ≡ cold guarantee.
///  * Neighbor seeding — the seed came from an adjacent design-space
///    point (same module/II/latency, neighboring tclk). The solve runs
///    the cold relaxation ladder UNCHANGED — every expert decision
///    depends on the previous pass's restraint set, which depends on the
///    clock period, so skipping ladder passes on a neighbor's recipe
///    could land on a different (valid but non-canonical) schedule. The
///    donor recipe is instead matched against the ladder as it unfolds:
///    a full match reports SeedUse::kSeeded (the donor predicted this
///    solve; an exact-config resubmission will replay in one pass), any
///    divergence reports kMiss. Neighbor seeds therefore never change
///    results OR pass counts; the serve-layer golden suite pins
///    seeded ≡ cold over the workload suite grid on both backends.
struct ScheduleSeed {
  // Donor configuration, checked by the compatibility rules.
  double tclk_ps = 0;
  int num_steps = 0;  ///< donor's final LI
  bool pipelined = false;
  int ii = 0;
  BackendKind backend = BackendKind::kList;  ///< donor's *resolved* backend
  /// Relaxations the donor's expert walk applied, in application order.
  std::vector<Action> actions;
  /// Decision trace of the donor's final (successful) pass; replayed in
  /// full on an exact configuration match.
  PassTrace final_trace;
};

/// How a run used (or ignored) SchedulerOptions::seed.
enum class SeedUse : std::uint8_t {
  kNone,    ///< no seed offered
  kReplay,  ///< exact-config seed: final pass replayed wholesale
  kSeeded,  ///< neighbor seed's recipe matched the cold ladder end to end
  kMiss,    ///< seed incompatible, replay failed, or recipe diverged
};
const char* seed_use_name(SeedUse use);

struct SchedulerOptions {
  double tclk_ps = 1600;
  const tech::Library* lib = nullptr;  ///< defaults to artisan90
  PipelineConfig pipeline;
  bool anchor_io = false;

  /// Scheduling algorithm run inside the relaxation loop. kAuto resolves
  /// to list or SDC per problem (resolve_backend, backend.hpp); the
  /// resolved choice is what SchedulerResult::backend reports.
  BackendKind backend = BackendKind::kList;

  /// Shared read-only unit-delay tables (timing::DelayTables), usually
  /// prewarmed once per FlowSession; nullptr = engine-local memo only.
  const timing::DelayTables* shared_delays = nullptr;

  /// Aggregate hopeless passes: when the current resource counts provably
  /// leave at least this many ops without an instance slot, the driver
  /// fast-forwards the state count in one action instead of running a
  /// pass that itemizes ~n per-op restraints (and then renders and ranks
  /// all of them). Small designs never reach the cap, keeping the paper's
  /// restraint-by-restraint narrative; 0 disables the cap entirely.
  int restraint_volume_cap = 256;

  // Feature switches (for the paper's ablations).
  bool enable_chaining = true;
  bool avoid_comb_cycles = true;
  bool enable_move_scc = true;      ///< Table 4 ablation
  bool use_mutual_exclusivity = true;
  bool allow_accept_slack = true;
  /// Re-enter relaxation passes from the prior pass's decision trace,
  /// re-solving only from the invalidation frontier onward (both
  /// backends; SDC replay also re-derives its solved constraint bounds
  /// for the prefix). Results are bit-identical to cold passes (golden
  /// suite enforced); disable to force cold passes, e.g. for A/B
  /// determinism checks.
  bool warm_start = true;

  int max_passes = 128;

  /// Deterministic work-unit budget for the run (support/budget.hpp):
  /// pass, engine-commit and relaxation-step limits checked at pass
  /// boundaries, plus the opt-in advisory wall-clock deadline. A
  /// tighter budget.max_passes lowers max_passes; exhaustion surfaces as
  /// failure_code "pass_budget_exhausted" / "budget_exhausted".
  support::BudgetLimits budget;
  /// Cooperative cancellation, observed at pass boundaries (failure_code
  /// "cancelled"). The pointee must outlive the run; nullptr = never.
  const support::StopSource* stop = nullptr;

  /// Memory constraint family (banked arrays, port counts, I/O timing
  /// windows; see mem/memory.hpp and docs/MEMORY.md). nullptr = no memory
  /// constraints; scheduling is bit-exact with and without an empty spec.
  /// The pointee must outlive the run.
  const mem::MemorySpec* memory = nullptr;

  /// Cross-run seed (see ScheduleSeed). Must describe the same module;
  /// incompatible seeds are ignored (SeedUse::kMiss reports why not).
  const ScheduleSeed* seed = nullptr;
  /// Record a ScheduleSeed for this run into SchedulerResult::seed_out on
  /// success (costs one trace copy per run; off by default).
  bool record_seed = false;

  /// Solve for the minimum initiation interval instead of taking
  /// pipeline.ii as given (pipelined regions only; ignored otherwise).
  /// The driver probes II feasibility against the star-encoded
  /// difference-constraint system (ii_probe_feasible, backend.hpp) with a
  /// binary search starting at max(1, pipeline.ii), then runs full solves
  /// upward from the smallest probe-feasible candidate until one
  /// schedules; SchedulerResult::min_ii reports the solved II. Budget
  /// limits apply to each candidate attempt; engine_commits/relax_steps
  /// accumulate across attempts. No candidate feasible up to latency.max
  /// fails with failure_code "no_feasible_ii".
  bool solve_min_ii = false;

  /// Use the legacy O(n^2) pairwise II-window encoding in the SDC backend
  /// instead of the per-SCC anchor star. Schedules are bit-identical
  /// across encodings (golden-suite enforced); this switch exists for
  /// that A/B and as a reference implementation, not for production use.
  bool sdc_pairwise_ii = false;

  /// Resolve kAuto with the legacy fixed-threshold rule (pipelined
  /// recurrences up to 4096 ops take SDC) instead of the fitted cost
  /// model (core/cost_model.hpp). Kept for A/B against the model-guided
  /// rule; see docs/SCHEDULER.md for the crossover data behind both.
  bool legacy_auto_rule = false;
};

struct PassRecord {
  int pass_number = 0;
  int num_steps = 0;
  bool success = false;
  std::vector<std::string> restraints;  ///< rendered for reporting
  std::string action;                   ///< relaxation taken (if any)
  /// True when `action` is a relaxation that was actually applied (false
  /// for the terminal "no applicable relaxation" narration).
  bool relaxed = false;

  /// Constraint-system statistics (SDC backend; 0 for list passes).
  /// `constraint_edges` is the static edge count of the pass's difference
  /// constraint system — the figure the star encoding collapses from
  /// O(n^2) to O(n) per SCC — and `propagation_relaxations` is the
  /// Bellman-Ford edge-relaxation count the pass spent reaching its
  /// fixpoints. Emitted by render_json ("constraint_stats") so encoding
  /// regressions show up in bench artifacts, not only as wall-clock.
  std::uint64_t constraint_edges = 0;
  std::uint64_t propagation_relaxations = 0;
};

struct SchedulerResult {
  bool success = false;
  Schedule schedule;
  /// The backend that produced (or failed to produce) the schedule: the
  /// *resolved* backend, never kAuto — a kAuto request reports the
  /// concrete choice resolve_backend made for this problem.
  BackendKind backend = BackendKind::kList;
  int passes = 0;
  std::vector<PassRecord> history;
  std::uint64_t timing_queries = 0;
  std::string failure_reason;  ///< set when success == false
  /// Stable machine-readable failure classification, empty on success and
  /// for ordinary infeasibility (the flow layer maps empty to
  /// "infeasible"). Budget/cancellation codes: "pass_budget_exhausted",
  /// "budget_exhausted", "cancelled", "deadline_exceeded".
  std::string failure_code;

  /// Work-unit spend of the whole run (seed-replay attempts included):
  /// BindingEngine commits and SDC Bellman-Ford relaxation steps — what
  /// SchedulerOptions::budget meters.
  std::uint64_t engine_commits = 0;
  std::uint64_t relax_steps = 0;

  /// How the offered seed was used (kNone when none was offered).
  SeedUse seed_use = SeedUse::kNone;
  /// Recorded transferable state (only when options.record_seed and the
  /// run succeeded); what the serve layer's trace cache stores.
  ScheduleSeed seed_out;

  /// Memory-family restraints (bank-conflict / port-pressure /
  /// window-miss) recorded across all passes; reported by render_report /
  /// render_json / ExplorePoint so memory-bound convergence is observable.
  int memory_restraints = 0;

  /// Solved minimum initiation interval (options.solve_min_ii runs only):
  /// the smallest II at which the region scheduled, also written into
  /// schedule.pipeline.ii. 0 when min-II solving was off.
  int min_ii = 0;

  /// Number of relaxation actions applied across all passes (Figure 9's
  /// driver of scheduling time, alongside the pass count).
  int relaxations() const;
};

/// Schedules a linearized region under its latency bound.
SchedulerResult schedule_region(const ir::Dfg& dfg,
                                const ir::LinearRegion& region,
                                ir::LatencyBound latency,
                                std::size_t num_ports,
                                const SchedulerOptions& options);

}  // namespace hls::sched
