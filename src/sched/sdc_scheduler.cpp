#include "sched/sdc_scheduler.hpp"

#include <algorithm>
#include <deque>

namespace hls::sched {

using ir::kNoOp;
using ir::OpId;

namespace {

/// Builds the static constraint adjacency for a problem at initiation
/// interval `ii`: dependences, port write order, and — for pipelined
/// problems — the II windows, star-encoded through one anchor variable
/// per SCC (ids dfg.size() + scc_index) unless `pairwise` asks for the
/// reference O(n^2) member-pair encoding. Shared between the SDC backend
/// and the pure min-II feasibility probe so the two can never encode
/// different systems. `num_vars` receives ops + anchors.
std::vector<std::vector<SdcScheduler::Edge>> build_constraint_edges(
    const Problem& p, const DependenceGraph& dg, int ii, bool pairwise,
    std::size_t* num_vars) {
  const ir::Dfg& dfg = *p.dfg;
  const bool star = p.pipeline.enabled && !pairwise;
  const std::size_t vars = dfg.size() + (star ? p.sccs.size() : 0);
  std::vector<std::vector<SdcScheduler::Edge>> out(vars);
  for (OpId id : p.ops) {
    for (OpId d : dg.deps[id]) {
      // x_consumer >= x_producer + latency: the result step of the
      // producer is the earliest chainable start of the consumer.
      out[d].push_back({id, p.pool_latency(d)});
    }
  }
  // Port write order: consecutive writes to one port may share a step
  // (when mutually exclusive) but never reorder.
  for (const auto& writes : p.port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      out[writes[i - 1]].push_back({writes[i], 0});
    }
  }
  if (p.pipeline.enabled && !star) {
    // Reference pairwise encoding (kept for the golden star/pairwise
    // A/B): for SCC members a != b,
    // (x_b + lat_b) >= (x_a + lat_a) - (II - 1).
    for (const auto& scc : p.sccs) {
      for (OpId a : scc) {
        for (OpId b : scc) {
          if (a == b) continue;
          out[a].push_back(
              {b, p.pool_latency(a) - p.pool_latency(b) - (ii - 1)});
        }
      }
    }
  } else if (star) {
    // Star encoding: A_s >= x_a + lat_a for every member (the SCC's
    // latest result step), x_b >= A_s - lat_b - (II - 1) back out.
    // Composition through A_s reproduces every pairwise constraint
    // exactly; the a == b composition is x_b >= x_b - (II - 1), vacuous
    // for II >= 1. 2n edges per SCC instead of n(n - 1).
    for (std::size_t s = 0; s < p.sccs.size(); ++s) {
      const OpId anchor = static_cast<OpId>(dfg.size() + s);
      for (OpId a : p.sccs[s]) {
        out[a].push_back({anchor, p.pool_latency(a)});
        out[anchor].push_back({a, -p.pool_latency(a) - (ii - 1)});
      }
    }
  }
  if (num_vars != nullptr) *num_vars = vars;
  return out;
}

int max_region_latency(const Problem& p) {
  int lat = 0;
  for (OpId id : p.ops) lat = std::max(lat, p.pool_latency(id));
  return lat;
}

}  // namespace

SdcScheduler::SdcScheduler(const Problem& p, const SchedulerOptions& options)
    : SchedulerBackend(p, options), dg_(build_dependence_graph(p)) {
  out_ = build_constraint_edges(p, dg_, p.pipeline.ii,
                                options.sdc_pairwise_ii, &num_vars_);
  anchor_base_ = p.dfg->size();
  max_latency_ = max_region_latency(p);
  for (const auto& edges : out_) edge_count_ += edges.size();
}

namespace {

// One SDC scheduling attempt. The constraint system's least fixpoint
// (longest path from the implicit source) gives every op its earliest
// start `x_`; the solver walks the steps in order offering ready ops to
// the shared BindingEngine in priority order exactly like the list pass,
// but a failed step raises the refused ops' lower bounds — batched into
// one re-propagation per step — so dependent ops and II-window partners
// are never attempted at steps the system already excludes. Binding,
// restraints and the active-set/trace scaffolding are the shared
// BindingEngine/SolverHost (binder.cpp); this file contributes only the
// constraint core and its bound-aware ready buckets.
class SdcPass final : SolverHost {
 public:
  SdcPass(const Problem& p,
          const std::vector<std::vector<SdcScheduler::Edge>>& out,
          std::size_t anchor_base, std::size_t num_vars, int max_latency,
          const DependenceGraph& dg, timing::TimingEngine& eng,
          const WarmStart* warm)
      : SolverHost(p, dg, eng),
        out_(out),
        warm_(warm),
        anchor_base_(anchor_base),
        num_vars_(num_vars),
        // Anchors track result steps, which legitimately run past the op
        // saturation point by up to the largest pool latency; clamping
        // them at num_steps would weaken window constraints near the last
        // states relative to the pairwise encoding (whose single-edge
        // bound only clamps at the op). The slack keeps the clamp inert
        // for every value reachable from op bounds while still cutting
        // off pathological positive-cycle propagation.
        anchor_cap_(p.num_steps + max_latency) {
    unmet_ = dg.base_unmet;
    avail_.assign(dfg_.size(), 0);
    solve_initial();
    build_ready();
  }

  PassOutcome run() {
    int first = 0;
    if (warm_ != nullptr && warm_->trace != nullptr &&
        warm_->frontier_step > 0) {
      first = replay_prefix();
    }
    for (int e = first; e < p_.num_steps; ++e) {
      begin_step(e);
      while (true) {
        const OpId best = pick_ready();
        if (best == kNoOp) break;
        if (binder_.try_bind(best, e)) {
          ++deferred_epoch_;  // retry deferred ops: new chaining chances
        } else if (e >= binder_.start_deadline(best)) {
          fatal(best, e);
        } else {
          defer(best, e);
        }
      }
      end_step(e);
      sweep_missed_deadlines(e);
    }
    for (OpId id : p_.ops) {
      if (!binder_.scheduled(id) && !binder_.op_failed(id)) {
        fatal_no_states(id, p_.num_steps - 1, PassEvent::Kind::kFatalFinal);
      }
    }
    PassOutcome out = binder_.finish();
    out.trace = std::move(trace_);
    out.relax_steps = relax_steps_;
    return out;
  }

 private:
  // ---- The difference-constraint core ---------------------------------------

  bool is_anchor(OpId v) const {
    return static_cast<std::size_t>(v) >= anchor_base_;
  }

  /// Incremental Bellman-Ford longest path: relaxes from the seeded
  /// variables until the system is at its least fixpoint again. Appends
  /// every OP whose bound rose to `changed` (when given); anchor
  /// variables propagate but are never recorded — they have no bucket,
  /// no binder state, and no deadline. Op bounds saturate at num_steps
  /// ("no feasible start"); anchor bounds at num_steps + max pool
  /// latency. Both clamps also bound propagation in the
  /// (driver-precluded) event of a positive cycle.
  void relax(std::deque<OpId>& queue, std::vector<OpId>* changed) {
    while (!queue.empty()) {
      const OpId u = queue.front();
      queue.pop_front();
      in_queue_[u] = 0;
      for (const SdcScheduler::Edge& edge : out_[u]) {
        ++relax_steps_;
        const bool anchor = is_anchor(edge.to);
        const int cap = anchor ? anchor_cap_ : p_.num_steps;
        const int bound = std::min(x_[u] + edge.weight, cap);
        if (bound <= x_[edge.to]) continue;
        // A committed op's start is final; constraints that would move it
        // cannot fire (its partners took the bound into account when it
        // was placed, and the window check at bind time guards the rest).
        if (!anchor &&
            (binder_.scheduled(edge.to) || binder_.op_failed(edge.to))) {
          continue;
        }
        x_[edge.to] = bound;
        if (!anchor && changed != nullptr) changed->push_back(edge.to);
        if (!in_queue_[edge.to]) {
          in_queue_[edge.to] = 1;
          queue.push_back(edge.to);
        }
      }
    }
  }

  void solve_initial() {
    x_.assign(num_vars_, 0);
    in_queue_.assign(num_vars_, 0);
    changed_mark_.assign(dfg_.size(), 0);
    std::deque<OpId> queue;
    for (OpId id : p_.ops) {
      x_[id] = p_.release(id);
      in_queue_[id] = 1;
      queue.push_back(id);
    }
    relax(queue, nullptr);
  }

  /// Re-buckets every op in `changed_scratch_` once, at its now-final
  /// bound. relax() appends an op once per bound rise; the epoch mark
  /// dedups multi-rise ops.
  void requeue_changed() {
    ++changed_epoch_;
    for (const OpId c : changed_scratch_) {
      if (changed_mark_[c] == changed_epoch_) continue;
      changed_mark_[c] = changed_epoch_;
      if (binder_.scheduled(c) || binder_.op_failed(c)) continue;
      if (active_.erase(po_.rank[c]) > 0 || unmet_[c] == 0) enqueue(c);
    }
  }

  // ---- Readiness ------------------------------------------------------------

  void build_ready() {
    buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    deadline_buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    for (OpId id : p_.ops) {
      if (unmet_[id] == 0) enqueue(id);
      const int e0 = std::max(binder_.start_deadline(id), 0);
      if (e0 < p_.num_steps) {
        deadline_buckets_[static_cast<std::size_t>(e0)].push_back(id);
      }
    }
  }

  void enqueue(OpId id) {
    if (binder_.op_failed(id) || binder_.scheduled(id) || unmet_[id] != 0) {
      return;
    }
    // Earliest step the binder may still look at `id`: its constraint
    // bound, the availability of its committed dependences, and the
    // earliest undrained step — once a step has ended, its bucket has
    // been consumed, so re-bucketing there (e.g. from end_step's bound
    // propagation onto a just-erased active op) would silently drop the
    // op from every queue.
    const int floor_step = in_step_ ? current_step_ : current_step_ + 1;
    int act = std::max(avail_[id], x_[id]);
    if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
      // Anchored I/O may only be placed on its home step; a home step
      // that already ended means the op missed it (end-of-pass fatal).
      const int home = p_.spans.spans[id].asap;
      if (act > home || home < floor_step) return;
      act = home;
    }
    if (act < floor_step) act = floor_step;
    if (act >= p_.num_steps) return;  // beyond the last state
    if (act == current_step_ && in_step_) {
      insert_active(id);
    } else {
      buckets_[static_cast<std::size_t>(act)].push_back(id);
    }
  }

  void satisfy_dep(OpId u, int avail_step) {
    avail_[u] = std::max(avail_[u], avail_step);
    if (--unmet_[u] == 0) enqueue(u);
  }

  bool deps_available_by(OpId id, int e) const {
    return unmet_[id] == 0 && avail_[id] <= e;
  }

  void begin_step(int e) {
    current_step_ = e;
    in_step_ = true;
    ++deferred_epoch_;
    step_anchored_.clear();
    for (OpId id : buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      // A bucket entry was placed when the op's earliest step was `e`;
      // the bound only grows, so an entry whose bound moved is stale (a
      // newer entry exists at the later bucket).
      int act = std::max(avail_[id], x_[id]);
      if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
        const int home = p_.spans.spans[id].asap;
        if (act > home) continue;
        act = home;
      }
      if (act > e) continue;
      insert_active(id);
    }
  }

  void end_step(int e) {
    // Anchored ops are only eligible on their home step; everything else
    // that could not bind here gets its lower bound raised to e + 1 —
    // this is how resource conflicts enter the constraint system, and
    // the propagation moves dependents and window partners before they
    // are attempted. All the raises are batched into ONE Bellman-Ford
    // wave: the least fixpoint of the system is independent of the
    // relaxation order, so seeding every refused op at once reaches
    // exactly the state the former one-wave-per-op cascade reached, at a
    // fraction of the edge relaxations (each wave re-walked the shared
    // downstream cone).
    for (OpId id : step_anchored_) active_.erase(po_.rank[id]);
    in_step_ = false;
    deferred_scratch_.clear();
    for (const int r : active_) {
      deferred_scratch_.push_back(po_.order[static_cast<std::size_t>(r)]);
    }
    std::deque<OpId> queue;
    for (OpId id : deferred_scratch_) {
      if (x_[id] >= e + 1) continue;
      x_[id] = std::min(e + 1, p_.num_steps);
      if (!in_queue_[id]) {
        in_queue_[id] = 1;
        queue.push_back(id);
      }
    }
    changed_scratch_.clear();
    relax(queue, &changed_scratch_);
    // A refused op raised exactly to e + 1 stays in the active set and is
    // retried next step; one whose bound the wave pushed further appears
    // in `changed_scratch_` and is re-bucketed at its new earliest step
    // (requeue_changed erases it from the active set first).
    requeue_changed();
    for (OpId id : deferred_scratch_) {
      if (x_[id] >= p_.num_steps) active_.erase(po_.rank[id]);
    }
  }

  // ---- Warm start -----------------------------------------------------------

  /// Replays the previous pass's decisions for every step before the
  /// frontier. Commits and fatals come from the trace; the end-of-step
  /// bound raising runs normally over the replayed state, so the solved
  /// x_ bounds learned before the frontier are re-established without a
  /// single timing query or instance probe.
  int replay_prefix() {
    const auto& events = warm_->trace->events;
    const int frontier = std::min(warm_->frontier_step, p_.num_steps);
    std::size_t idx = 0;
    for (int e = 0; e < frontier; ++e) {
      begin_step(e);
      // Bind-loop decisions (commits, defers, deadline fatals) replay
      // first, exactly where they happened; the step's sweep fatals are
      // the tail of its event run and must wait until after end_step.
      while (idx < events.size() &&
             events[idx].kind != PassEvent::Kind::kFatalFinal &&
             events[idx].kind != PassEvent::Kind::kFatalSweep &&
             events[idx].step == e) {
        apply_replay(events[idx]);
        ++idx;
      }
      // At step end the active set is exactly the recorded pass's
      // deferred set, so the normal bound raising re-derives the same
      // constraint-system state a cold pass would reach.
      end_step(e);
      // Sweep fatals were recorded after end_step in the cold pass;
      // applying them before it would mark the swept ops failed during
      // the bound raising and cut relax() propagation paths that run
      // through them (warm bounds would lag cold ones).
      while (idx < events.size() &&
             events[idx].kind == PassEvent::Kind::kFatalSweep &&
             events[idx].step == e) {
        apply_replay(events[idx]);
        ++idx;
      }
    }
    return frontier;
  }

  // ---- Host callback (the engine reporting a release) ------------------------

  void on_dep_satisfied(OpId user, int avail_step) override {
    satisfy_dep(user, avail_step);
  }

  /// Ops whose deadline passed while their dependences never became
  /// ready (including dependences on already-failed ops).
  void sweep_missed_deadlines(int e) {
    for (OpId id : deadline_buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      if (!deps_available_by(id, e)) {
        fatal_no_states(id, e, PassEvent::Kind::kFatalSweep);
      }
    }
  }

  const std::vector<std::vector<SdcScheduler::Edge>>& out_;
  const WarmStart* warm_;
  const std::size_t anchor_base_;  ///< first anchor variable id
  const std::size_t num_vars_;     ///< ops + star anchors
  const int anchor_cap_;           ///< anchor saturation (num_steps + max lat)

  std::vector<int> unmet_;
  std::vector<int> avail_;
  std::vector<int> x_;  ///< constraint lower bound per variable (start step)
  std::vector<char> in_queue_;  ///< Bellman-Ford work-queue membership
  std::vector<OpId> changed_scratch_;
  std::vector<std::uint32_t> changed_mark_;  ///< requeue dedup epochs
  std::uint32_t changed_epoch_ = 0;
  std::uint64_t relax_steps_ = 0;  ///< edge relaxations, for PassOutcome
  std::vector<OpId> deferred_scratch_;
  std::vector<std::vector<OpId>> buckets_;
  std::vector<std::vector<OpId>> deadline_buckets_;
  /// -1 until the first begin_step, so pre-pass enqueues (build_ready)
  /// land in bucket 0 rather than being floored past it.
  int current_step_ = -1;
  bool in_step_ = false;
};

}  // namespace

PassOutcome SdcScheduler::run_pass(timing::TimingEngine& eng,
                                   const WarmStart* warm) {
  SdcPass pass(problem_, out_, anchor_base_, num_vars_, max_latency_, dg_,
               eng, warm);
  PassOutcome out = pass.run();
  out.constraint_edges = edge_count_;
  return out;
}

// ---- Minimum-II feasibility probe -----------------------------------------

bool ii_probe_feasible(const Problem& p, const DependenceGraph& dg, int ii,
                       int max_states) {
  // Recurrence bound first: an SCC whose optimistic internal chain needs
  // more states than II can never sit inside an II window, no matter
  // where the window goes. This check is tighter than the unit-latency
  // positive-cycle test below (it sees chaining against the clock
  // period), so it prunes most infeasible candidates outright.
  for (const auto& scc : p.sccs) {
    if (scc_min_states(p, scc) > ii) return false;
  }
  std::size_t num_vars = 0;
  const auto out =
      build_constraint_edges(p, dg, ii, /*pairwise=*/false, &num_vars);
  const int max_lat = max_region_latency(p);
  std::vector<int> x(num_vars, 0);
  std::vector<char> in_queue(num_vars, 0);
  std::deque<OpId> queue;
  for (OpId id : p.ops) {
    x[id] = p.release(id);
    in_queue[id] = 1;
    queue.push_back(id);
  }
  const std::size_t anchor_base = p.dfg->size();
  while (!queue.empty()) {
    const OpId u = queue.front();
    queue.pop_front();
    in_queue[u] = 0;
    for (const SdcScheduler::Edge& edge : out[u]) {
      const bool anchor = static_cast<std::size_t>(edge.to) >= anchor_base;
      const int cap = anchor ? max_states + max_lat : max_states;
      const int bound = std::min(x[u] + edge.weight, cap);
      if (bound <= x[edge.to]) continue;
      x[edge.to] = bound;
      if (!in_queue[edge.to]) {
        in_queue[edge.to] = 1;
        queue.push_back(edge.to);
      }
    }
  }
  // Saturated op bound = no start step exists within the largest state
  // count the expert could ever reach (positive cycles saturate too).
  for (OpId id : p.ops) {
    if (x[id] >= max_states) return false;
  }
  return true;
}

int min_feasible_ii(const Problem& p, const DependenceGraph& dg, int lo,
                    int hi, int latency_max) {
  if (lo > hi) return -1;
  auto feasible = [&](int ii) {
    return ii_probe_feasible(p, dg, ii, std::max(latency_max, ii + 1));
  };
  if (!feasible(hi)) return -1;
  // Invariant: feasible(hi); probe monotone in II.
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace hls::sched
