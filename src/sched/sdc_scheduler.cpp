#include "sched/sdc_scheduler.hpp"

#include <algorithm>
#include <deque>

namespace hls::sched {

using ir::kNoOp;
using ir::OpId;

SdcScheduler::SdcScheduler(const Problem& p, const SchedulerOptions& options)
    : SchedulerBackend(p, options), dg_(build_dependence_graph(p)) {
  const ir::Dfg& dfg = *p.dfg;
  out_.assign(dfg.size(), {});
  for (OpId id : p.ops) {
    for (OpId d : dg_.deps[id]) {
      // x_consumer >= x_producer + latency: the result step of the
      // producer is the earliest chainable start of the consumer.
      out_[d].push_back({id, p.pool_latency(d)});
    }
  }
  // Port write order: consecutive writes to one port may share a step
  // (when mutually exclusive) but never reorder.
  for (const auto& writes : p.port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      out_[writes[i - 1]].push_back({writes[i], 0});
    }
  }
  // II windows as pairwise difference constraints over result steps: for
  // SCC members a != b, (x_b + lat_b) >= (x_a + lat_a) - (II - 1). SCCs
  // are small (loop-carried accumulators), so the quadratic edge count is
  // cheap, and the constraints move a whole SCC as one rigid-ish body
  // during propagation instead of member by member.
  if (p.pipeline.enabled) {
    for (const auto& scc : p.sccs) {
      for (OpId a : scc) {
        for (OpId b : scc) {
          if (a == b) continue;
          out_[a].push_back(
              {b, p.pool_latency(a) - p.pool_latency(b) -
                      (p.pipeline.ii - 1)});
        }
      }
    }
  }
}

namespace {

// One SDC scheduling attempt. The constraint system's least fixpoint
// (longest path from the implicit source) gives every op its earliest
// start `x_`; the solver walks the steps in order offering ready ops to
// the shared BindingEngine in priority order exactly like the list pass,
// but a failed step raises the op's lower bound and re-propagates it
// through the constraint graph, so dependent ops and II-window partners
// are never attempted at steps the system already excludes. Binding,
// restraints and the active-set/trace scaffolding are the shared
// BindingEngine/SolverHost (binder.cpp); this file contributes only the
// constraint core and its bound-aware ready buckets.
class SdcPass final : SolverHost {
 public:
  SdcPass(const Problem& p,
          const std::vector<std::vector<SdcScheduler::Edge>>& out,
          const DependenceGraph& dg, timing::TimingEngine& eng,
          const WarmStart* warm)
      : SolverHost(p, dg, eng), out_(out), warm_(warm) {
    unmet_ = dg.base_unmet;
    avail_.assign(dfg_.size(), 0);
    solve_initial();
    build_ready();
  }

  PassOutcome run() {
    int first = 0;
    if (warm_ != nullptr && warm_->trace != nullptr &&
        warm_->frontier_step > 0) {
      first = replay_prefix();
    }
    for (int e = first; e < p_.num_steps; ++e) {
      begin_step(e);
      while (true) {
        const OpId best = pick_ready();
        if (best == kNoOp) break;
        if (binder_.try_bind(best, e)) {
          ++deferred_epoch_;  // retry deferred ops: new chaining chances
        } else if (e >= binder_.start_deadline(best)) {
          fatal(best, e);
        } else {
          defer(best, e);
        }
      }
      end_step(e);
      sweep_missed_deadlines(e);
    }
    for (OpId id : p_.ops) {
      if (!binder_.scheduled(id) && !binder_.op_failed(id)) {
        fatal_no_states(id, p_.num_steps - 1, PassEvent::Kind::kFatalFinal);
      }
    }
    PassOutcome out = binder_.finish();
    out.trace = std::move(trace_);
    out.relax_steps = relax_steps_;
    return out;
  }

 private:
  // ---- The difference-constraint core ---------------------------------------

  /// Clamped add: x values saturate at num_steps ("no feasible start"),
  /// which also bounds propagation in the (driver-precluded) event of a
  /// positive cycle.
  int saturate(int v) const { return std::min(v, p_.num_steps); }

  /// Incremental Bellman-Ford longest path: relaxes from the seeded ops
  /// until the system is at its least fixpoint again. Appends every op
  /// whose bound rose to `changed` (when given).
  void relax(std::deque<OpId>& queue, std::vector<OpId>* changed) {
    while (!queue.empty()) {
      const OpId u = queue.front();
      queue.pop_front();
      in_queue_[u] = 0;
      for (const SdcScheduler::Edge& edge : out_[u]) {
        ++relax_steps_;
        const int bound = saturate(x_[u] + edge.weight);
        if (bound <= x_[edge.to]) continue;
        // A committed op's start is final; constraints that would move it
        // cannot fire (its partners took the bound into account when it
        // was placed, and the window check at bind time guards the rest).
        if (binder_.scheduled(edge.to) || binder_.op_failed(edge.to)) {
          continue;
        }
        x_[edge.to] = bound;
        if (changed != nullptr) changed->push_back(edge.to);
        if (!in_queue_[edge.to]) {
          in_queue_[edge.to] = 1;
          queue.push_back(edge.to);
        }
      }
    }
  }

  void solve_initial() {
    x_.assign(dfg_.size(), 0);
    in_queue_.assign(dfg_.size(), 0);
    changed_mark_.assign(dfg_.size(), 0);
    std::deque<OpId> queue;
    for (OpId id : p_.ops) {
      x_[id] = p_.release(id);
      in_queue_[id] = 1;
      queue.push_back(id);
    }
    relax(queue, nullptr);
  }

  /// Raises `id`'s lower bound to `step` and re-propagates. Changed ops
  /// whose bound now excludes them from the active set are re-bucketed at
  /// their new earliest step.
  void raise_bound(OpId id, int step) {
    if (x_[id] >= step) return;
    x_[id] = saturate(step);
    std::deque<OpId> queue{id};
    in_queue_[id] = 1;
    changed_scratch_.clear();
    relax(queue, &changed_scratch_);
    // relax() appends an op once per bound rise; re-bucket each changed
    // op once (at its now-final bound), not once per rise.
    ++changed_epoch_;
    for (const OpId c : changed_scratch_) {
      if (changed_mark_[c] == changed_epoch_) continue;
      changed_mark_[c] = changed_epoch_;
      if (binder_.scheduled(c) || binder_.op_failed(c)) continue;
      if (active_.erase(po_.rank[c]) > 0 || unmet_[c] == 0) enqueue(c);
    }
  }

  // ---- Readiness ------------------------------------------------------------

  void build_ready() {
    buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    deadline_buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    for (OpId id : p_.ops) {
      if (unmet_[id] == 0) enqueue(id);
      const int e0 = std::max(binder_.start_deadline(id), 0);
      if (e0 < p_.num_steps) {
        deadline_buckets_[static_cast<std::size_t>(e0)].push_back(id);
      }
    }
  }

  void enqueue(OpId id) {
    if (binder_.op_failed(id) || binder_.scheduled(id) || unmet_[id] != 0) {
      return;
    }
    // Earliest step the binder may still look at `id`: its constraint
    // bound, the availability of its committed dependences, and the
    // earliest undrained step — once a step has ended, its bucket has
    // been consumed, so re-bucketing there (e.g. from end_step's bound
    // propagation onto a just-erased active op) would silently drop the
    // op from every queue.
    const int floor_step = in_step_ ? current_step_ : current_step_ + 1;
    int act = std::max(avail_[id], x_[id]);
    if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
      // Anchored I/O may only be placed on its home step; a home step
      // that already ended means the op missed it (end-of-pass fatal).
      const int home = p_.spans.spans[id].asap;
      if (act > home || home < floor_step) return;
      act = home;
    }
    if (act < floor_step) act = floor_step;
    if (act >= p_.num_steps) return;  // beyond the last state
    if (act == current_step_ && in_step_) {
      insert_active(id);
    } else {
      buckets_[static_cast<std::size_t>(act)].push_back(id);
    }
  }

  void satisfy_dep(OpId u, int avail_step) {
    avail_[u] = std::max(avail_[u], avail_step);
    if (--unmet_[u] == 0) enqueue(u);
  }

  bool deps_available_by(OpId id, int e) const {
    return unmet_[id] == 0 && avail_[id] <= e;
  }

  void begin_step(int e) {
    current_step_ = e;
    in_step_ = true;
    ++deferred_epoch_;
    step_anchored_.clear();
    for (OpId id : buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      // A bucket entry was placed when the op's earliest step was `e`;
      // the bound only grows, so an entry whose bound moved is stale (a
      // newer entry exists at the later bucket).
      int act = std::max(avail_[id], x_[id]);
      if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
        const int home = p_.spans.spans[id].asap;
        if (act > home) continue;
        act = home;
      }
      if (act > e) continue;
      insert_active(id);
    }
  }

  void end_step(int e) {
    // Anchored ops are only eligible on their home step; everything else
    // that could not bind here gets its lower bound raised — this is how
    // resource conflicts enter the constraint system, and the propagation
    // moves dependents and window partners before they are attempted.
    for (OpId id : step_anchored_) active_.erase(po_.rank[id]);
    in_step_ = false;
    deferred_scratch_.clear();
    for (const int r : active_) {
      deferred_scratch_.push_back(po_.order[static_cast<std::size_t>(r)]);
    }
    for (OpId id : deferred_scratch_) {
      raise_bound(id, e + 1);
      if (x_[id] >= p_.num_steps) active_.erase(po_.rank[id]);
    }
  }

  // ---- Warm start -----------------------------------------------------------

  /// Replays the previous pass's decisions for every step before the
  /// frontier. Commits and fatals come from the trace; the end-of-step
  /// bound raising runs normally over the replayed state, so the solved
  /// x_ bounds learned before the frontier are re-established without a
  /// single timing query or instance probe.
  int replay_prefix() {
    const auto& events = warm_->trace->events;
    const int frontier = std::min(warm_->frontier_step, p_.num_steps);
    std::size_t idx = 0;
    for (int e = 0; e < frontier; ++e) {
      begin_step(e);
      // Bind-loop decisions (commits, defers, deadline fatals) replay
      // first, exactly where they happened; the step's sweep fatals are
      // the tail of its event run and must wait until after end_step.
      while (idx < events.size() &&
             events[idx].kind != PassEvent::Kind::kFatalFinal &&
             events[idx].kind != PassEvent::Kind::kFatalSweep &&
             events[idx].step == e) {
        apply_replay(events[idx]);
        ++idx;
      }
      // At step end the active set is exactly the recorded pass's
      // deferred set, so the normal bound raising re-derives the same
      // constraint-system state a cold pass would reach.
      end_step(e);
      // Sweep fatals were recorded after end_step in the cold pass;
      // applying them before it would mark the swept ops failed during
      // the bound raising and cut relax() propagation paths that run
      // through them (warm bounds would lag cold ones).
      while (idx < events.size() &&
             events[idx].kind == PassEvent::Kind::kFatalSweep &&
             events[idx].step == e) {
        apply_replay(events[idx]);
        ++idx;
      }
    }
    return frontier;
  }

  // ---- Host callback (the engine reporting a release) ------------------------

  void on_dep_satisfied(OpId user, int avail_step) override {
    satisfy_dep(user, avail_step);
  }

  /// Ops whose deadline passed while their dependences never became
  /// ready (including dependences on already-failed ops).
  void sweep_missed_deadlines(int e) {
    for (OpId id : deadline_buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      if (!deps_available_by(id, e)) {
        fatal_no_states(id, e, PassEvent::Kind::kFatalSweep);
      }
    }
  }

  const std::vector<std::vector<SdcScheduler::Edge>>& out_;
  const WarmStart* warm_;

  std::vector<int> unmet_;
  std::vector<int> avail_;
  std::vector<int> x_;          ///< constraint lower bound per op (start step)
  std::vector<char> in_queue_;  ///< Bellman-Ford work-queue membership
  std::vector<OpId> changed_scratch_;
  std::vector<std::uint32_t> changed_mark_;  ///< raise_bound dedup epochs
  std::uint32_t changed_epoch_ = 0;
  std::uint64_t relax_steps_ = 0;  ///< edge relaxations, for PassOutcome
  std::vector<OpId> deferred_scratch_;
  std::vector<std::vector<OpId>> buckets_;
  std::vector<std::vector<OpId>> deadline_buckets_;
  /// -1 until the first begin_step, so pre-pass enqueues (build_ready)
  /// land in bucket 0 rather than being floored past it.
  int current_step_ = -1;
  bool in_step_ = false;
};

}  // namespace

PassOutcome SdcScheduler::run_pass(timing::TimingEngine& eng,
                                   const WarmStart* warm) {
  SdcPass pass(problem_, out_, dg_, eng, warm);
  return pass.run();
}

}  // namespace hls::sched
