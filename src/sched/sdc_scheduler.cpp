#include "sched/sdc_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "sched/priority.hpp"
#include "support/diagnostics.hpp"
#include "timing/comb_cycle.hpp"

namespace hls::sched {

using ir::kNoOp;
using ir::Op;
using ir::OpId;
using ir::OpKind;
using tech::FuClass;

namespace {

int pool_latency(const Problem& p, OpId id) {
  const int pool = p.resources.pool_of(id);
  if (pool < 0) return 0;
  return p.resources.pools[static_cast<std::size_t>(pool)].latency_cycles;
}

}  // namespace

SdcScheduler::SdcScheduler(const Problem& p, const SchedulerOptions& options)
    : SchedulerBackend(p, options) {
  const ir::Dfg& dfg = *p.dfg;
  deps_.assign(dfg.size(), {});
  users_.assign(dfg.size(), {});
  port_next_.assign(dfg.size(), kNoOp);
  base_unmet_.assign(dfg.size(), 0);
  out_.assign(dfg.size(), {});

  // Dependence structure: identical rules to the list pass (carried
  // loop-mux edges excluded, constants and out-of-region values come from
  // registers, no-speculate ops additionally wait for their predicate).
  for (OpId id : p.ops) {
    const Op& o = dfg.op(id);
    auto& d = deps_[id];
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;  // carried
      const OpId x = o.operands[i];
      if (x == kNoOp || !p.in_region(x)) continue;
      d.push_back(x);
    }
    if (o.pred != kNoOp && o.no_speculate && p.in_region(o.pred)) {
      d.push_back(o.pred);
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  for (OpId id : p.ops) {
    for (OpId d : deps_[id]) {
      users_[d].push_back(id);
      // x_consumer >= x_producer + latency: the result step of the
      // producer is the earliest chainable start of the consumer.
      out_[d].push_back({id, pool_latency(p, d)});
    }
    base_unmet_[id] = static_cast<int>(deps_[id].size());
  }
  // Port write order: consecutive writes to one port may share a step
  // (when mutually exclusive) but never reorder.
  for (const auto& writes : p.port_writes) {
    for (std::size_t i = 1; i < writes.size(); ++i) {
      port_next_[writes[i - 1]] = writes[i];
      ++base_unmet_[writes[i]];
      out_[writes[i - 1]].push_back({writes[i], 0});
    }
  }
  // II windows as pairwise difference constraints over result steps: for
  // SCC members a != b, (x_b + lat_b) >= (x_a + lat_a) - (II - 1). SCCs
  // are small (loop-carried accumulators), so the quadratic edge count is
  // cheap, and the constraints move a whole SCC as one rigid-ish body
  // during propagation instead of member by member.
  if (p.pipeline.enabled) {
    for (const auto& scc : p.sccs) {
      for (OpId a : scc) {
        for (OpId b : scc) {
          if (a == b) continue;
          out_[a].push_back(
              {b, pool_latency(p, a) - pool_latency(p, b) -
                      (p.pipeline.ii - 1)});
        }
      }
    }
  }
}

namespace {

/// Why a particular instance refused a binding (same vocabulary as the
/// list pass; the aggregation into restraints mirrors it too).
enum class RefuseCause : std::uint8_t {
  kBusy,
  kSlack,
  kCycle,
  kForbidden,
  kWindow,
};

// One SDC scheduling attempt. The constraint system's least fixpoint
// (longest path from the implicit source) gives every op its earliest
// start `x_`; the binder walks the steps in order binding ready ops in
// priority order exactly like the list pass, but a failed step raises the
// op's lower bound and re-propagates it through the constraint graph, so
// dependent ops and II-window partners are never attempted at steps the
// system already excludes.
class SdcPass {
 public:
  SdcPass(const Problem& p,
          const std::vector<std::vector<SdcScheduler::Edge>>& out,
          const std::vector<std::vector<OpId>>& deps,
          const std::vector<std::vector<OpId>>& users,
          const std::vector<OpId>& port_next,
          const std::vector<int>& base_unmet, timing::TimingEngine& eng)
      : p_(p),
        dfg_(*p.dfg),
        out_(out),
        deps_(deps),
        users_(users),
        port_next_(port_next),
        eng_(eng) {
    placement_.assign(dfg_.size(), OpPlacement{});
    failed_.assign(dfg_.size(), false);
    unmet_ = base_unmet;
    avail_.assign(dfg_.size(), 0);
    priorities_ = compute_priorities(p_);
    rank_ = priority_ranks(p_, priorities_);
    order_.assign(p_.ops.size(), kNoOp);
    for (OpId id : p_.ops) order_[static_cast<std::size_t>(rank_[id])] = id;
    resource_base_ = p_.resources.instance_bases();
    total_instances_ = p_.resources.total_instances();
    num_slots_ = p_.pipeline.enabled ? p_.pipeline.ii : p_.num_steps;
    occ_.assign(static_cast<std::size_t>(total_instances_) *
                    static_cast<std::size_t>(num_slots_),
                {});
    inst_ops_.assign(static_cast<std::size_t>(total_instances_), 0);
    refusals_.assign(dfg_.size(), {});
    deferred_mark_.assign(dfg_.size(), 0);
    build_forbidden();
    solve_initial();
    build_ready();
  }

  PassOutcome run() {
    for (int e = 0; e < p_.num_steps; ++e) {
      begin_step(e);
      while (true) {
        const OpId best = pick_ready();
        if (best == kNoOp) break;
        if (try_bind(best, e)) {
          ++deferred_epoch_;  // retry deferred ops: new chaining chances
        } else if (e >= start_deadline(best)) {
          fatal(best, e);
        } else {
          deferred_mark_[best] = deferred_epoch_;
        }
      }
      end_step(e);
      sweep_missed_deadlines(e);
    }
    for (OpId id : p_.ops) {
      if (!placement_[id].scheduled && !failed_[id]) {
        fatal_no_states(id, p_.num_steps - 1);
      }
    }

    PassOutcome out;
    out.success = std::none_of(p_.ops.begin(), p_.ops.end(),
                               [&](OpId id) { return failed_[id]; });
    out.schedule.num_steps = p_.num_steps;
    out.schedule.pipeline = p_.pipeline;
    out.schedule.resources = p_.resources;
    out.schedule.placement = std::move(placement_);
    out.restraints = std::move(restraints_);
    out.failed_ops = std::move(failed_list_);
    if (out.success) {
      OpId worst_op = kNoOp;
      out.schedule.worst_slack_ps =
          finalize_timing(p_, out.schedule, eng_, &worst_op);
      if (out.schedule.worst_slack_ps < -1e-9 && !p_.accept_negative_slack) {
        // Mux growth after commit pushed a path over the clock period.
        out.success = false;
        Restraint r;
        r.kind = RestraintKind::kNegativeSlack;
        r.op = worst_op;
        r.step = out.schedule.placement[worst_op].step;
        r.pool = out.schedule.placement[worst_op].pool;
        r.slack_ps = out.schedule.worst_slack_ps;
        out.restraints.push_back(r);
        out.failed_ops.push_back(worst_op);
      }
    }
    return out;
  }

 private:
  // ---- The difference-constraint core ---------------------------------------

  /// Clamped add: x values saturate at num_steps ("no feasible start"),
  /// which also bounds propagation in the (driver-precluded) event of a
  /// positive cycle.
  int saturate(int v) const { return std::min(v, p_.num_steps); }

  /// Incremental Bellman-Ford longest path: relaxes from the seeded ops
  /// until the system is at its least fixpoint again. Appends every op
  /// whose bound rose to `changed` (when given).
  void relax(std::deque<OpId>& queue, std::vector<OpId>* changed) {
    while (!queue.empty()) {
      const OpId u = queue.front();
      queue.pop_front();
      in_queue_[u] = 0;
      for (const SdcScheduler::Edge& edge : out_[u]) {
        const int bound = saturate(x_[u] + edge.weight);
        if (bound <= x_[edge.to]) continue;
        // A committed op's start is final; constraints that would move it
        // cannot fire (its partners took the bound into account when it
        // was placed, and the window check at bind time guards the rest).
        if (placement_[edge.to].scheduled || failed_[edge.to]) continue;
        x_[edge.to] = bound;
        if (changed != nullptr) changed->push_back(edge.to);
        if (!in_queue_[edge.to]) {
          in_queue_[edge.to] = 1;
          queue.push_back(edge.to);
        }
      }
    }
  }

  void solve_initial() {
    x_.assign(dfg_.size(), 0);
    in_queue_.assign(dfg_.size(), 0);
    std::deque<OpId> queue;
    for (OpId id : p_.ops) {
      x_[id] = p_.release(id);
      in_queue_[id] = 1;
      queue.push_back(id);
    }
    relax(queue, nullptr);
  }

  /// Raises `id`'s lower bound to `step` and re-propagates. Changed ops
  /// whose bound now excludes them from the active set are re-bucketed at
  /// their new earliest step.
  void raise_bound(OpId id, int step) {
    if (x_[id] >= step) return;
    x_[id] = saturate(step);
    std::deque<OpId> queue{id};
    in_queue_[id] = 1;
    changed_scratch_.clear();
    relax(queue, &changed_scratch_);
    for (const OpId c : changed_scratch_) {
      if (placement_[c].scheduled || failed_[c]) continue;
      if (active_.erase(rank_[c]) > 0 || unmet_[c] == 0) enqueue(c);
    }
  }

  // ---- Readiness ------------------------------------------------------------

  int latency_of(OpId id) const { return pool_latency(p_, id); }

  /// Latest step at which execution may START (deadline on the result
  /// step minus the unit latency).
  int start_deadline(OpId id) const { return p_.deadline(id) - latency_of(id); }

  int slot_of(int step) const {
    return p_.pipeline.enabled ? step % p_.pipeline.ii : step;
  }

  void build_ready() {
    buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    deadline_buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    for (OpId id : p_.ops) {
      if (unmet_[id] == 0) enqueue(id);
      const int e0 = std::max(start_deadline(id), 0);
      if (e0 < p_.num_steps) {
        deadline_buckets_[static_cast<std::size_t>(e0)].push_back(id);
      }
    }
  }

  void enqueue(OpId id) {
    if (failed_[id] || placement_[id].scheduled || unmet_[id] != 0) return;
    // Earliest step the binder may still look at `id`: its constraint
    // bound, the availability of its committed dependences, and the
    // earliest undrained step — once a step has ended, its bucket has
    // been consumed, so re-bucketing there (e.g. from end_step's bound
    // propagation onto a just-erased active op) would silently drop the
    // op from every queue.
    const int floor_step = in_step_ ? current_step_ : current_step_ + 1;
    int act = std::max(avail_[id], x_[id]);
    if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
      // Anchored I/O may only be placed on its home step; a home step
      // that already ended means the op missed it (end-of-pass fatal).
      const int home = p_.spans.spans[id].asap;
      if (act > home || home < floor_step) return;
      act = home;
    }
    if (act < floor_step) act = floor_step;
    if (act >= p_.num_steps) return;  // beyond the last state
    if (act == current_step_ && in_step_) {
      insert_active(id);
    } else {
      buckets_[static_cast<std::size_t>(act)].push_back(id);
    }
  }

  void insert_active(OpId id) {
    active_.insert(rank_[id]);
    if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
      step_anchored_.push_back(id);
    }
  }

  void satisfy_dep(OpId u, int avail_step) {
    avail_[u] = std::max(avail_[u], avail_step);
    if (--unmet_[u] == 0) enqueue(u);
  }

  bool deps_available_by(OpId id, int e) const {
    return unmet_[id] == 0 && avail_[id] <= e;
  }

  void begin_step(int e) {
    current_step_ = e;
    in_step_ = true;
    ++deferred_epoch_;
    step_anchored_.clear();
    for (OpId id : buckets_[static_cast<std::size_t>(e)]) {
      if (placement_[id].scheduled || failed_[id]) continue;
      // A bucket entry was placed when the op's earliest step was `e`;
      // the bound only grows, so an entry whose bound moved is stale (a
      // newer entry exists at the later bucket).
      int act = std::max(avail_[id], x_[id]);
      if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
        const int home = p_.spans.spans[id].asap;
        if (act > home) continue;
        act = home;
      }
      if (act > e) continue;
      insert_active(id);
    }
  }

  void end_step(int e) {
    // Anchored ops are only eligible on their home step; everything else
    // that could not bind here gets its lower bound raised — this is how
    // resource conflicts enter the constraint system, and the propagation
    // moves dependents and window partners before they are attempted.
    for (OpId id : step_anchored_) active_.erase(rank_[id]);
    in_step_ = false;
    deferred_scratch_.clear();
    for (const int r : active_) {
      deferred_scratch_.push_back(order_[static_cast<std::size_t>(r)]);
    }
    for (OpId id : deferred_scratch_) {
      raise_bound(id, e + 1);
      if (x_[id] >= p_.num_steps) active_.erase(rank_[id]);
    }
  }

  OpId pick_ready() const {
    for (const int r : active_) {
      const OpId id = order_[static_cast<std::size_t>(r)];
      if (deferred_mark_[id] == deferred_epoch_) continue;
      return id;
    }
    return kNoOp;
  }

  // ---- Forbidden table ------------------------------------------------------

  void build_forbidden() {
    if (p_.forbidden.empty()) return;
    forbidden_.assign(dfg_.size() * static_cast<std::size_t>(total_instances_),
                      0);
    for (const auto& [op, pool, inst] : p_.forbidden) {
      if (pool < 0 || pool >= static_cast<int>(p_.resources.pools.size()) ||
          inst < 0 ||
          inst >= p_.resources.pools[static_cast<std::size_t>(pool)].count) {
        continue;
      }
      forbidden_[op * static_cast<std::size_t>(total_instances_) +
                 static_cast<std::size_t>(
                     resource_base_[static_cast<std::size_t>(pool)] + inst)] =
          1;
    }
  }

  bool is_forbidden(OpId id, int pool, int inst) const {
    if (forbidden_.empty()) return false;
    return forbidden_[id * static_cast<std::size_t>(total_instances_) +
                      static_cast<std::size_t>(
                          resource_base_[static_cast<std::size_t>(pool)] +
                          inst)] != 0;
  }

  // ---- Timing ---------------------------------------------------------------

  double operand_arrival(OpId d, int e) const {
    if (dfg_.is_const(d)) return 0;  // hard-wired constant
    if (!p_.in_region(d)) return p_.lib->reg_clk_to_q_ps();
    const OpPlacement& pl = placement_[d];
    HLS_ASSERT(pl.scheduled, "operand not scheduled");
    if (pl.step == e) return pl.arrival_ps;  // chained (or registered)
    return p_.lib->reg_clk_to_q_ps();
  }

  void gather_arrivals(OpId id, int e) {
    const Op& o = dfg_.op(id);
    arrivals_.clear();
    for (std::size_t i = 0; i < o.operands.size(); ++i) {
      if (o.kind == OpKind::kLoopMux && i == 1) continue;
      if (o.operands[i] == kNoOp) continue;
      arrivals_.push_back(operand_arrival(o.operands[i], e));
    }
    if (o.pred != kNoOp && o.no_speculate && p_.in_region(o.pred)) {
      arrivals_.push_back(operand_arrival(o.pred, e));
    }
  }

  bool pool_shared(int pool) const {
    return p_.pool_members(pool) >
           p_.resources.pools[static_cast<std::size_t>(pool)].count;
  }

  bool candidate_timing(int pool, int inst, int lat, double* arrival,
                        double* slack) {
    const auto& pdesc = p_.resources.pools[static_cast<std::size_t>(pool)];
    if (lat > 0) {
      // Multi-cycle: operands must be registered at execution start.
      for (double a : arrivals_) {
        if (a > p_.lib->reg_clk_to_q_ps() + 1e-9) {
          *slack = -1e18;  // not representable: needs registered inputs
          *arrival = 0;
          return false;
        }
      }
      *arrival = p_.lib->reg_clk_to_q_ps();  // registered result
      const double internal =
          p_.lib->fu_delay_into_cycle_ps(pdesc.cls) + p_.lib->reg_setup_ps();
      *slack = p_.tclk_ps - internal;
      return *slack >= -1e-9;
    }
    const bool shared = pool_shared(pool);
    const int n_ops =
        inst_ops_[static_cast<std::size_t>(
            resource_base_[static_cast<std::size_t>(pool)] + inst)] +
        1;
    pq_.cls = pdesc.cls;
    pq_.width = pdesc.width;
    pq_.in_mux_inputs = shared ? std::max(2, n_ops) : 0;
    pq_.out_mux_inputs = shared ? std::max(2, n_ops) : 0;
    *arrival = eng_.output_arrival_ps(pq_);
    *slack = eng_.register_slack_ps(*arrival);
    return *slack >= -1e-9;
  }

  // ---- Binding --------------------------------------------------------------

  struct Candidate {
    int instance = -1;
    double arrival = 0;
    double slack = 0;
  };

  bool scc_window_ok(OpId id, int result_step) const {
    if (!p_.pipeline.enabled) return true;
    const int scc = p_.scc_of[id];
    if (scc < 0) return true;
    int lo = result_step;
    int hi = result_step;
    for (OpId member : p_.sccs[static_cast<std::size_t>(scc)]) {
      if (member == id || !placement_[member].scheduled) continue;
      lo = std::min(lo, placement_[member].step);
      hi = std::max(hi, placement_[member].step);
    }
    return hi - lo <= p_.pipeline.ii - 1;
  }

  bool instance_free(OpId id, int pool, int inst, int e, int lat,
                     bool excl_pred_ready) const {
    const int g = resource_base_[static_cast<std::size_t>(pool)] + inst;
    const int span = std::max(1, lat);
    for (int s = e; s < e + span; ++s) {
      if (s >= p_.num_steps) return false;
      const auto& slot_ops =
          occ_[static_cast<std::size_t>(g) *
                   static_cast<std::size_t>(num_slots_) +
               static_cast<std::size_t>(slot_of(s))];
      for (OpId other : slot_ops) {
        if (!(p_.exclusive_colocation && p_.exclusive(id, other))) {
          return false;
        }
        if (!excl_pred_ready) return false;
      }
    }
    return true;
  }

  bool creates_comb_cycle(OpId id, int pool, int inst, int e) const {
    const int me = resource_base_[static_cast<std::size_t>(pool)] + inst;
    for (OpId d : deps_[id]) {
      const OpPlacement& pl = placement_[d];
      if (pl.step != e || pl.pool < 0) continue;  // only chained FU deps
      if (latency_of(d) > 0) continue;            // registered result
      const int from =
          resource_base_[static_cast<std::size_t>(pl.pool)] + pl.instance;
      if (comb_graph_.would_create_cycle(from, me)) return true;
    }
    return false;
  }

  bool try_bind(OpId id, int e) {
    const int pool = p_.resources.pool_of(id);
    if (pool < 0) return bind_free(id, e);

    const auto& pdesc = p_.resources.pools[static_cast<std::size_t>(pool)];
    const int lat = pdesc.latency_cycles;
    if (lat > 0 && p_.pipeline.enabled && lat > p_.pipeline.ii) {
      // A multi-cycle unit cannot be rebooked every II cycles.
      note_refusal(id, e, pool, -1, RefuseCause::kBusy);
      return false;
    }
    if (e + lat >= p_.num_steps) {
      // The registered result would land past the last state.
      note_refusal(id, e, pool, -1, RefuseCause::kBusy);
      return false;
    }
    if (!scc_window_ok(id, e + lat)) {
      note_refusal(id, e, pool, -1, RefuseCause::kWindow);
      return false;
    }

    gather_arrivals(id, e);
    pq_.operand_arrivals_ps = arrivals_;  // one copy for all candidates
    const Op& o = dfg_.op(id);
    const bool excl_pred_ready =
        o.pred != kNoOp && p_.in_region(o.pred) &&
        placement_[o.pred].scheduled && placement_[o.pred].step <= e;

    std::vector<Candidate> feasible_negative;
    for (int inst = 0; inst < pdesc.count; ++inst) {
      if (is_forbidden(id, pool, inst)) {
        note_refusal(id, e, pool, inst, RefuseCause::kForbidden);
        continue;
      }
      if (!instance_free(id, pool, inst, e, lat, excl_pred_ready)) {
        note_refusal(id, e, pool, inst, RefuseCause::kBusy);
        continue;
      }
      if (p_.avoid_comb_cycles && creates_comb_cycle(id, pool, inst, e)) {
        note_refusal(id, e, pool, inst, RefuseCause::kCycle);
        continue;
      }
      double arrival = 0;
      double slack = 0;
      if (!candidate_timing(pool, inst, lat, &arrival, &slack)) {
        note_refusal(id, e, pool, inst, RefuseCause::kSlack, slack);
        if (slack > -1e17) {
          feasible_negative.push_back({inst, arrival, slack});
        }
        continue;
      }
      commit(id, pool, inst, e, lat, arrival);
      return true;
    }
    if (p_.accept_negative_slack && !feasible_negative.empty()) {
      // Last-resort mode: take the least-negative binding; logic
      // synthesis recovers the slack with area (Table 4's mechanism).
      auto best = std::max_element(
          feasible_negative.begin(), feasible_negative.end(),
          [](const Candidate& a, const Candidate& b) {
            return a.slack < b.slack;
          });
      commit(id, pool, best->instance, e, lat, best->arrival);
      return true;
    }
    return false;
  }

  bool bind_free(OpId id, int e) {
    const Op& o = dfg_.op(id);
    if (!scc_window_ok(id, e)) {
      note_refusal(id, e, -1, -1, RefuseCause::kWindow);
      return false;
    }
    if (o.kind == OpKind::kWrite) {
      for (OpId other : p_.port_writes[o.port]) {
        if (other == id || !placement_[other].scheduled) continue;
        const int other_slot = slot_of(placement_[other].step);
        if (other_slot == slot_of(e) &&
            !(p_.exclusive_colocation && p_.exclusive(id, other))) {
          note_refusal(id, e, -1, -1, RefuseCause::kBusy);
          return false;
        }
      }
    }
    gather_arrivals(id, e);
    timing::PathQuery q;
    q.operand_arrivals_ps = arrivals_;
    q.cls = FuClass::kNone;
    const double arrival =
        o.kind == OpKind::kRead ? p_.lib->reg_clk_to_q_ps()
                                : eng_.output_arrival_ps(q);
    const double slack = eng_.register_slack_ps(arrival);
    if (slack < -1e-9 && !p_.accept_negative_slack) {
      note_refusal(id, e, -1, -1, RefuseCause::kSlack, slack);
      return false;
    }
    commit(id, -1, -1, e, 0, arrival);
    return true;
  }

  void commit(OpId id, int pool, int inst, int e, int lat, double arrival) {
    OpPlacement& pl = placement_[id];
    pl.scheduled = true;
    pl.step = e + lat;
    pl.pool = pool;
    pl.instance = inst;
    pl.arrival_ps = arrival;
    if (pool >= 0) {
      const int g = resource_base_[static_cast<std::size_t>(pool)] + inst;
      const int span = std::max(1, lat);
      for (int s = e; s < e + span; ++s) {
        occ_[static_cast<std::size_t>(g) *
                 static_cast<std::size_t>(num_slots_) +
             static_cast<std::size_t>(slot_of(s))]
            .push_back(id);
      }
      ++inst_ops_[static_cast<std::size_t>(g)];
      if (lat == 0) {
        for (OpId d : deps_[id]) {
          const OpPlacement& dp = placement_[d];
          if (dp.step == e + lat && dp.pool >= 0 && latency_of(d) == 0) {
            comb_graph_.add_edge(
                resource_base_[static_cast<std::size_t>(dp.pool)] +
                    dp.instance,
                g);
          }
        }
      }
    }
    active_.erase(rank_[id]);
    // Release consumers (chaining allows the commit step itself;
    // otherwise the step after, unless the result is registered).
    const double thresh = p_.lib->reg_clk_to_q_ps() + 1e-9;
    const int res_avail = p_.enable_chaining
                              ? pl.step
                              : pl.step + (arrival <= thresh ? 0 : 1);
    for (OpId u : users_[id]) satisfy_dep(u, res_avail);
    if (port_next_[id] != kNoOp) satisfy_dep(port_next_[id], pl.step);
  }

  // ---- Failure bookkeeping --------------------------------------------------

  void note_refusal(OpId id, int e, int pool, int inst, RefuseCause cause,
                    double slack = 0) {
    refusals_[id].push_back({e, pool, inst, cause, slack});
  }

  void fatal(OpId id, int e) {
    failed_[id] = true;
    failed_list_.push_back(id);
    active_.erase(rank_[id]);
    // Aggregate the refusal causes at the deadline step into restraints,
    // mirroring the list pass's vocabulary so the expert reasons the same
    // way about either backend's failures.
    const auto& refusals = refusals_[id];
    int busy = 0;
    int cycle_pool = -1;
    int cycle_inst = -1;
    double best_slack = -1e18;
    bool slack_seen = false;
    bool window_seen = false;
    int pool = -1;
    for (const auto& r : refusals) {
      if (r.step != e) continue;
      pool = std::max(pool, r.pool);
      switch (r.cause) {
        case RefuseCause::kBusy: ++busy; break;
        case RefuseCause::kForbidden: ++busy; break;
        case RefuseCause::kSlack:
          slack_seen = true;
          best_slack = std::max(best_slack, r.slack);
          break;
        case RefuseCause::kCycle:
          cycle_pool = r.pool;
          cycle_inst = r.instance;
          break;
        case RefuseCause::kWindow: window_seen = true; break;
      }
    }
    if (busy > 0) {
      Restraint r;
      r.kind = RestraintKind::kNoResource;
      r.op = id;
      r.step = e;
      r.pool = pool;
      r.weight = busy;
      restraints_.push_back(r);
    }
    if (slack_seen) {
      Restraint r;
      r.kind = RestraintKind::kNegativeSlack;
      r.op = id;
      r.step = e;
      r.pool = pool;
      r.slack_ps = best_slack;
      r.scc = p_.pipeline.enabled ? p_.scc_of[id] : -1;
      restraints_.push_back(r);
    }
    if (busy > 0 || slack_seen) {
      // Fan-in cone analysis (paper IV.B): blame congestion-delayed
      // chained producers with decayed weight.
      for (OpId d : deps_[id]) {
        const OpPlacement& dp = placement_[d];
        if (!dp.scheduled || dp.step != e || dp.pool < 0) continue;
        if (dp.arrival_ps <= p_.lib->reg_clk_to_q_ps() + 1e-9) continue;
        if (p_.spans.spans[d].asap >= dp.step) continue;
        Restraint r;
        r.kind = RestraintKind::kNegativeSlack;
        r.op = d;
        r.step = e;
        r.pool = dp.pool;
        r.slack_ps = best_slack;
        r.scc = p_.pipeline.enabled ? p_.scc_of[d] : -1;
        r.weight = 0.5;
        restraints_.push_back(r);
      }
    }
    if (cycle_pool >= 0) {
      Restraint r;
      r.kind = RestraintKind::kCombCycle;
      r.op = id;
      r.step = e;
      r.pool = cycle_pool;
      r.instance = cycle_inst;
      restraints_.push_back(r);
    }
    if (window_seen) {
      Restraint r;
      r.kind = RestraintKind::kSccWindow;
      r.op = id;
      r.step = e;
      r.scc = p_.scc_of[id];
      restraints_.push_back(r);
    }
  }

  bool depends_on_failure(OpId id) const {
    for (OpId d : deps_[id]) {
      if (failed_[d]) return true;
    }
    return false;
  }

  void fatal_no_states(OpId id, int e) {
    if (failed_[id]) return;  // already reported
    failed_[id] = true;
    failed_list_.push_back(id);
    active_.erase(rank_[id]);
    Restraint r;
    r.kind = RestraintKind::kNoStates;
    r.op = id;
    r.step = e;
    r.scc = p_.pipeline.enabled ? p_.scc_of[id] : -1;
    r.weight = depends_on_failure(id) ? 0.25 : 1.0;
    restraints_.push_back(r);
  }

  /// Ops whose deadline passed while their dependences never became
  /// ready (including dependences on already-failed ops).
  void sweep_missed_deadlines(int e) {
    for (OpId id : deadline_buckets_[static_cast<std::size_t>(e)]) {
      if (placement_[id].scheduled || failed_[id]) continue;
      if (!deps_available_by(id, e)) fatal_no_states(id, e);
    }
  }

  struct Refusal {
    int step;
    int pool;
    int instance;
    RefuseCause cause;
    double slack;
  };

  const Problem& p_;
  const ir::Dfg& dfg_;
  const std::vector<std::vector<SdcScheduler::Edge>>& out_;
  const std::vector<std::vector<OpId>>& deps_;
  const std::vector<std::vector<OpId>>& users_;
  const std::vector<OpId>& port_next_;
  timing::TimingEngine& eng_;

  std::vector<OpPlacement> placement_;
  std::vector<bool> failed_;
  std::vector<OpId> failed_list_;
  std::vector<Priority> priorities_;
  std::vector<int> rank_;
  std::vector<OpId> order_;
  std::vector<int> unmet_;
  std::vector<int> avail_;
  std::vector<int> x_;          ///< constraint lower bound per op (start step)
  std::vector<char> in_queue_;  ///< Bellman-Ford work-queue membership
  std::vector<OpId> changed_scratch_;
  std::vector<OpId> deferred_scratch_;
  std::vector<std::vector<OpId>> buckets_;
  std::vector<std::vector<OpId>> deadline_buckets_;
  std::set<int> active_;
  std::vector<OpId> step_anchored_;
  std::vector<std::uint32_t> deferred_mark_;
  std::uint32_t deferred_epoch_ = 1;
  /// -1 until the first begin_step, so pre-pass enqueues (build_ready)
  /// land in bucket 0 rather than being floored past it.
  int current_step_ = -1;
  bool in_step_ = false;
  std::vector<int> resource_base_;
  int total_instances_ = 0;
  int num_slots_ = 1;
  std::vector<std::vector<OpId>> occ_;
  std::vector<int> inst_ops_;
  std::vector<char> forbidden_;
  std::vector<double> arrivals_;
  timing::PathQuery pq_;
  timing::CombCycleGraph comb_graph_;
  std::vector<Restraint> restraints_;
  std::vector<std::vector<Refusal>> refusals_;
};

}  // namespace

PassOutcome SdcScheduler::run_pass(timing::TimingEngine& eng,
                                   const WarmStart* warm) {
  (void)warm;  // SDC passes are not warm-started (warm_startable() = false)
  SdcPass pass(problem_, out_, deps_, users_, port_next_, base_unmet_, eng);
  return pass.run();
}

}  // namespace hls::sched
