#include "sched/priority.hpp"

#include <algorithm>

#include "ir/analysis.hpp"

namespace hls::sched {

std::vector<Priority> compute_priorities(const Problem& p) {
  const ir::Dfg& dfg = *p.dfg;
  std::vector<int> local_cones;
  const std::vector<int>* cones = &p.fanout_cones;
  if (cones->empty()) {
    local_cones = ir::fanout_cone_sizes(dfg);
    cones = &local_cones;
  }
  std::vector<Priority> out(dfg.size());
  for (ir::OpId id : p.ops) {
    Priority pr;
    pr.op = id;
    pr.mobility = p.spans.spans[id].mobility();
    pr.fanout_cone = (*cones)[id];
    const tech::FuClass cls = tech::fu_class_for(dfg, id);
    pr.complexity =
        cls == tech::FuClass::kNone
            ? 0
            : p.lib->fu_delay_ps(cls, tech::resource_width_for(dfg, id));
    out[id] = pr;
  }
  return out;
}

std::vector<int> priority_ranks(const Problem& p,
                                const std::vector<Priority>& priorities) {
  std::vector<ir::OpId> order = p.ops;
  std::sort(order.begin(), order.end(), [&](ir::OpId a, ir::OpId b) {
    return priorities[a].before(priorities[b]);
  });
  std::vector<int> rank(p.dfg->size(), static_cast<int>(p.dfg->size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<int>(i);
  }
  return rank;
}

PriorityOrder compute_priority_order(const Problem& p) {
  PriorityOrder po;
  po.rank = priority_ranks(p, compute_priorities(p));
  po.order.assign(p.ops.size(), ir::kNoOp);
  for (ir::OpId id : p.ops) {
    po.order[static_cast<std::size_t>(po.rank[id])] = id;
  }
  return po;
}

}  // namespace hls::sched
