#include "sched/priority.hpp"

#include "ir/analysis.hpp"

namespace hls::sched {

std::vector<Priority> compute_priorities(const Problem& p) {
  const ir::Dfg& dfg = *p.dfg;
  const auto cones = ir::fanout_cone_sizes(dfg);
  std::vector<Priority> out(dfg.size());
  for (ir::OpId id : p.ops) {
    Priority pr;
    pr.op = id;
    pr.mobility = p.spans.spans[id].mobility();
    pr.fanout_cone = cones[id];
    const tech::FuClass cls = tech::fu_class_for(dfg, id);
    pr.complexity =
        cls == tech::FuClass::kNone
            ? 0
            : p.lib->fu_delay_ps(cls, tech::resource_width_for(dfg, id));
    out[id] = pr;
  }
  return out;
}

}  // namespace hls::sched
