// The constrained scheduling problem handed to the pass scheduler, and
// mutated by the expert system between passes (states added, resources
// added, bindings forbidden, SCC windows moved).
#pragma once

#include <set>
#include <tuple>
#include <vector>

#include "alloc/estimate.hpp"
#include "alloc/lifespan.hpp"
#include "mem/memory.hpp"
#include "sched/schedule.hpp"
#include "tech/library.hpp"

namespace hls::sched {

struct Problem {
  const ir::Dfg* dfg = nullptr;
  const tech::Library* lib = nullptr;
  double tclk_ps = 0;

  ir::LinearRegion region;       ///< program-order home view
  std::vector<ir::OpId> ops;     ///< region ops, program order
  int num_steps = 1;             ///< current latency attempt (LI)
  alloc::ResourceSet resources;  ///< pools with instance counts
  PipelineConfig pipeline;

  // Feature switches (paper features + ablations).
  bool anchor_io = false;          ///< timed region: pin I/O to home steps
  bool enable_chaining = true;     ///< IV.B.2
  bool avoid_comb_cycles = true;   ///< IV.B.3
  bool exclusive_colocation = true;  ///< predicate-exclusive sharing
  /// Last-resort relaxation: accept negative slack instead of failing
  /// (the Table 4 ablation path; synthesis recovers the slack with area).
  bool accept_negative_slack = false;

  // Pipelining state (paper Section V).
  std::vector<std::vector<ir::OpId>> sccs;  ///< region-restricted SCCs
  std::vector<int> scc_of;                  ///< per OpId; -1 = none
  std::vector<int> scc_window_start;        ///< per SCC; -1 = unpinned
  std::vector<int> scc_move_count;          ///< MoveScc applications per SCC

  /// Bindings forbidden by comb-cycle restraints: (op, pool, instance).
  /// Small and expert-mutated; each pass flattens it into a dense per-op x
  /// per-instance table before entering the binding loops.
  std::set<std::tuple<ir::OpId, int, int>> forbidden;

  /// Mutual exclusivity over the region ops, precomputed once at build
  /// (alloc::mutually_exclusive re-derived per query was an inner-loop
  /// cost of instance_free).
  alloc::ExclusivityMatrix excl;
  bool exclusive(ir::OpId a, ir::OpId b) const { return excl.exclusive(a, b); }

  /// Per port: write ops in program order (ordering constraint).
  std::vector<std::vector<ir::OpId>> port_writes;

  /// Memory constraint family (nullptr = none; see docs/MEMORY.md). Pool
  /// geometry for the arrays lives on the `is_memory` ResourcePools; the
  /// tables below carry the per-op placement and current window state the
  /// expert system mutates between passes (re-bank moves elements across
  /// banks, widen-window raises mem_window_max).
  const mem::MemorySpec* memory = nullptr;
  std::vector<int> mem_bank_of;     ///< per OpId; -1 = not a memory access
  std::vector<int> mem_window_min;  ///< per OpId; -1 = unwindowed
  std::vector<int> mem_window_max;  ///< per OpId; -1 = unwindowed

  bool has_memory() const { return memory != nullptr; }
  int window_max_of(ir::OpId id) const {
    return mem_window_max.empty() ? -1
                                  : mem_window_max[static_cast<std::size_t>(id)];
  }
  int mem_bank(ir::OpId id) const {
    return mem_bank_of.empty() ? -1
                               : mem_bank_of[static_cast<std::size_t>(id)];
  }

  /// Fanout cone sizes (static per DFG), cached so per-pass priority
  /// recomputation only redoes the span-dependent mobility part.
  std::vector<int> fanout_cones;

  /// Region ops per resource pool (indexed like resources.pools). Pool
  /// membership is static per problem — only instance counts change — so
  /// the expert's cost model reads these instead of rescanning `ops` for
  /// every restraint pool (`pool_member_count` was a per-restraint O(n)
  /// walk once passes became cheap).
  std::vector<int> pool_member_counts;
  int pool_members(int pool) const {
    return pool < 0 ? 0 : pool_member_counts[static_cast<std::size_t>(pool)];
  }

  /// Life spans for the current num_steps (refresh after changing it).
  alloc::LifespanResult spans;

  bool in_region(ir::OpId id) const {
    return id < spans.spans.size() && spans.spans[id].in_region;
  }
  /// Latency in cycles of the op's resource pool (0 for ops that need no
  /// function unit). Both scheduler backends and the binding engine key
  /// start-deadline and result-step arithmetic off this.
  int pool_latency(ir::OpId id) const {
    const int pool = resources.pool_of(id);
    if (pool < 0) return 0;
    return resources.pools[static_cast<std::size_t>(pool)].latency_cycles;
  }
  /// Effective deadline step for an op (ALAP clamped by its SCC window).
  int deadline(ir::OpId id) const;
  /// Earliest step for an op (ASAP clamped by its SCC window).
  int release(ir::OpId id) const;
};

/// Assembles a Problem: clusters + estimates resources (using the latency
/// bound maximum, per the paper), computes SCCs for pipelined regions, and
/// fills derived tables. `num_ports` sizes the port-order tables.
Problem build_problem(const ir::Dfg& dfg, const ir::LinearRegion& region,
                      ir::LatencyBound latency, const tech::Library& lib,
                      double tclk_ps, PipelineConfig pipeline,
                      std::size_t num_ports, bool anchor_io,
                      bool use_mutual_exclusivity,
                      const mem::MemorySpec* memory = nullptr);

/// Recomputes `spans` for the current num_steps (and window tables).
void refresh_spans(Problem& p);

/// Recomputes `mem_bank_of` for the ops of memory pool `pool` from the
/// pool's current bank count (after the expert's re-bank action).
void refresh_memory_banks(Problem& p, int pool);

/// Minimum number of states the SCC's internal dependence chain needs with
/// all external inputs registered (optimistic chaining, no sharing muxes).
/// This is the recurrence bound: if it exceeds II, no window placement can
/// satisfy the paper's SCC-within-II-states condition.
int scc_min_states(const Problem& p, const std::vector<ir::OpId>& scc);

}  // namespace hls::sched
