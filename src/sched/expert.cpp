#include "sched/expert.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace hls::sched {

using ir::kNoOp;
using ir::OpId;

const char* action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::kAddState: return "add-state";
    case ActionKind::kAddResource: return "add-resource";
    case ActionKind::kForbidBinding: return "forbid-binding";
    case ActionKind::kMoveScc: return "move-scc";
    case ActionKind::kAcceptSlack: return "accept-negative-slack";
    case ActionKind::kAddMemPort: return "add-mem-port";
    case ActionKind::kRebank: return "re-bank";
    case ActionKind::kWidenWindow: return "widen-window";
  }
  return "?";
}

std::string Action::to_string(const Problem& p) const {
  std::string s = action_kind_name(kind);
  switch (kind) {
    case ActionKind::kAddState:
      s += strf(" -> ", p.num_steps + amount, " states");
      break;
    case ActionKind::kAddResource:
      s += strf(" ", p.resources.pools[static_cast<std::size_t>(pool)].name,
                " -> ",
                p.resources.pools[static_cast<std::size_t>(pool)].count +
                    amount,
                " instances");
      break;
    case ActionKind::kForbidBinding:
      s += strf(" op=%", op, " on ",
                p.resources.pools[static_cast<std::size_t>(pool)].name, "[",
                instance, "]");
      break;
    case ActionKind::kMoveScc:
      s += strf(" scc=", scc, " window -> s", window_start + 1);
      break;
    case ActionKind::kAcceptSlack:
      break;
    case ActionKind::kAddMemPort:
      s += strf(" ", p.resources.pools[static_cast<std::size_t>(pool)].name,
                " -> ",
                p.resources.pools[static_cast<std::size_t>(pool)]
                        .ports_per_bank() +
                    amount,
                " ports/bank");
      break;
    case ActionKind::kRebank:
      s += strf(" ", p.resources.pools[static_cast<std::size_t>(pool)].name,
                " -> ",
                p.resources.pools[static_cast<std::size_t>(pool)].banks * 2,
                " banks");
      break;
    case ActionKind::kWidenWindow:
      s += strf(" port=", port, " max -> s", window_start + 1);
      break;
  }
  s += strf(" (gain=", fmt_fixed(gain, 2), " cost=", fmt_fixed(cost, 2), ")");
  return s;
}

namespace {

/// Checks whether `op` would meet timing on a hypothetical instance of its
/// pool at the restraint's step, after adding `extra` instances. Returns
/// the hypothesis verdict. This is how the expert knows that "adding one
/// more multiplier does not help because two multiplications cannot fit in
/// the given clock cycle" (paper, Example 1, second pass).
bool helps_timing_with_instances(const Problem& p, const PassOutcome& outcome,
                                 OpId op, int step, int extra,
                                 timing::TimingEngine& eng) {
  const ir::Dfg& dfg = *p.dfg;
  const int pool = p.resources.pool_of(op);
  if (pool < 0) return false;
  const auto& pdesc = p.resources.pools[static_cast<std::size_t>(pool)];
  if (pdesc.latency_cycles > 0) return true;  // registered: timing is fixed
  const ir::Op& o = dfg.op(op);
  std::vector<double> arrivals;
  for (std::size_t i = 0; i < o.operands.size(); ++i) {
    if (o.kind == ir::OpKind::kLoopMux && i == 1) continue;
    const OpId d = o.operands[i];
    if (d == kNoOp) continue;
    if (dfg.is_const(d)) {
      arrivals.push_back(0);
    } else if (!p.in_region(d) || !outcome.schedule.placement[d].scheduled ||
               outcome.schedule.placement[d].step != step) {
      arrivals.push_back(p.lib->reg_clk_to_q_ps());
    } else {
      arrivals.push_back(outcome.schedule.placement[d].arrival_ps);
    }
  }
  const bool still_shared = p.pool_members(pool) > pdesc.count + extra;
  timing::PathQuery q;
  q.operand_arrivals_ps = arrivals;
  q.cls = pdesc.cls;
  q.width = pdesc.width;
  q.in_mux_inputs = still_shared ? 2 : 0;
  q.out_mux_inputs = still_shared ? 2 : 0;
  return eng.register_slack_ps(eng.output_arrival_ps(q)) >= -1e-9;
}

}  // namespace

ExpertDecision choose_action(const Problem& p, const PassOutcome& outcome,
                             const ExpertOptions& opts,
                             timing::TimingEngine& eng) {
  std::vector<Action> candidates;
  std::string narration;

  const bool can_add_state = p.num_steps < opts.latency.max;

  // --- AddState: benefits essentially every restraint kind. ----------------
  if (can_add_state) {
    Action a;
    a.kind = ActionKind::kAddState;
    a.cost = 1.0;
    // Scale the number of added states by the failure volume: each new
    // state absorbs roughly one op per resource instance, so large designs
    // converge in a few passes while Example-1-sized ones keep the paper's
    // one-state-at-a-time narrative.
    std::set<OpId> failed;
    for (const Restraint& r : outcome.restraints) {
      if (r.op != kNoOp) failed.insert(r.op);
    }
    const int capacity = std::max(1, p.resources.total_instances());
    a.amount = std::clamp(
        static_cast<int>(failed.size()) / capacity, 1,
        std::max(1, opts.latency.max - p.num_steps));
    for (const Restraint& r : outcome.restraints) {
      switch (r.kind) {
        case RestraintKind::kNoResource:
        case RestraintKind::kNegativeSlack:
        case RestraintKind::kNoStates:
          // SCC members are capped by their II window, which extra states
          // cannot widen; moving the window is the right lever for them.
          a.gain += r.scc >= 0 ? 0.25 * r.weight : r.weight;
          break;
        case RestraintKind::kSccWindow:
          // More states do not widen an II-bounded window.
          break;
        case RestraintKind::kCombCycle:
          a.gain += 0.25 * r.weight;  // more room sometimes sidesteps it
          break;
        case RestraintKind::kBankConflict:
        case RestraintKind::kPortPressure:
          // Sequential regions: extra states spread the accesses over more
          // steps. In a pipelined kernel every II-slot repeats, so states
          // add no port bandwidth there (same SCC-style cap).
          a.gain += p.pipeline.enabled ? 0 : r.weight;
          break;
        case RestraintKind::kWindowMiss:
          break;  // extra states cannot reopen an absolute window
      }
    }
    if (a.gain > 0) candidates.push_back(a);
  }

  // --- AddResource per pool. -------------------------------------------------
  std::map<int, Action> add_resource;
  for (const Restraint& r : outcome.restraints) {
    if (r.pool < 0) continue;
    const auto& pdesc = p.resources.pools[static_cast<std::size_t>(r.pool)];
    // Memory pools keep the banks x ports_per_bank invariant; only the
    // dedicated memory actions below may grow them.
    if (pdesc.is_memory) continue;
    auto& a = add_resource[r.pool];
    a.kind = ActionKind::kAddResource;
    a.pool = r.pool;
    // Cost scales with silicon: a multiplier is much more expensive than a
    // comparator (normalized so a 32-bit adder costs about 1).
    a.cost = std::max(0.25, p.lib->fu_area(pdesc.cls, pdesc.width) /
                                p.lib->fu_area(tech::FuClass::kAdder, 32));
    // First hypothesis: one extra instance. If sharing muxes are the real
    // problem, a bigger amount that fully unshares the pool may be the
    // only fix; amortize its cost over the added instances.
    const int unshare_amount = std::max(1, p.pool_members(r.pool) - pdesc.count);
    switch (r.kind) {
      case RestraintKind::kNoResource:
        if (helps_timing_with_instances(p, outcome, r.op, r.step, 1, eng)) {
          a.gain += r.weight;
        } else if (helps_timing_with_instances(p, outcome, r.op, r.step,
                                               unshare_amount, eng)) {
          a.amount = std::max(a.amount, unshare_amount);
          a.gain += r.weight;
        }
        break;
      case RestraintKind::kNegativeSlack:
        // Extra instances reduce sharing-mux depth; credit only when the
        // hypothetical timing works out.
        if (helps_timing_with_instances(p, outcome, r.op, r.step, 1, eng)) {
          a.gain += 0.5 * r.weight;
        } else if (helps_timing_with_instances(p, outcome, r.op, r.step,
                                               unshare_amount, eng)) {
          a.amount = std::max(a.amount, unshare_amount);
          a.gain += 0.5 * r.weight;
        }
        break;
      case RestraintKind::kCombCycle:
        a.gain += 0.5 * r.weight;
        break;
      default:
        break;
    }
  }
  for (auto& [pool, a] : add_resource) {
    a.cost *= a.amount;  // cost scales with the instances added
  }
  for (auto& [pool, a] : add_resource) {
    if (a.gain > 0) candidates.push_back(a);
  }

  // --- Memory family: add a port per bank, re-bank, widen a window. --------
  // Port pressure reads as "every bank saturated" (more ports per bank is
  // the direct lever), bank conflicts as "my bank saturated while another
  // idled" (re-placement is the direct lever, an extra port the indirect
  // one), window misses as "the contract closed too early" (only widening
  // helps, and only where the spec permits it).
  {
    std::map<int, Action> add_port;  // keyed by pool
    std::map<int, Action> rebank;    // keyed by pool
    std::map<int, Action> widen;     // keyed by module port
    const double adder_area = p.lib->fu_area(tech::FuClass::kAdder, 32);
    for (const Restraint& r : outcome.restraints) {
      if (!is_memory_restraint(r.kind) || p.memory == nullptr) continue;
      if (r.kind == RestraintKind::kWindowMiss) {
        if (r.op == kNoOp || r.op >= p.dfg->size()) continue;
        const ir::Op& o = p.dfg->op(r.op);
        const mem::WindowSpec* w = nullptr;
        for (const mem::WindowSpec& ws : p.memory->windows) {
          if (ws.port == static_cast<int>(o.port)) w = &ws;
        }
        if (w == nullptr || w->max_step_limit < 0) continue;  // hard contract
        const int cur = p.mem_window_max[r.op];
        if (cur < 0 || cur >= w->max_step_limit) continue;  // exhausted
        // Jump to the op's chain-feasible result step, but always make
        // progress by at least one step; never past the contract limit.
        const int target = std::min(
            w->max_step_limit,
            std::max(cur + 1, p.spans.spans[r.op].asap + p.pool_latency(r.op)));
        auto& a = widen[o.port];
        a.kind = ActionKind::kWidenWindow;
        a.port = o.port;
        a.window_start = std::max(a.window_start, target);
        a.cost = 0.5;
        a.gain += r.weight;
        continue;
      }
      if (r.pool < 0) continue;
      const auto& pdesc = p.resources.pools[static_cast<std::size_t>(r.pool)];
      if (!pdesc.is_memory) continue;
      const mem::ArraySpec& spec =
          p.memory->arrays[static_cast<std::size_t>(pdesc.mem_array)];
      const double port_area =
          p.lib->fu_area(tech::FuClass::kMemPort, pdesc.width);
      if (pdesc.ports_per_bank() < spec.max_ports_per_bank) {
        auto& a = add_port[r.pool];
        a.kind = ActionKind::kAddMemPort;
        a.pool = r.pool;
        a.amount = 1;
        // One new RW port in every bank.
        a.cost = std::max(0.25, pdesc.banks * port_area / adder_area);
        a.gain +=
            r.kind == RestraintKind::kPortPressure ? r.weight : 0.5 * r.weight;
      }
      if (pdesc.banks * 2 <= spec.max_banks) {
        auto& a = rebank[r.pool];
        a.kind = ActionKind::kRebank;
        a.pool = r.pool;
        // Doubling the banks duplicates the whole port array.
        a.cost = std::max(
            0.25, pdesc.banks * pdesc.ports_per_bank() * port_area / adder_area);
        a.gain += r.kind == RestraintKind::kBankConflict ? r.weight
                                                         : 0.25 * r.weight;
      }
    }
    for (auto& [pool, a] : add_port) {
      if (a.gain > 0) candidates.push_back(a);
    }
    for (auto& [pool, a] : rebank) {
      if (a.gain > 0) candidates.push_back(a);
    }
    for (auto& [port, a] : widen) {
      if (a.gain > 0) candidates.push_back(a);
    }
  }

  // --- ForbidBinding for combinational cycles. ---------------------------------
  for (const Restraint& r : outcome.restraints) {
    if (r.kind != RestraintKind::kCombCycle) continue;
    Action a;
    a.kind = ActionKind::kForbidBinding;
    a.op = r.op;
    a.pool = r.pool;
    a.instance = r.instance;
    a.cost = 0.3;
    a.gain = r.weight;
    candidates.push_back(a);
  }

  // --- MoveScc (the Section V relaxation; ablated in Table 4). ------------------
  if (opts.enable_move_scc && p.pipeline.enabled) {
    std::map<int, Action> move;
    for (const Restraint& r : outcome.restraints) {
      if (r.scc < 0) continue;
      // Window alignments repeat modulo II; once a few full phases have
      // been tried, sliding further cannot help and other levers (adding
      // resources to break sharing-mux delays) must take over.
      if (p.scc_move_count[static_cast<std::size_t>(r.scc)] >
          p.pipeline.ii + 2) {
        continue;
      }
      if (r.kind != RestraintKind::kNegativeSlack &&
          r.kind != RestraintKind::kSccWindow &&
          r.kind != RestraintKind::kNoStates) {
        continue;
      }
      // Current effective window start: pinned value or the earliest
      // placed member from the failed pass.
      int cur = p.scc_window_start[static_cast<std::size_t>(r.scc)];
      if (cur < 0) {
        cur = p.num_steps;
        for (OpId id : p.sccs[static_cast<std::size_t>(r.scc)]) {
          const auto& pl = outcome.schedule.placement[id];
          if (pl.scheduled) cur = std::min(cur, pl.step);
        }
        if (cur == p.num_steps) cur = 0;
      }
      // Jump far enough that the failed member fits at its chain-feasible
      // step (ASAP), but always make progress by at least one step.
      int target = cur + 1;
      if (r.op != kNoOp && r.op < p.spans.spans.size()) {
        target = std::max(target,
                          p.spans.spans[r.op].asap - p.pipeline.ii + 1);
      }
      if (target + p.pipeline.ii - 1 > p.num_steps - 1) continue;  // no room
      auto& a = move[r.scc];
      a.kind = ActionKind::kMoveScc;
      a.scc = r.scc;
      a.window_start = std::max(a.window_start, target);
      a.cost = 0.5;
      a.gain += r.weight;
    }
    for (auto& [scc, a] : move) candidates.push_back(a);
  }

  // --- AcceptSlack: strictly a last resort. --------------------------------------
  // Applicable when the remaining failures are timing-shaped: negative
  // slack, SCC windows that only close with a slack compromise, and their
  // downstream no-states cascade.
  const bool slack_shaped = std::any_of(
      outcome.restraints.begin(), outcome.restraints.end(),
      [](const Restraint& r) {
        return r.kind == RestraintKind::kNegativeSlack ||
               r.kind == RestraintKind::kSccWindow;
      });
  if (opts.allow_accept_slack && !p.accept_negative_slack &&
      candidates.empty() && slack_shaped && !outcome.restraints.empty()) {
    Action a;
    a.kind = ActionKind::kAcceptSlack;
    a.cost = 100.0;
    a.gain = 1.0;
    candidates.push_back(a);
  }

  ExpertDecision d;
  if (candidates.empty()) {
    d.narration = "expert: no applicable relaxation (overconstrained)";
    return d;
  }
  auto best = std::max_element(
      candidates.begin(), candidates.end(), [](const Action& a,
                                               const Action& b) {
        if (a.score() != b.score()) return a.score() < b.score();
        // Deterministic tie-break: prefer cheaper, then by kind order.
        if (a.cost != b.cost) return a.cost > b.cost;
        return static_cast<int>(a.kind) > static_cast<int>(b.kind);
      });
  d.has_action = true;
  d.action = *best;
  narration = strf("expert: ", outcome.restraints.size(), " restraints; ",
                   candidates.size(), " candidate actions; chose ",
                   best->to_string(p));
  d.narration = narration;
  return d;
}

int warm_start_frontier(const Problem& p, const Action& a,
                        const PassTrace& trace) {
  // AddState reshapes every life span (and with them priorities);
  // AcceptSlack turns every failing timing verdict into a commit and
  // rewrites SCC releases. Neither leaves a safe prefix. The
  // accept-negative-slack endgame is also globally sensitive: any extra
  // instance extends the least-negative-candidate set of every bind.
  if (a.kind == ActionKind::kAddState || a.kind == ActionKind::kAcceptSlack) {
    return 0;
  }
  if (p.accept_negative_slack) return 0;

  int frontier = p.num_steps;
  switch (a.kind) {
    case ActionKind::kAddResource: {
      const auto& pdesc = p.resources.pools[static_cast<std::size_t>(a.pool)];
      const int members = p.pool_members(a.pool);
      const int added = std::max(1, a.amount);
      const bool was_shared = members > pdesc.count - added;
      const bool now_shared = members > pdesc.count;
      if (was_shared != now_shared) return 0;  // every bind's muxes retime
      for (const PassEvent& ev : trace.events) {
        if ((ev.kind == PassEvent::Kind::kDefer ||
             ev.kind == PassEvent::Kind::kFatalBind) &&
            p.resources.pool_of(ev.op) == a.pool) {
          frontier = std::min(frontier, ev.step);
          break;  // events are step-ordered
        }
      }
      break;
    }
    case ActionKind::kForbidBinding: {
      for (const PassEvent& ev : trace.events) {
        if (ev.op == a.op) {
          frontier = std::min(frontier, ev.step);
          break;
        }
      }
      break;
    }
    case ActionKind::kMoveScc: {
      // MoveScc only re-pins scc_window_start: the clamp enters through
      // release()/deadline() of the SCC's MEMBERS (problem.cpp) and the
      // spans of every other op are untouched. Under the star-encoded II
      // windows nothing can diverge before the NEW window's earliest
      // member entry: members seed their constraint bound at release(),
      // non-member bounds move only through dependence edges from member
      // results (>= release + latency) or through the SCC anchor, whose
      // value is a function of member bounds — and every old-trace event
      // such a move can invalidate FOLLOWS some member event in step
      // order, which the first-member-event clamp below already covers.
      // The legacy window-tail bound (deadline - latency) is sound for
      // the same reasons; whichever is later wins, so warm passes after
      // a window move replay the longest provably-safe prefix (members
      // with latency >= II - 1 make the release bound the later one).
      const auto& members = p.sccs[static_cast<std::size_t>(a.scc)];
      std::vector<bool> is_member(p.dfg->size(), false);
      int release_floor = p.num_steps;
      int window_tail = p.num_steps;
      for (ir::OpId id : members) {
        is_member[id] = true;
        const int pool = p.resources.pool_of(id);
        const int lat =
            pool < 0
                ? 0
                : p.resources.pools[static_cast<std::size_t>(pool)]
                      .latency_cycles;
        release_floor = std::min(release_floor, std::max(0, p.release(id)));
        window_tail = std::min(window_tail, std::max(0, p.deadline(id) - lat));
      }
      frontier = std::min(frontier, std::max(release_floor, window_tail));
      for (const PassEvent& ev : trace.events) {
        if (ev.op != kNoOp && is_member[ev.op]) {
          frontier = std::min(frontier, ev.step);
          break;
        }
      }
      break;
    }
    default:
      return 0;
  }
  return std::max(frontier, 0);
}

void apply_action(Problem& p, const Action& a) {
  switch (a.kind) {
    case ActionKind::kAddState:
      p.num_steps += std::max(1, a.amount);
      refresh_spans(p);
      break;
    case ActionKind::kAddResource:
      p.resources.pools[static_cast<std::size_t>(a.pool)].count +=
          std::max(1, a.amount);
      break;
    case ActionKind::kForbidBinding:
      p.forbidden.insert({a.op, a.pool, a.instance});
      break;
    case ActionKind::kMoveScc:
      p.scc_window_start[static_cast<std::size_t>(a.scc)] = a.window_start;
      ++p.scc_move_count[static_cast<std::size_t>(a.scc)];
      break;
    case ActionKind::kAcceptSlack:
      p.accept_negative_slack = true;
      break;
    case ActionKind::kAddMemPort: {
      auto& pool = p.resources.pools[static_cast<std::size_t>(a.pool)];
      pool.bank_rw_ports += std::max(1, a.amount);
      pool.count = pool.banks * pool.ports_per_bank();
      break;
    }
    case ActionKind::kRebank: {
      auto& pool = p.resources.pools[static_cast<std::size_t>(a.pool)];
      pool.banks *= 2;
      pool.count = pool.banks * pool.ports_per_bank();
      refresh_memory_banks(p, a.pool);
      break;
    }
    case ActionKind::kWidenWindow: {
      for (OpId id : p.ops) {
        const ir::Op& o = p.dfg->op(id);
        if (o.kind != ir::OpKind::kRead && o.kind != ir::OpKind::kWrite) {
          continue;
        }
        if (static_cast<int>(o.port) != a.port || p.mem_window_max[id] < 0) {
          continue;
        }
        p.mem_window_max[id] = std::max(p.mem_window_max[id], a.window_start);
      }
      refresh_spans(p);
      break;
    }
  }
}

}  // namespace hls::sched
