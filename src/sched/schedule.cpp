#include "sched/schedule.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace hls::sched {

std::vector<std::vector<ir::OpId>> Schedule::ops_by_step() const {
  std::vector<std::vector<ir::OpId>> out(
      static_cast<std::size_t>(num_steps));
  for (ir::OpId id = 0; id < placement.size(); ++id) {
    const OpPlacement& p = placement[id];
    if (p.scheduled && p.step >= 0 && p.step < num_steps) {
      out[static_cast<std::size_t>(p.step)].push_back(id);
    }
  }
  return out;
}

std::string Schedule::to_table(const ir::Dfg& dfg) const {
  std::vector<std::string> header{"state"};
  for (const auto& pool : resources.pools) header.push_back(pool.name);
  header.push_back("(io/free)");
  TextTable t(header);
  const auto by_step = ops_by_step();
  for (int s = 0; s < num_steps; ++s) {
    std::vector<std::string> row(header.size());
    row[0] = strf("s", s + 1);
    for (ir::OpId id : by_step[static_cast<std::size_t>(s)]) {
      const OpPlacement& p = placement[id];
      const std::string name =
          dfg.op(id).name.empty() ? strf("%", id) : dfg.op(id).name;
      std::string& cell = p.pool >= 0
                              ? row[static_cast<std::size_t>(p.pool) + 1]
                              : row.back();
      if (!cell.empty()) cell += ",";
      cell += name;
    }
    t.row(std::move(row));
  }
  return t.to_string();
}

}  // namespace hls::sched
