#include "sched/pass_scheduler.hpp"

#include <algorithm>

namespace hls::sched {

using ir::kNoOp;
using ir::OpId;

namespace {

// The pass keeps the classic list-scheduling semantics (pick the highest
// priority ready op, bind it, defer on refusal) but replaces every
// per-binding rescan with incremental state:
//
//  * readiness is event-driven: per-op unscheduled-dependency counters are
//    decremented as producers commit; an op whose counter hits zero is
//    dropped into a release-step bucket and merged into a rank-ordered
//    active set when its step begins — pick_ready is a set-front read, not
//    an O(ops) scan;
//  * binding, occupancy, timing verdicts and restraint aggregation are the
//    shared BindingEngine's, and the active-set/trace scaffolding is the
//    shared SolverHost's (binder.cpp) — this file contributes only the
//    ready buckets and the step loop;
//  * every decision is logged as a PassEvent so the next pass can warm
//    start: replay the decision prefix the relaxation provably cannot have
//    changed, then continue normally from the invalidation frontier.
//
// All of this is behavior-preserving: schedules, restraints and failure
// lists are bit-identical to the full-rescan implementation (enforced by
// the golden-hash determinism suite).
class PassRunner final : SolverHost {
 public:
  PassRunner(const Problem& p, const DependenceGraph& dg,
             timing::TimingEngine& eng, const WarmStart* warm)
      : SolverHost(p, dg, eng), warm_(warm) {
    unmet_ = dg.base_unmet;
    avail_.assign(dfg_.size(), 0);
    build_ready();
  }

  PassOutcome run() {
    int first = 0;
    if (warm_ != nullptr && warm_->trace != nullptr &&
        warm_->frontier_step > 0) {
      first = replay_prefix();
    }
    for (int e = first; e < p_.num_steps; ++e) {
      begin_step(e);
      while (true) {
        const OpId best = pick_ready();
        if (best == kNoOp) break;
        if (binder_.try_bind(best, e)) {
          // A new binding creates chaining and exclusive-sharing
          // opportunities; let deferred ops try this step again.
          ++deferred_epoch_;
        } else {
          if (e >= binder_.start_deadline(best)) {
            fatal(best, e);
          } else {
            defer(best, e);
          }
        }
      }
      end_step();
      sweep_missed_deadlines(e);
    }
    // Anything still unscheduled ran out of states.
    for (OpId id : p_.ops) {
      if (!binder_.scheduled(id) && !binder_.op_failed(id)) {
        fatal_no_states(id, p_.num_steps - 1, PassEvent::Kind::kFatalFinal);
      }
    }
    PassOutcome out = binder_.finish();
    out.trace = std::move(trace_);
    return out;
  }

 private:
  // ---- Incremental readiness -----------------------------------------------

  void build_ready() {
    buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    deadline_buckets_.assign(static_cast<std::size_t>(p_.num_steps), {});
    for (OpId id : p_.ops) {
      if (unmet_[id] == 0) activate(id);
      // An op is examined for a missed deadline exactly once: at the first
      // step past its start deadline (readiness is monotone, so later
      // sweeps of the same op could never fire).
      const int e0 = std::max(binder_.start_deadline(id), 0);
      if (e0 < p_.num_steps) {
        deadline_buckets_[static_cast<std::size_t>(e0)].push_back(id);
      }
    }
  }

  /// All dependences are placed; queue the op for the step where they are
  /// all available and its release permits a start.
  void activate(OpId id) {
    if (binder_.op_failed(id) || binder_.scheduled(id)) return;
    int act = std::max(avail_[id], p_.release(id));
    if (p_.anchor_io && ir::is_io(dfg_.op(id).kind)) {
      // Anchored I/O may only be placed on its home step.
      const int home = p_.spans.spans[id].asap;
      if (act > home || home < current_step_) return;
      act = home;
    }
    if (act < current_step_) act = current_step_;
    if (act >= p_.num_steps) return;  // beyond the last state
    if (act == current_step_ && in_step_) {
      insert_active(id);
    } else {
      buckets_[static_cast<std::size_t>(act)].push_back(id);
    }
  }

  void satisfy_dep(OpId u, int avail_step) {
    avail_[u] = std::max(avail_[u], avail_step);
    if (--unmet_[u] == 0) activate(u);
  }

  bool deps_available_by(OpId id, int e) const {
    return unmet_[id] == 0 && avail_[id] <= e;
  }

  void begin_step(int e) {
    current_step_ = e;
    in_step_ = true;
    ++deferred_epoch_;  // the deferred set is per step
    step_anchored_.clear();
    for (OpId id : buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      insert_active(id);
    }
  }

  void end_step() {
    // Anchored ops are only eligible on their home step.
    for (OpId id : step_anchored_) active_.erase(po_.rank[id]);
    in_step_ = false;
  }

  // ---- Warm start ----------------------------------------------------------

  /// Replays the previous pass's decisions for every step before the
  /// frontier; state (placements, occupancy, ready queues, restraints)
  /// evolves exactly as if the decisions had been re-derived.
  int replay_prefix() {
    const auto& events = warm_->trace->events;
    const int frontier = std::min(warm_->frontier_step, p_.num_steps);
    std::size_t idx = 0;
    for (int e = 0; e < frontier; ++e) {
      begin_step(e);
      while (idx < events.size() &&
             events[idx].kind != PassEvent::Kind::kFatalFinal &&
             events[idx].step == e) {
        apply_replay(events[idx]);
        ++idx;
      }
      end_step();
      // This step's sweep fatals, if any, were replayed from the trace.
    }
    return frontier;
  }

  // ---- Host callback (the engine reporting a release) ----------------------

  void on_dep_satisfied(OpId user, int avail_step) override {
    satisfy_dep(user, avail_step);
  }

  /// Ops whose deadline passed while their dependences never became ready.
  void sweep_missed_deadlines(int e) {
    for (OpId id : deadline_buckets_[static_cast<std::size_t>(e)]) {
      if (binder_.scheduled(id) || binder_.op_failed(id)) continue;
      if (!deps_available_by(id, e)) {
        fatal_no_states(id, e, PassEvent::Kind::kFatalSweep);
      }
    }
  }

  const WarmStart* warm_;
  std::vector<int> unmet_;  ///< unplaced dependences per op
  std::vector<int> avail_;  ///< max availability step over placed deps
  std::vector<std::vector<OpId>> buckets_;           ///< activation per step
  std::vector<std::vector<OpId>> deadline_buckets_;  ///< sweep per step
  int current_step_ = 0;
  bool in_step_ = false;
};

}  // namespace

PassOutcome run_pass(const Problem& p, const DependenceGraph& dg,
                     timing::TimingEngine& eng, const WarmStart* warm) {
  PassRunner runner(p, dg, eng, warm);
  return runner.run();
}

}  // namespace hls::sched
