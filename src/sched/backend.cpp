#include "sched/backend.hpp"

#include "sched/sdc_scheduler.hpp"

namespace hls::sched {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kList: return "list";
    case BackendKind::kSdc: return "sdc";
  }
  return "?";
}

namespace {

/// The paper's timing-driven list scheduling pass, unchanged: one
/// `run_pass` (pass_scheduler.cpp) per attempt, with warm-start replay.
class ListScheduler final : public SchedulerBackend {
 public:
  using SchedulerBackend::SchedulerBackend;

  BackendKind kind() const override { return BackendKind::kList; }
  bool warm_startable() const override { return true; }

  PassOutcome run_pass(timing::TimingEngine& eng,
                       const WarmStart* warm) override {
    return sched::run_pass(problem_, eng, warm);
  }
};

}  // namespace

std::unique_ptr<SchedulerBackend> make_backend(const Problem& problem,
                                               const SchedulerOptions& options) {
  switch (options.backend) {
    case BackendKind::kSdc:
      return std::make_unique<SdcScheduler>(problem, options);
    case BackendKind::kList:
      break;
  }
  return std::make_unique<ListScheduler>(problem, options);
}

}  // namespace hls::sched
