#include "sched/backend.hpp"

#include "sched/pass_scheduler.hpp"
#include "sched/sdc_scheduler.hpp"

namespace hls::sched {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kList: return "list";
    case BackendKind::kSdc: return "sdc";
    case BackendKind::kAuto: return "auto";
  }
  return "?";
}

namespace {

/// The paper's timing-driven list scheduling pass: one `run_pass`
/// (pass_scheduler.cpp) per attempt over the shared dependence graph,
/// with warm-start replay.
class ListScheduler final : public SchedulerBackend {
 public:
  ListScheduler(const Problem& problem, const SchedulerOptions& options)
      : SchedulerBackend(problem, options),
        dg_(build_dependence_graph(problem)) {}

  BackendKind kind() const override { return BackendKind::kList; }
  bool warm_startable() const override { return true; }

  PassOutcome run_pass(timing::TimingEngine& eng,
                       const WarmStart* warm) override {
    return sched::run_pass(problem_, dg_, eng, warm);
  }

 private:
  /// Pass-invariant (the dependence rules only read static Problem
  /// structure), so it is built once per schedule_region, not per pass.
  DependenceGraph dg_;
};

}  // namespace

BackendKind resolve_backend(const Problem& problem,
                            const SchedulerOptions& options) {
  if (options.backend != BackendKind::kAuto) return options.backend;
  // Heuristic calibrated against BENCH_scheduler.json: the list backend
  // is the cheapest per pass across the size sweep and wins the
  // backend_explore comparison on feed-forward kernels, so it is the
  // default. The SDC backend earns its constraint propagation on
  // relaxation-heavy pipelined recurrences — II windows move whole SCC
  // bodies at once instead of deferring member by member. Since the
  // anchor-star II encoding (sdc_scheduler.hpp) dropped window edges
  // from O(n^2) to O(n) per SCC, the SDC per-pass cost stays
  // subquadratic through the 6400-op sweep point (seconds, not minutes,
  // for the cold solve), so the size cutoff guards only the remaining
  // constant-factor gap to the list backend, not a blow-up.
  if (!problem.pipeline.enabled || problem.sccs.empty()) {
    return BackendKind::kList;
  }
  constexpr std::size_t kSdcMaxOps = 4096;
  if (problem.ops.size() > kSdcMaxOps) return BackendKind::kList;
  return BackendKind::kSdc;
}

std::unique_ptr<SchedulerBackend> make_backend(const Problem& problem,
                                               const SchedulerOptions& options) {
  switch (resolve_backend(problem, options)) {
    case BackendKind::kSdc:
      return std::make_unique<SdcScheduler>(problem, options);
    case BackendKind::kList:
    case BackendKind::kAuto:  // unreachable: resolve_backend never returns it
      break;
  }
  return std::make_unique<ListScheduler>(problem, options);
}

}  // namespace hls::sched
