// SDC scheduling backend (system of integer difference constraints).
//
// Dependences (x_u >= x_d + lat_d), release/deadline bounds from the
// timing-aware life spans, the pipeline II windows, and port write order
// are formulated as difference constraints over the operations' start
// steps and solved to the least fixpoint with an incremental Bellman-Ford
// longest-path core (no external LP solver). Resource conflicts enter the
// system dynamically: when the legalizing binder cannot place an op at
// its current lower bound, the end-of-step raise batches every refused
// op's bound bump into ONE re-propagation, so every transitively
// dependent op (and every II-window partner) moves with it before any
// doomed binding attempt is made.
//
// II windows are star-encoded: each SCC gets one auxiliary anchor
// variable A_s with edges a -> A_s (weight lat_a, so A_s >= x_a + lat_a
// tracks the SCC's latest result step) and A_s -> b (weight
// -lat_b - (II-1)). Composing the two reproduces the pairwise window
// constraint (x_b + lat_b) >= (x_a + lat_a) - (II - 1) transitively for
// every member pair — 2n edges per SCC instead of n(n-1) — and the least
// fixpoint restricted to the op variables is IDENTICAL to the pairwise
// encoding's at every quiescent point (the anchor's least value is
// exactly max_a(x_a + lat_a); the a == b composition contributes the
// vacuous x_b >= x_b - (II-1)). Schedules are therefore bit-exact across
// encodings; the golden suite's star/pairwise A/B enforces it, with the
// pairwise reference encoding kept reachable via
// SchedulerOptions::sdc_pairwise_ii. Anchor variables never touch the
// binder: they are not ops, are never bucketed, and saturate above
// num_steps (by the largest pool latency) so clamping cannot weaken a
// window constraint that an op-level clamp would have enforced exactly.
//
// Binding itself is the shared sched::BindingEngine (binder.hpp) — the
// same component the list pass drives — so chaining/slack verdicts,
// exclusive colocation, comb-cycle avoidance and the restraint
// vocabulary are structurally identical across backends, and a failed
// pass hands the same restraint kinds to the same expert system
// (expert.cpp). This backend keeps only the solver core: the constraint
// system, bound raising, and the ready buckets it serves the engine from.
//
// SDC passes warm-start like list passes: each pass records its decision
// trace (commits, first defers, fatals), and after a relaxation the next
// pass replays the prefix before the driver-computed invalidation
// frontier. Replay re-applies the committed bindings through the engine
// and re-derives the constraint bounds for the prefix by running the
// normal end-of-step bound raising over the replayed state — the solved
// x_ lower bounds learned before the frontier persist without a single
// timing query or instance probe, and only the region the expert action
// can reach is re-solved. Results are bit-identical to cold passes
// (enforced by the golden suite's SDC warm/cold A/B).
#pragma once

#include "sched/backend.hpp"

namespace hls::sched {

class SdcScheduler final : public SchedulerBackend {
 public:
  SdcScheduler(const Problem& problem, const SchedulerOptions& options);

  BackendKind kind() const override { return BackendKind::kSdc; }
  bool warm_startable() const override { return true; }
  PassOutcome run_pass(timing::TimingEngine& eng,
                       const WarmStart* warm) override;

  /// One difference constraint x_to >= x_from + weight. `to` may be an
  /// SCC anchor variable (ids dfg.size() .. dfg.size() + sccs.size() - 1
  /// under the star encoding), never handed to the binder.
  struct Edge {
    ir::OpId to = ir::kNoOp;
    int weight = 0;
  };

 private:
  // Pass-invariant structure, built once per schedule_region: the shared
  // dependence graph (binder.hpp's rules) and the static constraint edges.
  DependenceGraph dg_;
  std::vector<std::vector<Edge>> out_;  ///< constraint adjacency, by source
  std::size_t anchor_base_ = 0;  ///< first anchor variable id (= dfg.size())
  std::size_t num_vars_ = 0;     ///< ops + star anchors
  int max_latency_ = 0;          ///< largest pool latency over region ops
  std::uint64_t edge_count_ = 0;  ///< total constraint edges (PassRecord stat)
};

}  // namespace hls::sched
