// SDC scheduling backend (system of integer difference constraints).
//
// Dependences (x_u >= x_d + lat_d), release/deadline bounds from the
// timing-aware life spans, the pipeline II window (for SCC members a, b:
// x_b >= x_a + lat_a - lat_b - (II-1), both directions), and port write
// order are formulated as difference constraints over the operations'
// start steps and solved to the least fixpoint with an incremental
// Bellman-Ford longest-path core (no external LP solver). Resource
// conflicts enter the system dynamically: when the legalizing binder
// cannot place an op at its current lower bound, the bound is raised by
// one step and re-propagated incrementally, so every transitively
// dependent op (and every II-window partner) moves with it before any
// doomed binding attempt is made.
//
// The binder itself shares the list scheduler's semantics: the same
// priority order, chaining/timing verdicts, exclusive colocation,
// combinational-cycle avoidance and restraint vocabulary — a failed pass
// hands the same restraint kinds to the same expert system (expert.cpp),
// so both backends relax identically and remain comparable point for
// point (see tests/sched_golden_test.cpp's backend-equivalence suite).
#pragma once

#include "sched/backend.hpp"

namespace hls::sched {

class SdcScheduler final : public SchedulerBackend {
 public:
  SdcScheduler(const Problem& problem, const SchedulerOptions& options);

  BackendKind kind() const override { return BackendKind::kSdc; }
  PassOutcome run_pass(timing::TimingEngine& eng,
                       const WarmStart* warm) override;

  /// One difference constraint x_to >= x_from + weight.
  struct Edge {
    ir::OpId to = ir::kNoOp;
    int weight = 0;
  };

 private:
  // Pass-invariant structure, built once per schedule_region: the
  // dependence graph (with the same carried-edge / predicate /
  // port-order rules as the list pass) and the static constraint edges.
  std::vector<std::vector<ir::OpId>> deps_;
  std::vector<std::vector<ir::OpId>> users_;
  std::vector<ir::OpId> port_next_;
  std::vector<int> base_unmet_;
  std::vector<std::vector<Edge>> out_;  ///< constraint adjacency, by source
};

}  // namespace hls::sched
