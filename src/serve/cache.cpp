#include "serve/cache.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/diagnostics.hpp"

namespace hls::serve {

// ---- SessionCache ----------------------------------------------------------

SessionCache::SessionCache(std::size_t max_sessions)
    : max_sessions_(std::max<std::size_t>(1, max_sessions)) {}

SessionCache::Acquired SessionCache::acquire(
    const std::string& key, const std::function<workloads::Workload()>& make,
    std::uint64_t tick) {
  Acquired out;
  // Level 1: spec-key memo — the same submission text seen before. This is
  // the path that skips the front end without even building the workload.
  if (const auto memo = spec_memo_.find(key); memo != spec_memo_.end()) {
    const auto it = sessions_.find(memo->second);
    HLS_ASSERT(it != sessions_.end(), "spec memo points at evicted session");
    ++hits_;
    policy_.touch(it->first, tick);
    out.session = it->second;
    out.module_hash = it->first;
    out.cache_hit = true;
    return out;
  }
  ++misses_;
  auto session = std::make_shared<core::FlowSession>(make());
  if (!session->ok()) {
    // Compile failures are returned for diagnosis but never cached: their
    // module hash is meaningless and the job fails at admission anyway.
    out.session = std::move(session);
    return out;
  }
  const std::uint64_t hash = session->module_hash();
  // Level 2: post-compile collision — a renamed but structurally identical
  // design. The fresh compile is discarded in favor of the cached session
  // (same scheduling inputs by the module_hash contract), and this spec
  // key is memoized so the NEXT submission skips the front end too.
  if (const auto it = sessions_.find(hash); it != sessions_.end()) {
    spec_memo_.emplace(key, hash);
    policy_.touch(hash, tick);
    out.session = it->second;
    out.module_hash = hash;
    out.cache_hit = true;
    return out;
  }
  sessions_.emplace(hash, session);
  spec_memo_.emplace(key, hash);
  policy_.touch(hash, tick);
  evict_to_capacity();
  out.session = std::move(session);
  out.module_hash = hash;
  return out;
}

bool SessionCache::evict_one(std::uint64_t* evicted_hash) {
  std::uint64_t victim = 0;
  if (!policy_.victim(&victim)) return false;  // everything pinned
  sessions_.erase(victim);
  policy_.erase(victim);
  for (auto it = spec_memo_.begin(); it != spec_memo_.end();) {
    it = it->second == victim ? spec_memo_.erase(it) : std::next(it);
  }
  ++evictions_;
  if (evicted_hash != nullptr) *evicted_hash = victim;
  return true;
}

void SessionCache::evict_to_capacity() {
  while (sessions_.size() > max_sessions_) {
    std::uint64_t victim = 0;
    if (!policy_.victim(&victim)) return;  // everything pinned: over-commit
    sessions_.erase(victim);
    policy_.erase(victim);
    for (auto it = spec_memo_.begin(); it != spec_memo_.end();) {
      it = it->second == victim ? spec_memo_.erase(it) : std::next(it);
    }
    ++evictions_;
  }
}

// ---- TraceCache ------------------------------------------------------------

TraceCache::TraceCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

TraceCache::Hit TraceCache::lookup(const TraceKey& key, double tclk_ps) {
  ++lookups_;
  Hit hit;
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.empty()) {
    ++misses_;
    return hit;
  }
  const std::map<double, Entry>& bucket = it->second;
  if (const auto exact = bucket.find(tclk_ps); exact != bucket.end()) {
    ++exact_hits_;
    hit.seed = &exact->second.seed;
    hit.exact = true;
    return hit;
  }
  // Nearest neighbor by |Δtclk|; the map iterates ascending, and strict
  // `<` keeps the first (smaller-period) candidate on a tie.
  const Entry* best = nullptr;
  double best_distance = 0;
  for (const auto& [tclk, entry] : bucket) {
    const double distance = std::abs(tclk - tclk_ps);
    if (best == nullptr || distance < best_distance) {
      best = &entry;
      best_distance = distance;
    }
  }
  ++neighbor_hits_;
  hit.seed = &best->seed;
  hit.exact = false;
  return hit;
}

void TraceCache::insert(const TraceKey& key, sched::ScheduleSeed seed) {
  std::map<double, Entry>& bucket = entries_[key];
  const double tclk = seed.tclk_ps;
  const auto it = bucket.find(tclk);
  if (it == bucket.end()) ++total_;
  Entry entry;
  entry.seed = std::move(seed);
  entry.stamp = next_stamp_++;
  bucket.insert_or_assign(tclk, std::move(entry));
  ++insertions_;
  evict_to_capacity();
}

void TraceCache::invalidate_module(std::uint64_t module_hash) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.module_hash == module_hash) {
      total_ -= it->second.size();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

bool TraceCache::evict_one() {
  if (total_ == 0) return false;
  // Eldest stamp across every bucket. Linear, but the cache is small
  // (hundreds of entries) and eviction runs only at round barriers.
  std::map<TraceKey, std::map<double, Entry>>::iterator eldest_key =
      entries_.end();
  std::map<double, Entry>::iterator eldest_entry;
  for (auto key_it = entries_.begin(); key_it != entries_.end(); ++key_it) {
    for (auto e = key_it->second.begin(); e != key_it->second.end(); ++e) {
      if (eldest_key == entries_.end() ||
          e->second.stamp < eldest_entry->second.stamp) {
        eldest_key = key_it;
        eldest_entry = e;
      }
    }
  }
  HLS_ASSERT(eldest_key != entries_.end(), "trace cache size out of sync");
  eldest_key->second.erase(eldest_entry);
  if (eldest_key->second.empty()) entries_.erase(eldest_key);
  --total_;
  ++evictions_;
  return true;
}

void TraceCache::evict_to_capacity() {
  while (total_ > max_entries_) {
    if (!evict_one()) return;
  }
}

}  // namespace hls::serve
