// Job intake for the serving layer: a job names a design (bundled kernel,
// inline DSL source, or seeded random CDFG) plus a grid of explore
// configurations to run against it. Jobs arrive as JSON — one object, a
// top-level array, or {"jobs": [...]} — from a job file or a socket line.
//
//   {"id": 1, "workload": "idct8",
//    "grid": {"tclk_ps": [1450, 1600], "latency": [16], "ii": [8]}}
//   {"id": 2, "source": "module m { ... }",
//    "points": [{"tclk_ps": 1600, "latency": 12}]}
//
// A job may carry a per-point work-unit budget and/or an advisory
// wall-clock deadline (docs/FAULTS.md):
//
//   {"id": 3, "workload": "ewf", "deadline_ms": 500,
//    "budget": {"passes": 4, "commits": 10000, "relax_steps": 100000},
//    "grid": {...}}
//
// Job ids are the determinism anchor: admission, execution rounds and the
// output stream are ordered by id, never by arrival order or thread
// timing (docs/SERVE.md). Ids must be unique and non-negative.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/explore.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"
#include "workloads/workloads.hpp"

namespace hls::serve {

struct JobRequest {
  std::int64_t id = -1;  ///< required, unique, >= 0
  /// Bundled kernel name (see workload_names()); exclusive with `source`.
  std::string workload;
  /// Inline `.hls` DSL source (frontend::parse_module grammar).
  std::string source;
  /// Parameters for workload == "random" (workloads::make_random_cdfg).
  std::uint64_t random_seed = 1;
  int random_ops = 200;
  /// The configurations to run, in stream order.
  std::vector<core::ExploreConfig> points;
  /// Per-point work-unit budget / advisory deadline, copied into every
  /// point's ExploreConfig at parse time ("budget" + "deadline_ms" keys).
  /// Work-unit exhaustion is deterministic: the same point fails with the
  /// same [schedule/budget_exhausted] line at every thread count.
  support::BudgetLimits budget = {};
  /// Model-guided point ordering ("guided": true): the job's points are
  /// reordered at admission with core::guided_order — clock-ladder
  /// chains, most-expensive-predicted chain first, each chain loosest
  /// clock first — so the stream's point indices refer to the REORDERED
  /// list (docs/SERVE.md). Deterministic: a pure function of the job.
  bool guided = false;
  /// Infeasibility-dominance pruning ("prune": true, implies guided
  /// ordering): once a point fails with a provable schedule-stage code,
  /// strictly tighter clocks on the same chain are emitted as synthetic
  /// [explore/dominated] lines without being scheduled.
  bool prune = false;
};

/// The bundled kernel names resolve_workload accepts (plus "random").
const std::vector<std::string>& workload_names();

/// Deterministic string identifying the job's design spec — the session
/// cache's pre-compile memo key. Two jobs with equal spec keys compile to
/// the same module; the reverse is NOT required (renamed-but-identical
/// sources get distinct spec keys and are collided post-compile by
/// FlowSession::module_hash).
std::string spec_key(const JobRequest& job);

/// Builds the job's workload. On an unknown name or DSL parse error,
/// returns false and sets `error`; `out` is untouched.
bool resolve_workload(const JobRequest& job, workloads::Workload* out,
                      std::string* error);

/// Parses one job object. On error returns false and sets `error`.
bool parse_job(const JsonValue& v, JobRequest* out, std::string* error);

/// Parses a job document: a single object, an array of objects, or
/// {"jobs": [...]}. Appends good jobs to `out`; each malformed job adds
/// one message to `errors`. Returns false only when `text` is not valid
/// JSON at all.
bool parse_jobs(std::string_view text, std::vector<JobRequest>* out,
                std::vector<std::string>* errors);

}  // namespace hls::serve
