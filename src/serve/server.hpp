// The serve engine: accepts design+grid jobs, runs them on a worker pool
// over shared FlowSessions, and streams ordered ExplorePoint results back
// as JSON lines.
//
// Determinism contract (docs/SERVE.md): the output byte stream is a pure
// function of the submitted job SET — independent of arrival order (jobs
// are keyed by their explicit ids), of the thread count, and of thread
// timing. Three mechanisms make this hold:
//
//  1. Deterministic admission — jobs admit in id order under the in-flight
//     cap, at most one in-flight job per module (serve/admission.hpp).
//  2. Round barriers — each round takes one micro-batch per in-flight job,
//     resolves every trace-cache seed BEFORE fanning out, joins the pool,
//     then commits new seeds and emits output in (job id, point index)
//     order. Worker timing can reorder nothing observable.
//  3. Ordered streaming — each job's points are emitted in point order;
//     jobs interleave only at batch granularity, in id order.
//
// Serial submission (threads = 1) therefore produces byte-identical
// output to any concurrent configuration — enforced by the determinism
// stress test.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "support/budget.hpp"
#include "support/fault.hpp"

namespace hls::serve {

struct ServerOptions {
  /// Worker threads per round; 0 = hardware_concurrency, 1 = serial.
  int threads = 1;
  /// In-flight job cap (CapacityScheduler); at most this many jobs make
  /// progress per round.
  int max_inflight = 4;
  /// Points per job per round (micro-batch size); <= 0 = whole job in one
  /// round.
  int micro_batch = 8;
  /// Compiled-session cache bound (LRU; in-flight sessions pinned).
  std::size_t max_sessions = 8;
  /// Trace-cache bound (seeds; FIFO eviction).
  std::size_t max_trace_entries = 1024;
  /// Cross-config warm-start seeding. Off = every point solves cold.
  /// Results are identical either way: an exact-config hit replays the
  /// donor's final pass (provably bit-exact, collapsing the pass count
  /// to 1), and a neighbor hit only tracks the cold ladder. This is the
  /// A/B lever the serve bench uses.
  bool trace_cache = true;
  /// Append a final {"stats": {...}} line to the stream.
  bool emit_stats = false;
  /// Queued-job cap for overload shedding; 0 = unbounded. When the queue
  /// is full, submit() rejects with a structured "[job/shed]" error line
  /// instead of growing without bound (docs/SERVE.md, Robustness).
  std::size_t max_queue_depth = 0;
  /// Bounded retry for transient (injected) compile faults: a job whose
  /// session compile hits a "session/compile" fault is re-queued with
  /// exponential round backoff up to this many attempts, then fails with
  /// a "[serve/retries_exhausted]" error line.
  int max_compile_retries = 2;
  /// Cooperative shutdown (e.g. from a SIGTERM handler). Observed at
  /// round boundaries: in-flight points finish, every remaining point is
  /// emitted as a cancelled placeholder, the stream stays ordered and
  /// parseable. The pointee must outlive drain().
  const support::StopSource* stop = nullptr;
  /// Deterministic fault injection (tests only; docs/FAULTS.md lists the
  /// sites). Consulted only from serial sections of the round loop, so an
  /// armed fault fires at the same point in the stream at every thread
  /// count. The pointee must outlive drain().
  support::FaultInjector* faults = nullptr;
};

/// Deterministic counters for the run (no wall-clock anywhere: the stats
/// line is part of the byte-stable stream).
struct ServeStats {
  std::uint64_t jobs = 0;
  std::uint64_t points = 0;
  std::uint64_t points_failed = 0;
  std::uint64_t rounds = 0;
  std::uint64_t sessions_compiled = 0;
  std::uint64_t session_cache_hits = 0;
  std::uint64_t session_evictions = 0;
  std::uint64_t trace_lookups = 0;
  std::uint64_t trace_exact_hits = 0;
  std::uint64_t trace_neighbor_hits = 0;
  std::uint64_t trace_misses = 0;
  std::uint64_t trace_evictions = 0;
  /// SchedulerResult::seed_use tallies over all points.
  std::uint64_t seed_replays = 0;   ///< exact-config wholesale replays
  std::uint64_t seed_wins = 0;      ///< neighbor recipes that matched fully
  std::uint64_t seed_misses = 0;    ///< seeds incompatible or diverged
  /// Total scheduling passes across all points — the serve bench's
  /// cache-on vs cache-off comparison metric.
  std::uint64_t total_passes = 0;

  // Robustness counters (docs/FAULTS.md): shedding, cancellation, retry
  // and injection activity. All deterministic — they count decisions made
  // in serial sections, never thread-timing artifacts.
  std::uint64_t jobs_shed = 0;         ///< submit() rejections (queue full)
  std::uint64_t jobs_cancelled = 0;    ///< jobs cut short (cancel() or stop)
  std::uint64_t points_cancelled = 0;  ///< cancelled placeholder points
  std::uint64_t compile_retries = 0;   ///< transient-fault re-queues
  std::uint64_t faults_injected = 0;   ///< injector sites that fired
  /// Points a prune-enabled job skipped as [explore/dominated] (proved
  /// infeasible by a looser clock on the same chain; never scheduled).
  std::uint64_t points_pruned = 0;

  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Queues a job. Rejects (false + error) ids that are negative or
  /// already queued, and jobs with no points. Arrival order is irrelevant:
  /// drain() processes jobs in id order.
  bool submit(JobRequest job, std::string* error = nullptr);

  /// Parses a JSON job document (see parse_jobs) and queues every
  /// well-formed job. Appends one message per rejected job to `errors`.
  /// Returns the number of jobs queued.
  std::size_t submit_text(std::string_view text,
                          std::vector<std::string>* errors = nullptr);

  /// Requests cooperative cancellation of one job. Observed at round
  /// boundaries: points already dispatched this round finish and are
  /// emitted normally; every remaining point is emitted as a cancelled
  /// placeholder ({"cancelled": true, "failure": "[serve/cancelled] ..."})
  /// and the job's done summary reports the cancelled count. Unknown ids
  /// are remembered (cancelling before drain() is fine). Call from the
  /// sink or between drains — not from another thread mid-round.
  void cancel(std::int64_t job_id) { cancelled_.insert(job_id); }

  /// Runs every queued job to completion, invoking `sink` once per output
  /// line (no trailing newline). Lines are, in stream order: per-point
  /// result objects, one {"job": id, "done": true, ...} summary per job,
  /// error objects for jobs that failed to compile, and (when
  /// emit_stats) a final {"stats": ...} object. Queued jobs are consumed;
  /// caches and stats persist across drain() calls, so a later drain of
  /// the same designs hits warm caches.
  void drain(const std::function<void(const std::string& line)>& sink);

  const ServeStats& stats() const { return stats_; }
  const SessionCache& session_cache() const { return sessions_; }
  const TraceCache& trace_cache() const { return traces_; }

 private:
  struct ActiveJob;

  ServerOptions options_;
  SessionCache sessions_;
  TraceCache traces_;
  ServeStats stats_;
  std::vector<JobRequest> queued_;
  /// Jobs with a pending cancel request (see cancel()); ids are erased
  /// once the cancellation has been emitted.
  std::set<std::int64_t> cancelled_;
  std::uint64_t tick_ = 0;  ///< monotone LRU clock across drains
};

}  // namespace hls::serve
