// Capacity-aware admission for the serving layer (modeled on LLM-serving
// capacity schedulers: deterministic admission, micro-batching, and an
// eviction policy that never touches in-flight state).
//
// Everything here is deliberately single-threaded and deterministic: the
// serve engine calls it only from the round loop, and every decision is a
// pure function of (job ids, module hashes, capacity), never of thread
// timing or arrival order. That is one third of the serve determinism
// contract (docs/SERVE.md); the others are round-barrier trace-cache
// commits (cache.hpp) and id-ordered output flushing (server.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace hls::serve {

/// A contiguous [begin, end) slice of a job's point list — one round's
/// worth of work for that job.
struct MicroBatch {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits `n` work items into batches of at most `cap` items each, in
/// order. cap <= 0 means "no cap": everything in one batch. n == 0 yields
/// no batches.
std::vector<MicroBatch> micro_batches(std::size_t n, int cap);

/// Admits jobs under an in-flight cap, in job-id order, with at most one
/// in-flight job per module hash.
///
/// The per-module exclusion serializes same-design jobs so a later job
/// always sees every trace-cache entry its predecessor committed — maximal
/// cache reuse, and the admission order (hence the output stream) stays a
/// pure function of the job set.
class CapacityScheduler {
 public:
  /// max_inflight <= 0 is treated as 1 (capacity zero would deadlock).
  explicit CapacityScheduler(int max_inflight);

  /// Queues a job. Ids must be unique (enforced by the server at intake).
  void enqueue(std::int64_t job, std::uint64_t module_hash);

  /// Admits pending jobs in ascending id order while capacity remains and
  /// no in-flight job shares the module hash. Returns the ids admitted by
  /// this call, in id order. A pending job whose module is busy is
  /// SKIPPED, not blocking: later jobs on other modules may still admit
  /// (head-of-line blocking would tie throughput to module mix).
  std::vector<std::int64_t> admit();

  /// Marks an in-flight job finished, freeing its capacity and module.
  void finish(std::int64_t job);

  /// Changes the in-flight cap. When the new cap is below the current
  /// in-flight count, the HIGHEST-id in-flight jobs are evicted and
  /// requeued as pending (lowest ids keep their slots — they were admitted
  /// first and their results are due first). Returns the evicted ids in
  /// ascending order. The server reruns a requeued job's remaining points;
  /// completed points are never re-emitted.
  std::vector<std::int64_t> set_capacity(int max_inflight);

  int capacity() const { return max_inflight_; }
  /// In-flight ids in ascending order.
  std::vector<std::int64_t> inflight() const;
  std::size_t pending_count() const { return pending_.size(); }
  bool idle() const { return pending_.empty() && inflight_.empty(); }

 private:
  int max_inflight_ = 1;
  std::map<std::int64_t, std::uint64_t> pending_;   // id → module hash
  std::map<std::int64_t, std::uint64_t> inflight_;  // id → module hash
  std::multiset<std::uint64_t> busy_modules_;
};

/// LRU eviction over pinnable keys: the victim is the least-recently-used
/// unpinned key. Pinned keys (in-flight sessions) are never victims, no
/// matter how stale. Ticks come from the caller (the serve engine uses a
/// monotone counter); equal ticks break deterministically toward the
/// smallest key.
class LruEvictionPolicy {
 public:
  /// Inserts or refreshes a key's recency.
  void touch(std::uint64_t key, std::uint64_t tick);
  void pin(std::uint64_t key);
  void unpin(std::uint64_t key);
  void erase(std::uint64_t key);

  bool pinned(std::uint64_t key) const;
  bool contains(std::uint64_t key) const {
    return last_use_.find(key) != last_use_.end();
  }
  std::size_t size() const { return last_use_.size(); }

  /// The LRU unpinned key, or false when every key is pinned (or empty).
  bool victim(std::uint64_t* out) const;

 private:
  std::map<std::uint64_t, std::uint64_t> last_use_;  // key → tick
  std::map<std::uint64_t, int> pins_;                // key → pin count
};

}  // namespace hls::serve
