#include "serve/io.hpp"

#include <unistd.h>

#include <cerrno>

namespace hls::serve {

ReadStatus read_request(int fd, std::string* out, const IoOptions& options) {
  out->clear();
  char buf[4096];
  while (true) {
    if (options.faults != nullptr && options.faults->should_fail("socket/read")) {
      continue;  // simulated EINTR: retry without touching the socket
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (n == 0) return ReadStatus::kOk;  // peer closed its write side
    out->append(buf, static_cast<std::size_t>(n));
    if (options.max_request_bytes > 0 &&
        out->size() > options.max_request_bytes) {
      return ReadStatus::kOversized;
    }
  }
}

bool write_all(int fd, std::string_view data, const IoOptions& options,
               int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  std::size_t off = 0;
  while (off < data.size()) {
    if (options.faults != nullptr) {
      if (options.faults->should_fail("socket/epipe")) {
        if (errno_out != nullptr) *errno_out = EPIPE;
        return false;
      }
    }
    // An injected short write transfers exactly one byte, forcing the
    // continuation loop a flaky kernel would.
    const std::size_t len =
        (options.faults != nullptr &&
         options.faults->should_fail("socket/write"))
            ? 1
            : data.size() - off;
    const ssize_t n = ::write(fd, data.data() + off, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno_out != nullptr) *errno_out = errno;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace hls::serve
